package hipmer

import (
	"fmt"
)

// KSweepResult is one assembly of a k sweep.
type KSweepResult struct {
	K      int
	Result *Result
	// OracleUsed reports whether this assembly ran with the oracle layout
	// derived from the first assembly of the sweep.
	OracleUsed bool
}

// SweepK assembles the same libraries at several k-mer lengths — the
// paper's second §3.2 use case: "computational biologists begin the
// genome assembly process with a reasonable initial k value [and]
// different k lengths are then explored to optimize the quality of the
// assembly output". The first k is assembled with the uniform layout; its
// scaffolds provide the oracle partitioning for every subsequent k, which
// works across k because the oracle is built from contig *sequences*
// ("the new set of contigs will have a high degree of similarity with the
// first draft assembly"). Results are returned in input order along with
// the index of the best assembly by scaffold N50.
func SweepK(libs []Library, ks []int, opt Options) ([]KSweepResult, int, error) {
	if len(ks) == 0 {
		return nil, -1, fmt.Errorf("hipmer: SweepK needs at least one k")
	}
	var out []KSweepResult
	var draft *Result
	for i, k := range ks {
		o := opt
		o.K = k
		if i > 0 && draft != nil {
			// the oracle is built from the draft's *contigs* (§3.2) — they
			// are numerous enough to deal across all ranks, while whole
			// scaffolds would concentrate the k-mers on a few owners
			o.OracleContigs = draft.ContigSeqs
		}
		res, err := Assemble(libs, o)
		if err != nil {
			return nil, -1, fmt.Errorf("hipmer: k=%d: %w", k, err)
		}
		if i == 0 {
			draft = res
		}
		out = append(out, KSweepResult{K: k, Result: res, OracleUsed: i > 0})
	}
	best := 0
	for i, r := range out {
		if r.Result.Stats.N50 > out[best].Result.Stats.N50 {
			best = i
		}
	}
	return out, best, nil
}

// Diploid human-like assembly: the dataset carries two haplotypes that
// differ at ~0.1% of positions, producing bubbles in the de Bruijn graph
// that the scaffolder's bubble module identifies and merges (paper §4.2).
//
//	go run ./examples/diploid_human
package main

import (
	"fmt"
	"log"

	"hipmer"
)

func main() {
	ref, lib := hipmer.SimHumanLike(7, 120000, 40)
	fmt.Printf("diploid dataset: %d reads over a %d bp genome "+
		"(two haplotypes, 0.1%% heterozygosity)\n", len(lib.Reads), len(ref))

	res, err := hipmer.Assemble([]hipmer.Library{lib}, hipmer.Options{
		K: 31, MinCount: 4, Ranks: 48,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("contigs before bubble merging: %d\n", res.ContigCount)
	fmt.Printf("bubble paths popped:           %d\n", res.Bubbles)
	fmt.Printf("scaffolds:                     %d (N50 %d)\n",
		res.Stats.Sequences, res.Stats.N50)

	v := res.Validate(ref)
	fmt.Printf("vs haplotype 1: coverage %.2f%%, identity %.4f%%, misassemblies %d\n",
		100*v.CoveredFrac, 100*v.IdentityFrac, v.Misassemblies)
	if res.Bubbles == 0 {
		fmt.Println("note: no bubbles — try higher coverage or heterozygosity")
	}
}

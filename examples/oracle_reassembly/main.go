// Communication-avoiding reassembly (paper §3.2): assemble one
// individual, build the oracle partitioning from its scaffolds, then
// assemble a second individual of the same species (0.2% diverged) with
// the oracle layout — the de Bruijn traversal's hash-table lookups become
// overwhelmingly rank-local.
//
//	go run ./examples/oracle_reassembly
package main

import (
	"fmt"
	"log"

	"hipmer"
)

func main() {
	// Individual 1: many separate chromosome-scale fragments, so the
	// assembly yields many scaffolds and the oracle can deal whole
	// contigs across all ranks for load balance.
	var frags [][]byte
	for i := 0; i < 120; i++ {
		frags = append(frags, hipmer.RandomGenome(int64(100+i), 1500+((i*137)%800)))
	}
	simLib := func(seedBase int64, pieces [][]byte) hipmer.Library {
		var lib hipmer.Library
		lib.Name, lib.InsertMean = "pe350", 350
		for i, f := range pieces {
			part := hipmer.SimReads(seedBase+int64(i), f, 30, 100, 350, 25)
			lib.Reads = append(lib.Reads, part.Reads...)
		}
		return lib
	}
	lib1 := simLib(1000, frags)

	res1, err := hipmer.Assemble([]hipmer.Library{lib1}, hipmer.Options{
		K: 31, MinCount: 3, Ranks: 48,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("individual 1: %d scaffolds assembled (traversal %v simulated)\n",
		res1.Stats.Sequences, res1.Timing("contig-generation"))

	// Individual 2 of the same species: every chromosome 0.2% diverged.
	var frags2 [][]byte
	var genome2 []byte
	for i, f := range frags {
		m := hipmer.MutateGenome(int64(5000+i), f, 0.002)
		frags2 = append(frags2, m)
		genome2 = append(genome2, m...)
	}
	lib2 := simLib(9000, frags2)

	noOracle, err := hipmer.Assemble([]hipmer.Library{lib2}, hipmer.Options{
		K: 31, MinCount: 3, Ranks: 48,
	})
	if err != nil {
		log.Fatal(err)
	}
	withOracle, err := hipmer.Assemble([]hipmer.Library{lib2}, hipmer.Options{
		K: 31, MinCount: 3, Ranks: 48,
		OracleContigs: res1.ContigSeqs,
	})
	if err != nil {
		log.Fatal(err)
	}

	tNo := noOracle.Timing("contig-generation")
	tOr := withOracle.Timing("contig-generation")
	fmt.Printf("individual 2 contig generation (simulated):\n")
	fmt.Printf("  uniform layout: %v\n", tNo)
	fmt.Printf("  oracle layout:  %v (%.1fx faster)\n",
		tOr, tNo.Seconds()/tOr.Seconds())

	vNo := noOracle.Validate(genome2)
	vOr := withOracle.Validate(genome2)
	fmt.Printf("assembly quality unchanged: coverage %.2f%% vs %.2f%%\n",
		100*vNo.CoveredFrac, 100*vOr.CoveredFrac)
}

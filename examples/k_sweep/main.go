// K sweep with oracle reuse: assemble at several k-mer lengths, reusing
// the first draft's scaffolds as the §3.2 oracle partitioning for the
// subsequent assemblies — the paper's "optimizing an individual assembly
// by iterating over multiple lengths for the k-mers" use case.
//
//	go run ./examples/k_sweep
package main

import (
	"fmt"
	"log"

	"hipmer"
)

func main() {
	ref, lib := hipmer.SimHumanLike(17, 100000, 30)
	fmt.Printf("sweeping k over a %d bp genome (%d reads)\n", len(ref), len(lib.Reads))

	results, best, err := hipmer.SweepK([]hipmer.Library{lib},
		[]int{21, 31, 41, 51}, hipmer.Options{MinCount: 3, Ranks: 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  k   scaffolds   N50      coverage   contig-gen (simulated)")
	for _, r := range results {
		v := r.Result.Validate(ref)
		marker := " "
		if r.K == results[best].K {
			marker = "*"
		}
		oracle := "uniform layout"
		if r.OracleUsed {
			oracle = "oracle from k=21 draft"
		}
		fmt.Printf("%s %2d   %6d   %7d   %6.2f%%   %v (%s)\n",
			marker, r.K, r.Result.Stats.Sequences, r.Result.Stats.N50,
			100*v.CoveredFrac, r.Result.Timing("contig-generation"), oracle)
	}
	fmt.Printf("best k by N50: %d\n", results[best].K)
}

// Quickstart: simulate a small genome, assemble it end-to-end, and check
// the result against the reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"hipmer"
)

func main() {
	// 1. Make a 50 kbp reference genome and a 30x paired-end library.
	ref := hipmer.RandomGenome(42, 50000)
	lib := hipmer.SimReads(43, ref, 30, 100, 400, 30)
	fmt.Printf("simulated %d reads from a %d bp genome\n", len(lib.Reads), len(ref))

	// 2. Assemble on 32 simulated ranks.
	res, err := hipmer.Assemble([]hipmer.Library{lib}, hipmer.Options{
		K: 31, MinCount: 3, Ranks: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the result.
	fmt.Printf("assembled %d scaffold(s), total %d bp, N50 %d\n",
		res.Stats.Sequences, res.Stats.TotalLen, res.Stats.N50)
	fmt.Printf("pipeline: %d contigs, %d/%d gaps closed\n",
		res.ContigCount, res.GapsClosed, res.Gaps)
	for _, t := range res.Timings {
		fmt.Printf("  %-18s %12v (simulated)\n", t.Name, t.Virtual)
	}

	// 4. Validate against the reference we simulated from.
	v := res.Validate(ref)
	fmt.Printf("validation: coverage %.2f%%, identity %.4f%%, misassemblies %d\n",
		100*v.CoveredFrac, 100*v.IdentityFrac, v.Misassemblies)

	// 5. Write the assembly as FASTA.
	f, err := os.Create("quickstart_assembly.fasta")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.WriteFasta(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_assembly.fasta")
}

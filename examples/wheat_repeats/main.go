// Wheat-like repetitive genome: demonstrates the heavy-hitter k-mer
// analysis optimization (paper §3.1). The genome's tandem and transposon
// repeats give a few k-mers enormous occurrence counts; without special
// handling their owner ranks become hot spots. The example assembles with
// the optimization on and off and compares the k-mer analysis stage.
//
//	go run ./examples/wheat_repeats
package main

import (
	"fmt"
	"log"

	"hipmer"
)

func main() {
	ref, libs := hipmer.SimWheatLike(11, 150000, 30)
	nReads := 0
	for _, l := range libs {
		nReads += len(l.Reads)
	}
	fmt.Printf("wheat-like dataset: %d reads, %d libraries (inserts", nReads, len(libs))
	for _, l := range libs {
		fmt.Printf(" %d", l.InsertMean)
	}
	fmt.Printf("), %d bp genome, ~75%% repeats\n", len(ref))

	run := func(disableHH bool) *hipmer.Result {
		res, err := hipmer.Assemble(libs, hipmer.Options{
			K: 31, MinCount: 3, Ranks: 96,
			DisableHeavyHitters: disableHH,
			Seed:                1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	withHH := run(false)
	withoutHH := run(true)

	fmt.Printf("\nheavy hitters identified: %d\n", withHH.HeavyHitters)
	tHH := withHH.Timing("kmer-analysis")
	tDef := withoutHH.Timing("kmer-analysis")
	fmt.Printf("k-mer analysis (simulated): default %v, heavy-hitters %v (%.2fx)\n",
		tDef, tHH, tDef.Seconds()/tHH.Seconds())

	fmt.Printf("\nassembly: %d scaffolds, N50 %d\n",
		withHH.Stats.Sequences, withHH.Stats.N50)
	v := withHH.Validate(ref)
	fmt.Printf("validation: coverage %.2f%% (repeats collapse to one copy), "+
		"identity %.4f%%\n", 100*v.CoveredFrac, 100*v.IdentityFrac)
}

// Metagenome contig generation: assembles a synthetic wetlands-like
// community (many species, log-normal abundances) through the uncontested
// contig stage only, as the paper does for the Twitchell wetlands data
// (§5.4) — single-genome scaffolding logic would mis-join a metagenome.
//
//	go run ./examples/metagenome
package main

import (
	"fmt"
	"log"
	"sort"

	"hipmer"
)

func main() {
	lib := hipmer.SimMetagenome(13, 400000, 60, 60000)
	fmt.Printf("metagenome dataset: %d reads from 60 species "+
		"(log-normal abundances)\n", len(lib.Reads))

	res, err := hipmer.Assemble([]hipmer.Library{lib}, hipmer.Options{
		K: 31, MinCount: 2, Ranks: 64, ContigsOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("contigs: %d, total %d bp, N50 %d\n",
		res.Stats.Sequences, res.Stats.TotalLen, res.Stats.N50)

	// contig length distribution: abundant species assemble into long
	// contigs, rare ones stay fragmentary or unassembled — the coverage
	// skew the paper describes for metagenomes
	lens := make([]int, 0, len(res.Scaffolds))
	for _, c := range res.Scaffolds {
		lens = append(lens, len(c))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	fmt.Println("ten longest contigs:")
	for i := 0; i < 10 && i < len(lens); i++ {
		fmt.Printf("  %2d. %6d bp\n", i+1, lens[i])
	}
	fmt.Printf("k-mer analysis %v, contig generation %v (simulated)\n",
		res.Timing("kmer-analysis"), res.Timing("contig-generation"))
}

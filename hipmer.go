// Package hipmer is a from-scratch Go reproduction of HipMer, the
// extreme-scale de novo genome assembler of Georganas et al. (SC'15),
// itself a high-performance parallelization of the Meraculous assembler.
//
// The package assembles paired-end short reads into scaffolds through the
// full Meraculous pipeline — k-mer analysis with Bloom-filter error
// exclusion and heavy-hitter handling, de Bruijn contig generation with a
// speculative parallel traversal, the seven scaffolding modules including
// the merAligner read-to-contig aligner, and gap closing — executed over
// a simulated distributed runtime whose ranks, nodes, and communication
// costs stand in for the paper's UPC/Cray XC30 environment. Outputs are
// deterministic for a fixed Options.Seed.
//
// Quick start:
//
//	res, err := hipmer.Assemble([]hipmer.Library{{
//		Name: "lib1", Path: "reads.fastq", InsertMean: 400,
//	}}, hipmer.Options{K: 31, Ranks: 32})
//
// See the examples directory for runnable scenarios and DESIGN.md for the
// full system layout.
package hipmer

import (
	"fmt"
	"io"
	"time"

	"hipmer/internal/ckpt"
	"hipmer/internal/contig"
	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/seqdb"
	"hipmer/internal/stats"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// Read is one sequencing read.
type Read struct {
	ID   []byte
	Seq  []byte
	Qual []byte // phred+33
}

// Library is one paired-end read library. Reads come either from a FASTQ
// file (read in parallel with the block reader of paper §3.3) or from
// memory; in-memory reads must be interleaved pairs (elements 2i and 2i+1
// are mates).
type Library struct {
	Name string
	// Path to a FASTQ file (or a ".seqdb" binary container written by
	// WriteSeqDB); takes precedence over Reads.
	Path string
	// Reads are interleaved in-memory pairs.
	Reads []Read
	// InsertMean seeds insert-size estimation on small datasets (the
	// estimator's own value is used whenever enough pairs map).
	InsertMean int
}

// Options configures an assembly.
type Options struct {
	// K is the k-mer length; must be odd, defaults to 31.
	K int
	// KmerLens, when non-empty, runs the MetaHipMer-style iterative-k
	// outer loop instead of a single-k assembly: one round per length
	// (each odd, strictly increasing), with every round's tip-clipped and
	// bubble-popped contigs fed into the next round as weighted
	// pseudo-reads. Overrides K (which becomes the last entry). Stage
	// names gain per-round -k<N> suffixes — see StageNames.
	KmerLens []int
	// MinCount discards k-mers seen fewer times as erroneous (default 2).
	MinCount int
	// Ranks is the simulated processor count (default 16). On a resume
	// it may differ from the rank count the checkpoint was written at —
	// the recorded state is re-sharded onto the new team (elastic
	// rescale) and the assembly is bit-identical to a from-scratch run
	// at the new count. Ranks 0 with Resume adopts the checkpoint's
	// recorded rank count instead.
	Ranks int
	// RanksPerNode groups ranks into simulated nodes (default 24).
	RanksPerNode int
	// Seed fixes all randomized decisions (default 1).
	Seed int64
	// DisableHeavyHitters turns off the §3.1 frequent-k-mer optimization.
	DisableHeavyHitters bool
	// MinimizerLen overrides the minimizer length m used to bin k-mer
	// occurrences into super-k-mers during k-mer analysis (0 = default;
	// must be odd and satisfy 4 <= m < K when set).
	MinimizerLen int
	// DisableSuperKmers reverts stage-1 communication to one aggregated
	// store per k-mer occurrence instead of minimizer-binned super-k-mer
	// blobs (the communication-volume ablation baseline).
	DisableSuperKmers bool
	// ContigsOnly stops after contig generation (metagenome mode, §5.4).
	ContigsOnly bool
	// OracleContigs, when non-nil, builds the §3.2 communication-avoiding
	// placement from a previous assembly of the same species (e.g.
	// Result.Scaffolds of another individual) before assembling.
	OracleContigs [][]byte
	// OracleSlots sizes the oracle vector (default 8x the k-mer count of
	// OracleContigs).
	OracleSlots int
	// ScaffoldRounds repeats scaffolding + gap closing, feeding scaffolds
	// back in as contigs; the paper's wheat runs used four rounds (§5.3).
	// Default 1.
	ScaffoldRounds int
	// Verify runs the assembly oracle on the output (every contig k-mer
	// must occur in the read set; with VerifyRef also reference placement
	// and gap-size checks) and attaches the report to Result.Verify.
	Verify bool
	// VerifyRef is the reference the reads were simulated from, enabling
	// the oracle's misassembly and gap checks.
	VerifyRef []byte
	// PerturbSeed, when non-zero, enables deterministic schedule
	// perturbation (delayed rank starts, barrier arrivals, and buffer
	// flushes). The assembly must be bit-identical for every seed; tests
	// sweep seeds to prove output is schedule-independent.
	PerturbSeed int64
	// CkptDir, when set, checkpoints every stage's output into that
	// directory as it completes (see internal/ckpt for the format).
	CkptDir string
	// Resume skips stages already recorded complete in CkptDir's
	// manifest and rehydrates their outputs instead of recomputing.
	// Refused when the checkpoint's config/input fingerprint differs
	// from this run's (ckpt.ErrFingerprintMismatch). A different Ranks
	// is NOT refused — stage state re-shards onto the new rank count —
	// unless the run uses an oracle placement, which is rank-count-bound
	// (ckpt.ErrTopologyMismatch). Requires CkptDir.
	Resume bool
	// FaultSeed, with FailStage, arms deterministic fault injection: one
	// rank crashes partway through the named stage and Assemble returns
	// a *pipeline.StageFailedError. Used by the crash-resume harness.
	FaultSeed int64
	// FailStage names the pipeline stage the injected crash fires in
	// (see pipeline.StageNames for legal values).
	FailStage string
	// ChaosSeed, when non-zero, arms the unreliable-transport simulation:
	// every remote message may be deterministically dropped or duplicated
	// (per DropRate) and is carried by a reliable channel with retry,
	// capped exponential backoff, and exactly-once dedup. The assembly
	// must be bit-identical to the fault-free run — chaos only adds
	// virtual retry time and reliability counters to Result.Metrics.
	ChaosSeed int64
	// DropRate is the per-transmission loss probability in [0,1);
	// requires ChaosSeed. Default 0 (no losses even when chaos is armed).
	DropRate float64
	// RetryBudget caps retransmissions per message before the run fails
	// with a retry-exhaustion error (default 16). Only read when
	// ChaosSeed is non-zero.
	RetryBudget int
	// DiskFaultSeed, with DiskFailStage, arms deterministic storage
	// fault injection: the named stage's checkpoint write is damaged on
	// disk (torn write, bit-flip, segment deletion, or refused write —
	// the kind cycles with the seed). The faulted run itself completes
	// bit-identically — damage lands only on disk — and a later resume
	// detects it, scrubs the directory, and recomputes the damaged
	// suffix. Requires CkptDir.
	DiskFaultSeed int64
	// DiskFailStage names the checkpointable stage whose segment write
	// the storage fault targets (see StageNames).
	DiskFailStage string
}

// StageTime reports one pipeline stage's simulated (virtual) duration —
// the modelled time on the simulated machine — and the wall time the
// simulation itself took.
type StageTime struct {
	Name    string
	Virtual time.Duration
	Wall    time.Duration
}

// Stats summarizes an assembly.
type Stats struct {
	Sequences int
	TotalLen  int
	MaxLen    int
	N50       int
	N90       int
	GapBases  int
}

// Validation compares an assembly against a known reference.
type Validation struct {
	Placed        int
	Unplaced      int
	Misassemblies int
	CoveredFrac   float64
	IdentityFrac  float64
}

// Result is a finished assembly.
type Result struct {
	// Scaffolds are the final assembled sequences (contigs in
	// ContigsOnly mode), longest first.
	Scaffolds [][]byte
	// ContigSeqs are the uncontested contig sequences before scaffolding —
	// the input the §3.2 oracle partitioning is built from.
	ContigSeqs [][]byte
	// Stats summarizes the assembly.
	Stats Stats
	// Timings lists per-stage virtual durations, ending with "total".
	Timings []StageTime
	// ContigCount and HeavyHitters expose pipeline internals of interest.
	ContigCount  int64
	HeavyHitters int
	Bubbles      int
	GapsClosed   int
	Gaps         int
	// Verify is the oracle report (nil unless Options.Verify was set).
	Verify *VerifyReport
	// Metrics is the per-stage observability report: one span per
	// pipeline stage (plus named sub-spans), each with per-rank
	// communication deltas, virtual busy time, and load-imbalance
	// statistics. Every field except the wall-clock ones is
	// deterministic for a fixed configuration. Serialize it with
	// Metrics.WriteFile (cmd/hipmer -metrics-out) and render it with
	// Metrics.FormatTable (asmstats -report).
	Metrics *metrics.Report
}

// VerifyReport is the assembly oracle's verdict (Options.Verify).
type VerifyReport struct {
	// OK is true when every check passed.
	OK bool
	// Summary is a one-line account of what was checked.
	Summary string
	// Issues lists the individual failures (capped).
	Issues []string
	// Misassemblies and GapViolations expose the reference-based counts
	// (zero when no VerifyRef was given).
	Misassemblies int
	GapViolations int
	// MissingKmers counts contig k-mers absent from the read set.
	MissingKmers int64
}

// Assemble runs the full pipeline.
func Assemble(libs []Library, opt Options) (*Result, error) {
	if opt.K == 0 {
		opt.K = 31
	}
	if opt.K%2 == 0 {
		return nil, fmt.Errorf("hipmer: k must be odd, got %d", opt.K)
	}
	for i, k := range opt.KmerLens {
		if k%2 == 0 {
			return nil, fmt.Errorf("hipmer: kmer-lens entries must be odd, got %d", k)
		}
		if i > 0 && k <= opt.KmerLens[i-1] {
			return nil, fmt.Errorf("hipmer: kmer-lens must be strictly increasing, got %v", opt.KmerLens)
		}
	}
	if opt.Resume && opt.CkptDir != "" && opt.Ranks == 0 {
		// Adopt the checkpoint's recorded topology (the CLI's default
		// when -resume is given without an explicit -ranks).
		topo, err := ckpt.ReadTopology(opt.CkptDir)
		if err != nil {
			return nil, fmt.Errorf("hipmer: adopting checkpoint topology: %w", err)
		}
		opt.Ranks = topo.Ranks
		if opt.RanksPerNode == 0 {
			opt.RanksPerNode = topo.RanksPerNode
		}
	}
	if opt.Ranks <= 0 {
		opt.Ranks = 16
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	var plibs []pipeline.Library
	for _, l := range libs {
		pl := pipeline.Library{Name: l.Name, Path: l.Path, InsertHint: l.InsertMean}
		for _, rd := range l.Reads {
			pl.Records = append(pl.Records, fastq.Record{ID: rd.ID, Seq: rd.Seq, Qual: rd.Qual})
		}
		plibs = append(plibs, pl)
	}
	cfg := pipeline.Config{
		K:                   opt.K,
		KmerLens:            append([]int(nil), opt.KmerLens...),
		MinCount:            opt.MinCount,
		DisableHeavyHitters: opt.DisableHeavyHitters,
		MinimizerLen:        opt.MinimizerLen,
		DisableSuperKmers:   opt.DisableSuperKmers,
		ContigsOnly:         opt.ContigsOnly,
		ScaffoldRounds:      opt.ScaffoldRounds,
		CkptDir:             opt.CkptDir,
		Resume:              opt.Resume,
		Fault:               xrt.FaultPlan{Seed: opt.FaultSeed, Stage: opt.FailStage},
		DiskFault:           xrt.DiskFaultPlan{Seed: opt.DiskFaultSeed, Stage: opt.DiskFailStage},
	}
	if opt.Verify {
		cfg.Verify = &verify.Options{Ref: opt.VerifyRef}
	}
	if len(opt.OracleContigs) > 0 {
		var cs []*contig.Contig
		n := 0
		for i, seq := range opt.OracleContigs {
			cs = append(cs, &contig.Contig{ID: int64(i + 1), Seq: seq})
			n += len(seq)
		}
		slots := opt.OracleSlots
		if slots <= 0 {
			slots = 8 * n
		}
		cfg.Oracle = contig.BuildOracle(cs, opt.K, opt.Ranks, slots)
	}
	team := xrt.NewTeam(xrt.Config{
		Ranks:        opt.Ranks,
		RanksPerNode: opt.RanksPerNode,
		Seed:         opt.Seed,
		Perturb:      xrt.PerturbPlan{Seed: opt.PerturbSeed},
		Chaos: xrt.MessageFaultPlan{
			Seed:        opt.ChaosSeed,
			DropRate:    opt.DropRate,
			RetryBudget: opt.RetryBudget,
		},
	})
	pres, err := pipeline.Run(team, plibs, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Scaffolds: pres.FinalSeqs, Metrics: pres.Metrics}
	if pres.Contigs != nil {
		for _, c := range pres.Contigs.All() {
			res.ContigSeqs = append(res.ContigSeqs, c.Seq)
		}
	}
	s := stats.Compute(pres.FinalSeqs)
	res.Stats = Stats{
		Sequences: s.Sequences, TotalLen: s.TotalLen, MaxLen: s.MaxLen,
		N50: s.N50, N90: s.N90, GapBases: s.GapBases,
	}
	for _, t := range pres.Timings {
		res.Timings = append(res.Timings, StageTime{Name: t.Name, Virtual: t.Virtual, Wall: t.Wall})
	}
	if pres.Contigs != nil {
		res.ContigCount = pres.Contigs.NumContigs
	}
	if pres.KAnalysis != nil {
		res.HeavyHitters = pres.KAnalysis.HeavyHitters
	}
	if pres.Scaffold != nil {
		res.Bubbles = pres.Scaffold.Bubbles
	}
	if pres.Gapclose != nil {
		res.GapsClosed = pres.Gapclose.Closed
		res.Gaps = pres.Gapclose.Gaps
	}
	if pres.Verify != nil {
		vr := &VerifyReport{
			OK:            pres.Verify.OK(),
			Summary:       pres.Verify.String(),
			Misassemblies: pres.Verify.Misassemblies,
			GapViolations: pres.Verify.GapViolations,
			MissingKmers:  pres.Verify.MissingKmers,
		}
		for _, is := range pres.Verify.Issues {
			vr.Issues = append(vr.Issues, is.String())
		}
		res.Verify = vr
	}
	return res, nil
}

// StageNames returns the pipeline stage names an assembly with these
// options would execute, in order — the legal values for FailStage. In
// iterative-k mode (KmerLens) each round contributes kmer-analysis-k<N>,
// contig-generation-k<N>, tip-clip-k<N>, bubble-pop-k<N>, and
// pseudo-merge-k<N> stages.
func StageNames(opt Options) []string {
	return pipeline.StageNames(pipeline.Config{
		K:              opt.K,
		KmerLens:       append([]int(nil), opt.KmerLens...),
		ContigsOnly:    opt.ContigsOnly,
		ScaffoldRounds: opt.ScaffoldRounds,
	})
}

// Validate compares the assembly to a reference sequence.
func (r *Result) Validate(ref []byte) Validation {
	v := stats.Validate(r.Scaffolds, ref)
	return Validation{
		Placed: v.Placed, Unplaced: v.Unplaced, Misassemblies: v.Misassemblies,
		CoveredFrac: v.CoveredFrac, IdentityFrac: v.IdentityFrac,
	}
}

// Timing returns the named stage's virtual duration (zero if absent).
func (r *Result) Timing(name string) time.Duration {
	for _, t := range r.Timings {
		if t.Name == name {
			return t.Virtual
		}
	}
	return 0
}

// WriteFasta writes the scaffolds as FASTA.
func (r *Result) WriteFasta(w io.Writer) error {
	for i, seq := range r.Scaffolds {
		if _, err := fmt.Fprintf(w, ">scaffold_%d len=%d\n", i+1, len(seq)); err != nil {
			return err
		}
		for j := 0; j < len(seq); j += 80 {
			end := j + 80
			if end > len(seq) {
				end = len(seq)
			}
			if _, err := w.Write(seq[j:end]); err != nil {
				return err
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Synthetic data generation (the evaluation datasets, scaled).

// SimHumanLike generates a human-like diploid dataset: mostly unique
// sequence, 0.1% heterozygosity, one short-insert library. It returns the
// reference haplotype and the library.
func SimHumanLike(seed int64, genomeLen int, coverage float64) ([]byte, Library) {
	rng := xrt.NewPrng(seed)
	g := genome.HumanLike(rng, genomeLen)
	hap2 := genome.Mutate(rng, g, 0.001)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage:   coverage,
		Lib:        genome.Library{Name: "pe395", ReadLen: 101, InsertMean: 395, InsertSD: 30},
		Err:        genome.DefaultErrorModel(),
		Haplotypes: [][]byte{hap2},
	})
	return g, Library{Name: "pe395", Reads: toReads(recs), InsertMean: 395}
}

// SimWheatLike generates a wheat-like dataset: highly repetitive with
// heavy-hitter k-mers, three libraries including long inserts.
func SimWheatLike(seed int64, genomeLen int, coverage float64) ([]byte, []Library) {
	g, plibs := simWheat(seed, genomeLen, coverage)
	var libs []Library
	for _, pl := range plibs {
		libs = append(libs, Library{Name: pl.Name, Reads: toReads(pl.Records), InsertMean: pl.InsertHint})
	}
	return g, libs
}

func simWheat(seed int64, genomeLen int, coverage float64) ([]byte, []pipeline.Library) {
	return pipeline.SimulatedWheat(seed, genomeLen, coverage)
}

// SimMetagenome generates a wetlands-like metagenome dataset: many
// species with log-normal abundances.
func SimMetagenome(seed int64, totalLen, species, pairs int) Library {
	plibs := pipeline.SimulatedMetagenome(seed, totalLen, species, pairs)
	return Library{Name: plibs[0].Name, Reads: toReads(plibs[0].Records), InsertMean: 300}
}

// SimReads generates paired-end reads from an arbitrary genome.
func SimReads(seed int64, g []byte, coverage float64, readLen, insertMean, insertSD int) Library {
	rng := xrt.NewPrng(seed)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: coverage,
		Lib: genome.Library{Name: "sim", ReadLen: readLen,
			InsertMean: insertMean, InsertSD: insertSD},
		Err: genome.DefaultErrorModel(),
	})
	return Library{Name: "sim", Reads: toReads(recs), InsertMean: insertMean}
}

// RandomGenome generates a uniform random genome sequence.
func RandomGenome(seed int64, n int) []byte {
	return genome.Random(xrt.NewPrng(seed), n)
}

// MutateGenome introduces SNPs at the given rate — e.g. to derive another
// individual of the same species for the oracle workflow.
func MutateGenome(seed int64, g []byte, rate float64) []byte {
	return genome.Mutate(xrt.NewPrng(seed), g, rate)
}

// WriteFastq writes a library's reads as a FASTQ file suitable for
// Library.Path input.
func WriteFastq(w io.Writer, lib Library) error {
	return fastq.Write(w, toRecords(lib))
}

// WriteSeqDB writes a library's reads in the SeqDB-like binary container
// (2-bit packed, block-indexed for parallel reading); pass the resulting
// path (ending in ".seqdb") as Library.Path.
func WriteSeqDB(path string, lib Library) error {
	return seqdb.WriteFile(path, toRecords(lib))
}

func toRecords(lib Library) []fastq.Record {
	recs := make([]fastq.Record, len(lib.Reads))
	for i, rd := range lib.Reads {
		recs[i] = fastq.Record{ID: rd.ID, Seq: rd.Seq, Qual: rd.Qual}
	}
	return recs
}

func toReads(recs []fastq.Record) []Read {
	out := make([]Read, len(recs))
	for i, r := range recs {
		out[i] = Read{ID: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	return out
}

// Command benchsuite regenerates the paper's tables and figures on
// scaled-down synthetic datasets and prints them in the paper's layout.
//
// Usage:
//
//	benchsuite -all             # every experiment (a few minutes)
//	benchsuite -fig6 -table1    # selected experiments
//	benchsuite -all -cores 48,96,192,384,768
//	benchsuite -chaos -chaos-metrics-out chaos-metrics.json
//	benchsuite -meta -meta-metrics-out meta-metrics.json
//	benchsuite -rescale     # elastic-rescale sweep (heavy)
//	benchsuite -diskfault -diskfault-report diskfault-report.txt
//	benchsuite -bench-rescale-out BENCH_rescale.json -bench-rescale-baseline bench/BENCH_rescale.json
//	benchsuite -serve -serve-jobs 1000 -serve-tenants 12 \
//	           -serve-report sched-report.json \
//	           -bench-sched-out BENCH_sched.json -bench-sched-baseline bench/BENCH_sched.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hipmer/internal/expt"
	"hipmer/internal/metrics"
)

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func main() {
	all := flag.Bool("all", false, "run every experiment")
	fig6 := flag.Bool("fig6", false, "Figure 6: heavy-hitter k-mer analysis scaling (wheat)")
	table1 := flag.Bool("table1", false, "Tables 1+2: communication-avoiding traversal")
	fig7 := flag.Bool("fig7", false, "Figure 7: scaffolding strong scaling (human+wheat)")
	table3 := flag.Bool("table3", false, "Table 3: metagenome k-mer analysis + contigs")
	fig8 := flag.Bool("fig8", false, "Figure 8: end-to-end strong scaling (human+wheat)")
	compare := flag.Bool("compare", false, "§5.6: competing assemblers")
	ablations := flag.Bool("ablations", false, "design-choice ablations: Bloom memory, aggregating stores, oracle sizing")
	verifyF := flag.Bool("verify", false, "metamorphic verification: rank-count invariance, schedule perturbation, assembly oracle")
	faultResume := flag.Bool("fault-resume", false, "crash-resume sweep: injected rank crashes, checkpoint resume, bit-identical assembly")
	rescale := flag.Bool("rescale", false, "elastic-rescale sweep: crash at every stage, resume at R/2, R, 2R, bit-identical assembly (heavy; not part of -all)")
	diskFault := flag.Bool("diskfault", false, "storage-fault sweep: injected checkpoint damage at every stage × every damage kind, scrubbed + healed resume, bit-identical assembly (heavy; not part of -all)")
	diskFaultReport := flag.String("diskfault-report", "", "write the storage-fault sweep's text report to this path (implies -diskfault)")
	chaos := flag.Bool("chaos", false, "chaos sweep: message drop/dup injection, retry/dedup layer, bit-identical assembly")
	chaosMetricsOut := flag.String("chaos-metrics-out", "", "write the chaos runs' metrics reports (JSON array) to this path (implies -chaos)")
	meta := flag.Bool("meta", false, "iterative-k metagenome sweep: multi-k vs single-k recovery, abundance-aware oracle, multi-round determinism")
	metaMetricsOut := flag.String("meta-metrics-out", "", "write the metagenome sweep's metrics reports (JSON array) to this path (implies -meta)")
	metricsOut := flag.String("metrics-out", "", "write per-stage metrics reports (human+wheat, JSON array) to this path")
	benchOut := flag.String("bench-out", "", "run the k-mer-analysis communication benchmark and write BENCH_kanalysis.json to this path")
	benchBaseline := flag.String("bench-baseline", "", "committed BENCH_kanalysis.json to compare against; exit 1 if stage-1 messages regress >10% (requires -bench-out)")
	benchRescaleOut := flag.String("bench-rescale-out", "", "run the rescaled-resume cost benchmark and write BENCH_rescale.json to this path")
	benchRescaleBaseline := flag.String("bench-rescale-baseline", "", "committed BENCH_rescale.json to compare against; exit 1 if resume cost regresses >10% (requires -bench-rescale-out)")
	serve := flag.Bool("serve", false, "assembly-as-a-service load exhibit: bursty multi-tenant traffic with injected faults on the shared cluster, every job bit-identical to its solo run (heavy; not part of -all)")
	serveJobs := flag.Int("serve-jobs", 1000, "-serve: number of jobs")
	serveTenants := flag.Int("serve-tenants", 12, "-serve: number of tenants")
	serveReport := flag.String("serve-report", "", "-serve: write the hipmer-sched/v1 service report (JSON) to this path")
	benchSchedOut := flag.String("bench-sched-out", "", "write the service-scheduler bench artifact BENCH_sched.json to this path (implies -serve)")
	benchSchedBaseline := flag.String("bench-sched-baseline", "", "committed BENCH_sched.json to compare against; exit 1 if queue-wait p95 or utilization regresses >10% (requires -bench-sched-out)")
	coresFlag := flag.String("cores", "", "comma-separated simulated-core sweep override")
	humanLen := flag.Int("human-len", 0, "human-like genome length override")
	wheatLen := flag.Int("wheat-len", 0, "wheat-like genome length override")
	metaLen := flag.Int("meta-len", 0, "metagenome total length override")
	metaSpecies := flag.Int("meta-species", 0, "metagenome species-count override")
	metaPairs := flag.Int("meta-pairs", 0, "metagenome read-pair-count override")
	seed := flag.Int64("seed", 0, "seed override")
	flag.Parse()

	sc := expt.SmallScale()
	if *coresFlag != "" {
		var cores []int
		for _, s := range strings.Split(*coresFlag, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: bad core count %q\n", s)
				os.Exit(2)
			}
			cores = append(cores, c)
		}
		sc.Cores = cores
	}
	if *humanLen > 0 {
		sc.HumanLen = *humanLen
	}
	if *wheatLen > 0 {
		sc.WheatLen = *wheatLen
	}
	if *metaLen > 0 {
		sc.MetaLen = *metaLen
	}
	if *metaSpecies > 0 {
		sc.MetaSpecies = *metaSpecies
	}
	if *metaPairs > 0 {
		sc.MetaPairs = *metaPairs
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	if !(*all || *fig6 || *table1 || *fig7 || *table3 || *fig8 || *compare || *ablations || *verifyF ||
		*faultResume || *rescale || *diskFault || *diskFaultReport != "" ||
		*chaos || *chaosMetricsOut != "" || *meta || *metaMetricsOut != "" ||
		*metricsOut != "" || *benchOut != "" || *benchRescaleOut != "" || *serve || *benchSchedOut != "") {
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("HipMer-Go experiment suite — cores %v, seed %d\n", sc.Cores, sc.Seed)
	fmt.Printf("(virtual times on the simulated machine; shapes, not absolute values,\n")
	fmt.Printf(" reproduce the paper — see EXPERIMENTS.md)\n\n")

	if *all || *fig6 {
		_, text := expt.Fig6(sc)
		fmt.Println(text)
	}
	if *all || *table1 {
		_, t1, t2 := expt.Tables12(sc)
		fmt.Println(t1)
		fmt.Println(t2)
	}
	var humanRows, wheatRows []expt.SweepRow
	needSweep := *all || *fig7 || *fig8
	if needSweep {
		var err error
		humanRows, err = expt.RunSweep(sc, "human")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		wheatRows, err = expt.RunSweep(sc, "wheat")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
	}
	if *all || *fig7 {
		fmt.Println(expt.Fig7Format(humanRows))
		fmt.Println(expt.Fig7Format(wheatRows))
	}
	if *all || *table3 {
		_, text := expt.Table3(sc)
		fmt.Println(text)
	}
	if *all || *fig8 {
		fmt.Println(expt.Fig8Format(humanRows))
		fmt.Println(expt.Fig8Format(wheatRows))
	}
	if *all || *compare {
		_, text := expt.Compare(sc)
		fmt.Println(text)
	}
	if *all || *verifyF {
		rows, text := expt.VerifySweep(sc)
		fmt.Println(text)
		for _, r := range rows {
			if !(r.RanksInvariant && r.BitIdentical && r.OracleOK) {
				fmt.Fprintf(os.Stderr, "benchsuite: verification failed on %s\n", r.Dataset)
				os.Exit(1)
			}
		}
	}
	if *all || *faultResume {
		rows, text := expt.CrashResumeSweep(sc)
		fmt.Println(text)
		for _, r := range rows {
			if !r.Gate() {
				fmt.Fprintf(os.Stderr, "benchsuite: crash-resume sweep failed on %s\n", r.Dataset)
				os.Exit(1)
			}
		}
	}
	if *rescale {
		rows, text := expt.RescaleSweep(sc)
		fmt.Println(text)
		for _, r := range rows {
			if !r.Gate() {
				fmt.Fprintf(os.Stderr, "benchsuite: elastic-rescale sweep failed on %s/%s\n", r.Dataset, r.Mode)
				os.Exit(1)
			}
		}
	}
	if *diskFault || *diskFaultReport != "" {
		rows, svc, text := expt.DiskFaultSweep(sc)
		fmt.Println(text)
		if *diskFaultReport != "" {
			if err := os.WriteFile(*diskFaultReport, []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote storage-fault sweep report to %s\n", *diskFaultReport)
		}
		for _, r := range rows {
			if !r.Gate() {
				fmt.Fprintf(os.Stderr, "benchsuite: storage-fault sweep failed on %s\n", r.Dataset)
				os.Exit(1)
			}
		}
		if !svc.Gate() {
			fmt.Fprintf(os.Stderr, "benchsuite: storage-fault service leg failed: %+v\n", svc)
			os.Exit(1)
		}
	}
	if *all || *chaos || *chaosMetricsOut != "" {
		rows, reports, text := expt.ChaosSweep(sc)
		fmt.Println(text)
		for _, r := range rows {
			fmt.Printf("  %s retry overhead: virtual %+.1f%%, payload traffic %+.1f%%, %s redelivered\n",
				r.Dataset, r.VirtualOverheadPct(), r.CommOverheadPct(),
				humanBytes(r.RedeliveredBytes))
		}
		fmt.Println()
		if *chaosMetricsOut != "" {
			if err := metrics.WriteFileAll(*chaosMetricsOut, reports); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d chaos metrics reports to %s\n", len(reports), *chaosMetricsOut)
		}
		for _, r := range rows {
			if !r.Gate() {
				fmt.Fprintf(os.Stderr, "benchsuite: chaos sweep failed on %s\n", r.Dataset)
				os.Exit(1)
			}
		}
	}
	if *all || *meta || *metaMetricsOut != "" {
		row, reports, text := expt.MetaSweep(sc)
		fmt.Println(text)
		if *metaMetricsOut != "" {
			if err := metrics.WriteFileAll(*metaMetricsOut, reports); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d metagenome metrics reports to %s\n", len(reports), *metaMetricsOut)
		}
		if !row.Gate() {
			fmt.Fprintf(os.Stderr, "benchsuite: metagenome sweep gate failed\n")
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		reports, err := expt.MetricsReports(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		if err := metrics.WriteFileAll(*metricsOut, reports); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics reports to %s\n", len(reports), *metricsOut)
	}
	if *all || *ablations {
		_, text := expt.AblationBloom(sc)
		fmt.Println(text)
		_, text = expt.AblationAggStores(sc)
		fmt.Println(text)
		_, text = expt.AblationSuperKmers(sc)
		fmt.Println(text)
		_, text = expt.AblationOracleMemory(sc)
		fmt.Println(text)
	}
	if *benchOut != "" {
		art, text := expt.BenchKanalysis(sc)
		fmt.Println(text)
		if err := art.WriteFile(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote k-mer analysis bench artifact to %s\n", *benchOut)
		if err := art.Gate(); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		if *benchBaseline != "" {
			base, err := expt.ReadBenchArtifact(*benchBaseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			if err := expt.CompareBenchArtifacts(base, art, 10); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("bench comparison vs %s: within 10%% of baseline\n", *benchBaseline)
		}
	}
	if *benchRescaleOut != "" {
		art, text := expt.BenchRescale(sc)
		fmt.Println(text)
		if err := art.WriteFile(*benchRescaleOut); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote rescale bench artifact to %s\n", *benchRescaleOut)
		if err := art.Gate(); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		if *benchRescaleBaseline != "" {
			base, err := expt.ReadRescaleArtifact(*benchRescaleBaseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			if err := expt.CompareRescaleArtifacts(base, art, 10); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("rescale bench comparison vs %s: within 10%% of baseline\n", *benchRescaleBaseline)
		}
	}
	if *serve || *benchSchedOut != "" {
		if err := validateServeOptions(*serveJobs, *serveTenants, *benchSchedOut, *benchSchedBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(2)
		}
		res, text, err := expt.ServeSweep(sc.Seed, *serveJobs, *serveTenants)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(text)
		if *serveReport != "" {
			if err := res.Report.WriteFile(*serveReport); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote service report to %s\n", *serveReport)
		}
		if err := res.Gate(); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: service exhibit gate failed: %v\n", err)
			os.Exit(1)
		}
		if *benchSchedOut != "" {
			art := expt.NewSchedArtifact(res, *serveJobs, *serveTenants)
			if err := art.WriteFile(*benchSchedOut); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote service-scheduler bench artifact to %s\n", *benchSchedOut)
			if err := art.Gate(); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
				os.Exit(1)
			}
			if *benchSchedBaseline != "" {
				base, err := expt.ReadSchedArtifact(*benchSchedBaseline)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
					os.Exit(1)
				}
				if err := expt.CompareSchedArtifacts(base, art, 10); err != nil {
					fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("sched bench comparison vs %s: within 10%% of baseline\n", *benchSchedBaseline)
			}
		}
	}
}

// validateServeOptions rejects unusable -serve parameter combinations
// before the (multi-minute) exhibit starts; main exits 2 on error.
func validateServeOptions(jobs, tenants int, benchOut, benchBaseline string) error {
	if jobs < 1 {
		return fmt.Errorf("-serve-jobs must be >= 1, got %d", jobs)
	}
	if tenants < 1 {
		return fmt.Errorf("-serve-tenants must be >= 1, got %d", tenants)
	}
	if benchBaseline != "" && benchOut == "" {
		return fmt.Errorf("-bench-sched-baseline requires -bench-sched-out")
	}
	return nil
}

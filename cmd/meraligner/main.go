// Command meraligner aligns FASTQ reads against an assembly (FASTA) with
// the parallel seed-and-extend aligner of paper §4.3, writing one
// PAF-like tab-separated line per alignment:
//
//	readID readLen rStart rEnd strand contigName contigLen cStart cEnd matches alnLen
//
// Usage:
//
//	meraligner -reads reads.fastq -contigs assembly.fasta [-seed-len 19] [-ranks 16]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hipmer/internal/aligner"
	"hipmer/internal/contig"
	"hipmer/internal/fasta"
	"hipmer/internal/fastq"
	"hipmer/internal/xrt"
)

func main() {
	readsPath := flag.String("reads", "", "FASTQ reads to align")
	contigsPath := flag.String("contigs", "", "FASTA contigs/scaffolds to align against")
	seedLen := flag.Int("seed-len", 19, "seed k-mer length (odd)")
	ranks := flag.Int("ranks", 16, "simulated processor count")
	out := flag.String("out", "-", "output path (- for stdout)")
	flag.Parse()
	if *readsPath == "" || *contigsPath == "" {
		fmt.Fprintln(os.Stderr, "meraligner: -reads and -contigs are required")
		flag.Usage()
		os.Exit(2)
	}

	refs, err := fasta.ReadFile(*contigsPath)
	if err != nil {
		fail(err)
	}
	team := xrt.NewTeam(xrt.Config{Ranks: *ranks})
	byRank := make([][]*contig.Contig, *ranks)
	names := make(map[int64]string)
	for i, rec := range refs {
		c := &contig.Contig{ID: int64(i + 1), Seq: rec.Seq}
		byRank[i%*ranks] = append(byRank[i%*ranks], c)
		names[c.ID] = rec.Name
	}
	idx := aligner.BuildIndex(team, byRank, aligner.Options{SeedLen: *seedLen})

	fl, err := fastq.OpenSplit(*readsPath, *ranks)
	if err != nil {
		fail(err)
	}
	defer fl.Close()
	readsByRank := make([][]fastq.Record, *ranks)
	var readErr error
	team.Run(func(r *xrt.Rank) {
		recs, err := fl.ReadPart(r.ID)
		if err != nil {
			readErr = err
			return
		}
		readsByRank[r.ID] = recs
	})
	if readErr != nil {
		fail(readErr)
	}

	alns := aligner.AlignAll(team, idx, readsByRank)

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	total, aligned := 0, 0
	for rk := range readsByRank {
		for i, rec := range readsByRank[rk] {
			total++
			if len(alns[rk][i]) > 0 {
				aligned++
			}
			for _, a := range alns[rk][i] {
				strand := "+"
				if a.Flipped {
					strand = "-"
				}
				fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
					rec.ID, a.ReadLen, a.RStart, a.REnd, strand,
					names[a.ContigID], a.ContigLen, a.CStart, a.CEnd,
					a.Matches, a.REnd-a.RStart)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "meraligner: %d/%d reads aligned\n", aligned, total)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "meraligner: %v\n", err)
	os.Exit(1)
}

// Command hipmerd is the assembly-as-a-service front end: it accepts a
// batch of assembly jobs from many tenants, schedules them onto one
// shared simulated cluster with admission control, a bounded priority
// queue, and per-tenant rank quotas, and runs every job as a
// checkpointable pipeline — an injected crash or chaos retry exhaustion
// in one job requeues and resumes that job alone, and idle capacity
// elastically rescales queued resumable jobs. See DESIGN.md §15.
//
// Usage:
//
//	hipmerd -ranks 32 -tenant acme:16 -tenant umich:8 -default-quota 8 \
//	        -jobs jobs.json -report sched-report.json [-metrics-dir DIR]
//	hipmerd -ranks 32 -loadgen -lg-jobs 1000 -lg-tenants 12 \
//	        -report sched-report.json
//
// Jobs come from a JSON job file (-jobs; see internal/sched.ParseJobFile
// for the schema: per-job tenant, dataset or FASTQ paths, pipeline
// options, ranks, priority, arrival, optional fault/chaos arming) or
// from the seeded load generator (-loadgen), which stamps bursty
// open-loop arrivals from mixed human/wheat/metagenome templates — the
// same generator benchsuite -serve uses for the heavy-traffic exhibit.
//
// The service report (schema hipmer-sched/v1) is printed as a table and
// optionally written as JSON (-report). With -metrics-dir each tenant's
// completed jobs' hipmer-metrics/v1 reports are written to
// <dir>/<tenant>.metrics.json. The scheduler is deterministic: rerunning
// with the same flags produces a byte-identical report.
//
// Exit codes: 0 all jobs completed; 1 runtime error or any terminally
// failed job; 2 usage error; 7 any job rejected by admission control
// (shared with the cmd/hipmer taxonomy).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"hipmer/internal/metrics"
	"hipmer/internal/sched"
)

const (
	exitRuntimeError      = 1
	exitUsageError        = 2
	exitAdmissionRejected = 7
)

// tenantFlags collects repeatable -tenant name:quota declarations.
type tenantFlags []sched.TenantConfig

func (t *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*t)) }

func (t *tenantFlags) Set(v string) error {
	name, quotaStr, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("want name:quota, got %q", v)
	}
	quota, err := strconv.Atoi(quotaStr)
	if err != nil {
		return fmt.Errorf("bad quota in %q: %w", v, err)
	}
	*t = append(*t, sched.TenantConfig{Name: name, Quota: quota})
	return nil
}

func main() {
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "tenant declaration name:quota (repeatable)")
	ranks := flag.Int("ranks", 32, "shared simulated cluster size")
	ranksPerNode := flag.Int("ranks-per-node", 8, "simulated cores per node")
	seed := flag.Int64("seed", 1, "scheduler PRNG seed (tie-breaks)")
	queueCap := flag.Int("queue-cap", 64, "admission queue bound; arrivals beyond it are rejected")
	defaultQuota := flag.Int("default-quota", 0, "rank quota for tenants not declared via -tenant (0 = reject unknown tenants)")
	maxRetries := flag.Int("max-retries", 2, "requeues allowed per job after retryable failures")
	maxPreempts := flag.Int("max-preempts", 1, "times one job may be preempted before it becomes immune")
	noPreempt := flag.Bool("no-preempt", false, "disable priority preemption")
	noRescale := flag.Bool("no-rescale", false, "disable elastic rescale of queued resumable jobs")
	agingMs := flag.Int64("aging-ms", 50, "virtual queue-wait (ms) that raises a queued job's effective priority one step")
	ckptRoot := flag.String("ckpt-root", "", "directory hosting per-job checkpoint dirs (default: fresh temp dir)")
	keepCkpts := flag.Bool("keep-ckpts", false, "keep per-job checkpoint dirs after the run")
	jobsPath := flag.String("jobs", "", "JSON job file (see internal/sched.ParseJobFile)")
	loadgen := flag.Bool("loadgen", false, "generate jobs with the seeded load generator instead of -jobs")
	lgJobs := flag.Int("lg-jobs", 100, "loadgen: number of jobs")
	lgTenants := flag.Int("lg-tenants", 8, "loadgen: number of synthetic tenants (overrides -tenant)")
	lgGapMs := flag.Float64("lg-mean-gap-ms", 3, "loadgen: mean virtual interarrival gap (ms)")
	lgBurst := flag.Int("lg-burst", 8, "loadgen: maximum burst size (1 disables bursts)")
	lgFaultFrac := flag.Float64("lg-fault-frac", 0.04, "loadgen: fraction of jobs with an armed mid-pipeline crash")
	lgChaosFrac := flag.Float64("lg-chaos-frac", 0.06, "loadgen: fraction of jobs with message chaos armed")
	lgDiskFrac := flag.Float64("lg-disk-frac", 0.03, "loadgen: fraction of jobs with a storage fault armed (paired with a later crash so the resume must scrub and heal)")
	lgMaxPrio := flag.Int("lg-max-priority", 2, "loadgen: priorities drawn from 0..N")
	lgOversize := flag.Int("lg-oversize", 0, "loadgen: jobs requesting an unsatisfiable rank count (admission-rejection exercises)")
	lgSeed := flag.Int64("lg-seed", 0, "loadgen: arrival/draw seed (0 = -seed)")
	reportPath := flag.String("report", "", "write the hipmer-sched/v1 service report (JSON) to this path")
	metricsDir := flag.String("metrics-dir", "", "write per-tenant hipmer-metrics/v1 report arrays under this directory")
	quiet := flag.Bool("quiet", false, "suppress the report table on stdout")
	flag.Parse()

	cfg := sched.Config{
		Ranks:          *ranks,
		RanksPerNode:   *ranksPerNode,
		Seed:           *seed,
		QueueCap:       *queueCap,
		Tenants:        tenants,
		DefaultQuota:   *defaultQuota,
		MaxRetries:     *maxRetries,
		MaxPreempts:    *maxPreempts,
		DisablePreempt: *noPreempt,
		DisableRescale: *noRescale,
		AgingNs:        *agingMs * int64(time.Millisecond),
		CkptRoot:       *ckptRoot,
		KeepCkpts:      *keepCkpts,
	}
	lg := loadgenOptions{
		Enabled:     *loadgen,
		Jobs:        *lgJobs,
		Tenants:     *lgTenants,
		MeanGapMs:   *lgGapMs,
		Burst:       *lgBurst,
		FaultFrac:   *lgFaultFrac,
		ChaosFrac:   *lgChaosFrac,
		DiskFrac:    *lgDiskFrac,
		MaxPriority: *lgMaxPrio,
		Oversize:    *lgOversize,
	}
	if err := validateOptions(cfg, *jobsPath, lg, *agingMs); err != nil {
		fmt.Fprintf(os.Stderr, "hipmerd: %v\n", err)
		flag.Usage()
		os.Exit(exitUsageError)
	}

	specs, cfg, cleanup, err := buildJobs(cfg, *jobsPath, lg, *lgSeed, *seed)
	if cleanup != nil {
		defer cleanup()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipmerd: %v\n", err)
		os.Exit(exitRuntimeError)
	}

	s, err := sched.New(cfg, &sched.PipelineRunner{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipmerd: %v\n", err)
		os.Exit(exitUsageError)
	}
	out, err := s.Run(specs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipmerd: %v\n", err)
		os.Exit(exitRuntimeError)
	}

	if !*quiet {
		fmt.Print(out.Report.FormatTable())
	}
	if *reportPath != "" {
		if err := out.Report.WriteFile(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "hipmerd: %v\n", err)
			os.Exit(exitRuntimeError)
		}
	}
	if *metricsDir != "" {
		if err := writeTenantMetrics(*metricsDir, out); err != nil {
			fmt.Fprintf(os.Stderr, "hipmerd: %v\n", err)
			os.Exit(exitRuntimeError)
		}
	}

	os.Exit(exitCodeFor(out))
}

// loadgenOptions carries the -lg-* flags into validation and job
// construction.
type loadgenOptions struct {
	Enabled     bool
	Jobs        int
	Tenants     int
	MeanGapMs   float64
	Burst       int
	FaultFrac   float64
	ChaosFrac   float64
	DiskFrac    float64
	MaxPriority int
	Oversize    int
}

// buildJobs resolves the job source: a parsed job file, or generated
// load with the default template pool (materialized under a temp dir the
// returned cleanup removes). With -loadgen the tenant set is synthetic
// (tiered quotas over -lg-tenants names) unless -tenant declared one.
func buildJobs(cfg sched.Config, jobsPath string, lg loadgenOptions, lgSeed, seed int64) ([]sched.JobSpec, sched.Config, func(), error) {
	if !lg.Enabled {
		specs, err := sched.ParseJobFile(jobsPath)
		return specs, cfg, nil, err
	}
	if lgSeed == 0 {
		lgSeed = seed
	}
	dir, err := os.MkdirTemp("", "hipmerd-loadgen")
	if err != nil {
		return nil, cfg, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	templates, err := sched.DefaultTemplates(lgSeed, dir)
	if err != nil {
		return nil, cfg, cleanup, err
	}
	specs, err := sched.GenJobs(sched.LoadConfig{
		Seed:        lgSeed,
		Tenants:     lg.Tenants,
		Jobs:        lg.Jobs,
		MeanGapNs:   int64(lg.MeanGapMs * float64(time.Millisecond)),
		Burst:       lg.Burst,
		FaultFrac:   lg.FaultFrac,
		ChaosFrac:   lg.ChaosFrac,
		DiskFrac:    lg.DiskFrac,
		MaxPriority: lg.MaxPriority,
		Oversize:    lg.Oversize,
	}, templates)
	if err != nil {
		return nil, cfg, cleanup, err
	}
	if len(cfg.Tenants) == 0 {
		// Floor quotas at 8: the largest default template requests 8
		// ranks, so every synthetic tenant can run the whole mix.
		cfg.Tenants = sched.DefaultTenantConfigs(lg.Tenants, cfg.Ranks, 8)
	}
	return specs, cfg, cleanup, nil
}

// writeTenantMetrics groups completed jobs' hipmer-metrics/v1 reports by
// tenant and writes one JSON array per tenant.
func writeTenantMetrics(dir string, out *sched.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	byTenant := make(map[string][]*metrics.Report)
	for _, j := range out.Jobs {
		if j.Metrics != nil {
			byTenant[j.Tenant] = append(byTenant[j.Tenant], j.Metrics)
		}
	}
	names := make([]string, 0, len(byTenant))
	for n := range byTenant {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := metrics.WriteFileAll(filepath.Join(dir, n+".metrics.json"), byTenant[n]); err != nil {
			return err
		}
	}
	return nil
}

// exitCodeFor maps the service outcome onto the exit-code contract:
// admission rejections dominate (the caller's submission was refused —
// cmd/hipmer's exit 7), then terminal failures, then success.
func exitCodeFor(out *sched.Outcome) int {
	rejected, failed := 0, 0
	for _, j := range out.Jobs {
		switch j.State {
		case sched.StateRejected:
			rejected++
		case sched.StateFailed:
			failed++
		}
	}
	if rejected > 0 {
		fmt.Fprintf(os.Stderr, "hipmerd: %d of %d jobs: %v\n", rejected, len(out.Jobs), sched.ErrAdmissionRejected)
		return exitAdmissionRejected
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hipmerd: %d of %d jobs failed terminally\n", failed, len(out.Jobs))
		return exitRuntimeError
	}
	return 0
}

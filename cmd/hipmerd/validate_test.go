package main

import (
	"strings"
	"testing"

	"hipmer/internal/sched"
)

// TestValidateOptions pins the daemon's usage contract: every flag
// combination main would exit 2 on returns an error naming the offending
// flag, and sane configurations pass.
func TestValidateOptions(t *testing.T) {
	base := func() sched.Config {
		return sched.Config{
			Ranks:        32,
			RanksPerNode: 8,
			Tenants: []sched.TenantConfig{
				{Name: "acme", Quota: 16},
				{Name: "umich", Quota: 16},
			},
		}
	}
	lgOK := loadgenOptions{
		Enabled: true, Jobs: 100, Tenants: 8, MeanGapMs: 3, Burst: 8,
		FaultFrac: 0.04, ChaosFrac: 0.06, MaxPriority: 2,
	}

	cases := []struct {
		name    string
		cfg     func() sched.Config
		jobs    string
		lg      loadgenOptions
		agingMs int64
		wantErr string
	}{
		{"loadgen-ok", base, "", lgOK, 50, ""},
		{"jobfile-ok", base, "jobs.json", loadgenOptions{}, 50, ""},
		{"no-source", base, "", loadgenOptions{}, 50, "job source"},
		{"both-sources", base, "jobs.json", lgOK, 50, "mutually exclusive"},
		{"zero-ranks", func() sched.Config { c := base(); c.Ranks = 0; return c },
			"jobs.json", loadgenOptions{}, 50, "ranks"},
		{"zero-quota", func() sched.Config {
			c := base()
			c.Tenants[0].Quota = 0
			return c
		}, "jobs.json", loadgenOptions{}, 50, "quota"},
		{"quota-over-ranks", func() sched.Config {
			c := base()
			c.Tenants[0].Quota = 64
			return c
		}, "jobs.json", loadgenOptions{}, 50, "exceeds cluster ranks"},
		{"duplicate-tenant", func() sched.Config {
			c := base()
			c.Tenants[1].Name = "acme"
			return c
		}, "jobs.json", loadgenOptions{}, 50, "duplicate tenant"},
		{"stranded-capacity", func() sched.Config {
			c := base()
			c.Tenants = []sched.TenantConfig{{Name: "acme", Quota: 4}}
			return c
		}, "jobs.json", loadgenOptions{}, 50, "unusable"},
		{"negative-aging", base, "jobs.json", loadgenOptions{}, -1, "-aging-ms"},
		{"zero-lg-jobs", base, "", func() loadgenOptions { l := lgOK; l.Jobs = 0; return l }(), 50, "-lg-jobs"},
		{"zero-lg-tenants", base, "", func() loadgenOptions { l := lgOK; l.Tenants = 0; return l }(), 50, "-lg-tenants"},
		{"zero-gap", base, "", func() loadgenOptions { l := lgOK; l.MeanGapMs = 0; return l }(), 50, "-lg-mean-gap-ms"},
		{"zero-burst", base, "", func() loadgenOptions { l := lgOK; l.Burst = 0; return l }(), 50, "-lg-burst"},
		{"fault-frac-over-1", base, "", func() loadgenOptions { l := lgOK; l.FaultFrac = 1.5; return l }(), 50, "-lg-fault-frac"},
		{"chaos-frac-negative", base, "", func() loadgenOptions { l := lgOK; l.ChaosFrac = -0.1; return l }(), 50, "-lg-chaos-frac"},
		{"disk-frac-over-1", base, "", func() loadgenOptions { l := lgOK; l.DiskFrac = 1.2; return l }(), 50, "-lg-disk-frac"},
		{"disk-frac-negative", base, "", func() loadgenOptions { l := lgOK; l.DiskFrac = -0.2; return l }(), 50, "-lg-disk-frac"},
		{"disk-frac-ok", base, "", func() loadgenOptions { l := lgOK; l.DiskFrac = 0.05; return l }(), 50, ""},
		{"negative-priority", base, "", func() loadgenOptions { l := lgOK; l.MaxPriority = -1; return l }(), 50, "-lg-max-priority"},
		{"oversize-over-jobs", base, "", func() loadgenOptions { l := lgOK; l.Oversize = 101; return l }(), 50, "-lg-oversize"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateOptions(c.cfg(), c.jobs, c.lg, c.agingMs)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

package main

import (
	"fmt"

	"hipmer/internal/sched"
)

// validateOptions rejects invalid or conflicting service configurations
// before any work starts (the cmd/hipmer validateOptions contract: kept
// separate from flag parsing so tests drive it directly; main exits 2 on
// any returned error). Structural scheduler validation — quota bounds,
// duplicate tenants, stranded capacity — lives in sched.Config.Validate
// and is folded in here.
func validateOptions(cfg sched.Config, jobsPath string, lg loadgenOptions, agingMs int64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if agingMs < 0 {
		return fmt.Errorf("-aging-ms must be >= 0, got %d", agingMs)
	}
	if lg.Enabled && jobsPath != "" {
		return fmt.Errorf("-jobs and -loadgen are mutually exclusive")
	}
	if !lg.Enabled && jobsPath == "" {
		return fmt.Errorf("a job source is required: -jobs FILE or -loadgen")
	}
	if !lg.Enabled {
		return nil
	}
	// The generator re-validates as sched.LoadConfig; checking here too
	// keeps every flag error on the exit-2 usage path with flag names.
	if lg.Jobs < 1 {
		return fmt.Errorf("-lg-jobs must be >= 1, got %d", lg.Jobs)
	}
	if lg.Tenants < 1 {
		return fmt.Errorf("-lg-tenants must be >= 1, got %d", lg.Tenants)
	}
	if lg.MeanGapMs <= 0 {
		return fmt.Errorf("-lg-mean-gap-ms must be > 0, got %g", lg.MeanGapMs)
	}
	if lg.Burst < 1 {
		return fmt.Errorf("-lg-burst must be >= 1, got %d", lg.Burst)
	}
	if lg.FaultFrac < 0 || lg.FaultFrac > 1 {
		return fmt.Errorf("-lg-fault-frac must be in [0, 1], got %g", lg.FaultFrac)
	}
	if lg.ChaosFrac < 0 || lg.ChaosFrac > 1 {
		return fmt.Errorf("-lg-chaos-frac must be in [0, 1], got %g", lg.ChaosFrac)
	}
	if lg.DiskFrac < 0 || lg.DiskFrac > 1 {
		return fmt.Errorf("-lg-disk-frac must be in [0, 1], got %g", lg.DiskFrac)
	}
	if lg.MaxPriority < 0 {
		return fmt.Errorf("-lg-max-priority must be >= 0, got %d", lg.MaxPriority)
	}
	if lg.Oversize < 0 || lg.Oversize > lg.Jobs {
		return fmt.Errorf("-lg-oversize must be in 0..-lg-jobs, got %d", lg.Oversize)
	}
	return nil
}

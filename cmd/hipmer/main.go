// Command hipmer assembles FASTQ reads into scaffolds with the full
// HipMer pipeline on the simulated distributed runtime.
//
// Usage:
//
//	hipmer -reads lib1.fastq[,insert] [-reads lib2.fastq,4200] \
//	       -k 31 -ranks 48 -out assembly.fasta [-contigs-only] [-ref ref.fasta] \
//	       [-kmer-lens 21,33,55] \
//	       [-ckpt-dir run1.ckpt [-resume [-ranks N]]] [-fault-seed N -fail-stage scaffolding] \
//	       [-chaos-seed N -drop-rate 0.05 [-retry-budget 16]] \
//	       [-disk-fault-seed N -disk-fail-stage contig-generation]
//	hipmer -scrub -ckpt-dir run1.ckpt
//
// -kmer-lens runs the MetaHipMer-style iterative-k loop (metagenome
// mode): one assembly round per length, each round's tip-clipped and
// bubble-popped contigs fed into the next as weighted pseudo-reads.
// Stage names gain per-round suffixes (e.g. tip-clip-k33) for
// -fail-stage targeting.
//
// With -ckpt-dir each stage's output is checkpointed as it completes;
// rerunning with -resume skips completed stages after validating the
// checkpoint's config/input fingerprint. A resume may change the rank
// count (elastic rescale): without an explicit -ranks (or with -ranks 0)
// the run adopts the checkpoint's recorded topology; with one, the
// recorded stage state is re-sharded onto the new count and the assembly
// is bit-identical to a from-scratch run at that count.
// -fault-seed/-fail-stage inject a deterministic rank crash for
// crash-resume testing. -chaos-seed arms the unreliable-transport
// simulation: messages are dropped/duplicated per -drop-rate and carried
// by the deterministic retry/backoff/dedup layer; the assembly must be
// bit-identical to the fault-free run.
//
// -disk-fault-seed/-disk-fail-stage inject deterministic storage damage
// into the named stage's checkpoint write (torn write, bit-flip,
// deletion, or refused write — the kind cycles with the seed); the
// faulted run still completes bit-identically, and a later -resume
// detects the damage, scrubs the directory, and recomputes the damaged
// suffix. -scrub runs the same repair offline: it re-validates every
// manifest entry, quarantines damaged segments as *.quarantine, prints
// a per-entry verdict table, and truncates the manifest to the longest
// intact prefix.
//
// Exit codes: 0 success (or verified), 1 runtime/verification error,
// 2 usage error (validateOptions), 3 injected rank crash (resumable with
// -resume), 4 chaos retry budget exhausted (also resumable with -resume),
// 5 checkpoint written by a different config/input (fingerprint
// mismatch), 6 checkpoint topology incompatible with this run (e.g. an
// oracle-placed run resuming at a different rank count), 8 checkpoint
// unrecoverable — manifest missing or unparsable, nothing to heal from
// (start a fresh -ckpt-dir).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hipmer"
	"hipmer/internal/ckpt"
	"hipmer/internal/fasta"
	"hipmer/internal/pipeline"
)

type libFlags []hipmer.Library

func (l *libFlags) String() string { return fmt.Sprintf("%d libraries", len(*l)) }

func (l *libFlags) Set(v string) error {
	parts := strings.SplitN(v, ",", 2)
	lib := hipmer.Library{Name: parts[0], Path: parts[0]}
	if len(parts) == 2 {
		ins, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("bad insert size %q: %w", parts[1], err)
		}
		lib.InsertMean = ins
	}
	*l = append(*l, lib)
	return nil
}

func main() {
	var libs libFlags
	flag.Var(&libs, "reads", "FASTQ file, optionally with ,insertSize (repeatable)")
	k := flag.Int("k", 31, "k-mer length (odd)")
	kmerLens := flag.String("kmer-lens", "", "comma-separated iterative-k ladder, e.g. 21,33,55 (odd, strictly increasing); runs one assembly round per length with contig feedback, overriding -k")
	minCount := flag.Int("min-count", 2, "minimum k-mer count (error threshold)")
	ranks := flag.Int("ranks", 48, "simulated processor count (with -resume: 0 or omitted adopts the checkpoint's recorded rank count; an explicit value re-shards the checkpoint onto it)")
	ranksPerNode := flag.Int("ranks-per-node", 24, "simulated cores per node")
	seed := flag.Int64("seed", 1, "deterministic seed")
	out := flag.String("out", "assembly.fasta", "output FASTA path")
	contigsOnly := flag.Bool("contigs-only", false, "stop after contig generation (metagenome mode)")
	noHH := flag.Bool("no-heavy-hitters", false, "disable the heavy-hitter optimization")
	minimizerLen := flag.Int("minimizer-len", 0, "super-k-mer minimizer length m (0 = default; odd, 4 <= m < k)")
	noSuperKmers := flag.Bool("no-superkmers", false, "send one store per k-mer occurrence instead of minimizer-binned super-k-mer blobs")
	refPath := flag.String("ref", "", "optional reference FASTA for validation")
	doVerify := flag.Bool("verify", false, "run the assembly oracle (with -ref: also misassembly and gap checks); exit nonzero on failure")
	perturbSeed := flag.Int64("perturb-seed", 0, "schedule-perturbation seed (0 = off); output must not depend on it")
	metricsOut := flag.String("metrics-out", "", "write the per-stage metrics report (JSON) to this path")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint each stage's output into this directory")
	resume := flag.Bool("resume", false, "skip stages already checkpointed in -ckpt-dir (fingerprint-validated)")
	faultSeed := flag.Int64("fault-seed", 0, "deterministic fault-injection seed (requires -fail-stage)")
	failStage := flag.String("fail-stage", "", "pipeline stage the injected rank crash fires in (requires -fault-seed)")
	chaosSeed := flag.Int64("chaos-seed", 0, "unreliable-transport seed (0 = off); output must not depend on it")
	dropRate := flag.Float64("drop-rate", 0, "per-message loss probability in [0,1) (requires -chaos-seed)")
	retryBudget := flag.Int("retry-budget", 16, "max retransmissions per message before the run fails (exit 4)")
	diskFaultSeed := flag.Int64("disk-fault-seed", 0, "storage fault-injection seed (requires -disk-fail-stage and -ckpt-dir)")
	diskFailStage := flag.String("disk-fail-stage", "", "checkpointable stage whose segment write the storage fault damages")
	scrub := flag.Bool("scrub", false, "offline checkpoint repair: validate -ckpt-dir, quarantine damaged segments, truncate to the intact prefix, and exit")
	flag.Parse()

	// A resume defaults to the checkpoint's recorded topology: the flag
	// defaults (48/24) must not silently rescale a checkpoint written at
	// another rank count, so unless the user explicitly set the flag it
	// collapses to the adopt-recorded sentinel (Options.Ranks == 0).
	if *resume {
		ranksSet, rpnSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "ranks":
				ranksSet = true
			case "ranks-per-node":
				rpnSet = true
			}
		})
		if !ranksSet {
			*ranks = 0
		}
		if !rpnSet {
			*ranksPerNode = 0
		}
	}

	var lens []int
	if *kmerLens != "" {
		for _, s := range strings.Split(*kmerLens, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "hipmer: bad -kmer-lens entry %q\n", s)
				os.Exit(2)
			}
			lens = append(lens, v)
		}
	}

	opts := hipmer.Options{
		K:                   *k,
		KmerLens:            lens,
		MinCount:            *minCount,
		Ranks:               *ranks,
		RanksPerNode:        *ranksPerNode,
		Seed:                *seed,
		ContigsOnly:         *contigsOnly,
		DisableHeavyHitters: *noHH,
		MinimizerLen:        *minimizerLen,
		DisableSuperKmers:   *noSuperKmers,
		Verify:              *doVerify,
		PerturbSeed:         *perturbSeed,
		CkptDir:             *ckptDir,
		Resume:              *resume,
		FaultSeed:           *faultSeed,
		FailStage:           *failStage,
		ChaosSeed:           *chaosSeed,
		DropRate:            *dropRate,
		RetryBudget:         *retryBudget,
		DiskFaultSeed:       *diskFaultSeed,
		DiskFailStage:       *diskFailStage,
	}
	if err := validateOptions(opts, len(libs), *scrub); err != nil {
		fmt.Fprintf(os.Stderr, "hipmer: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *scrub {
		rep, err := ckpt.Scrub(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hipmer: scrubbing %s: %v\n", *ckptDir, err)
			if errors.Is(err, ckpt.ErrUnrecoverableCkpt) {
				os.Exit(exitUnrecoverableCkpt)
			}
			os.Exit(1)
		}
		fmt.Print(rep.FormatTable())
		if rep.Healed() {
			fmt.Printf("healed: rerun with -resume to recompute the dropped stages\n")
		}
		os.Exit(0)
	}

	var ref []byte
	if *refPath != "" {
		refs, err := fasta.ReadFile(*refPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hipmer: reading reference: %v\n", err)
			os.Exit(1)
		}
		for _, r := range refs {
			ref = append(ref, r.Seq...)
		}
	}
	if *doVerify {
		opts.VerifyRef = ref
	}

	res, err := hipmer.Assemble(libs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipmer: %v\n", err)
		var sf *pipeline.StageFailedError
		switch code := exitCodeFor(err); code {
		case exitRetryExhausted:
			// Chaos retry budget exhausted: distinct exit code so chaos
			// harnesses can tell transport give-up from a real error.
			if errors.As(err, &sf) && *ckptDir != "" {
				fmt.Fprintf(os.Stderr, "hipmer: stages before %q are checkpointed in %s; rerun with -resume (any -chaos-seed)\n",
					sf.Stage, *ckptDir)
			}
			os.Exit(code)
		case exitInjectedCrash:
			// Injected crash: distinct exit code so harnesses can tell a
			// planned failure (resumable via -resume) from a real error.
			if errors.As(err, &sf) && *ckptDir != "" {
				fmt.Fprintf(os.Stderr, "hipmer: stages before %q are checkpointed in %s; rerun with -resume\n",
					sf.Stage, *ckptDir)
			}
			os.Exit(code)
		case exitFingerprintMismatch:
			fmt.Fprintf(os.Stderr, "hipmer: the checkpoint in %s was written by a different config or input; rerun with the original flags and reads, or start a fresh -ckpt-dir\n",
				*ckptDir)
			os.Exit(code)
		case exitTopologyMismatch:
			fmt.Fprintf(os.Stderr, "hipmer: the checkpoint in %s cannot be re-sharded onto this run's topology; resume at the recorded rank count\n",
				*ckptDir)
			os.Exit(code)
		case exitUnrecoverableCkpt:
			fmt.Fprintf(os.Stderr, "hipmer: the checkpoint in %s is beyond self-healing (manifest missing or unparsable); inspect with -scrub or start a fresh -ckpt-dir\n",
				*ckptDir)
			os.Exit(code)
		default:
			os.Exit(code)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipmer: %v\n", err)
		os.Exit(1)
	}
	if err := res.WriteFasta(f); err != nil {
		fmt.Fprintf(os.Stderr, "hipmer: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	f.Close()

	if *metricsOut != "" && res.Metrics != nil {
		var names []string
		for _, lib := range libs {
			names = append(names, lib.Name)
		}
		res.Metrics.Dataset = strings.Join(names, "+")
		if err := res.Metrics.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "hipmer: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: wrote %s (%d stage spans)\n", *metricsOut, len(res.Metrics.Stages))
	}

	fmt.Printf("assembly: %d sequences, %d bases, N50 %d, max %d, %d gap bases\n",
		res.Stats.Sequences, res.Stats.TotalLen, res.Stats.N50,
		res.Stats.MaxLen, res.Stats.GapBases)
	fmt.Printf("contigs: %d   heavy hitters: %d   bubbles: %d   gaps closed: %d/%d\n",
		res.ContigCount, res.HeavyHitters, res.Bubbles, res.GapsClosed, res.Gaps)
	fmt.Println("stage timings (simulated machine):")
	for _, t := range res.Timings {
		fmt.Printf("  %-18s %12v\n", t.Name, t.Virtual)
	}

	if len(ref) > 0 {
		v := res.Validate(ref)
		fmt.Printf("validation: %d placed, %d unplaced, %d misassemblies, "+
			"coverage %.2f%%, identity %.4f%%\n",
			v.Placed, v.Unplaced, v.Misassemblies,
			100*v.CoveredFrac, 100*v.IdentityFrac)
	}

	if res.Verify != nil {
		fmt.Println(res.Verify.Summary)
		for _, is := range res.Verify.Issues {
			fmt.Printf("  %s\n", is)
		}
		if !res.Verify.OK {
			os.Exit(1)
		}
	}
}

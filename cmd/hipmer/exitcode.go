package main

import (
	"errors"

	"hipmer/internal/ckpt"
	"hipmer/internal/pipeline"
	"hipmer/internal/sched"
	"hipmer/internal/xrt"
)

// The CLI's exit-code contract for Assemble errors. Usage errors exit 2
// before Assemble runs; success is 0. Exit 7 is shared with cmd/hipmerd:
// there it means one or more jobs were bounced by service admission
// control (unknown tenant, over-quota or oversize request, full queue) —
// the submission was refused, nothing ran and nothing is resumable.
// Exit 8 means the checkpoint directory is beyond self-healing — its
// manifest is missing or unparsable (segment damage alone never earns
// this; the scrub/heal path recomputes it); -scrub shares the code for
// the same condition.
const (
	exitRuntimeError        = 1
	exitInjectedCrash       = 3
	exitRetryExhausted      = 4
	exitFingerprintMismatch = 5
	exitTopologyMismatch    = 6
	exitAdmissionRejected   = 7
	exitUnrecoverableCkpt   = 8
)

// exitCodeFor maps an Assemble error onto the contract. Order matters:
// a retry exhaustion arrives wrapped in a StageFailedError, so it is
// tested first; the two checkpoint refusals are typed sentinels from
// internal/ckpt — fingerprint mismatch means "different config/input",
// topology mismatch means "this rank-count change cannot be re-sharded"
// (an oracle-placed run), and harnesses react differently to each.
func exitCodeFor(err error) int {
	var re *xrt.RetryExhaustedError
	if errors.As(err, &re) {
		return exitRetryExhausted
	}
	var sf *pipeline.StageFailedError
	if errors.As(err, &sf) {
		return exitInjectedCrash
	}
	if errors.Is(err, ckpt.ErrTopologyMismatch) {
		return exitTopologyMismatch
	}
	if errors.Is(err, ckpt.ErrFingerprintMismatch) {
		return exitFingerprintMismatch
	}
	if errors.Is(err, sched.ErrAdmissionRejected) {
		return exitAdmissionRejected
	}
	if errors.Is(err, ckpt.ErrUnrecoverableCkpt) {
		return exitUnrecoverableCkpt
	}
	return exitRuntimeError
}

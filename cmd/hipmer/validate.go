package main

import (
	"fmt"

	"hipmer"
)

// validateOptions rejects invalid or conflicting CLI configurations
// before any work starts. Kept separate from flag parsing so tests can
// drive it directly; main exits 2 (usage error) on any returned error.
// scrub is the -scrub offline-repair mode: it needs only -ckpt-dir (no
// reads, no assembly flags) and is incompatible with anything that
// would run or perturb an assembly.
func validateOptions(opt hipmer.Options, nLibs int, scrub bool) error {
	if scrub {
		if opt.CkptDir == "" {
			return fmt.Errorf("-scrub requires -ckpt-dir")
		}
		if opt.Resume {
			return fmt.Errorf("-scrub and -resume are mutually exclusive (a healed directory resumes on the next run)")
		}
		if opt.FaultSeed != 0 || opt.FailStage != "" ||
			opt.ChaosSeed != 0 || opt.DropRate != 0 ||
			opt.DiskFaultSeed != 0 || opt.DiskFailStage != "" {
			return fmt.Errorf("-scrub does not take fault, chaos, or disk-fault flags")
		}
		return nil
	}
	if nLibs == 0 {
		return fmt.Errorf("at least one -reads library is required")
	}
	if opt.K < 1 || opt.K > 64 {
		return fmt.Errorf("-k must be in 1..64, got %d", opt.K)
	}
	if opt.K%2 == 0 {
		return fmt.Errorf("-k must be odd, got %d", opt.K)
	}
	for i, k := range opt.KmerLens {
		if k < 1 || k > 64 {
			return fmt.Errorf("-kmer-lens entries must be in 1..64, got %d", k)
		}
		if k%2 == 0 {
			return fmt.Errorf("-kmer-lens entries must be odd, got %d", k)
		}
		if i > 0 && k <= opt.KmerLens[i-1] {
			return fmt.Errorf("-kmer-lens must be strictly increasing, got %v", opt.KmerLens)
		}
	}
	if m := opt.MinimizerLen; m != 0 {
		if m%2 == 0 {
			return fmt.Errorf("-minimizer-len must be odd, got %d", m)
		}
		if m < 4 || m > 31 {
			return fmt.Errorf("-minimizer-len must be in 4..31, got %d", m)
		}
		// In iterative-k mode every round's k must accommodate the
		// minimizer, so the smallest entry is the binding bound.
		smallestK := opt.K
		if len(opt.KmerLens) > 0 {
			smallestK = opt.KmerLens[0]
		}
		if m >= smallestK {
			return fmt.Errorf("-minimizer-len must be < smallest k (%d), got %d", smallestK, m)
		}
	}
	if opt.MinCount < 1 {
		return fmt.Errorf("-min-count must be >= 1, got %d", opt.MinCount)
	}
	// -ranks 0 is the "adopt the checkpoint's recorded rank count"
	// sentinel and only meaningful on a resume; anything else below 1 is
	// a usage error.
	if opt.Ranks == 0 && opt.Resume {
		// adopted from the checkpoint manifest (elastic rescale)
	} else if opt.Ranks < 1 {
		return fmt.Errorf("-ranks must be >= 1, got %d (0 only with -resume, to adopt the checkpoint's rank count)", opt.Ranks)
	}
	if opt.RanksPerNode == 0 && opt.Resume {
		// adopted from the checkpoint manifest alongside -ranks 0
	} else if opt.RanksPerNode < 1 {
		return fmt.Errorf("-ranks-per-node must be >= 1, got %d", opt.RanksPerNode)
	}
	if opt.ScaffoldRounds < 0 {
		return fmt.Errorf("-rounds must be >= 0, got %d", opt.ScaffoldRounds)
	}
	if opt.Resume && opt.CkptDir == "" {
		return fmt.Errorf("-resume requires -ckpt-dir")
	}
	if (opt.FaultSeed != 0) != (opt.FailStage != "") {
		return fmt.Errorf("-fault-seed and -fail-stage must be given together")
	}
	if opt.FailStage != "" {
		if len(opt.KmerLens) > 0 {
			// Iterative-k renames every pre-scaffolding stage with a
			// per-round -k<N> suffix; check against the actual registry.
			found := false
			for _, name := range hipmer.StageNames(opt) {
				if name == opt.FailStage {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("-fail-stage %q does not exist with -kmer-lens %v (see hipmer.StageNames)",
					opt.FailStage, opt.KmerLens)
			}
		} else if opt.ContigsOnly {
			switch opt.FailStage {
			case "io", "kmer-analysis", "contig-generation":
			default:
				return fmt.Errorf("-fail-stage %q does not exist with -contigs-only", opt.FailStage)
			}
		}
	}
	if (opt.DiskFaultSeed != 0) != (opt.DiskFailStage != "") {
		return fmt.Errorf("-disk-fault-seed and -disk-fail-stage must be given together")
	}
	if opt.DiskFailStage != "" {
		if opt.CkptDir == "" {
			return fmt.Errorf("-disk-fault-seed requires -ckpt-dir (the fault damages a checkpoint write)")
		}
		// Only checkpointable stages take a segment write the fault can
		// damage; io has no save codec, so it is never a legal target.
		found := false
		for _, name := range hipmer.StageNames(opt) {
			if name == opt.DiskFailStage && name != "io" {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-disk-fail-stage %q is not a checkpointable stage for this configuration (see hipmer.StageNames)",
				opt.DiskFailStage)
		}
	}
	if opt.DropRate < 0 || opt.DropRate >= 1 {
		return fmt.Errorf("-drop-rate must be in [0,1), got %g", opt.DropRate)
	}
	if opt.DropRate > 0 && opt.ChaosSeed == 0 {
		return fmt.Errorf("-drop-rate requires -chaos-seed")
	}
	if opt.ChaosSeed != 0 && opt.RetryBudget < 1 {
		return fmt.Errorf("-retry-budget must be >= 1, got %d", opt.RetryBudget)
	}
	return nil
}

package main

import (
	"strings"
	"testing"

	"hipmer"
)

func TestValidateOptions(t *testing.T) {
	ok := hipmer.Options{K: 31, MinCount: 2, Ranks: 16, RanksPerNode: 8}
	cases := []struct {
		name    string
		mutate  func(o *hipmer.Options)
		nLibs   int
		wantErr string
	}{
		{"valid", func(o *hipmer.Options) {}, 1, ""},
		{"no-libs", func(o *hipmer.Options) {}, 0, "-reads"},
		{"k-zero", func(o *hipmer.Options) { o.K = 0 }, 1, "1..64"},
		{"k-too-big", func(o *hipmer.Options) { o.K = 65 }, 1, "1..64"},
		{"k-even", func(o *hipmer.Options) { o.K = 32 }, 1, "odd"},
		{"min-count", func(o *hipmer.Options) { o.MinCount = 0 }, 1, "-min-count"},
		{"ranks", func(o *hipmer.Options) { o.Ranks = 0 }, 1, "-ranks"},
		{"ranks-per-node", func(o *hipmer.Options) { o.RanksPerNode = -1 }, 1, "-ranks-per-node"},
		// Ranks 0 is the adopt-recorded-topology sentinel, legal only on
		// a resume; negative counts never are.
		{"ranks-zero-with-resume", func(o *hipmer.Options) {
			o.Ranks = 0
			o.Resume = true
			o.CkptDir = "d"
		}, 1, ""},
		{"ranks-per-node-zero-with-resume", func(o *hipmer.Options) {
			o.Ranks = 0
			o.RanksPerNode = 0
			o.Resume = true
			o.CkptDir = "d"
		}, 1, ""},
		{"ranks-negative-with-resume", func(o *hipmer.Options) {
			o.Ranks = -3
			o.Resume = true
			o.CkptDir = "d"
		}, 1, "-ranks"},
		{"rescale-explicit-ranks-with-resume", func(o *hipmer.Options) {
			o.Ranks = 32
			o.Resume = true
			o.CkptDir = "d"
		}, 1, ""},
		{"rounds", func(o *hipmer.Options) { o.ScaffoldRounds = -2 }, 1, "-rounds"},
		{"resume-without-dir", func(o *hipmer.Options) { o.Resume = true }, 1, "-ckpt-dir"},
		{"resume-with-dir", func(o *hipmer.Options) { o.Resume = true; o.CkptDir = "d" }, 1, ""},
		{"fault-seed-alone", func(o *hipmer.Options) { o.FaultSeed = 9 }, 1, "together"},
		{"fail-stage-alone", func(o *hipmer.Options) { o.FailStage = "scaffolding" }, 1, "together"},
		{"fault-pair", func(o *hipmer.Options) { o.FaultSeed = 9; o.FailStage = "scaffolding" }, 1, ""},
		{"fault-stage-gone-in-contigs-only", func(o *hipmer.Options) {
			o.ContigsOnly = true
			o.FaultSeed = 9
			o.FailStage = "scaffolding"
		}, 1, "-contigs-only"},
		{"fault-stage-ok-in-contigs-only", func(o *hipmer.Options) {
			o.ContigsOnly = true
			o.FaultSeed = 9
			o.FailStage = "kmer-analysis"
		}, 1, ""},
		{"kmer-lens-valid", func(o *hipmer.Options) { o.KmerLens = []int{21, 33, 55} }, 1, ""},
		{"kmer-lens-even", func(o *hipmer.Options) { o.KmerLens = []int{21, 32, 55} }, 1, "odd"},
		{"kmer-lens-zero", func(o *hipmer.Options) { o.KmerLens = []int{0, 21} }, 1, "1..64"},
		{"kmer-lens-too-big", func(o *hipmer.Options) { o.KmerLens = []int{21, 65} }, 1, "1..64"},
		{"kmer-lens-decreasing", func(o *hipmer.Options) { o.KmerLens = []int{33, 21} }, 1, "strictly increasing"},
		{"kmer-lens-repeated", func(o *hipmer.Options) { o.KmerLens = []int{21, 21} }, 1, "strictly increasing"},
		{"minimizer-below-smallest-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.MinimizerLen = 15
		}, 1, ""},
		{"minimizer-at-smallest-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.MinimizerLen = 21
		}, 1, "smallest k"},
		{"minimizer-above-smallest-k", func(o *hipmer.Options) {
			// Legal against -k alone (25 < 31) but not against the ladder's
			// first round at k=21.
			o.KmerLens = []int{21, 33, 55}
			o.MinimizerLen = 25
		}, 1, "smallest k"},
		{"fail-stage-round-suffixed", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.FaultSeed = 9
			o.FailStage = "tip-clip-k33"
		}, 1, ""},
		{"fail-stage-unsuffixed-in-multi-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.FaultSeed = 9
			o.FailStage = "kmer-analysis"
		}, 1, "-kmer-lens"},
		{"fail-stage-scaffolding-in-multi-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.FaultSeed = 9
			o.FailStage = "scaffolding"
		}, 1, ""},
		{"fail-stage-gone-in-multi-k-contigs-only", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.ContigsOnly = true
			o.FaultSeed = 9
			o.FailStage = "scaffolding"
		}, 1, "-kmer-lens"},
		{"drop-rate-negative", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 16
			o.DropRate = -0.1
		}, 1, "[0,1)"},
		{"drop-rate-one", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 16
			o.DropRate = 1.0
		}, 1, "[0,1)"},
		{"drop-rate-without-chaos-seed", func(o *hipmer.Options) {
			o.DropRate = 0.05
			o.RetryBudget = 16
		}, 1, "-chaos-seed"},
		{"retry-budget-zero-with-chaos", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 0
		}, 1, "-retry-budget"},
		{"chaos-valid", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.DropRate = 0.05
			o.RetryBudget = 16
		}, 1, ""},
		{"chaos-seed-without-drop-rate", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 16
		}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := ok
			c.mutate(&o)
			err := validateOptions(o, c.nLibs)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

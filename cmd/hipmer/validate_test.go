package main

import (
	"strings"
	"testing"

	"hipmer"
)

func TestValidateOptions(t *testing.T) {
	ok := hipmer.Options{K: 31, MinCount: 2, Ranks: 16, RanksPerNode: 8}
	cases := []struct {
		name    string
		mutate  func(o *hipmer.Options)
		nLibs   int
		scrub   bool
		wantErr string
	}{
		{"valid", func(o *hipmer.Options) {}, 1, false, ""},
		{"no-libs", func(o *hipmer.Options) {}, 0, false, "-reads"},
		{"k-zero", func(o *hipmer.Options) { o.K = 0 }, 1, false, "1..64"},
		{"k-too-big", func(o *hipmer.Options) { o.K = 65 }, 1, false, "1..64"},
		{"k-even", func(o *hipmer.Options) { o.K = 32 }, 1, false, "odd"},
		{"min-count", func(o *hipmer.Options) { o.MinCount = 0 }, 1, false, "-min-count"},
		{"ranks", func(o *hipmer.Options) { o.Ranks = 0 }, 1, false, "-ranks"},
		{"ranks-per-node", func(o *hipmer.Options) { o.RanksPerNode = -1 }, 1, false, "-ranks-per-node"},
		// Ranks 0 is the adopt-recorded-topology sentinel, legal only on
		// a resume; negative counts never are.
		{"ranks-zero-with-resume", func(o *hipmer.Options) {
			o.Ranks = 0
			o.Resume = true
			o.CkptDir = "d"
		}, 1, false, ""},
		{"ranks-per-node-zero-with-resume", func(o *hipmer.Options) {
			o.Ranks = 0
			o.RanksPerNode = 0
			o.Resume = true
			o.CkptDir = "d"
		}, 1, false, ""},
		{"ranks-negative-with-resume", func(o *hipmer.Options) {
			o.Ranks = -3
			o.Resume = true
			o.CkptDir = "d"
		}, 1, false, "-ranks"},
		{"rescale-explicit-ranks-with-resume", func(o *hipmer.Options) {
			o.Ranks = 32
			o.Resume = true
			o.CkptDir = "d"
		}, 1, false, ""},
		{"rounds", func(o *hipmer.Options) { o.ScaffoldRounds = -2 }, 1, false, "-rounds"},
		{"resume-without-dir", func(o *hipmer.Options) { o.Resume = true }, 1, false, "-ckpt-dir"},
		{"resume-with-dir", func(o *hipmer.Options) { o.Resume = true; o.CkptDir = "d" }, 1, false, ""},
		{"fault-seed-alone", func(o *hipmer.Options) { o.FaultSeed = 9 }, 1, false, "together"},
		{"fail-stage-alone", func(o *hipmer.Options) { o.FailStage = "scaffolding" }, 1, false, "together"},
		{"fault-pair", func(o *hipmer.Options) { o.FaultSeed = 9; o.FailStage = "scaffolding" }, 1, false, ""},
		{"fault-stage-gone-in-contigs-only", func(o *hipmer.Options) {
			o.ContigsOnly = true
			o.FaultSeed = 9
			o.FailStage = "scaffolding"
		}, 1, false, "-contigs-only"},
		{"fault-stage-ok-in-contigs-only", func(o *hipmer.Options) {
			o.ContigsOnly = true
			o.FaultSeed = 9
			o.FailStage = "kmer-analysis"
		}, 1, false, ""},
		{"kmer-lens-valid", func(o *hipmer.Options) { o.KmerLens = []int{21, 33, 55} }, 1, false, ""},
		{"kmer-lens-even", func(o *hipmer.Options) { o.KmerLens = []int{21, 32, 55} }, 1, false, "odd"},
		{"kmer-lens-zero", func(o *hipmer.Options) { o.KmerLens = []int{0, 21} }, 1, false, "1..64"},
		{"kmer-lens-too-big", func(o *hipmer.Options) { o.KmerLens = []int{21, 65} }, 1, false, "1..64"},
		{"kmer-lens-decreasing", func(o *hipmer.Options) { o.KmerLens = []int{33, 21} }, 1, false, "strictly increasing"},
		{"kmer-lens-repeated", func(o *hipmer.Options) { o.KmerLens = []int{21, 21} }, 1, false, "strictly increasing"},
		{"minimizer-below-smallest-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.MinimizerLen = 15
		}, 1, false, ""},
		{"minimizer-at-smallest-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.MinimizerLen = 21
		}, 1, false, "smallest k"},
		{"minimizer-above-smallest-k", func(o *hipmer.Options) {
			// Legal against -k alone (25 < 31) but not against the ladder's
			// first round at k=21.
			o.KmerLens = []int{21, 33, 55}
			o.MinimizerLen = 25
		}, 1, false, "smallest k"},
		{"fail-stage-round-suffixed", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.FaultSeed = 9
			o.FailStage = "tip-clip-k33"
		}, 1, false, ""},
		{"fail-stage-unsuffixed-in-multi-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.FaultSeed = 9
			o.FailStage = "kmer-analysis"
		}, 1, false, "-kmer-lens"},
		{"fail-stage-scaffolding-in-multi-k", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.FaultSeed = 9
			o.FailStage = "scaffolding"
		}, 1, false, ""},
		{"fail-stage-gone-in-multi-k-contigs-only", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.ContigsOnly = true
			o.FaultSeed = 9
			o.FailStage = "scaffolding"
		}, 1, false, "-kmer-lens"},
		{"drop-rate-negative", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 16
			o.DropRate = -0.1
		}, 1, false, "[0,1)"},
		{"drop-rate-one", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 16
			o.DropRate = 1.0
		}, 1, false, "[0,1)"},
		{"drop-rate-without-chaos-seed", func(o *hipmer.Options) {
			o.DropRate = 0.05
			o.RetryBudget = 16
		}, 1, false, "-chaos-seed"},
		{"retry-budget-zero-with-chaos", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 0
		}, 1, false, "-retry-budget"},
		{"chaos-valid", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.DropRate = 0.05
			o.RetryBudget = 16
		}, 1, false, ""},
		{"chaos-seed-without-drop-rate", func(o *hipmer.Options) {
			o.ChaosSeed = 7
			o.RetryBudget = 16
		}, 1, false, ""},
		{"disk-fault-seed-alone", func(o *hipmer.Options) {
			o.DiskFaultSeed = 21
			o.CkptDir = "d"
		}, 1, false, "together"},
		{"disk-fail-stage-alone", func(o *hipmer.Options) {
			o.DiskFailStage = "scaffolding"
			o.CkptDir = "d"
		}, 1, false, "together"},
		{"disk-fault-without-ckpt-dir", func(o *hipmer.Options) {
			o.DiskFaultSeed = 21
			o.DiskFailStage = "scaffolding"
		}, 1, false, "-ckpt-dir"},
		{"disk-fault-pair", func(o *hipmer.Options) {
			o.DiskFaultSeed = 21
			o.DiskFailStage = "scaffolding"
			o.CkptDir = "d"
		}, 1, false, ""},
		// io is a real stage name but writes no checkpoint segment, so
		// there is nothing for a disk fault to damage.
		{"disk-fail-stage-io", func(o *hipmer.Options) {
			o.DiskFaultSeed = 21
			o.DiskFailStage = "io"
			o.CkptDir = "d"
		}, 1, false, "checkpointable"},
		{"disk-fail-stage-unknown", func(o *hipmer.Options) {
			o.DiskFaultSeed = 21
			o.DiskFailStage = "no-such-stage"
			o.CkptDir = "d"
		}, 1, false, "checkpointable"},
		{"disk-fail-stage-gone-in-contigs-only", func(o *hipmer.Options) {
			o.ContigsOnly = true
			o.DiskFaultSeed = 21
			o.DiskFailStage = "scaffolding"
			o.CkptDir = "d"
		}, 1, false, "checkpointable"},
		{"disk-fail-stage-round-suffixed", func(o *hipmer.Options) {
			o.KmerLens = []int{21, 33, 55}
			o.DiskFaultSeed = 21
			o.DiskFailStage = "tip-clip-k33"
			o.CkptDir = "d"
		}, 1, false, ""},
		{"scrub-valid", func(o *hipmer.Options) { o.CkptDir = "d" }, 0, true, ""},
		{"scrub-without-ckpt-dir", func(o *hipmer.Options) {}, 0, true, "-ckpt-dir"},
		{"scrub-with-resume", func(o *hipmer.Options) {
			o.CkptDir = "d"
			o.Resume = true
		}, 0, true, "mutually exclusive"},
		{"scrub-with-fault", func(o *hipmer.Options) {
			o.CkptDir = "d"
			o.FaultSeed = 9
		}, 0, true, "fault"},
		{"scrub-with-disk-fault", func(o *hipmer.Options) {
			o.CkptDir = "d"
			o.DiskFaultSeed = 21
		}, 0, true, "fault"},
		{"scrub-with-chaos", func(o *hipmer.Options) {
			o.CkptDir = "d"
			o.ChaosSeed = 7
		}, 0, true, "fault"},
		// -scrub takes no reads; libraries are simply ignored, not an
		// error, so `hipmer -scrub -ckpt-dir d` works without -reads.
		{"scrub-ignores-libs", func(o *hipmer.Options) { o.CkptDir = "d" }, 1, true, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := ok
			c.mutate(&o)
			err := validateOptions(o, c.nLibs, c.scrub)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

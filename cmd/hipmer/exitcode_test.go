package main

import (
	"fmt"
	"testing"

	"hipmer/internal/ckpt"
	"hipmer/internal/pipeline"
	"hipmer/internal/sched"
	"hipmer/internal/xrt"
)

// TestExitCodeFor pins the CLI exit-code contract, in particular that
// the two checkpoint-refusal paths stay distinguishable: harnesses
// retry a topology mismatch at the recorded rank count, but a
// fingerprint mismatch means the run itself is wrong.
func TestExitCodeFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"plain", fmt.Errorf("boom"), exitRuntimeError},
		{"injected-crash",
			&pipeline.StageFailedError{Stage: "scaffolding", Rank: 3,
				Err: &xrt.FaultError{Rank: 3}},
			exitInjectedCrash},
		{"retry-exhausted-wrapped-in-stage-failure",
			&pipeline.StageFailedError{Stage: "scaffolding", Rank: 3,
				Err: &xrt.RetryExhaustedError{Src: 3}},
			exitRetryExhausted},
		{"fingerprint-mismatch",
			fmt.Errorf("resuming: %w", ckpt.ErrFingerprintMismatch),
			exitFingerprintMismatch},
		{"topology-mismatch",
			fmt.Errorf("oracle placement: %w", ckpt.ErrTopologyMismatch),
			exitTopologyMismatch},
		// A bare ErrBadManifest (e.g. from a mid-run manifest rewrite) is
		// still exit 1; only the typed unrecoverable-checkpoint wrapper —
		// what Resume/Scrub return when the manifest is missing or
		// unparsable — earns the dedicated code.
		{"bad-manifest-is-a-runtime-error",
			fmt.Errorf("resuming: %w", ckpt.ErrBadManifest),
			exitRuntimeError},
		{"unrecoverable-ckpt",
			fmt.Errorf("resuming: %w", fmt.Errorf("%w: reading manifest: boom", ckpt.ErrUnrecoverableCkpt)),
			exitUnrecoverableCkpt},
		{"unrecoverable-ckpt-wrapping-bad-manifest",
			fmt.Errorf("%w: %w", ckpt.ErrUnrecoverableCkpt, ckpt.ErrBadManifest),
			exitUnrecoverableCkpt},
		{"admission-rejected",
			fmt.Errorf("job 3 (tenant t01): %w", sched.ErrAdmissionRejected),
			exitAdmissionRejected},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := exitCodeFor(c.err); got != c.want {
				t.Fatalf("exitCodeFor(%v) = %d, want %d", c.err, got, c.want)
			}
		})
	}
}

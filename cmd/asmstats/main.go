// Command asmstats reports assembly statistics (N50 etc.) for a FASTA
// file, optionally validating against a reference, and renders metrics
// reports (hipmer -metrics-out) as the paper-style per-module breakdown.
//
// Usage:
//
//	asmstats assembly.fasta [-ref reference.fasta]
//	asmstats -report metrics.json
package main

import (
	"flag"
	"fmt"
	"os"

	"hipmer/internal/fasta"
	"hipmer/internal/metrics"
	"hipmer/internal/stats"
)

func main() {
	refPath := flag.String("ref", "", "reference FASTA for validation")
	report := flag.String("report", "", "metrics JSON (from hipmer -metrics-out) to render as a per-stage breakdown table")
	flag.Parse()

	if *report != "" {
		reps, err := metrics.ReadFile(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asmstats: %v\n", err)
			os.Exit(1)
		}
		for i, rep := range reps {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(rep.FormatTable())
		}
		if flag.NArg() == 0 {
			return
		}
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmstats [-ref reference.fasta] assembly.fasta\n"+
			"       asmstats -report metrics.json")
		os.Exit(2)
	}
	recs, err := fasta.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmstats: %v\n", err)
		os.Exit(1)
	}
	var seqs [][]byte
	for _, r := range recs {
		seqs = append(seqs, r.Seq)
	}
	s := stats.Compute(seqs)
	fmt.Printf("sequences: %d\ntotal:     %d\nmax:       %d\nmean:      %.1f\n"+
		"N50:       %d\nN90:       %d\ngap Ns:    %d\n",
		s.Sequences, s.TotalLen, s.MaxLen, s.MeanLen, s.N50, s.N90, s.GapBases)

	if *refPath != "" {
		refs, err := fasta.ReadFile(*refPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asmstats: %v\n", err)
			os.Exit(1)
		}
		var ref []byte
		for _, r := range refs {
			ref = append(ref, r.Seq...)
		}
		v := stats.Validate(seqs, ref)
		fmt.Printf("NG50:      %d\nplaced:    %d (unplaced %d, misassembled %d)\n"+
			"coverage:  %.2f%%\nidentity:  %.4f%%\n",
			stats.NG50(seqs, len(ref)), v.Placed, v.Unplaced, v.Misassemblies,
			100*v.CoveredFrac, 100*v.IdentityFrac)
	}
}

// Command asmstats reports assembly statistics (N50 etc.) for a FASTA
// file, optionally validating against a reference.
//
// Usage:
//
//	asmstats assembly.fasta [-ref reference.fasta]
package main

import (
	"flag"
	"fmt"
	"os"

	"hipmer/internal/fasta"
	"hipmer/internal/stats"
)

func main() {
	refPath := flag.String("ref", "", "reference FASTA for validation")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmstats [-ref reference.fasta] assembly.fasta")
		os.Exit(2)
	}
	recs, err := fasta.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmstats: %v\n", err)
		os.Exit(1)
	}
	var seqs [][]byte
	for _, r := range recs {
		seqs = append(seqs, r.Seq)
	}
	s := stats.Compute(seqs)
	fmt.Printf("sequences: %d\ntotal:     %d\nmax:       %d\nmean:      %.1f\n"+
		"N50:       %d\nN90:       %d\ngap Ns:    %d\n",
		s.Sequences, s.TotalLen, s.MaxLen, s.MeanLen, s.N50, s.N90, s.GapBases)

	if *refPath != "" {
		refs, err := fasta.ReadFile(*refPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asmstats: %v\n", err)
			os.Exit(1)
		}
		var ref []byte
		for _, r := range refs {
			ref = append(ref, r.Seq...)
		}
		v := stats.Validate(seqs, ref)
		fmt.Printf("NG50:      %d\nplaced:    %d (unplaced %d, misassembled %d)\n"+
			"coverage:  %.2f%%\nidentity:  %.4f%%\n",
			stats.NG50(seqs, len(ref)), v.Placed, v.Unplaced, v.Misassemblies,
			100*v.CoveredFrac, 100*v.IdentityFrac)
	}
}

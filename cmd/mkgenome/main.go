// Command mkgenome synthesizes the evaluation datasets: a reference
// genome (human-like, wheat-like, random, or metagenome) and simulated
// paired-end reads, written as FASTA + FASTQ.
//
// Usage:
//
//	mkgenome -type human -len 200000 -cov 30 -out data/human
//	         (writes data/human.fasta and data/human.fastq)
package main

import (
	"flag"
	"fmt"
	"os"

	"hipmer"
	"hipmer/internal/fasta"
)

func main() {
	typ := flag.String("type", "human", "genome type: human, wheat, random, meta")
	n := flag.Int("len", 100000, "genome length (total length for meta)")
	cov := flag.Float64("cov", 30, "read coverage")
	species := flag.Int("species", 20, "species count (meta only)")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "genome", "output path prefix")
	format := flag.String("format", "fastq", "read output format: fastq or seqdb")
	flag.Parse()

	var refs []fasta.Record
	var libs []hipmer.Library
	switch *typ {
	case "human":
		ref, lib := hipmer.SimHumanLike(*seed, *n, *cov)
		refs = []fasta.Record{{Name: "humanlike", Seq: ref}}
		libs = []hipmer.Library{lib}
	case "wheat":
		ref, ls := hipmer.SimWheatLike(*seed, *n, *cov)
		refs = []fasta.Record{{Name: "wheatlike", Seq: ref}}
		libs = ls
	case "random":
		ref := hipmer.RandomGenome(*seed, *n)
		refs = []fasta.Record{{Name: "random", Seq: ref}}
		libs = []hipmer.Library{hipmer.SimReads(*seed+1, ref, *cov, 100, 400, 30)}
	case "meta":
		pairs := int(*cov * float64(*n) / 200)
		lib := hipmer.SimMetagenome(*seed, *n, *species, pairs)
		libs = []hipmer.Library{lib}
	default:
		fmt.Fprintf(os.Stderr, "mkgenome: unknown type %q\n", *typ)
		os.Exit(2)
	}

	if len(refs) > 0 {
		if err := fasta.WriteFile(*out+".fasta", refs); err != nil {
			fmt.Fprintf(os.Stderr, "mkgenome: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s.fasta (%d bases)\n", *out, len(refs[0].Seq))
	}
	ext := "." + *format
	if *format != "fastq" && *format != "seqdb" {
		fmt.Fprintf(os.Stderr, "mkgenome: unknown format %q\n", *format)
		os.Exit(2)
	}
	for _, lib := range libs {
		path := *out + ext
		if len(libs) > 1 {
			path = fmt.Sprintf("%s.%s%s", *out, lib.Name, ext)
		}
		var err error
		if *format == "seqdb" {
			err = hipmer.WriteSeqDB(path, lib)
		} else {
			var f *os.File
			if f, err = os.Create(path); err == nil {
				err = hipmer.WriteFastq(f, lib)
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkgenome: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d reads, insert %d)\n", path, len(lib.Reads), lib.InsertMean)
	}
}

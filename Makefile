GO ?= go

.PHONY: all build vet test race bench verify ckpt chaos meta rescale serve diskfault

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-sensitive packages, including
# the DHT stress test (concurrent Get/Put/Mutate/Flush across ranks).
race:
	$(GO) test -race ./internal/...

# One-stop correctness gate (~1 min): build, vet, the short test suite
# (exhibit sweeps skip under -short), a targeted race-detector pass over
# the schedule-perturbation surface (the perturbation layer, DHT flushes,
# claim/abort traversal, and the perturbation-seed assembly sweep), and a
# short fuzz smoke over both record parsers. `make test` / `make race`
# remain the exhaustive versions.
verify: build vet ckpt chaos meta rescale serve diskfault
	$(GO) test -short ./...
	$(GO) test -short -race ./internal/xrt/ ./internal/dht/
	$(GO) test -short -race -run 'Perturbed|Contention' ./internal/contig/
	$(GO) test -short -race -run 'Perturb' ./internal/verify/
	$(GO) test -short -race -run 'Conservation|Metamorphic' ./internal/metrics/
	$(GO) test -fuzz FuzzParse -fuzztime 3s -run '^$$' ./internal/fastq/
	$(GO) test -fuzz FuzzParse -fuzztime 3s -run '^$$' ./internal/fasta/

# Checkpoint/restart correctness: the checkpoint store's round-trip and
# corruption tests, a fuzz smoke over the manifest/segment parsers, the
# fault-injection runtime tests, and the crash-resume sweep (injected
# rank crash -> resume -> bit-identical assembly on human+wheat).
ckpt:
	$(GO) test -short ./internal/ckpt/
	$(GO) test -fuzz FuzzManifest -fuzztime 3s -run '^$$' ./internal/ckpt/
	$(GO) test -short -run 'Fault' ./internal/xrt/
	$(GO) test -short -run 'Checkpoint|CrashThenResume|CrashResume' ./internal/pipeline/ ./internal/expt/

# Storage-fault correctness: the disk-fault plan's determinism/kind
# tests, the scrub battery (quarantine, prefix truncation, stale-temp
# sweep, unrecoverable-manifest taxonomy), the pipeline healing tests
# (each damage kind -> faulted run bit-identical -> scrubbed resume
# bit-identical, single-k and multi-k, plus the byte-flip detection-
# completeness property), and a fuzz smoke over the manifest parser
# seeded with quarantine artifacts. The full DiskFaultSweep exhibit
# (every stage x every damage kind on human+wheat plus the disk-armed
# scheduler leg) runs in CI's diskfault job via `benchsuite -diskfault`.
diskfault:
	$(GO) test -short -run 'DiskFault' ./internal/xrt/
	$(GO) test -short -run 'Scrub|StaleTemp|Quarantine|Unrecoverable' ./internal/ckpt/
	$(GO) test -short -run 'DiskFault|Heal|FlipDetection' ./internal/pipeline/
	$(GO) test -short -run 'DiskFrac|TrimBilled|DiskFault' ./internal/sched/
	$(GO) test -fuzz FuzzManifest -fuzztime 3s -run '^$$' ./internal/ckpt/

# Unreliable-transport correctness: the chaos-layer runtime tests
# (deterministic drop/dup injection, retry/backoff, dedup window, retry
# exhaustion), the freeze/thaw cache-invalidation regressions, a fuzz
# smoke over the dedup window's exactly-once property, and the chaos
# sweep (message faults at 4 chaos seeds on human+wheat, assert the
# assembly is bit-identical to the fault-free run with nonzero retries).
chaos:
	$(GO) test -short -run 'Chaos|Dedup|Thaw' ./internal/xrt/ ./internal/dht/
	$(GO) test -fuzz FuzzDedupWindow -fuzztime 3s -run '^$$' ./internal/dht/
	$(GO) test -short -run 'ChaosSweep' ./internal/expt/

# Iterative-k metagenome correctness: the graph-cleaning property tests
# (tip clipping preserves the true walk, bubble popping keeps exactly
# one branch, both idempotent, rank-invariant), the pseudo-read
# equivalence tests, the multi-k pipeline battery (stage registry,
# contig feedback, bit-identity across ranks/perturb/chaos, crash-resume
# inside each cleaning stage), the abundance-aware oracle tests, and a
# fuzz smoke over the round/cleaning checkpoint codecs. The MetaSweep
# exhibit (multi-k vs single-k recovery gate) runs in CI's metagenome
# job via `benchsuite -meta` on a reduced dataset.
meta:
	$(GO) test -short -run 'ClipTips|PopBubbles|Cleaning|MergeRounds' ./internal/contig/
	$(GO) test -short -run 'Pseudo' ./internal/kanalysis/
	$(GO) test -run 'MultiK' ./internal/pipeline/
	$(GO) test -short -run 'Meta|LowestQuartile' ./internal/verify/
	$(GO) test -fuzz FuzzCleaningDecode -fuzztime 3s -run '^$$' ./internal/ckpt/

# Elastic-rescale correctness: the re-shard metamorphic battery (resume
# checkpoints at 1/2/4/8 ranks, mixed-partition directories, multi-k
# rounds, oracle refusal, pair-deal round trips), the per-entry
# source-partition manifest tests, and a fuzz smoke over the re-sharding
# stage decoders seeded with real checkpoint payloads. The RescaleSweep
# exhibit (crash at every stage x resume at R/2, R, 2R on human+wheat
# under rotating perturb seeds and a chaos cell) runs in CI's rescale
# job under -race.
rescale:
	$(GO) test -short -run 'Reshard|Rescale' ./internal/pipeline/
	$(GO) test -short -run 'AdoptTopology|Topology|Reshard' ./internal/ckpt/
	$(GO) test -fuzz FuzzReshardDecode -fuzztime 3s -run '^$$' ./internal/ckpt/

# Assembly-as-a-service correctness: the short scheduler battery (golden
# two-run report determinism, admission control, quota/fairness/
# starvation property tests, checkpoint truncation) with the
# fake-runner suite additionally under -race, the daemon and load-
# generator flag-validation tables, and the real-pipeline cross-job
# isolation tests (a crash job and a chaos job never perturb their
# neighbours; preemption resumes from a truncated checkpoint). The full
# heavy-traffic exhibit (>= 1000 jobs via `benchsuite -serve`) runs in
# CI's service job.
serve:
	$(GO) test -short ./internal/sched/ ./cmd/hipmerd/ ./cmd/hipmer/
	$(GO) test -short -race ./internal/sched/
	$(GO) test -run 'CrossJobIsolation|PreemptionResumes' ./internal/sched/

# Exhibit benchmarks (paper tables/figures) plus the DHT microbenchmarks
# comparing striped-mutex, frozen lock-free, and frozen+cached Get paths,
# and the minimizer-scan/super-k-mer-encode hot loops. Also writes the
# per-stage metrics reports (human+wheat end-to-end runs) to metrics.json
# and the k-mer-analysis communication benchmark to BENCH_kanalysis.json —
# CI uploads both as the run's observability artifacts. The benchsuite run
# exits nonzero if the super-k-mer exhibit misses its >=5x message /
# >=3x byte reduction gate or regresses >10% in stage-1 message count
# against the committed bench/BENCH_kanalysis.json baseline, and if the
# rescaled-resume benchmark (BENCH_rescale.json) regresses >10% in
# virtual resume time or redistributed bytes against the committed
# bench/BENCH_rescale.json baseline.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x .
	$(GO) test -run xxx -bench BenchmarkDHTGet ./internal/dht/
	$(GO) test -run xxx -bench 'BenchmarkMinimizerScan|BenchmarkSuperKmerEncode' ./internal/kmer/
	$(GO) run ./cmd/benchsuite -metrics-out metrics.json \
		-bench-out BENCH_kanalysis.json -bench-baseline bench/BENCH_kanalysis.json \
		-bench-rescale-out BENCH_rescale.json -bench-rescale-baseline bench/BENCH_rescale.json
	$(GO) run ./cmd/benchsuite -serve -serve-jobs 1000 -serve-tenants 12 \
		-bench-sched-out BENCH_sched.json -bench-sched-baseline bench/BENCH_sched.json

GO ?= go

.PHONY: all build vet test race bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-sensitive packages, including
# the DHT stress test (concurrent Get/Put/Mutate/Flush across ranks).
race:
	$(GO) test -race ./internal/...

# Exhibit benchmarks (paper tables/figures) plus the DHT microbenchmarks
# comparing striped-mutex, frozen lock-free, and frozen+cached Get paths.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x .
	$(GO) test -run xxx -bench BenchmarkDHTGet ./internal/dht/

package hipmer

import (
	"bytes"
	"strings"
	"testing"
)

func TestAssembleInMemory(t *testing.T) {
	g := RandomGenome(1, 20000)
	lib := SimReads(2, g, 30, 100, 350, 25)
	res, err := Assemble([]Library{lib}, Options{K: 31, MinCount: 3, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalLen < 18000 {
		t.Fatalf("assembled only %d bases of a 20k genome", res.Stats.TotalLen)
	}
	v := res.Validate(g)
	if v.CoveredFrac < 0.95 || v.IdentityFrac < 0.999 {
		t.Fatalf("poor assembly: %+v", v)
	}
	if res.Timing("total") <= 0 {
		t.Fatal("no total timing")
	}
}

func TestAssembleRejectsEvenK(t *testing.T) {
	if _, err := Assemble(nil, Options{K: 30}); err == nil {
		t.Fatal("even k accepted")
	}
}

func TestHumanLikeDiploid(t *testing.T) {
	ref, lib := SimHumanLike(3, 25000, 35)
	res, err := Assemble([]Library{lib}, Options{K: 31, MinCount: 4, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Validate(ref)
	if v.CoveredFrac < 0.7 {
		t.Fatalf("diploid assembly covers only %.3f", v.CoveredFrac)
	}
}

func TestWheatLikeHeavyHitters(t *testing.T) {
	_, libs := SimWheatLike(4, 40000, 25)
	res, err := Assemble(libs, Options{K: 31, MinCount: 3, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyHitters == 0 {
		t.Fatal("wheat-like data produced no heavy hitters")
	}
}

func TestMetagenomeContigsOnly(t *testing.T) {
	lib := SimMetagenome(5, 50000, 10, 5000)
	res, err := Assemble([]Library{lib}, Options{K: 21, Ranks: 8, ContigsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ContigCount == 0 || len(res.Scaffolds) == 0 {
		t.Fatal("no contigs from metagenome")
	}
	if res.Gaps != 0 {
		t.Fatal("gap closing should not run in contigs-only mode")
	}
}

func TestOracleWorkflow(t *testing.T) {
	// assemble individual 1, reuse its scaffolds as the oracle for
	// individual 2 of the same species
	g1 := RandomGenome(6, 15000)
	lib1 := SimReads(7, g1, 30, 100, 350, 25)
	res1, err := Assemble([]Library{lib1}, Options{K: 31, MinCount: 3, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	g2 := MutateGenome(8, g1, 0.002)
	lib2 := SimReads(9, g2, 30, 100, 350, 25)
	if len(res1.ContigSeqs) == 0 {
		t.Fatal("no contig sequences exposed")
	}
	res2, err := Assemble([]Library{lib2}, Options{
		K: 31, MinCount: 3, Ranks: 8, OracleContigs: res1.ContigSeqs,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res2.Validate(g2)
	if v.CoveredFrac < 0.95 {
		t.Fatalf("oracle-placed assembly covers only %.3f", v.CoveredFrac)
	}
}

func TestWriteFastaAndFastq(t *testing.T) {
	g := RandomGenome(10, 5000)
	lib := SimReads(11, g, 10, 100, 300, 20)
	var fq bytes.Buffer
	if err := WriteFastq(&fq, lib); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fq.String(), "@") {
		t.Fatal("not FASTQ output")
	}
	res, err := Assemble([]Library{lib}, Options{K: 21, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	var fa bytes.Buffer
	if err := res.WriteFasta(&fa); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fa.String(), ">scaffold_1") {
		t.Fatalf("bad fasta: %.60s", fa.String())
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := RandomGenome(12, 8000)
	lib := SimReads(13, g, 20, 100, 300, 20)
	res, err := Assemble([]Library{lib}, Options{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) == 0 {
		t.Fatal("default options produced nothing")
	}
}

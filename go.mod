module hipmer

go 1.22

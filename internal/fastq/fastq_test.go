package fastq

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randRecord(rng *rand.Rand, idLen, seqLen int) Record {
	id := make([]byte, idLen)
	for i := range id {
		id[i] = byte('a' + rng.Intn(26))
	}
	seq := make([]byte, seqLen)
	qual := make([]byte, seqLen)
	for i := range seq {
		seq[i] = "ACGTN"[rng.Intn(5)]
		// quality deliberately includes '@' and '+' bytes, the classic
		// FASTQ-splitting trap
		qual[i] = byte(33 + rng.Intn(42))
	}
	return Record{ID: id, Seq: seq, Qual: qual}
}

func randRecords(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randRecord(rng, 1+rng.Intn(40), 1+rng.Intn(250))
	}
	return recs
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].ID, b[i].ID) || !bytes.Equal(a[i].Seq, b[i].Seq) ||
			!bytes.Equal(a[i].Qual, b[i].Qual) {
			return false
		}
	}
	return true
}

func TestFormatParseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := randRecords(rng, 200)
	parsed, err := ParseAll(Format(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(recs, parsed) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestWriteMatchesFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := randRecords(rng, 500)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), Format(recs)) {
		t.Fatal("Write output differs from Format")
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := []string{
		"no-at-sign\nACGT\n+\nIIII\n",
		"@id\nACGT\nIIII\n",   // missing '+'
		"@id\nACGT\n+\nIII\n", // quality length mismatch
		"@id\nACGT\n+",        // truncated
		"@id\nACGT",           // truncated
	}
	for _, c := range cases {
		if _, err := ParseAll([]byte(c)); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestParserHandlesCRLFAndBlankLines(t *testing.T) {
	in := "@id1\r\nACGT\r\n+\r\nIIII\r\n\n@id2\nGGCC\n+id2\nJJJJ\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Seq) != "ACGT" || string(recs[1].Seq) != "GGCC" {
		t.Fatalf("parsed %v", recs)
	}
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "reads.fastq")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSplitCoversEveryReadExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 50, 1000} {
		recs := randRecords(rng, n)
		path := writeTemp(t, Format(recs))
		for _, parts := range []int{1, 2, 3, 7, 16, 64} {
			fl, err := OpenSplit(path, parts)
			if err != nil {
				t.Fatal(err)
			}
			var all []Record
			for i := 0; i < parts; i++ {
				part, err := fl.ReadPart(i)
				if err != nil {
					t.Fatalf("n=%d parts=%d part %d: %v", n, parts, i, err)
				}
				all = append(all, part...)
			}
			fl.Close()
			if !recordsEqual(recs, all) {
				t.Fatalf("n=%d parts=%d: split lost or duplicated records (%d vs %d)",
					n, parts, len(recs), len(all))
			}
		}
	}
}

func TestSplitPropertyRandomFiles(t *testing.T) {
	prop := func(seed int64, nRaw uint16, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 300
		parts := int(partsRaw)%20 + 1
		recs := randRecords(rng, n)
		data := Format(recs)
		starts, err := Splits(bytes.NewReader(data), int64(len(data)), parts)
		if err != nil {
			return false
		}
		var all []Record
		for i := 0; i < parts; i++ {
			part, err := ReadRange(bytes.NewReader(data), starts[i], starts[i+1])
			if err != nil {
				return false
			}
			all = append(all, part...)
		}
		return recordsEqual(recs, all)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitQualityLinesStartingWithAt(t *testing.T) {
	// Adversarial file: every quality byte is '@', so every "\n@" except
	// true record starts is a decoy.
	var recs []Record
	for i := 0; i < 200; i++ {
		seq := bytes.Repeat([]byte{'A'}, 50)
		qual := bytes.Repeat([]byte{'@'}, 50)
		recs = append(recs, Record{ID: []byte(fmt.Sprintf("r%d", i)), Seq: seq, Qual: qual})
	}
	data := Format(recs)
	for _, parts := range []int{2, 5, 13} {
		starts, err := Splits(bytes.NewReader(data), int64(len(data)), parts)
		if err != nil {
			t.Fatal(err)
		}
		var all []Record
		for i := 0; i < parts; i++ {
			part, err := ReadRange(bytes.NewReader(data), starts[i], starts[i+1])
			if err != nil {
				t.Fatalf("parts=%d: %v", parts, err)
			}
			all = append(all, part...)
		}
		if !recordsEqual(recs, all) {
			t.Fatalf("parts=%d: adversarial quality lines broke the split", parts)
		}
	}
}

func TestSplitsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	recs := randRecords(rng, 3)
	data := Format(recs)
	starts, err := Splits(bytes.NewReader(data), int64(len(data)), 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			t.Fatalf("starts not monotonic: %v", starts)
		}
	}
	if starts[0] != 0 || starts[len(starts)-1] != int64(len(data)) {
		t.Fatalf("bad endpoints: %v", starts)
	}
}

func TestValidate(t *testing.T) {
	if err := (Record{ID: []byte("x"), Seq: []byte("ACGT"), Qual: []byte("III")}).Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := (Record{Seq: []byte("A"), Qual: []byte("I")}).Validate(); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := (Record{ID: []byte("x"), Seq: []byte("A"), Qual: []byte("I")}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data := Format(randRecords(rng, 5000))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastqParallelRead(b *testing.B) {
	// throughput of the full split-then-parse path at 16 parts
	rng := rand.New(rand.NewSource(6))
	data := Format(randRecords(rng, 20000))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		starts, err := Splits(bytes.NewReader(data), int64(len(data)), 16)
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < 16; p++ {
			if _, err := ReadRange(bytes.NewReader(data), starts[p], starts[p+1]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package fastq

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary bytes at the record parser and the split-point
// detector. Invariants: no panic; every record a successful parse returns
// passes Validate; parse → Format → parse is the identity whenever the
// fields survive line-based rendering (no '\r', which the line reader
// strips); Splits offsets are monotone and in-bounds.
func FuzzParse(f *testing.F) {
	f.Add([]byte("@r1\nACGT\n+\nIIII\n"))
	f.Add([]byte("@r1/1\nACGTN\n+r1/1\nIIIII\n@r1/2\nTTTT\n+\nJJJJ\n"))
	f.Add([]byte("@a\nAC\r\n+\r\nII\r\n"))       // CRLF line endings
	f.Add([]byte("\n\n@b\nGG\n+\nII\n\n"))       // blank lines between records
	f.Add([]byte("@q\n@@++\n+\n@+II\n"))         // quality/sequence full of metachars
	f.Add([]byte("@trunc\nACGT\n+"))             // truncated at the separator
	f.Add([]byte("no header at all"))            // malformed from byte 0
	f.Add([]byte("@x\nACGT\n+\nII\n"))           // qual shorter than seq
	f.Add([]byte("@\nA\n+\nI\n"))                // empty ID
	f.Add([]byte("@y\n\n+\n\n"))                 // empty sequence
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseAll(data)
		if err == nil {
			for _, r := range recs {
				if verr := r.Validate(); verr != nil {
					t.Fatalf("parsed record fails Validate: %v", verr)
				}
			}
			if roundTrippable(recs) {
				recs2, err2 := ParseAll(Format(recs))
				if err2 != nil {
					t.Fatalf("reparse of formatted output failed: %v", err2)
				}
				if len(recs2) != len(recs) {
					t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
				}
				for i := range recs {
					if !bytes.Equal(recs[i].ID, recs2[i].ID) ||
						!bytes.Equal(recs[i].Seq, recs2[i].Seq) ||
						!bytes.Equal(recs[i].Qual, recs2[i].Qual) {
						t.Fatalf("round trip changed record %d: %+v -> %+v", i, recs[i], recs2[i])
					}
				}
			}
		}
		// the parallel-read split detector must stay in bounds on any input
		for _, parts := range []int{1, 3} {
			starts, serr := Splits(bytes.NewReader(data), int64(len(data)), parts)
			if serr != nil {
				t.Fatalf("Splits(%d parts): %v", parts, serr)
			}
			if len(starts) != parts+1 || starts[0] != 0 || starts[parts] != int64(len(data)) {
				t.Fatalf("Splits(%d parts) returned bad frame: %v", parts, starts)
			}
			for i := 1; i <= parts; i++ {
				if starts[i] < starts[i-1] {
					t.Fatalf("Splits offsets not monotone: %v", starts)
				}
			}
		}
	})
}

// roundTrippable reports whether recs can be rendered to 4-line FASTQ and
// reparsed without loss: a '\r' at the end of a field would be eaten by the
// CRLF-tolerant line reader on the second pass.
func roundTrippable(recs []Record) bool {
	for _, r := range recs {
		if bytes.ContainsRune(r.ID, '\r') ||
			bytes.ContainsRune(r.Seq, '\r') ||
			bytes.ContainsRune(r.Qual, '\r') {
			return false
		}
	}
	return true
}

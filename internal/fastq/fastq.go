// Package fastq implements FASTQ parsing, writing, and the parallel block
// reader of paper §3.3: the file is sampled to estimate record lengths,
// split points are placed at even byte offsets, and each rank
// fast-forwards from its split point to the next true record boundary so
// that every read is parsed by exactly one rank. The partial record at a
// rank's split point belongs to the preceding rank.
package fastq

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// Record is one FASTQ read: identifier (without the '@'), sequence, and
// per-base quality (phred+33).
type Record struct {
	ID   []byte
	Seq  []byte
	Qual []byte
}

// Validate checks structural invariants of the record.
func (r Record) Validate() error {
	if len(r.ID) == 0 {
		return errors.New("fastq: empty record id")
	}
	if len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("fastq: read %s: sequence length %d != quality length %d",
			r.ID, len(r.Seq), len(r.Qual))
	}
	return nil
}

// Append renders the record in 4-line FASTQ form onto dst.
func (r Record) Append(dst []byte) []byte {
	dst = append(dst, '@')
	dst = append(dst, r.ID...)
	dst = append(dst, '\n')
	dst = append(dst, r.Seq...)
	dst = append(dst, "\n+\n"...)
	dst = append(dst, r.Qual...)
	dst = append(dst, '\n')
	return dst
}

// Format renders records as FASTQ text.
func Format(recs []Record) []byte {
	var out []byte
	for _, r := range recs {
		out = r.Append(out)
	}
	return out
}

// Write writes records to w in FASTQ format.
func Write(w io.Writer, recs []Record) error {
	buf := make([]byte, 0, 1<<16)
	for _, r := range recs {
		buf = r.Append(buf)
		if len(buf) > 1<<15 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := w.Write(buf)
	return err
}

// Parser incrementally parses FASTQ text from a byte slice. Records
// reference freshly copied storage so the input buffer may be reused.
type Parser struct {
	buf []byte
	pos int
}

// NewParser parses the given FASTQ text.
func NewParser(buf []byte) *Parser { return &Parser{buf: buf} }

func (p *Parser) line() ([]byte, bool) {
	if p.pos >= len(p.buf) {
		return nil, false
	}
	i := bytes.IndexByte(p.buf[p.pos:], '\n')
	var ln []byte
	if i < 0 {
		ln = p.buf[p.pos:]
		p.pos = len(p.buf)
	} else {
		ln = p.buf[p.pos : p.pos+i]
		p.pos += i + 1
	}
	if n := len(ln); n > 0 && ln[n-1] == '\r' {
		ln = ln[:n-1]
	}
	return ln, true
}

// Next returns the next record. ok is false at end of input; a non-nil
// error indicates malformed input.
func (p *Parser) Next() (rec Record, ok bool, err error) {
	// skip blank lines between records
	var hdr []byte
	for {
		ln, more := p.line()
		if !more {
			return Record{}, false, nil
		}
		if len(ln) > 0 {
			hdr = ln
			break
		}
	}
	if hdr[0] != '@' {
		return Record{}, false, fmt.Errorf("fastq: expected '@' header, got %q", hdr)
	}
	seq, more := p.line()
	if !more {
		return Record{}, false, errors.New("fastq: truncated record (no sequence)")
	}
	plus, more := p.line()
	if !more || len(plus) == 0 || plus[0] != '+' {
		return Record{}, false, fmt.Errorf("fastq: expected '+' separator, got %q", plus)
	}
	qual, more := p.line()
	if !more {
		return Record{}, false, errors.New("fastq: truncated record (no quality)")
	}
	rec = Record{
		ID:   append([]byte(nil), hdr[1:]...),
		Seq:  append([]byte(nil), seq...),
		Qual: append([]byte(nil), qual...),
	}
	if err := rec.Validate(); err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// ParseAll parses an entire FASTQ buffer.
func ParseAll(buf []byte) ([]Record, error) {
	p := NewParser(buf)
	var out []Record
	for {
		rec, ok, err := p.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// findRecordStart returns the offset within buf of the first byte of a
// FASTQ record, or -1 if none can be confirmed. It is robust to quality
// lines that begin with '@' or '+': a candidate header line is accepted
// only if the line two below starts with '+' and the sequence/quality
// line lengths agree.
func findRecordStart(buf []byte, atBufStart bool) int {
	for cand := 0; cand <= len(buf); {
		var idx int
		if cand == 0 && atBufStart {
			idx = 0
			if len(buf) == 0 || buf[0] != '@' {
				cand = 1
				continue
			}
		} else {
			rel := bytes.Index(buf[cand:], []byte("\n@"))
			if rel < 0 {
				return -1
			}
			idx = cand + rel + 1
		}
		if confirmRecordAt(buf[idx:]) {
			return idx
		}
		cand = idx + 1
	}
	return -1
}

// confirmRecordAt reports whether b begins with a structurally valid FASTQ
// record header. It requires enough of the record to be present in b.
func confirmRecordAt(b []byte) bool {
	lines := make([][]byte, 0, 4)
	pos := 0
	for len(lines) < 4 && pos < len(b) {
		i := bytes.IndexByte(b[pos:], '\n')
		if i < 0 {
			lines = append(lines, b[pos:])
			pos = len(b)
			break
		}
		lines = append(lines, b[pos:pos+i])
		pos += i + 1
	}
	if len(lines) < 3 {
		return false
	}
	if len(lines[0]) == 0 || lines[0][0] != '@' {
		return false
	}
	if !isSeqLine(lines[1]) {
		return false
	}
	if len(lines[2]) == 0 || lines[2][0] != '+' {
		return false
	}
	if len(lines) >= 4 && pos <= len(b) {
		// quality must match sequence length when fully present
		q := lines[3]
		if len(q) > 0 && q[len(q)-1] == '\r' {
			q = q[:len(q)-1]
		}
		s := lines[1]
		if len(s) > 0 && s[len(s)-1] == '\r' {
			s = s[:len(s)-1]
		}
		// If the quality line was truncated by the buffer end, lengths may
		// differ; only reject when the full line is visible.
		fullQual := pos < len(b) || (pos == len(b) && len(b) > 0 && b[len(b)-1] == '\n')
		if fullQual && len(q) != len(s) {
			return false
		}
	}
	return true
}

func isSeqLine(ln []byte) bool {
	if len(ln) > 0 && ln[len(ln)-1] == '\r' {
		ln = ln[:len(ln)-1]
	}
	if len(ln) == 0 {
		return false
	}
	for _, c := range ln {
		switch c {
		case 'A', 'C', 'G', 'T', 'N', 'a', 'c', 'g', 't', 'n':
		default:
			return false
		}
	}
	return true
}

// Splits computes the record-aligned partition of a FASTQ byte range into
// parts pieces: the returned slice has parts+1 offsets; part i owns
// [starts[i], starts[i+1]). Every record is owned by exactly one part. It
// mirrors the paper's scheme: even byte offsets, then fast-forward to the
// next record boundary ("the previous partial read is processed by the
// neighboring processor").
func Splits(ra io.ReaderAt, size int64, parts int) ([]int64, error) {
	if parts < 1 {
		return nil, errors.New("fastq: parts must be >= 1")
	}
	starts := make([]int64, parts+1)
	starts[parts] = size
	const window = 1 << 16
	for i := 1; i < parts; i++ {
		cand := size * int64(i) / int64(parts)
		off := cand
		found := int64(-1)
		for off < size {
			n := int64(window)
			if off+n > size {
				n = size - off
			}
			buf := make([]byte, n)
			m, err := ra.ReadAt(buf, off)
			if err != nil && err != io.EOF {
				return nil, err
			}
			buf = buf[:m]
			if idx := findRecordStart(buf, off == 0); idx >= 0 {
				found = off + int64(idx)
				break
			}
			if off+int64(m) >= size {
				break
			}
			// overlap windows slightly so a boundary spanning the window
			// edge is not missed
			off += int64(m) - 256
		}
		if found < 0 {
			found = size
		}
		starts[i] = found
	}
	// enforce monotonicity (tiny files can make later candidates collapse)
	for i := 1; i <= parts; i++ {
		if starts[i] < starts[i-1] {
			starts[i] = starts[i-1]
		}
	}
	return starts, nil
}

// ReadRange parses the records wholly contained in [lo, hi) of ra. lo must
// be a record boundary produced by Splits.
func ReadRange(ra io.ReaderAt, lo, hi int64) ([]Record, error) {
	if hi <= lo {
		return nil, nil
	}
	buf := make([]byte, hi-lo)
	if _, err := ra.ReadAt(buf, lo); err != nil && err != io.EOF {
		return nil, err
	}
	return ParseAll(buf)
}

// File is a FASTQ file opened for parallel reading.
type File struct {
	f      *os.File
	Size   int64
	Starts []int64
}

// OpenSplit opens path and computes a parts-way record-aligned split.
func OpenSplit(path string, parts int) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	starts, err := Splits(f, st.Size(), parts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, Size: st.Size(), Starts: starts}, nil
}

// ReadPart parses part i. Safe for concurrent use across parts.
func (fl *File) ReadPart(i int) ([]Record, error) {
	return ReadRange(fl.f, fl.Starts[i], fl.Starts[i+1])
}

// PartBytes returns the byte length of part i (for I/O cost charging).
func (fl *File) PartBytes(i int) int64 { return fl.Starts[i+1] - fl.Starts[i] }

// Close closes the underlying file.
func (fl *File) Close() error { return fl.f.Close() }

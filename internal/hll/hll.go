// Package hll implements a HyperLogLog cardinality estimator. HipMer's
// k-mer analysis makes an initial pass over the reads to estimate the
// number of distinct k-mers so the Bloom filters can be sized efficiently
// (paper §3.1); the same pass hosts the Misra–Gries heavy-hitter scan.
// Sketches are mergeable, so each rank estimates locally and the team
// reduces to a global estimate.
package hll

import "math"

// Sketch is a HyperLogLog sketch with 2^p registers.
type Sketch struct {
	p    uint8
	regs []uint8
}

// New creates a sketch with precision p in [4, 18]; the standard error is
// about 1.04/sqrt(2^p).
func New(p uint8) *Sketch {
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	return &Sketch{p: p, regs: make([]uint8, 1<<p)}
}

// Add offers a pre-hashed element to the sketch.
func (s *Sketch) Add(hash uint64) {
	idx := hash >> (64 - s.p)
	rest := hash<<s.p | 1<<(s.p-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// Merge folds other into s. Both sketches must share a precision.
func (s *Sketch) Merge(other *Sketch) {
	if s.p != other.p {
		panic("hll: precision mismatch in Merge")
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
}

// Estimate returns the estimated number of distinct elements added, with
// the standard small-range (linear counting) correction.
func (s *Sketch) Estimate() uint64 {
	m := float64(len(s.regs))
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

// Registers exposes the raw register array (for serialization in
// collectives); treat as read-only.
func (s *Sketch) Registers() []uint8 { return s.regs }

// Precision returns the sketch precision p.
func (s *Sketch) Precision() uint8 { return s.p }

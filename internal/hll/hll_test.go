package hll

import (
	"math"
	"testing"

	"hipmer/internal/xrt"
)

func TestEstimateAcrossMagnitudes(t *testing.T) {
	for _, n := range []uint64{100, 1000, 10000, 100000, 1000000} {
		s := New(14)
		for i := uint64(0); i < n; i++ {
			s.Add(xrt.Splitmix64(i))
		}
		est := float64(s.Estimate())
		err := math.Abs(est-float64(n)) / float64(n)
		if err > 0.05 {
			t.Fatalf("n=%d: estimate %d, relative error %f", n, s.Estimate(), err)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New(12)
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 5000; i++ {
			s.Add(xrt.Splitmix64(i))
		}
	}
	est := float64(s.Estimate())
	if est < 4000 || est > 6000 {
		t.Fatalf("estimate %f far from 5000 despite duplicates", est)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(12), New(12), New(12)
	for i := uint64(0); i < 20000; i++ {
		h := xrt.Splitmix64(i)
		if i%2 == 0 {
			a.Add(h)
		} else {
			b.Add(h)
		}
		u.Add(h)
	}
	// overlap: add some of b's items to a as well
	for i := uint64(1); i < 5000; i += 2 {
		a.Add(xrt.Splitmix64(i))
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merged estimate %d != union estimate %d", a.Estimate(), u.Estimate())
	}
}

func TestMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Merge(New(12))
}

func TestPrecisionClamping(t *testing.T) {
	if got := New(2).Precision(); got != 4 {
		t.Fatalf("low precision clamped to %d, want 4", got)
	}
	if got := New(30).Precision(); got != 18 {
		t.Fatalf("high precision clamped to %d, want 18", got)
	}
}

func TestEmptySketchEstimatesZero(t *testing.T) {
	if got := New(12).Estimate(); got != 0 {
		t.Fatalf("empty sketch estimates %d", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(14)
	for i := 0; i < b.N; i++ {
		s.Add(xrt.Splitmix64(uint64(i)))
	}
}

package aligner

// Overlap describes a suffix(a)↔prefix(b) alignment found by BestOverlap.
type Overlap struct {
	LenA    int // bases of a's suffix consumed
	LenB    int // bases of b's prefix consumed
	Matches int
	Score   int
	Columns int // alignment columns (for identity)
}

// Identity returns the fraction of alignment columns that are matches.
func (o Overlap) Identity() float64 {
	if o.Columns == 0 {
		return 0
	}
	return float64(o.Matches) / float64(o.Columns)
}

const (
	ovlMatch    = 2
	ovlMismatch = -3
	ovlGap      = -4
	// maxOverlapWindow bounds the DP to the relevant sequence ends.
	maxOverlapWindow = 512
)

// BestOverlap computes the best-scoring alignment between a suffix of a
// and a prefix of b, allowing mismatches and gaps — the "patch" operation
// of gap closing (paper §4.8: "find an acceptable overlap between the two
// sequences"). ok is false when no overlap meets the thresholds.
func BestOverlap(a, b []byte, minOverlap int, minIdentity float64) (Overlap, bool) {
	wa := a
	if len(wa) > maxOverlapWindow {
		wa = wa[len(wa)-maxOverlapWindow:]
	}
	wb := b
	if len(wb) > maxOverlapWindow {
		wb = wb[:maxOverlapWindow]
	}
	n, m := len(wa), len(wb)
	if n == 0 || m == 0 {
		return Overlap{}, false
	}
	type cell struct {
		score   int
		origin  int // row where the alignment started (free leading gap in a)
		matches int
		cols    int
	}
	prev := make([]cell, m+1)
	cur := make([]cell, m+1)
	for i := 0; i <= n; i++ {
		prev[0] = cell{score: 0, origin: 0}
	}
	// row 0: aligning nothing of a against b's prefix costs gaps
	for j := 1; j <= m; j++ {
		prev[j] = cell{score: j * ovlGap, origin: 0, cols: j}
	}
	best := Overlap{Score: -1 << 30}
	for i := 1; i <= n; i++ {
		cur[0] = cell{score: 0, origin: i} // free start anywhere in a
		for j := 1; j <= m; j++ {
			sub := ovlMismatch
			isMatch := wa[i-1] == wb[j-1]
			if isMatch {
				sub = ovlMatch
			}
			d := prev[j-1]
			dc := cell{score: d.score + sub, origin: d.origin,
				matches: d.matches, cols: d.cols + 1}
			if isMatch {
				dc.matches++
			}
			u := prev[j]
			uc := cell{score: u.score + ovlGap, origin: u.origin,
				matches: u.matches, cols: u.cols + 1}
			l := cur[j-1]
			lc := cell{score: l.score + ovlGap, origin: l.origin,
				matches: l.matches, cols: l.cols + 1}
			bestc := dc
			if uc.score > bestc.score {
				bestc = uc
			}
			if lc.score > bestc.score {
				bestc = lc
			}
			cur[j] = bestc
			if i == n { // alignment must consume a to its end
				c := cur[j]
				lenA := n - c.origin
				if lenA >= minOverlap && j >= minOverlap && c.score > best.Score {
					o := Overlap{LenA: lenA, LenB: j, Matches: c.matches,
						Score: c.score, Columns: c.cols}
					if o.Identity() >= minIdentity {
						best = o
					}
				}
			}
		}
		prev, cur = cur, prev
	}
	if best.Score == -1<<30 {
		return Overlap{}, false
	}
	return best, true
}

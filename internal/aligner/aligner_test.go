package aligner

import (
	"bytes"
	"testing"

	"hipmer/internal/contig"
	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// mkIndex builds an index over the given sequences treated as contigs,
// distributed round-robin over the team.
func mkIndex(team *xrt.Team, seqs [][]byte, opt Options) *Index {
	p := team.Config().Ranks
	byRank := make([][]*contig.Contig, p)
	for i, s := range seqs {
		c := &contig.Contig{ID: int64(i + 1), Seq: s}
		byRank[i%p] = append(byRank[i%p], c)
	}
	return BuildIndex(team, byRank, opt)
}

func alignOne(t *testing.T, idx *Index, team *xrt.Team, read []byte) []Alignment {
	t.Helper()
	var alns []Alignment
	team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			alns = idx.AlignRead(r, read)
		}
	})
	return alns
}

func TestPlantedReadsAlignExactly(t *testing.T) {
	rng := xrt.NewPrng(1)
	ctg := genome.Random(rng, 5000)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	idx := mkIndex(team, [][]byte{ctg}, Options{})
	for _, pos := range []int{0, 100, 1234, 4900} {
		readLen := 100
		if pos+readLen > len(ctg) {
			readLen = len(ctg) - pos
		}
		read := ctg[pos : pos+readLen]
		alns := alignOne(t, idx, team, read)
		if len(alns) == 0 {
			t.Fatalf("pos %d: no alignment", pos)
		}
		a := alns[0]
		if a.ContigID != 1 || a.Flipped || a.CStart != pos || a.CEnd != pos+readLen {
			t.Fatalf("pos %d: got %+v", pos, a)
		}
		if !a.FullLength() || a.Matches != readLen {
			t.Fatalf("pos %d: expected perfect full-length alignment: %+v", pos, a)
		}
	}
}

func TestReverseComplementReadsFlip(t *testing.T) {
	rng := xrt.NewPrng(2)
	ctg := genome.Random(rng, 3000)
	team := xrt.NewTeam(xrt.Config{Ranks: 3})
	idx := mkIndex(team, [][]byte{ctg}, Options{})
	pos := 500
	read := kmer.RevCompString(ctg[pos : pos+120])
	alns := alignOne(t, idx, team, read)
	if len(alns) == 0 {
		t.Fatal("no alignment for rc read")
	}
	a := alns[0]
	if !a.Flipped {
		t.Fatalf("expected flipped alignment: %+v", a)
	}
	if a.CStart != pos || a.CEnd != pos+120 {
		t.Fatalf("rc coordinates wrong: %+v", a)
	}
	if !bytes.Equal(kmer.RevCompString(read[a.RStart:a.REnd]), ctg[a.CStart:a.CEnd]) {
		t.Fatal("flipped alignment coordinate contract violated")
	}
}

func TestReadsWithMismatchesStillAlign(t *testing.T) {
	rng := xrt.NewPrng(3)
	ctg := genome.Random(rng, 4000)
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	idx := mkIndex(team, [][]byte{ctg}, Options{})
	read := append([]byte(nil), ctg[1000:1100]...)
	// plant 3 scattered substitutions (3% error)
	for _, p := range []int{10, 50, 90} {
		c, _ := kmer.BaseCode(read[p])
		read[p] = kmer.CodeBase((c + 1) % 4)
	}
	alns := alignOne(t, idx, team, read)
	if len(alns) == 0 {
		t.Fatal("no alignment for read with mismatches")
	}
	a := alns[0]
	if a.CStart > 1010 || a.CEnd < 1090 {
		t.Fatalf("alignment does not cover the planted region: %+v", a)
	}
	if a.Identity() < 0.9 {
		t.Fatalf("identity %f too low", a.Identity())
	}
}

func TestReadSpanningTwoContigsAlignsToBoth(t *testing.T) {
	// splint scenario: contigs overlap and a read bridges their junction
	rng := xrt.NewPrng(4)
	g := genome.Random(rng, 2000)
	a := g[:1020] // contigs share a 40bp overlap
	b := g[980:]
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	idx := mkIndex(team, [][]byte{a, b}, Options{})
	read := g[950:1050] // spans the junction
	alns := alignOne(t, idx, team, read)
	if len(alns) < 2 {
		t.Fatalf("expected alignments to both contigs, got %d", len(alns))
	}
	ids := map[int64]bool{}
	for _, al := range alns {
		ids[al.ContigID] = true
	}
	if !ids[1] || !ids[2] {
		t.Fatalf("alignments missing a contig: %+v", alns)
	}
}

func TestUnrelatedReadDoesNotAlign(t *testing.T) {
	rng := xrt.NewPrng(5)
	ctg := genome.Random(rng, 3000)
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	idx := mkIndex(team, [][]byte{ctg}, Options{})
	read := genome.Random(rng, 100)
	alns := alignOne(t, idx, team, read)
	for _, a := range alns {
		if a.REnd-a.RStart > 40 {
			t.Fatalf("long spurious alignment of random read: %+v", a)
		}
	}
}

func TestRepeatSeedsSaturate(t *testing.T) {
	// a contig set full of one repeated segment must not blow up the
	// candidate lists; alignment against a unique region still works
	rng := xrt.NewPrng(6)
	rep := genome.Random(rng, 400)
	uniq := genome.Random(rng, 1000)
	var seqs [][]byte
	for i := 0; i < 50; i++ {
		seqs = append(seqs, append(append([]byte(nil), rep...), genome.Random(rng, 50)...))
	}
	seqs = append(seqs, uniq)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	idx := mkIndex(team, seqs, Options{MaxSeedHits: 8})
	read := uniq[300:400]
	alns := alignOne(t, idx, team, read)
	if len(alns) == 0 {
		t.Fatal("unique read failed to align amid repeats")
	}
	if alns[0].ContigID != int64(len(seqs)) {
		t.Fatalf("aligned to wrong contig %d", alns[0].ContigID)
	}
}

func TestAlignAllSimulatedPairs(t *testing.T) {
	rng := xrt.NewPrng(7)
	g := genome.Random(rng, 20000)
	recs, truth := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 4,
		Lib:      genome.Library{Name: "a", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	idx := mkIndex(team, [][]byte{g}, Options{})
	// distribute reads keeping pairs together
	readsByRank := make([][]fastq.Record, 4)
	pairRank := make([][2]int, len(truth)) // (rank, local index of read1)
	for i := 0; i+1 < len(recs); i += 2 {
		r := (i / 2) % 4
		pairRank[i/2] = [2]int{r, len(readsByRank[r])}
		readsByRank[r] = append(readsByRank[r], recs[i], recs[i+1])
	}
	alns := AlignAll(team, idx, readsByRank)
	aligned, correct := 0, 0
	for pi, tr := range truth {
		rk, li := pairRank[pi][0], pairRank[pi][1]
		a1 := alns[rk][li]
		if len(a1) == 0 {
			continue
		}
		aligned++
		// read1 comes from tr.Pos (fragment start) on the fragment strand
		want := tr.Pos
		if tr.Flipped {
			want = tr.Pos + tr.Insert - 100
		}
		if abs(a1[0].CStart-want) <= 5 {
			correct++
		}
	}
	if aligned < len(truth)*9/10 {
		t.Fatalf("only %d/%d pairs aligned", aligned, len(truth))
	}
	if correct < aligned*95/100 {
		t.Fatalf("only %d/%d alignments at the true position", correct, aligned)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestBestOverlapExact(t *testing.T) {
	rng := xrt.NewPrng(8)
	g := genome.Random(rng, 600)
	a := g[:400]
	b := g[350:] // 50bp true overlap
	o, ok := BestOverlap(a, b, 20, 0.9)
	if !ok {
		t.Fatal("no overlap found")
	}
	if o.LenA != 50 || o.LenB != 50 {
		t.Fatalf("overlap lengths %d/%d, want 50/50", o.LenA, o.LenB)
	}
	if o.Identity() != 1.0 {
		t.Fatalf("identity %f", o.Identity())
	}
}

func TestBestOverlapWithErrors(t *testing.T) {
	rng := xrt.NewPrng(9)
	g := genome.Random(rng, 600)
	a := append([]byte(nil), g[:400]...)
	b := append([]byte(nil), g[340:]...) // 60bp overlap
	// two mismatches inside the overlap region of b
	for _, p := range []int{10, 40} {
		c, _ := kmer.BaseCode(b[p])
		b[p] = kmer.CodeBase((c + 2) % 4)
	}
	o, ok := BestOverlap(a, b, 30, 0.9)
	if !ok {
		t.Fatal("no overlap found despite 96% identity")
	}
	if o.LenA < 55 || o.LenB < 55 {
		t.Fatalf("overlap too short: %+v", o)
	}
}

func TestBestOverlapRejectsUnrelated(t *testing.T) {
	rng := xrt.NewPrng(10)
	a := genome.Random(rng, 300)
	b := genome.Random(rng, 300)
	if o, ok := BestOverlap(a, b, 30, 0.92); ok {
		t.Fatalf("found overlap between unrelated sequences: %+v", o)
	}
}

func TestBestOverlapEmptyInputs(t *testing.T) {
	if _, ok := BestOverlap(nil, []byte("ACGT"), 1, 0.9); ok {
		t.Fatal("overlap on empty input")
	}
	if _, ok := BestOverlap([]byte("ACGT"), nil, 1, 0.9); ok {
		t.Fatal("overlap on empty input")
	}
}

func BenchmarkAlignRead(b *testing.B) {
	rng := xrt.NewPrng(11)
	g := genome.Random(rng, 100000)
	team := xrt.NewTeam(xrt.Config{Ranks: 1})
	idx := mkIndex(team, [][]byte{g}, Options{})
	read := g[5000:5100]
	b.ResetTimer()
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < b.N; i++ {
			idx.AlignRead(r, read)
		}
	})
}

func TestContigCacheReducesRemoteFetches(t *testing.T) {
	rng := xrt.NewPrng(20)
	ctg := genome.Random(rng, 3000)
	reads := make([][]byte, 200)
	for i := range reads {
		pos := rng.Intn(len(ctg) - 100)
		reads[i] = ctg[pos : pos+100]
	}
	run := func(cache int) int64 {
		team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
		idx := mkIndex(team, [][]byte{ctg}, Options{CacheContigs: cache})
		before := team.AggStats()
		team.Run(func(r *xrt.Rank) {
			for i := r.ID; i < len(reads); i += 4 {
				idx.AlignRead(r, reads[i])
			}
		})
		d := team.AggStats().Sub(before)
		return d.OnNodeLookups + d.OffNodeLookups
	}
	withCache := run(1024)
	withoutCache := run(-1)
	if withCache >= withoutCache {
		t.Fatalf("cache did not reduce remote lookups: %d vs %d", withCache, withoutCache)
	}
}

func TestContigCacheEviction(t *testing.T) {
	c := &contigCache{cap: 2, have: make(map[int64]bool)}
	if c.hit(1) || c.hit(2) {
		t.Fatal("cold cache reported hits")
	}
	if !c.hit(1) {
		t.Fatal("warm entry missed")
	}
	c.hit(3) // evicts 1 (FIFO)
	if c.hit(1) {
		t.Fatal("evicted entry reported hit")
	}
}

// Package aligner implements merAligner (paper §4.3 and the IPDPS'15
// companion paper): a fully parallel seed-and-extend read-to-contig
// aligner. The seed index — every k-mer of every contig — lives in a
// distributed hash table built with aggregating stores, and lookups during
// alignment are the same irregular-access pattern as the rest of the
// pipeline. Candidate (contig, strand, diagonal) bins are voted on by
// seed hits and the best candidates are extended along the diagonal.
package aligner

import (
	"sort"

	"hipmer/internal/contig"
	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// Options configures the aligner.
type Options struct {
	// SeedLen is the seed k-mer length (defaults to 19; must be odd).
	SeedLen int
	// Stride is the spacing between read seed positions (defaults to
	// SeedLen/2, ensuring overlapping coverage).
	Stride int
	// MaxSeedHits caps the hit list per seed; seeds hit more often come
	// from repeats and are skipped, as merAligner does.
	MaxSeedHits int
	// MaxCandidates bounds how many candidate diagonals are extended.
	MaxCandidates int
	// MinAlnLen is the minimum aligned length to report.
	MinAlnLen int
	// MinIdentity is the minimum fraction of matching bases.
	MinIdentity float64
	// CacheContigs is the per-rank software cache capacity for fetched
	// contig sequences (merAligner caches these; repeated extensions
	// against the same contig then cost local time only). 0 uses the
	// default of 1024; negative disables caching.
	CacheContigs int
	// CacheSeeds is the per-rank direct-mapped software-cache slot count
	// in front of remote seed lookups (the second merAligner cache of the
	// companion paper: overlapping reads look up the same seed k-mers).
	// 0 uses the default of 8192 slots; negative disables caching.
	CacheSeeds int
}

func (o Options) withDefaults() Options {
	if o.SeedLen <= 0 {
		o.SeedLen = 19
	}
	if o.SeedLen%2 == 0 {
		o.SeedLen++
	}
	if o.Stride <= 0 {
		o.Stride = o.SeedLen / 2
	}
	if o.MaxSeedHits <= 0 {
		o.MaxSeedHits = 32
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4
	}
	if o.MinAlnLen <= 0 {
		o.MinAlnLen = o.SeedLen
	}
	if o.MinIdentity <= 0 {
		o.MinIdentity = 0.9
	}
	if o.CacheContigs == 0 {
		o.CacheContigs = 1024
	}
	if o.CacheSeeds == 0 {
		o.CacheSeeds = 8192
	} else if o.CacheSeeds < 0 {
		o.CacheSeeds = 0
	}
	return o
}

// SeedHit is one occurrence of a seed k-mer in a contig.
type SeedHit struct {
	ContigID int64
	Pos      int32 // contig position of the k-mer window
	Flipped  bool  // contig k-mer was reverse-complemented to canonical
}

type hitList struct {
	hits      []SeedHit
	saturated bool
}

// Alignment records a gapless read-to-contig alignment.
//
// If !Flipped: read[RStart:REnd] matches contig[CStart:CEnd].
// If Flipped: revcomp(read[RStart:REnd]) matches contig[CStart:CEnd].
type Alignment struct {
	ContigID     int64
	RStart, REnd int
	CStart, CEnd int
	Flipped      bool
	Matches      int
	Score        int
	ReadLen      int
	ContigLen    int
}

// Identity returns the fraction of aligned bases that match.
func (a Alignment) Identity() float64 {
	n := a.REnd - a.RStart
	if n <= 0 {
		return 0
	}
	return float64(a.Matches) / float64(n)
}

// FullLength reports whether the entire read aligned.
func (a Alignment) FullLength() bool { return a.RStart == 0 && a.REnd == a.ReadLen }

// Index is the distributed seed index plus contig sequence access.
type Index struct {
	opt     Options
	team    *xrt.Team
	seeds   *dht.Table[kmer.Kmer, hitList]
	seqs    map[int64]*contig.Contig
	numCtgs int64
	// caches[rank] is the rank-local contig cache (FIFO eviction).
	caches []*contigCache
}

// contigCache is a bounded per-rank set of contig IDs whose sequences
// have already been fetched; only its owning rank touches it.
type contigCache struct {
	cap   int
	have  map[int64]bool
	order []int64
}

func (c *contigCache) hit(id int64) bool {
	if c == nil || c.cap <= 0 {
		return false
	}
	if c.have[id] {
		return true
	}
	if len(c.order) >= c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.have, evict)
	}
	c.have[id] = true
	c.order = append(c.order, id)
	return false
}

// BuildIndex constructs the distributed seed index over all contigs.
// Contig IDs must be the global IDs assigned by contig.Run.
func BuildIndex(team *xrt.Team, contigsByRank [][]*contig.Contig, opt Options) *Index {
	opt = opt.withDefaults()
	idx := &Index{opt: opt, team: team, seqs: make(map[int64]*contig.Contig)}
	if opt.CacheContigs > 0 {
		idx.caches = make([]*contigCache, team.Config().Ranks)
		for i := range idx.caches {
			idx.caches[i] = &contigCache{cap: opt.CacheContigs, have: make(map[int64]bool)}
		}
	}
	for _, cs := range contigsByRank {
		for _, c := range cs {
			idx.seqs[c.ID] = c
			idx.numCtgs++
		}
	}
	// every contig position contributes one seed, so total contig bases
	// bound the index size
	var totalBases int64
	for _, cs := range contigsByRank {
		for _, c := range cs {
			totalBases += int64(len(c.Seq))
		}
	}
	idx.seeds = dht.New[kmer.Kmer, hitList](team, dht.Options[kmer.Kmer]{
		Hash:          func(km kmer.Kmer) uint64 { return km.Hash(0x5eed1d) },
		ItemBytes:     16 + 14,
		ExpectedItems: totalBases,
		CacheSlots:    opt.CacheSeeds,
	}, nil)
	cap := opt.MaxSeedHits
	idx.seeds.SetApply(func(_, _ int, _ uint64, k kmer.Kmer, in hitList, shard map[kmer.Kmer]hitList) {
		cur := shard[k]
		if cur.saturated {
			return
		}
		cur.hits = append(cur.hits, in.hits...)
		if len(cur.hits) > cap {
			cur.hits = cur.hits[:cap]
			cur.saturated = true
		}
		shard[k] = cur
	})
	team.BeginSpan("index-build")
	team.Run(func(r *xrt.Rank) {
		for _, c := range contigsByRank[r.ID] {
			id := c.ID
			n := 0
			kmer.ForEach(c.Seq, opt.SeedLen, func(pos int, km kmer.Kmer) {
				canon, flipped := km.Canonical(opt.SeedLen)
				idx.seeds.Put(r, canon, hitList{hits: []SeedHit{{
					ContigID: id, Pos: int32(pos), Flipped: flipped,
				}}})
				n++
			})
			r.ChargeItems(n)
		}
		idx.seeds.Flush(r)
		r.Barrier()

		// the index is read-only from here on: alignment serves seed
		// lookups lock-free through the per-rank software cache
		idx.seeds.Freeze(r)
	})
	team.EndSpan()
	idx.seeds.SetApply(nil)
	return idx
}

// Contig returns the indexed contig with the given global ID.
func (x *Index) Contig(id int64) *contig.Contig { return x.seqs[id] }

// NumContigs returns the number of indexed contigs.
func (x *Index) NumContigs() int64 { return x.numCtgs }

// fetchContig models fetching a contig's sequence window for extension:
// a remote lookup on a cache miss, rank-local time on a hit (merAligner's
// software caching of contig sequences).
func (x *Index) fetchContig(r *xrt.Rank, id int64, bytes int) *contig.Contig {
	c := x.seqs[id]
	if c == nil {
		return nil
	}
	if x.caches != nil && x.caches[r.ID].hit(id) {
		r.Charge(x.team.Cost().LocalOpNs)
		return c
	}
	owner := int(id % int64(x.team.Config().Ranks))
	r.ChargeLookup(owner, bytes)
	return c
}

type candidate struct {
	contigID int64
	flipped  bool
	diag     int32
	votes    int
}

// AlignRead aligns one read against the index, returning the surviving
// alignments sorted by descending score.
func (x *Index) AlignRead(r *xrt.Rank, read []byte) []Alignment {
	opt := x.opt
	k := opt.SeedLen
	if len(read) < k {
		return nil
	}
	rc := kmer.RevCompString(read)
	// vote for (contig, strand, diagonal) bins
	votes := make(map[candidate]int)
	for pos := 0; pos+k <= len(read); pos += opt.Stride {
		km, ok := kmer.Pack(read[pos:], k)
		if !ok {
			continue
		}
		canon, flippedR := km.Canonical(k)
		hl, ok := x.seeds.Get(r, canon)
		if !ok || hl.saturated {
			continue
		}
		for _, h := range hl.hits {
			flip := h.Flipped != flippedR
			var diag int32
			if !flip {
				diag = h.Pos - int32(pos)
			} else {
				// in the reverse-complemented read frame the seed starts at
				// len(read)-k-pos
				diag = h.Pos - int32(len(read)-k-pos)
			}
			key := candidate{contigID: h.ContigID, flipped: flip, diag: diag}
			votes[key]++
		}
	}
	if len(votes) == 0 {
		return nil
	}
	cands := make([]candidate, 0, len(votes))
	for c, v := range votes {
		c.votes = v
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		if cands[i].contigID != cands[j].contigID {
			return cands[i].contigID < cands[j].contigID
		}
		if cands[i].diag != cands[j].diag {
			return cands[i].diag < cands[j].diag
		}
		return !cands[i].flipped && cands[j].flipped
	})
	if len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}

	var out []Alignment
	seen := make(map[int64]bool) // best alignment per contig wins
	for _, c := range cands {
		if seen[c.contigID] {
			continue
		}
		ctg := x.fetchContig(r, c.contigID, len(read))
		if ctg == nil {
			continue
		}
		q := read
		if c.flipped {
			q = rc
		}
		a, ok := extendDiagonal(q, ctg.Seq, int(c.diag), opt)
		if !ok {
			continue
		}
		a.ContigID = c.contigID
		a.Flipped = c.flipped
		a.ReadLen = len(read)
		a.ContigLen = len(ctg.Seq)
		if c.flipped {
			// convert coordinates back to the original read frame
			a.RStart, a.REnd = len(read)-a.REnd, len(read)-a.RStart
		}
		seen[c.contigID] = true
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// extendDiagonal aligns q against ctg along a fixed diagonal (gapless),
// trimming to the best-scoring window and applying the length/identity
// thresholds. Coordinates are in q's frame.
func extendDiagonal(q, ctg []byte, diag int, opt Options) (Alignment, bool) {
	rlo := 0
	if diag < 0 {
		rlo = -diag
	}
	rhi := len(q)
	if m := len(ctg) - diag; m < rhi {
		rhi = m
	}
	if rhi-rlo < opt.MinAlnLen {
		return Alignment{}, false
	}
	// best-scoring subsegment (match=+1, mismatch=-1), Kadane-style
	best, bestLo, bestHi := -1, rlo, rlo
	cur, curLo := 0, rlo
	bestMatches, curMatches := 0, 0
	for i := rlo; i < rhi; i++ {
		if q[i] == ctg[i+diag] {
			cur++
			curMatches++
		} else {
			cur--
		}
		if cur > best {
			best, bestLo, bestHi = cur, curLo, i+1
			bestMatches = curMatches
		}
		if cur < 0 {
			cur, curLo, curMatches = 0, i+1, 0
		}
	}
	n := bestHi - bestLo
	if n < opt.MinAlnLen {
		return Alignment{}, false
	}
	a := Alignment{
		RStart: bestLo, REnd: bestHi,
		CStart: bestLo + diag, CEnd: bestHi + diag,
		Matches: bestMatches, Score: best,
	}
	if a.Identity() < opt.MinIdentity {
		return Alignment{}, false
	}
	return a, true
}

// AlignAll aligns every read of every rank; alnsByRank[r][i] holds the
// alignments of readsByRank[r][i].
func AlignAll(team *xrt.Team, idx *Index, readsByRank [][]fastq.Record) [][][]Alignment {
	out := make([][][]Alignment, team.Config().Ranks)
	team.BeginSpan("align")
	team.Run(func(r *xrt.Rank) {
		reads := readsByRank[r.ID]
		res := make([][]Alignment, len(reads))
		for i, rec := range reads {
			res[i] = idx.AlignRead(r, rec.Seq)
			r.ChargeItems(len(rec.Seq))
		}
		out[r.ID] = res
		r.Barrier()
	})
	var reads, alns int64
	for _, rr := range out {
		reads += int64(len(rr))
		for _, as := range rr {
			alns += int64(len(as))
		}
	}
	team.AddCounter("reads_aligned", reads)
	team.AddCounter("alignments", alns)
	team.EndSpan()
	return out
}

// Canonical minimizer scanning for super-k-mer binning.
//
// The minimizer of a k-mer window is the smallest canonical m-mer value it
// contains, where the canonical value of an m-mer is min(fwd, revcomp)
// packed in the low 2m bits of a uint64. Because a window and its reverse
// complement contain the same set of canonical m-mer values, the minimizer
// is invariant under strand flips — both orientations of a k-mer route to
// the same owner. Consecutive windows of a read usually share their
// minimizer, so a read decomposes into a small number of maximal runs
// ("super-k-mers"): L bases carrying L−k+1 k-mers that can travel as one
// sequence-packed record instead of L−k+1 table items.
package kmer

// MaxMinimizerLen is the largest supported minimizer length (the canonical
// m-mer value must fit a uint64 with two bits per base, and one bit of
// headroom keeps min(fwd,rc) comparisons cheap).
const MaxMinimizerLen = 31

// DefaultMinimizerLen is the minimizer length used when the caller does not
// choose one. 4^9 ≈ 262k distinct minimizers spread well over any
// realistic rank count while keeping runs long (~(k−m+2)/2 windows).
const DefaultMinimizerLen = 9

// ClampMinimizerLen resolves a requested minimizer length m against k-mer
// length k: 0 (or negative) selects the default, values are capped below k
// and at MaxMinimizerLen, and forced odd (an odd m cannot equal its own
// reverse complement, which keeps canonical m-mer ties rare).
func ClampMinimizerLen(k, m int) int {
	if m <= 0 {
		m = DefaultMinimizerLen
	}
	if m >= k {
		m = k - 1
	}
	if m > MaxMinimizerLen {
		m = MaxMinimizerLen
	}
	if m%2 == 0 {
		m--
	}
	if m < 1 {
		m = 1
	}
	return m
}

// MinimizerHash scatters a canonical m-mer value into a placement hash.
// Minimizer values are short and highly structured (low-entropy high bits),
// so placement must not use them raw.
func MinimizerHash(v uint64) uint64 { return splitmix(v ^ 0x51edbead) }

// Minimizer returns the canonical minimizer value of a packed k-mer: the
// minimum over its k−m+1 m-mer windows of min(fwd, revcomp) packed in the
// low 2m bits. It is invariant under RevComp: km.Minimizer(k,m) ==
// km.RevComp(k).Minimizer(k,m). O(k); the streaming scanner below keeps
// per-window cost O(1), this form serves placement of single keys (Get /
// Mutate on the k-mer table) and property tests.
func (km Kmer) Minimizer(k, m int) uint64 {
	mask := uint64(1)<<(2*uint(m)) - 1
	rcShift := 2 * uint(m-1)
	var fwd, rc uint64
	best := ^uint64(0)
	for i := 0; i < k; i++ {
		c := km.Base(i)
		fwd = (fwd<<2 | c) & mask
		rc = rc>>2 | (3-c)<<rcShift
		if i >= m-1 {
			v := fwd
			if rc < v {
				v = rc
			}
			if v < best {
				best = v
			}
		}
	}
	return best
}

// mmerPos is one monotone-deque entry: the canonical value of the m-mer
// whose window starts at base index pos.
type mmerPos struct {
	pos int
	val uint64
}

// ScanSuperKmers segments seq into super-k-mers: for every maximal run of
// consecutive valid k-mer windows sharing one canonical minimizer value it
// calls fn(start, nwin, minimizer), where the run covers bases
// [start, start+nwin+k-1) and its nwin windows are exactly the k-mers
// starting at start..start+nwin-1. Windows containing non-ACGT characters
// are skipped, exactly as in ForEach: every window ForEach visits belongs
// to exactly one reported run. The sliding-window minimum is maintained
// with a monotone deque, so a scan is O(len(seq)).
func ScanSuperKmers(seq []byte, k, m int, fn func(start, nwin int, minimizer uint64)) {
	if len(seq) < k || k <= 0 || k > MaxK || m <= 0 || m > k || m > MaxMinimizerLen {
		return
	}
	mask := uint64(1)<<(2*uint(m)) - 1
	rcShift := 2 * uint(m-1)

	// Deque of m-mer candidates with strictly increasing values; capacity
	// k−m+1 suffices (one window's worth) but the full MaxK keeps the ring
	// arithmetic trivial. Lives on the stack.
	var ring [MaxK + 1]mmerPos
	head, tail := 0, 0 // [head, tail) in ring, modulo len(ring)
	push := func(e mmerPos) {
		for tail != head {
			prev := (tail - 1 + len(ring)) % len(ring)
			if ring[prev].val < e.val {
				break
			}
			tail = prev
		}
		ring[tail] = e
		tail = (tail + 1) % len(ring)
	}

	var fwd, rc uint64
	run := 0            // consecutive valid bases ending at i
	runStart := -1      // start of the pending super-k-mer, -1 if none
	runWins := 0        // windows accumulated in the pending run
	runMin := uint64(0) // minimizer of the pending run
	flush := func() {
		if runWins > 0 {
			fn(runStart, runWins, runMin)
		}
		runStart, runWins = -1, 0
	}
	for i := 0; i < len(seq); i++ {
		c, ok := BaseCode(seq[i])
		if !ok {
			flush()
			run = 0
			head, tail = 0, 0
			fwd, rc = 0, 0
			continue
		}
		run++
		fwd = (fwd<<2 | c) & mask
		rc = rc>>2 | (3-c)<<rcShift
		if run >= m {
			v := fwd
			if rc < v {
				v = rc
			}
			push(mmerPos{pos: i - m + 1, val: v})
		}
		if run < k {
			continue
		}
		w := i - k + 1 // current k-mer window start
		for head != tail && ring[head].pos < w {
			head = (head + 1) % len(ring)
		}
		minv := ring[head].val
		if runWins > 0 && minv == runMin {
			runWins++
			continue
		}
		flush()
		runStart, runWins, runMin = w, 1, minv
	}
	flush()
}

package kmer

import (
	"bytes"
	"math/rand"
	"testing"
)

// expectedExt is the read-level extension evidence DecodeSuperKmers must
// reproduce: the flanking base when present, ACGT, and above threshold.
func expectedExt(seq, qual []byte, p, thresh int) uint8 {
	if p < 0 || p >= len(seq) {
		return ExtAbsent
	}
	if int(qual[p])-33 < thresh {
		return ExtAbsent
	}
	c, ok := BaseCode(seq[p])
	if !ok {
		return ExtAbsent
	}
	return uint8(c)
}

func randQual(rng *rand.Rand, n int) []byte {
	q := make([]byte, n)
	for i := range q {
		q[i] = byte(33 + rng.Intn(40))
	}
	return q
}

// TestSuperKmerRoundTrip encodes every super-k-mer run of random reads
// and checks the decoder reproduces, window by window, exactly the
// k-mers and extension evidence computed directly from the read.
func TestSuperKmerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const thresh = 19
	for _, k := range []int{11, 31, 63} {
		m := ClampMinimizerLen(k, 0)
		for trial := 0; trial < 100; trial++ {
			seq := randSeqN(rng, 50+rng.Intn(150), trial%3 == 0)
			qual := randQual(rng, len(seq))

			ScanSuperKmers(seq, k, m, func(start, nwin int, _ uint64) {
				L := nwin + k - 1
				rec, ok := AppendSuperKmer(nil, seq, qual, start, L, thresh)
				if !ok {
					t.Fatalf("AppendSuperKmer failed on a run ScanSuperKmers emitted (start %d L %d)", start, L)
				}
				if got, want := len(rec), SuperKmerRecordBytes(L); got != want {
					t.Fatalf("record size %d, SuperKmerRecordBytes says %d", got, want)
				}
				i := 0
				wins, err := DecodeSuperKmers(rec, k, func(km Kmer, left, right uint8) {
					p := start + i
					want, _ := Pack(seq[p:p+k], k)
					if km != want {
						t.Fatalf("window %d: decoded %s, want %s", p, km.String(k), want.String(k))
					}
					if el := expectedExt(seq, qual, p-1, thresh); left != el {
						t.Fatalf("window %d: left ext %d, want %d", p, left, el)
					}
					if er := expectedExt(seq, qual, p+k, thresh); right != er {
						t.Fatalf("window %d: right ext %d, want %d", p, right, er)
					}
					i++
				})
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if wins != nwin || i != nwin {
					t.Fatalf("decoded %d/%d windows, run has %d", wins, i, nwin)
				}
			})
		}
	}
}

// TestSuperKmerConcatenatedRecords: a payload is a frame sequence; the
// decoder walks all of them.
func TestSuperKmerConcatenatedRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k, thresh = 31, 19
	m := ClampMinimizerLen(k, 0)
	seq := randSeqN(rng, 300, false)
	qual := randQual(rng, len(seq))

	var payload []byte
	total := 0
	ScanSuperKmers(seq, k, m, func(start, nwin int, _ uint64) {
		var ok bool
		payload, ok = AppendSuperKmer(payload, seq, qual, start, nwin+k-1, thresh)
		if !ok {
			t.Fatal("encode failed")
		}
		total += nwin
	})
	wins, err := DecodeSuperKmers(payload, k, func(Kmer, uint8, uint8) {})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if wins != total {
		t.Fatalf("decoded %d windows, want %d", wins, total)
	}
}

func TestDecodeSuperKmersRejectsMalformed(t *testing.T) {
	const k = 31
	seq := bytes.Repeat([]byte("ACGT"), 20)
	qual := bytes.Repeat([]byte("I"), len(seq))
	rec, ok := AppendSuperKmer(nil, seq, qual, 0, 40, 19)
	if !ok {
		t.Fatal("encode failed")
	}
	bad := [][]byte{
		rec[:len(rec)-1],          // truncated bases
		rec[:1],                   // truncated header
		append(rec[:0:0], 0, 0),   // L = 0 < k
		append(bytes.Clone(rec), 0xff), // trailing garbage
	}
	for i, p := range bad {
		if _, err := DecodeSuperKmers(p, k, func(Kmer, uint8, uint8) {}); err == nil {
			t.Errorf("case %d: malformed payload decoded without error", i)
		}
	}
	// A record with L < k embedded in an otherwise plausible frame.
	short, ok := AppendSuperKmer(nil, seq, qual, 0, k-1, 19)
	if !ok {
		t.Fatal("encode failed")
	}
	if _, err := DecodeSuperKmers(short, k, func(Kmer, uint8, uint8) {}); err == nil {
		t.Error("record shorter than k decoded without error")
	}
}

func FuzzSuperKmerDecode(f *testing.F) {
	seq := bytes.Repeat([]byte("ACGTTGCA"), 12)
	qual := bytes.Repeat([]byte("I"), len(seq))
	seed, _ := AppendSuperKmer(nil, seq, qual, 0, 40, 19)
	f.Add(seed, 31)
	seed2, _ := AppendSuperKmer(nil, seq, qual, 3, 21, 19)
	f.Add(append(bytes.Clone(seed2), seed2...), 21)
	f.Add([]byte{}, 31)
	f.Add([]byte{0xff, 0xff, 0x00}, 11)
	f.Fuzz(func(t *testing.T, payload []byte, k int) {
		if k < 1 || k > MaxK {
			return
		}
		wins, err := DecodeSuperKmers(payload, k, func(km Kmer, left, right uint8) {
			if left > ExtAbsent || right > ExtAbsent {
				t.Fatalf("extension code out of range: %d/%d", left, right)
			}
		})
		if err == nil && len(payload) > 0 && wins == 0 {
			t.Fatal("non-empty payload decoded to zero windows without error")
		}
		// err != nil is fine — the decoder must only never panic and
		// never report windows beyond what the payload frames.
	})
}

func BenchmarkSuperKmerEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const k, thresh = 31, 19
	m := ClampMinimizerLen(k, 0)
	seq := randSeqN(rng, 101, false)
	qual := randQual(rng, len(seq))
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		ScanSuperKmers(seq, k, m, func(start, nwin int, _ uint64) {
			buf, _ = AppendSuperKmer(buf, seq, qual, start, nwin+k-1, thresh)
		})
	}
}

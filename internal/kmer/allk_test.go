package kmer

import (
	"math/rand"
	"testing"
)

// Exhaustive sweeps over every supported k. The sibling tests in
// kmer_test.go sample k at random; these pin the properties at each k in
// 1..MaxK, including the word-boundary lengths 31, 32, 33 and 63, 64 where
// the two-word representation changes shape.

// seqsForK yields a deterministic mix of adversarial and random sequences
// of length k: homopolymers (A is the all-zero encoding, T the all-ones),
// an alternating pattern, a palindromic-leaning CG run, and random draws.
func seqsForK(rng *rand.Rand, k int) [][]byte {
	fixed := []byte{'A', 'T', 'C', 'G'}
	var out [][]byte
	for _, b := range fixed {
		s := make([]byte, k)
		for i := range s {
			s[i] = b
		}
		out = append(out, s)
	}
	alt := make([]byte, k)
	for i := range alt {
		alt[i] = "AT"[i&1]
	}
	out = append(out, alt)
	cg := make([]byte, k)
	for i := range cg {
		cg[i] = "CG"[i&1]
	}
	out = append(out, cg)
	for trial := 0; trial < 8; trial++ {
		out = append(out, randSeq(rng, k))
	}
	return out
}

// TestPackRoundTripAllK asserts Pack followed by String is the identity for
// every supported k, and that packing preserves the zero-padding invariant.
func TestPackRoundTripAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 1; k <= MaxK; k++ {
		for _, s := range seqsForK(rng, k) {
			km, ok := Pack(s, k)
			if !ok {
				t.Fatalf("k=%d: pack failed for %q", k, s)
			}
			if got := km.String(k); got != string(s) {
				t.Fatalf("k=%d: round trip %q -> %q", k, s, got)
			}
			if km.mask(k) != km {
				t.Fatalf("k=%d: padding bits set after Pack(%q): %x", k, s, km.W)
			}
		}
	}
}

// TestRevCompInvolutionAllK asserts RevComp is its own inverse and agrees
// with the byte-wise reference implementation at every supported k.
func TestRevCompInvolutionAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for k := 1; k <= MaxK; k++ {
		for _, s := range seqsForK(rng, k) {
			km, _ := Pack(s, k)
			rc := km.RevComp(k)
			if want := revCompNaive(string(s)); rc.String(k) != want {
				t.Fatalf("k=%d: revcomp(%q) = %q, want %q", k, s, rc.String(k), want)
			}
			if rc.mask(k) != rc {
				t.Fatalf("k=%d: revcomp broke the padding invariant on %q", k, s)
			}
			if back := rc.RevComp(k); back != km {
				t.Fatalf("k=%d: revcomp not an involution on %q", k, s)
			}
		}
	}
}

// TestCanonicalStrandInvarianceAllK asserts that at every supported k a
// k-mer and its reverse complement canonicalize to the same representative,
// the representative is the lexicographic minimum of the two strands, and
// the flipped flag is consistent with which strand was chosen.
func TestCanonicalStrandInvarianceAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for k := 1; k <= MaxK; k++ {
		for _, s := range seqsForK(rng, k) {
			km, _ := Pack(s, k)
			rc := km.RevComp(k)
			c1, f1 := km.Canonical(k)
			c2, f2 := rc.Canonical(k)
			if c1 != c2 {
				t.Fatalf("k=%d: canonical(%q) != canonical(rc): %q vs %q",
					k, s, c1.String(k), c2.String(k))
			}
			min := string(s)
			if r := revCompNaive(string(s)); r < min {
				min = r
			}
			if c1.String(k) != min {
				t.Fatalf("k=%d: canonical(%q) = %q, want lexicographic min %q",
					k, s, c1.String(k), min)
			}
			if f1 && c1 != rc {
				t.Fatalf("k=%d: flipped=true but canonical is not the reverse complement", k)
			}
			if !f1 && c1 != km {
				t.Fatalf("k=%d: flipped=false but canonical is not the forward strand", k)
			}
			// a palindrome (km == rc) reports flipped=false from both strands;
			// otherwise exactly one strand reports flipped
			if km == rc {
				if f1 || f2 {
					t.Fatalf("k=%d: palindrome %q reported flipped", k, s)
				}
			} else if f1 == f2 {
				t.Fatalf("k=%d: both strands of %q report flipped=%v", k, s, f1)
			}
		}
	}
}

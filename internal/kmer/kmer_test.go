package kmer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func revCompNaive(s string) string {
	var b strings.Builder
	for i := len(s) - 1; i >= 0; i-- {
		b.WriteByte(Complement(s[i]))
	}
	return b.String()
}

func TestPackUnpackRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(MaxK)
		s := randSeq(rng, k)
		km, ok := Pack(s, k)
		if !ok {
			t.Fatalf("pack failed for %q", s)
		}
		if got := km.String(k); got != string(s) {
			t.Fatalf("k=%d roundtrip: got %q want %q", k, got, s)
		}
	}
}

func TestPackRejectsInvalid(t *testing.T) {
	if _, ok := Pack([]byte("ACGNT"), 5); ok {
		t.Fatal("packed a k-mer containing N")
	}
	if _, ok := Pack([]byte("ACG"), 5); ok {
		t.Fatal("packed short sequence")
	}
	if _, ok := Pack([]byte("ACG"), 0); ok {
		t.Fatal("packed k=0")
	}
}

func TestPackMaintainsZeroPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(MaxK)
		km, _ := Pack(randSeq(rng, k), k)
		if got := km.mask(k); got != km {
			t.Fatalf("k=%d: unused bits non-zero: %x vs %x", k, km, got)
		}
	}
}

func TestLexOrderMatchesStringOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(MaxK)
		a, b := randSeq(rng, k), randSeq(rng, k)
		ka, _ := Pack(a, k)
		kb, _ := Pack(b, k)
		if ka.Less(kb) != (string(a) < string(b)) {
			t.Fatalf("k=%d order mismatch %q vs %q", k, a, b)
		}
	}
}

func TestRevCompMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(MaxK)
		s := randSeq(rng, k)
		km, _ := Pack(s, k)
		want := revCompNaive(string(s))
		if got := km.RevComp(k).String(k); got != want {
			t.Fatalf("k=%d revcomp(%q) = %q, want %q", k, s, got, want)
		}
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(w0, w1 uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		km := (Kmer{W: [2]uint64{w0, w1}}).mask(k)
		return km.RevComp(k).RevComp(k) == km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalInvariant(t *testing.T) {
	f := func(w0, w1 uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		km := (Kmer{W: [2]uint64{w0, w1}}).mask(k)
		c1, _ := km.Canonical(k)
		c2, _ := km.RevComp(k).Canonical(k)
		if c1 != c2 {
			return false
		}
		// canonical is never greater than either form
		return !km.Less(c1) || c1 == km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAreMutualInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(MaxK-1)
		s := randSeq(rng, k)
		km, _ := Pack(s, k)
		c := uint64(rng.Intn(4))
		right := km.NextRight(k, c)
		// right = s[1:] + base; going back left with s[0] must restore km.
		back := right.NextLeft(k, km.Base(0))
		if back != km {
			t.Fatalf("k=%d NextLeft(NextRight) != id for %q", k, s)
		}
		wantRight := string(s[1:]) + string(CodeBase(c))
		if right.String(k) != wantRight {
			t.Fatalf("NextRight got %q want %q", right.String(k), wantRight)
		}
		left := km.NextLeft(k, c)
		wantLeft := string(CodeBase(c)) + string(s[:k-1])
		if left.String(k) != wantLeft {
			t.Fatalf("NextLeft got %q want %q", left.String(k), wantLeft)
		}
	}
}

func TestNeighborRevCompDuality(t *testing.T) {
	// revcomp(NextRight(x, c)) == NextLeft(revcomp(x), comp(c))
	f := func(w0, w1 uint64, kRaw, cRaw uint8) bool {
		k := int(kRaw)%(MaxK-1) + 2
		c := uint64(cRaw) & 3
		km := (Kmer{W: [2]uint64{w0, w1}}).mask(k)
		a := km.NextRight(k, c).RevComp(k)
		b := km.RevComp(k).NextLeft(k, 3-c)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(300)
		k := 1 + rng.Intn(40)
		s := randSeq(rng, n)
		// sprinkle Ns
		for i := range s {
			if rng.Intn(20) == 0 {
				s[i] = 'N'
			}
		}
		var got []string
		ForEach(s, k, func(pos int, km Kmer) {
			if km.String(k) != string(s[pos:pos+k]) {
				t.Fatalf("window mismatch at %d", pos)
			}
			got = append(got, km.String(k))
		})
		var want []string
		for i := 0; i+k <= n; i++ {
			if km, ok := Pack(s[i:i+k], k); ok {
				want = append(want, km.String(k))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d n=%d: got %d windows, want %d", k, n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("window %d: %q vs %q", i, got[i], want[i])
			}
		}
	}
}

func TestHashDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const buckets = 16
	var counts [buckets]int
	n := 50000
	for i := 0; i < n; i++ {
		km, _ := Pack(randSeq(rng, 31), 31)
		counts[km.Hash(0)%buckets]++
	}
	for i, c := range counts {
		if c < n/buckets-n/64 || c > n/buckets+n/64 {
			t.Fatalf("bucket %d has %d of %d", i, c, n)
		}
	}
}

func TestHashSeedIndependence(t *testing.T) {
	km := FromString("ACGTACGTACGTACGTACGT")
	if km.Hash(1) == km.Hash(2) {
		t.Fatal("different seeds produced identical hash")
	}
}

func TestComplementAndCodes(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	for b, c := range pairs {
		if Complement(b) != c {
			t.Fatalf("complement(%c) = %c", b, Complement(b))
		}
		code, ok := BaseCode(b)
		if !ok || CodeBase(code) != b {
			t.Fatalf("code roundtrip failed for %c", b)
		}
	}
	if Complement('N') != 'N' {
		t.Fatal("complement(N) != N")
	}
	if _, ok := BaseCode('N'); ok {
		t.Fatal("BaseCode accepted N")
	}
}

func TestRevCompString(t *testing.T) {
	if got := string(RevCompString([]byte("ACGTN"))); got != "NACGT" {
		t.Fatalf("got %q", got)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, rng.Intn(100))
		return string(RevCompString(RevCompString(s))) == string(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtCodes(t *testing.T) {
	for _, e := range []byte{'A', 'C', 'G', 'T'} {
		if !IsBaseExt(e) {
			t.Fatalf("%c should be a base extension", e)
		}
	}
	for _, e := range []byte{ExtFork, ExtNone, 'N', 0} {
		if IsBaseExt(e) {
			t.Fatalf("%c should not be a base extension", e)
		}
	}
}

func TestFromStringPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromString("ACGN")
}

func BenchmarkForEach(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	seq := randSeq(rng, 10000)
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEach(seq, 31, func(pos int, km Kmer) { n++ })
	}
}

func BenchmarkCanonical(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	km, _ := Pack(randSeq(rng, 51), 51)
	for i := 0; i < b.N; i++ {
		km, _ = km.Canonical(51)
	}
}

package kmer

import (
	"math/rand"
	"testing"
)

func randSeqN(rng *rand.Rand, n int, withN bool) []byte {
	seq := make([]byte, n)
	for i := range seq {
		if withN && rng.Intn(40) == 0 {
			seq[i] = 'N'
			continue
		}
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	return seq
}

func TestClampMinimizerLen(t *testing.T) {
	cases := []struct{ k, m, want int }{
		{31, 0, DefaultMinimizerLen},
		{31, 9, 9},
		{31, 8, 7},   // forced odd, downward
		{31, 40, 29}, // capped below k, odd
		{7, 0, 5},    // default capped below k
		{5, 0, 3},
		{3, 0, 1},
		{64, 64, 31}, // never above MaxMinimizerLen
		{31, 1, 1},
	}
	for _, c := range cases {
		if got := ClampMinimizerLen(c.k, c.m); got != c.want {
			t.Errorf("ClampMinimizerLen(%d, %d) = %d, want %d", c.k, c.m, got, c.want)
		}
	}
	for k := 3; k <= MaxK; k += 2 {
		for m := 0; m <= MaxK+2; m++ {
			got := ClampMinimizerLen(k, m)
			if got < 1 || got >= k || got%2 == 0 || got > MaxMinimizerLen {
				t.Fatalf("ClampMinimizerLen(%d, %d) = %d out of contract", k, m, got)
			}
		}
	}
}

// TestMinimizerRCInvariance: the canonical minimizer is a strand-invariant
// property of the k-mer window.
func TestMinimizerRCInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{21, 31, 45, 63} {
		m := ClampMinimizerLen(k, 0)
		for trial := 0; trial < 200; trial++ {
			seq := randSeqN(rng, k, false)
			km, ok := Pack(seq, k)
			if !ok {
				t.Fatal("pack failed on ACGT-only seq")
			}
			if a, b := km.Minimizer(k, m), km.RevComp(k).Minimizer(k, m); a != b {
				t.Fatalf("k=%d m=%d seq=%s: Minimizer %x != RC Minimizer %x",
					k, m, seq, a, b)
			}
		}
	}
}

// TestScanSuperKmersCoverage: every valid k-mer window of the read is
// covered by exactly one emitted super-k-mer run, runs are maximal over
// valid stretches, and each window's run minimizer equals the window's
// own Minimizer — scanning a read once agrees with evaluating every
// window independently.
func TestScanSuperKmersCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{11, 31} {
		m := ClampMinimizerLen(k, 0)
		for trial := 0; trial < 100; trial++ {
			seq := randSeqN(rng, 40+rng.Intn(200), trial%2 == 0)

			covered := map[int]uint64{}
			prevEnd := -1
			ScanSuperKmers(seq, k, m, func(start, nwin int, minv uint64) {
				if nwin < 1 {
					t.Fatalf("empty run at %d", start)
				}
				if start <= prevEnd {
					t.Fatalf("runs out of order or overlapping: start %d after end %d", start, prevEnd)
				}
				prevEnd = start + nwin - 1
				for w := start; w < start+nwin; w++ {
					if _, dup := covered[w]; dup {
						t.Fatalf("window %d covered twice", w)
					}
					covered[w] = minv
				}
			})

			want := 0
			ForEach(seq, k, func(pos int, km Kmer) {
				want++
				minv, ok := covered[pos]
				if !ok {
					t.Fatalf("k=%d window %d not covered by any super-k-mer", k, pos)
				}
				if exp := km.Minimizer(k, m); minv != exp {
					t.Fatalf("k=%d window %d: run minimizer %x, window minimizer %x",
						k, pos, minv, exp)
				}
			})
			if len(covered) != want {
				t.Fatalf("k=%d covered %d windows, ForEach found %d", k, len(covered), want)
			}
		}
	}
}

// TestScanSuperKmersRunsMaximal: adjacent runs have distinct minimizers
// (otherwise they should have been one run).
func TestScanSuperKmersRunsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k, m := 31, ClampMinimizerLen(31, 0)
	for trial := 0; trial < 100; trial++ {
		seq := randSeqN(rng, 150, false)
		lastEnd, lastMin := -2, uint64(0)
		ScanSuperKmers(seq, k, m, func(start, nwin int, minv uint64) {
			if start == lastEnd && minv == lastMin {
				t.Fatalf("adjacent runs at %d share minimizer %x", start, minv)
			}
			lastEnd, lastMin = start+nwin, minv
		})
	}
}

func BenchmarkMinimizerScan(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	seq := randSeqN(rng, 101, false)
	k, m := 31, DefaultMinimizerLen
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		ScanSuperKmers(seq, k, m, func(start, nwin int, minv uint64) {
			sink += minv
		})
	}
	_ = sink
}

// Super-k-mer wire codec.
//
// One record carries a run of L bases covering L−k+1 overlapping k-mers
// plus the extension evidence k-mer analysis needs from the enclosing
// read: the bases immediately flanking the run and a per-position quality
// bit. The frame is deterministic little-endian, decoded by a sticky-error
// reader in the style of internal/ckpt (which this package cannot import
// without a cycle):
//
//	u16  L      run length in bases (k ≤ L ≤ 65535)
//	u8   flags  bit0 hasLead, bit1 hasTrail,
//	            bits2-3 lead base code, bits4-5 trail base code
//	[..] mask   ceil((L+2)/8) bytes, LSB-first: bit 0 = lead neighbor,
//	            bits 1..L = the run's bases, bit L+1 = trail neighbor;
//	            a set bit means "extension-quality position"
//	[..] bases  ceil(L/4) bytes, 2-bit codes, MSB-first within each byte
//
// A 13-window run (L = k+12) costs ~3 + (L+2+7)/8 + (L+3)/4 bytes —
// roughly 1.6 bytes per k-mer occurrence versus the ~26-byte per-item
// store record, which is where the stage-1 communication drop comes from.
package kmer

import (
	"errors"
	"fmt"
)

// ExtAbsent is the left/right neighbor code DecodeSuperKmers reports when a
// window has no usable extension evidence on that side (run boundary with
// no flanking base, or a flanking base below the quality threshold).
// Concrete evidence is a 2-bit base code 0..3.
const ExtAbsent uint8 = 4

// MaxSuperKmerBases is the longest run one record can frame.
const MaxSuperKmerBases = 1<<16 - 1

// ErrBadSuperKmer reports a malformed super-k-mer payload.
var ErrBadSuperKmer = errors.New("kmer: malformed super-k-mer payload")

const (
	skFlagLead  = 1 << 0
	skFlagTrail = 1 << 1
)

// SuperKmerRecordBytes returns the encoded size of a record covering L
// bases.
func SuperKmerRecordBytes(L int) int { return 3 + (L+2+7)/8 + (L+3)/4 }

// AppendSuperKmer appends one encoded record covering seq[start:start+L] to
// dst and returns the extended slice. Flanking bases at start−1 and
// start+L are captured as lead/trail evidence when present and ACGT. The
// quality mask records, for the lead, each run base, and the trail,
// whether qual at that position clears qualThresh (Phred+33, same
// convention as k-mer analysis). ok is false — and dst is returned
// unchanged — if the window is out of range, longer than
// MaxSuperKmerBases, or contains a non-ACGT base.
func AppendSuperKmer(dst []byte, seq, qual []byte, start, L, qualThresh int) (out []byte, ok bool) {
	if L < 1 || L > MaxSuperKmerBases || start < 0 || start+L > len(seq) {
		return dst, false
	}
	qualAt := func(p int) bool {
		return p < len(qual) && int(qual[p])-33 >= qualThresh
	}
	flags := byte(0)
	if p := start - 1; p >= 0 {
		if c, valid := BaseCode(seq[p]); valid {
			flags |= skFlagLead | byte(c)<<2
		}
	}
	if p := start + L; p < len(seq) {
		if c, valid := BaseCode(seq[p]); valid {
			flags |= skFlagTrail | byte(c)<<4
		}
	}
	base := len(dst)
	dst = append(dst, byte(L), byte(L>>8), flags)

	maskBytes := (L + 2 + 7) / 8
	maskOff := len(dst)
	for i := 0; i < maskBytes; i++ {
		dst = append(dst, 0)
	}
	setBit := func(j int, on bool) {
		if on {
			dst[maskOff+j>>3] |= 1 << uint(j&7)
		}
	}
	setBit(0, start > 0 && qualAt(start-1))
	for j := 0; j < L; j++ {
		setBit(j+1, qualAt(start+j))
	}
	setBit(L+1, qualAt(start+L))

	var cur byte
	for j := 0; j < L; j++ {
		c, valid := BaseCode(seq[start+j])
		if !valid {
			return dst[:base], false
		}
		cur |= byte(c) << uint(6-2*(j&3))
		if j&3 == 3 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if L&3 != 0 {
		dst = append(dst, cur)
	}
	return dst, true
}

// skReader is a sticky bounds-checked cursor over a super-k-mer payload.
type skReader struct {
	b   []byte
	off int
	bad bool
}

func (r *skReader) fail() { r.bad = true }

func (r *skReader) u8() byte {
	if r.bad || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *skReader) u16() int {
	lo, hi := r.u8(), r.u8()
	return int(lo) | int(hi)<<8
}

func (r *skReader) bytes(n int) []byte {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// DecodeSuperKmers walks every record in payload (records are
// concatenated back to back) and calls fn once per k-mer window, in run
// order, with the window's packed k-mer as read and its left/right
// extension evidence (a base code 0..3, or ExtAbsent). The k-mer is NOT
// canonicalized — callers canonicalize and, if flipped, swap and
// complement the evidence, exactly as for an occurrence scanned from a
// read. Returns the number of windows delivered; a framing error (bad
// length, truncated record, trailing garbage) aborts the walk with
// ErrBadSuperKmer.
func DecodeSuperKmers(payload []byte, k int, fn func(km Kmer, left, right uint8)) (windows int, err error) {
	if k <= 0 || k > MaxK {
		return 0, fmt.Errorf("%w: k=%d", ErrBadSuperKmer, k)
	}
	r := &skReader{b: payload}
	for r.off < len(r.b) {
		L := r.u16()
		flags := r.u8()
		if r.bad || L < k {
			return windows, fmt.Errorf("%w: run length %d below k=%d", ErrBadSuperKmer, L, k)
		}
		mask := r.bytes((L + 2 + 7) / 8)
		bases := r.bytes((L + 3) / 4)
		if r.bad {
			return windows, fmt.Errorf("%w: truncated record (L=%d)", ErrBadSuperKmer, L)
		}
		baseAt := func(j int) uint64 {
			return uint64(bases[j>>2]) >> uint(6-2*(j&3)) & 3
		}
		bit := func(j int) bool {
			return mask[j>>3]>>uint(j&7)&1 == 1
		}
		var km Kmer
		for j := 0; j < k; j++ {
			km.setBase(j, baseAt(j))
		}
		nwin := L - k + 1
		for i := 0; i < nwin; i++ {
			if i > 0 {
				km = km.NextRight(k, baseAt(i+k-1))
			}
			left, right := ExtAbsent, ExtAbsent
			if i == 0 {
				if flags&skFlagLead != 0 && bit(0) {
					left = flags >> 2 & 3
				}
			} else if bit(i) {
				left = uint8(baseAt(i - 1))
			}
			if i == nwin-1 {
				if flags&skFlagTrail != 0 && bit(L+1) {
					right = flags >> 4 & 3
				}
			} else if bit(i + k + 1) {
				right = uint8(baseAt(i + k))
			}
			fn(km, left, right)
		}
		windows += nwin
	}
	return windows, nil
}

// Package kmer provides the packed k-mer type used throughout the
// assembler: up to 64 bases in two machine words, with the canonical-form,
// reverse-complement and neighbor operations the de Bruijn graph needs,
// plus the extension codes Meraculous attaches to each k-mer.
//
// Encoding: A=0, C=1, G=2, T=3 (lexicographic), two bits per base. Base 0
// (the 5' end) occupies the most significant bit pair of word 0, so that
// comparing words numerically compares k-mers lexicographically. Bases
// 32..63 live in word 1 with the same convention. Unused low-order bits
// are zero, which Pack and the neighbor operations maintain as an
// invariant.
package kmer

import (
	"fmt"
	"math/bits"
)

// MaxK is the largest supported k-mer length.
const MaxK = 64

// Kmer is a packed DNA string of externally-known length k ≤ 64.
// The zero value is the all-'A' k-mer.
type Kmer struct {
	W [2]uint64
}

// BaseCode maps a nucleotide letter to its 2-bit code; ok is false for
// non-ACGT characters (e.g. 'N'). Lower case is accepted.
func BaseCode(b byte) (code uint64, ok bool) {
	switch b {
	case 'A', 'a':
		return 0, true
	case 'C', 'c':
		return 1, true
	case 'G', 'g':
		return 2, true
	case 'T', 't':
		return 3, true
	}
	return 0, false
}

// CodeBase is the inverse of BaseCode for valid codes 0..3.
func CodeBase(c uint64) byte { return "ACGT"[c&3] }

// Complement returns the complementary base letter.
func Complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	}
	return 'N'
}

// Pack converts seq[0:k] into a Kmer. ok is false if the window contains a
// non-ACGT character.
func Pack(seq []byte, k int) (km Kmer, ok bool) {
	if k <= 0 || k > MaxK || len(seq) < k {
		return Kmer{}, false
	}
	for i := 0; i < k; i++ {
		c, valid := BaseCode(seq[i])
		if !valid {
			return Kmer{}, false
		}
		km.setBase(i, c)
	}
	return km, true
}

// FromString packs a string; it panics on invalid input (intended for
// tests and literals).
func FromString(s string) Kmer {
	km, ok := Pack([]byte(s), len(s))
	if !ok {
		panic(fmt.Sprintf("kmer: invalid k-mer literal %q", s))
	}
	return km
}

func (km *Kmer) setBase(i int, c uint64) {
	w := i >> 5
	sh := uint(62 - 2*(i&31))
	km.W[w] = km.W[w]&^(3<<sh) | c<<sh
}

// Base returns the 2-bit code of base i.
func (km Kmer) Base(i int) uint64 {
	w := i >> 5
	sh := uint(62 - 2*(i&31))
	return km.W[w] >> sh & 3
}

// Append returns the string s with the k bases of km appended.
func (km Kmer) Append(s []byte, k int) []byte {
	for i := 0; i < k; i++ {
		s = append(s, CodeBase(km.Base(i)))
	}
	return s
}

// String renders the k-mer as ACGT text.
func (km Kmer) String(k int) string {
	return string(km.Append(make([]byte, 0, k), k))
}

// grouprev reverses the order of the 32 two-bit groups in v.
func grouprev(v uint64) uint64 {
	v = (v&0x3333333333333333)<<2 | v>>2&0x3333333333333333
	v = (v&0x0f0f0f0f0f0f0f0f)<<4 | v>>4&0x0f0f0f0f0f0f0f0f
	return bits.ReverseBytes64(v)
}

// RevComp returns the reverse complement of a k-mer of length k.
func (km Kmer) RevComp(k int) Kmer {
	// Reverse-complement as if the k-mer were 64 bases long, then shift
	// the result left so the k meaningful bases re-align at position 0.
	r0 := grouprev(^km.W[1])
	r1 := grouprev(^km.W[0])
	return Kmer{W: [2]uint64{r0, r1}}.shiftLeftBases(64 - k).mask(k)
}

// shiftLeftBases shifts the 128-bit base string left by n bases (toward
// position 0), discarding the leading bases.
func (km Kmer) shiftLeftBases(n int) Kmer {
	b := uint(2 * n)
	switch {
	case b == 0:
		return km
	case b < 64:
		return Kmer{W: [2]uint64{km.W[0]<<b | km.W[1]>>(64-b), km.W[1] << b}}
	case b == 64:
		return Kmer{W: [2]uint64{km.W[1], 0}}
	case b < 128:
		return Kmer{W: [2]uint64{km.W[1] << (b - 64), 0}}
	default:
		return Kmer{}
	}
}

// shiftRightBases shifts the 128-bit base string right by n bases.
func (km Kmer) shiftRightBases(n int) Kmer {
	b := uint(2 * n)
	switch {
	case b == 0:
		return km
	case b < 64:
		return Kmer{W: [2]uint64{km.W[0] >> b, km.W[1]>>b | km.W[0]<<(64-b)}}
	case b == 64:
		return Kmer{W: [2]uint64{0, km.W[0]}}
	case b < 128:
		return Kmer{W: [2]uint64{0, km.W[0] >> (b - 64)}}
	default:
		return Kmer{}
	}
}

// mask zeroes every bit beyond the k-th base, restoring the invariant.
func (km Kmer) mask(k int) Kmer {
	if k >= 64 {
		return km
	}
	if k > 32 {
		keep := uint(2 * (k - 32))
		km.W[1] &= ^uint64(0) << (64 - keep)
		return km
	}
	if k == 32 {
		km.W[1] = 0
		return km
	}
	km.W[0] &= ^uint64(0) << (64 - uint(2*k))
	km.W[1] = 0
	return km
}

// NextRight returns the neighbor reached by shifting in base code c on the
// right (3') end: km[1:k] + c.
func (km Kmer) NextRight(k int, c uint64) Kmer {
	n := km.shiftLeftBases(1).mask(k)
	n.setBase(k-1, c&3)
	return n
}

// NextLeft returns the neighbor reached by shifting in base code c on the
// left (5') end: c + km[0:k-1].
func (km Kmer) NextLeft(k int, c uint64) Kmer {
	n := km.shiftRightBases(1).mask(k)
	n.setBase(0, c&3)
	return n
}

// Less reports lexicographic order.
func (km Kmer) Less(o Kmer) bool {
	if km.W[0] != o.W[0] {
		return km.W[0] < o.W[0]
	}
	return km.W[1] < o.W[1]
}

// Canonical returns the lexicographically smaller of km and its reverse
// complement, plus whether the result is the reverse complement (flipped).
func (km Kmer) Canonical(k int) (canon Kmer, flipped bool) {
	rc := km.RevComp(k)
	if rc.Less(km) {
		return rc, true
	}
	return km, false
}

// Hash mixes the k-mer into a 64-bit hash with the given seed.
func (km Kmer) Hash(seed uint64) uint64 {
	h := splitmix(km.W[0] ^ seed)
	return splitmix(h ^ bits.RotateLeft64(km.W[1], 31))
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ForEach calls fn for every valid k-mer window of seq, with its start
// position. Windows containing non-ACGT characters are skipped. The packed
// value is maintained incrementally, so a scan is O(len(seq)).
func ForEach(seq []byte, k int, fn func(pos int, km Kmer)) {
	if len(seq) < k || k <= 0 || k > MaxK {
		return
	}
	var km Kmer
	run := 0 // count of consecutive valid bases ending at i
	for i := 0; i < len(seq); i++ {
		c, ok := BaseCode(seq[i])
		if !ok {
			run = 0
			km = Kmer{}
			continue
		}
		km = km.shiftLeftBases(1).mask(k)
		km.setBase(k-1, c)
		run++
		if run >= k {
			fn(i-k+1, km)
		}
	}
}

// --- extension codes -------------------------------------------------

// Ext codes describe what lies beyond one end of a k-mer (or contig) in
// the read data set, following Meraculous:
//
//	'A','C','G','T' — a unique high-quality extension base
//	ExtFork         — two or more high-quality candidate bases (branch)
//	ExtNone         — no high-quality extension (dead end)
const (
	ExtFork byte = 'F'
	ExtNone byte = 'X'
)

// IsBaseExt reports whether e is a concrete base extension.
func IsBaseExt(e byte) bool {
	return e == 'A' || e == 'C' || e == 'G' || e == 'T'
}

// RevCompString reverse-complements an ASCII DNA sequence (N maps to N).
func RevCompString(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[len(s)-1-i] = Complement(b)
	}
	return out
}

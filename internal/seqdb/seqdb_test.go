package seqdb

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"hipmer/internal/fastq"
)

func randRecords(rng *rand.Rand, n int) []fastq.Record {
	recs := make([]fastq.Record, n)
	for i := range recs {
		idLen := 1 + rng.Intn(30)
		seqLen := 1 + rng.Intn(250)
		id := make([]byte, idLen)
		for j := range id {
			id[j] = byte('a' + rng.Intn(26))
		}
		seq := make([]byte, seqLen)
		qual := make([]byte, seqLen)
		for j := range seq {
			seq[j] = "ACGTN"[rng.Intn(5)]
			qual[j] = byte(33 + rng.Intn(42))
		}
		recs[i] = fastq.Record{ID: id, Seq: seq, Qual: qual}
	}
	return recs
}

func recordsEqual(a, b []fastq.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].ID, b[i].ID) || !bytes.Equal(a[i].Seq, b[i].Seq) ||
			!bytes.Equal(a[i].Qual, b[i].Qual) {
			return false
		}
	}
	return true
}

func TestRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, BlockRecords - 1, BlockRecords, BlockRecords + 1, 3000} {
		recs := randRecords(rng, n)
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatal(err)
		}
		f, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var got []fastq.Record
		for b := 0; b < f.Blocks(); b++ {
			rs, err := f.ReadBlock(b)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rs...)
		}
		if !recordsEqual(recs, got) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
	}
}

func TestNsPreserved(t *testing.T) {
	recs := []fastq.Record{{
		ID:   []byte("r1"),
		Seq:  []byte("NACGTNNACGTN"),
		Qual: []byte("IIIIIIIIIIII"),
	}}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Seq) != "NACGTNNACGTN" {
		t.Fatalf("Ns lost: %s", got[0].Seq)
	}
}

func TestParallelPartsCoverExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := randRecords(rng, 5000)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 7, 16, 100} {
		var all []fastq.Record
		var totalBytes int64
		for i := 0; i < parts; i++ {
			rs, nb, err := f.ReadPart(parts, i)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rs...)
			totalBytes += nb
		}
		if !recordsEqual(recs, all) {
			t.Fatalf("parts=%d: split lost or duplicated records", parts)
		}
		if totalBytes <= 0 {
			t.Fatalf("parts=%d: no bytes accounted", parts)
		}
	}
}

func TestCompressionBeatsFastq(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := randRecords(rng, 2000)
	var sdb bytes.Buffer
	if err := Write(&sdb, recs); err != nil {
		t.Fatal(err)
	}
	fq := fastq.Format(recs)
	if sdb.Len() >= len(fq) {
		t.Fatalf("seqdb (%d bytes) not smaller than FASTQ (%d bytes)", sdb.Len(), len(fq))
	}
}

func TestCorruptInputsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	recs := randRecords(rng, 10)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Parse(data[:4]); err == nil {
		t.Fatal("accepted truncated file")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Parse(bad); err == nil {
		t.Fatal("accepted bad magic")
	}
	// corrupt index offset
	bad2 := append([]byte(nil), data...)
	for i := len(bad2) - 8; i < len(bad2); i++ {
		bad2[i] = 0xff
	}
	if _, err := Parse(bad2); err == nil {
		t.Fatal("accepted corrupt index offset")
	}
}

func TestFileRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := randRecords(rng, 100)
	path := filepath.Join(t.TempDir(), "reads.seqdb")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := f.ReadPart(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(recs, got) {
		t.Fatal("file roundtrip mismatch")
	}
}

func TestRoundtripProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng, int(nRaw)%50)
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		f, err := Parse(buf.Bytes())
		if err != nil {
			return false
		}
		got, _, err := f.ReadPart(1, 0)
		if err != nil {
			return false
		}
		return recordsEqual(recs, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeqDBRead(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	recs := randRecords(rng, 10000)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Parse(buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := f.ReadPart(1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastqVsSeqDB compares parse throughput of the two containers,
// the §3.3 comparison ("close to the I/O bandwidth achieved by reading
// SeqDB, up to compression factor differences").
func BenchmarkFastqVsSeqDB(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	recs := randRecords(rng, 10000)
	fq := fastq.Format(recs)
	var sdb bytes.Buffer
	if err := Write(&sdb, recs); err != nil {
		b.Fatal(err)
	}
	b.Run("fastq", func(b *testing.B) {
		b.SetBytes(int64(len(fq)))
		for i := 0; i < b.N; i++ {
			if _, err := fastq.ParseAll(fq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seqdb", func(b *testing.B) {
		b.SetBytes(int64(sdb.Len()))
		for i := 0; i < b.N; i++ {
			f, err := Parse(sdb.Bytes())
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := f.ReadPart(1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package seqdb implements a compact binary container for sequencing
// reads, standing in for the SeqDB/HDF5 format the paper's earlier work
// used for fast parallel I/O (§3.3). Bases are 2-bit packed with an
// exception list for Ns, qualities are stored raw, and a block index at
// the end of the file lets every rank seek directly to its share — the
// property that made SeqDB fast to read in parallel and that the paper's
// block FASTQ reader was built to match "up to compression factor
// differences".
//
// Layout:
//
//	[8]  magic "HIPSEQDB"
//	[*]  blocks: each block holds up to BlockRecords records
//	[*]  index: varint block count, then varint block offsets
//	[8]  index offset (big-endian uint64)
package seqdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hipmer/internal/fastq"
	"hipmer/internal/kmer"
)

var magic = []byte("HIPSEQDB")

// BlockRecords is the number of reads per addressable block.
const BlockRecords = 1024

// Write encodes records into the SeqDB container format.
func Write(w io.Writer, recs []fastq.Record) error {
	var body bytes.Buffer
	body.Write(magic)
	var offsets []uint64
	for lo := 0; lo < len(recs); lo += BlockRecords {
		hi := lo + BlockRecords
		if hi > len(recs) {
			hi = len(recs)
		}
		offsets = append(offsets, uint64(body.Len()))
		writeBlock(&body, recs[lo:hi])
	}
	if len(recs) == 0 {
		offsets = nil
	}
	indexOff := uint64(body.Len())
	writeUvarint(&body, uint64(len(offsets)))
	for _, o := range offsets {
		writeUvarint(&body, o)
	}
	var tail [8]byte
	binary.BigEndian.PutUint64(tail[:], indexOff)
	body.Write(tail[:])
	_, err := w.Write(body.Bytes())
	return err
}

// WriteFile writes records to path.
func WriteFile(path string, recs []fastq.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeBlock(buf *bytes.Buffer, recs []fastq.Record) {
	writeUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		writeUvarint(buf, uint64(len(r.ID)))
		buf.Write(r.ID)
		writeUvarint(buf, uint64(len(r.Seq)))
		// 2-bit packed bases; N positions recorded as exceptions
		var exceptions []int
		packed := make([]byte, (len(r.Seq)+3)/4)
		for i, b := range r.Seq {
			code, ok := kmer.BaseCode(b)
			if !ok {
				exceptions = append(exceptions, i)
				code = 0
			}
			packed[i/4] |= byte(code) << uint(2*(i%4))
		}
		buf.Write(packed)
		writeUvarint(buf, uint64(len(exceptions)))
		prev := 0
		for _, e := range exceptions {
			writeUvarint(buf, uint64(e-prev))
			prev = e
		}
		buf.Write(r.Qual)
	}
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

// File is an opened SeqDB container supporting parallel block reads.
type File struct {
	data    []byte
	offsets []uint64
}

// Open reads and indexes a SeqDB file. The whole file is mapped into
// memory (datasets here are laptop-scale); per-block decoding is cheap
// and random-access.
func Open(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse indexes SeqDB-format bytes.
func Parse(data []byte) (*File, error) {
	if len(data) < len(magic)+8 || !bytes.Equal(data[:len(magic)], magic) {
		return nil, errors.New("seqdb: bad magic")
	}
	indexOff := binary.BigEndian.Uint64(data[len(data)-8:])
	if indexOff > uint64(len(data)-8) {
		return nil, errors.New("seqdb: corrupt index offset")
	}
	idx := data[indexOff : len(data)-8]
	nBlocks, n := binary.Uvarint(idx)
	if n <= 0 {
		return nil, errors.New("seqdb: corrupt index")
	}
	idx = idx[n:]
	offsets := make([]uint64, nBlocks)
	for i := range offsets {
		v, n := binary.Uvarint(idx)
		if n <= 0 {
			return nil, errors.New("seqdb: corrupt index entry")
		}
		offsets[i] = v
		idx = idx[n:]
	}
	return &File{data: data, offsets: offsets}, nil
}

// Blocks returns the number of addressable blocks.
func (f *File) Blocks() int { return len(f.offsets) }

// BlockBytes returns the encoded size of block i (for I/O cost charging).
func (f *File) BlockBytes(i int) int64 {
	end := uint64(len(f.data) - 8)
	if i+1 < len(f.offsets) {
		end = f.offsets[i+1]
	}
	return int64(end - f.offsets[i])
}

// ReadBlock decodes block i.
func (f *File) ReadBlock(i int) ([]fastq.Record, error) {
	if i < 0 || i >= len(f.offsets) {
		return nil, fmt.Errorf("seqdb: block %d out of range", i)
	}
	buf := f.data[f.offsets[i]:]
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, errors.New("seqdb: corrupt block header")
	}
	buf = buf[n:]
	recs := make([]fastq.Record, 0, count)
	for r := uint64(0); r < count; r++ {
		rec, rest, err := decodeRecord(buf)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		buf = rest
	}
	return recs, nil
}

func decodeRecord(buf []byte) (fastq.Record, []byte, error) {
	idLen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)) < uint64(n)+idLen {
		return fastq.Record{}, nil, errors.New("seqdb: corrupt record id")
	}
	buf = buf[n:]
	id := append([]byte(nil), buf[:idLen]...)
	buf = buf[idLen:]

	seqLen, n := binary.Uvarint(buf)
	if n <= 0 {
		return fastq.Record{}, nil, errors.New("seqdb: corrupt sequence length")
	}
	buf = buf[n:]
	packedLen := (int(seqLen) + 3) / 4
	if len(buf) < packedLen {
		return fastq.Record{}, nil, errors.New("seqdb: truncated sequence")
	}
	seq := make([]byte, seqLen)
	for i := range seq {
		code := buf[i/4] >> uint(2*(i%4)) & 3
		seq[i] = kmer.CodeBase(uint64(code))
	}
	buf = buf[packedLen:]

	nExc, n := binary.Uvarint(buf)
	if n <= 0 {
		return fastq.Record{}, nil, errors.New("seqdb: corrupt exception count")
	}
	buf = buf[n:]
	pos := 0
	for e := uint64(0); e < nExc; e++ {
		d, n := binary.Uvarint(buf)
		if n <= 0 {
			return fastq.Record{}, nil, errors.New("seqdb: corrupt exception")
		}
		buf = buf[n:]
		pos += int(d)
		if pos >= int(seqLen) {
			return fastq.Record{}, nil, errors.New("seqdb: exception out of range")
		}
		seq[pos] = 'N'
	}

	if uint64(len(buf)) < seqLen {
		return fastq.Record{}, nil, errors.New("seqdb: truncated quality")
	}
	qual := append([]byte(nil), buf[:seqLen]...)
	return fastq.Record{ID: id, Seq: seq, Qual: qual}, buf[seqLen:], nil
}

// PartBlocks returns the half-open block range assigned to part i of
// parts, for parallel reading.
func (f *File) PartBlocks(parts, i int) (lo, hi int) {
	n := len(f.offsets)
	q, r := n/parts, n%parts
	lo = i*q + minInt(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// ReadPart decodes the blocks of part i of parts and reports the encoded
// bytes consumed (for I/O cost charging).
func (f *File) ReadPart(parts, i int) ([]fastq.Record, int64, error) {
	lo, hi := f.PartBlocks(parts, i)
	var recs []fastq.Record
	var bytes int64
	for b := lo; b < hi; b++ {
		rs, err := f.ReadBlock(b)
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, rs...)
		bytes += f.BlockBytes(b)
	}
	return recs, bytes, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package stats

import (
	"encoding/json"
	"math"
	"testing"

	"hipmer/internal/xrt"
)

func TestQuantileExactFixtures(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"median-odd", []float64{3, 1, 2}, 0.5, 2},
		{"median-even", []float64{4, 1, 3, 2}, 0.5, 2.5},
		{"p0", []float64{5, 1, 9}, 0, 1},
		{"p100", []float64{5, 1, 9}, 1, 9},
		{"p25-interp", []float64{0, 10, 20, 30}, 0.25, 7.5},
		{"p95-five", []float64{10, 20, 30, 40, 50}, 0.95, 48},
		{"single", []float64{7}, 0.95, 7},
		{"empty", nil, 0.5, 0},
	}
	for _, c := range cases {
		if got := Quantile(c.xs, c.q); got != c.want {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", c.name, c.xs, c.q, got, c.want)
		}
	}
}

func TestDistHandComputed(t *testing.T) {
	// 4 "ranks": one does double work. mean = (10+10+10+20)/4 = 12.5,
	// max/mean = 1.6. Sorted ascending: 10,10,10,20;
	// Gini = 2*(1*10+2*10+3*10+4*20)/(4*50) - 5/4 = 280/200 - 1.25 = 0.15.
	d := NewDist([]float64{10, 10, 20, 10})
	if d.N != 4 || d.Mean != 12.5 || d.Max != 20 {
		t.Fatalf("basic fields wrong: %+v", d)
	}
	if d.MaxOverMean != 1.6 {
		t.Errorf("MaxOverMean = %v, want 1.6", d.MaxOverMean)
	}
	if math.Abs(d.Gini-0.15) > 1e-12 {
		t.Errorf("Gini = %v, want 0.15", d.Gini)
	}
	if d.P50 != 10 {
		t.Errorf("P50 = %v, want 10", d.P50)
	}
	// p95 over sorted {10,10,10,20}: pos = 0.95*3 = 2.85 → 10*(0.15)+20*0.85 = 18.5
	if math.Abs(d.P95-18.5) > 1e-12 {
		t.Errorf("P95 = %v, want 18.5", d.P95)
	}
}

func TestDistExtremeConcentration(t *testing.T) {
	// All mass on one of 10 ranks: max/mean = 10, Gini = (n-1)/n = 0.9.
	xs := make([]float64, 10)
	xs[3] = 100
	d := NewDist(xs)
	if d.MaxOverMean != 10 {
		t.Errorf("MaxOverMean = %v, want 10", d.MaxOverMean)
	}
	if math.Abs(d.Gini-0.9) > 1e-12 {
		t.Errorf("Gini = %v, want 0.9", d.Gini)
	}
}

// TestDistImbalanceProperty: MaxOverMean ≥ 1 for every non-empty
// non-negative sample, and equals 1 iff all values are equal.
func TestDistImbalanceProperty(t *testing.T) {
	rng := xrt.NewPrng(42)
	for trial := 0; trial < 500; trial++ {
		n := 1 + int(rng.Uint64()%64)
		xs := make([]float64, n)
		allEqual := true
		for i := range xs {
			xs[i] = float64(rng.Uint64()%1000) / 8
			if xs[i] != xs[0] {
				allEqual = false
			}
		}
		d := NewDist(xs)
		if d.MaxOverMean < 1 {
			t.Fatalf("trial %d: MaxOverMean %v < 1 for %v", trial, d.MaxOverMean, xs)
		}
		if allEqual && d.MaxOverMean != 1 {
			t.Fatalf("trial %d: equal sample %v gave MaxOverMean %v != 1", trial, xs, d.MaxOverMean)
		}
		if !allEqual && d.MaxOverMean == 1 {
			t.Fatalf("trial %d: unequal sample %v gave MaxOverMean exactly 1", trial, xs)
		}
		if d.Gini < 0 || d.Gini >= 1 {
			t.Fatalf("trial %d: Gini %v out of [0,1) for %v", trial, d.Gini, xs)
		}
		if allEqual && xs[0] > 0 && d.Gini != 0 {
			t.Fatalf("trial %d: equal sample %v gave Gini %v != 0", trial, xs, d.Gini)
		}
	}
}

// TestDistNaNSafety: empty, single-rank, and all-zero inputs must
// produce finite, JSON-marshallable values — an empty-stage span
// (identical snapshots subtracted) hits exactly these shapes.
func TestDistNaNSafety(t *testing.T) {
	cases := map[string][]float64{
		"empty":       nil,
		"single":      {13},
		"single-zero": {0},
		"all-zero":    {0, 0, 0, 0},
	}
	for name, xs := range cases {
		d := NewDist(xs)
		for field, v := range map[string]float64{
			"Mean": d.Mean, "P50": d.P50, "P95": d.P95, "Max": d.Max,
			"MaxOverMean": d.MaxOverMean, "Gini": d.Gini,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v, want finite", name, field, v)
			}
		}
		if _, err := json.Marshal(d); err != nil {
			t.Errorf("%s: json.Marshal failed: %v", name, err)
		}
	}
	if d := NewDist(nil); d.MaxOverMean != 0 {
		t.Errorf("empty sample: MaxOverMean = %v, want 0", d.MaxOverMean)
	}
	for _, xs := range [][]float64{{5}, {0}, {0, 0}} {
		if d := NewDist(xs); d.MaxOverMean != 1 {
			t.Errorf("equal sample %v: MaxOverMean = %v, want 1", xs, d.MaxOverMean)
		}
	}
}

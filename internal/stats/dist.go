// Load-imbalance statistics over per-rank samples. The paper's wheat
// story (§3.1, Figure 6) is a load-imbalance story: a handful of
// heavy-hitter k-mers concentrate receiver-side work on a few ranks, and
// the max/mean ratio of per-rank busy time is the quantity the
// Misra–Gries optimization flattens. These helpers turn a per-rank
// sample (work ns, lookup counts, bytes) into the summary the metrics
// reports carry: quantiles, the max/mean imbalance factor, and a
// Gini-style concentration coefficient.
package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between adjacent order statistics, the common "type 7"
// estimator. It copies xs before sorting. Empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Dist summarizes a per-rank sample for load-imbalance reporting. All
// fields are 0 for an empty sample; every derived ratio is defined to be
// finite (never NaN/Inf) so the struct can always be JSON-marshalled.
type Dist struct {
	// N is the sample size (the rank count).
	N int `json:"n"`
	// Mean, P50, P95, Max summarize the sample.
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
	// MaxOverMean is the classic load-imbalance factor: ≥ 1, and exactly
	// 1 iff all samples are equal (including the all-zero sample). 0 only
	// for an empty sample.
	MaxOverMean float64 `json:"max_over_mean"`
	// Gini is the Gini concentration coefficient in [0, 1): 0 for a
	// perfectly balanced sample, approaching 1 as the mass concentrates
	// on a single rank. Defined for non-negative samples; 0 when the
	// sample sums to 0 or is empty.
	Gini float64 `json:"gini"`
}

// NewDist computes the load-imbalance summary of a non-negative sample
// (one value per rank, in rank order — the order does not affect the
// result beyond float-summation associativity, which is fixed by using
// the given order).
func NewDist(xs []float64) Dist {
	var d Dist
	d.N = len(xs)
	if d.N == 0 {
		return d
	}
	min := xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x > d.Max {
			d.Max = x
		}
		if x < min {
			min = x
		}
	}
	d.Mean = sum / float64(d.N)
	d.P50 = Quantile(xs, 0.50)
	d.P95 = Quantile(xs, 0.95)
	switch {
	case d.Max == min:
		// All samples equal (covers the all-zero case): perfectly
		// balanced by definition, without trusting float division.
		d.MaxOverMean = 1
	case d.Mean <= 0:
		// Degenerate (possible only with negative inputs); keep finite.
		d.MaxOverMean = 0
	default:
		d.MaxOverMean = d.Max / d.Mean
	}
	d.Gini = gini(xs, sum)
	return d
}

// gini computes the Gini coefficient via the sorted-sample identity
// G = (2·Σ i·x(i)) / (n·Σx) − (n+1)/n with 1-based i over ascending x.
func gini(xs []float64, sum float64) float64 {
	n := len(xs)
	if n == 0 || sum <= 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var weighted float64
	for i, x := range s {
		weighted += float64(i+1) * x
	}
	g := 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
	if g < 0 {
		return 0
	}
	return g
}

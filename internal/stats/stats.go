// Package stats computes assembly quality statistics (N50/NG50, length
// distributions) and validates assemblies against the reference they were
// simulated from — the accuracy check the paper delegates to the
// Assemblathon studies.
package stats

import (
	"fmt"
	"sort"

	"hipmer/internal/kmer"
)

// AsmStats summarizes an assembly.
type AsmStats struct {
	Sequences int
	TotalLen  int
	MaxLen    int
	MeanLen   float64
	N50       int
	N90       int
	GapBases  int // N characters
}

// Compute summarizes the given sequences.
func Compute(seqs [][]byte) AsmStats {
	var s AsmStats
	lens := make([]int, 0, len(seqs))
	for _, q := range seqs {
		s.Sequences++
		s.TotalLen += len(q)
		if len(q) > s.MaxLen {
			s.MaxLen = len(q)
		}
		for _, b := range q {
			if b == 'N' {
				s.GapBases++
			}
		}
		lens = append(lens, len(q))
	}
	if s.Sequences > 0 {
		s.MeanLen = float64(s.TotalLen) / float64(s.Sequences)
	}
	s.N50 = nxx(lens, s.TotalLen, 50)
	s.N90 = nxx(lens, s.TotalLen, 90)
	return s
}

// NG50 is N50 computed against the true genome size instead of the
// assembly size.
func NG50(seqs [][]byte, genomeLen int) int {
	lens := make([]int, 0, len(seqs))
	for _, q := range seqs {
		lens = append(lens, len(q))
	}
	return nxx(lens, genomeLen, 50)
}

func nxx(lens []int, total, pct int) int {
	if total <= 0 || len(lens) == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	target := total * pct / 100
	acc := 0
	for _, l := range lens {
		acc += l
		if acc >= target {
			return l
		}
	}
	return lens[len(lens)-1]
}

func (s AsmStats) String() string {
	return fmt.Sprintf("seqs=%d total=%d max=%d N50=%d N90=%d gapN=%d",
		s.Sequences, s.TotalLen, s.MaxLen, s.N50, s.N90, s.GapBases)
}

// Validation reports how an assembly compares to its reference.
type Validation struct {
	Placed        int // sequences anchored to the reference
	Unplaced      int
	Misassemblies int     // sequences whose anchors disagree on placement
	AlignedBases  int     // non-N bases compared
	Mismatches    int     // disagreements among aligned bases
	CoveredFrac   float64 // fraction of reference covered by placed sequences
	IdentityFrac  float64 // 1 - mismatch rate over aligned bases
}

const anchorK = 31

// Validate anchors every assembled sequence on the reference via k-mer
// diagonal voting (both strands), verifies it column by column at the
// voted offset, and measures reference coverage. Scaffold sequences are
// first split at N-gap runs: an unclosed gap whose estimated size is off
// by a few bases would otherwise shift every downstream column, so the
// flanked pieces are validated independently (coverage still reflects the
// whole assembly). Pieces whose anchor votes are split across diagonals
// are counted as misassemblies.
func Validate(seqs [][]byte, ref []byte) Validation {
	var v Validation
	// reference k-mer index
	index := make(map[kmer.Kmer][]int32)
	kmer.ForEach(ref, anchorK, func(pos int, km kmer.Kmer) {
		canon, _ := km.Canonical(anchorK)
		if hits := index[canon]; len(hits) < 8 {
			index[canon] = append(hits, int32(pos))
		}
	})
	covered := make([]bool, len(ref))
	var pieces [][]byte
	for _, seq := range seqs {
		pieces = append(pieces, splitAtNs(seq)...)
	}
	for _, seq := range pieces {
		placed, mis, offset, flipped := placeSequence(seq, ref, index)
		if !placed {
			v.Unplaced++
			continue
		}
		if mis {
			v.Misassemblies++
		}
		v.Placed++
		q := seq
		if flipped {
			q = kmer.RevCompString(seq)
		}
		for i := 0; i < len(q); i++ {
			rp := offset + i
			if rp < 0 || rp >= len(ref) {
				continue
			}
			covered[rp] = true
			if q[i] == 'N' {
				continue
			}
			v.AlignedBases++
			if q[i] != ref[rp] {
				v.Mismatches++
			}
		}
	}
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	if len(ref) > 0 {
		v.CoveredFrac = float64(n) / float64(len(ref))
	}
	if v.AlignedBases > 0 {
		v.IdentityFrac = 1 - float64(v.Mismatches)/float64(v.AlignedBases)
	}
	return v
}

// splitAtNs splits a scaffold sequence into its contig-like pieces at
// runs of N (gap placeholders).
func splitAtNs(seq []byte) [][]byte {
	var out [][]byte
	start := -1
	for i := 0; i <= len(seq); i++ {
		isN := i == len(seq) || seq[i] == 'N'
		if !isN && start < 0 {
			start = i
		}
		if isN && start >= 0 {
			if i-start >= anchorK {
				out = append(out, seq[start:i])
			}
			start = -1
		}
	}
	return out
}

// placeSequence votes with sampled anchors for a (strand, offset).
func placeSequence(seq, ref []byte, index map[kmer.Kmer][]int32) (
	placed, misassembled bool, offset int, flipped bool) {
	type diag struct {
		off  int
		flip bool
	}
	votes := make(map[diag]int)
	total := 0
	for strand := 0; strand < 2; strand++ {
		q := seq
		flip := strand == 1
		if flip {
			q = kmer.RevCompString(seq)
		}
		stride := len(q) / 32
		if stride < 1 {
			stride = 1
		}
		for pos := 0; pos+anchorK <= len(q); pos += stride {
			km, ok := kmer.Pack(q[pos:], anchorK)
			if !ok {
				continue
			}
			canon, _ := km.Canonical(anchorK)
			for _, rp := range index[canon] {
				// confirm orientation by direct comparison
				if string(ref[rp:int(rp)+anchorK]) == km.String(anchorK) {
					votes[diag{int(rp) - pos, flip}]++
					total++
				}
			}
		}
	}
	if total == 0 {
		return false, false, 0, false
	}
	bestD, bestV := diag{}, 0
	for d, n := range votes {
		if n > bestV {
			bestD, bestV = d, n
		}
	}
	// anchors disagreeing with the winner indicate chimeric placement
	mis := bestV*3 < total*2
	return true, mis, bestD.off, bestD.flip
}

package stats

import (
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

func TestComputeBasics(t *testing.T) {
	seqs := [][]byte{
		make([]byte, 100), make([]byte, 200), make([]byte, 300),
		make([]byte, 400),
	}
	for _, s := range seqs {
		for i := range s {
			s[i] = 'A'
		}
	}
	s := Compute(seqs)
	if s.Sequences != 4 || s.TotalLen != 1000 || s.MaxLen != 400 {
		t.Fatalf("basic stats wrong: %+v", s)
	}
	// N50: sorted desc 400,300,200,100; cumulative 400,700 >= 500 → 300
	if s.N50 != 300 {
		t.Fatalf("N50 = %d, want 300", s.N50)
	}
	// N90: target 900: 400,700,900 → 200
	if s.N90 != 200 {
		t.Fatalf("N90 = %d, want 200", s.N90)
	}
}

func TestGapBasesCounted(t *testing.T) {
	s := Compute([][]byte{[]byte("ACGTNNNNACGT")})
	if s.GapBases != 4 {
		t.Fatalf("gap bases %d, want 4", s.GapBases)
	}
}

func TestNG50(t *testing.T) {
	seqs := [][]byte{make([]byte, 500), make([]byte, 100)}
	// against genome of 2000: target 1000 > 600 → smallest (100)
	if g := NG50(seqs, 2000); g != 100 {
		t.Fatalf("NG50 = %d", g)
	}
	if g := NG50(seqs, 800); g != 500 {
		t.Fatalf("NG50 = %d", g)
	}
}

func TestEmptyInputs(t *testing.T) {
	s := Compute(nil)
	if s.Sequences != 0 || s.N50 != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
	v := Validate(nil, []byte("ACGT"))
	if v.Placed != 0 || v.CoveredFrac != 0 {
		t.Fatalf("empty validation: %+v", v)
	}
}

func TestValidatePerfectAssembly(t *testing.T) {
	rng := xrt.NewPrng(1)
	ref := genome.Random(rng, 20000)
	seqs := [][]byte{ref[0:8000], ref[8000:15000], kmer.RevCompString(ref[15000:])}
	v := Validate(seqs, ref)
	if v.Placed != 3 || v.Unplaced != 0 || v.Misassemblies != 0 {
		t.Fatalf("placement wrong: %+v", v)
	}
	if v.Mismatches != 0 || v.CoveredFrac < 0.999 {
		t.Fatalf("perfect assembly scored imperfect: %+v", v)
	}
}

func TestValidateCountsMismatches(t *testing.T) {
	rng := xrt.NewPrng(2)
	ref := genome.Random(rng, 10000)
	seq := append([]byte(nil), ref[1000:5000]...)
	for i := 100; i < 120; i++ { // 20 mismatches
		seq[i] = kmer.Complement(seq[i])
	}
	v := Validate([][]byte{seq}, ref)
	if v.Placed != 1 {
		t.Fatalf("not placed: %+v", v)
	}
	if v.Mismatches < 15 || v.Mismatches > 40 {
		t.Fatalf("mismatches %d, want ~20", v.Mismatches)
	}
}

func TestValidateNsAreWildcards(t *testing.T) {
	rng := xrt.NewPrng(3)
	ref := genome.Random(rng, 10000)
	seq := append([]byte(nil), ref[2000:6000]...)
	for i := 1000; i < 1100; i++ {
		seq[i] = 'N'
	}
	v := Validate([][]byte{seq}, ref)
	if v.Mismatches != 0 {
		t.Fatalf("N treated as mismatch: %+v", v)
	}
	if v.CoveredFrac < 0.39 || v.CoveredFrac > 0.41 {
		t.Fatalf("coverage %f, want 0.4", v.CoveredFrac)
	}
}

func TestValidateDetectsChimera(t *testing.T) {
	rng := xrt.NewPrng(4)
	ref := genome.Random(rng, 20000)
	// chimeric join of two distant regions
	chimera := append(append([]byte(nil), ref[1000:3000]...), ref[15000:17000]...)
	v := Validate([][]byte{chimera}, ref)
	if v.Misassemblies != 1 {
		t.Fatalf("chimera not detected: %+v", v)
	}
}

func TestValidateUnplaced(t *testing.T) {
	rng := xrt.NewPrng(5)
	ref := genome.Random(rng, 10000)
	junk := genome.Random(rng, 3000)
	v := Validate([][]byte{junk}, ref)
	if v.Unplaced != 1 || v.Placed != 0 {
		t.Fatalf("random sequence placed: %+v", v)
	}
}

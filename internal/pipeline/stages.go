// Explicit stage registry and checkpoint/restart orchestration. The
// pipeline is a list of named stages, each with a run function plus
// optional save/load codecs; the runner walks the list, consults the
// checkpoint manifest on resume (skipping completed stages and
// rehydrating their outputs), checkpoints each completed stage, and arms
// the fault plan when it enters the targeted stage. Stage inputs and
// outputs flow through a stageEnv, making each stage's dependencies
// explicit: io fills readLibs/merged, k-mer analysis reads merged,
// contig generation reads the k-mer table, scaffolding reads contigs +
// table + readLibs, gap closing reads the scaffold result.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"hipmer/internal/ckpt"
	"hipmer/internal/contig"
	"hipmer/internal/fastq"
	"hipmer/internal/gapclose"
	"hipmer/internal/kanalysis"
	"hipmer/internal/scaffold"
	"hipmer/internal/xrt"
)

// StageFailedError reports a pipeline stage aborted by an injected rank
// crash (Config.Fault) or a chaos-layer retry exhaustion (an enabled
// xrt.MessageFaultPlan whose budget ran out): the team unwound cleanly,
// the error names the stage and rank, and — when checkpointing was on —
// every stage before the failed one remains resumable from
// Config.CkptDir.
type StageFailedError struct {
	// Stage is the pipeline stage that was running when the rank died.
	Stage string
	// Rank is the crashed rank (the sender, for a retry exhaustion).
	Rank int
	// Err is the underlying *xrt.FaultError or *xrt.RetryExhaustedError.
	Err error
}

func (e *StageFailedError) Error() string {
	return fmt.Sprintf("pipeline: stage %q failed: rank %d crashed: %v",
		e.Stage, e.Rank, e.Err)
}

func (e *StageFailedError) Unwrap() error { return e.Err }

// stageEnv carries the data flowing between stages of one pipeline run.
type stageEnv struct {
	team *xrt.Team
	cfg  Config
	libs []Library
	res  *Result

	// io outputs
	readLibs []scaffold.ReadLib
	merged   [][]fastq.Record

	// carried is the iterative-k loop's inter-round state: the merged,
	// globally renumbered contig set a pseudo-merge stage produced, fed
	// into the next round's k-mer analysis as pseudo-reads. Both the run
	// and load paths of a pseudo-merge stage set it, so a resume landing
	// at any stage boundary sees the same carried set a straight run
	// would.
	carried []*contig.Contig
	// cleanStat / mergeStat record each cleaning or merge stage's
	// counters by stage name, for its save codec.
	cleanStat map[string]contig.CleanStats
	mergeStat map[string]contig.MergeStats

	// extraTimings are appended to Result.Timings right after the
	// current stage's own entry (scaffolding's merAligner sub-timing).
	extraTimings []StageTiming

	// disk is the armed storage-fault injector, nil when Config.DiskFault
	// is disabled. Installed on every store this run opens (including a
	// reopen after a heal) so one injection plan survives the swap.
	disk *diskInjector

	// srcRanks is the source partition of the stage entry currently
	// being loaded — the rank count of the run that wrote it, stamped
	// per entry in the manifest (zero outside loadStage). A checkpoint
	// directory can mix partitions: a rescaled resume appends stages at
	// its own rank count next to the original run's, so the re-shard
	// decision is per entry, not per manifest.
	srcRanks int
}

// rescaling reports whether the stage entry being loaded was written at
// a different rank count than this team's (elastic rescale), i.e. the
// load must re-shard its payload onto the current partition.
func (env *stageEnv) rescaling() bool {
	return env.srcRanks != 0 && env.srcRanks != env.team.Config().Ranks
}

// stage is one registry entry. save/load are nil for stages that cannot
// be checkpointed (io: its output is the input fingerprint's domain, so
// it always reruns). round tags the iterative-k round the stage belongs
// to (0 outside the multi-k loop) and is recorded in the checkpoint
// manifest.
type stage struct {
	name  string
	round int
	run   func(env *stageEnv) error
	save  func(env *stageEnv) ([]byte, error)
	load  func(env *stageEnv, payload []byte) error
}

// buildStages assembles the registry for a config: io, then either the
// classic single-k pair (k-mer analysis, contig generation) or — when
// KmerLens is set — the iterative-k loop (per round: k-mer analysis,
// contig generation, tip clipping, bubble popping, pseudo-read merge),
// then (unless ContigsOnly) scaffolding and gap closing, with one extra
// scaffolding/gap-closing pair per additional ScaffoldRounds round.
func buildStages(cfg Config) []stage {
	saveKmer := func(k int) func(env *stageEnv) ([]byte, error) {
		return func(env *stageEnv) ([]byte, error) {
			m := kanalysis.EffectiveMinimizerLen(k,
				env.cfg.MinimizerLen, env.cfg.DisableSuperKmers)
			return ckpt.EncodeKmerStage(env.res.KAnalysis, k, m), nil
		}
	}
	// loadKmer needs no re-shard branch: the payload lists entries in
	// global k-mer order and the decoder repartitions them through the
	// current team's OwnerHash placement, so any rank count rebuilds the
	// same table.
	loadKmer := func(env *stageEnv, payload []byte) error {
		ka, err := ckpt.DecodeKmerStage(env.team, payload, env.cfg.AggBufSize)
		if err != nil {
			return err
		}
		env.res.KAnalysis = ka
		return nil
	}
	saveContig := func(env *stageEnv) ([]byte, error) {
		return ckpt.EncodeContigStage(env.res.Contigs), nil
	}
	loadContig := func(env *stageEnv, payload []byte) error {
		// The de Bruijn graph is not checkpointed (nothing
		// downstream reads it); Result.Graph stays nil on resume.
		if env.rescaling() {
			cr, err := ckpt.DecodeContigStageReshard(payload, env.team.Config().Ranks)
			if err != nil {
				return err
			}
			env.res.Contigs = cr
			return nil
		}
		cr, err := ckpt.DecodeContigStage(env.team, payload)
		if err != nil {
			return err
		}
		env.res.Contigs = cr
		return nil
	}

	sts := []stage{{name: "io", run: runIO}}
	if len(cfg.KmerLens) == 0 {
		sts = append(sts,
			stage{name: "kmer-analysis", run: runKmerAnalysis,
				save: saveKmer(cfg.K), load: loadKmer},
			stage{name: "contig-generation", run: runContigGeneration,
				save: saveContig, load: loadContig},
		)
	} else {
		mergeK := cfg.KmerLens[0]
		for i, k := range cfg.KmerLens {
			round, k, usePseudo := i+1, k, i > 0
			tipName := fmt.Sprintf("tip-clip-k%d", k)
			bubName := fmt.Sprintf("bubble-pop-k%d", k)
			mrgName := fmt.Sprintf("pseudo-merge-k%d", k)
			sts = append(sts,
				stage{name: fmt.Sprintf("kmer-analysis-k%d", k), round: round,
					run: runKmerAnalysisRound(k, usePseudo), save: saveKmer(k), load: loadKmer},
				stage{name: fmt.Sprintf("contig-generation-k%d", k), round: round,
					run: runContigRound(k), save: saveContig, load: loadContig},
				stage{name: tipName, round: round,
					run: runTipClip(tipName, k), save: saveClean(tipName), load: loadClean},
				stage{name: bubName, round: round,
					run: runBubblePop(bubName, k), save: saveClean(bubName), load: loadClean},
				stage{name: mrgName, round: round,
					run: runPseudoMerge(mrgName, mergeK, k), save: saveCarry(mrgName), load: loadCarry},
			)
		}
	}
	if cfg.ContigsOnly {
		return sts
	}
	saveScaffold := func(env *stageEnv) ([]byte, error) {
		return ckpt.EncodeScaffoldStage(env.res.Scaffold), nil
	}
	loadScaffold := func(env *stageEnv, payload []byte) error {
		// The seed index is not checkpointed (gap closing consumes the
		// alignments, never the index); Result.Index stays nil on resume.
		if env.rescaling() {
			sr, _, err := ckpt.DecodeScaffoldStageAny(payload)
			if err != nil {
				return err
			}
			if err := reshardScaffold(env, sr); err != nil {
				return err
			}
			env.res.Scaffold = sr
			return nil
		}
		sr, err := ckpt.DecodeScaffoldStage(env.team, payload)
		if err != nil {
			return err
		}
		env.res.Scaffold = sr
		return nil
	}
	saveGapclose := func(env *stageEnv) ([]byte, error) {
		return ckpt.EncodeGapcloseStage(env.res.Gapclose), nil
	}
	loadGapclose := func(env *stageEnv, payload []byte) error {
		gr, err := ckpt.DecodeGapcloseStage(payload)
		if err != nil {
			return err
		}
		env.res.Gapclose = gr
		env.res.FinalSeqs = gr.ScaffoldSeqs
		return nil
	}
	sts = append(sts,
		stage{name: "scaffolding", run: runScaffolding,
			save: saveScaffold, load: loadScaffold},
		stage{name: "gap-closing", run: runGapClosing,
			save: saveGapclose, load: loadGapclose},
	)
	for round := 2; round <= cfg.ScaffoldRounds; round++ {
		sts = append(sts,
			stage{
				name: fmt.Sprintf("scaffolding-round%d", round),
				run:  runScaffoldingRound,
				save: saveScaffold, load: loadScaffold,
			},
			stage{
				name: fmt.Sprintf("gap-closing-round%d", round),
				run:  runGapClosing,
				save: saveGapclose, load: loadGapclose,
			},
		)
	}
	return sts
}

// StageNames returns the pipeline's stage names for a config, in
// execution order — the legal targets for Config.Fault.Stage.
func StageNames(cfg Config) []string {
	sts := buildStages(cfg.withDefaults())
	names := make([]string, len(sts))
	for i, st := range sts {
		names[i] = st.name
	}
	return names
}

// ---------------------------------------------------------------------
// stage run functions

func runKmerAnalysis(env *stageEnv) error {
	env.res.KAnalysis = kanalysis.Run(env.team, env.merged, kanalysis.Options{
		K:                 env.cfg.K,
		MinCount:          env.cfg.MinCount,
		HeavyHitters:      !env.cfg.DisableHeavyHitters,
		Theta:             env.cfg.Theta,
		HHMinCount:        env.cfg.HHMinCount,
		MinimizerLen:      env.cfg.MinimizerLen,
		DisableSuperKmers: env.cfg.DisableSuperKmers,
		AggBufSize:        env.cfg.AggBufSize,
	})
	return nil
}

func runContigGeneration(env *stageEnv) error {
	env.res.Contigs = contig.Run(env.team, env.res.KAnalysis.Table, contig.Options{
		K:          env.cfg.K,
		Oracle:     env.cfg.Oracle,
		AggBufSize: env.cfg.AggBufSize,
	})
	return nil
}

// ---------------------------------------------------------------------
// iterative-k round stages
//
// Each round's five stages are closures over that round's k: analysis
// and contig generation mirror the single-k stages; the cleaning stages
// mutate env.res.Contigs in place; the pseudo-merge folds the previous
// round's carried set into the current survivors and renumbers. All
// inter-stage state lives in env.res.Contigs / env.carried and every
// stage has a codec, so a crash at any stage boundary resumes exactly.

// runKmerAnalysisRound is runKmerAnalysis at a specific k; rounds after
// the first also ingest the previous round's carried contigs as depth-
// weighted pseudo-reads.
func runKmerAnalysisRound(k int, usePseudo bool) func(env *stageEnv) error {
	return func(env *stageEnv) error {
		opt := kanalysis.Options{
			K:                 k,
			MinCount:          env.cfg.MinCount,
			HeavyHitters:      !env.cfg.DisableHeavyHitters,
			Theta:             env.cfg.Theta,
			HHMinCount:        env.cfg.HHMinCount,
			MinimizerLen:      env.cfg.MinimizerLen,
			DisableSuperKmers: env.cfg.DisableSuperKmers,
			AggBufSize:        env.cfg.AggBufSize,
		}
		if usePseudo {
			opt.PseudoByRank = pseudoByRank(env.team.Config().Ranks, env.carried)
		}
		env.res.KAnalysis = kanalysis.Run(env.team, env.merged, opt)
		return nil
	}
}

// pseudoByRank deals the carried contigs round-robin into per-rank
// pseudo-read lists. carried is globally renumbered and sorted, so the
// deal is deterministic and independent of rank count only in content —
// per-rank placement varies with p, but k-mer analysis results are
// placement-invariant (counts are commutative sums).
func pseudoByRank(p int, carried []*contig.Contig) [][]kanalysis.PseudoRead {
	prs := make([][]kanalysis.PseudoRead, p)
	for i, c := range carried {
		prs[i%p] = append(prs[i%p], kanalysis.PseudoRead{Seq: c.Seq, Weight: c.PseudoWeight})
	}
	return prs
}

func runContigRound(k int) func(env *stageEnv) error {
	return func(env *stageEnv) error {
		env.res.Contigs = contig.Run(env.team, env.res.KAnalysis.Table, contig.Options{
			K:          k,
			Oracle:     env.cfg.Oracle,
			AggBufSize: env.cfg.AggBufSize,
		})
		return nil
	}
}

func runTipClip(name string, k int) func(env *stageEnv) error {
	return func(env *stageEnv) error {
		st := contig.ClipTips(env.team, env.res.Contigs, contig.CleanOptions{K: k})
		env.cleanStat[name] = st
		env.team.AddCounter("tips_clipped", st.TipsClipped)
		env.team.AddCounter("clean_bases_removed", st.BasesRemoved)
		return nil
	}
}

func runBubblePop(name string, k int) func(env *stageEnv) error {
	return func(env *stageEnv) error {
		st := contig.PopBubbles(env.team, env.res.Contigs, contig.CleanOptions{K: k})
		env.cleanStat[name] = st
		env.team.AddCounter("bubbles_popped", st.BubblesPopped)
		env.team.AddCounter("clean_bases_removed", st.BasesRemoved)
		return nil
	}
}

// runPseudoMerge folds the previous round's carried contigs into the
// current round's cleaned survivors (localized bubble detection at the
// sweep's smallest k — see contig.MergeRounds) and re-deals the merged
// set as the round's contig result. It runs in round 1 too, where it
// trivially carries everything: every round then ends at the same kind
// of boundary, so resume logic never special-cases the first round.
func runPseudoMerge(name string, mergeK, k int) func(env *stageEnv) error {
	return func(env *stageEnv) error {
		carried, st := contig.MergeRounds(env.team, env.carried, env.res.Contigs, mergeK, k)
		env.carried = carried
		env.res.Contigs = contig.ResultFromContigs(env.team, carried)
		env.mergeStat[name] = st
		env.team.AddCounter("pseudo_carried", st.Carried)
		env.team.AddCounter("pseudo_represented", st.Represented)
		env.team.AddCounter("pseudo_popped_old", st.PoppedOld)
		env.team.AddCounter("pseudo_rescued", st.Rescued)
		return nil
	}
}

func saveClean(name string) func(env *stageEnv) ([]byte, error) {
	return func(env *stageEnv) ([]byte, error) {
		return ckpt.EncodeCleaningStage(env.res.Contigs, env.cleanStat[name]), nil
	}
}

func loadClean(env *stageEnv, payload []byte) error {
	if env.rescaling() {
		res, _, err := ckpt.DecodeCleaningStageReshard(payload, env.team.Config().Ranks)
		if err != nil {
			return err
		}
		env.res.Contigs = res
		return nil
	}
	res, _, err := ckpt.DecodeCleaningStage(payload, env.team.Config().Ranks)
	if err != nil {
		return err
	}
	env.res.Contigs = res
	return nil
}

func saveCarry(name string) func(env *stageEnv) ([]byte, error) {
	return func(env *stageEnv) ([]byte, error) {
		return ckpt.EncodeCarryStage(env.carried, env.mergeStat[name]), nil
	}
}

// loadCarry needs no re-shard branch: the carried set is a global sorted
// list and ResultFromContigs deals it over whatever team is running.
func loadCarry(env *stageEnv, payload []byte) error {
	carried, _, err := ckpt.DecodeCarryStage(payload)
	if err != nil {
		return err
	}
	env.carried = carried
	env.res.Contigs = contig.ResultFromContigs(env.team, carried)
	return nil
}

func runScaffolding(env *stageEnv) error {
	sOpt := env.cfg.Scaffold
	sOpt.K = env.cfg.K
	env.res.Scaffold = scaffold.Run(env.team, env.res.Contigs,
		env.res.KAnalysis.Table, env.readLibs, sOpt)
	env.extraTimings = append(env.extraTimings, StageTiming{
		Name:    "merAligner",
		Virtual: env.res.Scaffold.AlignPhase.Virtual,
	})
	return nil
}

// runScaffoldingRound re-enters scaffolding with the previous round's
// final sequences as the contig set (§5.3: wheat uses four rounds).
func runScaffoldingRound(env *stageEnv) error {
	ctgRes := contigResultFromSeqs(env.team, env.res.FinalSeqs)
	sOpt := env.cfg.Scaffold
	sOpt.K = env.cfg.K
	sOpt.DisableBubbles = true // no junction metadata on re-entry
	env.res.Scaffold = scaffold.Run(env.team, ctgRes,
		env.res.KAnalysis.Table, env.readLibs, sOpt)
	return nil
}

func runGapClosing(env *stageEnv) error {
	gcOpt := env.cfg.Gapclose
	gcOpt.K = env.cfg.K
	gcOpt.KmerTable = env.res.KAnalysis.Table // frozen: cached closure verification
	env.res.Gapclose = gapclose.Run(env.team, env.res.Scaffold, env.readLibs, gcOpt)
	env.res.FinalSeqs = env.res.Gapclose.ScaffoldSeqs
	return nil
}

// ---------------------------------------------------------------------
// stage execution, checkpoint save/load, fault recovery

// track brackets a stage in an observability span; the span records
// per-rank comm and busy-time deltas (internal/metrics consumes them),
// and the aggregate feeds the legacy Timings list.
func (env *stageEnv) track(name string, fn func() error) error {
	env.team.BeginSpan(name)
	err := fn()
	rec := env.team.EndSpan()
	if err != nil {
		return err
	}
	env.res.Timings = append(env.res.Timings, StageTiming{
		Name:    name,
		Virtual: time.Duration(rec.VirtualNs),
		Wall:    time.Duration(rec.WallNs),
		Comm:    rec.AggComm(),
	})
	if len(env.extraTimings) > 0 {
		env.res.Timings = append(env.res.Timings, env.extraTimings...)
		env.extraTimings = nil
	}
	return nil
}

// runStage executes one stage under its span, converting a team unwind —
// an injected rank crash (*xrt.FaultError panic) or a chaos-layer retry
// exhaustion (*xrt.RetryExhaustedError panic) — into a typed
// StageFailedError after unwinding every span the dead stage left open.
func runStage(env *stageEnv, st stage) (err error) {
	depth := env.team.OpenSpans()
	defer func() {
		if p := recover(); p != nil {
			var rank int
			switch e := p.(type) {
			case *xrt.FaultError:
				rank = e.Rank
			case *xrt.RetryExhaustedError:
				rank = e.Src
			default:
				panic(p)
			}
			for env.team.OpenSpans() > depth {
				env.team.EndSpan()
			}
			err = &StageFailedError{Stage: st.name, Rank: rank, Err: p.(error)}
		}
	}()
	return env.track(st.name, func() error { return st.run(env) })
}

// saveStage checkpoints a completed stage: serialize, write segment +
// manifest, and charge the virtual write inside a checkpoint-save span
// (the segment bytes divided evenly across ranks, the same collective-
// I/O model the reader uses).
func saveStage(env *stageEnv, store *ckpt.Store, st stage) error {
	payload, err := st.save(env)
	if err != nil {
		return fmt.Errorf("pipeline: checkpointing %s: %w", st.name, err)
	}
	entry, err := store.WriteStageRound(st.name, st.round, payload)
	if err != nil {
		if errors.Is(err, ckpt.ErrWriteRefused) {
			// Injected ENOSPC: no segment, no manifest entry. The stage
			// itself succeeded, so the run carries on — a later resume
			// simply recomputes the hole. The attempted write is still
			// charged (the bytes hit the wire before the refusal) and the
			// fault counted on rank 0.
			if env.disk != nil {
				env.disk.take()
			}
			env.team.BeginSpan("checkpoint-save:" + st.name)
			share := int64(len(payload))/int64(env.team.Config().Ranks) + 1
			env.team.Run(func(r *xrt.Rank) {
				r.ChargeIOWrite(share)
				if r.ID == 0 {
					r.CountDiskFault()
				}
			})
			env.team.EndSpan()
			return nil
		}
		return fmt.Errorf("pipeline: checkpointing %s: %w", st.name, err)
	}
	fired := env.disk != nil && env.disk.take() != xrt.DiskFaultNone
	env.team.BeginSpan("checkpoint-save:" + st.name)
	env.team.AddCounter("ckpt_bytes", entry.Bytes)
	share := entry.Bytes/int64(env.team.Config().Ranks) + 1
	env.team.Run(func(r *xrt.Rank) {
		r.ChargeIOWrite(share)
		if fired && r.ID == 0 {
			r.CountDiskFault()
		}
	})
	env.team.EndSpan()
	return nil
}

// loadStage rehydrates a completed stage from its checkpoint inside a
// checkpoint-load span: the segment bytes are charged as a collective
// read, and any table rebuilding (k-mer analysis) runs its own SPMD
// phase under the same span.
func loadStage(env *stageEnv, store *ckpt.Store, st stage) error {
	payload, err := store.ReadStage(st.name)
	if err != nil {
		return fmt.Errorf("pipeline: resuming %s: %w", st.name, err)
	}
	// Each entry records the partition it was written at; the load paths
	// re-shard when it differs from this team's (see stageEnv.srcRanks).
	if e := store.Entry(st.name); e != nil {
		env.srcRanks = e.Ranks
	}
	defer func() { env.srcRanks = 0 }()
	env.team.BeginSpan("checkpoint-load:" + st.name)
	env.team.AddCounter("ckpt_bytes", int64(len(payload)))
	share := int64(len(payload))/int64(env.team.Config().Ranks) + 1
	env.team.Run(func(r *xrt.Rank) { r.ChargeIORead(share) })
	lerr := st.load(env, payload)
	env.team.EndSpan()
	if lerr != nil {
		return fmt.Errorf("pipeline: resuming %s: %w", st.name, lerr)
	}
	return nil
}

// runFingerprint digests everything that shapes stage outputs: the run
// seed, every pipeline knob, and the full read content of every library
// in the partition-independent global order (see reshard.go). The rank
// geometry is deliberately NOT part of the digest — it is recorded
// separately as the manifest's Topology — so a checkpoint resumes on a
// different rank count (elastic rescale) while a different config or
// input is still refused. Computed after io (reads are the fingerprint's
// domain, so io always reruns). Perturb, fault, chaos, and disk-fault
// seeds are likewise excluded: they must not change outputs (schedule
// perturbation, message-level chaos) or represent the failure being
// recovered from (fault injection, retry exhaustion, storage damage),
// so a checkpoint from a crashed or damaged run resumes under any of
// them — including a calmer plan than the one that broke it.
func runFingerprint(team *xrt.Team, cfg Config, libs []Library, readLibs []scaffold.ReadLib) (string, error) {
	f := ckpt.NewFingerprint()
	f.Str(ckpt.Schema)
	f.Int(team.Config().Seed)
	f.Int(int64(cfg.K))
	f.Int(int64(len(cfg.KmerLens)))
	for _, k := range cfg.KmerLens {
		f.Int(int64(k))
	}
	f.Int(int64(cfg.MinCount))
	f.Bool(cfg.DisableHeavyHitters)
	f.Int(int64(cfg.Theta))
	f.Int(cfg.HHMinCount)
	f.Int(int64(cfg.MinimizerLen))
	f.Bool(cfg.DisableSuperKmers)
	f.Int(int64(cfg.AggBufSize))
	f.Bool(cfg.ContigsOnly)
	f.Int(int64(cfg.ScaffoldRounds))
	f.Bool(cfg.Oracle != nil)
	f.Int(int64(cfg.Scaffold.MinLinkSupport))
	f.Int(int64(cfg.Scaffold.MinContigLen))
	f.Bool(cfg.Scaffold.DisableBubbles)
	f.Int(int64(cfg.Gapclose.WalkK))
	f.Int(int64(cfg.Gapclose.MaxWalkK))
	f.Int(int64(cfg.Gapclose.MinOverlap))
	for li, rl := range readLibs {
		f.Str(rl.Name)
		f.Int(int64(rl.InsertHint))
		recs, err := globalOrder(libs[li], rl.ReadsByRank)
		if err != nil {
			return "", fmt.Errorf("pipeline: fingerprinting %s: %w", rl.Name, err)
		}
		f.Int(int64(len(recs)))
		for _, rec := range recs {
			f.Bytes(rec.ID)
			f.Bytes(rec.Seq)
			f.Bytes(rec.Qual)
		}
	}
	return f.Hex(), nil
}

// Re-shard transforms for elastic rescale: a resume may rehydrate a
// checkpoint written at a different rank count, so per-rank state must be
// lifted out of the source partition into a partition-independent global
// order and re-dealt onto the target team. Two partition schemes exist:
//
//   - path libraries (FASTQ / SeqDB byte-range splits): concatenating the
//     per-rank parts in rank order reproduces file order at ANY rank
//     count (repairPairs only moves a record across an adjacent part
//     boundary, preserving the concatenation), so file order IS the
//     global order;
//   - in-memory record libraries: runIO deals pair j to rank j%p, so the
//     global order is recovered by un-dealing (pair j sits at
//     parts[j%p][2⌊j/p⌋..]) and the target layout by re-dealing with the
//     target p.
//
// Contig-shaped state re-shards by sorting on the globally deterministic
// content-hash IDs and round-robin dealing — the same owner-computes
// layout contig.ResultFromContigs produces, so a rescaled resume lands in
// exactly the partition a from-scratch run at the target rank count
// would compute.
package pipeline

import (
	"fmt"

	"hipmer/internal/ckpt"
	"hipmer/internal/scaffold"
)

// globalFromPairDeal reconstructs the global element order from a
// round-robin pair deal over len(parts) ranks. The layout is validated
// first — a corrupt checkpoint may present per-rank counts no deal could
// have produced, and that must surface as an error, never a panic.
func globalFromPairDeal[T any](parts [][]T) ([]T, error) {
	p := len(parts)
	if p == 0 {
		return nil, fmt.Errorf("empty partition")
	}
	total := 0
	for r, part := range parts {
		if len(part)%2 != 0 {
			return nil, fmt.Errorf("rank %d holds %d records, not whole pairs", r, len(part))
		}
		total += len(part)
	}
	pairs := total / 2
	for r, part := range parts {
		want := pairs / p
		if r < pairs%p {
			want++
		}
		if len(part)/2 != want {
			return nil, fmt.Errorf("rank %d holds %d pairs, want %d in a %d-pair deal over %d ranks",
				r, len(part)/2, want, pairs, p)
		}
	}
	out := make([]T, 0, total)
	for j := 0; j < pairs; j++ {
		r, i := j%p, 2*(j/p)
		out = append(out, parts[r][i], parts[r][i+1])
	}
	return out, nil
}

// globalOrder lifts lib's per-rank parts into the partition-independent
// global order: file order (concatenation) for path libraries, un-dealt
// pair order for in-memory record libraries.
func globalOrder[T any](lib Library, parts [][]T) ([]T, error) {
	if lib.Path != "" {
		var out []T
		for _, part := range parts {
			out = append(out, part...)
		}
		return out, nil
	}
	return globalFromPairDeal(parts)
}

// dealToPartition redistributes global elements onto the target read
// partition, whose per-rank sizes are dstCounts (the re-run io stage's
// layout, which rank-parallel state like alignments must match):
// sequential split for path libraries, round-robin pair deal for record
// libraries. Any size mismatch with the target layout is an error.
func dealToPartition[T any](lib Library, global []T, dstCounts []int) ([][]T, error) {
	p := len(dstCounts)
	out := make([][]T, p)
	if lib.Path != "" {
		off := 0
		for r, n := range dstCounts {
			if off+n > len(global) {
				return nil, fmt.Errorf("%d global records cannot fill target partition", len(global))
			}
			out[r] = global[off : off+n : off+n]
			off += n
		}
		if off != len(global) {
			return nil, fmt.Errorf("%d global records vs %d in target partition", len(global), off)
		}
		return out, nil
	}
	if len(global)%2 != 0 {
		return nil, fmt.Errorf("%d global records, not whole pairs", len(global))
	}
	for j := 0; j+1 < len(global); j += 2 {
		r := (j / 2) % p
		out[r] = append(out[r], global[j], global[j+1])
	}
	for r, n := range dstCounts {
		if len(out[r]) != n {
			return nil, fmt.Errorf("re-dealt rank %d holds %d records, target io layout holds %d", r, len(out[r]), n)
		}
	}
	return out, nil
}

// reshardScaffold rehydrates a scaffolding result written at a different
// rank count onto the current team: surviving contigs are re-dealt by ID
// (the owner-computes layout downstream phases expect) and each
// library's alignments are lifted out of the source read partition and
// re-dealt parallel to this run's io partition — gap closing walks
// Alignments[lib][rank] side by side with ReadsByRank[rank].
func reshardScaffold(env *stageEnv, res *scaffold.Result) error {
	p := env.team.Config().Ranks
	if err := ckpt.ReshardScaffoldContigs(res, p); err != nil {
		return err
	}
	if len(res.Alignments) != len(env.readLibs) {
		return fmt.Errorf("checkpoint holds alignments for %d libraries, run has %d",
			len(res.Alignments), len(env.readLibs))
	}
	for li := range res.Alignments {
		lib := env.libs[li]
		global, err := globalOrder(lib, res.Alignments[li])
		if err != nil {
			return fmt.Errorf("library %s: %w", lib.Name, err)
		}
		dstCounts := make([]int, p)
		for r, part := range env.readLibs[li].ReadsByRank {
			dstCounts[r] = len(part)
		}
		dealt, err := dealToPartition(lib, global, dstCounts)
		if err != nil {
			return fmt.Errorf("library %s: %w", lib.Name, err)
		}
		res.Alignments[li] = dealt
	}
	return nil
}

// checkRescale refuses the one genuinely topology-incompatible resume: a
// run configured with a dht.Oracle placement cannot rehydrate a stage
// entry written at a different rank count, because the oracle's
// assignment vector maps graph fragments onto a specific grid — the
// recorded stage was placed for its entry's rank count and no load-time
// transform can re-derive that placement for another. Entries are
// checked individually (a directory can mix partitions after a rescaled
// resume); everything non-oracle re-shards on load.
func checkRescale(cfg Config, store *ckpt.Store, ranks int) error {
	if cfg.Oracle == nil {
		return nil
	}
	for _, e := range store.Stages() {
		if e.Ranks != ranks {
			return fmt.Errorf("pipeline: stage %q checkpointed at %d ranks cannot resume at %d ranks under an oracle placement (the placement vector is rank-count-bound): %w",
				e.Name, e.Ranks, ranks, ckpt.ErrTopologyMismatch)
		}
	}
	return nil
}

package pipeline

import (
	"os"
	"path/filepath"
	"testing"

	"hipmer/internal/ckpt"
	"hipmer/internal/metrics"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

func sumCommField(rep *metrics.Report, field func(metrics.Comm) int64) int64 {
	var n int64
	for _, st := range rep.Stages {
		n += field(st.Comm)
	}
	return n
}

// diskKindSeeds maps each damage kind to a seed that selects it
// (Kind() = 1 + seed mod 4), mirroring the sweep's seed choice.
var diskKindSeeds = map[xrt.DiskFaultKind]int64{
	xrt.DiskFaultBitFlip:      21,
	xrt.DiskFaultDelete:       22,
	xrt.DiskFaultWriteRefused: 23,
	xrt.DiskFaultTornWrite:    24,
}

// TestDiskFaultHealsEveryKind is the self-healing contract per damage
// kind: the faulted run itself completes bit-identically (damage lands
// only on disk) and counts the fault; a later disarmed resume detects
// the damage, scrubs (except for a refused write, which left no
// manifest entry to distrust), recomputes the damaged stage, and again
// matches the uninterrupted assembly.
func TestDiskFaultHealsEveryKind(t *testing.T) {
	libs := smallLibs(26)
	const stage = "scaffolding"
	base, err := Run(ckTeam(), libs, Config{K: 21, MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseSet := verify.CanonicalSet(base.FinalSeqs)

	for kind, seed := range diskKindSeeds {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			res, err := Run(ckTeam(), libs, Config{
				K: 21, MinCount: 2, CkptDir: dir,
				DiskFault: xrt.DiskFaultPlan{Seed: seed, Stage: stage},
			})
			if err != nil {
				t.Fatalf("faulted run failed: %v", err)
			}
			if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
				t.Fatal("disk fault changed the faulted run's assembly")
			}
			if n := sumCommField(res.Metrics, func(c metrics.Comm) int64 { return c.DiskFaults }); n != 1 {
				t.Fatalf("faulted run counted %d disk faults, want 1", n)
			}

			heal, err := Run(ckTeam(), libs, Config{
				K: 21, MinCount: 2, CkptDir: dir, Resume: true,
			})
			if err != nil {
				t.Fatalf("healing resume failed: %v", err)
			}
			if !verify.EqualSets(baseSet, verify.CanonicalSet(heal.FinalSeqs)) {
				t.Fatal("healed resume diverged from uninterrupted run")
			}
			if heal.Timing(stage).Name == "" {
				t.Fatalf("damaged stage %s was not recomputed", stage)
			}
			scrubbed := sumCommField(heal.Metrics, func(c metrics.Comm) int64 { return c.ScrubRepairedBytes })
			if kind == xrt.DiskFaultWriteRefused {
				// A refused write records no manifest entry: the resume just
				// recomputes; there is nothing to scrub.
				if scrubbed != 0 {
					t.Fatalf("refused write still repaired %d bytes", scrubbed)
				}
			} else {
				if scrubbed <= 0 {
					t.Fatal("healing resume reported no scrub_repaired_bytes")
				}
				st := heal.Metrics.Stage("checkpoint-scrub")
				if st == nil || st.Counters["scrub_repaired_bytes"] <= 0 {
					t.Fatal("missing checkpoint-scrub span with scrub_repaired_bytes")
				}
			}
			// A second resume finds a clean directory: no scrub, everything
			// rehydrates, same assembly.
			again, err := Run(ckTeam(), libs, Config{
				K: 21, MinCount: 2, CkptDir: dir, Resume: true,
			})
			if err != nil {
				t.Fatalf("post-heal resume failed: %v", err)
			}
			if again.Metrics.Stage("checkpoint-scrub") != nil {
				t.Fatal("post-heal resume scrubbed again; the heal did not stick")
			}
			if !verify.EqualSets(baseSet, verify.CanonicalSet(again.FinalSeqs)) {
				t.Fatal("post-heal resume diverged")
			}
		})
	}
}

// TestDiskFaultMultiKHeals runs the same contract inside the
// iterative-k ladder, damaging a middle round's cleaning checkpoint.
func TestDiskFaultMultiKHeals(t *testing.T) {
	_, libs := metaLibs(32)
	cfg := multiKCfg()
	base, err := Run(ckTeam(), libs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseSet := verify.CanonicalSet(base.FinalSeqs)

	dir := t.TempDir()
	fcfg := cfg
	fcfg.CkptDir = dir
	fcfg.DiskFault = xrt.DiskFaultPlan{Seed: 21, Stage: "tip-clip-k33"} // bit-flip
	res, err := Run(ckTeam(), libs, fcfg)
	if err != nil {
		t.Fatalf("faulted multi-k run failed: %v", err)
	}
	if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
		t.Fatal("disk fault changed the multi-k assembly")
	}

	rcfg := cfg
	rcfg.CkptDir = dir
	rcfg.Resume = true
	heal, err := Run(ckTeam(), libs, rcfg)
	if err != nil {
		t.Fatalf("healing multi-k resume failed: %v", err)
	}
	if !verify.EqualSets(baseSet, verify.CanonicalSet(heal.FinalSeqs)) {
		t.Fatal("healed multi-k resume diverged")
	}
	if sumCommField(heal.Metrics, func(c metrics.Comm) int64 { return c.ScrubRepairedBytes }) <= 0 {
		t.Fatal("multi-k heal reported no scrub_repaired_bytes")
	}
	if heal.Timing("tip-clip-k33").Name == "" {
		t.Fatal("damaged round stage was not recomputed")
	}
}

// TestByteFlipDetectionCompleteness is the detection-completeness
// property: for every checkpoint segment a real single-k AND multi-k
// run writes, flipping any single byte is detected by the validation a
// resume applies (size + framing CRC + manifest CRC + content hash).
// Large segments are stride-sampled with the header and trailer swept
// exhaustively; CRC32 catches every single-bit error regardless of
// position, so the sample proves the plumbing, not the math.
func TestByteFlipDetectionCompleteness(t *testing.T) {
	type run struct {
		name string
		dir  string
	}
	var runs []run

	dirS := t.TempDir()
	if _, err := Run(ckTeam(), smallLibs(27), Config{K: 21, MinCount: 2, CkptDir: dirS}); err != nil {
		t.Fatal(err)
	}
	runs = append(runs, run{"single-k", dirS})

	dirM := t.TempDir()
	_, libs := metaLibs(33)
	cfgM := multiKCfg()
	cfgM.CkptDir = dirM
	if _, err := Run(ckTeam(), libs, cfgM); err != nil {
		t.Fatal(err)
	}
	runs = append(runs, run{"multi-k", dirM})

	for _, r := range runs {
		store, err := ckpt.Resume(r.dir, readFingerprint(t, r.dir))
		if err != nil {
			t.Fatal(err)
		}
		entries := store.Stages()
		if len(entries) == 0 {
			t.Fatalf("%s: checkpoint recorded no stages", r.name)
		}
		checked := 0
		for _, e := range entries {
			seg, err := os.ReadFile(filepath.Join(r.dir, e.File))
			if err != nil {
				t.Fatal(err)
			}
			for _, off := range flipOffsets(len(seg)) {
				mut := append([]byte(nil), seg...)
				mut[off] ^= 1 << (off % 8)
				if ckpt.ValidateSegmentBytes(mut, e) == nil {
					t.Fatalf("%s: flip at %s byte %d of %d went undetected",
						r.name, e.Name, off, len(seg))
				}
				checked++
			}
		}
		t.Logf("%s: %d flips across %d segments all detected", r.name, checked, len(entries))
	}
}

// readFingerprint recovers the fingerprint a run recorded so the test
// can reopen its checkpoint without recomputing the config hash.
func readFingerprint(t *testing.T, dir string) string {
	t.Helper()
	mb, err := os.ReadFile(filepath.Join(dir, ckpt.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ckpt.ParseManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	return m.Fingerprint
}

// flipOffsets samples byte offsets: every byte for small segments,
// otherwise the first and last 64 (framing header, payload-length field,
// trailing CRC) plus an even stride through the payload.
func flipOffsets(n int) []int {
	if n <= 2048 {
		offs := make([]int, n)
		for i := range offs {
			offs[i] = i
		}
		return offs
	}
	seen := map[int]bool{}
	var offs []int
	add := func(i int) {
		if i >= 0 && i < n && !seen[i] {
			seen[i] = true
			offs = append(offs, i)
		}
	}
	for i := 0; i < 64; i++ {
		add(i)
		add(n - 1 - i)
	}
	for i := 0; i < n; i += n / 512 {
		add(i)
	}
	return offs
}

package pipeline

import (
	"errors"
	"testing"

	"hipmer/internal/ckpt"
	"hipmer/internal/genome"
	"hipmer/internal/metrics"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// smallLibs builds a small deterministic dataset for checkpoint tests.
func smallLibs(seed int64) []Library {
	rng := xrt.NewPrng(seed)
	g := genome.Random(rng, 12000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 25,
		Lib:      genome.Library{Name: "ck", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	return []Library{{Name: "ck", Records: recs, InsertHint: 300}}
}

func ckTeam() *xrt.Team {
	return xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2, Seed: 11})
}

// TestCheckpointResumeSkipsStages runs once with checkpointing, then
// resumes in a fresh team: every checkpointable stage must be skipped
// (rehydrated), and the final assembly must be bit-identical as a
// canonical multiset.
func TestCheckpointResumeSkipsStages(t *testing.T) {
	libs := smallLibs(21)
	cfg := Config{K: 21, MinCount: 2, CkptDir: t.TempDir()}

	base, err := Run(ckTeam(), libs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	res, err := Run(ckTeam(), libs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.EqualSets(verify.CanonicalSet(base.FinalSeqs), verify.CanonicalSet(res.FinalSeqs)) {
		t.Fatal("resumed assembly differs from original")
	}
	// Skipped stages produce checkpoint-load spans (with bytes) instead
	// of stage timings.
	if ti := res.Timing("scaffolding"); ti.Name != "" {
		t.Fatal("scaffolding recomputed on full resume")
	}
	assertLoadSpan(t, res.Metrics, "checkpoint-load:kmer-analysis")
	assertLoadSpan(t, res.Metrics, "checkpoint-load:gap-closing")
}

func assertLoadSpan(t *testing.T, rep *metrics.Report, path string) {
	t.Helper()
	st := rep.Stage(path)
	if st == nil {
		t.Fatalf("missing %s span in metrics report", path)
	}
	if st.Counters["ckpt_bytes"] <= 0 {
		t.Fatalf("%s span has no ckpt_bytes counter", path)
	}
	if st.Comm.IOBytes <= 0 {
		t.Fatalf("%s span charged no virtual read I/O", path)
	}
}

// TestCrashThenResumeMatchesUninterrupted is the crash-consistency
// contract end to end: inject a deterministic rank crash mid-stage, see
// the typed StageFailedError, resume from the checkpoint in a fresh
// team, and get an assembly bit-identical to the uninterrupted run.
func TestCrashThenResumeMatchesUninterrupted(t *testing.T) {
	libs := smallLibs(22)
	// Fault seeds chosen so the countdown fires inside the stage: the
	// window is 1..256 charge events, and gap-closing on a near-gapless
	// toy assembly charges only a handful per rank, so it needs a seed
	// with a short countdown (seed 7 → 14 charges).
	faultSeeds := map[string]int64{
		"contig-generation": 5, "scaffolding": 5, "gap-closing": 7,
	}
	for _, stage := range []string{"contig-generation", "scaffolding", "gap-closing"} {
		t.Run(stage, func(t *testing.T) {
			seed := faultSeeds[stage]
			base, err := Run(ckTeam(), libs, Config{K: 21, MinCount: 2})
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			_, err = Run(ckTeam(), libs, Config{
				K: 21, MinCount: 2, CkptDir: dir,
				Fault: xrt.FaultPlan{Seed: seed, Stage: stage},
			})
			var sf *StageFailedError
			if !errors.As(err, &sf) {
				t.Fatalf("crashed run: err = %v, want *StageFailedError", err)
			}
			if sf.Stage != stage {
				t.Fatalf("StageFailedError.Stage = %q, want %q", sf.Stage, stage)
			}
			var fe *xrt.FaultError
			if !errors.As(err, &fe) || fe.Seed != seed {
				t.Fatalf("StageFailedError does not wrap the *xrt.FaultError: %v", err)
			}

			res, err := Run(ckTeam(), libs, Config{
				K: 21, MinCount: 2, CkptDir: dir, Resume: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !verify.EqualSets(verify.CanonicalSet(base.FinalSeqs),
				verify.CanonicalSet(res.FinalSeqs)) {
				t.Fatalf("resume after crash in %s diverged from uninterrupted run", stage)
			}
			// The crashed stage itself was not checkpointed, so the resume
			// recomputes it; everything before it must have been loaded.
			if res.Timing(stage).Name == "" {
				t.Fatalf("stage %s was not recomputed after its crash", stage)
			}
			if stage != "contig-generation" {
				assertLoadSpan(t, res.Metrics, "checkpoint-load:contig-generation")
			}
		})
	}
}

// TestCheckpointSaveSpans: a checkpointing run reports one
// checkpoint-save span per checkpointable stage, with bytes charged as
// virtual write I/O.
func TestCheckpointSaveSpans(t *testing.T) {
	res, err := Run(ckTeam(), smallLibs(23), Config{K: 21, MinCount: 2, CkptDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"kmer-analysis", "contig-generation", "scaffolding", "gap-closing"} {
		st := res.Metrics.Stage("checkpoint-save:" + name)
		if st == nil {
			t.Fatalf("missing checkpoint-save span for %s", name)
		}
		if st.Counters["ckpt_bytes"] <= 0 || st.Comm.IOWriteBytes <= 0 {
			t.Fatalf("checkpoint-save:%s has no bytes/write charge (counters=%v, io_write=%d)",
				name, st.Counters, st.Comm.IOWriteBytes)
		}
	}
}

// TestResumeRefusesMismatchedConfig: changing an assembly knob between
// checkpoint and resume must be refused via the fingerprint.
func TestResumeRefusesMismatchedConfig(t *testing.T) {
	libs := smallLibs(24)
	dir := t.TempDir()
	if _, err := Run(ckTeam(), libs, Config{K: 21, MinCount: 2, CkptDir: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(ckTeam(), libs, Config{K: 21, MinCount: 3, CkptDir: dir, Resume: true})
	if !errors.Is(err, ckpt.ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestRunConfigValidation: invalid checkpoint/fault configs fail fast.
func TestRunConfigValidation(t *testing.T) {
	libs := smallLibs(25)
	if _, err := Run(ckTeam(), libs, Config{K: 21, Resume: true}); err == nil {
		t.Fatal("Resume without CkptDir accepted")
	}
	_, err := Run(ckTeam(), libs, Config{K: 21,
		Fault: xrt.FaultPlan{Seed: 1, Stage: "no-such-stage"}})
	if err == nil {
		t.Fatal("unknown fault stage accepted")
	}
}

package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// metaLibs builds a small deterministic metagenome with its per-species
// references for the multi-k tests.
func metaLibs(seed int64) ([]verify.Species, []Library) {
	return SimulatedMetagenomeRefs(seed, 24000, 8, 4000)
}

func multiKCfg() Config {
	return Config{KmerLens: []int{21, 33, 55}, MinCount: 2, ContigsOnly: true}
}

// TestMultiKStageNames: KmerLens replaces the single-k pair with the
// five round stages per k, in order, and fault targeting accepts them.
func TestMultiKStageNames(t *testing.T) {
	names := StageNames(multiKCfg())
	want := []string{"io"}
	for _, k := range []int{21, 33, 55} {
		want = append(want,
			fmt.Sprintf("kmer-analysis-k%d", k),
			fmt.Sprintf("contig-generation-k%d", k),
			fmt.Sprintf("tip-clip-k%d", k),
			fmt.Sprintf("bubble-pop-k%d", k),
			fmt.Sprintf("pseudo-merge-k%d", k),
		)
	}
	if len(names) != len(want) {
		t.Fatalf("StageNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("StageNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestMultiKSmoke: the iterative-k loop assembles the metagenome end to
// end, every round stage reports a timing, the later rounds ingest
// pseudo-reads, and the abundance-aware oracle reports no cross-species
// join.
func TestMultiKSmoke(t *testing.T) {
	sp, libs := metaLibs(31)
	res, err := Run(ckTeam(), libs, multiKCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalSeqs) == 0 {
		t.Fatal("no output sequences")
	}
	for _, name := range StageNames(multiKCfg()) {
		if res.Timing(name).Name == "" {
			t.Errorf("stage %s reported no timing", name)
		}
	}
	// Rounds after the first must have ingested the carried contigs.
	st := res.Metrics.Stage("kmer-analysis-k33")
	if st == nil || st.Counters["pseudo_reads"] <= 0 {
		t.Fatalf("kmer-analysis-k33 ingested no pseudo-reads: %+v", st)
	}
	mrg := res.Metrics.Stage("pseudo-merge-k55")
	if mrg == nil || mrg.Counters["pseudo_carried"] <= 0 {
		t.Fatalf("pseudo-merge-k55 carried nothing: %+v", mrg)
	}
	mrep := verify.CheckMeta(res.FinalSeqs, sp, verify.Options{K: 21})
	if mrep.CrossJoins > 0 {
		t.Fatalf("abundance-aware oracle found misassemblies: %s", mrep)
	}
	// Every k-mer the assembly emits must be read-supported at the
	// smallest k (the multi-k spectrum-containment contract).
	if res.Verify != nil && res.Verify.MissingKmers > 0 {
		t.Fatalf("spectrum containment violated: %s", res.Verify)
	}
}

// TestMultiKRankInvariance: the canonical multi-k assembly is invariant
// across rank counts.
func TestMultiKRankInvariance(t *testing.T) {
	_, libs := metaLibs(32)
	var base map[string]int
	for _, p := range []int{1, 2, 4} {
		res, err := Run(xrt.NewTeam(xrt.Config{Ranks: p, RanksPerNode: 2, Seed: 11}),
			libs, multiKCfg())
		if err != nil {
			t.Fatalf("ranks=%d: %v", p, err)
		}
		set := verify.CanonicalSet(res.FinalSeqs)
		if base == nil {
			base = set
		} else if !verify.EqualSets(base, set) {
			t.Fatalf("ranks=%d: assembly differs: %s", p, verify.DiffSets(base, set))
		}
	}
}

// TestMultiKPerturbChaosInvariance: bit-identical output across 4
// schedule-perturbation seeds and 4 message-chaos seeds.
func TestMultiKPerturbChaosInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-k determinism battery; run without -short (make meta)")
	}
	_, libs := metaLibs(33)
	base, err := Run(ckTeam(), libs, multiKCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		tc := xrt.Config{Ranks: 4, RanksPerNode: 2, Seed: 11,
			Perturb: xrt.PerturbPlan{Seed: seed}}
		res, err := Run(xrt.NewTeam(tc), libs, multiKCfg())
		if err != nil {
			t.Fatalf("perturb=%d: %v", seed, err)
		}
		if !equalSeqSlices(base.FinalSeqs, res.FinalSeqs) {
			t.Fatalf("perturb=%d: assembly not bit-identical", seed)
		}

		tc = xrt.Config{Ranks: 4, RanksPerNode: 2, Seed: 11,
			Chaos: xrt.MessageFaultPlan{Seed: seed}}
		res, err = Run(xrt.NewTeam(tc), libs, multiKCfg())
		if err != nil {
			t.Fatalf("chaos=%d: %v", seed, err)
		}
		if !equalSeqSlices(base.FinalSeqs, res.FinalSeqs) {
			t.Fatalf("chaos=%d: assembly not bit-identical", seed)
		}
	}
}

func equalSeqSlices(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return false
		}
	}
	return true
}

// TestMultiKCrashResume: a crash injected into each new stage kind
// (tip-clip, bubble-pop, pseudo-merge), followed by a resume, yields
// the uninterrupted assembly. Fault countdowns may outlive a short
// stage; the test requires at least one actual crash across the seed
// ladder per stage and checks the resume either way.
func TestMultiKCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-k determinism battery; run without -short (make meta)")
	}
	_, libs := metaLibs(34)
	base, err := Run(ckTeam(), libs, multiKCfg())
	if err != nil {
		t.Fatal(err)
	}
	baseSet := verify.CanonicalSet(base.FinalSeqs)

	for _, stage := range []string{"tip-clip-k33", "bubble-pop-k33", "pseudo-merge-k33"} {
		t.Run(stage, func(t *testing.T) {
			crashes := 0
			// Seeds with countdowns of 1–3 charge events (and different
			// victim ranks), so the crash lands inside even the short
			// cleaning stages.
			for _, seed := range []int64{50, 191, 346, 530} {
				dir := t.TempDir()
				cfg := multiKCfg()
				cfg.CkptDir = dir
				cfg.Fault = xrt.FaultPlan{Seed: seed, Stage: stage}
				_, err := Run(ckTeam(), libs, cfg)
				var sf *StageFailedError
				if errors.As(err, &sf) {
					if sf.Stage != stage && !strings.HasPrefix(sf.Stage, stage) {
						t.Fatalf("crash reported in %q, want %q", sf.Stage, stage)
					}
					crashes++
				} else if err != nil {
					t.Fatalf("seed=%d: unexpected error %v", seed, err)
				}

				rcfg := multiKCfg()
				rcfg.CkptDir = dir
				rcfg.Resume = true
				res, err := Run(ckTeam(), libs, rcfg)
				if err != nil {
					t.Fatalf("seed=%d: resume failed: %v", seed, err)
				}
				if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
					t.Fatalf("seed=%d: resume after crash in %s diverged", seed, stage)
				}
			}
			if crashes == 0 {
				t.Fatalf("no fault seed crashed inside %s; pick denser seeds", stage)
			}
		})
	}
}

// TestMultiKResumeSkipsRounds: an uninterrupted checkpointed run, then a
// full resume: every round stage rehydrates (checkpoint-load spans with
// bytes) and the assembly matches.
func TestMultiKResumeSkipsRounds(t *testing.T) {
	_, libs := metaLibs(35)
	cfg := multiKCfg()
	cfg.CkptDir = t.TempDir()
	base, err := Run(ckTeam(), libs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	res, err := Run(ckTeam(), libs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.EqualSets(verify.CanonicalSet(base.FinalSeqs), verify.CanonicalSet(res.FinalSeqs)) {
		t.Fatal("resumed multi-k assembly differs")
	}
	for _, name := range []string{"tip-clip-k21", "bubble-pop-k33", "pseudo-merge-k55"} {
		assertLoadSpan(t, res.Metrics, "checkpoint-load:"+name)
	}
}

package pipeline

import (
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/xrt"
)

// TestSuperKmerBitIdenticalAssembly: the minimizer super-k-mer transport
// must change only the k-mer-analysis communication pattern, never the
// assembly — the final sequences are bit-identical to the per-k-mer
// path's, across rank counts and with chaos armed.
func TestSuperKmerBitIdenticalAssembly(t *testing.T) {
	rng := xrt.NewPrng(9)
	g := genome.Random(rng, 20000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 25,
		Lib:      genome.Library{Name: "sk", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	run := func(ranks int, disable bool, chaosSeed int64) string {
		cfg := xrt.Config{Ranks: ranks, RanksPerNode: 4}
		if chaosSeed != 0 {
			cfg.Chaos = xrt.MessageFaultPlan{Seed: chaosSeed, DropRate: 0.05, RetryBudget: 16}
		}
		team := xrt.NewTeam(cfg)
		res, err := Run(team, []Library{{Name: "sk", Records: recs, InsertHint: 300}},
			Config{K: 21, MinCount: 2, DisableSuperKmers: disable})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, s := range res.FinalSeqs {
			out += string(s) + "|"
		}
		return out
	}
	for _, ranks := range []int{4, 9} {
		base := run(ranks, true, 0)
		if got := run(ranks, false, 0); got != base {
			t.Fatalf("ranks=%d: super-k-mer assembly differs from per-k-mer assembly", ranks)
		}
		if got := run(ranks, false, 42); got != base {
			t.Fatalf("ranks=%d: super-k-mer assembly under chaos differs from fault-free per-k-mer", ranks)
		}
	}
}

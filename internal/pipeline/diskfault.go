// Storage fault injection and self-healing resume. The injector adapts
// an xrt.DiskFaultPlan to the ckpt.Injector write hook; the heal path
// turns a corrupt or missing segment discovered mid-resume into a
// scrub-and-recompute instead of a dead run.
package pipeline

import (
	"errors"
	"io/fs"

	"hipmer/internal/ckpt"
	"hipmer/internal/xrt"
)

// diskInjector adapts the plan to ckpt.Injector and remembers the last
// injected kind so saveStage can count the fault deterministically
// inside the checkpoint-save span (CorruptWrite itself runs on the
// orchestrator, outside any rank goroutine).
type diskInjector struct {
	plan xrt.DiskFaultPlan
	last xrt.DiskFaultKind
}

func (d *diskInjector) CorruptWrite(stage string, seg []byte) ([]byte, bool) {
	out, kind := d.plan.Apply(stage, seg)
	if kind == xrt.DiskFaultNone {
		return seg, false
	}
	d.last = kind
	return out, kind == xrt.DiskFaultWriteRefused
}

// take returns and clears the kind of the injection that fired since
// the last call (DiskFaultNone when nothing did).
func (d *diskInjector) take() xrt.DiskFaultKind {
	k := d.last
	d.last = xrt.DiskFaultNone
	return k
}

// installInjector arms the config's disk-fault plan on a freshly opened
// store (no-op when the plan is disabled).
func (env *stageEnv) installInjector(store *ckpt.Store) {
	if !env.cfg.DiskFault.Enabled() {
		return
	}
	if env.disk == nil {
		env.disk = &diskInjector{plan: env.cfg.DiskFault}
	}
	store.SetInjector(env.disk)
}

// healableCkptErr reports whether a loadStage failure is storage damage
// a scrub pass can heal: a segment that fails validation or is missing
// outright. Everything else (codec bugs, unparsable manifests, I/O
// permission errors) still aborts the run.
func healableCkptErr(err error) bool {
	return errors.Is(err, ckpt.ErrCorruptSegment) || errors.Is(err, fs.ErrNotExist)
}

// healCkpt recovers from storage damage discovered while rehydrating a
// stage: scrub the run directory (re-validate every entry, quarantine
// damaged segments, truncate the manifest to the longest intact
// prefix), reopen the store for this run, and charge the pass as a
// collective re-validation read under a checkpoint-scrub span. The
// caller falls through to recompute the demoted stages. Only a
// manifest with no trustworthy record left is unrecoverable
// (ckpt.ErrUnrecoverableCkpt, from Scrub).
func healCkpt(env *stageEnv, fp string) (*ckpt.Store, error) {
	rep, err := ckpt.Scrub(env.cfg.CkptDir)
	if err != nil {
		return nil, err
	}
	store, err := ckpt.Resume(env.cfg.CkptDir, fp)
	if err != nil {
		return nil, err
	}
	// The run adopted the directory's topology when it first opened the
	// store; re-assert it in case this team differs from the recorded
	// geometry (a rescaled resume that hit damage).
	topo := ckpt.Topology{
		Ranks:        env.team.Config().Ranks,
		RanksPerNode: env.team.Config().RanksPerNode,
	}
	if store.Topology() != topo {
		if err := store.AdoptTopology(topo); err != nil {
			return nil, err
		}
	}
	env.installInjector(store)

	team := env.team
	team.BeginSpan("checkpoint-scrub")
	team.AddCounter("scrub_repaired_bytes", rep.RepairedBytes)
	team.AddCounter("scrub_quarantined", int64(rep.Quarantined))
	share := rep.ScannedBytes/int64(team.Config().Ranks) + 1
	team.Run(func(r *xrt.Rank) {
		r.ChargeIORead(share)
		if r.ID == 0 {
			r.CountScrubRepair(rep.RepairedBytes)
		}
	})
	team.EndSpan()
	return store, nil
}

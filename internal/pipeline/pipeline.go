// Package pipeline orchestrates the complete HipMer assembly: parallel
// FASTQ input, k-mer analysis, contig generation, scaffolding, and gap
// closing, with per-stage virtual-time and communication accounting —
// the quantities Figures 6–8 and Tables 1–3 of the paper report.
package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hipmer/internal/ckpt"
	"hipmer/internal/contig"
	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/gapclose"
	"hipmer/internal/genome"
	"hipmer/internal/kanalysis"
	"hipmer/internal/metrics"
	"hipmer/internal/scaffold"
	"hipmer/internal/seqdb"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// Library is one input read library: either a file path (FASTQ read with
// the parallel block reader of §3.3, or the SeqDB-like binary container
// when the path ends in ".seqdb") or in-memory records.
type Library struct {
	Name string
	// Path to a FASTQ or .seqdb file; takes precedence over Records.
	Path string
	// Records are interleaved pairs (2i, 2i+1 are mates).
	Records []fastq.Record
	// InsertHint seeds insert-size estimation on small datasets.
	InsertHint int
}

// Config controls the pipeline.
type Config struct {
	// K is the assembly k-mer length (odd; default 31).
	K int
	// KmerLens, when non-empty, runs the MetaHipMer-style iterative-k
	// outer loop instead of a single k-mer round: for each k in order,
	// the pipeline runs k-mer analysis, contig generation, tip clipping,
	// bubble popping, and a pseudo-read merge; the merged contigs of
	// round i feed round i+1's k-mer analysis as depth-weighted pseudo-
	// reads. Values must be odd and strictly increasing (the CLI
	// enforces this). K is forced to the last entry — downstream stages
	// (scaffolding, gap closing, verification defaults) operate at the
	// final k, while verification's spectrum check defaults to the
	// smallest k (every k-mer the early rounds contributed is read-
	// supported at that length).
	KmerLens []int
	// MinCount is the k-mer error-exclusion threshold (default 2).
	MinCount int
	// HeavyHitters enables the §3.1 optimization (default on via
	// DisableHeavyHitters=false).
	DisableHeavyHitters bool
	// Theta is the Misra–Gries budget (default 32000).
	Theta int
	// HHMinCount overrides the heavy-hitter threshold (0 = automatic).
	HHMinCount int64
	// MinimizerLen overrides the super-k-mer minimizer length of k-mer
	// analysis (0 = default; clamped odd and below K).
	MinimizerLen int
	// DisableSuperKmers reverts stage-1 communication to one aggregated
	// store item per k-mer occurrence (the ablation baseline).
	DisableSuperKmers bool
	// Oracle, when set, places the de Bruijn graph with the
	// communication-avoiding layout of §3.2.
	Oracle *dht.Oracle
	// AggBufSize overrides the aggregating-stores buffer size everywhere
	// (1 = fine-grained messages, used by the baselines).
	AggBufSize int
	// ContigsOnly stops after contig generation (the paper's metagenome
	// mode, §5.4, where single-genome scaffolding logic would mis-join).
	ContigsOnly bool
	// ScaffoldRounds repeats scaffolding + gap closing, feeding each
	// round's scaffolds back in as contigs. The paper's wheat runs used
	// four rounds (§5.3); long-insert libraries join progressively larger
	// pieces each round. Default 1.
	ScaffoldRounds int
	// Scaffold options pass-through.
	Scaffold scaffold.Options
	// Gapclose options pass-through.
	Gapclose gapclose.Options
	// Verify, when non-nil, runs the assembly oracle on the output
	// (k-mer spectrum containment; with Verify.Ref set, also reference
	// placement and gap-size checks) and attaches the report to
	// Result.Verify. The oracle runs outside the simulated machine and
	// charges no virtual time.
	Verify *verify.Options
	// CkptDir, when set, checkpoints each stage's output into that
	// directory as it completes (segment files + manifest, see
	// internal/ckpt). Checkpoint I/O is charged as virtual collective
	// reads/writes and reported as checkpoint-save/-load spans.
	CkptDir string
	// Resume skips stages already recorded complete in CkptDir's
	// manifest, rehydrating their outputs from the checkpoint instead.
	// The manifest's config/input fingerprint must match this run's; a
	// mismatched resume is refused (ckpt.ErrFingerprintMismatch). The
	// rank count may differ — the fingerprint is rank-independent and
	// every load path re-shards the recorded state onto this team
	// (elastic rescale) — except when Oracle is set: oracle placement is
	// rank-count-bound, so that resume is refused with
	// ckpt.ErrTopologyMismatch. Requires CkptDir.
	Resume bool
	// Fault, when enabled, deterministically crashes one rank inside the
	// named stage (see xrt.FaultPlan); Run then returns a
	// *StageFailedError. Used by the crash-resume harness.
	Fault xrt.FaultPlan
	// DiskFault, when enabled, deterministically damages the checkpoint
	// segment the named stage writes (see xrt.DiskFaultPlan): the run
	// itself completes bit-identically — the damage lands only on disk,
	// with the manifest entry computed from the clean bytes — and a LATER
	// resume detects it, scrubs it away, and recomputes the damaged
	// suffix. Requires CkptDir to have any effect. The seed is excluded
	// from the checkpoint fingerprint (it represents the failure being
	// recovered from), so a healing resume needs no matching flag.
	DiskFault xrt.DiskFaultPlan
}

func (c Config) withDefaults() Config {
	if len(c.KmerLens) > 0 {
		c.K = c.KmerLens[len(c.KmerLens)-1]
	}
	if c.K <= 0 {
		c.K = 31
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	return c
}

// StageTiming is one stage's virtual duration and communication delta.
type StageTiming struct {
	Name    string
	Virtual time.Duration
	Wall    time.Duration
	Comm    xrt.CommStats
}

// Result is the complete pipeline output.
type Result struct {
	KAnalysis *kanalysis.Result
	Contigs   *contig.Result
	Scaffold  *scaffold.Result
	Gapclose  *gapclose.Result
	// FinalSeqs are the assembled scaffold sequences (or contig sequences
	// in ContigsOnly mode).
	FinalSeqs [][]byte
	// Timings per stage: io, kmer-analysis, contig-generation,
	// scaffolding (with merAligner and gap-closing reported separately),
	// and total.
	Timings []StageTiming
	// Verify is the oracle report (nil unless Config.Verify was set).
	Verify *verify.Report
	// Metrics is the per-stage observability report built from the
	// team's span records: per-rank comm deltas, busy time, and
	// load-imbalance statistics for every stage and sub-span. All its
	// fields except the wall-clock ones are deterministic.
	Metrics *metrics.Report
}

// ScheduleDependentCounters lists the stage counters whose values track
// contention or memory high-water marks and therefore vary with the
// physical goroutine interleaving, like the performance profile of the
// speculative phases they instrument: which rank wins a claim race, how
// much work a losing walk wastes, and how many quiescence rounds a rank
// observes are properties of one interleaving, not of the input (the
// assembly itself is interleaving-invariant — see internal/xrt/perturb).
// Metrics consumers comparing runs across schedules should zero these
// via Report.ZeroProfile.
var ScheduleDependentCounters = []string{
	"peak_entries", "quiescence_rounds", "walks_claimed", "walks_aborted",
}

// Timing returns the named stage timing (zero value if absent).
func (r *Result) Timing(name string) StageTiming {
	for _, t := range r.Timings {
		if t.Name == name {
			return t
		}
	}
	return StageTiming{}
}

// Run executes the pipeline on the given team. The stage list comes
// from buildStages; with cfg.CkptDir set each stage's output is
// checkpointed as it completes, with cfg.Resume also set the runner
// consults the manifest and skips (rehydrates) stages already recorded
// complete, and with cfg.Fault enabled the targeted stage suffers a
// deterministic injected rank crash and Run returns a *StageFailedError.
func Run(team *xrt.Team, libs []Library, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Resume && cfg.CkptDir == "" {
		return nil, fmt.Errorf("pipeline: Resume requires CkptDir")
	}
	stages := buildStages(cfg)
	if cfg.Fault.Enabled() {
		known := false
		for _, st := range stages {
			if st.name == cfg.Fault.Stage {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("pipeline: fault stage %q not in pipeline (stages: %s)",
				cfg.Fault.Stage, strings.Join(StageNames(cfg), ", "))
		}
	}

	env := &stageEnv{
		team: team, cfg: cfg, libs: libs, res: &Result{},
		cleanStat: map[string]contig.CleanStats{},
		mergeStat: map[string]contig.MergeStats{},
	}
	var store *ckpt.Store
	var fp string
	for _, st := range stages {
		if store != nil && cfg.Resume && st.load != nil && store.Completed(st.name) {
			lerr := loadStage(env, store, st)
			if lerr == nil {
				continue
			}
			if !healableCkptErr(lerr) {
				return nil, lerr
			}
			// Storage damage surfaced mid-rehydration (corrupt or missing
			// segment): scrub the directory — quarantine the damage,
			// truncate the manifest to the longest intact prefix — reopen,
			// and fall through to recompute this stage. Later stages whose
			// entries were dropped recompute too: Completed is now false
			// for everything from the damage onward.
			store, lerr = healCkpt(env, fp)
			if lerr != nil {
				return nil, lerr
			}
		}
		armed := cfg.Fault.Enabled() && cfg.Fault.Stage == st.name
		if armed {
			team.ArmFault(cfg.Fault)
		}
		err := runStage(env, st)
		if armed {
			team.DisarmFault()
		}
		if err != nil {
			return nil, err
		}
		if st.name == "io" && cfg.CkptDir != "" {
			// The store opens only after io: the fingerprint's domain is
			// the parsed read content, so io always reruns.
			var ferr error
			fp, ferr = runFingerprint(team, cfg, libs, env.readLibs)
			if ferr != nil {
				return nil, ferr
			}
			var serr error
			if cfg.Resume {
				store, serr = ckpt.Resume(cfg.CkptDir, fp)
				if errors.Is(serr, ckpt.ErrBadManifest) {
					// An unparsable manifest cannot seed a resume and Scrub
					// cannot heal it either: there is no trustworthy record
					// of an intact prefix.
					serr = fmt.Errorf("%w: %w", ckpt.ErrUnrecoverableCkpt, serr)
				}
				if serr == nil {
					// Per-entry source partitions drive load-time
					// re-sharding (elastic rescale); only oracle-placed
					// runs refuse a rank-count difference. A rescaled
					// resume adopts the directory: stages it writes are
					// stamped with its own rank count and the recorded
					// topology now names this run's geometry.
					topo := ckpt.Topology{
						Ranks:        team.Config().Ranks,
						RanksPerNode: team.Config().RanksPerNode,
					}
					if err := checkRescale(cfg, store, team.Config().Ranks); err != nil {
						return nil, err
					}
					if store.Topology() != topo {
						if err := store.AdoptTopology(topo); err != nil {
							return nil, err
						}
					}
				}
			} else {
				store, serr = ckpt.Create(cfg.CkptDir, fp, ckpt.Topology{
					Ranks:        team.Config().Ranks,
					RanksPerNode: team.Config().RanksPerNode,
				})
			}
			if serr != nil {
				return nil, serr
			}
			env.installInjector(store)
		}
		if store != nil && st.save != nil {
			if err := saveStage(env, store, st); err != nil {
				return nil, err
			}
		}
	}

	res := env.res
	if cfg.ContigsOnly {
		for _, c := range res.Contigs.All() {
			res.FinalSeqs = append(res.FinalSeqs, c.Seq)
		}
	}
	res.addTotal()
	res.Metrics = metrics.FromTeam(team)
	res.runVerify(cfg, env.merged)
	return res, nil
}

// runIO is stage 0: parallel FASTQ/SeqDB input, mate-pair repair across
// part boundaries, and the merged per-rank read view that feeds k-mer
// analysis.
func runIO(env *stageEnv) error {
	team := env.team
	p := team.Config().Ranks
	readLibs := make([]scaffold.ReadLib, len(env.libs))
	for li, lib := range env.libs {
		parts := make([][]fastq.Record, p)
		if strings.HasSuffix(lib.Path, ".seqdb") {
			fl, err := seqdb.Open(lib.Path)
			if err != nil {
				return fmt.Errorf("pipeline: opening %s: %w", lib.Path, err)
			}
			var readErr error
			team.Run(func(r *xrt.Rank) {
				recs, nBytes, err := fl.ReadPart(p, r.ID)
				if err != nil {
					readErr = err
					return
				}
				r.ChargeIORead(nBytes)
				parts[r.ID] = recs
			})
			if readErr != nil {
				return fmt.Errorf("pipeline: reading %s: %w", lib.Path, readErr)
			}
			repairPairs(parts)
		} else if lib.Path != "" {
			fl, err := fastq.OpenSplit(lib.Path, p)
			if err != nil {
				return fmt.Errorf("pipeline: opening %s: %w", lib.Path, err)
			}
			var readErr error
			team.Run(func(r *xrt.Rank) {
				recs, err := fl.ReadPart(r.ID)
				if err != nil {
					readErr = err
					return
				}
				r.ChargeIORead(fl.PartBytes(r.ID))
				parts[r.ID] = recs
			})
			fl.Close()
			if readErr != nil {
				return fmt.Errorf("pipeline: reading %s: %w", lib.Path, readErr)
			}
			repairPairs(parts)
		} else {
			var bytes int64
			for _, rec := range lib.Records {
				bytes += int64(len(rec.ID) + len(rec.Seq) + len(rec.Qual) + 6)
			}
			for i := 0; i+1 < len(lib.Records); i += 2 {
				r := (i / 2) % p
				parts[r] = append(parts[r], lib.Records[i], lib.Records[i+1])
			}
			team.Run(func(r *xrt.Rank) { r.ChargeIORead(bytes / int64(p)) })
		}
		readLibs[li] = scaffold.ReadLib{
			Name: lib.Name, ReadsByRank: parts, InsertHint: lib.InsertHint,
		}
	}
	env.readLibs = readLibs

	// all libraries feed k-mer analysis together
	merged := make([][]fastq.Record, p)
	for _, rl := range readLibs {
		for r := range merged {
			merged[r] = append(merged[r], rl.ReadsByRank[r]...)
		}
	}
	env.merged = merged
	return nil
}

// runVerify runs the assembly oracle when configured. It sees only raw
// sequences: the contig set, the final scaffolds, and the reads.
func (r *Result) runVerify(cfg Config, merged [][]fastq.Record) {
	if cfg.Verify == nil {
		return
	}
	opt := *cfg.Verify
	if opt.K <= 0 {
		if len(cfg.KmerLens) > 0 {
			// Multi-k output mixes contigs assembled at every k in the
			// sweep; only windows at the smallest k are guaranteed read-
			// supported for all of them.
			opt.K = cfg.KmerLens[0]
		} else {
			opt.K = cfg.K
		}
	}
	in := verify.Input{Finals: r.FinalSeqs}
	for _, part := range merged {
		for _, rec := range part {
			in.Reads = append(in.Reads, rec.Seq)
		}
	}
	if r.Contigs != nil {
		for _, c := range r.Contigs.All() {
			in.Contigs = append(in.Contigs, c.Seq)
		}
	}
	r.Verify = verify.Check(in, opt)
}

// contigResultFromSeqs re-enters scaffolding with a previous round's
// scaffolds as the contig set, dealt round-robin across ranks.
func contigResultFromSeqs(team *xrt.Team, seqs [][]byte) *contig.Result {
	p := team.Config().Ranks
	out := &contig.Result{Contigs: make([][]*contig.Contig, p)}
	for i, seq := range seqs {
		c := &contig.Contig{ID: int64(i + 1), Seq: seq}
		out.Contigs[i%p] = append(out.Contigs[i%p], c)
		out.NumContigs++
	}
	return out
}

func (r *Result) addTotal() {
	var total StageTiming
	total.Name = "total"
	for _, t := range r.Timings {
		if t.Name == "merAligner" { // subset of scaffolding, not additive
			continue
		}
		total.Virtual += t.Virtual
		total.Wall += t.Wall
		total.Comm.Add(t.Comm)
	}
	r.Timings = append(r.Timings, total)
}

// repairPairs fixes mate pairing broken by byte-range splitting: when a
// part begins with the second read of a pair, that read is moved to the
// previous part.
func repairPairs(parts [][]fastq.Record) {
	for i := 1; i < len(parts); i++ {
		if len(parts[i]) == 0 {
			continue
		}
		first := parts[i][0]
		if !isMate2(first.ID) {
			continue
		}
		// find the previous non-empty part
		j := i - 1
		for j >= 0 && len(parts[j]) == 0 {
			j--
		}
		if j < 0 {
			continue
		}
		last := parts[j][len(parts[j])-1]
		if isMate1(last.ID) && sameBase(last.ID, first.ID) {
			parts[j] = append(parts[j], first)
			parts[i] = parts[i][1:]
		}
	}
}

func isMate1(id []byte) bool {
	return len(id) >= 2 && id[len(id)-2] == '/' && id[len(id)-1] == '1'
}

func isMate2(id []byte) bool {
	return len(id) >= 2 && id[len(id)-2] == '/' && id[len(id)-1] == '2'
}

func sameBase(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	return string(a[:len(a)-1]) == string(b[:len(b)-1])
}

// SimulatedHuman builds the scaled human-like dataset used throughout the
// experiment harness: a diploid genome with one short-insert library.
func SimulatedHuman(seed int64, genomeLen int, coverage float64) ([]byte, []Library) {
	rng := xrt.NewPrng(seed)
	g := genome.HumanLike(rng, genomeLen)
	hap2 := genome.Mutate(rng, g, 0.001)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage:   coverage,
		Lib:        genome.Library{Name: "human395", ReadLen: 101, InsertMean: 395, InsertSD: 30},
		Err:        genome.DefaultErrorModel(),
		Haplotypes: [][]byte{hap2},
	})
	return g, []Library{{Name: "human395", Records: recs, InsertHint: 395}}
}

// SimulatedWheat builds the scaled wheat-like dataset: a highly repetitive
// genome with a short-insert library plus two long-insert libraries, as in
// the paper's wheat runs.
func SimulatedWheat(seed int64, genomeLen int, coverage float64) ([]byte, []Library) {
	rng := xrt.NewPrng(seed)
	g := genome.WheatLike(rng, genomeLen)
	var libs []Library
	specs := []genome.Library{
		{Name: "wheat500", ReadLen: 150, InsertMean: 500, InsertSD: 40},
		{Name: "wheat1k", ReadLen: 100, InsertMean: 1000, InsertSD: 80},
		{Name: "wheat4k", ReadLen: 100, InsertMean: 4200, InsertSD: 300},
	}
	covs := []float64{coverage * 0.7, coverage * 0.2, coverage * 0.1}
	for i, spec := range specs {
		recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
			Coverage: covs[i], Lib: spec, Err: genome.DefaultErrorModel(),
		})
		libs = append(libs, Library{Name: spec.Name, Records: recs, InsertHint: spec.InsertMean})
	}
	return g, libs
}

// SimulatedMetagenome builds the scaled wetlands-like dataset: many
// species, log-normal abundances, flat k-mer histogram.
func SimulatedMetagenome(seed int64, totalLen, species, pairs int) []Library {
	_, libs := SimulatedMetagenomeRefs(seed, totalLen, species, pairs)
	return libs
}

// SimulatedMetagenomeRefs is SimulatedMetagenome, but also returns the
// per-species references (with abundances) so the abundance-aware
// verify oracle can judge per-species recovery.
func SimulatedMetagenomeRefs(seed int64, totalLen, species, pairs int) ([]verify.Species, []Library) {
	rng := xrt.NewPrng(seed)
	gs, ab := genome.Metagenome(rng, totalLen, species)
	recs := genome.SimulateMetagenome(rng, gs, ab, pairs,
		genome.Library{Name: "wetland", ReadLen: 100, InsertMean: 300, InsertSD: 30},
		genome.DefaultErrorModel())
	sp := make([]verify.Species, len(gs))
	for i, g := range gs {
		sp[i] = verify.Species{Name: g.Name, Seq: g.Seq, Abundance: ab[i]}
	}
	return sp, []Library{{Name: "wetland", Records: recs, InsertHint: 300}}
}

package pipeline

import (
	"os"
	"path/filepath"
	"testing"

	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/seqdb"
	"hipmer/internal/stats"
	"hipmer/internal/xrt"
)

func TestEndToEndReconstructsGenome(t *testing.T) {
	rng := xrt.NewPrng(1)
	g := genome.Random(rng, 30000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 35,
		Lib:      genome.Library{Name: "e2e", ReadLen: 100, InsertMean: 350, InsertSD: 25},
		Err:      genome.DefaultErrorModel(),
	})
	team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 4})
	res, err := Run(team, []Library{{Name: "e2e", Records: recs, InsertHint: 350}},
		Config{K: 31, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalSeqs) == 0 {
		t.Fatal("no output sequences")
	}
	v := stats.Validate(res.FinalSeqs, g)
	if v.CoveredFrac < 0.95 {
		t.Fatalf("assembly covers only %.3f of the reference", v.CoveredFrac)
	}
	if v.IdentityFrac < 0.999 {
		t.Fatalf("assembly identity %.5f too low", v.IdentityFrac)
	}
	if v.Misassemblies > 0 {
		t.Fatalf("%d misassemblies", v.Misassemblies)
	}
	s := stats.Compute(res.FinalSeqs)
	if s.N50 < 10000 {
		t.Fatalf("N50 %d too fragmented for a clean 30k genome", s.N50)
	}
}

func TestTimingsRecorded(t *testing.T) {
	rng := xrt.NewPrng(2)
	g := genome.Random(rng, 8000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 20,
		Lib:      genome.Library{Name: "t", ReadLen: 100, InsertMean: 300, InsertSD: 20},
	})
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	res, err := Run(team, []Library{{Name: "t", Records: recs, InsertHint: 300}},
		Config{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"io", "kmer-analysis", "contig-generation",
		"scaffolding", "merAligner", "gap-closing", "total"} {
		ti := res.Timing(name)
		if ti.Name != name {
			t.Fatalf("missing stage timing %q", name)
		}
		// merAligner is a sub-timing and gap-closing may be free when the
		// assembly has no gaps; everything else must consume time
		if name != "merAligner" && name != "gap-closing" && ti.Virtual <= 0 {
			t.Fatalf("stage %q has no virtual time", name)
		}
	}
	total := res.Timing("total").Virtual
	sum := res.Timing("io").Virtual + res.Timing("kmer-analysis").Virtual +
		res.Timing("contig-generation").Virtual + res.Timing("scaffolding").Virtual +
		res.Timing("gap-closing").Virtual
	if total != sum {
		t.Fatalf("total %v != sum of stages %v", total, sum)
	}
}

func TestContigsOnlyMode(t *testing.T) {
	libs := SimulatedMetagenome(3, 60000, 10, 4000)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	res, err := Run(team, libs, Config{K: 21, ContigsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scaffold != nil || res.Gapclose != nil {
		t.Fatal("scaffolding ran in contigs-only mode")
	}
	if len(res.FinalSeqs) == 0 {
		t.Fatal("no contigs emitted")
	}
}

func TestFromFastqFile(t *testing.T) {
	rng := xrt.NewPrng(4)
	g := genome.Random(rng, 12000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 30,
		Lib:      genome.Library{Name: "f", ReadLen: 100, InsertMean: 320, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	path := filepath.Join(t.TempDir(), "reads.fastq")
	if err := os.WriteFile(path, fastq.Format(recs), 0o644); err != nil {
		t.Fatal(err)
	}
	team := xrt.NewTeam(xrt.Config{Ranks: 5})
	res, err := Run(team, []Library{{Name: "f", Path: path, InsertHint: 320}},
		Config{K: 31, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := stats.Validate(res.FinalSeqs, g)
	if v.CoveredFrac < 0.93 {
		t.Fatalf("file-based run covers only %.3f", v.CoveredFrac)
	}
	if io := res.Timing("io"); io.Comm.IOBytes == 0 {
		t.Fatal("no I/O bytes charged for file input")
	}
}

func TestMissingFileErrors(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	_, err := Run(team, []Library{{Name: "x", Path: "/nonexistent/reads.fastq"}},
		Config{K: 21})
	if err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRepairPairs(t *testing.T) {
	mk := func(id string) fastq.Record {
		return fastq.Record{ID: []byte(id), Seq: []byte("A"), Qual: []byte("I")}
	}
	parts := [][]fastq.Record{
		{mk("p0/1"), mk("p0/2"), mk("p1/1")},
		{mk("p1/2"), mk("p2/1"), mk("p2/2")},
	}
	repairPairs(parts)
	if len(parts[0]) != 4 || len(parts[1]) != 2 {
		t.Fatalf("repair failed: %d/%d", len(parts[0]), len(parts[1]))
	}
	if string(parts[0][3].ID) != "p1/2" {
		t.Fatalf("wrong record moved: %s", parts[0][3].ID)
	}
}

func TestMultiLibraryWheat(t *testing.T) {
	g, libs := SimulatedWheat(5, 40000, 25)
	team := xrt.NewTeam(xrt.Config{Ranks: 6})
	res, err := Run(team, libs, Config{K: 31, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.KAnalysis.HeavyHitters == 0 {
		t.Fatal("wheat dataset produced no heavy hitters")
	}
	// Repeats collapse to one contig per family, so only one copy of each
	// repeat region is covered; the bar reflects unique sequence plus one
	// copy per family.
	v := stats.Validate(res.FinalSeqs, g)
	if v.CoveredFrac < 0.30 {
		t.Fatalf("wheat assembly covers only %.3f (repetitive, but too low)", v.CoveredFrac)
	}
	if v.IdentityFrac < 0.99 {
		t.Fatalf("wheat assembly identity %.4f too low", v.IdentityFrac)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	rng := xrt.NewPrng(6)
	g := genome.Random(rng, 10000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 25,
		Lib:      genome.Library{Name: "d", ReadLen: 100, InsertMean: 300, InsertSD: 20},
	})
	run := func() string {
		team := xrt.NewTeam(xrt.Config{Ranks: 4})
		res, err := Run(team, []Library{{Name: "d", Records: recs, InsertHint: 300}},
			Config{K: 21})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, s := range res.FinalSeqs {
			out += string(s) + "|"
		}
		return out
	}
	if run() != run() {
		t.Fatal("pipeline output not deterministic")
	}
}

func TestMultiRoundScaffolding(t *testing.T) {
	// a dataset whose long-insert library can only be exploited once the
	// short-insert round has built intermediate scaffolds
	rng := xrt.NewPrng(21)
	g := genome.Random(rng, 40000)
	short, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 25,
		Lib:      genome.Library{Name: "pe300", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	long, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 8,
		Lib:      genome.Library{Name: "mp3k", ReadLen: 100, InsertMean: 3000, InsertSD: 200},
		Err:      genome.DefaultErrorModel(),
	})
	libs := []Library{
		{Name: "pe300", Records: short, InsertHint: 300},
		{Name: "mp3k", Records: long, InsertHint: 3000},
	}
	run := func(rounds int) *Result {
		team := xrt.NewTeam(xrt.Config{Ranks: 6})
		res, err := Run(team, libs, Config{K: 31, MinCount: 3, ScaffoldRounds: rounds})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)
	s1 := stats.Compute(one.FinalSeqs)
	s2 := stats.Compute(two.FinalSeqs)
	if s2.Sequences > s1.Sequences {
		t.Fatalf("round 2 increased scaffold count: %d -> %d", s1.Sequences, s2.Sequences)
	}
	if s2.N50 < s1.N50 {
		t.Fatalf("round 2 reduced N50: %d -> %d", s1.N50, s2.N50)
	}
	if two.Timing("scaffolding-round2").Virtual <= 0 {
		t.Fatal("round-2 timing not recorded")
	}
	// quality must not degrade
	v := stats.Validate(two.FinalSeqs, g)
	if v.IdentityFrac < 0.999 || v.Misassemblies > 0 {
		t.Fatalf("multi-round degraded quality: %+v", v)
	}
}

func TestFromSeqDBFile(t *testing.T) {
	rng := xrt.NewPrng(30)
	g := genome.Random(rng, 12000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 30,
		Lib:      genome.Library{Name: "s", ReadLen: 100, InsertMean: 320, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	path := filepath.Join(t.TempDir(), "reads.seqdb")
	if err := seqdb.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	team := xrt.NewTeam(xrt.Config{Ranks: 5})
	res, err := Run(team, []Library{{Name: "s", Path: path, InsertHint: 320}},
		Config{K: 31, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := stats.Validate(res.FinalSeqs, g)
	if v.CoveredFrac < 0.93 {
		t.Fatalf("seqdb-based run covers only %.3f", v.CoveredFrac)
	}
	// the binary container moves fewer bytes than FASTQ would
	if io := res.Timing("io"); io.Comm.IOBytes == 0 {
		t.Fatal("no I/O bytes charged")
	}
}

func TestLargeKFullPipeline(t *testing.T) {
	// k=51 is the paper's wheat k-mer length and exercises the two-word
	// packed k-mer representation through every stage
	rng := xrt.NewPrng(40)
	g := genome.Random(rng, 20000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 30,
		Lib:      genome.Library{Name: "k51", ReadLen: 150, InsertMean: 400, InsertSD: 25},
		Err:      genome.DefaultErrorModel(),
	})
	team := xrt.NewTeam(xrt.Config{Ranks: 6})
	res, err := Run(team, []Library{{Name: "k51", Records: recs, InsertHint: 400}},
		Config{K: 51, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := stats.Validate(res.FinalSeqs, g)
	if v.CoveredFrac < 0.93 || v.IdentityFrac < 0.999 {
		t.Fatalf("k=51 assembly poor: %+v", v)
	}
	if v.Misassemblies > 0 {
		t.Fatalf("k=51: %d misassemblies", v.Misassemblies)
	}
}

package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hipmer/internal/ckpt"
	"hipmer/internal/dht"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/scaffold"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// teamAt builds a team at rank count p with the same seed as ckTeam, so
// a checkpoint written by one fingerprints identically for the other
// (the rank geometry is deliberately outside the fingerprint).
func teamAt(p int) *xrt.Team {
	return xrt.NewTeam(xrt.Config{Ranks: p, RanksPerNode: 2, Seed: 11})
}

// kmerMultiset flattens the distributed k-mer table into its
// partition-independent content: k-mer → counts/extensions.
func kmerMultiset(res *Result) map[kmer.Kmer]kanalysis.KmerData {
	out := map[kmer.Kmer]kanalysis.KmerData{}
	res.KAnalysis.Table.RangeAll(func(k kmer.Kmer, v kanalysis.KmerData) bool {
		out[k] = v
		return true
	})
	return out
}

// contigSet flattens the contig partition into ID → sequence. IDs are
// content hashes, so the set is partition-independent.
func contigSet(res *Result) map[int64]string {
	out := map[int64]string{}
	for _, c := range res.Contigs.All() {
		out[c.ID] = string(c.Seq)
	}
	return out
}

// canonicalChain renders a scaffold as an orientation-independent
// string: the member walk forward and reversed (orientations flipped,
// gaps shifted one slot) describe the same chain, so the
// lexicographically smaller rendering is the canonical one.
func canonicalChain(sc *scaffold.Scaffold) string {
	n := len(sc.Members)
	fwd := make([]string, n)
	rev := make([]string, n)
	for i, m := range sc.Members {
		gap := 0
		if i > 0 {
			gap = m.GapBefore
		}
		fwd[i] = fmt.Sprintf("%d:%t:%d", m.ContigID, m.Flipped, gap)
	}
	for i := 0; i < n; i++ {
		m := sc.Members[n-1-i]
		gap := 0
		if i > 0 {
			gap = sc.Members[n-i].GapBefore
		}
		rev[i] = fmt.Sprintf("%d:%t:%d", m.ContigID, !m.Flipped, gap)
	}
	f, r := strings.Join(fwd, ";"), strings.Join(rev, ";")
	if r < f {
		return r
	}
	return f
}

// scaffoldChains collects the canonical chain multiset.
func scaffoldChains(res *Result) map[string]int {
	out := map[string]int{}
	for _, sc := range res.Scaffold.Scaffolds {
		out[canonicalChain(sc)]++
	}
	return out
}

func assertSameKmers(t *testing.T, label string, want, got map[kmer.Kmer]kanalysis.KmerData) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: k-mer table has %d entries, want %d", label, len(got), len(want))
	}
	for k, wv := range want {
		if gv, ok := got[k]; !ok || gv != wv {
			t.Fatalf("%s: k-mer %v = %+v, want %+v", label, k, gv, wv)
		}
	}
}

func assertSameContigs(t *testing.T, label string, want, got map[int64]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d contigs, want %d", label, len(got), len(want))
	}
	for id, ws := range want {
		if gs, ok := got[id]; !ok || gs != ws {
			t.Fatalf("%s: contig %d mismatch (have %d bases, want %d)", label, id, len(gs), len(ws))
		}
	}
}

func assertSameChains(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d distinct chains, want %d", label, len(got), len(want))
	}
	for ch, n := range want {
		if got[ch] != n {
			t.Fatalf("%s: chain %q ×%d, want ×%d", label, ch, got[ch], n)
		}
	}
}

// TestReshardFullResume is the single-k metamorphic battery: checkpoint
// a full run at 4 ranks, then for each target rank count resume the
// whole pipeline from the checkpoint and compare every reconstructed
// global state — k-mer multiset, contig set, scaffold chains, final
// assembly — against an independent from-scratch run at that count.
// Partition invariance of the from-scratch pipeline is already pinned
// by the rank-invariance tests; this pins that re-sharding a foreign
// partition lands in the very same state.
func TestReshardFullResume(t *testing.T) {
	libs := smallLibs(41)
	cfg := Config{K: 21, MinCount: 2, CkptDir: t.TempDir()}
	if _, err := Run(ckTeam(), libs, cfg); err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			scratch, err := Run(teamAt(p), libs, Config{K: 21, MinCount: 2})
			if err != nil {
				t.Fatalf("from scratch at %d ranks: %v", p, err)
			}
			rcfg := cfg
			rcfg.Resume = true
			res, err := Run(teamAt(p), libs, rcfg)
			if err != nil {
				t.Fatalf("resume at %d ranks: %v", p, err)
			}
			assertSameKmers(t, "kmer table", kmerMultiset(scratch), kmerMultiset(res))
			assertSameContigs(t, "contigs", contigSet(scratch), contigSet(res))
			assertSameChains(t, "scaffolds", scaffoldChains(scratch), scaffoldChains(res))
			if !verify.EqualSets(verify.CanonicalSet(scratch.FinalSeqs), verify.CanonicalSet(res.FinalSeqs)) {
				t.Fatal("rescaled assembly differs from from-scratch run")
			}
			// The rescaled resume must actually rehydrate, not recompute.
			assertLoadSpan(t, res.Metrics, "checkpoint-load:kmer-analysis")
			assertLoadSpan(t, res.Metrics, "checkpoint-load:scaffolding")
			assertLoadSpan(t, res.Metrics, "checkpoint-load:gap-closing")
		})
	}
}

// TestReshardCrashResume crashes mid-pipeline at 4 ranks, then resumes
// at a smaller and a larger rank count: the partially-checkpointed
// state re-shards and the completed assembly matches a from-scratch run
// at the target count.
func TestReshardCrashResume(t *testing.T) {
	libs := smallLibs(42)
	for _, p := range []int{2, 8} {
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{K: 21, MinCount: 2, CkptDir: dir,
				Fault: xrt.FaultPlan{Seed: 5, Stage: "scaffolding"}}
			if _, err := Run(ckTeam(), libs, cfg); err == nil {
				t.Fatal("injected crash did not fire")
			}

			scratch, err := Run(teamAt(p), libs, Config{K: 21, MinCount: 2})
			if err != nil {
				t.Fatalf("from scratch at %d ranks: %v", p, err)
			}
			rcfg := Config{K: 21, MinCount: 2, CkptDir: dir, Resume: true}
			res, err := Run(teamAt(p), libs, rcfg)
			if err != nil {
				t.Fatalf("resume at %d ranks: %v", p, err)
			}
			if !verify.EqualSets(verify.CanonicalSet(scratch.FinalSeqs), verify.CanonicalSet(res.FinalSeqs)) {
				t.Fatal("crash + rescaled resume diverged from from-scratch run")
			}
			assertLoadSpan(t, res.Metrics, "checkpoint-load:contig-generation")
		})
	}
}

// TestReshardMixedPartitionDir pins the per-entry source partition: a
// crash at 4 ranks leaves entries written at 4; the rescaled resume at
// 2 completes the run, appending scaffolding and gap-closing entries
// written at 2 into the same directory; a final resume back at 4 must
// load the mixed-partition directory (4-rank entries same-rank, 2-rank
// entries re-sharded) and still produce the 4-rank assembly.
func TestReshardMixedPartitionDir(t *testing.T) {
	libs := smallLibs(43)
	dir := t.TempDir()
	cfg := Config{K: 21, MinCount: 2, CkptDir: dir,
		Fault: xrt.FaultPlan{Seed: 5, Stage: "scaffolding"}}
	if _, err := Run(ckTeam(), libs, cfg); err == nil {
		t.Fatal("injected crash did not fire")
	}

	mid, err := Run(teamAt(2), libs, Config{K: 21, MinCount: 2, CkptDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("rescaled resume at 2 ranks: %v", err)
	}

	base, err := Run(ckTeam(), libs, Config{K: 21, MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ckTeam(), libs, Config{K: 21, MinCount: 2, CkptDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume at 4 ranks over mixed partitions: %v", err)
	}
	baseSet := verify.CanonicalSet(base.FinalSeqs)
	if !verify.EqualSets(baseSet, verify.CanonicalSet(mid.FinalSeqs)) {
		t.Fatal("2-rank completion diverged")
	}
	if !verify.EqualSets(baseSet, verify.CanonicalSet(res.FinalSeqs)) {
		t.Fatal("mixed-partition resume diverged")
	}
	assertLoadSpan(t, res.Metrics, "checkpoint-load:scaffolding")
	assertLoadSpan(t, res.Metrics, "checkpoint-load:gap-closing")
}

// TestReshardMultiK runs the iterative-k metagenome pipeline with
// checkpointing at 4 ranks and resumes the round-tagged stage ladder at
// other rank counts: contig set and final assembly match from-scratch.
func TestReshardMultiK(t *testing.T) {
	_, libs := metaLibs(44)
	cfg := multiKCfg()
	cfg.CkptDir = t.TempDir()
	if _, err := Run(ckTeam(), libs, cfg); err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{2, 8} {
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			scratch, err := Run(teamAt(p), libs, multiKCfg())
			if err != nil {
				t.Fatalf("from scratch at %d ranks: %v", p, err)
			}
			rcfg := cfg
			rcfg.Resume = true
			res, err := Run(teamAt(p), libs, rcfg)
			if err != nil {
				t.Fatalf("resume at %d ranks: %v", p, err)
			}
			assertSameContigs(t, "contigs", contigSet(scratch), contigSet(res))
			if !verify.EqualSets(verify.CanonicalSet(scratch.FinalSeqs), verify.CanonicalSet(res.FinalSeqs)) {
				t.Fatal("rescaled multi-k assembly differs from from-scratch run")
			}
			for _, name := range []string{"tip-clip-k21", "bubble-pop-k33", "pseudo-merge-k55"} {
				assertLoadSpan(t, res.Metrics, "checkpoint-load:"+name)
			}
		})
	}
}

// TestReshardOracleRefused: an oracle-placed run is the one genuinely
// topology-bound configuration — its placement vector maps fragments
// onto a specific grid — so a rescaled resume must be refused with the
// typed topology error while a same-count resume still works.
func TestReshardOracleRefused(t *testing.T) {
	libs := smallLibs(45)
	dir := t.TempDir()
	oracleCfg := func() Config {
		return Config{K: 21, MinCount: 2, CkptDir: dir,
			Oracle: dht.NewOracle(1<<16, 4)}
	}
	base, err := Run(ckTeam(), libs, oracleCfg())
	if err != nil {
		t.Fatal(err)
	}

	bad := oracleCfg()
	bad.Resume = true
	bad.Oracle = dht.NewOracle(1<<16, 2)
	if _, err := Run(teamAt(2), libs, bad); !errors.Is(err, ckpt.ErrTopologyMismatch) {
		t.Fatalf("rescaled oracle resume: err = %v, want ErrTopologyMismatch", err)
	}

	ok := oracleCfg()
	ok.Resume = true
	res, err := Run(ckTeam(), libs, ok)
	if err != nil {
		t.Fatalf("same-count oracle resume: %v", err)
	}
	if !verify.EqualSets(verify.CanonicalSet(base.FinalSeqs), verify.CanonicalSet(res.FinalSeqs)) {
		t.Fatal("same-count oracle resume diverged")
	}
}

// TestPairDealRoundTrip is the pure property check on the re-shard
// primitives: un-dealing a record partition and re-dealing it onto any
// target rank count is the identity on global order, and layouts no
// deal could have produced are rejected.
func TestPairDealRoundTrip(t *testing.T) {
	recLib := Library{Name: "mem"}
	pathLib := Library{Name: "file", Path: "reads.fastq"}

	deal := func(global []int, p int) ([][]int, []int) {
		parts := make([][]int, p)
		for j := 0; j+1 < len(global); j += 2 {
			r := (j / 2) % p
			parts[r] = append(parts[r], global[j], global[j+1])
		}
		counts := make([]int, p)
		for r := range parts {
			counts[r] = len(parts[r])
		}
		return parts, counts
	}

	for _, pairs := range []int{0, 1, 3, 7, 16, 31} {
		global := make([]int, 2*pairs)
		for i := range global {
			global[i] = i
		}
		for _, src := range []int{1, 2, 3, 5, 8} {
			parts, _ := deal(global, src)
			got, err := globalOrder(recLib, parts)
			if err != nil {
				t.Fatalf("pairs=%d src=%d: un-deal: %v", pairs, src, err)
			}
			if len(got) != len(global) {
				t.Fatalf("pairs=%d src=%d: un-deal lost records", pairs, src)
			}
			for i := range global {
				if got[i] != global[i] {
					t.Fatalf("pairs=%d src=%d: global[%d] = %d, want %d", pairs, src, i, got[i], global[i])
				}
			}
			for _, dst := range []int{1, 2, 4, 7} {
				wantParts, wantCounts := deal(global, dst)
				redealt, err := dealToPartition(recLib, got, wantCounts)
				if err != nil {
					t.Fatalf("pairs=%d src=%d dst=%d: re-deal: %v", pairs, src, dst, err)
				}
				for r := range wantParts {
					if len(redealt[r]) != len(wantParts[r]) {
						t.Fatalf("pairs=%d dst=%d: rank %d count mismatch", pairs, dst, r)
					}
					for i := range wantParts[r] {
						if redealt[r][i] != wantParts[r][i] {
							t.Fatalf("pairs=%d dst=%d: rank %d slot %d mismatch", pairs, dst, r, i)
						}
					}
				}
			}
		}
	}

	// Path libraries: concatenation is the global order and a sequential
	// split by target counts reproduces any byte-range partition.
	global := []int{0, 1, 2, 3, 4, 5, 6}
	parts, err := dealToPartition(pathLib, global, []int{3, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	back, err := globalOrder(pathLib, parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range global {
		if back[i] != global[i] {
			t.Fatalf("path round trip: slot %d = %d, want %d", i, back[i], global[i])
		}
	}

	// Invalid layouts must error, never panic.
	if _, err := globalFromPairDeal[int](nil); err == nil {
		t.Fatal("empty partition accepted")
	}
	if _, err := globalOrder(recLib, [][]int{{1, 2, 3}}); err == nil {
		t.Fatal("odd per-rank record count accepted")
	}
	if _, err := globalOrder(recLib, [][]int{{}, {1, 2}}); err == nil {
		t.Fatal("layout no deal produces accepted")
	}
	if _, err := dealToPartition(recLib, []int{1, 2, 3, 4}, []int{4, 2}); err == nil {
		t.Fatal("re-deal count mismatch accepted")
	}
	if _, err := dealToPartition(pathLib, global, []int{3, 3}); err == nil {
		t.Fatal("short path split accepted")
	}
	if _, err := dealToPartition(pathLib, global, []int{5, 5}); err == nil {
		t.Fatal("overlong path split accepted")
	}
}

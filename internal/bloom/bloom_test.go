package bloom

import (
	"testing"
	"testing/quick"

	"hipmer/internal/xrt"
)

func hashes(x uint64) (uint64, uint64) {
	return xrt.Splitmix64(x), xrt.Splitmix64(x ^ 0xdeadbeef)
}

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 0.01)
	for i := uint64(0); i < 10000; i++ {
		h1, h2 := hashes(i)
		f.Add(h1, h2)
	}
	for i := uint64(0); i < 10000; i++ {
		h1, h2 := hashes(i)
		if !f.Contains(h1, h2) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestFalsePositiveRateWithinBound(t *testing.T) {
	const n = 50000
	f := New(n, 0.01)
	for i := uint64(0); i < n; i++ {
		h1, h2 := hashes(i)
		f.Add(h1, h2)
	}
	fp := 0
	const trials = 50000
	for i := uint64(n); i < n+trials; i++ {
		h1, h2 := hashes(i)
		if f.Contains(h1, h2) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.03 { // 3x slack over the 1% design point
		t.Fatalf("false positive rate %f too high", rate)
	}
}

func TestAddReportsSecondSighting(t *testing.T) {
	f := New(1000, 0.01)
	h1, h2 := hashes(42)
	if f.Add(h1, h2) {
		t.Fatal("first add reported present")
	}
	if !f.Add(h1, h2) {
		t.Fatal("second add not reported present")
	}
}

func TestApproxCount(t *testing.T) {
	f := New(10000, 0.01)
	for i := uint64(0); i < 5000; i++ {
		h1, h2 := hashes(i)
		f.Add(h1, h2)
		f.Add(h1, h2) // duplicates must not inflate the count
	}
	c := f.ApproxCount()
	if c < 4800 || c > 5000 {
		t.Fatalf("approx count %d far from 5000", c)
	}
}

func TestSizingDegenerateInputs(t *testing.T) {
	for _, tc := range []struct {
		n uint64
		p float64
	}{{0, 0.01}, {10, 0}, {10, 1}, {10, -3}, {1, 0.5}} {
		f := New(tc.n, tc.p)
		if f.Bits() < 64 || f.NumProbes() < 1 || f.NumProbes() > 16 {
			t.Fatalf("degenerate sizing n=%d p=%f: bits=%d k=%d",
				tc.n, tc.p, f.Bits(), f.NumProbes())
		}
	}
}

func TestContainsNeverFalseNegativeProperty(t *testing.T) {
	f := New(500, 0.05)
	prop := func(x uint64) bool {
		h1, h2 := hashes(x)
		f.Add(h1, h2)
		return f.Contains(h1, h2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(1000, 0.01)
	if f.FillRatio() != 0 {
		t.Fatal("fresh filter not empty")
	}
	for i := uint64(0); i < 1000; i++ {
		h1, h2 := hashes(i)
		f.Add(h1, h2)
	}
	if r := f.FillRatio(); r < 0.3 || r > 0.7 {
		t.Fatalf("fill ratio %f outside expected band near 0.5", r)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(uint64(b.N)+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1, h2 := hashes(uint64(i))
		f.Add(h1, h2)
	}
}

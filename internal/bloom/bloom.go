// Package bloom implements the Bloom filter HipMer uses during k-mer
// analysis to avoid inserting single-occurrence (overwhelmingly erroneous)
// k-mers into the main hash tables, cutting memory by up to 85% on human
// and wheat data (paper §3.1).
package bloom

import "math"

// Filter is a classic Bloom filter using Kirsch–Mitzenmacher double
// hashing: the i-th probe is h1 + i*h2. It is sized from an expected
// element count and target false-positive rate.
//
// Filter is not safe for concurrent use; the assembler gives each rank its
// own filter over its owned key partition, mirroring the paper's
// owner-computes design.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of probes
	count uint64 // elements added (estimate)
}

// New creates a filter for approximately n elements with false-positive
// probability p. n and p are clamped to sane minimums.
func New(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.05
	}
	// optimal m = -n ln p / (ln 2)^2, k = m/n ln 2
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NumProbes returns the number of hash probes per operation.
func (f *Filter) NumProbes() int { return f.k }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

func (f *Filter) probe(h1, h2 uint64, i int) uint64 {
	return (h1 + uint64(i)*h2) % f.m
}

// Add inserts an element identified by two independent 64-bit hashes and
// reports whether it was possibly already present (i.e. all probed bits
// were set before the insert). The "possibly present" return is exactly
// what the k-mer analysis needs: the second sighting of a k-mer promotes
// it to the real hash table.
func (f *Filter) Add(h1, h2 uint64) (wasPresent bool) {
	wasPresent = true
	for i := 0; i < f.k; i++ {
		b := f.probe(h1, h2, i)
		w, mask := b>>6, uint64(1)<<(b&63)
		if f.bits[w]&mask == 0 {
			wasPresent = false
			f.bits[w] |= mask
		}
	}
	if !wasPresent {
		f.count++
	}
	return wasPresent
}

// Contains reports whether the element is possibly in the set. False
// negatives never occur.
func (f *Filter) Contains(h1, h2 uint64) bool {
	for i := 0; i < f.k; i++ {
		b := f.probe(h1, h2, i)
		if f.bits[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// ApproxCount returns the number of distinct inserts observed (first-time
// Adds). It undercounts by the false-positive rate.
func (f *Filter) ApproxCount() uint64 { return f.count }

// FillRatio returns the fraction of set bits, useful for monitoring.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Package gapclose implements the final pipeline stage (paper §4.8):
// assembling reads across the gaps between the contigs of scaffolds.
// Read-to-contig alignments are projected into gaps in parallel; the gaps
// are then distributed round-robin across ranks (breaking up the gaps of
// any single scaffold, which tend to cost alike, to prevent load
// imbalance) and closed by a succession of methods: spanning (a single
// read bridges the gap), k-mer walks with iteratively increasing k
// (mini-assembly, attempted from both sides), and finally patching (an
// acceptable overlap between the two partial walks).
package gapclose

import (
	"bytes"
	"sync/atomic"

	"hipmer/internal/aligner"
	"hipmer/internal/dht"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/scaffold"
	"hipmer/internal/xrt"
)

// Options configures gap closing.
type Options struct {
	// WalkK is the initial mini-assembly k-mer size (default 21).
	WalkK int
	// MaxWalkK bounds the iterative k escalation (default 41).
	MaxWalkK int
	// WalkKStep is the k increment between attempts (default 10).
	WalkKStep int
	// MinOverlap is the anchor length for spanning and patching (default 15).
	MinOverlap int
	// MinIdentity for patching overlaps (default 0.92).
	MinIdentity float64
	// FlankLen is how much flanking contig sequence is used (default 200).
	FlankLen int
	// MaxGapFactor bounds walk length to MaxGapFactor × estimated gap +
	// a constant slack, protecting against runaway walks (default 3).
	MaxGapFactor int
	// MaxGapReads caps the read set projected into one gap (default 400):
	// repeat-flanked gaps otherwise attract the reads of every repeat
	// copy, making a single closure arbitrarily expensive.
	MaxGapReads int
	// K and KmerTable enable closure verification: every closed gap's
	// junction k-mers (the windows spanning flank↔closure boundaries) are
	// looked up in the frozen global k-mer table — the same irregular
	// read pattern as the walks, served through the per-rank software
	// cache. Verification only reports confidence (Result.Verified); it
	// never changes closures. Both zero disables it.
	K         int
	KmerTable *dht.Table[kmer.Kmer, kanalysis.KmerData]
}

func (o Options) withDefaults() Options {
	if o.WalkK <= 0 {
		o.WalkK = 21
	}
	if o.MaxWalkK <= 0 {
		o.MaxWalkK = 41
	}
	if o.WalkKStep <= 0 {
		o.WalkKStep = 10
	}
	if o.MinOverlap <= 0 {
		o.MinOverlap = 15
	}
	if o.MinIdentity <= 0 {
		o.MinIdentity = 0.92
	}
	if o.FlankLen <= 0 {
		o.FlankLen = 200
	}
	if o.MaxGapFactor <= 0 {
		o.MaxGapFactor = 3
	}
	if o.MaxGapReads <= 0 {
		o.MaxGapReads = 400
	}
	return o
}

// Method records how a gap was closed.
type Method int

const (
	// Unclosed means every method failed; the gap remains as Ns.
	Unclosed Method = iota
	// Spanned: one read covered the whole gap.
	Spanned
	// Walked: a k-mer walk crossed the gap.
	Walked
	// Patched: two partial walks overlapped acceptably.
	Patched
)

func (m Method) String() string {
	switch m {
	case Spanned:
		return "spanned"
	case Walked:
		return "walked"
	case Patched:
		return "patched"
	default:
		return "unclosed"
	}
}

// gapID addresses one gap: scaffold index and member index of the member
// after the gap.
type gapID struct {
	scaf int
	mem  int
}

// gapState is the working record for one gap.
type gapState struct {
	id          gapID
	left, right []byte // flanks oriented in scaffold direction
	est         int    // estimated gap size
	reads       [][]byte
}

// Result reports gap closing outcomes.
type Result struct {
	Gaps, Closed                      int
	BySpanning, ByWalking, ByPatching int
	// Verified counts closures whose junction k-mers were confirmed in
	// the global k-mer table (0 when verification is disabled); Checked
	// is how many closures were examined.
	Verified, Checked int
	// ScaffoldSeqs are the final sequences, closures spliced in.
	ScaffoldSeqs [][]byte
	Phase        xrt.PhaseStats
}

// Run closes the gaps of the scaffolding result. libs must be the same
// libraries (same rank distribution) used during scaffolding.
func Run(team *xrt.Team, scafRes *scaffold.Result, libs []scaffold.ReadLib,
	opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	p := team.Config().Ranks

	// enumerate gaps and index them by adjacent contig end
	var gaps []*gapState
	gapAt := make(map[gapEndKey]int) // (contigID, contig-frame end) → gap index
	for si, s := range scafRes.Scaffolds {
		for mi := 1; mi < len(s.Members); mi++ {
			prev, cur := s.Members[mi-1], s.Members[mi]
			if cur.GapBefore <= 0 {
				continue
			}
			pc, cc := scafRes.Contigs[prev.ContigID], scafRes.Contigs[cur.ContigID]
			left := orient(pc.Seq, prev.Flipped)
			right := orient(cc.Seq, cur.Flipped)
			g := &gapState{
				id:   gapID{si, mi},
				left: tail(left, opt.FlankLen), right: head(right, opt.FlankLen),
				est: cur.GapBefore,
			}
			idx := len(gaps)
			gaps = append(gaps, g)
			gapAt[gapEndKey{prev.ContigID, exitEnd(prev)}] = idx
			gapAt[gapEndKey{cur.ContigID, entryEnd(cur)}] = idx
		}
	}
	res.Gaps = len(gaps)

	// project reads into gaps: any pair whose top alignment sits within
	// insert distance of a gap-adjacent contig end contributes both mates
	type tagged struct {
		gap int
		seq []byte
	}
	taggedByRank := make([][]tagged, p)
	team.BeginSpan("project-reads")
	team.Run(func(r *xrt.Rank) {
		var mine []tagged
		for li, lib := range libs {
			insert := int(scafRes.InsertMean[li])
			if insert <= 0 {
				insert = 500
			}
			alns := scafRes.Alignments[li][r.ID]
			reads := lib.ReadsByRank[r.ID]
			for i := 0; i+1 < len(alns); i += 2 {
				gi := -1
				for _, as := range [][]aligner.Alignment{alns[i], alns[i+1]} {
					if len(as) == 0 {
						continue
					}
					a := as[0]
					// near either end of its contig?
					if a.CStart < insert {
						if idx, ok := gapAt[gapEndKey{a.ContigID, scaffold.EndL}]; ok {
							gi = idx
						}
					}
					if a.ContigLen-a.CEnd < insert {
						if idx, ok := gapAt[gapEndKey{a.ContigID, scaffold.EndR}]; ok {
							gi = idx
						}
					}
				}
				if gi >= 0 {
					mine = append(mine,
						tagged{gi, reads[i].Seq}, tagged{gi, reads[i+1].Seq})
					r.ChargeItems(2)
				}
			}
		}
		taggedByRank[r.ID] = mine
		r.Barrier()
	})
	team.EndSpan()
	for _, ts := range taggedByRank {
		for _, t := range ts {
			if len(gaps[t.gap].reads) < opt.MaxGapReads {
				gaps[t.gap].reads = append(gaps[t.gap].reads, t.seq)
			}
		}
	}

	// close gaps, round-robin across ranks (§4.8 load-balance strategy)
	type closure struct {
		method Method
		seq    []byte
	}
	closures := make([]closure, len(gaps))
	var verified, checked atomic.Int64
	team.BeginSpan("close")
	res.Phase = team.Run(func(r *xrt.Rank) {
		for gi := r.ID; gi < len(gaps); gi += p {
			g := gaps[gi]
			m, seq, work := closeGap(g, opt)
			closures[gi] = closure{m, seq}
			// closure methods differ in computational intensity by orders
			// of magnitude (§4.8); charge the bases actually scanned
			r.ChargeItems(work + 64)
			if m != Unclosed && opt.KmerTable != nil && opt.K > 0 {
				checked.Add(1)
				if verifyClosure(r, g, seq, opt) {
					verified.Add(1)
				}
			}
		}
		r.Barrier()
	})
	res.Verified = int(verified.Load())
	res.Checked = int(checked.Load())
	for _, c := range closures {
		switch c.method {
		case Spanned:
			res.BySpanning++
		case Walked:
			res.ByWalking++
		case Patched:
			res.ByPatching++
		}
	}
	res.Closed = res.BySpanning + res.ByWalking + res.ByPatching
	team.AddCounter("gaps", int64(res.Gaps))
	team.AddCounter("closed", int64(res.Closed))
	team.AddCounter("by_spanning", int64(res.BySpanning))
	team.AddCounter("by_walking", int64(res.ByWalking))
	team.AddCounter("by_patching", int64(res.ByPatching))
	team.AddCounter("verify_checked", int64(res.Checked))
	team.AddCounter("verify_confirmed", int64(res.Verified))
	team.EndSpan()

	// splice closures into final scaffold sequences
	gapIdxByID := make(map[gapID]int)
	for i, g := range gaps {
		gapIdxByID[g.id] = i
	}
	for si, s := range scafRes.Scaffolds {
		var out []byte
		for mi, m := range s.Members {
			sc := scafRes.Contigs[m.ContigID]
			seq := orient(sc.Seq, m.Flipped)
			if mi == 0 {
				out = append(out, seq...)
				continue
			}
			if gi, ok := gapIdxByID[gapID{si, mi}]; ok && closures[gi].method != Unclosed {
				out = append(out, closures[gi].seq...)
				out = append(out, seq...)
				continue
			}
			// fall back to the scaffold-level join (Ns or splint overlap)
			out = appendWithGap(out, seq, m.GapBefore)
		}
		res.ScaffoldSeqs = append(res.ScaffoldSeqs, out)
	}
	return res
}

type gapEndKey struct {
	contig int64
	end    byte
}

func exitEnd(m scaffold.Member) byte {
	if m.Flipped {
		return scaffold.EndL
	}
	return scaffold.EndR
}

func entryEnd(m scaffold.Member) byte {
	if m.Flipped {
		return scaffold.EndR
	}
	return scaffold.EndL
}

func orient(s []byte, flipped bool) []byte {
	if flipped {
		return kmer.RevCompString(s)
	}
	return s
}

func tail(s []byte, n int) []byte {
	if len(s) > n {
		return s[len(s)-n:]
	}
	return s
}

func head(s []byte, n int) []byte {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func appendWithGap(out, seq []byte, gap int) []byte {
	if gap > 0 {
		for j := 0; j < gap; j++ {
			out = append(out, 'N')
		}
		return append(out, seq...)
	}
	// Only merge overlaps long enough for exact matching to verify; short
	// "matches" succeed by chance and would shift the downstream frame.
	const minVerifiedOverlap = 16
	ov := -gap
	if ov >= minVerifiedOverlap && ov <= len(out) && ov <= len(seq) &&
		bytes.Equal(out[len(out)-ov:], seq[:ov]) {
		return append(out, seq[ov:]...)
	}
	out = append(out, 'N')
	return append(out, seq...)
}

// closeGap tries the closure methods in order of computational cost. The
// returned work is the number of read bases scanned, used for cost
// accounting: spanning is orders of magnitude cheaper than k-mer walks,
// which is exactly why the paper distributes gaps round-robin.
func closeGap(g *gapState, opt Options) (Method, []byte, int) {
	if len(g.left) < opt.MinOverlap || len(g.right) < opt.MinOverlap {
		return Unclosed, nil, 0
	}
	readBases := 0
	for _, rd := range g.reads {
		readBases += len(rd)
	}
	work := readBases // spanning scan
	if seq, ok := trySpanning(g, opt); ok {
		return Spanned, seq, work
	}
	maxLen := g.est*opt.MaxGapFactor + 200
	var bestL, bestR []byte
	for k := opt.WalkK; k <= opt.MaxWalkK; k += opt.WalkKStep {
		work += 3 * readBases // mini de Bruijn build + two directed walks
		counts := kmerCounts(g.reads, k)
		if seq, partial, ok := walkAcross(g.left, g.right, counts, k, maxLen); ok {
			return Walked, seq, work
		} else if len(partial) > len(bestL) {
			bestL = partial
		}
		// right-to-left: walk the reverse complement problem
		rl := kmer.RevCompString(g.right)
		rr := kmer.RevCompString(g.left)
		if seq, partial, ok := walkAcross(rl, rr, counts, k, maxLen); ok {
			return Walked, kmer.RevCompString(seq), work
		} else if len(partial) > len(bestR) {
			bestR = partial
		}
	}
	// patching: overlap the two partial walks (left-extension vs the
	// reverse complement of the right-extension)
	if len(bestL) > 0 && len(bestR) > 0 {
		work += (len(g.left) + len(bestL)) * 8 // banded overlap DP
		a := append(append([]byte(nil), g.left...), bestL...)
		b := append(kmer.RevCompString(bestR), g.right...)
		if o, ok := aligner.BestOverlap(a, b, opt.MinOverlap, opt.MinIdentity); ok {
			// closure = bestL + (b after the overlap, before right flank)
			joined := append(append([]byte(nil), a...), b[o.LenB:]...)
			// extract the part strictly between the flanks
			if len(joined) >= len(g.left)+len(g.right) {
				seq := joined[len(g.left) : len(joined)-len(g.right)]
				return Patched, append([]byte(nil), seq...), work
			}
		}
	}
	return Unclosed, nil, work
}

// verifyClosure checks a closure's junction k-mers — every window that
// touches closure sequence or straddles a flank boundary — against the
// frozen global k-mer table. A correct closure is assembled from real
// read k-mers, so most junction windows should have survived k-mer
// analysis; a chimeric join produces windows never seen in any read. The
// closure is deemed verified when at least half the windows are found
// (single-read spans legitimately contain low-count k-mers the MinCount
// filter dropped). Lookups are the same irregular-access pattern as the
// gap walks and run lock-free through the per-rank software cache.
func verifyClosure(r *xrt.Rank, g *gapState, seq []byte, opt Options) bool {
	k := opt.K
	joined := make([]byte, 0, len(g.left)+len(seq)+len(g.right))
	joined = append(joined, g.left...)
	joined = append(joined, seq...)
	joined = append(joined, g.right...)
	lo := len(g.left) - k + 1
	if lo < 0 {
		lo = 0
	}
	hi := len(g.left) + len(seq)
	if hi > len(joined)-k {
		hi = len(joined) - k
	}
	found, total := 0, 0
	for pos := lo; pos <= hi; pos++ {
		km, ok := kmer.Pack(joined[pos:], k)
		if !ok {
			continue
		}
		canon, _ := km.Canonical(k)
		total++
		if _, ok := opt.KmerTable.Get(r, canon); ok {
			found++
		}
	}
	return total > 0 && 2*found >= total
}

// trySpanning looks for a single read that contains the end of the left
// flank and the start of the right flank in order (§4.8 method 1).
func trySpanning(g *gapState, opt Options) ([]byte, bool) {
	la := tail(g.left, opt.MinOverlap)
	ra := head(g.right, opt.MinOverlap)
	for _, rd := range g.reads {
		for _, seq := range [][]byte{rd, kmer.RevCompString(rd)} {
			li := bytes.Index(seq, la)
			if li < 0 {
				continue
			}
			ri := bytes.Index(seq[li+len(la):], ra)
			if ri < 0 {
				continue
			}
			gapStart := li + len(la)
			return append([]byte(nil), seq[gapStart:gapStart+ri]...), true
		}
	}
	return nil, false
}

// kmerCounts builds the mini de Bruijn extension counts from the gap's
// reads (both strands).
func kmerCounts(reads [][]byte, k int) map[string][4]int {
	counts := make(map[string][4]int)
	add := func(seq []byte) {
		for i := 0; i+k < len(seq); i++ {
			w := string(seq[i : i+k])
			c, ok := kmer.BaseCode(seq[i+k])
			if !ok {
				continue
			}
			arr := counts[w]
			arr[c]++
			counts[w] = arr
		}
	}
	for _, rd := range reads {
		add(rd)
		add(kmer.RevCompString(rd))
	}
	return counts
}

// walkAcross greedily extends from the left flank's final k bases,
// choosing the dominant extension at each step, until the right flank's
// anchor is reached (closure found), the walk dead-ends, or maxLen is
// exceeded. It returns the closure (bases strictly between the flanks) on
// success, else the partial extension.
func walkAcross(left, right []byte, counts map[string][4]int, k, maxLen int) (
	closure []byte, partial []byte, ok bool) {
	if len(left) < k || len(right) < k {
		return nil, nil, false
	}
	anchor := string(right[:k])
	cur := append([]byte(nil), left[len(left)-k:]...)
	var walked []byte
	for len(walked) < maxLen+k {
		w := string(cur)
		if w == anchor {
			// reached the right flank: closure excludes the anchor bases
			n := len(walked) - k
			if n < 0 {
				n = 0
			}
			return append([]byte(nil), walked[:n]...), nil, true
		}
		arr, exists := counts[w]
		if !exists {
			return nil, walked, false
		}
		// dominant extension: best count must be unambiguous
		bi, bc, sc := -1, 0, 0
		for b, c := range arr {
			if c > bc {
				bi, sc, bc = b, bc, c
			} else if c > sc {
				sc = c
			}
		}
		if bi < 0 || bc == 0 || bc == sc {
			return nil, walked, false
		}
		nb := kmer.CodeBase(uint64(bi))
		walked = append(walked, nb)
		cur = append(cur[1:], nb)
	}
	return nil, walked, false
}

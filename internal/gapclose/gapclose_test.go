package gapclose

import (
	"bytes"
	"testing"

	"hipmer/internal/contig"
	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/scaffold"
	"hipmer/internal/xrt"
)

const testK = 21

// runScaffolding builds a scaffolding result over explicit contig pieces
// with reads simulated from g.
func runScaffolding(t *testing.T, seed int64, g []byte, pieces [][]byte,
	ranks int) (*xrt.Team, *scaffold.Result, []scaffold.ReadLib) {
	t.Helper()
	rng := xrt.NewPrng(seed)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 30,
		Lib:      genome.Library{Name: "lib", ReadLen: 100, InsertMean: 400, InsertSD: 20},
		Err:      genome.ErrorModel{},
	})
	team := xrt.NewTeam(xrt.Config{Ranks: ranks})
	reads := make([][]fastq.Record, ranks)
	for i := 0; i+1 < len(recs); i += 2 {
		r := (i / 2) % ranks
		reads[r] = append(reads[r], recs[i], recs[i+1])
	}
	kres := kanalysis.Run(team, reads, kanalysis.Options{K: testK, MinCount: 2})
	ctgRes := &contig.Result{Contigs: make([][]*contig.Contig, ranks)}
	for i, p := range pieces {
		c := &contig.Contig{ID: int64(i + 1), Seq: p}
		ctgRes.Contigs[i%ranks] = append(ctgRes.Contigs[i%ranks], c)
	}
	libs := []scaffold.ReadLib{{Name: "lib", ReadsByRank: reads, InsertHint: 400}}
	sres := scaffold.Run(team, ctgRes, kres.Table, libs, scaffold.Options{K: testK})
	return team, sres, libs
}

// nFree reports whether seq contains no N.
func nFree(seq []byte) bool { return !bytes.ContainsRune(seq, 'N') }

func TestGapsClosedReproduceReference(t *testing.T) {
	rng := xrt.NewPrng(1)
	g := genome.Random(rng, 6000)
	pieces := [][]byte{g[0:1500], g[1600:3100], g[3220:4700], g[4790:6000]}
	team, sres, libs := runScaffolding(t, 2, g, pieces, 4)
	if len(sres.Scaffolds) != 1 {
		t.Fatalf("precondition: %d scaffolds", len(sres.Scaffolds))
	}
	res := Run(team, sres, libs, Options{})
	if res.Gaps != 3 {
		t.Fatalf("found %d gaps, want 3", res.Gaps)
	}
	if res.Closed != 3 {
		t.Fatalf("closed %d of %d gaps (span=%d walk=%d patch=%d)",
			res.Closed, res.Gaps, res.BySpanning, res.ByWalking, res.ByPatching)
	}
	if len(res.ScaffoldSeqs) != 1 {
		t.Fatalf("got %d final sequences", len(res.ScaffoldSeqs))
	}
	seq := res.ScaffoldSeqs[0]
	if !nFree(seq) {
		t.Fatal("closed scaffold still contains Ns")
	}
	if !bytes.Equal(seq, g) && !bytes.Equal(seq, kmer.RevCompString(g)) {
		t.Fatalf("final sequence (len %d) does not reproduce the reference (len %d)",
			len(seq), len(g))
	}
}

func TestLargeGapNeedsWalking(t *testing.T) {
	// gap of 250 > read length 100: no single read can span it, so the
	// k-mer walk (or patching) must cross
	rng := xrt.NewPrng(3)
	g := genome.Random(rng, 5000)
	pieces := [][]byte{g[0:2300], g[2550:5000]}
	team, sres, libs := runScaffolding(t, 4, g, pieces, 4)
	if len(sres.Scaffolds) != 1 {
		t.Skipf("scaffolding produced %d scaffolds", len(sres.Scaffolds))
	}
	res := Run(team, sres, libs, Options{})
	if res.Gaps != 1 {
		t.Fatalf("found %d gaps, want 1", res.Gaps)
	}
	if res.Closed != 1 {
		t.Fatalf("gap not closed (span=%d walk=%d patch=%d)",
			res.BySpanning, res.ByWalking, res.ByPatching)
	}
	if res.BySpanning != 0 {
		t.Fatal("a 250bp gap cannot be closed by a 100bp spanning read")
	}
	seq := res.ScaffoldSeqs[0]
	if !bytes.Equal(seq, g) && !bytes.Equal(seq, kmer.RevCompString(g)) {
		t.Fatalf("final sequence wrong (len %d vs %d)", len(seq), len(g))
	}
}

func TestUnclosableGapLeftAsNs(t *testing.T) {
	// remove the reads covering the gap region: closure must fail and the
	// gap must remain as Ns of the estimated size
	rng := xrt.NewPrng(5)
	g := genome.Random(rng, 4000)
	pieces := [][]byte{g[0:1900], g[2100:4000]}
	gapLo, gapHi := 1850, 2150

	recs, truth := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 30,
		Lib:      genome.Library{Name: "lib", ReadLen: 100, InsertMean: 400, InsertSD: 20},
		Err:      genome.ErrorModel{},
	})
	const ranks = 3
	team := xrt.NewTeam(xrt.Config{Ranks: ranks})
	reads := make([][]fastq.Record, ranks)
	kept := 0
	for i := 0; i+1 < len(recs); i += 2 {
		tr := truth[i/2]
		// drop any read overlapping the gap interior
		r1lo, r1hi, r2lo, r2hi := readSpans(tr)
		if overlaps(r1lo, r1hi, gapLo, gapHi) || overlaps(r2lo, r2hi, gapLo, gapHi) {
			continue
		}
		r := kept % ranks
		kept++
		reads[r] = append(reads[r], recs[i], recs[i+1])
	}
	kres := kanalysis.Run(team, reads, kanalysis.Options{K: testK, MinCount: 2})
	ctgRes := &contig.Result{Contigs: make([][]*contig.Contig, ranks)}
	for i, p := range pieces {
		ctgRes.Contigs[i%ranks] = append(ctgRes.Contigs[i%ranks],
			&contig.Contig{ID: int64(i + 1), Seq: p})
	}
	libs := []scaffold.ReadLib{{Name: "lib", ReadsByRank: reads, InsertHint: 400}}
	sres := scaffold.Run(team, ctgRes, kres.Table, libs, scaffold.Options{K: testK})
	if len(sres.Scaffolds) != 1 || len(sres.Scaffolds[0].Members) != 2 {
		t.Skip("span links insufficient without gap-adjacent reads")
	}
	res := Run(team, sres, libs, Options{})
	if res.Closed != 0 {
		t.Fatalf("gap closed without any covering reads (span=%d walk=%d patch=%d)",
			res.BySpanning, res.ByWalking, res.ByPatching)
	}
	seq := res.ScaffoldSeqs[0]
	if !bytes.Contains(seq, []byte("NNN")) {
		t.Fatal("unclosed gap should remain as Ns")
	}
}

func readSpans(tr genome.PairTruth) (int, int, int, int) {
	const L = 100
	return tr.Pos, tr.Pos + L, tr.Pos + tr.Insert - L, tr.Pos + tr.Insert
}

func overlaps(alo, ahi, blo, bhi int) bool { return alo < bhi && blo < ahi }

func TestFlippedMembersStillClose(t *testing.T) {
	rng := xrt.NewPrng(7)
	g := genome.Random(rng, 4200)
	pieces := [][]byte{g[0:1900], kmer.RevCompString(g[2050:4200])}
	team, sres, libs := runScaffolding(t, 8, g, pieces, 3)
	if len(sres.Scaffolds) != 1 || len(sres.Scaffolds[0].Members) != 2 {
		t.Skipf("precondition failed: %d scaffolds", len(sres.Scaffolds))
	}
	res := Run(team, sres, libs, Options{})
	if res.Closed != 1 {
		t.Fatalf("gap over flipped member not closed")
	}
	seq := res.ScaffoldSeqs[0]
	if !bytes.Equal(seq, g) && !bytes.Equal(seq, kmer.RevCompString(g)) {
		t.Fatalf("final sequence wrong (len %d vs %d)", len(seq), len(g))
	}
}

func TestWalkAcrossUnit(t *testing.T) {
	rng := xrt.NewPrng(9)
	g := genome.Random(rng, 400)
	left, right := g[:150], g[250:]
	// reads tile the whole region densely
	var reads [][]byte
	for i := 0; i+80 <= len(g); i += 7 {
		reads = append(reads, g[i:i+80])
	}
	counts := kmerCounts(reads, 21)
	closure, _, ok := walkAcross(left, right, counts, 21, 500)
	if !ok {
		t.Fatal("walk failed on perfectly covered gap")
	}
	if !bytes.Equal(closure, g[150:250]) {
		t.Fatalf("closure %d bases, want the 100-base gap interior", len(closure))
	}
}

func TestWalkStopsAtAmbiguity(t *testing.T) {
	// two equally supported branches right after the flank: walk must fail
	left := []byte("ACGTACGTACGTACGTACGTACGTA")
	branch1 := append(append([]byte(nil), left...), []byte("GGGGGGGGGG")...)
	branch2 := append(append([]byte(nil), left...), []byte("CCCCCCCCCC")...)
	counts := kmerCounts([][]byte{branch1, branch2}, 21)
	_, _, ok := walkAcross(left, []byte("TTTTTTTTTTTTTTTTTTTTTTTT"), counts, 21, 100)
	if ok {
		t.Fatal("walk crossed an ambiguous branch")
	}
}

func TestSpanningUnit(t *testing.T) {
	rng := xrt.NewPrng(10)
	g := genome.Random(rng, 300)
	gst := &gapState{
		left:  g[:120],
		right: g[180:],
		est:   60,
		reads: [][]byte{g[100:200]}, // spans the gap
	}
	m, seq, _ := closeGap(gst, Options{}.withDefaults())
	if m != Spanned {
		t.Fatalf("method %v, want spanned", m)
	}
	if !bytes.Equal(seq, g[120:180]) {
		t.Fatalf("closure wrong: %d bases, want 60", len(seq))
	}
	// reverse-complement spanning read must also work
	gst.reads = [][]byte{kmer.RevCompString(g[100:200])}
	m, seq, _ = closeGap(gst, Options{}.withDefaults())
	if m != Spanned || !bytes.Equal(seq, g[120:180]) {
		t.Fatalf("rc spanning failed: %v", m)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Unclosed: "unclosed", Spanned: "spanned", Walked: "walked", Patched: "patched",
	} {
		if m.String() != want {
			t.Fatalf("%d -> %s", m, m.String())
		}
	}
}

func TestPatchingUnit(t *testing.T) {
	// A single-k-mer coverage hole in mid-gap: neither directed walk can
	// cross it, but each penetrates k-1 bases into the hole window, so the
	// two partial walks overlap by k-2 bases — enough for patching (§4.8's
	// final method) and too little for any walk.
	const k = 21
	rng := xrt.NewPrng(11)
	g := genome.Random(rng, 700)
	left, right := g[:200], g[500:]
	gapSeq := g[200:500]
	const hole = 350 // k-mer window [hole, hole+k) will be uncovered
	var reads [][]byte
	for i := 150; i+25 <= 550; i++ {
		if i >= hole-4 && i <= hole {
			continue // removing these 25-mers uncovers exactly window `hole`
		}
		reads = append(reads, g[i:i+25])
	}
	gst := &gapState{left: left, right: right, est: len(gapSeq), reads: reads}
	opt := Options{}.withDefaults()
	opt.WalkK, opt.MaxWalkK = k, k // no k escalation
	m, seq, _ := closeGap(gst, opt)
	if m != Patched {
		t.Fatalf("expected patched closure, got %v", m)
	}
	if !bytes.Equal(seq, gapSeq) {
		t.Fatalf("patched closure (%d bases) != gap interior (%d bases)",
			len(seq), len(gapSeq))
	}
}

// Schedule perturbation: a seeded layer that injects deterministic
// *physical* delays at the synchronization points of an SPMD run — rank
// start, barrier arrival, and per-rank buffer flushes — without touching
// virtual time, communication statistics, or the ranks' algorithmic RNG
// streams. Sweeping PerturbPlan seeds explores adversarial goroutine
// interleavings of the speculative protocols built on top of xrt (the
// contig claim/abort traversal, the DHT freeze/thaw phase discipline)
// while every run remains reproducible: for a fixed plan each rank draws
// its delay sequence from a private generator in rank-local program
// order, so the delays themselves do not depend on scheduling.
//
// The intended use is metamorphic testing (see internal/verify): the
// assembly must be bit-identical under every perturbation seed, turning
// "no schedule-dependent results" into a property the race detector and
// CI exercise on every run. To reproduce a failure, re-run with the same
// Config (Ranks, Seed, Perturb) — the delay schedule is part of the
// configuration, not of the runtime's mood.
package xrt

import (
	"runtime"
	"time"
)

// PerturbPoint classifies where in the runtime a perturbation is applied.
type PerturbPoint int

const (
	// PerturbStart is drawn once per rank at the top of each Run phase,
	// jittering rank start times.
	PerturbStart PerturbPoint = iota
	// PerturbBarrier is drawn immediately before a rank arrives at a
	// barrier, reordering barrier arrival.
	PerturbBarrier
	// PerturbFlush is drawn before a rank drains one aggregation buffer
	// (the dht layer calls this), delaying per-rank flushes.
	PerturbFlush
)

// PerturbPlan configures deterministic schedule perturbation for a Team.
// The zero value disables perturbation. A non-zero Seed enables it with
// default jitter magnitudes; the *Ns fields cap the uniformly drawn delay
// per point class (0 = default).
type PerturbPlan struct {
	// Seed selects the delay schedule. 0 disables perturbation entirely.
	Seed int64
	// StartJitterNs caps the delay injected at each rank's entry into a
	// Run phase (default 200µs).
	StartJitterNs int64
	// BarrierJitterNs caps the delay injected before each barrier arrival
	// (default 50µs).
	BarrierJitterNs int64
	// FlushJitterNs caps the delay injected before each buffer flush
	// (default 20µs).
	FlushJitterNs int64
}

// Enabled reports whether the plan perturbs schedules at all.
func (p PerturbPlan) Enabled() bool { return p.Seed != 0 }

func (p PerturbPlan) withDefaults() PerturbPlan {
	if !p.Enabled() {
		return p
	}
	if p.StartJitterNs <= 0 {
		p.StartJitterNs = 200_000
	}
	if p.BarrierJitterNs <= 0 {
		p.BarrierJitterNs = 50_000
	}
	if p.FlushJitterNs <= 0 {
		p.FlushJitterNs = 20_000
	}
	return p
}

// perturbSeed derives the per-rank delay-stream seed. It is decoupled
// from the rank's algorithmic RNG seeding (Config.Seed) so that enabling
// perturbation cannot change any randomized algorithmic decision.
func perturbSeed(planSeed int64, rank int) int64 {
	return int64(Splitmix64(uint64(planSeed)^0x7e57ab1e) + uint64(rank)*0x9e3779b97f4a7c15)
}

// PerturbPoint injects the plan's delay for point class pt. It is a no-op
// when the team has no perturbation plan. Only physical time passes: the
// virtual clock, the communication statistics, and r.Rng() are untouched.
func (r *Rank) PerturbPoint(pt PerturbPoint) {
	if r.pert == nil {
		return
	}
	plan := &r.team.cfg.Perturb
	var max int64
	switch pt {
	case PerturbStart:
		max = plan.StartJitterNs
	case PerturbBarrier:
		max = plan.BarrierJitterNs
	default:
		max = plan.FlushJitterNs
	}
	if max <= 0 {
		return
	}
	d := int64(r.pert.Uint64() % uint64(max))
	spinDelay(d)
}

// spinDelay blocks for roughly ns of wall time. Short delays yield the
// processor instead of sleeping: the goal is to hand the scheduler
// different interleavings, not to burn precise wall time.
func spinDelay(ns int64) {
	switch {
	case ns < 2_000:
		for i := int64(0); i <= ns/500; i++ {
			runtime.Gosched()
		}
	default:
		time.Sleep(time.Duration(ns))
	}
}

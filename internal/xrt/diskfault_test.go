package xrt

import (
	"bytes"
	"math/bits"
	"testing"
)

func TestDiskFaultEnabled(t *testing.T) {
	cases := []struct {
		plan DiskFaultPlan
		want bool
	}{
		{DiskFaultPlan{}, false},
		{DiskFaultPlan{Seed: 7}, false},
		{DiskFaultPlan{Stage: "contig-generation"}, false},
		{DiskFaultPlan{Seed: 7, Stage: "contig-generation"}, true},
	}
	for _, c := range cases {
		if got := c.plan.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.plan, got, c.want)
		}
	}
	if k := (DiskFaultPlan{}).Kind(); k != DiskFaultNone {
		t.Errorf("disabled plan Kind() = %v, want none", k)
	}
}

// TestDiskFaultKindCycle pins the seed->kind mapping the sweeps rely
// on: four consecutive seeds cover all four damage kinds.
func TestDiskFaultKindCycle(t *testing.T) {
	want := map[int64]DiskFaultKind{
		21: DiskFaultBitFlip,
		22: DiskFaultDelete,
		23: DiskFaultWriteRefused,
		24: DiskFaultTornWrite,
	}
	seen := map[DiskFaultKind]bool{}
	for seed, k := range want {
		p := DiskFaultPlan{Seed: seed, Stage: "s"}
		if got := p.Kind(); got != k {
			t.Errorf("seed %d: Kind() = %v, want %v", seed, got, k)
		}
		seen[p.Kind()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("seeds 21..24 covered %d kinds, want 4", len(seen))
	}
}

func TestDiskFaultNonTargetPassthrough(t *testing.T) {
	seg := []byte("framed segment bytes")
	p := DiskFaultPlan{Seed: 21, Stage: "alignment"}
	out, kind := p.Apply("contig-generation", seg)
	if kind != DiskFaultNone {
		t.Fatalf("non-target stage injected %v", kind)
	}
	if !bytes.Equal(out, seg) {
		t.Fatalf("non-target stage altered the segment")
	}
}

func TestDiskFaultApplyDeterministic(t *testing.T) {
	seg := make([]byte, 4096)
	for i := range seg {
		seg[i] = byte(i * 31)
	}
	for seed := int64(21); seed <= 24; seed++ {
		p := DiskFaultPlan{Seed: seed, Stage: "s"}
		a, ka := p.Apply("s", seg)
		b, kb := p.Apply("s", seg)
		if ka != kb || !bytes.Equal(a, b) {
			t.Errorf("seed %d: Apply is not deterministic", seed)
		}
	}
}

func TestDiskFaultTornWrite(t *testing.T) {
	p := DiskFaultPlan{Seed: 24, Stage: "s"} // 1 + 24%4 = torn-write
	seg := make([]byte, 1000)
	for i := range seg {
		seg[i] = byte(i)
	}
	orig := append([]byte(nil), seg...)
	out, kind := p.Apply("s", seg)
	if kind != DiskFaultTornWrite {
		t.Fatalf("kind = %v", kind)
	}
	if len(out) < 1 || len(out) >= len(seg) {
		t.Fatalf("torn cut at %d, want in [1, %d)", len(out), len(seg))
	}
	if !bytes.Equal(out, seg[:len(out)]) {
		t.Fatalf("torn prefix differs from the original bytes")
	}
	if !bytes.Equal(seg, orig) {
		t.Fatalf("Apply mutated its input")
	}
	// Degenerate segments cannot be torn meaningfully; they vanish.
	if out, _ := p.Apply("s", []byte{1}); out != nil {
		t.Fatalf("1-byte torn write returned %v, want nil", out)
	}
}

func TestDiskFaultBitFlip(t *testing.T) {
	p := DiskFaultPlan{Seed: 21, Stage: "s"} // 1 + 21%4 = bit-flip
	seg := make([]byte, 1000)
	orig := append([]byte(nil), seg...)
	out, kind := p.Apply("s", seg)
	if kind != DiskFaultBitFlip {
		t.Fatalf("kind = %v", kind)
	}
	if len(out) != len(seg) {
		t.Fatalf("bit flip changed length: %d != %d", len(out), len(seg))
	}
	flipped := 0
	for i := range out {
		flipped += bits.OnesCount8(out[i] ^ seg[i])
	}
	if flipped != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", flipped)
	}
	if !bytes.Equal(seg, orig) {
		t.Fatalf("Apply mutated its input")
	}
}

func TestDiskFaultDeleteAndRefuse(t *testing.T) {
	seg := []byte("framed segment bytes")
	if out, kind := (DiskFaultPlan{Seed: 22, Stage: "s"}).Apply("s", seg); kind != DiskFaultDelete || out != nil {
		t.Fatalf("delete: out=%v kind=%v", out, kind)
	}
	if out, kind := (DiskFaultPlan{Seed: 23, Stage: "s"}).Apply("s", seg); kind != DiskFaultWriteRefused || out != nil {
		t.Fatalf("refuse: out=%v kind=%v", out, kind)
	}
}

func TestDiskFaultKindStrings(t *testing.T) {
	want := map[DiskFaultKind]string{
		DiskFaultNone:         "none",
		DiskFaultTornWrite:    "torn-write",
		DiskFaultBitFlip:      "bit-flip",
		DiskFaultDelete:       "delete",
		DiskFaultWriteRefused: "write-refused",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

package xrt

import "math"

// Prng is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Each rank owns one so that runs
// are reproducible for a fixed Config.Seed regardless of scheduling.
//
// Rank-stream guarantee (pinned by TestRankSeedDerivationPinned): rank i
// of a team with Config.Seed = s draws from NewPrng(s + i*0x9e3779b97f4a7c
// + 1). Because the four state words are derived by iterating Splitmix64 —
// a bijection on 64-bit integers — distinct seeds always produce distinct
// initial states, so the streams of any two ranks of one team are distinct
// for every rank count, and a rank's stream depends only on (s, i), never
// on scheduling, team size, or the perturbation plan. The derivation is
// additive, so the same 256-bit state does recur across *configurations*
// whose (s, i) collide — e.g. (s, i+1) and (s+0x9e3779b97f4a7c, i) — which
// is harmless within a run and only matters if callers assume two teams
// with nearby seeds have disjoint streams; seeds chosen more than ~4.4e16
// apart, or small integers (1, 2, 3, ...), never collide in practice
// because the stride is ≈ 4.4e16. Streams are full xoshiro256** sequences:
// overlap between distinct initial states is astronomically improbable
// (period 2^256 − 1).
type Prng struct {
	s [4]uint64
}

// NewPrng returns a generator seeded from seed via splitmix64.
func NewPrng(seed int64) *Prng {
	p := &Prng{}
	x := uint64(seed)
	for i := range p.s {
		x = Splitmix64(x)
		p.s[i] = x
	}
	// avoid the all-zero state
	if p.s[0]|p.s[1]|p.s[2]|p.s[3] == 0 {
		p.s[0] = 0x9e3779b97f4a7c15
	}
	return p
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (p *Prng) Uint64() uint64 {
	r := rotl(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl(p.s[3], 45)
	return r
}

// Intn returns a uniform int in [0, n). n must be positive.
func (p *Prng) Intn(n int) int {
	if n <= 0 {
		panic("xrt: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (p *Prng) Int63() int64 { return int64(p.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (p *Prng) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (p *Prng) NormFloat64() float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			// one value is discarded for simplicity
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (p *Prng) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Splitmix64 is the standard 64-bit finalizing mixer; it is also used as
// the uniform hash function throughout the library.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BlockRange splits n items into p nearly equal contiguous blocks and
// returns the half-open range assigned to block i.
func BlockRange(n, p, i int) (lo, hi int) {
	q, r := n/p, n%p
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package xrt

import "testing"

// rankStride is the per-rank seed stride NewTeam uses; the pinned tests
// below freeze both the constant and the derivation so that any change to
// rank seeding is a conscious, test-breaking decision (it would silently
// change every "deterministic" assembly output otherwise).
const rankStride = 0x9e3779b97f4a7c

// TestRankSeedDerivationPinned pins the exact rank-stream derivation:
// rank i of a team with Config.Seed = s draws from
// NewPrng(s + i*rankStride + 1). The golden values were produced by this
// implementation and must never change.
func TestRankSeedDerivationPinned(t *testing.T) {
	golden := []struct {
		seed          int64
		rank          int
		first, second uint64
	}{
		{0, 0, 0xc5883e370b0926c3, 0x021b74b80f71f81c},
		{0, 1, 0x047cbdba16183c9b, 0x4656dcabcd9448e4},
		{0, 2, 0x16aa7a217296ea3d, 0xeb187d14fe3e7d07},
		{1, 0, 0x2ab4f2e47129d653, 0x041e2f932e08041a},
		{1, 1, 0x7c99ae6369aa8a6d, 0x5d869ae2fe39f00d},
		{1, 2, 0x362de23bf617094c, 0x2dcd5789fbf7c3c7},
		{42, 0, 0x08296d422264a7fc, 0x24346f4aa082d870},
		{42, 1, 0x82d4cabcdde6822c, 0x6cd55bd8167724b7},
		{42, 2, 0xb2b1d1c36af90624, 0x69eaee712be86d42},
	}
	for _, g := range golden {
		p := NewPrng(g.seed + int64(g.rank)*rankStride + 1)
		if a, b := p.Uint64(), p.Uint64(); a != g.first || b != g.second {
			t.Errorf("seed %d rank %d: got (%#x, %#x), pinned (%#x, %#x)",
				g.seed, g.rank, a, b, g.first, g.second)
		}
	}
}

// TestTeamRankRngMatchesDerivation asserts the team wires exactly that
// derivation into each rank, for several team sizes and seeds.
func TestTeamRankRngMatchesDerivation(t *testing.T) {
	for _, seed := range []int64{0, 1, -9, 1 << 40} {
		for _, p := range []int{1, 3, 16} {
			team := NewTeam(Config{Ranks: p, Seed: seed})
			got := make([]uint64, p)
			team.Run(func(r *Rank) { got[r.ID] = r.Rng().Uint64() })
			for i := 0; i < p; i++ {
				want := NewPrng(seed + int64(i)*rankStride + 1).Uint64()
				if got[i] != want {
					t.Fatalf("seed %d ranks %d: rank %d drew %#x, derivation gives %#x",
						seed, p, i, got[i], want)
				}
			}
		}
	}
}

// TestRankStreamsIndependent checks stream independence across ranks: no
// two ranks of a large team share any prefix of their streams, and
// adjacent ranks' outputs are not correlated by construction (their seeds
// differ by a fixed stride, but splitmix64 initialization decorrelates
// the states).
func TestRankStreamsIndependent(t *testing.T) {
	const ranks, draws = 1024, 8
	for _, seed := range []int64{0, 1, 42, -1234567} {
		seen := make(map[uint64]int, ranks*draws)
		for i := 0; i < ranks; i++ {
			p := NewPrng(seed + int64(i)*rankStride + 1)
			for d := 0; d < draws; d++ {
				v := p.Uint64()
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed %d: ranks %d and %d emitted the same value %#x in their first %d draws",
						seed, prev, i, v, draws)
				}
				seen[v] = i
			}
		}
	}
}

// TestRankStreamsReproducibleAcrossTeams asserts a rank's stream depends
// only on (Config.Seed, rank) — not on team size, node grouping, or the
// perturbation plan.
func TestRankStreamsReproducibleAcrossTeams(t *testing.T) {
	draw := func(cfg Config, rank int) []uint64 {
		team := NewTeam(cfg)
		out := make([][]uint64, cfg.Ranks)
		team.Run(func(r *Rank) {
			vs := make([]uint64, 4)
			for i := range vs {
				vs[i] = r.Rng().Uint64()
			}
			out[r.ID] = vs
		})
		return out[rank]
	}
	base := draw(Config{Ranks: 4, Seed: 7}, 2)
	for _, cfg := range []Config{
		{Ranks: 8, Seed: 7},
		{Ranks: 16, Seed: 7, RanksPerNode: 2},
		{Ranks: 4, Seed: 7, Perturb: PerturbPlan{Seed: 99}},
	} {
		got := draw(cfg, 2)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("config %+v: rank 2 stream diverged at draw %d: %#x != %#x",
					cfg, i, got[i], base[i])
			}
		}
	}
}

package xrt

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTeamRunAllRanksExecute(t *testing.T) {
	for _, p := range []int{1, 2, 7, 24, 48} {
		team := NewTeam(Config{Ranks: p})
		var hits int64
		seen := make([]int32, p)
		team.Run(func(r *Rank) {
			atomic.AddInt64(&hits, 1)
			atomic.AddInt32(&seen[r.ID], 1)
		})
		if hits != int64(p) {
			t.Fatalf("ranks=%d: got %d executions", p, hits)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("rank %d executed %d times", i, s)
			}
		}
	}
}

func TestLocalityClassification(t *testing.T) {
	team := NewTeam(Config{Ranks: 48, RanksPerNode: 24})
	team.Run(func(r *Rank) {
		if r.ID != 0 {
			return
		}
		if got := r.Locality(0); got != Local {
			t.Errorf("self locality = %v", got)
		}
		if got := r.Locality(23); got != OnNode {
			t.Errorf("rank 23 locality = %v, want on-node", got)
		}
		if got := r.Locality(24); got != OffNode {
			t.Errorf("rank 24 locality = %v, want off-node", got)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	team := NewTeam(Config{Ranks: 8, RanksPerNode: 4})
	team.Run(func(r *Rank) {
		r.Charge(float64(r.ID) * 1000)
		r.Barrier()
		if r.ClockNs() < 7000 {
			t.Errorf("rank %d clock %f below barrier max", r.ID, r.ClockNs())
		}
	})
}

func TestVirtualTimeIsCriticalPath(t *testing.T) {
	team := NewTeam(Config{Ranks: 4})
	ps := team.Run(func(r *Rank) {
		r.Charge(float64(r.ID+1) * 1e6)
	})
	if ps.Virtual.Microseconds() != 4000 {
		t.Fatalf("virtual = %v, want 4ms (max over ranks)", ps.Virtual)
	}
}

func TestForeignChargesCount(t *testing.T) {
	team := NewTeam(Config{Ranks: 2})
	ps := team.Run(func(r *Rank) {
		if r.ID == 0 {
			r.ChargeForeign(1, 5e6)
		}
	})
	if ps.Virtual.Milliseconds() != 5 {
		t.Fatalf("virtual = %v, want 5ms from foreign charge", ps.Virtual)
	}
}

func TestAllReduceInt64(t *testing.T) {
	team := NewTeam(Config{Ranks: 9})
	team.Run(func(r *Rank) {
		sum := r.AllReduceInt64(int64(r.ID), func(a, b int64) int64 { return a + b })
		if sum != 36 {
			t.Errorf("rank %d: sum = %d, want 36", r.ID, sum)
		}
		mx := r.AllReduceInt64(int64(r.ID), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if mx != 8 {
			t.Errorf("rank %d: max = %d, want 8", r.ID, mx)
		}
	})
}

func TestAllReduceRepeatedCalls(t *testing.T) {
	team := NewTeam(Config{Ranks: 5})
	team.Run(func(r *Rank) {
		for iter := 0; iter < 50; iter++ {
			v := int64(r.ID + iter)
			want := int64(0+1+2+3+4) + int64(5*iter)
			got := r.AllReduceInt64(v, func(a, b int64) int64 { return a + b })
			if got != want {
				t.Errorf("iter %d rank %d: got %d want %d", iter, r.ID, got, want)
				return
			}
		}
	})
}

func TestExclusivePrefixSum(t *testing.T) {
	team := NewTeam(Config{Ranks: 6})
	team.Run(func(r *Rank) {
		off, tot := r.ExclusivePrefixSum(int64(r.ID + 1))
		want := int64(0)
		for i := 0; i < r.ID; i++ {
			want += int64(i + 1)
		}
		if off != want {
			t.Errorf("rank %d: offset %d want %d", r.ID, off, want)
		}
		if tot != 21 {
			t.Errorf("rank %d: total %d want 21", r.ID, tot)
		}
	})
}

func TestBroadcastAndAllGather(t *testing.T) {
	team := NewTeam(Config{Ranks: 4})
	team.Run(func(r *Rank) {
		v := r.Broadcast(2, r.ID*10)
		if v.(int) != 20 {
			t.Errorf("rank %d: broadcast got %v", r.ID, v)
		}
		all := r.AllGather(r.ID * r.ID)
		for i, a := range all {
			if a.(int) != i*i {
				t.Errorf("rank %d: allgather[%d] = %v", r.ID, i, a)
			}
		}
	})
}

func TestCommChargesAndStats(t *testing.T) {
	team := NewTeam(Config{Ranks: 48, RanksPerNode: 24})
	team.Run(func(r *Rank) {
		if r.ID != 0 {
			return
		}
		r.ChargeLookup(0, 8)  // local
		r.ChargeLookup(5, 8)  // on-node
		r.ChargeLookup(30, 8) // off-node
		r.ChargeStoreBatch(30, 100, 800)
	})
	s := team.AggStats()
	if s.LocalLookups != 1 || s.OnNodeLookups != 1 || s.OffNodeLookups != 1 {
		t.Fatalf("lookup classification wrong: %+v", s)
	}
	if s.OffNodeMsgs != 2 { // one lookup + one batched store
		t.Fatalf("off-node msgs = %d, want 2", s.OffNodeMsgs)
	}
	if f := s.OffNodeLookupFrac(); f < 0.33 || f > 0.34 {
		t.Fatalf("off-node lookup frac = %f", f)
	}
}

func TestIOSaturation(t *testing.T) {
	// With aggregate bandwidth saturated, doubling ranks should not reduce
	// I/O time for a fixed total volume.
	cost := CostModel{IOAggBytesPerSec: 1e9, IORankBytesPerSec: 1e9}
	total := int64(1 << 30)
	timeFor := func(p int) float64 {
		team := NewTeam(Config{Ranks: p, Cost: cost})
		ps := team.Run(func(r *Rank) { r.ChargeIORead(total / int64(p)) })
		return ps.Virtual.Seconds()
	}
	t4, t8 := timeFor(4), timeFor(8)
	if t8 < t4*0.95 {
		t.Fatalf("I/O time shrank under saturation: p=4 %fs, p=8 %fs", t4, t8)
	}
}

func TestIOScalingBeforeSaturation(t *testing.T) {
	cost := CostModel{IOAggBytesPerSec: 1e12, IORankBytesPerSec: 1e8, IOLatencyNs: 1}
	total := int64(1 << 28)
	timeFor := func(p int) float64 {
		team := NewTeam(Config{Ranks: p, Cost: cost})
		ps := team.Run(func(r *Rank) { r.ChargeIORead(total / int64(p)) })
		return ps.Virtual.Seconds()
	}
	t2, t8 := timeFor(2), timeFor(8)
	if t8 > t2/3 {
		t.Fatalf("I/O did not scale below saturation: p=2 %fs, p=8 %fs", t2, t8)
	}
}

func TestManyRanksRun(t *testing.T) {
	team := NewTeam(Config{Ranks: 512})
	var n int64
	team.Run(func(r *Rank) {
		r.Barrier()
		atomic.AddInt64(&n, 1)
	})
	if n != 512 {
		t.Fatalf("got %d executions", n)
	}
}

func TestPrngDeterminism(t *testing.T) {
	a, b := NewPrng(42), NewPrng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewPrng(43)
	same := 0
	a = NewPrng(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestPrngUniformish(t *testing.T) {
	p := NewPrng(7)
	var buckets [10]int
	n := 100000
	for i := 0; i < n; i++ {
		buckets[p.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d", i, b, n)
		}
	}
}

func TestPrngPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		p := NewPrng(seed)
		n := 1 + int(uint64(seed)%97)
		perm := p.Perm(n)
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRangePartitionsExactly(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n, p := int(n16), int(p8)%64+1
		covered := 0
		prevHi := 0
		for i := 0; i < p; i++ {
			lo, hi := BlockRange(n, p, i)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitmixAvalanche(t *testing.T) {
	// flipping one input bit should change ~half the output bits
	x := uint64(0x12345678)
	base := Splitmix64(x)
	for bit := 0; bit < 64; bit += 7 {
		d := base ^ Splitmix64(x^(1<<bit))
		n := 0
		for d != 0 {
			d &= d - 1
			n++
		}
		if n < 10 || n > 54 {
			t.Fatalf("bit %d: only %d output bits changed", bit, n)
		}
	}
}

func TestStatsSubAndAdd(t *testing.T) {
	a := CommStats{LocalLookups: 10, OffNodeMsgs: 5, IOBytes: 100}
	b := CommStats{LocalLookups: 4, OffNodeMsgs: 2, IOBytes: 60}
	d := a.Sub(b)
	if d.LocalLookups != 6 || d.OffNodeMsgs != 3 || d.IOBytes != 40 {
		t.Fatalf("sub wrong: %+v", d)
	}
	b.Add(d)
	if b != a {
		t.Fatalf("add(sub) != original: %+v vs %+v", b, a)
	}
}

func TestNextIDUnique(t *testing.T) {
	team := NewTeam(Config{Ranks: 8})
	seen := make(map[int64]bool)
	var mu atomic.Int64
	ids := make([]int64, 8*100)
	team.Run(func(r *Rank) {
		for i := 0; i < 100; i++ {
			ids[mu.Add(1)-1] = team.NextID()
		}
	})
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

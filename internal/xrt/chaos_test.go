package xrt

import "testing"

// chaosWorkload drives every charge class the protocol hooks into —
// remote lookups, aggregated store batches, direct foreign charges, and
// collectives — with a deterministic per-rank program order.
func chaosWorkload(r *Rank) {
	p := r.N()
	for i := 0; i < 200; i++ {
		r.ChargeLookup((r.ID+1+i)%p, 64)
		if i%10 == 0 {
			r.ChargeStoreBatch((r.ID+2)%p, 16, 512)
		}
		if i%25 == 0 {
			r.ChargeForeign((r.ID+3)%p, 1_000)
		}
	}
	r.Barrier()
	r.AllReduceInt64(int64(r.ID), func(a, b int64) int64 { return a + b })
}

func runChaos(ranks int, chaos MessageFaultPlan, perturb PerturbPlan) (*Team, PhaseStats) {
	team := NewTeam(Config{Ranks: ranks, RanksPerNode: 4, Seed: 3, Chaos: chaos, Perturb: perturb})
	st := team.Run(chaosWorkload)
	return team, st
}

// TestChaosDisabledIsFree: without a plan the reliability counters stay
// zero and the run is byte-for-byte the baseline.
func TestChaosDisabledIsFree(t *testing.T) {
	team, _ := runChaos(8, MessageFaultPlan{}, PerturbPlan{})
	s := team.AggStats()
	if s.Drops != 0 || s.Retries != 0 || s.Dups != 0 || s.RedeliveredBytes != 0 {
		t.Fatalf("reliability counters nonzero without a plan: %+v", s)
	}
	if team.ChaosFired() {
		t.Fatal("ChaosFired on a team without a plan")
	}
}

// TestChaosDeterminism: for a fixed chaos seed, two runs produce
// identical virtual time and identical per-rank statistics — the
// drop/dup schedule is part of the configuration.
func TestChaosDeterminism(t *testing.T) {
	plan := MessageFaultPlan{Seed: 101, DropRate: 0.2, DupRate: 0.05}
	teamA, stA := runChaos(8, plan, PerturbPlan{})
	teamB, stB := runChaos(8, plan, PerturbPlan{})
	if stA.Virtual != stB.Virtual {
		t.Fatalf("virtual time differs across identical chaos runs: %v vs %v", stA.Virtual, stB.Virtual)
	}
	for i := 0; i < 8; i++ {
		if teamA.RankStats(i) != teamB.RankStats(i) {
			t.Fatalf("rank %d stats differ across identical chaos runs:\n%+v\n%+v",
				i, teamA.RankStats(i), teamB.RankStats(i))
		}
	}
	s := teamA.AggStats()
	if s.Drops == 0 || s.Retries == 0 || s.RedeliveredBytes == 0 {
		t.Fatalf("drop rate 0.2 produced no retry traffic: %+v", s)
	}
	if s.Dups == 0 {
		t.Fatalf("dup rate 0.05 plus lost acks produced no duplicate deliveries: %+v", s)
	}

	// A different seed draws a different schedule.
	teamC, _ := runChaos(8, MessageFaultPlan{Seed: 102, DropRate: 0.2, DupRate: 0.05}, PerturbPlan{})
	if teamC.AggStats() == s {
		t.Fatal("adjacent chaos seeds produced identical aggregate stats")
	}
}

// TestChaosLeavesAlgorithmicRngUntouched: the chaos stream is decoupled
// from Config.Seed's per-rank RNGs, so enabling message faults must not
// shift any randomized algorithmic decision.
func TestChaosLeavesAlgorithmicRngUntouched(t *testing.T) {
	draw := func(chaos MessageFaultPlan) [][]uint64 {
		team := NewTeam(Config{Ranks: 4, RanksPerNode: 2, Seed: 3, Chaos: chaos})
		out := make([][]uint64, 4)
		team.Run(func(r *Rank) {
			for i := 0; i < 50; i++ {
				r.ChargeLookup((r.ID+1)%4, 64)
				out[r.ID] = append(out[r.ID], r.Rng().Uint64())
			}
		})
		return out
	}
	base := draw(MessageFaultPlan{})
	chaos := draw(MessageFaultPlan{Seed: 55, DropRate: 0.3, DupRate: 0.1})
	for i := range base {
		for j := range base[i] {
			if base[i][j] != chaos[i][j] {
				t.Fatalf("rank %d draw %d: algorithmic RNG diverged under chaos (%d vs %d)",
					i, j, base[i][j], chaos[i][j])
			}
		}
	}
}

// TestChaosOnlyAddsTimeAndCounters: enabling the plan leaves every
// pre-existing statistic (lookups, messages, bytes by locality, cache
// counters) identical to the fault-free run — retransmissions are
// modelled as time and reliability counters, not as extra traffic in the
// locality statistics the paper's tables are built from.
func TestChaosOnlyAddsTimeAndCounters(t *testing.T) {
	base, stBase := runChaos(8, MessageFaultPlan{}, PerturbPlan{})
	chaos, stChaos := runChaos(8, MessageFaultPlan{Seed: 101, DropRate: 0.2, DupRate: 0.05}, PerturbPlan{})
	for i := 0; i < 8; i++ {
		b, c := base.RankStats(i), chaos.RankStats(i)
		// Zero the reliability counters on the chaos side; the rest must match.
		c.Drops, c.Retries, c.Dups, c.RedeliveredBytes = 0, 0, 0, 0
		if b != c {
			t.Fatalf("rank %d locality stats changed under chaos:\nbase  %+v\nchaos %+v", i, b, c)
		}
	}
	if stChaos.Virtual <= stBase.Virtual {
		t.Fatalf("chaos run not slower than baseline: %v <= %v", stChaos.Virtual, stBase.Virtual)
	}
}

// TestChaosComposesWithPerturb: the chaos schedule is drawn in rank-local
// program order, so layering schedule perturbation on top must not change
// virtual time or any statistic for this deterministic workload.
func TestChaosComposesWithPerturb(t *testing.T) {
	plan := MessageFaultPlan{Seed: 101, DropRate: 0.1, DupRate: 0.02}
	teamA, stA := runChaos(8, plan, PerturbPlan{})
	teamB, stB := runChaos(8, plan, PerturbPlan{Seed: 9})
	if stA.Virtual != stB.Virtual {
		t.Fatalf("perturbation changed chaos virtual time: %v vs %v", stA.Virtual, stB.Virtual)
	}
	for i := 0; i < 8; i++ {
		if teamA.RankStats(i) != teamB.RankStats(i) {
			t.Fatalf("rank %d stats differ under perturbation:\n%+v\n%+v",
				i, teamA.RankStats(i), teamB.RankStats(i))
		}
	}
}

// TestChaosRetryExhaustion: a channel that never delivers (drop rate 1)
// exhausts its budget and unwinds the team with a typed
// *RetryExhaustedError; the team is dead afterwards.
func TestChaosRetryExhaustion(t *testing.T) {
	team := NewTeam(Config{Ranks: 4, RanksPerNode: 2, Seed: 3,
		Chaos: MessageFaultPlan{Seed: 7, DropRate: 1.0, RetryBudget: 3}})
	reached := make([]bool, 4)
	ree := runWithRetryRecover(t, func() {
		team.Run(func(r *Rank) {
			for i := 0; i < 100; i++ {
				r.ChargeLookup((r.ID+1)%4, 64)
				if i%10 == 0 {
					r.Barrier()
				}
			}
			reached[r.ID] = true
		})
	})
	if ree == nil {
		t.Fatal("Run returned normally, want *RetryExhaustedError panic")
	}
	if ree.Seed != 7 || ree.Attempts != 4 {
		t.Fatalf("RetryExhaustedError = %+v, want seed 7, attempts = budget+1 = 4", ree)
	}
	if ree.Src == ree.Dst || ree.Src < 0 || ree.Src >= 4 || ree.Dst < 0 || ree.Dst >= 4 {
		t.Fatalf("implausible channel in %+v", ree)
	}
	if !team.ChaosFired() {
		t.Fatal("ChaosFired() = false after retry exhaustion")
	}
	for id, ok := range reached {
		if ok {
			t.Fatalf("rank %d completed the body despite retry exhaustion", id)
		}
	}
	// The dead team surfaces the same typed error on the next phase.
	ree2 := runWithRetryRecover(t, func() {
		team.Run(func(r *Rank) { r.Charge(1) })
	})
	if ree2 == nil || ree2.Src != ree.Src || ree2.Seq != ree.Seq {
		t.Fatalf("post-trip Run: got %+v, want same *RetryExhaustedError", ree2)
	}
}

// runWithRetryRecover runs fn and returns the *RetryExhaustedError it
// panics with (nil if it returns normally).
func runWithRetryRecover(t *testing.T, fn func()) (ree *RetryExhaustedError) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			var ok bool
			if ree, ok = p.(*RetryExhaustedError); !ok {
				t.Fatalf("panic value %T (%v), want *RetryExhaustedError", p, p)
			}
		}
	}()
	fn()
	return nil
}

// TestDedupWindowExactlyOnce covers the window invariants directly:
// first deliveries admit, retransmissions and below-window stragglers do
// not, and in-window reordering stays exactly-once.
func TestDedupWindowExactlyOnce(t *testing.T) {
	w := NewDedupWindow(8)
	for seq := uint64(0); seq < 100; seq++ {
		if !w.Admit(seq) {
			t.Fatalf("first delivery of %d rejected", seq)
		}
		if w.Admit(seq) {
			t.Fatalf("duplicate of %d admitted", seq)
		}
	}
	// Below the window: assumed already applied.
	if w.Admit(3) {
		t.Fatal("straggler duplicate far below the window admitted")
	}
	// In-window reordering: deliver out of order, then duplicate each.
	w2 := NewDedupWindow(8)
	order := []uint64{2, 0, 1, 5, 3, 4, 6, 7}
	for _, seq := range order {
		if !w2.Admit(seq) {
			t.Fatalf("reordered first delivery of %d rejected", seq)
		}
	}
	for _, seq := range order {
		if w2.Admit(seq) {
			t.Fatalf("duplicate of reordered %d admitted", seq)
		}
	}
}

// TestChaosSeedStreamsDecorrelated: per-rank chaos streams must differ
// from each other and from the same rank's algorithmic stream.
func TestChaosSeedStreamsDecorrelated(t *testing.T) {
	a := NewPrng(chaosSeed(9, 0))
	b := NewPrng(chaosSeed(9, 1))
	alg := NewPrng(9 + 0*0x9e3779b97f4a7c + 1)
	same := 0
	for i := 0; i < 64; i++ {
		x := a.Uint64()
		if x == b.Uint64() {
			same++
		}
		if x == alg.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("chaos streams collide %d times in 64 draws", same)
	}
}

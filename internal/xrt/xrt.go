// Package xrt implements the execution runtime that stands in for the
// UPC/PGAS layer used by the original HipMer. A Team is a set of SPMD
// ranks, each backed by a goroutine, grouped into simulated nodes. All
// inter-rank operations go through the team so that every communication
// event can be classified (local, on-node, off-node), counted, and charged
// to a deterministic virtual clock. The algorithms built on top of xrt run
// for real — only the passage of time is modelled.
//
// Virtual time: each rank owns a clock advanced by calibrated per-event
// costs (CostModel). A phase's virtual duration is the maximum clock
// advance over all ranks (the BSP critical path). Barriers synchronize all
// clocks to the maximum, exactly as a real barrier would.
package xrt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes a team of SPMD ranks.
type Config struct {
	// Ranks is the number of SPMD ranks ("cores" in the paper's terms).
	Ranks int
	// RanksPerNode groups ranks into simulated nodes; communication between
	// ranks of the same node is cheaper than off-node communication.
	// Edison (the paper's machine) has 24 cores per node. Defaults to 24.
	RanksPerNode int
	// Cost is the virtual-time cost model. Zero value means DefaultCostModel.
	Cost CostModel
	// Seed seeds the per-rank deterministic RNGs. Each rank derives an
	// independent stream (see NewTeam); for a fixed Seed every randomized
	// algorithmic decision is reproducible regardless of scheduling.
	Seed int64
	// Perturb, when enabled (non-zero Seed), injects deterministic
	// physical delays at rank starts, barrier arrivals, and buffer
	// flushes, so tests can sweep schedules while asserting bit-identical
	// output. It never affects virtual time, statistics, or Seed's RNG
	// streams.
	Perturb PerturbPlan
	// Chaos, when enabled (non-zero Seed), simulates a lossy, duplicating
	// network under every remote operation and the reliable-channel
	// protocol that absorbs it (see chaos.go). It adds deterministic
	// virtual time and retry counters but never changes what the
	// operations apply, so assemblies stay bit-identical to a fault-free
	// run.
	Chaos MessageFaultPlan
}

// CostModel holds calibrated virtual-time costs, all in nanoseconds unless
// stated otherwise. The defaults are loosely calibrated to the paper's
// Cray XC30 (Aries interconnect, Lustre file system) so that the *shape*
// of the scaling results is reproduced; absolute values are not claimed.
type CostModel struct {
	// LocalOpNs is the cost of a hash-table operation on rank-local data.
	LocalOpNs float64
	// OnNodeMsgNs is the latency of a message between ranks on one node.
	OnNodeMsgNs float64
	// OffNodeMsgNs is the latency of a message crossing nodes.
	OffNodeMsgNs float64
	// OnNodeByteNs / OffNodeByteNs are the per-byte bandwidth terms.
	OnNodeByteNs  float64
	OffNodeByteNs float64
	// ItemNs is the generic per-item compute cost (processing one k-mer,
	// one base, one alignment seed, ...).
	ItemNs float64
	// IOAggBytesPerSec caps the aggregate file-system bandwidth; per-rank
	// I/O bandwidth is IOAggBytesPerSec/min(Ranks, IOSaturation ranks).
	IOAggBytesPerSec float64
	// IORankBytesPerSec is the bandwidth a single rank can draw by itself.
	IORankBytesPerSec float64
	// IOLatencyNs is the fixed per-I/O-phase latency.
	IOLatencyNs float64
}

// DefaultCostModel returns the calibration used by the experiment
// harness. Message costs model the per-operation software overhead of
// pipelined one-sided communication (UPC gets/puts overlap in flight, so
// sustained cost per operation is far below the wire latency); the
// on-node/off-node ratio follows the paper's observation that intra-node
// accesses are much cheaper than off-node ones. I/O uses Edison's real
// Lustre /scratch3 figures (72 GB/s aggregate, ~75 MB/s per reading
// stream); experiment configurations lower the aggregate cap so that
// saturation lands inside their scaled-down core sweeps, as it did near
// 960 cores on the real machine.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalOpNs:         60,
		OnNodeMsgNs:       150,
		OffNodeMsgNs:      450,
		OnNodeByteNs:      0.05,
		OffNodeByteNs:     0.15,
		ItemNs:            45,
		IOAggBytesPerSec:  72e9,
		IORankBytesPerSec: 75e6,
		IOLatencyNs:       3e5,
	}
}

func (c CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if c.LocalOpNs == 0 {
		c.LocalOpNs = d.LocalOpNs
	}
	if c.OnNodeMsgNs == 0 {
		c.OnNodeMsgNs = d.OnNodeMsgNs
	}
	if c.OffNodeMsgNs == 0 {
		c.OffNodeMsgNs = d.OffNodeMsgNs
	}
	if c.OnNodeByteNs == 0 {
		c.OnNodeByteNs = d.OnNodeByteNs
	}
	if c.OffNodeByteNs == 0 {
		c.OffNodeByteNs = d.OffNodeByteNs
	}
	if c.ItemNs == 0 {
		c.ItemNs = d.ItemNs
	}
	if c.IOAggBytesPerSec == 0 {
		c.IOAggBytesPerSec = d.IOAggBytesPerSec
	}
	if c.IORankBytesPerSec == 0 {
		c.IORankBytesPerSec = d.IORankBytesPerSec
	}
	if c.IOLatencyNs == 0 {
		c.IOLatencyNs = d.IOLatencyNs
	}
	return c
}

// Locality classifies a communication event by where its target lives.
type Locality int

const (
	// Local means the target data lives on the calling rank.
	Local Locality = iota
	// OnNode means the target rank shares a node with the caller.
	OnNode
	// OffNode means the target rank is on another node.
	OffNode
)

func (l Locality) String() string {
	switch l {
	case Local:
		return "local"
	case OnNode:
		return "on-node"
	default:
		return "off-node"
	}
}

// CommStats counts communication events issued by one rank. Lookup
// counters record the locality of read operations (the quantity reported
// in the paper's Table 2); message counters record transfers, and byte
// counters record traffic volume. Cache counters record software-cache
// activity in front of remote lookups: a hit is a remote read served
// rank-locally (it appears here instead of in the lookup counters — the
// locality win next to Table 2), a miss is a remote read that also filled
// a cache slot.
type CommStats struct {
	LocalLookups   int64
	OnNodeLookups  int64
	OffNodeLookups int64
	LocalStores    int64
	OnNodeMsgs     int64
	OffNodeMsgs    int64
	OnNodeBytes    int64
	OffNodeBytes   int64
	IOBytes        int64
	IOWriteBytes   int64
	CacheHits      int64
	CacheMisses    int64
	// Reliability-layer counters, nonzero only under a MessageFaultPlan
	// (see chaos.go): transmissions lost (message or ack), retransmissions
	// issued, duplicate deliveries discarded by the dedup window, and the
	// payload bytes carried by retransmissions and duplicates.
	Drops            int64
	Retries          int64
	Dups             int64
	RedeliveredBytes int64
	// Storage-fault counters, nonzero only under a DiskFaultPlan (see
	// diskfault.go): checkpoint segments damaged by an injected storage
	// fault, and the manifest bytes a later scrub pass dropped back to
	// recomputation while healing the damage.
	DiskFaults         int64
	ScrubRepairedBytes int64
}

// Add accumulates o into s.
func (s *CommStats) Add(o CommStats) {
	s.LocalLookups += o.LocalLookups
	s.OnNodeLookups += o.OnNodeLookups
	s.OffNodeLookups += o.OffNodeLookups
	s.LocalStores += o.LocalStores
	s.OnNodeMsgs += o.OnNodeMsgs
	s.OffNodeMsgs += o.OffNodeMsgs
	s.OnNodeBytes += o.OnNodeBytes
	s.OffNodeBytes += o.OffNodeBytes
	s.IOBytes += o.IOBytes
	s.IOWriteBytes += o.IOWriteBytes
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Drops += o.Drops
	s.Retries += o.Retries
	s.Dups += o.Dups
	s.RedeliveredBytes += o.RedeliveredBytes
	s.DiskFaults += o.DiskFaults
	s.ScrubRepairedBytes += o.ScrubRepairedBytes
}

// Sub returns s - o, used for per-phase deltas.
func (s CommStats) Sub(o CommStats) CommStats {
	return CommStats{
		LocalLookups:       s.LocalLookups - o.LocalLookups,
		OnNodeLookups:      s.OnNodeLookups - o.OnNodeLookups,
		OffNodeLookups:     s.OffNodeLookups - o.OffNodeLookups,
		LocalStores:        s.LocalStores - o.LocalStores,
		OnNodeMsgs:         s.OnNodeMsgs - o.OnNodeMsgs,
		OffNodeMsgs:        s.OffNodeMsgs - o.OffNodeMsgs,
		OnNodeBytes:        s.OnNodeBytes - o.OnNodeBytes,
		OffNodeBytes:       s.OffNodeBytes - o.OffNodeBytes,
		IOBytes:            s.IOBytes - o.IOBytes,
		IOWriteBytes:       s.IOWriteBytes - o.IOWriteBytes,
		CacheHits:          s.CacheHits - o.CacheHits,
		CacheMisses:        s.CacheMisses - o.CacheMisses,
		Drops:              s.Drops - o.Drops,
		Retries:            s.Retries - o.Retries,
		Dups:               s.Dups - o.Dups,
		RedeliveredBytes:   s.RedeliveredBytes - o.RedeliveredBytes,
		DiskFaults:         s.DiskFaults - o.DiskFaults,
		ScrubRepairedBytes: s.ScrubRepairedBytes - o.ScrubRepairedBytes,
	}
}

// Lookups returns the total number of lookups across localities.
func (s CommStats) Lookups() int64 {
	return s.LocalLookups + s.OnNodeLookups + s.OffNodeLookups
}

// Msgs returns the total number of messages sent (on-node + off-node).
func (s CommStats) Msgs() int64 { return s.OnNodeMsgs + s.OffNodeMsgs }

// Bytes returns the total network traffic volume (on-node + off-node).
func (s CommStats) Bytes() int64 { return s.OnNodeBytes + s.OffNodeBytes }

// BytesPerMsg returns the mean message size, 0 when no messages were
// sent. Like every derived-rate helper it must stay finite on empty
// deltas (an empty-stage span subtracts identical snapshots), so a zero
// denominator yields 0, never NaN or Inf.
func (s CommStats) BytesPerMsg() float64 {
	m := s.Msgs()
	if m == 0 {
		return 0
	}
	return float64(s.Bytes()) / float64(m)
}

// OffNodeLookupFrac returns the fraction of lookups that crossed nodes.
func (s CommStats) OffNodeLookupFrac() float64 {
	t := s.Lookups()
	if t == 0 {
		return 0
	}
	return float64(s.OffNodeLookups) / float64(t)
}

// CacheHitRate returns the fraction of software-cached remote reads that
// hit (0 when no cached table was read).
func (s CommStats) CacheHitRate() float64 {
	t := s.CacheHits + s.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(t)
}

// Rank is the per-goroutine handle inside a Team.Run body. The clock and
// stats fields are owned by the rank's goroutine; other ranks may add
// "foreign" charges (work they enqueue on this rank) through atomic
// counters that are folded in at synchronization points.
type Rank struct {
	ID   int
	team *Team

	clockNs   float64 // owner-written virtual clock
	workNs    float64 // cumulative charged work; never synchronized (see WorkNs)
	stats     CommStats
	foreignNs atomic.Int64 // work charged to this rank by other ranks
	rng       *Prng
	pert      *Prng // delay stream; nil unless Config.Perturb is enabled

	// chaos is the message-fault decision stream and chans the per-peer
	// reliable-channel state; both nil unless Config.Chaos is enabled.
	// Owned by the rank's goroutine (deliveries are simulated sender-side).
	chaos *Prng
	chans []chanState

	// faultCD counts down charge events until this rank's injected crash;
	// 0 means this rank is not the armed fault's victim (see fault.go).
	// Only touched from the rank's own goroutine while a fault is armed.
	faultCD int64
}

// advance charges ns of work: the virtual clock moves, and the rank's
// busy-time accumulator moves with it. Barriers later synchronize the
// clock to the team maximum but never touch workNs, so per-span workNs
// deltas expose the per-rank load imbalance that clock synchronization
// hides.
func (r *Rank) advance(ns float64) {
	r.clockNs += ns
	r.workNs += ns
	if r.team.faultOn {
		r.faultPoint()
	}
}

// advanceRaw moves the clock without visiting the fault hook. It is the
// entry point for charges applied to a rank by the orchestrator or by
// barrier epilogues (foldForeign): an injected crash must fire on the
// victim's own goroutine — where panicking unwinds the victim's stack —
// never inside another goroutine's barrier epilogue.
func (r *Rank) advanceRaw(ns float64) {
	r.clockNs += ns
	r.workNs += ns
}

// Team returns the team this rank belongs to.
func (r *Rank) Team() *Team { return r.team }

// N returns the number of ranks in the team.
func (r *Rank) N() int { return r.team.cfg.Ranks }

// Node returns the simulated node index hosting this rank.
func (r *Rank) Node() int { return r.ID / r.team.cfg.RanksPerNode }

// Rng returns the rank's deterministic random source.
func (r *Rank) Rng() *Prng { return r.rng }

// Locality classifies the placement of rank dst relative to the caller.
func (r *Rank) Locality(dst int) Locality {
	if dst == r.ID {
		return Local
	}
	if dst/r.team.cfg.RanksPerNode == r.Node() {
		return OnNode
	}
	return OffNode
}

// Charge advances the rank's virtual clock by ns nanoseconds.
func (r *Rank) Charge(ns float64) { r.advance(ns) }

// ChargeItems charges the generic per-item compute cost for n items.
func (r *Rank) ChargeItems(n int) { r.advance(float64(n) * r.team.cost.ItemNs) }

// ChargeForeign charges ns of work to another rank (e.g. the owner of a
// hash-table shard processing items this rank sent it). The foreign
// accumulator is atomic, but the call must come from r's own goroutine
// (it draws from r's chaos stream under a MessageFaultPlan).
func (r *Rank) ChargeForeign(dst int, ns float64) {
	r.chaosPoint(dst, 0)
	r.chargeForeignRaw(dst, ns)
}

// chargeForeignRaw is ChargeForeign without the message-fault protocol,
// for charges that ride on an already-delivered message (a store batch's
// per-item apply cost must not roll a second drop decision).
func (r *Rank) chargeForeignRaw(dst int, ns float64) {
	r.team.ranks[dst].foreignNs.Add(int64(ns))
}

// ChargeLookup records a read of one item of the given size whose home is
// rank dst, charging latency and classifying the event.
func (r *Rank) ChargeLookup(dst int, bytes int) {
	r.chaosPoint(dst, bytes)
	c := &r.team.cost
	switch r.Locality(dst) {
	case Local:
		r.stats.LocalLookups++
		r.advance(c.LocalOpNs)
	case OnNode:
		r.stats.OnNodeLookups++
		r.stats.OnNodeMsgs++
		r.stats.OnNodeBytes += int64(bytes)
		r.advance(c.OnNodeMsgNs + float64(bytes)*c.OnNodeByteNs)
	default:
		r.stats.OffNodeLookups++
		r.stats.OffNodeMsgs++
		r.stats.OffNodeBytes += int64(bytes)
		r.advance(c.OffNodeMsgNs + float64(bytes)*c.OffNodeByteNs)
	}
}

// ChargeCacheHit records a remote read served from the rank's software
// cache: local time only, counted as a cache hit instead of a lookup
// (the operation never leaves the rank).
func (r *Rank) ChargeCacheHit() {
	r.stats.CacheHits++
	r.advance(r.team.cost.LocalOpNs)
}

// CountCacheMiss records that a charged remote lookup also filled a
// software-cache slot; the lookup itself is charged separately.
func (r *Rank) CountCacheMiss() {
	r.stats.CacheMisses++
}

// ChargeStoreBatch records the transfer of a batch of n items totalling
// the given bytes to rank dst (the aggregating-stores pattern: one message
// per flushed buffer). The receiver is charged the per-item apply cost.
func (r *Rank) ChargeStoreBatch(dst, n, bytes int) {
	r.chaosPoint(dst, bytes)
	c := &r.team.cost
	switch r.Locality(dst) {
	case Local:
		r.stats.LocalStores += int64(n)
		r.advance(float64(n) * c.LocalOpNs)
	case OnNode:
		r.stats.OnNodeMsgs++
		r.stats.OnNodeBytes += int64(bytes)
		r.advance(c.OnNodeMsgNs + float64(bytes)*c.OnNodeByteNs)
		r.chargeForeignRaw(dst, float64(n)*c.LocalOpNs)
	default:
		r.stats.OffNodeMsgs++
		r.stats.OffNodeBytes += int64(bytes)
		r.advance(c.OffNodeMsgNs + float64(bytes)*c.OffNodeByteNs)
		r.chargeForeignRaw(dst, float64(n)*c.LocalOpNs)
	}
}

// ChargeIORead models reading bytes from the shared parallel file system
// during a phase where all ranks read concurrently: the effective per-rank
// bandwidth is capped by the aggregate bandwidth divided by the team size,
// which reproduces I/O saturation at high concurrency.
func (r *Rank) ChargeIORead(bytes int64) {
	c := &r.team.cost
	bw := c.IORankBytesPerSec
	if agg := c.IOAggBytesPerSec / float64(r.team.cfg.Ranks); agg < bw {
		bw = agg
	}
	r.stats.IOBytes += bytes
	r.advance(c.IOLatencyNs + float64(bytes)/bw*1e9)
}

// ChargeIOWrite models writing bytes to the shared parallel file system
// (checkpoint segments, output FASTA) under the same saturation model as
// ChargeIORead: per-rank bandwidth is the aggregate cap divided by the
// team size when that is lower than a single stream's bandwidth.
func (r *Rank) ChargeIOWrite(bytes int64) {
	c := &r.team.cost
	bw := c.IORankBytesPerSec
	if agg := c.IOAggBytesPerSec / float64(r.team.cfg.Ranks); agg < bw {
		bw = agg
	}
	r.stats.IOWriteBytes += bytes
	r.advance(c.IOLatencyNs + float64(bytes)/bw*1e9)
}

// CountDiskFault records that an injected storage fault damaged a
// checkpoint segment this rank helped write. Counting only — the I/O
// itself is charged through ChargeIOWrite; a damaged write costs the
// same virtual time as a clean one.
func (r *Rank) CountDiskFault() {
	r.stats.DiskFaults++
}

// CountScrubRepair records that a checkpoint scrub pass dropped bytes
// of damaged (or damage-shadowed) checkpoint state back to
// recomputation while healing a resume. Counting only; the scrub's
// re-validation reads are charged through ChargeIORead.
func (r *Rank) CountScrubRepair(bytes int64) {
	r.stats.ScrubRepairedBytes += bytes
}

// ClockNs returns the rank's current virtual clock including foreign
// charges. Only safe to read from the owning goroutine or after a join.
func (r *Rank) ClockNs() float64 {
	return r.clockNs + float64(r.foreignNs.Load())
}

func (r *Rank) foldForeign() {
	r.advanceRaw(float64(r.foreignNs.Swap(0)))
}

// WorkNs returns the rank's cumulative charged work, including foreign
// charges folded in at synchronization points. Unlike ClockNs it is never
// raised by barrier synchronization, so deltas of WorkNs across a span
// measure the rank's own busy time — the per-rank quantity load-imbalance
// statistics are computed from. Only safe to read from the owning
// goroutine or between phases.
func (r *Rank) WorkNs() float64 { return r.workNs }

// Team is a fixed set of SPMD ranks with collective operations.
type Team struct {
	cfg  Config
	cost CostModel

	ranks []*Rank
	bar   *barrier

	// scratch buffers for collectives, indexed by rank
	sInt   []int64
	sFloat []float64
	sAny   []any

	walkSeq atomic.Int64 // global unique id source (traversal walks etc.)

	// span bookkeeping (see span.go); orchestrator-goroutine only
	spans []*SpanRecord
	open  []*openSpan

	// fault-injection state (see fault.go). faultOn is written by the
	// orchestrator between phases and read by ranks inside phases; the
	// Run fork/join provides the happens-before edges. faultTripped is
	// atomic because the victim sets it mid-phase for the others to see.
	faultOn      bool
	faultPlan    FaultPlan
	faultVictim  int
	faultTripped atomic.Bool
	// tripClockNs is the trip initiator's owner-written virtual clock at
	// the instant it killed the team (victim rank for an injected crash,
	// exhausted sender for chaos). Written once before faultTripped is
	// set, read only after the team is dead. Unlike VirtualNow after a
	// trip — survivors unwind at physically racy points, dragging the
	// clock maximum with them — this quantity is deterministic, so the
	// job scheduler charges it as a failed attempt's duration.
	tripClockNs float64

	// message-fault state (see chaos.go). chaosOn is static for the
	// team's lifetime; chaosErr records the first retry exhaustion (the
	// trip itself reuses faultTripped + barrier poisoning).
	chaosOn  bool
	chaosErr atomic.Pointer[RetryExhaustedError]
}

// NewTeam creates a team. The team may execute multiple Run phases; rank
// clocks and stats persist across phases.
func NewTeam(cfg Config) *Team {
	if cfg.Ranks <= 0 {
		panic(fmt.Sprintf("xrt: invalid rank count %d", cfg.Ranks))
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 24
	}
	cfg.Cost = cfg.Cost.withDefaults()
	cfg.Perturb = cfg.Perturb.withDefaults()
	cfg.Chaos = cfg.Chaos.withDefaults()
	t := &Team{
		cfg:    cfg,
		cost:   cfg.Cost,
		bar:    newBarrier(cfg.Ranks),
		sInt:   make([]int64, cfg.Ranks),
		sFloat: make([]float64, cfg.Ranks),
		sAny:   make([]any, cfg.Ranks),
	}
	t.ranks = make([]*Rank, cfg.Ranks)
	for i := range t.ranks {
		t.ranks[i] = &Rank{
			ID:   i,
			team: t,
			rng:  NewPrng(cfg.Seed + int64(i)*0x9e3779b97f4a7c + 1),
		}
		if cfg.Perturb.Enabled() {
			t.ranks[i].pert = NewPrng(perturbSeed(cfg.Perturb.Seed, i))
		}
		if cfg.Chaos.Enabled() {
			t.chaosOn = true
			t.ranks[i].chaos = NewPrng(chaosSeed(cfg.Chaos.Seed, i))
			t.ranks[i].chans = make([]chanState, cfg.Ranks)
		}
	}
	return t
}

// Config returns the team configuration.
func (t *Team) Config() Config { return t.cfg }

// Cost returns the team cost model.
func (t *Team) Cost() CostModel { return t.cost }

// NextID returns a team-global unique positive identifier.
func (t *Team) NextID() int64 { return t.walkSeq.Add(1) }

// PhaseStats reports the time consumed by one Run phase.
type PhaseStats struct {
	// Virtual is the modelled critical-path duration of the phase.
	Virtual time.Duration
	// Wall is the physical wall-clock duration (informational only).
	Wall time.Duration
	// Comm is the phase's aggregate communication delta over all ranks.
	Comm CommStats
}

// Run executes fn as an SPMD region: one invocation per rank, concurrently.
// On return, all rank clocks are synchronized to the phase maximum and the
// phase's virtual duration and communication delta are reported.
func (t *Team) Run(fn func(r *Rank)) PhaseStats {
	if t.faultTripped.Load() {
		// The team already died; running another phase on it would hang
		// on the poisoned barrier. Surface the same typed error.
		panic(t.tripError())
	}
	before := t.AggStats()
	start := t.maxClock()
	wall := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(t.ranks))
	for _, r := range t.ranks {
		go func(r *Rank) {
			defer wg.Done()
			if t.faultOn || t.chaosOn {
				defer recoverFaultCrash()
			}
			r.PerturbPoint(PerturbStart)
			fn(r)
		}(r)
	}
	wg.Wait()
	if t.faultTripped.Load() {
		panic(t.tripError())
	}
	t.syncClocks()
	return PhaseStats{
		Virtual: time.Duration(t.maxClock() - start),
		Wall:    time.Since(wall),
		Comm:    t.AggStats().Sub(before),
	}
}

func (t *Team) maxClock() float64 {
	m := 0.0
	for _, r := range t.ranks {
		if c := r.ClockNs(); c > m {
			m = c
		}
	}
	return m
}

func (t *Team) syncClocks() {
	for _, r := range t.ranks {
		r.foldForeign()
	}
	m := t.maxClock()
	for _, r := range t.ranks {
		r.clockNs = m
	}
}

// VirtualNow returns the current synchronized virtual time of the team.
// Only meaningful between Run phases.
func (t *Team) VirtualNow() time.Duration { return time.Duration(t.maxClock()) }

// TripVirtual returns the trip initiator's virtual clock at the instant
// an injected crash or chaos retry exhaustion killed the team, and 0 if
// the team never tripped. After a trip this is the deterministic
// measure of how long the team held the machine: VirtualNow would also
// include however far the surviving ranks happened to race before
// observing the unwind, which varies with physical scheduling.
func (t *Team) TripVirtual() time.Duration {
	if !t.faultTripped.Load() {
		return 0
	}
	return time.Duration(t.tripClockNs)
}

// AggStats sums communication statistics over all ranks. Only safe between
// phases or at barriers.
func (t *Team) AggStats() CommStats {
	var s CommStats
	for _, r := range t.ranks {
		s.Add(r.stats)
	}
	return s
}

// RankStats returns a copy of one rank's statistics.
func (t *Team) RankStats(id int) CommStats { return t.ranks[id].stats }

// RankWorkNs returns one rank's cumulative charged work (see
// Rank.WorkNs). Only safe between phases.
func (t *Team) RankWorkNs(id int) float64 { return t.ranks[id].workNs }

// Barrier blocks until every rank has arrived, then synchronizes all
// virtual clocks to the maximum, as a real barrier would. Under an
// active PerturbPlan the arrival is preceded by a deterministic delay,
// reordering which rank arrives last (and thus runs barrier epilogues).
func (r *Rank) Barrier() {
	r.PerturbPoint(PerturbBarrier)
	r.team.bar.await(func() { r.team.syncClocks() })
}

// AllReduceInt64 combines one int64 contribution per rank with op and
// returns the result on every rank. op must be associative and commutative.
func (r *Rank) AllReduceInt64(v int64, op func(a, b int64) int64) int64 {
	t := r.team
	t.sInt[r.ID] = v
	r.Barrier()
	acc := t.sInt[0]
	for i := 1; i < len(t.sInt); i++ {
		acc = op(acc, t.sInt[i])
	}
	r.chargeCollective()
	r.Barrier()
	return acc
}

// AllReduceFloat64 is AllReduceInt64 for float64 values.
func (r *Rank) AllReduceFloat64(v float64, op func(a, b float64) float64) float64 {
	t := r.team
	t.sFloat[r.ID] = v
	r.Barrier()
	acc := t.sFloat[0]
	for i := 1; i < len(t.sFloat); i++ {
		acc = op(acc, t.sFloat[i])
	}
	r.chargeCollective()
	r.Barrier()
	return acc
}

// AllGather shares one arbitrary value per rank; the returned slice is
// indexed by rank and must be treated as read-only. Every rank receives
// the same contents.
func (r *Rank) AllGather(v any) []any {
	t := r.team
	t.sAny[r.ID] = v
	r.Barrier()
	out := make([]any, len(t.sAny))
	copy(out, t.sAny)
	r.chargeCollective()
	r.Barrier()
	return out
}

// Broadcast returns rank root's value on every rank.
func (r *Rank) Broadcast(root int, v any) any {
	t := r.team
	if r.ID == root {
		t.sAny[root] = v
	}
	r.Barrier()
	out := t.sAny[root]
	r.chargeCollective()
	r.Barrier()
	return out
}

// ExclusivePrefixSum returns the exclusive prefix sum of the per-rank
// contributions (the standard trick for assigning globally contiguous ID
// ranges), along with the total.
func (r *Rank) ExclusivePrefixSum(v int64) (offset, total int64) {
	t := r.team
	t.sInt[r.ID] = v
	r.Barrier()
	var sum int64
	for i := 0; i < r.ID; i++ {
		sum += t.sInt[i]
	}
	var tot int64
	for i := range t.sInt {
		tot += t.sInt[i]
	}
	r.chargeCollective()
	r.Barrier()
	return sum, tot
}

// chargeCollective charges a log(p) latency tree for a small collective.
// Under a MessageFaultPlan each tree step's control message to the
// step's partner rank runs the reliable-channel protocol.
func (r *Rank) chargeCollective() {
	p := r.team.cfg.Ranks
	steps := 0.0
	for n := 1; n < p; n *= 2 {
		r.chaosPoint((r.ID+n)%p, collectiveMsgBytes)
		steps++
	}
	r.Charge(steps * r.team.cost.OffNodeMsgNs)
}

// barrier is a reusable cyclic barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	// poisoned is set by a crashing rank (see fault.go): current waiters
	// are released and every party panics out of await instead of
	// completing, so a dead victim can never deadlock the survivors.
	poisoned bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until n parties arrive. onLast runs once, under the barrier
// lock, in the last arriver before anyone is released.
func (b *barrier) await(onLast func()) {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		panic(faultCrash{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		if onLast != nil {
			onLast()
		}
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	poisoned := b.poisoned
	b.mu.Unlock()
	if poisoned {
		panic(faultCrash{})
	}
}

// poison releases every current and future waiter with a crash panic.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

package xrt

import (
	"testing"
)

// runWithFaultRecover runs fn and returns the *FaultError it panics
// with (nil if it returns normally).
func runWithFaultRecover(t *testing.T, fn func()) (fe *FaultError) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			var ok bool
			if fe, ok = p.(*FaultError); !ok {
				t.Fatalf("panic value %T, want *FaultError", p)
			}
		}
	}()
	fn()
	return nil
}

func TestFaultPlanDeterminism(t *testing.T) {
	p := FaultPlan{Seed: 42, Stage: "contig-generation"}
	if !p.Enabled() {
		t.Fatal("plan with seed and stage should be enabled")
	}
	if (FaultPlan{Seed: 42}).Enabled() || (FaultPlan{Stage: "x"}).Enabled() {
		t.Fatal("plan missing seed or stage should be disabled")
	}
	for i := 0; i < 3; i++ {
		if v := p.Victim(16); v != p.Victim(16) || v < 0 || v >= 16 {
			t.Fatalf("victim not deterministic/in-range: %d", v)
		}
		if n := p.AfterCharges(); n != p.AfterCharges() || n < 1 || n > 256 {
			t.Fatalf("after-charges not deterministic/in-range: %d", n)
		}
	}
	// Different seeds should pick different crash points at least sometimes.
	q := FaultPlan{Seed: 43, Stage: p.Stage}
	if p.Victim(1024) == q.Victim(1024) && p.AfterCharges() == q.AfterCharges() {
		t.Fatal("adjacent seeds map to identical victim and charge point")
	}
}

// TestFaultCrashUnwindsTeam arms a plan and drives every rank through a
// charge loop with barriers: the victim must crash at its countdown,
// survivors (including ranks parked at the poisoned barrier) must
// unwind, and Team.Run must surface a typed *FaultError naming the
// victim. The team is dead afterwards: the next Run fails the same way.
func TestFaultCrashUnwindsTeam(t *testing.T) {
	plan := FaultPlan{Seed: 7, Stage: "stage-x"}
	team := NewTeam(Config{Ranks: 8, RanksPerNode: 4, Seed: 1})
	team.ArmFault(plan)

	reached := make([]bool, 8)
	fe := runWithFaultRecover(t, func() {
		team.Run(func(r *Rank) {
			for i := 0; i < 1000; i++ {
				r.Charge(100)
				if i%10 == 0 {
					r.Barrier()
				}
			}
			reached[r.ID] = true
		})
	})
	if fe == nil {
		t.Fatal("Run returned normally, want *FaultError panic")
	}
	if fe.Rank != plan.Victim(8) || fe.Stage != "stage-x" || fe.Seed != 7 {
		t.Fatalf("FaultError = %+v, want victim %d stage-x seed 7", fe, plan.Victim(8))
	}
	if !team.FaultFired() {
		t.Fatal("FaultFired() = false after crash")
	}
	for id, ok := range reached {
		if ok {
			t.Fatalf("rank %d completed the body despite the injected crash", id)
		}
	}

	// A tripped team refuses further phases with the same typed error.
	fe2 := runWithFaultRecover(t, func() {
		team.Run(func(r *Rank) { r.Charge(1) })
	})
	if fe2 == nil || fe2.Rank != fe.Rank {
		t.Fatalf("post-crash Run: got %+v, want same *FaultError", fe2)
	}
}

// TestFaultDisarm verifies an armed-but-unfired plan can be disarmed:
// a stage whose ranks never reach the countdown completes normally, and
// after DisarmFault later stages run at full charge volume unharmed.
func TestFaultDisarm(t *testing.T) {
	team := NewTeam(Config{Ranks: 4, RanksPerNode: 2, Seed: 1})
	team.ArmFault(FaultPlan{Seed: 99, Stage: "quiet"})
	// No charges at all: the countdown cannot fire.
	team.Run(func(r *Rank) {})
	if team.FaultFired() {
		t.Fatal("fault fired without any charge events")
	}
	team.DisarmFault()
	done := make([]bool, 4)
	team.Run(func(r *Rank) {
		for i := 0; i < 2000; i++ {
			r.Charge(10)
		}
		r.Barrier()
		done[r.ID] = true
	})
	for id, ok := range done {
		if !ok {
			t.Fatalf("rank %d did not finish after disarm", id)
		}
	}
}

// TestFaultVictimDistribution: different seeds must spread crashes over
// ranks, so a sweep over seeds exercises different victims.
func TestFaultVictimDistribution(t *testing.T) {
	seen := map[int]bool{}
	for seed := int64(1); seed <= 32; seed++ {
		seen[FaultPlan{Seed: seed, Stage: "s"}.Victim(8)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("32 seeds hit only %d of 8 ranks", len(seen))
	}
}

package xrt

// Storage fault injection. A DiskFaultPlan is the third injection layer
// next to FaultPlan (fail-stop rank crashes) and MessageFaultPlan
// (lossy transport): it deterministically damages the checkpoint
// segment one stage writes, standing in for the parallel-file-system
// failure modes a real extreme-scale run sees — torn writes, bit-rot,
// lost files, and ENOSPC-style write refusals.
//
// Determinism contract: like the other layers, a disk fault never
// changes what an assembly computes. The damaged bytes land only on
// disk; the in-memory pipeline state and the manifest entry (computed
// from the clean segment, exactly as if the damage happened after a
// successful write) are untouched, so the faulted run's output is
// bit-identical to a fault-free run. The damage is observed only by a
// LATER resume, which detects it (CRC/content-hash validation), scrubs
// it away, and recomputes — paying virtual time and the DiskFaults/
// ScrubRepairedBytes counters, never correctness.
//
// The plan draws every decision (fault kind, torn-write offset,
// flipped bit) from its own Splitmix64 stream, decoupled from the
// rank RNGs and from the other fault layers' streams, so arming a disk
// fault cannot perturb any algorithmic decision. The kind cycles with
// the seed (1 + seed mod 4), so a sweep over four consecutive seeds
// covers all four fault kinds.

// DiskFaultKind names the storage failure mode a plan injects.
type DiskFaultKind int

const (
	// DiskFaultNone: the write was not targeted; nothing was damaged.
	DiskFaultNone DiskFaultKind = iota
	// DiskFaultTornWrite truncates the segment at a seeded offset — the
	// classic partial write of a node dying mid-checkpoint.
	DiskFaultTornWrite
	// DiskFaultBitFlip flips one seeded bit of the segment — bit-rot or
	// a corrupted transfer that the file system did not catch.
	DiskFaultBitFlip
	// DiskFaultDelete loses the segment file entirely while the
	// manifest still references it.
	DiskFaultDelete
	// DiskFaultWriteRefused refuses the write outright (ENOSPC): no
	// segment and no manifest entry; the stage is simply not
	// checkpointed.
	DiskFaultWriteRefused
)

func (k DiskFaultKind) String() string {
	switch k {
	case DiskFaultTornWrite:
		return "torn-write"
	case DiskFaultBitFlip:
		return "bit-flip"
	case DiskFaultDelete:
		return "delete"
	case DiskFaultWriteRefused:
		return "write-refused"
	default:
		return "none"
	}
}

// diskFaultSalt decouples the disk-fault decision stream from the rank
// RNG streams and the other fault layers' seeds.
const diskFaultSalt = 0xd15c0fa17

// DiskFaultPlan arms one injected storage fault against the checkpoint
// segment written by the named stage. The zero value is disabled.
type DiskFaultPlan struct {
	// Seed selects the fault kind and its parameters; 0 disables.
	Seed int64
	// Stage is the checkpointed stage whose segment write is damaged.
	Stage string
}

// Enabled reports whether the plan is armed.
func (p DiskFaultPlan) Enabled() bool { return p.Seed != 0 && p.Stage != "" }

// Kind returns the failure mode this plan injects. It depends only on
// the seed (1 + seed mod 4), so harnesses can pick seeds that cover
// specific kinds without knowing the segment contents.
func (p DiskFaultPlan) Kind() DiskFaultKind {
	if !p.Enabled() {
		return DiskFaultNone
	}
	return DiskFaultKind(1 + uint64(p.Seed)%4)
}

// Apply damages the framed segment bytes a stage is about to persist.
// It returns the bytes to write in place of seg (nil = write no file)
// and the injected kind; an unarmed plan or a non-target stage returns
// seg unchanged with DiskFaultNone. Apply never mutates seg.
func (p DiskFaultPlan) Apply(stage string, seg []byte) ([]byte, DiskFaultKind) {
	if !p.Enabled() || stage != p.Stage {
		return seg, DiskFaultNone
	}
	x := Splitmix64(uint64(p.Seed) ^ diskFaultSalt)
	switch kind := p.Kind(); kind {
	case DiskFaultTornWrite:
		if len(seg) < 2 {
			return nil, kind
		}
		cut := 1 + int(x%uint64(len(seg)-1))
		return seg[:cut:cut], kind
	case DiskFaultBitFlip:
		if len(seg) == 0 {
			return seg, kind
		}
		out := make([]byte, len(seg))
		copy(out, seg)
		bit := Splitmix64(x) % 8
		out[x%uint64(len(seg))] ^= 1 << bit
		return out, kind
	case DiskFaultDelete:
		return nil, kind
	default: // DiskFaultWriteRefused
		return nil, kind
	}
}

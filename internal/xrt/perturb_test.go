package xrt

import "testing"

// perturbWorkload is a small phase exercising the charged operations,
// collectives, and the rank RNG; it returns everything observable that
// must be invariant under schedule perturbation.
func perturbWorkload(cfg Config) (virtual float64, agg CommStats, draws []uint64, reduced int64) {
	team := NewTeam(cfg)
	draws = make([]uint64, cfg.Ranks)
	reds := make([]int64, cfg.Ranks) // per-rank slot: ranks must not share a variable
	for phase := 0; phase < 3; phase++ {
		team.Run(func(r *Rank) {
			for i := 0; i < 50; i++ {
				r.ChargeLookup((r.ID+i)%r.N(), 16)
			}
			r.ChargeItems(100)
			r.Barrier()
			r.ChargeStoreBatch((r.ID+1)%r.N(), 8, 128)
			draws[r.ID] += r.Rng().Uint64()
			reds[r.ID] = r.AllReduceInt64(int64(r.ID), func(a, b int64) int64 { return a + b })
		})
	}
	return float64(team.VirtualNow()), team.AggStats(), draws, reds[0]
}

// TestPerturbInvariants is the core guarantee: enabling a perturbation
// plan changes only physical scheduling. Virtual time, communication
// statistics, RNG streams, and collective results are bit-identical to
// the unperturbed run, for every plan seed.
func TestPerturbInvariants(t *testing.T) {
	base := Config{Ranks: 8, RanksPerNode: 4, Seed: 11}
	v0, agg0, draws0, red0 := perturbWorkload(base)
	for _, seed := range []int64{1, 2, 7, 0xdeadbeef} {
		cfg := base
		// tiny jitter caps keep the test fast while still reordering
		cfg.Perturb = PerturbPlan{Seed: seed, StartJitterNs: 5_000, BarrierJitterNs: 2_000, FlushJitterNs: 1_000}
		v, agg, draws, red := perturbWorkload(cfg)
		if v != v0 {
			t.Errorf("perturb seed %d: virtual time %v != unperturbed %v", seed, v, v0)
		}
		if agg != agg0 {
			t.Errorf("perturb seed %d: comm stats %+v != unperturbed %+v", seed, agg, agg0)
		}
		for i := range draws {
			if draws[i] != draws0[i] {
				t.Errorf("perturb seed %d: rank %d RNG stream diverged", seed, i)
			}
		}
		if red != red0 {
			t.Errorf("perturb seed %d: reduction %d != %d", seed, red, red0)
		}
	}
}

// TestPerturbNoopWithoutPlan checks the zero plan costs nothing: ranks
// carry no delay stream and PerturbPoint returns immediately.
func TestPerturbNoopWithoutPlan(t *testing.T) {
	team := NewTeam(Config{Ranks: 2})
	for _, r := range team.ranks {
		if r.pert != nil {
			t.Fatalf("rank %d has a delay stream without a plan", r.ID)
		}
	}
	team.Run(func(r *Rank) {
		r.PerturbPoint(PerturbStart)
		r.PerturbPoint(PerturbBarrier)
		r.PerturbPoint(PerturbFlush)
	})
	if (PerturbPlan{}).Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
}

// TestPerturbDefaults checks defaulting: an enabled plan gets non-zero
// jitter caps, explicit caps are kept, and a disabled plan stays zero.
func TestPerturbDefaults(t *testing.T) {
	p := PerturbPlan{Seed: 3}.withDefaults()
	if p.StartJitterNs <= 0 || p.BarrierJitterNs <= 0 || p.FlushJitterNs <= 0 {
		t.Fatalf("enabled plan missing default caps: %+v", p)
	}
	q := PerturbPlan{Seed: 3, StartJitterNs: 42, BarrierJitterNs: 43, FlushJitterNs: 44}.withDefaults()
	if q.StartJitterNs != 42 || q.BarrierJitterNs != 43 || q.FlushJitterNs != 44 {
		t.Fatalf("explicit caps overwritten: %+v", q)
	}
	z := PerturbPlan{}.withDefaults()
	if z != (PerturbPlan{}) {
		t.Fatalf("zero plan gained defaults: %+v", z)
	}
}

// TestPerturbDelayStreamsDeterministic checks the per-rank delay streams
// are a pure function of (plan seed, rank): distinct across ranks and
// reproducible across teams, independent of Config.Seed.
func TestPerturbDelayStreamsDeterministic(t *testing.T) {
	collect := func(cfg Config) [][]uint64 {
		team := NewTeam(cfg)
		out := make([][]uint64, cfg.Ranks)
		for i, r := range team.ranks {
			vs := make([]uint64, 4)
			for j := range vs {
				vs[j] = r.pert.Uint64()
			}
			out[i] = vs
		}
		return out
	}
	a := collect(Config{Ranks: 4, Seed: 1, Perturb: PerturbPlan{Seed: 5}})
	b := collect(Config{Ranks: 4, Seed: 999, Perturb: PerturbPlan{Seed: 5}})
	seen := map[uint64]bool{}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("rank %d delay stream depends on Config.Seed", i)
			}
		}
		if seen[a[i][0]] {
			t.Fatalf("delay streams collide across ranks")
		}
		seen[a[i][0]] = true
	}
	c := collect(Config{Ranks: 4, Seed: 1, Perturb: PerturbPlan{Seed: 6}})
	if c[0][0] == a[0][0] && c[1][0] == a[1][0] {
		t.Fatal("different plan seeds produced the same delay schedule")
	}
}

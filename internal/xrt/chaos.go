// Message-level fault simulation. A MessageFaultPlan is the transport-
// side companion of PerturbPlan (schedule noise) and FaultPlan (fail-stop
// crashes): it models a lossy, duplicating network under every remote
// operation, together with the reliability layer that makes the pipeline
// survive it. Every logical message charged at ChargeLookup,
// ChargeForeign, ChargeStoreBatch, or a collective's tree steps runs an
// RPC-style protocol on a per-(src,dst) channel: a sequence number is
// assigned, drop decisions are drawn from a dedicated seeded per-rank
// stream, lost sends and lost acks cost a timeout plus capped exponential
// backoff with seeded jitter (charged as virtual time), retransmissions
// after a lost ack arrive at a receiver that already applied the
// operation and are discarded by a sliding dedup window, and a bounded
// retry budget converts a channel that never recovers into a typed
// *RetryExhaustedError that unwinds the team exactly like an injected
// crash (pipeline code maps it to StageFailedError; -ckpt-dir runs can
// resume from the last completed stage).
//
// Determinism contract: all chaos decisions derive from Seed via a
// per-rank stream decoupled from Config.Seed's algorithmic RNGs and
// drawn in rank-local program order, so for a fixed plan the drop/dup
// schedule, the retry counters, and the virtual-time cost are
// reproducible — and because the layer only adds virtual time and
// counters, never reordering or altering what the operations apply, the
// assembly remains bit-identical to a fault-free run.
package xrt

import "fmt"

// chaosBackoffCapExp caps the exponential backoff at
// TimeoutNs * 2^chaosBackoffCapExp per retry.
const chaosBackoffCapExp = 6

// collectiveMsgBytes is the nominal payload of one tree step of a small
// collective, used for redelivery accounting under a MessageFaultPlan.
const collectiveMsgBytes = 16

// MessageFaultPlan configures deterministic message-level fault
// injection: seed-derived drop and duplication decisions per logical
// remote message, absorbed by the runtime's reliable-channel protocol.
// The zero value disables the layer entirely.
type MessageFaultPlan struct {
	// Seed selects the drop/duplicate schedule. 0 disables the plan.
	Seed int64
	// DropRate is the probability, per transmission, that a message (or
	// its ack) is lost and must be retransmitted after a timeout. Must
	// be in [0, 1).
	DropRate float64
	// DupRate is the probability that a delivered message is
	// spontaneously duplicated by the network; the receiver's dedup
	// window discards the copy. Lost acks already produce duplicate
	// deliveries, so 0 (the default) still exercises deduplication
	// whenever DropRate > 0.
	DupRate float64
	// TimeoutNs is the virtual-time retransmission timeout; retry k
	// backs off to TimeoutNs*2^min(k-1, 6) plus seeded jitter.
	// Default 2µs (a few off-node message latencies).
	TimeoutNs float64
	// RetryBudget bounds retransmissions per message; exceeding it
	// unwinds the team with a *RetryExhaustedError. Default 16.
	RetryBudget int
	// WindowSize is the receiver dedup window, in sequence numbers.
	// Duplicates older than the window are assumed already applied and
	// dropped. Default 64.
	WindowSize int
}

// Enabled reports whether the plan injects anything.
func (p MessageFaultPlan) Enabled() bool { return p.Seed != 0 }

func (p MessageFaultPlan) withDefaults() MessageFaultPlan {
	if !p.Enabled() {
		return p
	}
	if p.TimeoutNs <= 0 {
		p.TimeoutNs = 2_000
	}
	if p.RetryBudget <= 0 {
		p.RetryBudget = 16
	}
	if p.WindowSize <= 0 {
		p.WindowSize = 64
	}
	return p
}

// chaosSeed derives the per-rank chaos-stream seed. Like perturbSeed it
// is decoupled from the rank's algorithmic RNG seeding (Config.Seed), so
// enabling message faults cannot change any randomized algorithmic
// decision — only virtual time and the retry counters.
func chaosSeed(planSeed int64, rank int) int64 {
	return int64(Splitmix64(uint64(planSeed)^0xc4a05fa17) + uint64(rank)*0x9e3779b97f4a7c15)
}

// DedupWindow is a sliding receive window over per-channel sequence
// numbers: Admit reports whether a delivery with the given sequence
// number is the first one seen, rejecting retransmissions and
// spontaneous duplicates. Sequence numbers older than the window are
// assumed already applied (the at-least-once transport never reorders
// farther than the window) and rejected. Exactly-once application is
// guaranteed for reorder distances smaller than the window size.
type DedupWindow struct {
	// slots[i] holds seq+1 of the newest admitted sequence number with
	// seq % len(slots) == i; 0 means the slot never admitted anything.
	slots []uint64
	// head is the highest admitted sequence number + 1 (0 = none yet).
	head uint64
}

// NewDedupWindow returns a window covering size in-flight sequence
// numbers (the MessageFaultPlan default when size <= 0).
func NewDedupWindow(size int) *DedupWindow {
	if size <= 0 {
		size = 64
	}
	return &DedupWindow{slots: make([]uint64, size)}
}

// Admit records a delivery and reports whether it is the first for seq.
func (w *DedupWindow) Admit(seq uint64) bool {
	n := uint64(len(w.slots))
	if seq+n < w.head {
		// Below the window: a straggler duplicate of a long-acked
		// message. Treat as already applied.
		return false
	}
	i := seq % n
	if w.slots[i] == seq+1 {
		return false
	}
	w.slots[i] = seq + 1
	if seq+1 > w.head {
		w.head = seq + 1
	}
	return true
}

// chanState is the sender-side model of one reliable (src,dst) channel.
// Deliveries are simulated on the sender's goroutine, so the receiver's
// dedup window lives here too and needs no locking.
type chanState struct {
	nextSeq uint64
	dedup   DedupWindow
}

// RetryExhaustedError is the typed failure surfaced (as an orchestrator-
// goroutine panic from Team.Run) when one message exceeded its retry
// budget under a MessageFaultPlan and the team unwound.
type RetryExhaustedError struct {
	// Src and Dst identify the channel whose message could not be
	// delivered; Src is the rank that unwound the team.
	Src, Dst int
	// Seq is the message's per-channel sequence number.
	Seq uint64
	// Attempts is how many transmissions were made before giving up.
	Attempts int
	// Seed is the chaos seed, for reproduction.
	Seed int64
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("xrt: retry budget exhausted: rank %d -> %d message %d undeliverable after %d attempts (chaos seed %d)",
		e.Src, e.Dst, e.Seq, e.Attempts, e.Seed)
}

// ChaosFired reports whether a message exceeded its retry budget and
// killed the team.
func (t *Team) ChaosFired() bool { return t.chaosErr.Load() != nil }

// tripError returns the typed error a dead team surfaces: the retry
// exhaustion if the chaos layer tripped, otherwise the injected crash.
func (t *Team) tripError() error {
	if e := t.chaosErr.Load(); e != nil {
		return e
	}
	return t.faultError()
}

// chaosPoint runs the reliable-channel protocol for one logical message
// from r to dst. No-op without an enabled MessageFaultPlan or for
// rank-local operations. Every draw comes from the rank's private chaos
// stream in rank-local program order; every failed transmission charges
// timeout+backoff to the sender's virtual clock and bumps the retry
// counters. The operation itself is applied exactly once by the caller
// after chaosPoint returns — duplicates exist only as counter traffic.
func (r *Rank) chaosPoint(dst, bytes int) {
	if r.chaos == nil || dst == r.ID {
		return
	}
	t := r.team
	if t.faultTripped.Load() {
		// Another rank unwound the team (retry exhaustion or injected
		// crash); join it instead of starting a new exchange.
		panic(faultCrash{})
	}
	plan := &t.cfg.Chaos
	ch := &r.chans[dst]
	if ch.dedup.slots == nil {
		ch.dedup.slots = make([]uint64, plan.WindowSize)
	}
	seq := ch.nextSeq
	ch.nextSeq++
	attempt := 1
	for {
		if r.chaos.Float64() < plan.DropRate {
			// Data message lost in flight: nothing reached the receiver.
			r.chaosRetry(dst, seq, bytes, &attempt)
			continue
		}
		if !ch.dedup.Admit(seq) {
			// A retransmission reached a receiver that already applied
			// the operation (its ack was lost); the window discards it.
			r.stats.Dups++
		}
		if plan.DupRate > 0 && r.chaos.Float64() < plan.DupRate {
			// The network spontaneously duplicated the delivery.
			r.stats.Dups++
			r.stats.RedeliveredBytes += int64(bytes)
			if ch.dedup.Admit(seq) {
				panic("xrt: dedup window re-admitted a duplicate delivery")
			}
		}
		if r.chaos.Float64() < plan.DropRate {
			// Ack lost: the sender cannot distinguish this from a lost
			// send and retransmits after the timeout.
			r.chaosRetry(dst, seq, bytes, &attempt)
			continue
		}
		return
	}
}

// chaosRetry charges one timeout + capped exponential backoff with
// seeded jitter and accounts the retransmission, unwinding the team when
// the budget is exhausted.
func (r *Rank) chaosRetry(dst int, seq uint64, bytes int, attempt *int) {
	plan := &r.team.cfg.Chaos
	r.stats.Drops++
	if *attempt > plan.RetryBudget {
		r.tripRetryExhausted(dst, seq, *attempt)
	}
	exp := *attempt - 1
	if exp > chaosBackoffCapExp {
		exp = chaosBackoffCapExp
	}
	base := plan.TimeoutNs * float64(uint64(1)<<uint(exp))
	r.advance(base + r.chaos.Float64()*base*0.5)
	*attempt++
	r.stats.Retries++
	r.stats.RedeliveredBytes += int64(bytes)
}

// tripRetryExhausted kills the team the same way an injected crash does:
// record the typed error, mark the trip, poison the barrier so blocked
// ranks unwind, and panic out of this rank with the crash sentinel.
func (r *Rank) tripRetryExhausted(dst int, seq uint64, attempts int) {
	t := r.team
	err := &RetryExhaustedError{
		Src:      r.ID,
		Dst:      dst,
		Seq:      seq,
		Attempts: attempts,
		Seed:     t.cfg.Chaos.Seed,
	}
	if t.chaosErr.CompareAndSwap(nil, err) {
		t.tripClockNs = r.clockNs
	}
	t.faultTripped.Store(true)
	t.bar.poison()
	panic(faultCrash{})
}

// Per-stage observability spans. A span brackets a region of the
// orchestration program (a pipeline stage, or a named sub-phase inside
// one) and records, per rank, the CommStats and busy-time deltas between
// its open and close. Spans nest: stage packages open sub-spans inside
// the pipeline's stage spans, and the full pre-order record sequence is
// consumed by internal/metrics to produce the paper-style per-module
// breakdowns (Figures 6–8, Tables 1–3) and load-imbalance statistics.
//
// Span calls are part of the orchestration program, not the SPMD region:
// BeginSpan/EndSpan must only be called between Team.Run phases, from the
// single orchestrating goroutine. Everything a span records except WallNs
// derives from virtual time and operation counts, so all span fields but
// WallNs are bit-identical across schedule perturbations.
package xrt

import "time"

// RankDelta is one rank's activity during a span.
type RankDelta struct {
	// WorkNs is the rank's charged busy time during the span: virtual-
	// clock advances from its own charges plus foreign charges folded in
	// at synchronization points, excluding barrier synchronization jumps.
	// The spread of WorkNs across ranks is the span's load imbalance.
	WorkNs float64
	// Comm is the rank's communication-statistics delta.
	Comm CommStats
}

// SpanRecord is one completed (or still-open) span. Records are created
// at BeginSpan in pre-order; deltas are filled in at EndSpan.
type SpanRecord struct {
	// Name is the span's own label; Path is the '/'-joined chain of
	// enclosing span names (e.g. "scaffolding/merAligner/align").
	Name string
	Path string
	// Depth is the nesting depth (0 = top-level pipeline stage).
	Depth int
	// VirtualNs is the modelled critical-path duration: the advance of
	// the team's maximum clock between open and close.
	VirtualNs float64
	// WallNs is the physical duration. It is the only nondeterministic
	// field; deterministic-output tests zero it before comparing.
	WallNs int64
	// Ranks holds per-rank deltas, indexed by rank ID.
	Ranks []RankDelta
	// Counters holds named stage counters (heavy hitters, traversal
	// aborts, ...) accumulated via Team.AddCounter while the span was
	// innermost-open or targeted by path.
	Counters map[string]int64
}

// AggComm sums the per-rank communication deltas.
func (s *SpanRecord) AggComm() CommStats {
	var agg CommStats
	for _, rd := range s.Ranks {
		agg.Add(rd.Comm)
	}
	return agg
}

// openSpan carries the snapshots taken at BeginSpan.
type openSpan struct {
	rec        *SpanRecord
	startClock float64
	startWall  time.Time
	startWork  []float64
	startComm  []CommStats
}

// BeginSpan opens a named span nested under the currently open one (if
// any), snapshotting every rank's clock, work, and communication state.
// Must be called between Run phases from the orchestrating goroutine.
func (t *Team) BeginSpan(name string) {
	path := name
	if n := len(t.open); n > 0 {
		path = t.open[n-1].rec.Path + "/" + name
	}
	rec := &SpanRecord{Name: name, Path: path, Depth: len(t.open)}
	o := &openSpan{
		rec:        rec,
		startClock: t.maxClock(),
		startWall:  time.Now(),
		startWork:  make([]float64, len(t.ranks)),
		startComm:  make([]CommStats, len(t.ranks)),
	}
	for i, r := range t.ranks {
		o.startWork[i] = r.workNs
		o.startComm[i] = r.stats
	}
	t.open = append(t.open, o)
	t.spans = append(t.spans, rec)
}

// EndSpan closes the innermost open span, fills in its per-rank deltas,
// and returns it. Panics if no span is open.
func (t *Team) EndSpan() *SpanRecord {
	n := len(t.open)
	if n == 0 {
		panic("xrt: EndSpan without matching BeginSpan")
	}
	o := t.open[n-1]
	t.open = t.open[:n-1]
	rec := o.rec
	rec.VirtualNs = t.maxClock() - o.startClock
	rec.WallNs = time.Since(o.startWall).Nanoseconds()
	rec.Ranks = make([]RankDelta, len(t.ranks))
	for i, r := range t.ranks {
		rec.Ranks[i] = RankDelta{
			WorkNs: r.workNs - o.startWork[i],
			Comm:   r.stats.Sub(o.startComm[i]),
		}
	}
	return rec
}

// AddCounter accumulates a named counter on the innermost open span. A
// no-op when no span is open, so stage packages can record counters
// unconditionally and tests driving a stage directly lose nothing but
// the bookkeeping.
func (t *Team) AddCounter(name string, v int64) {
	n := len(t.open)
	if n == 0 {
		return
	}
	rec := t.open[n-1].rec
	if rec.Counters == nil {
		rec.Counters = make(map[string]int64)
	}
	rec.Counters[name] += v
}

// OpenSpans returns the number of currently open spans, letting error
// paths (an injected crash mid-stage) unwind to a known nesting depth by
// calling EndSpan until the count returns to what it was.
func (t *Team) OpenSpans() int { return len(t.open) }

// Spans returns the span records in pre-order (parents before children).
// Records of still-open spans have empty Ranks. The returned slice is
// shared; callers must not mutate it.
func (t *Team) Spans() []*SpanRecord { return t.spans }

// Deterministic fault injection. A FaultPlan is the failure-side
// companion of PerturbPlan: where perturbation proves the assembly is
// schedule-independent, a fault plan proves the pipeline's checkpoint/
// restart path is crash-consistent. Arming a plan picks one victim rank
// and a charge-event countdown, both derived from the seed alone, so a
// given (seed, stage, team size) always crashes the same rank at the same
// point of the same stage — a crash that reproduces under `go test -run`.
//
// Crash mechanics: when the victim's countdown reaches zero inside a
// charge, the victim marks the team as tripped, poisons the team barrier,
// and panics with a private sentinel. Survivors notice at their next
// charge or barrier and panic with the same sentinel; Team.Run recovers
// the sentinel on each rank goroutine, joins, and re-panics on the
// orchestrator goroutine with a typed *FaultError that pipeline code can
// recover and convert into a StageFailedError. The team is dead after a
// trip: any further Run panics with the same *FaultError.
package xrt

import "fmt"

// FaultPlan configures deterministic fault injection: at most one rank
// crash per run, injected while the named pipeline stage is armed.
type FaultPlan struct {
	// Seed selects the victim rank and the crash point; 0 disables the
	// plan entirely.
	Seed int64
	// Stage names the pipeline stage during which the crash fires. The
	// runtime does not interpret it beyond reporting; the pipeline arms
	// the plan when it enters the matching stage.
	Stage string
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool { return p.Seed != 0 && p.Stage != "" }

// Victim returns the rank the plan crashes in a team of the given size.
func (p FaultPlan) Victim(ranks int) int {
	return int(Splitmix64(uint64(p.Seed)^0xfa017c4a5) % uint64(ranks))
}

// AfterCharges returns how many charge events the victim executes inside
// the armed stage before crashing. The range is kept small (1..256) so
// the crash lands early in any stage of any realistic dataset.
func (p FaultPlan) AfterCharges() int64 {
	return int64(1 + Splitmix64(uint64(p.Seed)*0x9e3779b97f4a7c15+0xfa017)%256)
}

// faultCrash is the sentinel a crashing rank panics with. It never
// escapes the package: rank goroutines recover it, and the orchestrator
// re-panics with *FaultError.
type faultCrash struct{}

// recoverFaultCrash swallows the crash sentinel and re-panics anything
// else (a genuine bug must still crash the process).
func recoverFaultCrash() {
	if p := recover(); p != nil {
		if _, ok := p.(faultCrash); !ok {
			panic(p)
		}
	}
}

// FaultError is the typed failure surfaced (as an orchestrator-goroutine
// panic from Team.Run) after an injected crash unwound the team.
type FaultError struct {
	// Stage is the armed plan's stage name.
	Stage string
	// Rank is the victim.
	Rank int
	// Seed is the plan seed, for reproduction.
	Seed int64
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("xrt: injected fault: rank %d crashed in stage %q (fault seed %d)",
		e.Rank, e.Stage, e.Seed)
}

// ArmFault arms the plan for the next Run phases: the victim's countdown
// starts and every rank begins checking for a trip. Must be called
// between phases from the orchestrating goroutine; a disabled plan is a
// no-op.
func (t *Team) ArmFault(plan FaultPlan) {
	if !plan.Enabled() {
		return
	}
	v := plan.Victim(t.cfg.Ranks)
	t.faultPlan = plan
	t.faultVictim = v
	t.faultOn = true
	t.ranks[v].faultCD = plan.AfterCharges()
}

// DisarmFault cancels an armed plan that has not tripped (the stage
// outlived the countdown window without the victim reaching it, or the
// pipeline moved past the armed stage). A tripped fault stays fatal.
func (t *Team) DisarmFault() {
	if t.faultTripped.Load() {
		return
	}
	t.faultOn = false
	for _, r := range t.ranks {
		r.faultCD = 0
	}
}

// FaultFired reports whether the armed fault has tripped.
func (t *Team) FaultFired() bool { return t.faultTripped.Load() }

func (t *Team) faultError() *FaultError {
	return &FaultError{
		Stage: t.faultPlan.Stage,
		Rank:  t.faultVictim,
		Seed:  t.faultPlan.Seed,
	}
}

// faultPoint runs inside every charge while a fault is armed: the victim
// counts down and crashes at zero; every other rank crashes as soon as it
// observes the trip, so survivors unwind at their next charge instead of
// waiting on a barrier the victim will never reach.
func (r *Rank) faultPoint() {
	t := r.team
	if r.faultCD > 0 {
		r.faultCD--
		if r.faultCD == 0 {
			t.tripClockNs = r.clockNs
			t.faultTripped.Store(true)
			t.bar.poison()
			panic(faultCrash{})
		}
		return
	}
	if t.faultTripped.Load() {
		panic(faultCrash{})
	}
}

// CheckFault lets uncharged spin loops (e.g. dht.MutateRetry waiting for
// another rank to release a claim) observe a team unwind — an injected
// crash or a chaos-layer retry exhaustion: without a charge or a barrier
// in the loop body a survivor could otherwise spin forever waiting on a
// dead victim. No-op unless a fault or message-fault plan is active.
func (r *Rank) CheckFault() {
	if (r.team.faultOn || r.team.chaosOn) && r.team.faultTripped.Load() {
		panic(faultCrash{})
	}
}

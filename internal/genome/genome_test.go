package genome

import (
	"bytes"
	"strings"
	"testing"

	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

func TestRandomComposition(t *testing.T) {
	rng := xrt.NewPrng(1)
	g := Random(rng, 100000)
	var counts [4]int
	for _, b := range g {
		c, ok := kmer.BaseCode(b)
		if !ok {
			t.Fatalf("invalid base %c", b)
		}
		counts[c]++
	}
	for i, c := range counts {
		if c < 23000 || c > 27000 {
			t.Fatalf("base %d count %d far from uniform", i, c)
		}
	}
}

// kmerHistogram counts canonical k-mer multiplicities within a genome.
func kmerHistogram(g []byte, k int) map[kmer.Kmer]int {
	h := make(map[kmer.Kmer]int)
	kmer.ForEach(g, k, func(pos int, km kmer.Kmer) {
		c, _ := km.Canonical(k)
		h[c]++
	})
	return h
}

func TestWheatLikeIsSkewed(t *testing.T) {
	rng := xrt.NewPrng(2)
	const k = 21
	wheat := kmerHistogram(WheatLike(rng, 400000), k)
	human := kmerHistogram(HumanLike(rng, 400000), k)
	maxOf := func(h map[kmer.Kmer]int) int {
		m := 0
		for _, c := range h {
			if c > m {
				m = c
			}
		}
		return m
	}
	wMax, hMax := maxOf(wheat), maxOf(human)
	if wMax < 20*hMax {
		t.Fatalf("wheat max k-mer count %d not much larger than human %d", wMax, hMax)
	}
	if wMax < 50 {
		t.Fatalf("wheat-like genome lacks heavy hitters: max count %d", wMax)
	}
}

func TestHumanLikeMostlyUnique(t *testing.T) {
	rng := xrt.NewPrng(3)
	h := kmerHistogram(HumanLike(rng, 300000), 21)
	singles, total := 0, 0
	for _, c := range h {
		total++
		if c == 1 {
			singles++
		}
	}
	if frac := float64(singles) / float64(total); frac < 0.85 {
		t.Fatalf("only %f of human-like genome k-mers unique", frac)
	}
}

func TestMetagenomeShape(t *testing.T) {
	rng := xrt.NewPrng(4)
	gs, ab := Metagenome(rng, 500000, 40)
	if len(gs) != 40 || len(ab) != 40 {
		t.Fatalf("got %d genomes, %d abundances", len(gs), len(ab))
	}
	total := 0
	names := map[string]bool{}
	for i, g := range gs {
		if len(g.Seq) < 2000 {
			t.Fatalf("species %d too small: %d", i, len(g.Seq))
		}
		if names[g.Name] {
			t.Fatalf("duplicate name %s", g.Name)
		}
		names[g.Name] = true
		total += len(g.Seq)
		if ab[i] <= 0 {
			t.Fatalf("non-positive abundance %f", ab[i])
		}
	}
	if total < 400000 {
		t.Fatalf("metagenome total %d too small", total)
	}
}

func TestMutateRate(t *testing.T) {
	rng := xrt.NewPrng(5)
	g := Random(rng, 200000)
	m := Mutate(rng, g, 0.001)
	if len(m) != len(g) {
		t.Fatal("length changed")
	}
	diffs := 0
	for i := range g {
		if g[i] != m[i] {
			diffs++
		}
	}
	if diffs < 100 || diffs > 320 {
		t.Fatalf("mutation count %d far from expectation 200 at rate 0.1%%", diffs)
	}
	if bytes.Equal(g, m) {
		t.Fatal("no mutations applied")
	}
}

func TestSimulatePairsErrorFreeMatchGenome(t *testing.T) {
	rng := xrt.NewPrng(6)
	g := Random(rng, 50000)
	recs, truth := SimulatePairs(rng, g, SimOptions{
		Coverage: 10,
		Lib:      Library{Name: "lib1", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      ErrorModel{}, // zero rates: error-free
	})
	if len(recs) != 2*len(truth) {
		t.Fatalf("records %d != 2x truth %d", len(recs), len(truth))
	}
	for i, tr := range truth {
		frag := g[tr.Pos : tr.Pos+tr.Insert]
		if tr.Flipped {
			frag = kmer.RevCompString(frag)
		}
		r1, r2 := recs[2*i], recs[2*i+1]
		if !bytes.Equal(r1.Seq, frag[:100]) {
			t.Fatalf("pair %d read1 mismatch", i)
		}
		want2 := kmer.RevCompString(frag[len(frag)-100:])
		if !bytes.Equal(r2.Seq, want2) {
			t.Fatalf("pair %d read2 mismatch", i)
		}
		if !strings.HasSuffix(string(r1.ID), "/1") || !strings.HasSuffix(string(r2.ID), "/2") {
			t.Fatalf("pair %d id suffixes wrong: %s %s", i, r1.ID, r2.ID)
		}
	}
}

func TestSimulatePairsCoverage(t *testing.T) {
	rng := xrt.NewPrng(7)
	g := Random(rng, 100000)
	recs, _ := SimulatePairs(rng, g, SimOptions{
		Coverage: 30,
		Lib:      Library{Name: "x", ReadLen: 100, InsertMean: 400, InsertSD: 30},
		Err:      DefaultErrorModel(),
	})
	bases := 0
	for _, r := range recs {
		bases += len(r.Seq)
	}
	cov := float64(bases) / float64(len(g))
	if cov < 29 || cov > 31 {
		t.Fatalf("achieved coverage %f, want ~30", cov)
	}
}

func TestErrorRatesApproximatelyHonored(t *testing.T) {
	rng := xrt.NewPrng(8)
	g := Random(rng, 20000)
	em := ErrorModel{StartRate: 0.01, EndRate: 0.05}
	recs, truth := SimulatePairs(rng, g, SimOptions{
		Coverage: 20,
		Lib:      Library{Name: "e", ReadLen: 100, InsertMean: 300, InsertSD: 0},
		Err:      em,
	})
	var errs, bases int
	for i, tr := range truth {
		frag := g[tr.Pos : tr.Pos+tr.Insert]
		if tr.Flipped {
			frag = kmer.RevCompString(frag)
		}
		want := frag[:100]
		got := recs[2*i].Seq
		for j := range want {
			bases++
			if want[j] != got[j] {
				errs++
			}
		}
	}
	rate := float64(errs) / float64(bases)
	if rate < 0.02 || rate > 0.04 { // mean of ramp 0.01..0.05 is 0.03
		t.Fatalf("observed error rate %f, want ~0.03", rate)
	}
}

func TestQualitiesReflectErrorModel(t *testing.T) {
	em := ErrorModel{StartRate: 0.001, EndRate: 0.1}
	first := em.qualChar(0, 100)
	last := em.qualChar(99, 100)
	if first <= last {
		t.Fatalf("quality should fall along the read: first %d last %d", first, last)
	}
	if first < 33+2 || first > 33+41 {
		t.Fatalf("quality %d out of phred+33 range", first)
	}
}

func TestDiploidHaplotypeSampling(t *testing.T) {
	rng := xrt.NewPrng(9)
	g := Random(rng, 30000)
	hap2 := Mutate(rng, g, 0.002)
	_, truth := SimulatePairs(rng, g, SimOptions{
		Coverage:   10,
		Lib:        Library{Name: "d", ReadLen: 80, InsertMean: 250, InsertSD: 10},
		Haplotypes: [][]byte{hap2},
	})
	counts := [2]int{}
	for _, tr := range truth {
		counts[tr.GenomeIdx]++
	}
	total := counts[0] + counts[1]
	if counts[0] < total/3 || counts[1] < total/3 {
		t.Fatalf("haplotype sampling skewed: %v", counts)
	}
}

func TestSimulateMetagenomeSamplesAllAbundantSpecies(t *testing.T) {
	rng := xrt.NewPrng(10)
	gs, ab := Metagenome(rng, 200000, 10)
	recs := SimulateMetagenome(rng, gs, ab, 2000,
		Library{Name: "meta", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		DefaultErrorModel())
	if len(recs) < 2000 {
		t.Fatalf("only %d records generated", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		id := string(r.ID)
		if i := strings.Index(id, "species"); i >= 0 {
			seen[id[i:i+10]] = true
		}
	}
	if len(seen) < 5 {
		t.Fatalf("reads only cover %d species", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	g1 := WheatLike(xrt.NewPrng(42), 50000)
	g2 := WheatLike(xrt.NewPrng(42), 50000)
	if !bytes.Equal(g1, g2) {
		t.Fatal("same seed produced different genomes")
	}
}

// Package genome synthesizes the evaluation datasets of the paper, scaled
// down: a "human-like" genome (mostly unique sequence, modest segmental
// duplication, diploid heterozygosity ~0.1%), a "wheat-like" genome
// (highly repetitive, with repeat families whose k-mers occur thousands of
// times — the skewed frequency distribution that motivates the heavy-
// hitter optimization of §3.1), and a metagenome (many species with
// log-normal abundances, producing the flat k-mer histogram of §5.4).
// It also provides the paired-end short-read simulator with positional
// error rates and phred+33 qualities.
package genome

import (
	"fmt"
	"math"

	"hipmer/internal/fastq"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// Genome is one synthesized reference sequence.
type Genome struct {
	Name string
	Seq  []byte
}

// Random returns n bases of uniform random sequence.
func Random(rng *xrt.Prng, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// HumanLike synthesizes a genome of length ~n that is mostly unique
// (matching the paper's observation that ~95% of human k-mers are
// singletons at the read level) but carries the two repeat classes that
// shape real human short-read assemblies: Alu-like interspersed elements
// (~300 bp, ~1% diverged copies every few kb — these break contigs and
// make paired-end scaffolding necessary, exactly the role they play in
// real data) and a few longer segmental duplications.
func HumanLike(rng *xrt.Prng, n int) []byte {
	g := make([]byte, 0, n+4096)
	alu := Random(rng, 300)
	var segs [][]byte
	for i := 0; i < 4; i++ {
		segs = append(segs, Random(rng, 500+rng.Intn(1500)))
	}
	for len(g) < n {
		x := rng.Float64()
		switch {
		case x < 0.02 && len(segs) > 0:
			seg := segs[rng.Intn(len(segs))]
			g = append(g, mutate(rng, seg, 0.01)...)
		default:
			g = append(g, Random(rng, 1200+rng.Intn(1800))...)
			g = append(g, mutate(rng, alu, 0.01)...)
		}
	}
	return g[:n]
}

// WheatLike synthesizes a highly repetitive genome reproducing the
// hexaploid-wheat pathology of §3.1 (2,000 k-mers occurring more than
// half a million times): most of the sequence consists of copies drawn
// from a few transposon-like repeat families with a power-law copy
// distribution, and ~8% consists of short-motif tandem-repeat runs
// (microsatellites), whose few distinct k-mers reach enormous counts and
// concentrate on single owner ranks — the load imbalance the heavy-hitter
// optimization exists to fix.
func WheatLike(rng *xrt.Prng, n int) []byte {
	const repeatFrac = 0.70
	const tandemFrac = 0.08
	type family struct {
		seq    []byte
		weight float64
	}
	fams := make([]family, 8)
	w := 1.0
	total := 0.0
	for i := range fams {
		fams[i] = family{seq: Random(rng, 400+rng.Intn(2000)), weight: w}
		total += w
		w *= 0.45 // power-law-ish copy counts
	}
	motifs := make([][]byte, 3)
	for i := range motifs {
		motifs[i] = Random(rng, 2+rng.Intn(5))
	}
	g := make([]byte, 0, n+4096)
	for len(g) < n {
		x := rng.Float64()
		switch {
		case x < tandemFrac:
			motif := motifs[rng.Intn(len(motifs))]
			runLen := 800 + rng.Intn(2000)
			for j := 0; j < runLen; j++ {
				g = append(g, motif[j%len(motif)])
			}
		case x < tandemFrac+repeatFrac:
			idx := 0
			y := rng.Float64() * total
			for acc := fams[0].weight; y > acc && idx < len(fams)-1; {
				idx++
				acc += fams[idx].weight
			}
			// copies carry light divergence, as real transposons do
			g = append(g, mutate(rng, fams[idx].seq, 0.002)...)
		default:
			g = append(g, Random(rng, 300+rng.Intn(1200))...)
		}
	}
	return g[:n]
}

// Metagenome synthesizes nSpecies genomes whose sizes and abundances are
// log-normally distributed, totalling ~n bases of reference sequence.
// The returned abundances are relative read-sampling weights.
func Metagenome(rng *xrt.Prng, n, nSpecies int) (genomes []Genome, abundance []float64) {
	if nSpecies < 1 {
		nSpecies = 1
	}
	sizes := make([]float64, nSpecies)
	var sum float64
	for i := range sizes {
		sizes[i] = math.Exp(rng.NormFloat64() * 0.8)
		sum += sizes[i]
	}
	for i := range sizes {
		sz := int(sizes[i] / sum * float64(n))
		if sz < 2000 {
			sz = 2000
		}
		genomes = append(genomes, Genome{
			Name: fmt.Sprintf("species%03d", i),
			Seq:  Random(rng, sz),
		})
		abundance = append(abundance, math.Exp(rng.NormFloat64()*1.2))
	}
	return genomes, abundance
}

// Mutate returns a copy of g with SNPs introduced at the given rate; used
// both for diploid second haplotypes and for the "another individual of
// the same species" scenario of the oracle experiments (§3.2: humans
// differ in 0.1–0.4% of base pairs).
func Mutate(rng *xrt.Prng, g []byte, rate float64) []byte {
	return mutate(rng, g, rate)
}

func mutate(rng *xrt.Prng, g []byte, rate float64) []byte {
	out := append([]byte(nil), g...)
	for i := range out {
		if rng.Float64() < rate {
			c, _ := kmer.BaseCode(out[i])
			out[i] = kmer.CodeBase((c + 1 + uint64(rng.Intn(3))) % 4)
		}
	}
	return out
}

// Library describes one paired-end read library (§5: the human data has a
// 395bp-insert library; wheat adds long-insert 1kbp and 4.2kbp libraries).
type Library struct {
	Name       string
	ReadLen    int
	InsertMean int
	InsertSD   int
}

// ErrorModel gives the per-base substitution error probability, rising
// linearly from StartRate at the 5' end to EndRate at the 3' end, as on
// real Illumina instruments. Qualities reflect the modelled rate.
type ErrorModel struct {
	StartRate float64
	EndRate   float64
}

// DefaultErrorModel matches a well-behaved short-read run.
func DefaultErrorModel() ErrorModel { return ErrorModel{StartRate: 0.001, EndRate: 0.01} }

func (e ErrorModel) rate(i, readLen int) float64 {
	if readLen <= 1 {
		return e.StartRate
	}
	return e.StartRate + (e.EndRate-e.StartRate)*float64(i)/float64(readLen-1)
}

func (e ErrorModel) qualChar(i, readLen int) byte {
	r := e.rate(i, readLen)
	if r <= 0 {
		return 33 + 41
	}
	q := int(-10 * math.Log10(r))
	if q > 41 {
		q = 41
	}
	if q < 2 {
		q = 2
	}
	return byte(33 + q)
}

// PairTruth records where a simulated pair really came from, for tests.
type PairTruth struct {
	GenomeIdx int
	Pos       int  // leftmost genome coordinate of the fragment
	Insert    int  // fragment length
	Flipped   bool // fragment drawn from the reverse strand
}

// SimOptions configures read simulation.
type SimOptions struct {
	Coverage float64
	Lib      Library
	Err      ErrorModel
	// Haplotypes: additional haplotype sequences sampled uniformly along
	// with the primary genome (diploid organisms pass one mutated copy).
	Haplotypes [][]byte
}

// SimulatePairs generates paired-end reads at the requested coverage from
// genome g (and any extra haplotypes). Records are interleaved: the reads
// of pair i are records 2i ("/1", forward) and 2i+1 ("/2", reverse
// complemented), the standard Illumina FR layout.
func SimulatePairs(rng *xrt.Prng, g []byte, opt SimOptions) ([]fastq.Record, []PairTruth) {
	seqs := append([][]byte{g}, opt.Haplotypes...)
	L := opt.Lib.ReadLen
	if L <= 0 {
		panic("genome: library read length must be positive")
	}
	nPairs := int(opt.Coverage * float64(len(g)) / float64(2*L))
	recs := make([]fastq.Record, 0, 2*nPairs)
	truth := make([]PairTruth, 0, nPairs)
	for i := 0; i < nPairs; i++ {
		hap := rng.Intn(len(seqs))
		src := seqs[hap]
		ins := opt.Lib.InsertMean
		if opt.Lib.InsertSD > 0 {
			ins += int(rng.NormFloat64() * float64(opt.Lib.InsertSD))
		}
		if ins < L {
			ins = L
		}
		if ins > len(src) {
			ins = len(src)
		}
		pos := rng.Intn(len(src) - ins + 1)
		frag := src[pos : pos+ins]
		flipped := rng.Float64() < 0.5
		if flipped {
			frag = kmer.RevCompString(frag)
		}
		r1 := applyErrors(rng, frag[:L], opt.Err)
		r2 := applyErrors(rng, kmer.RevCompString(frag[len(frag)-L:]), opt.Err)
		base := fmt.Sprintf("%s:%d:%d:%d:%t", opt.Lib.Name, i, pos, ins, flipped)
		recs = append(recs,
			fastq.Record{ID: []byte(base + "/1"), Seq: r1.seq, Qual: r1.qual},
			fastq.Record{ID: []byte(base + "/2"), Seq: r2.seq, Qual: r2.qual},
		)
		truth = append(truth, PairTruth{GenomeIdx: hap, Pos: pos, Insert: ins, Flipped: flipped})
	}
	return recs, truth
}

// SimulateMetagenome samples pairs across species proportionally to
// abundance × genome size.
func SimulateMetagenome(rng *xrt.Prng, genomes []Genome, abundance []float64,
	totalPairs int, lib Library, em ErrorModel) []fastq.Record {
	weights := make([]float64, len(genomes))
	var sum float64
	for i := range genomes {
		weights[i] = abundance[i] * float64(len(genomes[i].Seq))
		sum += weights[i]
	}
	var recs []fastq.Record
	for i := range genomes {
		pairs := int(weights[i] / sum * float64(totalPairs))
		if pairs == 0 {
			continue
		}
		cov := float64(2*pairs*lib.ReadLen) / float64(len(genomes[i].Seq))
		r, _ := SimulatePairs(rng, genomes[i].Seq, SimOptions{
			Coverage: cov,
			Lib: Library{Name: fmt.Sprintf("%s.%s", lib.Name, genomes[i].Name),
				ReadLen: lib.ReadLen, InsertMean: lib.InsertMean, InsertSD: lib.InsertSD},
			Err: em,
		})
		recs = append(recs, r...)
	}
	return recs
}

type simRead struct {
	seq, qual []byte
}

func applyErrors(rng *xrt.Prng, src []byte, em ErrorModel) simRead {
	seq := append([]byte(nil), src...)
	qual := make([]byte, len(seq))
	for i := range seq {
		qual[i] = em.qualChar(i, len(seq))
		if rng.Float64() < em.rate(i, len(seq)) {
			c, ok := kmer.BaseCode(seq[i])
			if ok {
				seq[i] = kmer.CodeBase((c + 1 + uint64(rng.Intn(3))) % 4)
			}
		}
	}
	return simRead{seq: seq, qual: qual}
}

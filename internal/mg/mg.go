// Package mg implements the Misra–Gries frequent-items ("heavy hitters")
// algorithm with mergeable summaries, as used by HipMer's k-mer analysis
// (paper §3.1) to identify k-mers frequent enough to cause owner-computes
// load imbalance on repetitive genomes. With θ counters, every item whose
// true frequency f(x) ≥ n/θ is guaranteed to be reported, and the reported
// estimate f'(x) satisfies f(x) − n/θ ≤ f'(x) ≤ f(x).
//
// Summaries merge by adding counts and subtracting the (θ+1)-th largest
// combined count (Agarwal et al., "Mergeable summaries"), preserving the
// error bound, which is what lets each rank scan its reads independently
// and the team reduce to a global heavy-hitter set — the parallelization
// of Cafaro & Tempesta the paper cites.
package mg

import "sort"

// Summary is a Misra–Gries sketch over items of comparable type K.
type Summary[K comparable] struct {
	theta    int
	counters map[K]int64
	n        int64 // stream length observed
}

// New creates a summary with θ counters (θ = 32,000 in the paper's wheat
// experiments).
func New[K comparable](theta int) *Summary[K] {
	if theta < 1 {
		theta = 1
	}
	return &Summary[K]{theta: theta, counters: make(map[K]int64, theta+1)}
}

// Offer feeds one occurrence of item x into the summary.
func (s *Summary[K]) Offer(x K) {
	s.n++
	if c, ok := s.counters[x]; ok {
		s.counters[x] = c + 1
		return
	}
	if len(s.counters) < s.theta {
		s.counters[x] = 1
		return
	}
	// decrement-all step; delete zeroed counters
	for k, c := range s.counters {
		if c == 1 {
			delete(s.counters, k)
		} else {
			s.counters[k] = c - 1
		}
	}
}

// N returns the number of items offered (including via merges).
func (s *Summary[K]) N() int64 { return s.n }

// Theta returns the counter budget.
func (s *Summary[K]) Theta() int { return s.theta }

// Count returns the estimated count of x (0 if untracked). The estimate
// is a lower bound on the true count.
func (s *Summary[K]) Count(x K) int64 { return s.counters[x] }

// Items returns the tracked items and their estimated counts.
func (s *Summary[K]) Items() map[K]int64 {
	out := make(map[K]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// HeavyHitters returns items whose estimated count is at least minCount,
// sorted by descending estimate (ties in unspecified order).
func (s *Summary[K]) HeavyHitters(minCount int64) []Hit[K] {
	var hits []Hit[K]
	for k, c := range s.counters {
		if c >= minCount {
			hits = append(hits, Hit[K]{Item: k, Count: c})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Count > hits[j].Count })
	return hits
}

// Hit is one reported frequent item.
type Hit[K comparable] struct {
	Item  K
	Count int64
}

// Merge folds other into s, preserving the Misra–Gries error guarantee
// for the combined stream. Both summaries should share θ.
func (s *Summary[K]) Merge(other *Summary[K]) {
	for k, c := range other.counters {
		s.counters[k] += c
	}
	s.n += other.n
	if len(s.counters) <= s.theta {
		return
	}
	// find the (θ+1)-th largest count and subtract it from everything
	counts := make([]int64, 0, len(s.counters))
	for _, c := range s.counters {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	sub := counts[s.theta]
	for k, c := range s.counters {
		if c <= sub {
			delete(s.counters, k)
		} else {
			s.counters[k] = c - sub
		}
	}
}

package mg

import (
	"math/rand"
	"testing"
)

// zipfStream generates a skewed stream mimicking a repetitive genome's
// k-mer frequency distribution.
func zipfStream(rng *rand.Rand, n, universe int) []int {
	z := rand.NewZipf(rng, 1.3, 1, uint64(universe-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

func trueCounts(stream []int) map[int]int64 {
	c := make(map[int]int64)
	for _, x := range stream {
		c[x]++
	}
	return c
}

func TestGuaranteeAllFrequentItemsReported(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stream := zipfStream(rng, 200000, 10000)
	theta := 100
	s := New[int](theta)
	for _, x := range stream {
		s.Offer(x)
	}
	truth := trueCounts(stream)
	bound := int64(len(stream) / theta)
	for x, f := range truth {
		if f >= bound && s.Count(x) == 0 {
			t.Fatalf("item %d with count %d >= n/θ=%d not tracked", x, f, bound)
		}
	}
}

func TestCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stream := zipfStream(rng, 100000, 5000)
	theta := 200
	s := New[int](theta)
	for _, x := range stream {
		s.Offer(x)
	}
	truth := trueCounts(stream)
	bound := int64(len(stream) / theta)
	for x, est := range s.Items() {
		f := truth[x]
		if est > f {
			t.Fatalf("item %d: estimate %d exceeds true count %d", x, est, f)
		}
		if est < f-bound {
			t.Fatalf("item %d: estimate %d below f-n/θ = %d", x, est, f-bound)
		}
	}
}

func TestMergePreservesGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stream := zipfStream(rng, 300000, 8000)
	theta := 150
	parts := 8
	merged := New[int](theta)
	chunk := len(stream) / parts
	for i := 0; i < parts; i++ {
		s := New[int](theta)
		for _, x := range stream[i*chunk : (i+1)*chunk] {
			s.Offer(x)
		}
		merged.Merge(s)
	}
	truth := trueCounts(stream[:parts*chunk])
	n := int64(parts * chunk)
	bound := n / int64(theta)
	if merged.N() != n {
		t.Fatalf("merged N = %d, want %d", merged.N(), n)
	}
	for x, f := range truth {
		est := merged.Count(x)
		if est > f {
			t.Fatalf("merged item %d: estimate %d > true %d", x, est, f)
		}
		if f >= 2*bound && est == 0 {
			// items comfortably above threshold must survive merging
			t.Fatalf("very frequent item %d (count %d, bound %d) lost in merge", x, f, bound)
		}
	}
	// size bound: merge must not blow up the summary
	if len(merged.Items()) > theta {
		t.Fatalf("merged summary has %d counters, θ=%d", len(merged.Items()), theta)
	}
}

func TestHeavyHittersSortedAndThresholded(t *testing.T) {
	s := New[string](10)
	for i := 0; i < 50; i++ {
		s.Offer("big")
	}
	for i := 0; i < 20; i++ {
		s.Offer("mid")
	}
	s.Offer("tiny")
	hits := s.HeavyHitters(5)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2: %v", len(hits), hits)
	}
	if hits[0].Item != "big" || hits[1].Item != "mid" {
		t.Fatalf("wrong order: %v", hits)
	}
	if hits[0].Count > 50 {
		t.Fatalf("estimate %d above true count", hits[0].Count)
	}
}

func TestUniformStreamYieldsNoSpuriousGiants(t *testing.T) {
	// On a uniform stream nothing is frequent; estimates must stay tiny.
	rng := rand.New(rand.NewSource(4))
	s := New[int](50)
	n := 100000
	for i := 0; i < n; i++ {
		s.Offer(rng.Intn(100000))
	}
	for x, c := range s.Items() {
		if c > int64(n/50) {
			t.Fatalf("uniform stream: item %d got estimate %d", x, c)
		}
	}
}

func TestThetaClamp(t *testing.T) {
	s := New[int](0)
	s.Offer(1)
	s.Offer(1)
	if s.Count(1) == 0 && len(s.Items()) > 1 {
		t.Fatal("θ clamp broken")
	}
	if s.Theta() != 1 {
		t.Fatalf("theta = %d, want 1", s.Theta())
	}
}

func BenchmarkOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	stream := zipfStream(rng, 100000, 10000)
	s := New[int](32000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(stream[i%len(stream)])
	}
}

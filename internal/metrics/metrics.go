// Package metrics turns the runtime's span records (internal/xrt) into
// the per-stage observability reports the paper's evaluation is made of:
// time in k-mer analysis vs. contig generation vs. scaffolding (Figures
// 6–8), communication volume by locality (Table 2), and load imbalance
// across ranks — the quantity the heavy-hitter optimization exists to
// flatten on repetitive genomes.
//
// A report renders two ways: a machine-readable JSON document with a
// stable schema (Schema names the version; changing the shape of the
// document requires bumping it and regenerating the golden file in this
// package's testdata), and a human table mirroring the paper's
// per-module breakdowns (FormatTable).
//
// Every field except the wall-clock ones (Report.WallNs, Stage.WallNs)
// derives from virtual time and deterministic operation counts, so two
// runs with the same configuration — including runs under different
// schedule-perturbation seeds — produce bit-identical reports after
// ZeroWall. The metamorphic tests in this package pin that property.
package metrics

import (
	"encoding/json"
	"fmt"
	"os"

	"hipmer/internal/stats"
	"hipmer/internal/xrt"
)

// Schema is the current report schema identifier. Bump the version
// suffix on any breaking change to the JSON shape.
const Schema = "hipmer-metrics/v1"

// Report is the top-level metrics document for one pipeline run.
type Report struct {
	Schema       string `json:"schema"`
	Dataset      string `json:"dataset,omitempty"`
	Ranks        int    `json:"ranks"`
	RanksPerNode int    `json:"ranks_per_node"`
	Seed         int64  `json:"seed"`
	// VirtualNs is the team's synchronized virtual clock when the report
	// was taken (the end-to-end modelled duration).
	VirtualNs int64 `json:"virtual_ns"`
	// WallNs is the summed physical duration of the top-level stages.
	// Nondeterministic; zeroed by ZeroWall.
	WallNs int64 `json:"wall_ns"`
	// Stages lists every recorded span in pre-order: top-level pipeline
	// stages at depth 0, named sub-spans beneath them.
	Stages []Stage `json:"stages"`
}

// Stage is one span's metrics.
type Stage struct {
	Name  string `json:"name"`
	Path  string `json:"path"`
	Depth int    `json:"depth"`
	// VirtualNs is the stage's modelled critical-path duration.
	VirtualNs int64 `json:"virtual_ns"`
	// WallNs is nondeterministic; zeroed by ZeroWall.
	WallNs int64 `json:"wall_ns"`
	// Comm aggregates the stage's communication over all ranks.
	Comm Comm `json:"comm"`
	// Imbalance summarizes the per-rank busy-time distribution.
	Imbalance stats.Dist `json:"imbalance"`
	// Utilization is mean rank busy time over stage virtual time
	// (0 for an empty stage).
	Utilization float64 `json:"utilization"`
	// PerRank holds one entry per rank, in rank order.
	PerRank []RankMetrics `json:"per_rank"`
	// Counters holds named stage counters (heavy_hitters,
	// walks_aborted, ...). Keys marshal in sorted order.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Comm mirrors xrt.CommStats plus derived rates. Rates are defined to
// be 0 (never NaN/Inf) when their denominators are 0 so that an
// empty-stage span still marshals.
type Comm struct {
	LocalLookups   int64 `json:"local_lookups"`
	OnNodeLookups  int64 `json:"on_node_lookups"`
	OffNodeLookups int64 `json:"off_node_lookups"`
	LocalStores    int64 `json:"local_stores"`
	OnNodeMsgs     int64 `json:"on_node_msgs"`
	OffNodeMsgs    int64 `json:"off_node_msgs"`
	OnNodeBytes    int64 `json:"on_node_bytes"`
	OffNodeBytes   int64 `json:"off_node_bytes"`
	IOBytes        int64 `json:"io_bytes"`
	IOWriteBytes   int64 `json:"io_write_bytes"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	// Reliability-layer counters, nonzero only under an xrt
	// MessageFaultPlan (chaos runs): lost transmissions, retransmissions,
	// duplicate deliveries discarded by the dedup window, and the bytes
	// carried by retransmissions and duplicates.
	Drops            int64 `json:"drops"`
	Retries          int64 `json:"retries"`
	Dups             int64 `json:"dups"`
	RedeliveredBytes int64 `json:"redelivered_bytes"`
	// Storage-fault counters, nonzero only under an xrt DiskFaultPlan:
	// checkpoint segments damaged by injection, and the manifest bytes a
	// scrub pass dropped back to recomputation while healing a resume.
	DiskFaults         int64 `json:"disk_faults"`
	ScrubRepairedBytes int64 `json:"scrub_repaired_bytes"`

	OffNodeLookupFrac float64 `json:"off_node_lookup_frac"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	BytesPerMsg       float64 `json:"bytes_per_msg"`
}

func commFrom(s xrt.CommStats) Comm {
	return Comm{
		LocalLookups:       s.LocalLookups,
		OnNodeLookups:      s.OnNodeLookups,
		OffNodeLookups:     s.OffNodeLookups,
		LocalStores:        s.LocalStores,
		OnNodeMsgs:         s.OnNodeMsgs,
		OffNodeMsgs:        s.OffNodeMsgs,
		OnNodeBytes:        s.OnNodeBytes,
		OffNodeBytes:       s.OffNodeBytes,
		IOBytes:            s.IOBytes,
		IOWriteBytes:       s.IOWriteBytes,
		CacheHits:          s.CacheHits,
		CacheMisses:        s.CacheMisses,
		Drops:              s.Drops,
		Retries:            s.Retries,
		Dups:               s.Dups,
		RedeliveredBytes:   s.RedeliveredBytes,
		DiskFaults:         s.DiskFaults,
		ScrubRepairedBytes: s.ScrubRepairedBytes,

		OffNodeLookupFrac: s.OffNodeLookupFrac(),
		CacheHitRate:      s.CacheHitRate(),
		BytesPerMsg:       s.BytesPerMsg(),
	}
}

// RankMetrics is one rank's contribution to a stage.
type RankMetrics struct {
	Rank int `json:"rank"`
	// WorkNs is the rank's charged busy time (virtual, deterministic).
	WorkNs int64 `json:"work_ns"`
	// Lookups / OffNodeLookups / Msgs / Bytes / IOBytes / CacheHits
	// summarize the rank's communication delta.
	Lookups        int64 `json:"lookups"`
	OffNodeLookups int64 `json:"off_node_lookups"`
	Msgs           int64 `json:"msgs"`
	Bytes          int64 `json:"bytes"`
	IOBytes        int64 `json:"io_bytes"`
	CacheHits      int64 `json:"cache_hits"`
	// Retries is the rank's retransmission count (chaos runs only).
	Retries int64 `json:"retries"`
}

// FromTeam builds a report from the team's recorded spans. Call after
// the pipeline has closed every span (between phases, never during one).
func FromTeam(team *xrt.Team) *Report {
	cfg := team.Config()
	rep := &Report{
		Schema:       Schema,
		Ranks:        cfg.Ranks,
		RanksPerNode: cfg.RanksPerNode,
		Seed:         cfg.Seed,
		VirtualNs:    int64(team.VirtualNow()),
	}
	for _, sp := range team.Spans() {
		st := stageFrom(sp)
		if st.Depth == 0 {
			rep.WallNs += st.WallNs
		}
		rep.Stages = append(rep.Stages, st)
	}
	return rep
}

func stageFrom(sp *xrt.SpanRecord) Stage {
	st := Stage{
		Name:      sp.Name,
		Path:      sp.Path,
		Depth:     sp.Depth,
		VirtualNs: int64(sp.VirtualNs),
		WallNs:    sp.WallNs,
		Comm:      commFrom(sp.AggComm()),
	}
	work := make([]float64, len(sp.Ranks))
	for i, rd := range sp.Ranks {
		work[i] = rd.WorkNs
		st.PerRank = append(st.PerRank, RankMetrics{
			Rank:           i,
			WorkNs:         int64(rd.WorkNs),
			Lookups:        rd.Comm.Lookups(),
			OffNodeLookups: rd.Comm.OffNodeLookups,
			Msgs:           rd.Comm.Msgs(),
			Bytes:          rd.Comm.Bytes(),
			IOBytes:        rd.Comm.IOBytes,
			CacheHits:      rd.Comm.CacheHits,
			Retries:        rd.Comm.Retries,
		})
	}
	st.Imbalance = stats.NewDist(work)
	if sp.VirtualNs > 0 {
		st.Utilization = st.Imbalance.Mean / sp.VirtualNs
	}
	if len(sp.Counters) > 0 {
		st.Counters = make(map[string]int64, len(sp.Counters))
		for k, v := range sp.Counters {
			st.Counters[k] = v
		}
	}
	return st
}

// Stage returns the first stage whose path matches (nil if absent).
func (r *Report) Stage(path string) *Stage {
	for i := range r.Stages {
		if r.Stages[i].Path == path {
			return &r.Stages[i]
		}
	}
	return nil
}

// ZeroWall returns a deep copy of the report with every wall-clock field
// zeroed — the canonical form for golden files and bit-identity
// comparisons across schedule perturbations.
func (r *Report) ZeroWall() *Report {
	cp := *r
	cp.WallNs = 0
	cp.Stages = make([]Stage, len(r.Stages))
	for i, st := range r.Stages {
		st.WallNs = 0
		st.PerRank = append([]RankMetrics(nil), st.PerRank...)
		if st.Counters != nil {
			m := make(map[string]int64, len(st.Counters))
			for k, v := range st.Counters {
				m[k] = v
			}
			st.Counters = m
		}
		cp.Stages[i] = st
	}
	return &cp
}

// ZeroProfile returns a deep copy with every performance-profile field
// zeroed: wall clocks, virtual times, utilization, imbalance, all
// communication numbers, per-rank work, and the named counters (pass the
// stage counters that track contention or memory high-water marks, e.g.
// pipeline.ScheduleDependentCounters). What remains — the schema, the
// stage tree, and the outcome counters — is the projection of the report
// that is bit-identical across goroutine interleavings even for
// speculative phases, whose profile legitimately varies with the
// physical schedule (see DESIGN.md §9). Zeroed fields keep their JSON
// keys, so a golden file of the projection still pins the full schema.
func (r *Report) ZeroProfile(counters ...string) *Report {
	cp := r.ZeroWall()
	cp.VirtualNs = 0
	dep := make(map[string]bool, len(counters))
	for _, c := range counters {
		dep[c] = true
	}
	for i := range cp.Stages {
		st := &cp.Stages[i]
		st.VirtualNs = 0
		st.Comm = Comm{}
		st.Imbalance = stats.Dist{}
		st.Utilization = 0
		for j := range st.PerRank {
			st.PerRank[j] = RankMetrics{Rank: st.PerRank[j].Rank}
		}
		for k := range st.Counters {
			if dep[k] {
				st.Counters[k] = 0
			}
		}
	}
	return cp
}

// MarshalIndent renders the report as stable, indented JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report (or, via WriteFileAll, several) as JSON.
func (r *Report) WriteFile(path string) error {
	b, err := r.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// WriteFileAll writes several reports as a JSON array.
func WriteFileAll(path string, reports []*Report) error {
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile parses a report written by WriteFile. A file holding a JSON
// array (WriteFileAll) yields its reports in order.
func ReadFile(path string) ([]*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Try single-report form first, then the array form.
	var one Report
	if err := json.Unmarshal(b, &one); err == nil && one.Schema != "" {
		return []*Report{&one}, nil
	}
	var many []*Report
	if err := json.Unmarshal(b, &many); err != nil {
		return nil, fmt.Errorf("metrics: %s is neither a report nor a report array: %w", path, err)
	}
	for _, r := range many {
		if r == nil || r.Schema == "" {
			return nil, fmt.Errorf("metrics: %s contains a non-report entry", path)
		}
	}
	return many, nil
}

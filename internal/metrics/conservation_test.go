package metrics_test

import (
	"math"
	"testing"

	"hipmer/internal/xrt"
)

// TestCommConservation checks that the span accounting loses nothing:
// for every rank, the communication deltas recorded by the top-level
// stage spans sum exactly to the team's end-to-end totals (CommStats is
// integral, so the comparison is field-exact), and the busy-time deltas
// sum to the rank's cumulative work within float tolerance. A leak here
// would mean some stage's traffic is invisible in the breakdown.
func TestCommConservation(t *testing.T) {
	_, team := toyRun(t, 0)
	p := team.Config().Ranks
	sums := make([]xrt.CommStats, p)
	work := make([]float64, p)
	for _, sp := range team.Spans() {
		if sp.Depth != 0 {
			continue
		}
		if len(sp.Ranks) != p {
			t.Fatalf("span %q has %d rank deltas, want %d", sp.Path, len(sp.Ranks), p)
		}
		for i, rd := range sp.Ranks {
			sums[i].Add(rd.Comm)
			work[i] += rd.WorkNs
		}
	}
	for i := 0; i < p; i++ {
		if sums[i] != team.RankStats(i) {
			t.Errorf("rank %d: depth-0 span comm sums %+v != end-to-end totals %+v",
				i, sums[i], team.RankStats(i))
		}
		total := team.RankWorkNs(i)
		if diff := math.Abs(work[i] - total); diff > 1e-6*math.Max(1, total) {
			t.Errorf("rank %d: span work sums %.3f != total work %.3f (diff %.3g)",
				i, work[i], total, diff)
		}
	}
}

// TestSubSpanContainment checks the nesting invariant: a sub-span's
// per-rank communication never exceeds its parent stage's.
func TestSubSpanContainment(t *testing.T) {
	res, _ := toyRun(t, 0)
	rep := res.Metrics
	for _, st := range rep.Stages {
		if st.Depth == 0 {
			continue
		}
		parent := rep.Stage(st.Path[:lastSlash(st.Path)])
		if parent == nil {
			t.Fatalf("sub-span %q has no parent span", st.Path)
		}
		for i, rm := range st.PerRank {
			pm := parent.PerRank[i]
			if rm.Lookups > pm.Lookups || rm.Msgs > pm.Msgs ||
				rm.Bytes > pm.Bytes || rm.WorkNs > pm.WorkNs {
				t.Errorf("sub-span %q rank %d exceeds parent %q: %+v > %+v",
					st.Path, i, parent.Path, rm, pm)
			}
		}
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return 0
}

// TestSpeculativeTraversalCounters pins the speculative-traversal
// identity: every walk that claims a seed either completes a contig or
// aborts on a lost conflict — claims == wins + aborts, by construction.
func TestSpeculativeTraversalCounters(t *testing.T) {
	res, _ := toyRun(t, 0)
	st := res.Metrics.Stage("contig-generation/traverse")
	if st == nil {
		t.Fatal("no contig-generation/traverse span")
	}
	c := st.Counters
	if c["walks_claimed"] == 0 {
		t.Fatal("no claimed walks recorded")
	}
	if c["walks_claimed"] != c["walks_completed"]+c["walks_aborted"] {
		t.Errorf("claims %d != completed %d + aborted %d",
			c["walks_claimed"], c["walks_completed"], c["walks_aborted"])
	}
	// The counters must agree with the stage result's own tallies.
	if res.Contigs.Claimed != c["walks_claimed"] ||
		res.Contigs.Completed != c["walks_completed"] ||
		res.Contigs.Aborted != c["walks_aborted"] {
		t.Errorf("span counters (%d/%d/%d) disagree with contig.Result (%d/%d/%d)",
			c["walks_claimed"], c["walks_completed"], c["walks_aborted"],
			res.Contigs.Claimed, res.Contigs.Completed, res.Contigs.Aborted)
	}
}

// TestVirtualTimeAccounting checks that the report's end-to-end virtual
// time equals both the team clock and (within per-stage truncation) the
// sum of the top-level stage spans — the stages tile the run.
func TestVirtualTimeAccounting(t *testing.T) {
	res, team := toyRun(t, 0)
	rep := res.Metrics
	if rep.VirtualNs != int64(team.VirtualNow()) {
		t.Errorf("report VirtualNs %d != team clock %d", rep.VirtualNs, int64(team.VirtualNow()))
	}
	var sum, n int64
	for _, st := range rep.Stages {
		if st.Depth == 0 {
			sum += st.VirtualNs
			n++
		}
	}
	if diff := rep.VirtualNs - sum; diff < -n || diff > n {
		t.Errorf("depth-0 stage virtual times sum to %d, report total %d (diff %d > ±%d truncation)",
			sum, rep.VirtualNs, diff, n)
	}
}

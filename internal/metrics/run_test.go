package metrics_test

import (
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// toyRun executes the full pipeline on a small deterministic dataset: a
// 4-rank, 2-ranks-per-node team assembling an 8 kb random genome at 20x
// coverage. Every metrics test in this package derives from this one
// configuration so the golden file, the metamorphic sweep, and the
// conservation checks all pin the same run.
func toyRun(t *testing.T, perturbSeed int64) (*pipeline.Result, *xrt.Team) {
	t.Helper()
	rng := xrt.NewPrng(4)
	g := genome.Random(rng, 8000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 20,
		Lib:      genome.Library{Name: "toy", ReadLen: 100, InsertMean: 300, InsertSD: 20},
	})
	team := xrt.NewTeam(xrt.Config{
		Ranks: 4, RanksPerNode: 2, Seed: 7,
		Perturb: xrt.PerturbPlan{Seed: perturbSeed},
	})
	res, err := pipeline.Run(team,
		[]pipeline.Library{{Name: "toy", Records: recs, InsertHint: 300}},
		pipeline.Config{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("pipeline returned no metrics report")
	}
	return res, team
}

// syntheticRun drives the metrics layer directly on a 4-rank team with a
// deterministic, race-free workload touching every charge class, nested
// spans, and counters. Unlike the full pipeline — whose speculative
// phases have schedule-dependent performance profiles by design — every
// charge here is in rank-local program order, so the entire report except
// the wall-clock fields must be bit-identical across any interleaving.
// This isolates the metrics layer's own determinism from the runtime's.
func syntheticRun(perturbSeed int64) *metrics.Report {
	team := xrt.NewTeam(xrt.Config{
		Ranks: 4, RanksPerNode: 2, Seed: 9,
		Perturb: xrt.PerturbPlan{Seed: perturbSeed},
	})
	team.BeginSpan("ingest")
	team.Run(func(r *xrt.Rank) {
		r.ChargeIORead(int64(10_000 * (r.ID + 1))) // skewed on purpose
		r.ChargeItems(250 * (r.ID + 1))
	})
	team.AddCounter("records", 1000)
	team.EndSpan()

	team.BeginSpan("exchange")
	team.BeginSpan("scatter")
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 50+10*r.ID; i++ {
			r.ChargeLookup((r.ID+1+i)%4, 64)
		}
		r.ChargeStoreBatch((r.ID+2)%4, 100, 6400)
		r.ChargeForeign((r.ID+1)%4, 5_000)
		r.Barrier()
		r.ChargeCacheHit()
	})
	team.AddCounter("batches", 4)
	team.EndSpan()
	team.BeginSpan("reduce")
	team.Run(func(r *xrt.Rank) {
		r.Charge(float64(1_000 * (4 - r.ID)))
	})
	team.EndSpan()
	team.EndSpan()

	// An empty span: zero denominators must stay zero in the report.
	team.BeginSpan("idle")
	team.EndSpan()
	return metrics.FromTeam(team)
}

package metrics_test

import (
	"math"
	"strings"
	"testing"

	"hipmer/internal/metrics"
	"hipmer/internal/xrt"
)

// TestEmptySpanZeroDenominators is the regression test for the derived-
// rate helpers: a span that did no work (zero lookups, zero messages,
// zero cache accesses) must report every rate as exactly 0 — never
// NaN or Inf, which would poison the JSON encoder and every downstream
// aggregation.
func TestEmptySpanZeroDenominators(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 3, RanksPerNode: 2})
	team.BeginSpan("empty")
	team.EndSpan()
	rep := metrics.FromTeam(team)

	st := rep.Stage("empty")
	if st == nil {
		t.Fatal("empty span not reported")
	}
	rates := map[string]float64{
		"off_node_lookup_frac": st.Comm.OffNodeLookupFrac,
		"cache_hit_rate":       st.Comm.CacheHitRate,
		"bytes_per_msg":        st.Comm.BytesPerMsg,
		"utilization":          st.Utilization,
		"gini":                 st.Imbalance.Gini,
		"mean":                 st.Imbalance.Mean,
	}
	for name, v := range rates {
		if v != 0 {
			t.Errorf("empty span %s = %v, want 0", name, v)
		}
	}
	// All-equal (all-zero) rank work: max/mean is defined to be exactly 1.
	if st.Imbalance.MaxOverMean != 1 {
		t.Errorf("empty span max/mean = %v, want 1 (all ranks equal)", st.Imbalance.MaxOverMean)
	}

	// The canonical failure mode: NaN does not survive json.Marshal.
	b, err := rep.ZeroWall().MarshalIndent()
	if err != nil {
		t.Fatalf("empty-span report does not marshal: %v", err)
	}
	for _, bad := range []string{"NaN", "Inf", "null"} {
		if strings.Contains(string(b), bad) {
			t.Errorf("empty-span report JSON contains %s", bad)
		}
	}

	// The human rendering must also stay finite.
	if text := rep.FormatTable(); strings.Contains(text, "NaN") || strings.Contains(text, "Inf") {
		t.Errorf("empty-span table contains NaN/Inf:\n%s", text)
	}
}

// TestCommStatsDerivedRatesZero pins the xrt helpers the report is built
// from, including on the result of Sub with identical operands (an
// empty stage delta).
func TestCommStatsDerivedRatesZero(t *testing.T) {
	var s xrt.CommStats
	d := s.Sub(s)
	for name, v := range map[string]float64{
		"BytesPerMsg":       d.BytesPerMsg(),
		"OffNodeLookupFrac": d.OffNodeLookupFrac(),
		"CacheHitRate":      d.CacheHitRate(),
	} {
		if v != 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("zero CommStats %s = %v, want exactly 0", name, v)
		}
	}
}

// TestAddCounterWithoutSpan: stage packages call AddCounter
// unconditionally; with no open span (a stage driven directly by its own
// tests) it must be a silent no-op.
func TestAddCounterWithoutSpan(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	team.AddCounter("orphan", 5)
	if n := len(team.Spans()); n != 0 {
		t.Errorf("AddCounter without a span created %d records", n)
	}
}

// TestNestedSpanPaths pins the path construction sub-span counters and
// lookups key on.
func TestNestedSpanPaths(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	team.BeginSpan("outer")
	team.BeginSpan("mid")
	team.BeginSpan("inner")
	team.AddCounter("c", 2)
	team.AddCounter("c", 3)
	team.EndSpan()
	team.EndSpan()
	team.EndSpan()
	rep := metrics.FromTeam(team)
	if got := len(rep.Stages); got != 3 {
		t.Fatalf("%d stages, want 3", got)
	}
	inner := rep.Stage("outer/mid/inner")
	if inner == nil {
		t.Fatal("missing path outer/mid/inner")
	}
	if inner.Depth != 2 || inner.Name != "inner" {
		t.Errorf("inner depth/name = %d/%q", inner.Depth, inner.Name)
	}
	if inner.Counters["c"] != 5 {
		t.Errorf("counter c = %d, want 5 (accumulated)", inner.Counters["c"])
	}
}

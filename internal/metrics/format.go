package metrics

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// FormatTable renders the report as the paper-style per-module
// breakdown: one row per stage (sub-spans indented beneath their stage),
// with virtual time, share of total, load-imbalance factors, and
// communication locality — the layout of the paper's per-stage tables.
func (r *Report) FormatTable() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "per-stage breakdown — %d ranks", r.Ranks)
	if r.RanksPerNode > 0 {
		nodes := (r.Ranks + r.RanksPerNode - 1) / r.RanksPerNode
		fmt.Fprintf(&buf, " (%d nodes)", nodes)
	}
	fmt.Fprintf(&buf, ", seed %d", r.Seed)
	if r.Dataset != "" {
		fmt.Fprintf(&buf, ", dataset %s", r.Dataset)
	}
	fmt.Fprintf(&buf, "\ntotal virtual time %v\n\n", time.Duration(r.VirtualNs))

	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "stage\tvirtual\t%total\timb\tgini\tutil\toff-node%\tcache%\tmsgs\ttraffic\tretx")
	for _, st := range r.Stages {
		name := strings.Repeat("  ", st.Depth) + st.Name
		pct := 0.0
		if r.VirtualNs > 0 {
			pct = 100 * float64(st.VirtualNs) / float64(r.VirtualNs)
		}
		fmt.Fprintf(w, "%s\t%v\t%.1f\t%.2f\t%.3f\t%.2f\t%.1f\t%s\t%d\t%s\t%s\n",
			name,
			time.Duration(st.VirtualNs),
			pct,
			st.Imbalance.MaxOverMean,
			st.Imbalance.Gini,
			st.Utilization,
			100*st.Comm.OffNodeLookupFrac,
			cachePct(st.Comm),
			st.Comm.OnNodeMsgs+st.Comm.OffNodeMsgs,
			humanBytes(st.Comm.OnNodeBytes+st.Comm.OffNodeBytes),
			retxFmt(st.Comm),
		)
	}
	w.Flush()

	var withCounters []*Stage
	for i := range r.Stages {
		if len(r.Stages[i].Counters) > 0 {
			withCounters = append(withCounters, &r.Stages[i])
		}
	}
	if len(withCounters) > 0 {
		fmt.Fprintf(&buf, "\nstage counters\n")
		cw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
		for _, st := range withCounters {
			keys := make([]string, 0, len(st.Counters))
			for k := range st.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, st.Counters[k])
			}
			fmt.Fprintf(cw, "%s\t%s\n", st.Path, strings.Join(parts, " "))
		}
		cw.Flush()
	}
	return buf.String()
}

// retxFmt renders the reliability-layer activity as retries/dups plus
// the redelivered volume, or "-" outside chaos runs (no MessageFaultPlan
// or a stage with no retransmissions).
func retxFmt(c Comm) string {
	if c.Drops == 0 && c.Retries == 0 && c.Dups == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d (%s)", c.Retries, c.Dups, humanBytes(c.RedeliveredBytes))
}

// cachePct renders the cache hit rate, or "-" when no cached table was
// read during the stage.
func cachePct(c Comm) string {
	if c.CacheHits+c.CacheMisses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*c.CacheHitRate)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

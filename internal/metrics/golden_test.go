package metrics_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

// compareGolden checks got against the named golden file, rewriting it
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report JSON differs from golden %s\n%s\n(regenerate with -update if the schema change is intentional)",
			golden, firstDiff(got, want))
	}
}

// TestGoldenSyntheticReport pins the full numeric schema on the
// deterministic synthetic workload: every field except wall clocks is
// reproducible across any goroutine interleaving, so the golden holds
// real virtual times, comm counts, and imbalance statistics.
func TestGoldenSyntheticReport(t *testing.T) {
	rep := syntheticRun(0)
	got, err := rep.ZeroWall().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "synthetic_report.json", got)
}

// TestGoldenToyReport pins the schema and the deterministic projection of
// a real 4-rank toy assembly's report. The projection (ZeroProfile)
// zeroes the performance-profile numbers — per-rank attribution in the
// speculative traversal, and everything downstream of which rank won a
// claim race, legitimately varies with the physical schedule (DESIGN.md
// §9) — while keeping every JSON key and all outcome counters, so schema
// drift and semantic drift both surface as a reviewed diff.
func TestGoldenToyReport(t *testing.T) {
	res, _ := toyRun(t, 0)
	rep := res.Metrics

	// Structural assertions first, so a failure explains itself better
	// than a byte diff.
	if rep.Schema != metrics.Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, metrics.Schema)
	}
	if rep.Ranks != 4 || rep.RanksPerNode != 2 {
		t.Errorf("ranks = %d/%d, want 4/2", rep.Ranks, rep.RanksPerNode)
	}
	if rep.WallNs <= 0 {
		t.Errorf("pre-ZeroWall report has WallNs = %d, want > 0", rep.WallNs)
	}
	if rep.VirtualNs <= 0 {
		t.Errorf("report VirtualNs = %d, want > 0", rep.VirtualNs)
	}
	for _, path := range []string{
		"io", "kmer-analysis", "contig-generation", "scaffolding", "gap-closing",
		"kmer-analysis/count", "contig-generation/traverse",
		"scaffolding/merAligner", "gap-closing/close",
	} {
		st := rep.Stage(path)
		if st == nil {
			t.Fatalf("missing stage span %q", path)
		}
		if len(st.PerRank) != 4 {
			t.Errorf("stage %q has %d per-rank entries, want 4", path, len(st.PerRank))
		}
	}
	depth0 := 0
	for _, st := range rep.Stages {
		if st.Depth == 0 {
			depth0++
		}
		if st.Imbalance.Mean > 0 && st.Imbalance.MaxOverMean < 1 {
			t.Errorf("stage %q: max/mean = %v < 1", st.Path, st.Imbalance.MaxOverMean)
		}
	}
	if depth0 != 5 {
		t.Errorf("%d top-level stage spans, want 5 (io, kmer, contig, scaffold, gapclose)", depth0)
	}
	tr := rep.Stage("contig-generation/traverse")
	if tr.Counters["walks_claimed"] == 0 {
		t.Error("traverse span recorded no claimed walks")
	}

	got, err := rep.ZeroProfile(pipeline.ScheduleDependentCounters...).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "toy_report.json", got)
}

// firstDiff renders the first differing line of two texts.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(gl), len(wl))
}

// TestZeroWallIsDeepCopy guards the golden comparison's canonicalizer:
// zeroing the copy must leave the original untouched.
func TestZeroWallIsDeepCopy(t *testing.T) {
	res, _ := toyRun(t, 0)
	rep := res.Metrics
	origWall := rep.WallNs
	cp := rep.ZeroWall()
	if cp.WallNs != 0 {
		t.Errorf("copy WallNs = %d, want 0", cp.WallNs)
	}
	for _, st := range cp.Stages {
		if st.WallNs != 0 {
			t.Errorf("copy stage %q WallNs = %d, want 0", st.Path, st.WallNs)
		}
	}
	if rep.WallNs != origWall {
		t.Error("ZeroWall mutated the original report")
	}
	cp.Stages[0].PerRank[0].WorkNs = -1
	if rep.Stages[0].PerRank[0].WorkNs == -1 {
		t.Error("ZeroWall shares PerRank slices with the original")
	}
	if tc := cp.Stage("contig-generation/traverse"); tc != nil && tc.Counters != nil {
		before := rep.Stage("contig-generation/traverse").Counters["walks_claimed"]
		tc.Counters["walks_claimed"] = -1
		if rep.Stage("contig-generation/traverse").Counters["walks_claimed"] != before {
			t.Error("ZeroWall shares Counters maps with the original")
		}
	}
}

// TestZeroProfileKeepsOutcomes: the projection must zero profile numbers
// but preserve schema identity, the stage tree, and outcome counters.
func TestZeroProfileKeepsOutcomes(t *testing.T) {
	res, _ := toyRun(t, 0)
	rep := res.Metrics
	cp := rep.ZeroProfile(pipeline.ScheduleDependentCounters...)
	if cp.VirtualNs != 0 {
		t.Errorf("projection VirtualNs = %d, want 0", cp.VirtualNs)
	}
	if len(cp.Stages) != len(rep.Stages) {
		t.Fatalf("projection has %d stages, original %d", len(cp.Stages), len(rep.Stages))
	}
	for i, st := range cp.Stages {
		if st.Path != rep.Stages[i].Path || st.Depth != rep.Stages[i].Depth {
			t.Errorf("stage %d tree changed: %q/%d vs %q/%d",
				i, st.Path, st.Depth, rep.Stages[i].Path, rep.Stages[i].Depth)
		}
		if st.VirtualNs != 0 || st.Utilization != 0 || st.Comm != (metrics.Comm{}) {
			t.Errorf("stage %q profile not zeroed", st.Path)
		}
		for _, rm := range st.PerRank {
			if rm.WorkNs != 0 || rm.Lookups != 0 {
				t.Errorf("stage %q per-rank profile not zeroed", st.Path)
			}
		}
	}
	tr := cp.Stage("contig-generation/traverse")
	if tr.Counters["walks_claimed"] != 0 {
		t.Error("schedule-dependent counter walks_claimed not zeroed")
	}
	if got, want := tr.Counters["walks_completed"], res.Contigs.Completed; got != want {
		t.Errorf("outcome counter walks_completed = %d, want %d", got, want)
	}
	if cp.Stage("contig-generation").Counters["contigs"] == 0 {
		t.Error("outcome counter contigs was zeroed")
	}
}

// TestReadWriteRoundTrip covers both on-disk forms: the single report
// (hipmer -metrics-out) and the report array (benchsuite -metrics-out).
func TestReadWriteRoundTrip(t *testing.T) {
	res, _ := toyRun(t, 0)
	rep := res.Metrics.ZeroWall()
	dir := t.TempDir()

	single := filepath.Join(dir, "one.json")
	if err := rep.WriteFile(single); err != nil {
		t.Fatal(err)
	}
	got, err := metrics.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Schema != metrics.Schema || len(got[0].Stages) != len(rep.Stages) {
		t.Fatalf("single round-trip: got %d reports", len(got))
	}

	many := filepath.Join(dir, "many.json")
	if err := metrics.WriteFileAll(many, []*metrics.Report{rep, rep}); err != nil {
		t.Fatal(err)
	}
	got, err = metrics.ReadFile(many)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].VirtualNs != rep.VirtualNs {
		t.Fatalf("array round-trip: got %d reports", len(got))
	}
}

// TestFormatTable smoke-tests the human rendering: every top-level stage
// appears, and no NaN/Inf leaks into the text.
func TestFormatTable(t *testing.T) {
	res, _ := toyRun(t, 0)
	text := res.Metrics.FormatTable()
	for _, want := range []string{"io", "kmer-analysis", "contig-generation",
		"scaffolding", "gap-closing", "merAligner"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if bytes.Contains([]byte(text), []byte(bad)) {
			t.Errorf("table contains %s:\n%s", bad, text)
		}
	}
}

package metrics_test

import (
	"bytes"
	"reflect"
	"testing"

	"hipmer/internal/pipeline"
)

var perturbSeeds = []int64{0, 1, 7, 42}

// TestMetamorphicLayer is the metrics layer's own metamorphic property:
// on a workload whose charges are all in rank-local program order,
// sweeping schedule-perturbation seeds (PR 2's harness) reorders the
// physical execution but must not move a single non-wall field — full
// bit-identity of the report after ZeroWall. Only the WallNs fields read
// ambient clocks; everything else derives from virtual time and
// operation counts. A failure here means the metrics layer (or the
// runtime's charge accounting) laundered wall-clock time into a
// deterministic field.
func TestMetamorphicLayer(t *testing.T) {
	var base []byte
	for _, s := range perturbSeeds {
		b, err := syntheticRun(s).ZeroWall().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = b
			continue
		}
		if !bytes.Equal(b, base) {
			t.Errorf("perturb seed %d: report differs from seed %d\n%s",
				s, perturbSeeds[0], firstDiff(b, base))
		}
	}
}

// TestMetamorphicPipeline sweeps the perturbation seeds over the full
// toy assembly. The pipeline's speculative phases have schedule-
// dependent performance profiles by design (which rank wins a claim
// race, how much work a loser wastes — see DESIGN.md §9), so the
// bit-identity claim is made on the deterministic projection
// (ZeroProfile): the schema, the complete stage tree, and every outcome
// counter must be identical across seeds. On top of that, invariants
// that hold within any single schedule are checked per seed:
// claims = wins + aborts, and wins equal to the (schedule-invariant)
// contig count.
func TestMetamorphicPipeline(t *testing.T) {
	var base []byte
	var baseContigs int64
	for _, s := range perturbSeeds {
		res, _ := toyRun(t, s)
		rep := res.Metrics

		tr := rep.Stage("contig-generation/traverse")
		c := tr.Counters
		if c["walks_claimed"] != c["walks_completed"]+c["walks_aborted"] {
			t.Errorf("seed %d: claims %d != completed %d + aborted %d",
				s, c["walks_claimed"], c["walks_completed"], c["walks_aborted"])
		}

		b, err := rep.ZeroProfile(pipeline.ScheduleDependentCounters...).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base, baseContigs = b, res.Contigs.Completed
			continue
		}
		if !bytes.Equal(b, base) {
			t.Errorf("perturb seed %d: deterministic projection differs from seed %d\n%s",
				s, perturbSeeds[0], firstDiff(b, base))
		}
		if res.Contigs.Completed != baseContigs {
			t.Errorf("seed %d: completed walks %d != %d (contig set must be schedule-invariant)",
				s, res.Contigs.Completed, baseContigs)
		}
	}
}

// TestMetamorphicIOStage: the io stage has no speculation — its charges
// are pure deterministic partitioning — so unlike the traversal its FULL
// profile (virtual time, per-rank work, comm, imbalance) must be
// bit-identical across perturbation seeds, wall fields aside.
func TestMetamorphicIOStage(t *testing.T) {
	res0, _ := toyRun(t, 0)
	io0 := res0.Metrics.ZeroWall().Stage("io")
	for _, s := range perturbSeeds[1:] {
		res, _ := toyRun(t, s)
		io := res.Metrics.ZeroWall().Stage("io")
		if !reflect.DeepEqual(io, io0) {
			t.Errorf("seed %d: io stage profile differs:\n%+v\nvs\n%+v", s, io, io0)
		}
	}
}

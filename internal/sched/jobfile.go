package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hipmer/internal/pipeline"
)

// jobFileEntry is the on-disk JSON shape of one submitted job (see
// ParseJobFile).
type jobFileEntry struct {
	Tenant  string `json:"tenant"`
	Name    string `json:"name"`
	Dataset *struct {
		// Kind is human, wheat, or metagenome (simulated datasets).
		Kind     string  `json:"kind"`
		Len      int     `json:"len"`
		Coverage float64 `json:"coverage"`
		Species  int     `json:"species"`
		Pairs    int     `json:"pairs"`
		Seed     int64   `json:"seed"`
	} `json:"dataset"`
	Reads []struct {
		// Path to a FASTQ or .seqdb file (relative paths resolve against
		// the job file's directory).
		Path   string `json:"path"`
		Insert int    `json:"insert"`
	} `json:"reads"`
	K           int     `json:"k"`
	KmerLens    []int   `json:"kmer_lens"`
	MinCount    int     `json:"min_count"`
	ContigsOnly bool    `json:"contigs_only"`
	Ranks       int     `json:"ranks"`
	Priority    int     `json:"priority"`
	ArrivalMs   int64   `json:"arrival_ms"`
	Seed        int64   `json:"seed"`
	FailStage   string  `json:"fail_stage"`
	FaultSeed   int64   `json:"fault_seed"`
	ChaosSeed   int64   `json:"chaos_seed"`
	DropRate    float64 `json:"drop_rate"`
	RetryBudget int     `json:"retry_budget"`
}

// ParseJobFile reads a JSON job file (a list of job entries) into
// JobSpecs. Each entry names its tenant and either a simulated dataset
// ({"kind": "human", "len": 2000, "coverage": 12, "seed": 7}) or a list
// of read files ingested by the block reader. Arrival times are virtual
// milliseconds.
func ParseJobFile(path string) ([]JobSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sched: reading job file: %w", err)
	}
	var entries []jobFileEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("sched: parsing job file %s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("sched: job file %s is empty", path)
	}
	dir := filepath.Dir(path)
	specs := make([]JobSpec, 0, len(entries))
	for i, e := range entries {
		if e.Tenant == "" {
			return nil, fmt.Errorf("sched: job %d: missing tenant", i)
		}
		spec := JobSpec{
			Tenant: e.Tenant,
			Name:   e.Name,
			Pipeline: pipeline.Config{
				K:           e.K,
				KmerLens:    e.KmerLens,
				MinCount:    e.MinCount,
				ContigsOnly: e.ContigsOnly,
			},
			Ranks:       e.Ranks,
			Priority:    e.Priority,
			Arrival:     time.Duration(e.ArrivalMs) * time.Millisecond,
			Seed:        e.Seed,
			FailStage:   e.FailStage,
			FaultSeed:   e.FaultSeed,
			ChaosSeed:   e.ChaosSeed,
			DropRate:    e.DropRate,
			RetryBudget: e.RetryBudget,
		}
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("job%d", i)
		}
		switch {
		case e.Dataset != nil:
			libs, err := datasetLibs(e.Dataset.Kind, e.Dataset.Seed, e.Dataset.Len,
				e.Dataset.Coverage, e.Dataset.Species, e.Dataset.Pairs)
			if err != nil {
				return nil, fmt.Errorf("sched: job %d (%s): %w", i, spec.Name, err)
			}
			spec.Libs = libs
			if e.Dataset.Kind == "metagenome" && e.KmerLens == nil {
				spec.Pipeline.ContigsOnly = true
			}
		case len(e.Reads) > 0:
			for _, rd := range e.Reads {
				p := rd.Path
				if !filepath.IsAbs(p) {
					p = filepath.Join(dir, p)
				}
				spec.Libs = append(spec.Libs, pipeline.Library{
					Name: filepath.Base(p), Path: p, InsertHint: rd.Insert,
				})
			}
		default:
			return nil, fmt.Errorf("sched: job %d (%s): needs dataset or reads", i, spec.Name)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func datasetLibs(kind string, seed int64, length int, coverage float64, species, pairs int) ([]pipeline.Library, error) {
	if seed == 0 {
		seed = 1
	}
	switch kind {
	case "human":
		if length <= 0 {
			length = 2000
		}
		if coverage <= 0 {
			coverage = 12
		}
		_, libs := pipeline.SimulatedHuman(seed, length, coverage)
		return libs, nil
	case "wheat":
		if length <= 0 {
			length = 3000
		}
		if coverage <= 0 {
			coverage = 12
		}
		_, libs := pipeline.SimulatedWheat(seed, length, coverage)
		return libs, nil
	case "metagenome":
		if length <= 0 {
			length = 12000
		}
		if species <= 0 {
			species = 6
		}
		if pairs <= 0 {
			pairs = 900
		}
		return pipeline.SimulatedMetagenome(seed, length, species, pairs), nil
	default:
		return nil, fmt.Errorf("unknown dataset kind %q (want human, wheat, or metagenome)", kind)
	}
}

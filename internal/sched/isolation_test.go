package sched

import (
	"bytes"
	"testing"
	"time"

	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// soloRun assembles a spec alone on a fresh machine at the given rank
// count — the reference output for the service's bit-identity
// guarantee.
func soloRun(t *testing.T, spec JobSpec, ranks, ranksPerNode int) [][]byte {
	t.Helper()
	team := xrt.NewTeam(xrt.Config{Ranks: ranks, RanksPerNode: ranksPerNode, Seed: spec.Seed})
	res, err := pipeline.Run(team, spec.Libs, spec.Pipeline)
	if err != nil {
		t.Fatalf("solo run of %s: %v", spec.Name, err)
	}
	return res.FinalSeqs
}

// TestCrossJobIsolation is the isolation satellite on the real
// pipeline: a shared cluster runs healthy jobs next to one with an
// injected mid-pipeline rank crash and one with a chaos plan that
// exhausts its retry budget. The faulted jobs must requeue and complete
// from their own checkpoints, and every job's assembly must be
// bit-identical to a solo run of the same spec — the neighbours never
// see the faults. A second pass of the whole schedule pins report
// determinism with real pipelines in the loop.
func TestCrossJobIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("real-pipeline service test")
	}
	tmp := t.TempDir()
	tpls, err := DefaultTemplates(20151115, tmp)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Template)
	for _, tpl := range tpls {
		byName[tpl.Name] = tpl
	}
	mk := func(name, tenant string, arrival time.Duration) JobSpec {
		tpl := byName[name]
		return JobSpec{
			Tenant: tenant, Name: name, Libs: tpl.Libs, Pipeline: tpl.Pipeline,
			Ranks: tpl.Ranks, Seed: tpl.Seed, Arrival: arrival,
		}
	}
	crash := mk("human-s", "acme", 0)
	crash.FaultSeed = 7
	crash.FailStage = "contig-generation"
	chaos := mk("wheat-s", "bio", time.Millisecond)
	chaos.ChaosSeed = 11
	chaos.DropRate = 0.5
	chaos.RetryBudget = 1
	specs := []JobSpec{
		crash,
		chaos,
		mk("human-s", "bio", 2*time.Millisecond),
		mk("human-m", "acme", 3*time.Millisecond),
		mk("meta-s", "acme", 4*time.Millisecond),
	}

	run := func() *Outcome {
		cfg := Config{Ranks: 16, RanksPerNode: 8, Seed: 3, DefaultQuota: 12, CkptRoot: t.TempDir()}
		s, err := New(cfg, &PipelineRunner{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Run(specs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run()

	for i, jr := range out.Jobs {
		if jr.State != StateCompleted {
			t.Fatalf("job %d (%s) state %q: %s", i, jr.Name, jr.State, jr.Reason)
		}
		final := jr.RanksUsed[len(jr.RanksUsed)-1]
		solo := soloRun(t, specs[i], final, 8)
		if !verify.EqualSets(verify.CanonicalSet(jr.Seqs), verify.CanonicalSet(solo)) {
			t.Fatalf("job %d (%s, tenant %s) assembly differs from its solo run at %d ranks",
				i, jr.Name, jr.Tenant, final)
		}
	}
	if out.Jobs[0].Requeues == 0 {
		t.Fatal("crash-armed job completed without a requeue")
	}
	if out.Jobs[1].Requeues == 0 {
		t.Fatal("chaos-exhaustion job completed without a requeue")
	}
	for i := 2; i < len(out.Jobs); i++ {
		if out.Jobs[i].Requeues != 0 {
			t.Fatalf("healthy job %d was requeued %d times", i, out.Jobs[i].Requeues)
		}
	}

	// Determinism with real pipelines: a second pass of the identical
	// schedule yields bit-identical report bytes.
	b1, err := out.Report.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := run().Report.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("real-pipeline schedule not deterministic:\n--- run 1\n%s\n--- run 2\n%s", b1, b2)
	}
}

// TestPreemptionResumesFromTruncatedCkpt drives a real preemption: a
// low-priority job is preempted by a high-priority arrival, its
// checkpoint truncated to the stages completed at the boundary, and the
// resumed job's output stays bit-identical to a solo run.
func TestPreemptionResumesFromTruncatedCkpt(t *testing.T) {
	if testing.Short() {
		t.Skip("real-pipeline service test")
	}
	tmp := t.TempDir()
	tpls, err := DefaultTemplates(20151115, tmp)
	if err != nil {
		t.Fatal(err)
	}
	var humanM, wheatS Template
	for _, tpl := range tpls {
		switch tpl.Name {
		case "human-m":
			humanM = tpl
		case "wheat-s":
			wheatS = tpl
		}
	}
	victim := JobSpec{
		Tenant: "acme", Name: humanM.Name, Libs: humanM.Libs, Pipeline: humanM.Pipeline,
		Ranks: 8, Seed: humanM.Seed, Priority: 0,
	}
	// The preemptor arrives mid-run and needs the whole cluster.
	preemptor := JobSpec{
		Tenant: "bio", Name: wheatS.Name, Libs: wheatS.Libs, Pipeline: wheatS.Pipeline,
		Ranks: 8, Seed: wheatS.Seed, Priority: 5, Arrival: 2 * time.Millisecond,
	}
	cfg := Config{Ranks: 8, RanksPerNode: 8, Seed: 3, DefaultQuota: 8, DisableRescale: true, CkptRoot: t.TempDir()}
	s, err := New(cfg, &PipelineRunner{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run([]JobSpec{victim, preemptor})
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", out.Report.Preemptions)
	}
	if out.Jobs[0].Preemptions != 1 || out.Jobs[0].Attempts != 2 {
		t.Fatalf("victim preempted %d times over %d attempts, want 1 over 2",
			out.Jobs[0].Preemptions, out.Jobs[0].Attempts)
	}
	for i, jr := range out.Jobs {
		if jr.State != StateCompleted {
			t.Fatalf("job %d state %q: %s", i, jr.State, jr.Reason)
		}
	}
	solo := soloRun(t, victim, 8, 8)
	if !verify.EqualSets(verify.CanonicalSet(out.Jobs[0].Seqs), verify.CanonicalSet(solo)) {
		t.Fatal("preempted+resumed job's assembly differs from its solo run")
	}
}

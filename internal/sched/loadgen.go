package sched

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"hipmer/internal/fastq"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// Template is one job archetype the load generator draws from: a
// dataset, a pipeline configuration, and a requested rank count. All
// jobs stamped from one template share the dataset and team seed, so a
// solo-run baseline can be memoized per (template, final rank count)
// when checking the service's bit-identity guarantee over thousands of
// jobs.
type Template struct {
	Name     string
	Libs     []pipeline.Library
	Pipeline pipeline.Config
	Ranks    int
	Seed     int64
	// Weight is the template's relative draw probability.
	Weight int
}

// DefaultTemplates builds the mixed human/wheat/metagenome job pool of
// the heavy-traffic exhibit: tiny genomes (the service multiplexes
// thousands of them), one of which is materialized as a FASTQ file under
// dir so the streamed block-reader ingestion path is part of the mix.
func DefaultTemplates(seed int64, dir string) ([]Template, error) {
	_, humanS := pipeline.SimulatedHuman(seed, 2000, 12)
	_, humanM := pipeline.SimulatedHuman(seed+1, 4000, 15)
	_, wheatS := pipeline.SimulatedWheat(seed+2, 3000, 12)
	metaS := pipeline.SimulatedMetagenome(seed+3, 12000, 6, 900)

	// human-s arrives as an on-disk FASTQ, ingested with the parallel
	// block reader like a real submission payload.
	path := filepath.Join(dir, "human-s.fastq")
	if err := os.WriteFile(path, fastq.Format(humanS[0].Records), 0o644); err != nil {
		return nil, fmt.Errorf("sched: materializing template fastq: %w", err)
	}
	humanFile := []pipeline.Library{{Name: humanS[0].Name, Path: path, InsertHint: humanS[0].InsertHint}}

	return []Template{
		{Name: "human-s", Libs: humanFile, Pipeline: pipeline.Config{K: 21}, Ranks: 4, Seed: seed + 11, Weight: 5},
		{Name: "human-m", Libs: humanM, Pipeline: pipeline.Config{K: 21}, Ranks: 8, Seed: seed + 12, Weight: 3},
		{Name: "wheat-s", Libs: wheatS, Pipeline: pipeline.Config{K: 21}, Ranks: 4, Seed: seed + 13, Weight: 3},
		{Name: "meta-s", Libs: metaS, Pipeline: pipeline.Config{K: 21, ContigsOnly: true}, Ranks: 8, Seed: seed + 14, Weight: 1},
	}, nil
}

// LoadConfig parameterizes the seeded open-loop load generator.
type LoadConfig struct {
	// Seed drives every draw (default 1).
	Seed int64
	// Tenants is the number of synthetic tenants (>= 1); tenant demand
	// is Zipf-skewed, like real multi-tenant traffic.
	Tenants int
	// Jobs is the total number of submissions (>= 1).
	Jobs int
	// MeanGapNs is the mean virtual interarrival gap (exponential;
	// > 0, default 10ms).
	MeanGapNs int64
	// Burst is the maximum burst size: some arrivals bring a burst of
	// 2..Burst near-simultaneous submissions (1 disables bursts).
	Burst int
	// FaultFrac of jobs arrive with an armed mid-pipeline rank crash
	// (requeue + resume exercises). In [0, 1].
	FaultFrac float64
	// ChaosFrac of jobs arrive with message chaos armed; a quarter of
	// them get a hard plan (50% drop, retry budget 1) that is guaranteed
	// to exhaust and requeue. In [0, 1].
	ChaosFrac float64
	// DiskFrac of jobs arrive with an armed storage fault paired with a
	// rank crash strictly after it: attempt 1 damages one stage's
	// checkpoint on disk, then crashes later, so the requeued resume must
	// detect the damage, scrub, and recompute the suffix. In [0, 1].
	// Zero leaves the PRNG draw stream untouched (existing workload
	// baselines stay valid).
	DiskFrac float64
	// MaxPriority draws per-job priorities uniformly from 0..MaxPriority
	// (0 = single priority class).
	MaxPriority int
	// Oversize is the number of jobs (spread through the stream) that
	// request an unsatisfiable rank count, exercising structural
	// admission rejection (default 0).
	Oversize int
}

// Validate rejects unusable load-generator parameters (the benchsuite
// -serve flag-validation contract).
func (c LoadConfig) Validate() error {
	if c.Tenants < 1 {
		return fmt.Errorf("tenants must be >= 1, got %d", c.Tenants)
	}
	if c.Jobs < 1 {
		return fmt.Errorf("jobs must be >= 1, got %d", c.Jobs)
	}
	if c.MeanGapNs < 0 {
		return fmt.Errorf("mean arrival gap must be > 0, got %d", c.MeanGapNs)
	}
	if c.Burst < 0 {
		return fmt.Errorf("burst must be >= 1, got %d", c.Burst)
	}
	if c.FaultFrac < 0 || c.FaultFrac > 1 {
		return fmt.Errorf("fault fraction must be in [0, 1], got %g", c.FaultFrac)
	}
	if c.ChaosFrac < 0 || c.ChaosFrac > 1 {
		return fmt.Errorf("chaos fraction must be in [0, 1], got %g", c.ChaosFrac)
	}
	if c.DiskFrac < 0 || c.DiskFrac > 1 {
		return fmt.Errorf("disk-fault fraction must be in [0, 1], got %g", c.DiskFrac)
	}
	if c.MaxPriority < 0 {
		return fmt.Errorf("max priority must be >= 0, got %d", c.MaxPriority)
	}
	if c.Oversize < 0 || c.Oversize > c.Jobs {
		return fmt.Errorf("oversize must be in 0..jobs, got %d", c.Oversize)
	}
	return nil
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanGapNs == 0 {
		c.MeanGapNs = int64(10 * time.Millisecond)
	}
	if c.Burst == 0 {
		c.Burst = 1
	}
	return c
}

// TenantNames returns the synthetic tenant names t00..tNN.
func TenantNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	return names
}

// DefaultTenantConfigs assigns quotas to n synthetic tenants over a
// ranks-sized cluster: quotas cycle through full / half / quarter of
// the cluster (floored at minQuota so every template fits).
func DefaultTenantConfigs(n, ranks, minQuota int) []TenantConfig {
	cycle := []int{ranks, ranks / 2, ranks / 4}
	out := make([]TenantConfig, n)
	for i, name := range TenantNames(n) {
		q := cycle[i%len(cycle)]
		if q < minQuota {
			q = minQuota
		}
		if q > ranks {
			q = ranks
		}
		out[i] = TenantConfig{Name: name, Quota: q}
	}
	return out
}

// GenJobs draws the workload: seeded open-loop arrivals with
// exponential gaps and occasional bursts, Zipf-skewed tenant demand,
// weighted template mix, and injected per-job faults. The same config
// and templates always produce the same specs.
func GenJobs(c LoadConfig, templates []Template) ([]JobSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("sched: loadgen needs at least one template")
	}
	c = c.withDefaults()
	prng := xrt.NewPrng(c.Seed)

	totW := 0
	for _, t := range templates {
		if t.Weight <= 0 {
			return nil, fmt.Errorf("sched: template %q has weight %d", t.Name, t.Weight)
		}
		totW += t.Weight
	}
	// Zipf-ish tenant weights: tenant i draws with weight 1/(i+1).
	tnames := TenantNames(c.Tenants)
	cum := make([]float64, c.Tenants)
	var zsum float64
	for i := range cum {
		zsum += 1 / float64(i+1)
		cum[i] = zsum
	}

	oversizeEvery := 0
	if c.Oversize > 0 {
		oversizeEvery = c.Jobs / c.Oversize
	}

	var specs []JobSpec
	now := time.Duration(0)
	for len(specs) < c.Jobs {
		// Exponential interarrival, occasionally a burst of
		// near-simultaneous submissions.
		gap := -math.Log(1-prng.Float64()) * float64(c.MeanGapNs)
		now += time.Duration(gap)
		burst := 1
		if c.Burst > 1 && prng.Float64() < 0.25 {
			burst = 2 + prng.Intn(c.Burst-1)
		}
		for b := 0; b < burst && len(specs) < c.Jobs; b++ {
			// Zipf tenant draw.
			u := prng.Float64() * zsum
			ti := 0
			for ti < len(cum)-1 && u > cum[ti] {
				ti++
			}
			// Weighted template draw.
			w := prng.Intn(totW)
			tpl := templates[0]
			for _, t := range templates {
				if w < t.Weight {
					tpl = t
					break
				}
				w -= t.Weight
			}
			i := len(specs)
			spec := JobSpec{
				Tenant:   tnames[ti],
				Name:     tpl.Name,
				Libs:     tpl.Libs,
				Pipeline: tpl.Pipeline,
				Ranks:    tpl.Ranks,
				Seed:     tpl.Seed,
				Arrival:  now + time.Duration(b)*time.Microsecond,
				// Per-job wall-clock schedule perturbation: diversifies
				// physical interleavings without touching virtual time.
				PerturbSeed: prng.Int63() | 1,
			}
			if c.MaxPriority > 0 {
				spec.Priority = prng.Intn(c.MaxPriority + 1)
			}
			if oversizeEvery > 0 && i%oversizeEvery == oversizeEvery-1 {
				spec.Ranks = 1 << 20 // over any quota: structural rejection
			}
			if prng.Float64() < c.FaultFrac {
				// Crash in a random checkpointable stage past input.
				names := pipeline.StageNames(tpl.Pipeline)
				spec.FailStage = names[1+prng.Intn(len(names)-1)]
				spec.FaultSeed = prng.Int63() | 1
			}
			if prng.Float64() < c.ChaosFrac {
				spec.ChaosSeed = prng.Int63() | 1
				if prng.Float64() < 0.25 {
					// Hard plan: guaranteed retry exhaustion → requeue.
					spec.DropRate = 0.5
					spec.RetryBudget = 1
				} else {
					spec.DropRate = 0.05 + 0.10*prng.Float64()
					spec.RetryBudget = 16
				}
			}
			// The DiskFrac > 0 guard keeps the draw stream identical to
			// older configs when disk faults are off.
			if names := pipeline.StageNames(tpl.Pipeline); c.DiskFrac > 0 &&
				len(names) >= 3 && prng.Float64() < c.DiskFrac {
				// A damaged checkpoint only matters if the job comes back
				// for it: pair the disk fault with a crash strictly after
				// it. Attempt 1 damages stage di's segment, crashes later;
				// the requeued resume detects the damage, scrubs, and
				// recomputes di..end.
				di := 1 + prng.Intn(len(names)-2)
				spec.DiskFaultStage = names[di]
				spec.DiskFaultSeed = prng.Int63() | 1
				spec.FailStage = names[di+1+prng.Intn(len(names)-1-di)]
				spec.FaultSeed = prng.Int63() | 1
			}
			specs = append(specs, spec)
		}
	}
	return specs, nil
}

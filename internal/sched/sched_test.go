package sched

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hipmer/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeTemplates is a synthetic job pool for fake-runner tests (no real
// datasets: the fake derives work from name+seed only).
func fakeTemplates() []Template {
	return []Template{
		{Name: "small", Pipeline: pipeline.Config{K: 21}, Ranks: 4, Seed: 11, Weight: 5},
		{Name: "medium", Pipeline: pipeline.Config{K: 21}, Ranks: 8, Seed: 12, Weight: 3},
		{Name: "large", Pipeline: pipeline.Config{K: 21}, Ranks: 16, Seed: 13, Weight: 1},
	}
}

func fakeLoad(t *testing.T, lc LoadConfig) []JobSpec {
	t.Helper()
	specs, err := GenJobs(lc, fakeTemplates())
	if err != nil {
		t.Fatalf("GenJobs: %v", err)
	}
	return specs
}

func runFake(t *testing.T, cfg Config, specs []JobSpec) *Outcome {
	t.Helper()
	cfg.CkptRoot = t.TempDir()
	s, err := New(cfg, newFakeRunner())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out, err := s.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

func serviceConfig(trace bool) Config {
	return Config{
		Ranks:        32,
		RanksPerNode: 8,
		Seed:         7,
		QueueCap:     256,
		DefaultQuota: 16,
		Trace:        trace,
	}
}

// TestReportDeterminism is the two-run golden of the determinism
// satellite: the same seeded workload scheduled twice marshals to
// bit-identical hipmer-sched/v1 bytes, and those bytes match the
// committed golden (so wall-clock or map-order leaks fail loudly).
func TestReportDeterminism(t *testing.T) {
	lc := LoadConfig{
		Seed: 42, Tenants: 8, Jobs: 400, MeanGapNs: int64(3 * time.Millisecond),
		Burst: 6, FaultFrac: 0.08, ChaosFrac: 0.15, MaxPriority: 2, Oversize: 4,
	}
	var runs [][]byte
	for i := 0; i < 2; i++ {
		out := runFake(t, serviceConfig(false), fakeLoad(t, lc))
		b, err := out.Report.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		runs = append(runs, b)
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("two runs of the same seeded workload produced different reports:\n--- run 1\n%s\n--- run 2\n%s", runs[0], runs[1])
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, runs[0], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(runs[0], want) {
		t.Fatalf("report differs from golden %s (regenerate with -update if the change is intentional)\ngot:\n%s", golden, runs[0])
	}
}

// TestServiceOutcomes checks the seeded workload actually exercises the
// service machinery: rejections, requeues, preemptions, rescales all
// fire, every admitted job reaches a terminal state, and fault-injected
// jobs complete after requeue + resume.
func TestServiceOutcomes(t *testing.T) {
	lc := LoadConfig{
		Seed: 42, Tenants: 8, Jobs: 400, MeanGapNs: int64(3 * time.Millisecond),
		Burst: 6, FaultFrac: 0.08, ChaosFrac: 0.15, MaxPriority: 2, Oversize: 4,
	}
	specs := fakeLoad(t, lc)
	out := runFake(t, serviceConfig(false), specs)
	r := out.Report

	if r.Jobs != 400 {
		t.Fatalf("report jobs = %d, want 400", r.Jobs)
	}
	if r.Completed+r.Failed+r.Rejected != r.Jobs {
		t.Fatalf("jobs don't all reach a terminal state: %d + %d + %d != %d",
			r.Completed, r.Failed, r.Rejected, r.Jobs)
	}
	if r.Rejected < lc.Oversize {
		t.Fatalf("rejected %d < %d oversize jobs", r.Rejected, lc.Oversize)
	}
	if r.Requeues == 0 {
		t.Fatal("no requeues despite injected faults")
	}
	if r.Preemptions == 0 {
		t.Fatal("no preemptions despite mixed priorities on a saturated cluster")
	}
	if r.Rescales == 0 {
		t.Fatal("no elastic rescales despite requeued resumable jobs")
	}
	if r.Failed != 0 {
		t.Fatalf("%d terminal failures; faults are disarmed on requeue so all jobs should complete", r.Failed)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v out of (0, 1]", r.Utilization)
	}

	faulted := 0
	for i, jr := range out.Jobs {
		if jr.State == StateRejected {
			if specs[i].Ranks <= 32 {
				t.Fatalf("job %d rejected but its request was satisfiable: %s", i, jr.Reason)
			}
			continue
		}
		if jr.State != StateCompleted {
			t.Fatalf("job %d state %q: %s", i, jr.State, jr.Reason)
		}
		if specs[i].FaultSeed != 0 || (specs[i].ChaosSeed != 0 && specs[i].RetryBudget == 1) {
			if jr.Requeues == 0 && jr.Preemptions == 0 && specs[i].FaultSeed != 0 {
				t.Fatalf("fault-armed job %d completed without a requeue", i)
			}
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("workload contained no fault-armed jobs")
	}
}

// TestAdmissionControl covers the structural rejection reasons and the
// bounded queue.
func TestAdmissionControl(t *testing.T) {
	cfg := Config{
		Ranks: 16, Seed: 1, QueueCap: 2,
		Tenants: []TenantConfig{{Name: "a", Quota: 16}, {Name: "b", Quota: 4}},
	}
	mk := func(tenant string, ranks int, arrival time.Duration) JobSpec {
		return JobSpec{Tenant: tenant, Name: "small", Ranks: ranks, Seed: 11, Arrival: arrival}
	}
	specs := []JobSpec{
		mk("a", 16, 0),               // occupies the whole cluster
		mk("ghost", 4, time.Microsecond), // unknown tenant
		mk("b", 8, time.Microsecond), // over tenant quota
		mk("b", 0, time.Microsecond), // nonsense rank request
		// Queue cap 2: the first two queue, the third is bounced.
		mk("a", 4, 2 * time.Microsecond),
		mk("a", 4, 3 * time.Microsecond),
		mk("a", 4, 4 * time.Microsecond),
	}
	out := runFake(t, cfg, specs)

	wantStates := []string{
		StateCompleted, StateRejected, StateRejected, StateRejected,
		StateCompleted, StateCompleted, StateRejected,
	}
	for i, want := range wantStates {
		if out.Jobs[i].State != want {
			t.Errorf("job %d state %q (reason %q), want %q", i, out.Jobs[i].State, out.Jobs[i].Reason, want)
		}
	}
	if out.Report.Rejected != 4 {
		t.Fatalf("report rejected = %d, want 4", out.Report.Rejected)
	}
	if !strings.Contains(out.Jobs[6].Reason, "queue full") {
		t.Fatalf("job 6 reason %q, want queue-full", out.Jobs[6].Reason)
	}
}

// TestElasticRescale: a requeued resumable job finds its requested rank
// count occupied but idle capacity free, and resumes downscaled.
func TestElasticRescale(t *testing.T) {
	cfg := Config{Ranks: 16, Seed: 1, DefaultQuota: 16, DisablePreempt: true}
	specs := []JobSpec{
		// Faulted 16-rank job: fails, requeues as resumable.
		{Tenant: "a", Name: "big", Ranks: 16, Seed: 5, FaultSeed: 9, FailStage: "s4"},
		// A higher-priority 12-rank job queued behind the crash wins the
		// post-crash dispatch, so the resumed job can only fit on 4.
		{Tenant: "b", Name: "long", Ranks: 12, Seed: 6, Priority: 1, Arrival: time.Millisecond},
	}
	out := runFake(t, cfg, specs)
	j := out.Jobs[0]
	if j.State != StateCompleted {
		t.Fatalf("faulted job state %q: %s", j.State, j.Reason)
	}
	if j.Requeues != 1 {
		t.Fatalf("faulted job requeues = %d, want 1", j.Requeues)
	}
	if !j.Rescaled {
		t.Fatalf("resumed job was not rescaled; ranks used %v", j.RanksUsed)
	}
	last := j.RanksUsed[len(j.RanksUsed)-1]
	if last >= 16 || last < 1 {
		t.Fatalf("resumed allocation %d, want a downscale in [1, 16)", last)
	}
	if out.Report.Rescales == 0 {
		t.Fatal("report records no rescales")
	}
}

// TestRetryBudgetTerminalFailure: a job that keeps failing is
// terminally failed after MaxRetries requeues and does not poison the
// rest of the schedule.
func TestRetryBudgetTerminalFailure(t *testing.T) {
	cfg := Config{Ranks: 16, Seed: 1, DefaultQuota: 8, MaxRetries: 1}
	specs := []JobSpec{
		{Tenant: "a", Name: "doomed", Ranks: 4, Seed: 5, FaultSeed: 9, FailStage: "s4"},
		{Tenant: "b", Name: "fine", Ranks: 4, Seed: 6},
	}
	// The fake disarms nothing on its own, but the scheduler disarms the
	// fault on requeue, so "doomed" would normally succeed on attempt 2.
	// Force repeated failure with a runner that always fails the job.
	s, err := New(cfg, alwaysFail{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Jobs[0].State != StateFailed {
		t.Fatalf("doomed job state %q, want failed", out.Jobs[0].State)
	}
	if out.Jobs[0].Attempts != 2 {
		t.Fatalf("doomed job attempts = %d, want 2 (1 + MaxRetries)", out.Jobs[0].Attempts)
	}
	if out.Jobs[1].State != StateFailed {
		// alwaysFail fails everything; job 1 fails too. The point is the
		// schedule terminates and both reach terminal states.
		t.Fatalf("job 1 state %q", out.Jobs[1].State)
	}
	if out.Report.Failed != 2 {
		t.Fatalf("report failed = %d, want 2", out.Report.Failed)
	}
}

type alwaysFail struct{}

func (alwaysFail) Run(spec JobSpec, att Attempt) RunOutcome {
	return RunOutcome{Virtual: 10 * time.Millisecond, Failed: true, Err: "synthetic", FailedStage: "s1"}
}
func (alwaysFail) Preempt(int, string, []string) error { return nil }

func TestConfigValidate(t *testing.T) {
	base := Config{Ranks: 32, Tenants: []TenantConfig{{Name: "a", Quota: 32}}}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no ranks", func(c *Config) { c.Ranks = 0 }, "ranks"},
		{"negative queue", func(c *Config) { c.QueueCap = -1 }, "queue-cap"},
		{"zero quota", func(c *Config) { c.Tenants = []TenantConfig{{Name: "a", Quota: 0}} }, "quota"},
		{"quota over cluster", func(c *Config) { c.Tenants = []TenantConfig{{Name: "a", Quota: 64}} }, "exceeds"},
		{"duplicate tenant", func(c *Config) {
			c.Tenants = []TenantConfig{{Name: "a", Quota: 16}, {Name: "a", Quota: 32}}
		}, "duplicate"},
		{"unnamed tenant", func(c *Config) { c.Tenants = []TenantConfig{{Quota: 4}} }, "empty name"},
		{"stranded capacity", func(c *Config) { c.Tenants = []TenantConfig{{Name: "a", Quota: 4}} }, "unusable"},
		{"bad default quota", func(c *Config) { c.DefaultQuota = 64 }, "default-quota"},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }, "max-retries"},
		{"negative aging", func(c *Config) { c.AgingNs = -1 }, "aging"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadConfigValidate(t *testing.T) {
	base := LoadConfig{Tenants: 8, Jobs: 100}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid load config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LoadConfig)
		want string
	}{
		{"no tenants", func(c *LoadConfig) { c.Tenants = 0 }, "tenants"},
		{"no jobs", func(c *LoadConfig) { c.Jobs = 0 }, "jobs"},
		{"negative gap", func(c *LoadConfig) { c.MeanGapNs = -5 }, "gap"},
		{"negative burst", func(c *LoadConfig) { c.Burst = -1 }, "burst"},
		{"fault frac", func(c *LoadConfig) { c.FaultFrac = 1.5 }, "fault fraction"},
		{"chaos frac", func(c *LoadConfig) { c.ChaosFrac = -0.1 }, "chaos fraction"},
		{"disk frac", func(c *LoadConfig) { c.DiskFrac = 1.5 }, "disk-fault fraction"},
		{"priority", func(c *LoadConfig) { c.MaxPriority = -2 }, "priority"},
		{"oversize", func(c *LoadConfig) { c.Oversize = 101 }, "oversize"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: invalid load config accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

package sched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseJobFile(t *testing.T) {
	dir := t.TempDir()
	// A reads-based entry referencing a relative FASTQ path.
	if _, err := DefaultTemplates(5, dir); err != nil { // materializes human-s.fastq
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jobs.json")
	body := `[
  {"tenant": "acme", "name": "h", "dataset": {"kind": "human", "len": 2000, "coverage": 12, "seed": 7},
   "k": 21, "ranks": 4, "priority": 1, "arrival_ms": 5, "seed": 3},
  {"tenant": "bio", "dataset": {"kind": "metagenome", "seed": 2}, "ranks": 8},
  {"tenant": "bio", "name": "file", "reads": [{"path": "human-s.fastq", "insert": 395}], "k": 21, "ranks": 4,
   "fail_stage": "contig-generation", "fault_seed": 9}
]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := ParseJobFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	if specs[0].Tenant != "acme" || specs[0].Pipeline.K != 21 || specs[0].Ranks != 4 ||
		specs[0].Priority != 1 || specs[0].Arrival != 5*time.Millisecond || specs[0].Seed != 3 {
		t.Fatalf("spec 0 mismatch: %+v", specs[0])
	}
	if len(specs[0].Libs) == 0 || len(specs[0].Libs[0].Records) == 0 {
		t.Fatal("spec 0 has no simulated reads")
	}
	if !specs[1].Pipeline.ContigsOnly {
		t.Fatal("metagenome dataset did not default to contigs-only")
	}
	if specs[1].Name != "job1" {
		t.Fatalf("spec 1 default name %q", specs[1].Name)
	}
	if got := specs[2].Libs[0].Path; got != filepath.Join(dir, "human-s.fastq") {
		t.Fatalf("relative read path resolved to %q", got)
	}
	if specs[2].FailStage != "contig-generation" || specs[2].FaultSeed != 9 {
		t.Fatalf("spec 2 fault fields: %+v", specs[2])
	}

	for name, bad := range map[string]string{
		"missing tenant": `[{"name": "x", "ranks": 4, "dataset": {"kind": "human"}}]`,
		"no dataset":     `[{"tenant": "a", "ranks": 4}]`,
		"bad kind":       `[{"tenant": "a", "ranks": 4, "dataset": {"kind": "ecoli"}}]`,
		"empty":          `[]`,
		"not json":       `{{`,
	} {
		p := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(p, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseJobFile(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseJobFile(filepath.Join(dir, "absent.json")); err == nil ||
		!strings.Contains(err.Error(), "reading job file") {
		t.Fatalf("missing file error: %v", err)
	}
}

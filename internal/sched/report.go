package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hipmer/internal/stats"
)

// Schema identifies the service-level report format.
const Schema = "hipmer-sched/v1"

// TenantReport is one tenant's service-level accounting.
type TenantReport struct {
	Name  string `json:"name"`
	Quota int    `json:"quota"`
	// Submitted counts admitted jobs; Rejected counts admission
	// rejections (structural or queue-full).
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	Requeues  int `json:"requeues"`
	Preempts  int `json:"preempts"`
	Rescales  int `json:"rescales"`
	// RankSeconds is the virtual rank-time the tenant's jobs held.
	RankSeconds float64 `json:"rank_seconds"`
	// QueueWait summarizes the tenant's queue waits (seconds, virtual).
	QueueWait stats.Dist `json:"queue_wait"`
}

// Report is the hipmer-sched/v1 service-level report. Every field is
// derived from virtual time and deterministic counters — no wall clock
// — so two runs of the same workload at the same seed marshal to
// bit-identical bytes (the golden test pins this).
type Report struct {
	Schema       string `json:"schema"`
	Seed         int64  `json:"seed"`
	Ranks        int    `json:"ranks"`
	RanksPerNode int    `json:"ranks_per_node"`
	QueueCap     int    `json:"queue_cap"`

	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`

	Requeues    int `json:"requeues"`
	Preemptions int `json:"preemptions"`
	Rescales    int `json:"rescales"`

	// MakespanSeconds is the virtual time of the last scheduler event.
	MakespanSeconds float64 `json:"makespan_seconds"`
	// Utilization is busy rank-time over Ranks × makespan, in [0, 1].
	Utilization float64 `json:"utilization"`

	// QueueWait and Turnaround summarize per-job virtual queue wait
	// (arrival → first dispatch) and turnaround (arrival → completion),
	// in seconds, over admitted jobs that started / completed.
	QueueWait  stats.Dist `json:"queue_wait"`
	Turnaround stats.Dist `json:"turnaround"`

	// FairnessWaitGini is the Gini coefficient over per-tenant mean
	// queue waits; FairnessServiceGini over per-tenant rank-seconds
	// normalized by quota. Both near 0 = even service.
	FairnessWaitGini    float64 `json:"fairness_wait_gini"`
	FairnessServiceGini float64 `json:"fairness_service_gini"`

	// Tenants is sorted by name (deterministic order).
	Tenants []TenantReport `json:"tenants"`
}

const secs = float64(time.Second)

// buildReport derives the service report from the scheduler's terminal
// state. Tenant iteration uses the sorted name list, never map range.
func (s *Scheduler) buildReport() *Report {
	r := &Report{
		Schema:       Schema,
		Seed:         s.cfg.Seed,
		Ranks:        s.cfg.Ranks,
		RanksPerNode: s.cfg.RanksPerNode,
		QueueCap:     s.cfg.QueueCap,
		Jobs:         len(s.jobs),
		Rejected:     s.rejections,
		Requeues:     s.requeues,
		Preemptions:  s.preemptions,
		Rescales:     s.rescales,
	}
	var waits, turns []float64
	for _, j := range s.jobs {
		switch j.state {
		case StateCompleted:
			r.Completed++
			turns = append(turns, float64(j.done-j.arrival)/secs)
		case StateFailed:
			r.Failed++
		}
		if j.started {
			waits = append(waits, float64(j.firstStart-j.arrival)/secs)
		}
	}
	r.QueueWait = stats.NewDist(waits)
	r.Turnaround = stats.NewDist(turns)
	r.MakespanSeconds = float64(s.makespan) / secs
	if s.makespan > 0 {
		r.Utilization = float64(s.busyNs) / (float64(s.cfg.Ranks) * float64(s.makespan))
	}

	names := append([]string(nil), s.tenantOrder...)
	sort.Strings(names)
	var meanWaits, service []float64
	for _, name := range names {
		t := s.tenants[name]
		tw := make([]float64, len(t.waits))
		for i, w := range t.waits {
			tw[i] = w / secs
		}
		d := stats.NewDist(tw)
		r.Tenants = append(r.Tenants, TenantReport{
			Name: name, Quota: t.quota,
			Submitted: t.submitted, Completed: t.completed,
			Failed: t.failed, Rejected: t.rejected,
			Requeues: t.requeues, Preempts: t.preempts, Rescales: t.rescales,
			RankSeconds: float64(t.rankNs) / secs,
			QueueWait:   d,
		})
		if t.submitted > 0 {
			meanWaits = append(meanWaits, d.Mean)
			service = append(service, float64(t.rankNs)/secs/float64(t.quota))
		}
	}
	r.FairnessWaitGini = stats.NewDist(meanWaits).Gini
	r.FairnessServiceGini = stats.NewDist(service).Gini
	return r
}

// Marshal renders the report as stable indented JSON (trailing
// newline), the bytes the two-run golden test compares.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sched: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("sched: writing report: %w", err)
	}
	return nil
}

// ReadReport parses a hipmer-sched/v1 report file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sched: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("sched: parsing report %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("sched: report %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// FormatTable renders the human-readable service summary.
func (r *Report) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service report (%s)  ranks=%d seed=%d\n", r.Schema, r.Ranks, r.Seed)
	fmt.Fprintf(&b, "  jobs %d: %d completed, %d failed, %d rejected  (requeues %d, preemptions %d, rescales %d)\n",
		r.Jobs, r.Completed, r.Failed, r.Rejected, r.Requeues, r.Preemptions, r.Rescales)
	fmt.Fprintf(&b, "  makespan %.3fs virtual, utilization %.1f%%\n", r.MakespanSeconds, 100*r.Utilization)
	fmt.Fprintf(&b, "  queue wait s: p50 %.4f p95 %.4f max %.4f   turnaround s: p50 %.4f p95 %.4f\n",
		r.QueueWait.P50, r.QueueWait.P95, r.QueueWait.Max, r.Turnaround.P50, r.Turnaround.P95)
	fmt.Fprintf(&b, "  fairness gini: wait %.3f service %.3f\n", r.FairnessWaitGini, r.FairnessServiceGini)
	fmt.Fprintf(&b, "  %-10s %5s %5s %5s %4s %4s %5s %5s %8s %9s\n",
		"tenant", "quota", "subm", "done", "fail", "rej", "requ", "pre", "wait-p95", "rank-sec")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  %-10s %5d %5d %5d %4d %4d %5d %5d %8.4f %9.3f\n",
			t.Name, t.Quota, t.Submitted, t.Completed, t.Failed, t.Rejected,
			t.Requeues, t.Preempts, t.QueueWait.P95, t.RankSeconds)
	}
	return b.String()
}

package sched

import (
	"fmt"
	"hash/fnv"
	"time"
)

// fakeRunner models attempts without running real pipelines, so the
// scheduler's property tests can push thousands of synthetic jobs
// through every code path (dispatch, requeue, preempt, rescale) in
// milliseconds. An attempt's duration is a pure function of the spec
// and allocation; jobs run five equal virtual stages, an armed fault or
// a hard chaos plan kills the attempt at 60% (after stage 3), and
// resume skips the stages recorded complete (by a crash or by Preempt).
type fakeRunner struct {
	completed map[int]int // jobID -> completed stage count
	runs      int
	preempts  int
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{completed: make(map[int]int)}
}

const fakeStages = 5

func fakeStageName(i int) string { return fmt.Sprintf("s%d", i) }

// fakeWork is the job's total virtual work at 1 rank: 40–200ms,
// deterministic in (name, seed).
func fakeWork(spec JobSpec) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", spec.Name, spec.Seed)
	return time.Duration(40+h.Sum64()%160) * time.Millisecond
}

func (f *fakeRunner) Run(spec JobSpec, att Attempt) RunOutcome {
	f.runs++
	total := fakeWork(spec) / time.Duration(att.Ranks)
	d := total / fakeStages
	skip := 0
	if att.Resume {
		skip = f.completed[att.JobID]
	}
	fail := att.Fault.Enabled() || (att.ChaosSeed != 0 && att.DropRate > 0.4 && att.RetryBudget <= 1)
	if fail && skip < 4 {
		// Crash mid-stage-4: stages 1..3 are checkpointed.
		f.completed[att.JobID] = 3
		return RunOutcome{
			Virtual:     time.Duration(3-skip)*d + d/2,
			Failed:      true,
			Err:         "injected fake failure",
			FailedStage: fakeStageName(4),
		}
	}
	out := RunOutcome{Virtual: time.Duration(fakeStages-skip) * d}
	for i := skip + 1; i <= fakeStages; i++ {
		out.Stages = append(out.Stages, StageMark{
			Stage: fakeStageName(i),
			End:   time.Duration(i-skip) * d,
		})
	}
	out.Seqs = [][]byte{[]byte(fmt.Sprintf("asm/%s/%d", spec.Name, spec.Seed))}
	f.completed[att.JobID] = fakeStages
	return out
}

func (f *fakeRunner) Preempt(jobID int, ckptDir string, completed []string) error {
	f.preempts++
	n := 0
	if len(completed) > 0 {
		// Stage names are s1..s5; the attempt may itself have been a
		// resume, so the prefix length alone undercounts.
		last := completed[len(completed)-1]
		n = int(last[1] - '0')
	}
	f.completed[jobID] = n
	return nil
}

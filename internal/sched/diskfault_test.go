package sched

import (
	"reflect"
	"testing"

	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

func TestTrimBilledAt(t *testing.T) {
	prefix := []string{"io", "kmer-analysis", "contig-generation", "scaffolding"}
	cases := []struct {
		name  string
		stage string
		want  []string
	}{
		{"cuts-at-disk-stage", "contig-generation", []string{"io", "kmer-analysis"}},
		{"cuts-to-empty", "io", []string{}},
		{"stage-not-in-prefix", "gap-closing", prefix},
		{"cuts-last", "scaffolding", []string{"io", "kmer-analysis", "contig-generation"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := trimBilledAt(prefix, c.stage)
			if len(got) != len(c.want) {
				t.Fatalf("trimBilledAt = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("trimBilledAt = %v, want %v", got, c.want)
				}
			}
		})
	}
	if got := trimBilledAt(nil, "io"); len(got) != 0 {
		t.Fatalf("trimBilledAt(nil) = %v", got)
	}
}

// TestGenJobsDiskFaultPairing: every disk-armed job the generator
// emits pairs the storage fault with a crash STRICTLY after the disk
// stage — otherwise the damaged segment would never be read back and
// the fault would exercise nothing.
func TestGenJobsDiskFaultPairing(t *testing.T) {
	specs, err := GenJobs(LoadConfig{Seed: 5, Tenants: 4, Jobs: 64, DiskFrac: 1}, fakeTemplates())
	if err != nil {
		t.Fatal(err)
	}
	stageIdx := map[string]map[string]int{}
	for _, tpl := range fakeTemplates() {
		idx := map[string]int{}
		for i, name := range pipeline.StageNames(tpl.Pipeline) {
			idx[name] = i
		}
		stageIdx[tpl.Name] = idx
	}
	armed := 0
	for _, spec := range specs {
		if spec.DiskFaultSeed == 0 {
			continue
		}
		armed++
		idx := stageIdx[spec.Name]
		di, ok := idx[spec.DiskFaultStage]
		if !ok || di == 0 {
			t.Fatalf("job %s: disk stage %q is not a checkpointable stage", spec.Name, spec.DiskFaultStage)
		}
		if spec.FaultSeed == 0 || spec.FailStage == "" {
			t.Fatalf("job %s: disk fault armed without a paired crash", spec.Name)
		}
		fi, ok := idx[spec.FailStage]
		if !ok {
			t.Fatalf("job %s: paired crash stage %q unknown", spec.Name, spec.FailStage)
		}
		if fi <= di {
			t.Fatalf("job %s: crash in %q (stage %d) not strictly after disk fault in %q (stage %d)",
				spec.Name, spec.FailStage, fi, spec.DiskFaultStage, di)
		}
	}
	if armed != len(specs) {
		t.Fatalf("DiskFrac 1 armed %d/%d jobs", armed, len(specs))
	}
}

// TestGenJobsDiskFracZero: with the knob off no job is disk-armed and
// the non-disk draw stream is untouched — the specs match a pre-knob
// generator call field for field (the committed BENCH_sched baseline
// depends on this).
func TestGenJobsDiskFracZero(t *testing.T) {
	lc := LoadConfig{Seed: 5, Tenants: 4, Jobs: 64, FaultFrac: 0.2, ChaosFrac: 0.2}
	specs, err := GenJobs(lc, fakeTemplates())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if spec.DiskFaultSeed != 0 || spec.DiskFaultStage != "" {
			t.Fatalf("job %s disk-armed with DiskFrac 0", spec.Name)
		}
	}
	again, err := GenJobs(lc, fakeTemplates())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("generator is not deterministic")
	}
}

// TestDiskFaultBillingTrim drives the real runner directly: an attempt
// that both damages a checkpoint stage and crashes later must report a
// billed rehydration prefix that stops strictly before the disk stage
// (the requeued resume pays to recompute it), and the disarmed resume
// must scrub, heal, and match a solo run.
func TestDiskFaultBillingTrim(t *testing.T) {
	if testing.Short() {
		t.Skip("real-pipeline runner test")
	}
	tpls, err := DefaultTemplates(20151115, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var humanS Template
	for _, tpl := range tpls {
		if tpl.Name == "human-s" {
			humanS = tpl
		}
	}
	spec := JobSpec{
		Tenant: "acme", Name: humanS.Name, Libs: humanS.Libs, Pipeline: humanS.Pipeline,
		Ranks: 8, Seed: humanS.Seed,
		FaultSeed: 7, FailStage: "scaffolding",
		DiskFaultSeed: 21, DiskFaultStage: "contig-generation",
	}
	r := &PipelineRunner{}
	dir := t.TempDir()
	att := Attempt{
		JobID: 0, Attempt: 1, Ranks: 8, RanksPerNode: 8, CkptDir: dir,
		Fault:     xrt.FaultPlan{Seed: spec.FaultSeed, Stage: spec.FailStage},
		DiskFault: xrt.DiskFaultPlan{Seed: spec.DiskFaultSeed, Stage: spec.DiskFaultStage},
	}
	out := r.Run(spec, att)
	if !out.Failed || out.Fatal {
		t.Fatalf("armed attempt outcome: %+v", out)
	}
	for _, st := range out.BilledDone {
		if st == spec.DiskFaultStage || st == spec.FailStage {
			t.Fatalf("billed prefix %v includes damaged/failed stage", out.BilledDone)
		}
	}
	found := false
	for _, st := range out.BilledDone {
		if st == "kmer-analysis" {
			found = true
		}
	}
	if !found {
		t.Fatalf("billed prefix %v lost the intact stage before the damage", out.BilledDone)
	}

	// Requeue: disarmed resume from the damaged directory.
	out2 := r.Run(spec, Attempt{
		JobID: 0, Attempt: 2, Ranks: 8, RanksPerNode: 8, CkptDir: dir,
		Resume: true, BilledDone: out.BilledDone,
	})
	if out2.Failed || out2.Fatal {
		t.Fatalf("healing resume failed: %+v", out2)
	}
	solo := soloRun(t, JobSpec{
		Name: spec.Name, Libs: spec.Libs, Pipeline: spec.Pipeline, Seed: spec.Seed,
	}, 8, 8)
	if !verify.EqualSets(verify.CanonicalSet(out2.Seqs), verify.CanonicalSet(solo)) {
		t.Fatal("healed resume's assembly differs from the solo run")
	}
}

// TestDiskFaultJobHealsInService runs a disk-armed job through the full
// scheduler next to a healthy neighbour: the disk job requeues once,
// heals, and both assemblies stay bit-identical to solo runs.
func TestDiskFaultJobHealsInService(t *testing.T) {
	if testing.Short() {
		t.Skip("real-pipeline service test")
	}
	tpls, err := DefaultTemplates(20151115, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Template)
	for _, tpl := range tpls {
		byName[tpl.Name] = tpl
	}
	mk := func(name, tenant string) JobSpec {
		tpl := byName[name]
		return JobSpec{
			Tenant: tenant, Name: name, Libs: tpl.Libs, Pipeline: tpl.Pipeline,
			Ranks: tpl.Ranks, Seed: tpl.Seed,
		}
	}
	disk := mk("human-s", "acme")
	disk.DiskFaultSeed = 21
	disk.DiskFaultStage = "contig-generation"
	disk.FaultSeed = 7
	disk.FailStage = "scaffolding"
	specs := []JobSpec{disk, mk("wheat-s", "bio")}

	cfg := Config{Ranks: 16, RanksPerNode: 8, Seed: 3, DefaultQuota: 12, CkptRoot: t.TempDir()}
	s, err := New(cfg, &PipelineRunner{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Jobs[0].State != StateCompleted {
		t.Fatalf("disk-armed job state %q: %s", out.Jobs[0].State, out.Jobs[0].Reason)
	}
	if out.Jobs[0].Requeues == 0 {
		t.Fatal("disk-armed job completed without its paired crash requeue")
	}
	if out.Jobs[1].Requeues != 0 {
		t.Fatal("healthy neighbour was requeued")
	}
	for i, jr := range out.Jobs {
		final := jr.RanksUsed[len(jr.RanksUsed)-1]
		solo := soloRun(t, specs[i], final, 8)
		if !verify.EqualSets(verify.CanonicalSet(jr.Seqs), verify.CanonicalSet(solo)) {
			t.Fatalf("job %d (%s) assembly differs from its solo run", i, jr.Name)
		}
	}
}

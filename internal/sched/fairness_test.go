package sched

import (
	"testing"
	"time"
)

// TestQuotaInvariant replays the decision trace of a large seeded
// workload and asserts the two capacity invariants at every event: no
// tenant ever holds more ranks than its quota, and the cluster's free
// capacity never goes negative.
func TestQuotaInvariant(t *testing.T) {
	lc := LoadConfig{
		Seed: 9, Tenants: 10, Jobs: 600, MeanGapNs: int64(2 * time.Millisecond),
		Burst: 8, FaultFrac: 0.1, ChaosFrac: 0.1, MaxPriority: 3,
	}
	cfg := Config{
		Ranks:   32,
		Seed:    3,
		Tenants: DefaultTenantConfigs(10, 32, 16),
		Trace:   true,
	}
	out := runFake(t, cfg, fakeLoad(t, lc))

	quota := make(map[string]int)
	for _, tc := range cfg.Tenants {
		quota[tc.Name] = tc.Quota
	}
	if len(out.Trace) == 0 {
		t.Fatal("trace empty despite Config.Trace")
	}
	starts := 0
	for _, ev := range out.Trace {
		if ev.TenantInUse > quota[ev.Tenant] {
			t.Fatalf("at %v: tenant %s holds %d ranks over quota %d (event %s job %d)",
				ev.At, ev.Tenant, ev.TenantInUse, quota[ev.Tenant], ev.Kind, ev.JobID)
		}
		if ev.FreeRanks < 0 || ev.FreeRanks > cfg.Ranks {
			t.Fatalf("at %v: free ranks %d out of [0, %d]", ev.At, ev.FreeRanks, cfg.Ranks)
		}
		if ev.Kind == "start" {
			starts++
			if ev.Ranks < 1 || ev.Ranks > quota[ev.Tenant] {
				t.Fatalf("at %v: job %d started with %d ranks (tenant %s quota %d)",
					ev.At, ev.JobID, ev.Ranks, ev.Tenant, quota[ev.Tenant])
			}
		}
	}
	if starts == 0 {
		t.Fatal("trace records no dispatches")
	}
}

// TestFairnessGiniBound: equal-priority tenants with equal quotas and
// symmetric demand see even service — the Gini over per-tenant mean
// queue waits stays small.
func TestFairnessGiniBound(t *testing.T) {
	lc := LoadConfig{
		Seed: 17, Tenants: 6, Jobs: 600, MeanGapNs: int64(2 * time.Millisecond),
		Burst: 4, MaxPriority: 0, // single priority class
	}
	cfg := Config{Ranks: 32, Seed: 3, DefaultQuota: 16}
	out := runFake(t, cfg, fakeLoad(t, lc))
	if g := out.Report.FairnessWaitGini; g > 0.35 {
		t.Fatalf("queue-wait Gini %.3f over 0.35 for equal-priority tenants", g)
	}
	if out.Report.Completed != out.Report.Jobs-out.Report.Rejected {
		t.Fatalf("%d jobs did not complete", out.Report.Jobs-out.Report.Rejected-out.Report.Completed)
	}
}

// TestNoStarvation: a minimum-priority job submitted into a permanent
// stream of high-priority work still runs — aging lifts its effective
// priority above the fresh arrivals. With aging disabled by an
// enormous AgingNs it would wait until the stream drains; the test
// asserts it starts while high-priority jobs are still arriving.
func TestNoStarvation(t *testing.T) {
	var specs []JobSpec
	// The low-priority job arrives just after the stream begins, into an
	// already-occupied cluster.
	specs = append(specs, JobSpec{
		Tenant: "low", Name: "small", Ranks: 8, Seed: 11, Priority: 0,
		Arrival: time.Microsecond,
	})
	// An open-loop high-priority stream: whole-cluster jobs arriving
	// faster than they drain, so contention never lets up on its own.
	for i := 0; i < 200; i++ {
		specs = append(specs, JobSpec{
			Tenant: "high", Name: "medium", Ranks: 8, Seed: 12, Priority: 5,
			Arrival: time.Duration(i) * 3 * time.Millisecond,
		})
	}
	cfg := Config{
		Ranks: 8, Seed: 1, QueueCap: 512, DefaultQuota: 8,
		DisablePreempt: true,
		AgingNs:        int64(20 * time.Millisecond),
	}
	out := runFake(t, cfg, specs)
	low := out.Jobs[0]
	if low.State != StateCompleted {
		t.Fatalf("low-priority job state %q: %s", low.State, low.Reason)
	}
	var lastHighStart time.Duration
	for _, j := range out.Jobs[1:] {
		if j.Start > lastHighStart {
			lastHighStart = j.Start
		}
	}
	if low.Start >= lastHighStart {
		t.Fatalf("low-priority job started at %v, after every high-priority job (last %v): starved until the stream drained",
			low.Start, lastHighStart)
	}
	if low.Wait < time.Duration(cfg.AgingNs) {
		t.Fatalf("low-priority job waited only %v; test premise (contention past the aging threshold) broken", low.Wait)
	}
}

// TestPreemptionBounds: preemption respects MaxPreempts (no job is
// preempted more than the cap) and strict priority (a preempted job
// never had priority >= its preemptor — verified indirectly: with a
// single priority class, no preemption happens at all).
func TestPreemptionBounds(t *testing.T) {
	lc := LoadConfig{
		Seed: 23, Tenants: 6, Jobs: 400, MeanGapNs: int64(2 * time.Millisecond),
		Burst: 6, MaxPriority: 3,
	}
	cfg := Config{Ranks: 32, Seed: 5, DefaultQuota: 16, MaxPreempts: 2}
	out := runFake(t, cfg, fakeLoad(t, lc))
	if out.Report.Preemptions == 0 {
		t.Fatal("no preemptions in a mixed-priority saturated workload")
	}
	for _, j := range out.Jobs {
		if j.Preemptions > cfg.MaxPreempts {
			t.Fatalf("job %d preempted %d times, over cap %d", j.ID, j.Preemptions, cfg.MaxPreempts)
		}
	}

	// Single priority class: preemption requires strictly higher static
	// priority, so none can occur.
	lc.MaxPriority = 0
	lc.Seed = 24
	out = runFake(t, cfg, fakeLoad(t, lc))
	if out.Report.Preemptions != 0 {
		t.Fatalf("%d preemptions in a single-priority workload (strict-priority rule violated)", out.Report.Preemptions)
	}
}

package sched

import (
	"errors"
	"fmt"
	"time"

	"hipmer/internal/ckpt"
	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// Attempt is the scheduler's dispatch decision for one runner
// invocation: the allocation, resume state, and the fault/chaos arming
// for this attempt (disarmed on retries).
type Attempt struct {
	JobID        int
	Attempt      int
	Ranks        int
	RanksPerNode int
	Resume       bool
	CkptDir      string
	// BilledDone lists the stages the billing model treats as already
	// completed (rehydrated) by this attempt: the billed prefix of a
	// failed attempt, or the truncation boundary of a preempted one. The
	// scheduler tracks it so billing never reads the physical checkpoint
	// — a failed attempt's manifest records whichever stages the real
	// goroutines happened to finish, which is schedule-dependent.
	BilledDone  []string
	Fault       xrt.FaultPlan
	ChaosSeed   int64
	DropRate    float64
	RetryBudget int
	// DiskFault arms storage damage on this attempt's checkpoint write
	// for the plan's stage. The attempt still completes bit-identically;
	// the damage surfaces only if a failure sends the job back to its
	// checkpoint, where the resume scrubs and recomputes — so billing
	// trims the requeued attempt's rehydration prefix to the stages
	// strictly before the disk stage (see trimBilledAt).
	DiskFault xrt.DiskFaultPlan
}

// StageMark records one completed stage of an attempt and its
// cumulative virtual end offset from the attempt's start; the scheduler
// uses the marks to truncate a preempted job's checkpoint to the stages
// finished by the preemption boundary.
type StageMark struct {
	Stage string
	End   time.Duration
}

// RunOutcome is what one runner invocation produced.
type RunOutcome struct {
	// Virtual is the attempt's billed duration (present for failures
	// too: the cluster was occupied until the crash unwound). The real
	// runner bills by the deterministic service accounting model (see
	// costmodel.go), not the measured team clock, so the service
	// timeline is reproducible.
	Virtual time.Duration
	// Measured is the team's measured virtual clock for the attempt
	// (the fault-trip clock for failed attempts) — the machine-model
	// ground truth the billing model approximates. Diagnostic only:
	// schedule-dependent phases make it vary across runs, so nothing
	// in the service report derives from it.
	Measured time.Duration
	// Failed marks a retryable failure (injected crash, chaos retry
	// exhaustion): the job checkpointed up to the failed stage and can
	// be requeued with -resume. Fatal marks everything else (a config or
	// checkpoint error); the scheduler fails the job terminally.
	Failed bool
	Fatal  bool
	// Err and FailedStage describe the failure.
	Err         string
	FailedStage string
	// Seqs and Metrics are the completed assembly and its
	// hipmer-metrics/v1 report (success only).
	Seqs    [][]byte
	Metrics *metrics.Report
	// Stages are the attempt's completed stages in order with cumulative
	// virtual end offsets (success only; used for preemption).
	Stages []StageMark
	// BilledDone is the billed completed-stage prefix the NEXT attempt
	// rehydrates (failures only); the scheduler passes it back in
	// Attempt.BilledDone on requeue.
	BilledDone []string
}

// Runner executes job attempts. The scheduler is generic over it so the
// property tests can drive thousands of synthetic jobs through a fake;
// PipelineRunner is the real thing.
type Runner interface {
	// Run executes one attempt to completion (the simulated machine runs
	// jobs atomically; the scheduler overlaps jobs in virtual time).
	Run(spec JobSpec, att Attempt) RunOutcome
	// Preempt rolls the job's checkpoint back to the given completed-
	// stage prefix so a later attempt resumes from the preemption
	// boundary instead of the attempt's end.
	Preempt(jobID int, ckptDir string, completed []string) error
}

// PipelineRunner runs attempts as real assembly pipelines on fresh
// simulated teams.
type PipelineRunner struct {
	// Seed offsets every job's team seed (0 = use spec seeds as-is).
	Seed int64
}

// Run builds the job's team (geometry from the attempt, fault/chaos/
// perturb arming from the attempt and spec) and executes the pipeline
// with checkpointing on. The attempt is billed by the deterministic
// accounting model: executed stages at full cost, billed-done stages at
// the flat rehydration cost, and an armed attempt as failing exactly
// once at a model-chosen stage (its prefix plus half the failed stage)
// regardless of where — or whether — the injection physically trips.
// The service timeline therefore depends only on the submitted jobs,
// never on how the physical goroutines interleaved.
func (r *PipelineRunner) Run(spec JobSpec, att Attempt) RunOutcome {
	cfg := xrt.Config{
		Ranks:        att.Ranks,
		RanksPerNode: att.RanksPerNode,
		Seed:         spec.Seed + r.Seed,
	}
	if spec.PerturbSeed != 0 {
		cfg.Perturb = xrt.PerturbPlan{Seed: spec.PerturbSeed}
	}
	if att.ChaosSeed != 0 {
		cfg.Chaos = xrt.MessageFaultPlan{
			Seed:        att.ChaosSeed,
			DropRate:    att.DropRate,
			RetryBudget: att.RetryBudget,
		}
	}
	team := xrt.NewTeam(cfg)

	pcfg := spec.Pipeline
	pcfg.CkptDir = att.CkptDir
	pcfg.Resume = att.Resume
	pcfg.Fault = att.Fault
	pcfg.DiskFault = att.DiskFault

	// The billed timeline comes from the accounting model, anchored on
	// the billed completed-stage prefix the scheduler tracked for this
	// attempt (never on the physical checkpoint contents).
	var completed map[string]bool
	if att.Resume && len(att.BilledDone) > 0 {
		completed = make(map[string]bool, len(att.BilledDone))
		for _, st := range att.BilledDone {
			completed[st] = true
		}
	}
	marks := modelMarks(spec, att.Ranks, completed)
	failStage, armed := modelFailStage(spec, att, pipeline.StageNames(spec.Pipeline))

	res, err := pipeline.Run(team, spec.Libs, pcfg)
	out := RunOutcome{Measured: team.VirtualNow()}
	if tv := team.TripVirtual(); tv > 0 {
		// The attempt died to an injected crash or retry exhaustion: the
		// initiator's clock at the trip is the honest measured duration;
		// VirtualNow also counts how far survivors raced before
		// unwinding, which varies with physical scheduling.
		out.Measured = tv
	}
	fail := func(stage string, errText string) RunOutcome {
		out.Failed = true
		out.FailedStage = stage
		out.Virtual = modelFailureVirtual(marks, stage)
		out.BilledDone = billedPrefix(marks, stage)
		if att.DiskFault.Enabled() {
			// The attempt also damaged the disk stage's checkpoint: the
			// requeued resume will scrub and recompute from there, so the
			// billed rehydration prefix stops strictly before it.
			out.BilledDone = trimBilledAt(out.BilledDone, att.DiskFault.Stage)
		}
		out.Err = errText
		return out
	}
	if err != nil {
		var sf *pipeline.StageFailedError
		switch {
		case errors.As(err, &sf) && armed:
			// The injection physically tripped. The checkpoint holds
			// whatever stages the real run finished first; billing uses
			// the model's stage regardless (where the trip lands is
			// schedule-dependent in the speculative phases).
			return fail(failStage, err.Error())
		case errors.As(err, &sf):
			// An unarmed attempt died to an injection-style failure —
			// retries run disarmed, so this should be unreachable; keep
			// the job recoverable by billing at the physical stage.
			return fail(sf.Stage, err.Error())
		default:
			out.Fatal = true
			out.Virtual = modelFailureVirtual(marks, "")
			out.Err = err.Error()
			return out
		}
	}
	if armed {
		// The injection never physically fired (a fault countdown can
		// outlive a small stage; a seeded drop pattern can spare every
		// message). The model still bills the armed failure so the
		// timeline cannot depend on the physical outcome; the checkpoint
		// on disk is simply further ahead than the billing assumes, and
		// the requeued attempt rehydrates it.
		return fail(failStage, fmt.Sprintf("sched: armed failure billed in stage %s (injection did not trip)", failStage))
	}
	if n := len(marks); n > 0 {
		out.Virtual = marks[n-1].End
	}
	out.Seqs = res.FinalSeqs
	out.Metrics = res.Metrics
	out.Stages = marks
	return out
}

// Preempt truncates the job's checkpoint manifest to the completed-
// stage prefix.
func (r *PipelineRunner) Preempt(jobID int, ckptDir string, completed []string) error {
	keep := make(map[string]bool, len(completed))
	for _, s := range completed {
		keep[s] = true
	}
	_, err := ckpt.Truncate(ckptDir, func(stage string) bool { return keep[stage] })
	return err
}

// Package sched is the assembly-as-a-service layer: a multi-tenant job
// scheduler that multiplexes many concurrent assembly pipelines onto one
// shared simulated cluster. It is the production-scale framing of the
// ROADMAP's north star — the substrate built by the earlier PRs
// (checkpointable stage registry, FaultPlan / MessageFaultPlan fault
// isolation, hipmer-metrics/v1, elastic rescale) assembled into a
// service:
//
//   - admission control: structurally unsatisfiable jobs (rank request
//     over the tenant quota or the cluster size, unknown tenant) are
//     rejected at submission; a bounded priority queue rejects arrivals
//     when full (ErrAdmissionRejected, CLI exit 7);
//   - per-tenant rank quotas: a tenant's running jobs never hold more
//     ranks than its quota, enforced at every dispatch;
//   - fault isolation: every job runs as its own checkpointable
//     pipeline on its own simulated team with its own ckpt directory —
//     an injected crash (FaultPlan) or retry-budget exhaustion
//     (MessageFaultPlan) fails only that job, which is requeued and
//     resumed from its checkpoint with the fault disarmed;
//   - elastic rescale: a queued resumable job whose requested rank
//     count is not free resumes on the idle capacity instead
//     (`-resume -ranks N` semantics; the re-shard machinery guarantees
//     the output is bit-identical to a from-scratch run at that count);
//   - preemption: a strictly higher-priority arrival may preempt
//     lower-priority running jobs at a stage boundary — the victim's
//     checkpoint is truncated to the stages completed by the preemption
//     time (ckpt.Truncate) and the job is requeued as resumable;
//   - aging: a queued job's effective priority grows with its virtual
//     queue wait, so equal-tenant starvation is impossible.
//
// Determinism contract: scheduler decisions are driven only by job
// virtual time and the seeded PRNG — never by wall clock, map iteration
// order, or goroutine interleaving. Two runs of the same workload at the
// same seed produce bit-identical hipmer-sched/v1 reports (the golden
// test in this package pins it), and every completed job's assembly is
// bit-identical to a solo run of the same spec at the rank count it
// finished at.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hipmer/internal/metrics"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// ErrAdmissionRejected marks a job refused by admission control: an
// unsatisfiable resource request, an unknown tenant, or a full queue.
// The hipmerd CLI maps it (and the cmd/hipmer exit-code taxonomy
// reserves) exit code 7.
var ErrAdmissionRejected = errors.New("sched: job rejected by admission control")

// TenantConfig declares one tenant and its rank quota.
type TenantConfig struct {
	Name string
	// Quota is the maximum number of cluster ranks the tenant's running
	// jobs may hold simultaneously; must be in [1, Config.Ranks].
	Quota int
}

// Config parameterizes the scheduler.
type Config struct {
	// Ranks is the shared simulated cluster size (required, >= 1).
	Ranks int
	// RanksPerNode groups ranks into simulated nodes (default 8).
	RanksPerNode int
	// Seed drives the scheduler's PRNG (tie-breaks); default 1.
	Seed int64
	// QueueCap bounds the admission queue; an arrival finding the queue
	// full is rejected (default 64). Requeued jobs (crash retry,
	// preemption victims) were already admitted and bypass the cap.
	QueueCap int
	// Tenants lists the known tenants and their quotas.
	Tenants []TenantConfig
	// DefaultQuota is assigned to tenants not listed in Tenants; 0
	// rejects jobs from unknown tenants.
	DefaultQuota int
	// MaxRetries caps requeues after retryable failures (default 2);
	// a job exceeding it is terminally failed.
	MaxRetries int
	// MaxPreempts caps how many times one job may be preempted before it
	// becomes immune (default 1).
	MaxPreempts int
	// DisablePreempt turns priority preemption off entirely.
	DisablePreempt bool
	// DisableRescale turns elastic rescale off: resumable jobs wait for
	// their originally requested rank count.
	DisableRescale bool
	// AgingNs is the virtual queue-wait that raises a queued job's
	// effective priority by one step (default 50ms virtual). Aging
	// orders dispatch but never justifies preemption.
	AgingNs int64
	// CkptRoot hosts the per-job checkpoint directories ("" = a fresh
	// temp directory, removed when the run ends).
	CkptRoot string
	// KeepCkpts leaves per-job checkpoint directories on disk after the
	// job completes (debugging).
	KeepCkpts bool
	// Trace records one TraceEvent per dispatch/preemption for the
	// quota-invariant property tests.
	Trace bool
}

// Validate rejects structurally invalid service configurations (the
// CLI-facing validateOptions contract; cmd/hipmerd exits 2 on error).
func (c Config) Validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("cluster ranks must be >= 1, got %d", c.Ranks)
	}
	if c.RanksPerNode < 0 {
		return fmt.Errorf("ranks-per-node must be >= 1, got %d", c.RanksPerNode)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("queue-cap must be >= 1, got %d", c.QueueCap)
	}
	if c.DefaultQuota < 0 || c.DefaultQuota > c.Ranks {
		return fmt.Errorf("default-quota must be in 0..ranks (%d), got %d", c.Ranks, c.DefaultQuota)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("max-retries must be >= 0, got %d", c.MaxRetries)
	}
	if c.MaxPreempts < 0 {
		return fmt.Errorf("max-preempts must be >= 0, got %d", c.MaxPreempts)
	}
	if c.AgingNs < 0 {
		return fmt.Errorf("aging must be >= 0, got %d", c.AgingNs)
	}
	seen := make(map[string]bool, len(c.Tenants))
	sum := 0
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Quota < 1 {
			return fmt.Errorf("tenant %q quota must be >= 1, got %d", t.Name, t.Quota)
		}
		if t.Quota > c.Ranks {
			return fmt.Errorf("tenant %q quota %d exceeds cluster ranks %d", t.Name, t.Quota, c.Ranks)
		}
		sum += t.Quota
	}
	if len(c.Tenants) > 0 && sum < c.Ranks && c.DefaultQuota == 0 {
		// Quota sum below the cluster size strands capacity forever:
		// no admissible workload can ever use the surplus ranks.
		return fmt.Errorf("tenant quota sum %d leaves %d of %d cluster ranks unusable (raise quotas or set a default quota)",
			sum, c.Ranks-sum, c.Ranks)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.RanksPerNode == 0 {
		c.RanksPerNode = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxPreempts == 0 {
		c.MaxPreempts = 1
	}
	if c.AgingNs == 0 {
		c.AgingNs = int64(50 * time.Millisecond)
	}
	return c
}

// JobSpec is one submitted assembly job.
type JobSpec struct {
	// Tenant names the submitting tenant (admission requires a known
	// tenant or a nonzero DefaultQuota).
	Tenant string
	// Name labels the job; the load generator uses the dataset template
	// name so solo-run baselines can be memoized per (name, ranks).
	Name string
	// Libs are the job's read libraries (in-memory records or FASTQ /
	// seqdb paths ingested by the block reader).
	Libs []pipeline.Library
	// Pipeline is the job's assembly configuration (K, MinCount, ...).
	// CkptDir / Resume / Fault are owned by the scheduler and must be
	// left zero.
	Pipeline pipeline.Config
	// Ranks is the requested team size (>= 1; admission rejects
	// requests above the tenant quota or the cluster size).
	Ranks int
	// Priority orders dispatch (higher first); a strictly higher
	// priority may preempt running lower-priority jobs.
	Priority int
	// Arrival is the job's virtual submission time.
	Arrival time.Duration
	// Seed is the job's team seed (default 1). Solo-run comparisons must
	// use the same seed.
	Seed int64
	// PerturbSeed arms schedule perturbation for the job's team
	// (wall-clock-only; never changes virtual time or output).
	PerturbSeed int64
	// FaultSeed / FailStage arm a deterministic rank crash in the named
	// stage on the job's FIRST attempt; the requeued attempt runs with
	// the fault disarmed and resumes from the job's checkpoint. The
	// scheduler bills every armed attempt as failing exactly once at a
	// model-chosen stage, whether or not the injection physically trips
	// (see costmodel.go) — so arming a fault always costs one requeue.
	FaultSeed int64
	FailStage string
	// ChaosSeed / DropRate / RetryBudget arm message-level chaos on the
	// job's attempts. A plan harsh enough to exhaust its retry budget is
	// billed as one retryable failure (requeue + resume with chaos
	// disarmed); a soft plan is billed as surviving on retries.
	ChaosSeed   int64
	DropRate    float64
	RetryBudget int
	// DiskFaultSeed / DiskFaultStage arm deterministic storage damage on
	// the job's FIRST attempt: the named stage's checkpoint write is
	// corrupted on disk (the attempt itself completes bit-identically).
	// The damage only matters when something sends the job back to its
	// checkpoint — a crash or chaos failure later in the same attempt —
	// so the billed rehydration prefix is trimmed to the stages before
	// the disk stage and the requeued attempt is billed for recomputing
	// the damaged suffix (see costmodel.go). Requeued attempts run with
	// the disk fault disarmed.
	DiskFaultSeed  int64
	DiskFaultStage string
}

// Job states in JobResult.State.
const (
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateRejected  = "rejected"
)

// JobResult is one job's terminal outcome.
type JobResult struct {
	ID     int
	Tenant string
	Name   string
	// State is completed, failed, or rejected.
	State string
	// Reason explains a rejection (admission control) or failure.
	Reason string
	// Arrival, Start, Done are virtual times; Start is the first
	// dispatch (zero-valued if never dispatched).
	Arrival, Start, Done time.Duration
	// Wait is the queue wait until first dispatch.
	Wait time.Duration
	// Attempts counts runner invocations; Requeues and Preemptions count
	// the re-admissions that caused attempts past the first.
	Attempts, Requeues, Preemptions int
	// RanksRequested is the spec's request; RanksUsed lists each
	// attempt's actual allocation; Rescaled is true when any attempt ran
	// at a different count than requested (elastic rescale).
	RanksRequested int
	RanksUsed      []int
	Rescaled       bool
	// Seqs is the completed assembly (nil otherwise).
	Seqs [][]byte
	// Metrics is the final attempt's hipmer-metrics/v1 report.
	Metrics *metrics.Report
}

// TraceEvent is one scheduling decision, recorded under Config.Trace.
type TraceEvent struct {
	At     time.Duration
	Kind   string // "start", "done", "requeue", "preempt", "reject"
	JobID  int
	Tenant string
	Ranks  int
	// TenantInUse is the tenant's total held ranks after the event.
	TenantInUse int
	// FreeRanks is the cluster's free capacity after the event.
	FreeRanks int
}

// Outcome is a finished scheduler run.
type Outcome struct {
	// Jobs holds one terminal result per submitted spec, in submission
	// order.
	Jobs []JobResult
	// Report is the hipmer-sched/v1 service-level report.
	Report *Report
	// Trace is the decision log (Config.Trace only).
	Trace []TraceEvent
}

// ---------------------------------------------------------------------
// internals

type job struct {
	id   int
	spec JobSpec

	state        string
	rejectReason string

	started    bool
	resume     bool
	faultArmed bool
	chaosArmed bool
	diskArmed  bool

	arrival    time.Duration
	firstStart time.Duration
	lastStart  time.Duration
	done       time.Duration

	attempts  int
	requeues  int
	preempts  int
	alloc     int // current allocation while running
	ranksUsed []int
	rescaled  bool
	ckptDir   string
	wroteCkpt bool
	// billedDone is the billed completed-stage prefix the next attempt
	// rehydrates (set on requeue and preemption; see Attempt.BilledDone).
	billedDone []string
	outcome    RunOutcome
	completion *event
	seqs       [][]byte
	metrics    *metrics.Report
	failReason string
}

type tenantState struct {
	name  string
	quota int
	inUse int

	submitted, completed, failed, rejected int
	requeues, preempts, rescales           int
	rankNs                                 int64
	waits                                  []float64
}

const (
	evArrival = iota
	evDone
)

type event struct {
	at        time.Duration
	seq       int
	kind      int
	j         *job
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler runs one workload over the shared simulated cluster.
type Scheduler struct {
	cfg    Config
	runner Runner
	prng   *xrt.Prng

	jobs    []*job
	queue   []*job // admitted, waiting; insertion order
	running []*job // dispatched; start order
	events  eventHeap
	evSeq   int

	tenants     map[string]*tenantState
	tenantOrder []string

	freeRanks int
	now       time.Duration
	makespan  time.Duration
	busyNs    int64

	rejections, requeues, preemptions, rescales int

	trace []TraceEvent

	ckptRoot    string
	ownCkptRoot bool
}

// New builds a scheduler over the given runner (use NewPipelineRunner
// for real assemblies; tests may inject a synthetic runner). The config
// is validated.
func New(cfg Config, r Runner) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:       cfg,
		runner:    r,
		prng:      xrt.NewPrng(cfg.Seed),
		tenants:   make(map[string]*tenantState),
		freeRanks: cfg.Ranks,
	}
	for _, t := range cfg.Tenants {
		s.tenants[t.Name] = &tenantState{name: t.Name, quota: t.Quota}
		s.tenantOrder = append(s.tenantOrder, t.Name)
	}
	return s, nil
}

func (s *Scheduler) tenantFor(name string) *tenantState {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	if s.cfg.DefaultQuota <= 0 {
		return nil
	}
	t := &tenantState{name: name, quota: s.cfg.DefaultQuota}
	s.tenants[name] = t
	s.tenantOrder = append(s.tenantOrder, name)
	return t
}

func (s *Scheduler) pushEvent(at time.Duration, kind int, j *job) *event {
	e := &event{at: at, seq: s.evSeq, kind: kind, j: j}
	s.evSeq++
	heap.Push(&s.events, e)
	return e
}

func (s *Scheduler) record(kind string, j *job, ranks int) {
	if !s.cfg.Trace {
		return
	}
	var inUse int
	if t := s.tenants[j.spec.Tenant]; t != nil {
		inUse = t.inUse
	}
	s.trace = append(s.trace, TraceEvent{
		At: s.now, Kind: kind, JobID: j.id, Tenant: j.spec.Tenant,
		Ranks: ranks, TenantInUse: inUse, FreeRanks: s.freeRanks,
	})
}

// Run executes the workload to completion and builds the service
// report. It is single-threaded and deterministic: the same specs and
// config produce a bit-identical report.
func (s *Scheduler) Run(specs []JobSpec) (*Outcome, error) {
	if s.jobs != nil {
		return nil, fmt.Errorf("sched: scheduler already ran")
	}
	if s.cfg.CkptRoot != "" {
		if err := os.MkdirAll(s.cfg.CkptRoot, 0o755); err != nil {
			return nil, fmt.Errorf("sched: ckpt root: %w", err)
		}
		s.ckptRoot = s.cfg.CkptRoot
	} else {
		dir, err := os.MkdirTemp("", "hipmerd-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("sched: ckpt root: %w", err)
		}
		s.ckptRoot = dir
		s.ownCkptRoot = true
	}
	defer func() {
		if s.ownCkptRoot && !s.cfg.KeepCkpts {
			os.RemoveAll(s.ckptRoot)
		}
	}()

	// Submission: structural admission control, then arrival events.
	for i, spec := range specs {
		j := &job{
			id: i, spec: spec, arrival: spec.Arrival,
			faultArmed: spec.FaultSeed != 0 && spec.FailStage != "",
			chaosArmed: spec.ChaosSeed != 0,
			diskArmed:  spec.DiskFaultSeed != 0 && spec.DiskFaultStage != "",
		}
		if j.spec.Seed == 0 {
			j.spec.Seed = 1
		}
		j.ckptDir = filepath.Join(s.ckptRoot, fmt.Sprintf("job%06d", i))
		s.jobs = append(s.jobs, j)
		if reason := s.admit(j); reason != "" {
			s.reject(j, reason)
			continue
		}
		s.tenants[spec.Tenant].submitted++
		s.pushEvent(spec.Arrival, evArrival, j)
	}

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		if e.at > s.makespan {
			s.makespan = e.at
		}
		switch e.kind {
		case evArrival:
			if len(s.queue) >= s.cfg.QueueCap {
				s.reject(e.j, fmt.Sprintf("queue full (cap %d)", s.cfg.QueueCap))
			} else {
				s.queue = append(s.queue, e.j)
			}
		case evDone:
			s.finish(e.j)
		}
		s.dispatch()
	}

	return s.buildOutcome(), nil
}

// admit returns a non-empty rejection reason for structurally
// unsatisfiable jobs (checked at submission, before queueing).
func (s *Scheduler) admit(j *job) string {
	t := s.tenantFor(j.spec.Tenant)
	if t == nil {
		return fmt.Sprintf("unknown tenant %q and no default quota", j.spec.Tenant)
	}
	if j.spec.Ranks < 1 {
		return fmt.Sprintf("requested %d ranks", j.spec.Ranks)
	}
	if j.spec.Ranks > t.quota {
		return fmt.Sprintf("requested %d ranks over tenant quota %d", j.spec.Ranks, t.quota)
	}
	if j.spec.Ranks > s.cfg.Ranks {
		return fmt.Sprintf("requested %d ranks over cluster size %d", j.spec.Ranks, s.cfg.Ranks)
	}
	return ""
}

func (s *Scheduler) reject(j *job, reason string) {
	j.state = StateRejected
	j.rejectReason = reason
	s.rejections++
	if t := s.tenants[j.spec.Tenant]; t != nil {
		t.rejected++
	}
	s.record("reject", j, 0)
}

// effPrio is the queued job's aged priority: static priority plus one
// step per AgingNs of virtual queue wait. Aging orders dispatch so old
// low-priority jobs cannot starve behind a stream of younger
// high-priority ones; it never justifies preemption (which compares
// static priorities only).
func (s *Scheduler) effPrio(j *job) int {
	age := int64(s.now-j.arrival) / s.cfg.AgingNs
	if age < 0 {
		age = 0
	}
	return j.spec.Priority + int(age)
}

// allocFor sizes the job's would-be allocation right now: 0 if it
// cannot start. A fresh job runs only at its requested count; a
// resumable job (crash retry or preemption victim) may elastically
// rescale down onto the free capacity, and may rescale up to at most
// twice its request when it is alone in the queue (idle capacity).
func (s *Scheduler) allocFor(j *job, queued int) int {
	t := s.tenants[j.spec.Tenant]
	lim := t.quota - t.inUse
	if s.freeRanks < lim {
		lim = s.freeRanks
	}
	want := j.spec.Ranks
	if lim < 1 {
		return 0
	}
	if !j.resume || s.cfg.DisableRescale {
		if want <= lim {
			return want
		}
		return 0
	}
	if want <= lim {
		if lim > want && queued == 1 {
			up := 2 * want
			if up > lim {
				up = lim
			}
			return up
		}
		return want
	}
	return lim
}

// pickBest selects the queued job to dispatch next: maximum effective
// priority, then earliest arrival; exact ties are broken by the seeded
// PRNG. Returns nil when nothing can start at the current capacity.
func (s *Scheduler) pickBest() (*job, int) {
	var best *job
	bestAlloc := 0
	for _, j := range s.queue {
		a := s.allocFor(j, len(s.queue))
		if a <= 0 {
			continue
		}
		if best == nil {
			best, bestAlloc = j, a
			continue
		}
		pj, pb := s.effPrio(j), s.effPrio(best)
		switch {
		case pj > pb:
			best, bestAlloc = j, a
		case pj == pb && j.arrival < best.arrival:
			best, bestAlloc = j, a
		case pj == pb && j.arrival == best.arrival && s.prng.Intn(2) == 0:
			best, bestAlloc = j, a
		}
	}
	return best, bestAlloc
}

func (s *Scheduler) removeQueued(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

func (s *Scheduler) removeRunning(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

func (s *Scheduler) dispatch() {
	for {
		j, alloc := s.pickBest()
		if j == nil {
			if s.tryPreempt() {
				continue
			}
			return
		}
		s.removeQueued(j)
		s.start(j, alloc)
	}
}

func (s *Scheduler) start(j *job, alloc int) {
	t := s.tenants[j.spec.Tenant]
	j.attempts++
	if !j.started {
		j.started = true
		j.firstStart = s.now
		t.waits = append(t.waits, float64(s.now-j.arrival))
	}
	j.lastStart = s.now
	j.alloc = alloc
	j.ranksUsed = append(j.ranksUsed, alloc)
	if alloc != j.spec.Ranks {
		j.rescaled = true
		s.rescales++
		t.rescales++
	}
	s.freeRanks -= alloc
	t.inUse += alloc
	s.record("start", j, alloc)

	att := Attempt{
		JobID:        j.id,
		Attempt:      j.attempts,
		Ranks:        alloc,
		RanksPerNode: s.cfg.RanksPerNode,
		Resume:       j.resume,
		CkptDir:      j.ckptDir,
		BilledDone:   j.billedDone,
	}
	if j.faultArmed {
		att.Fault = xrt.FaultPlan{Seed: j.spec.FaultSeed, Stage: j.spec.FailStage}
	}
	if j.chaosArmed {
		att.ChaosSeed = j.spec.ChaosSeed
		att.DropRate = j.spec.DropRate
		att.RetryBudget = j.spec.RetryBudget
	}
	if j.diskArmed {
		att.DiskFault = xrt.DiskFaultPlan{Seed: j.spec.DiskFaultSeed, Stage: j.spec.DiskFaultStage}
	}
	j.outcome = s.runner.Run(j.spec, att)
	j.wroteCkpt = true
	s.running = append(s.running, j)
	j.completion = s.pushEvent(s.now+j.outcome.Virtual, evDone, j)
}

// release returns a job's allocation to the cluster, charging the busy
// time it actually held (elapsed may be shorter than the attempt's full
// duration when preempted).
func (s *Scheduler) release(j *job, elapsed time.Duration) {
	t := s.tenants[j.spec.Tenant]
	t.inUse -= j.alloc
	s.freeRanks += j.alloc
	busy := int64(j.alloc) * int64(elapsed)
	s.busyNs += busy
	t.rankNs += busy
	j.alloc = 0
	s.removeRunning(j)
}

func (s *Scheduler) finish(j *job) {
	out := j.outcome
	s.release(j, out.Virtual)
	t := s.tenants[j.spec.Tenant]
	switch {
	case out.Fatal:
		j.state = StateFailed
		j.failReason = out.Err
		t.failed++
		s.cleanupJob(j)
	case out.Failed:
		if j.requeues >= s.cfg.MaxRetries {
			j.state = StateFailed
			j.failReason = fmt.Sprintf("retry budget exhausted after %d attempts: %s", j.attempts, out.Err)
			t.failed++
			s.cleanupJob(j)
			break
		}
		// Requeue and resume from the job's own checkpoint. Retries run
		// clean: the armed failure was already billed and message chaos
		// is disarmed (the transport is declared unhealthy for the job),
		// so the resumed attempt recovers instead of re-dying. The
		// checkpoint fingerprint excludes fault and chaos seeds, so the
		// calmer resume is accepted. The billed rehydration prefix comes
		// from the runner's model, never the physical manifest.
		j.resume = true
		j.faultArmed = false
		j.chaosArmed = false
		j.diskArmed = false
		j.billedDone = out.BilledDone
		j.requeues++
		s.requeues++
		t.requeues++
		s.record("requeue", j, 0)
		s.queue = append(s.queue, j)
	default:
		j.state = StateCompleted
		j.done = s.now
		j.seqs = out.Seqs
		j.metrics = out.Metrics
		t.completed++
		s.cleanupJob(j)
	}
	s.record("done", j, 0)
}

func (s *Scheduler) cleanupJob(j *job) {
	if !s.cfg.KeepCkpts && j.wroteCkpt {
		os.RemoveAll(j.ckptDir)
	}
}

// tryPreempt serves the highest-priority queued job that is blocked
// purely by rank shortage (its tenant quota has room) by preempting
// strictly lower-priority running jobs at a stage boundary. Victims are
// drained lowest static priority first, most recently started first;
// each victim's checkpoint is truncated to its completed stages and the
// job is requeued as resumable. Returns true if anything was preempted.
func (s *Scheduler) tryPreempt() bool {
	if s.cfg.DisablePreempt {
		return false
	}
	// The contender: best queued job whose quota allows its full request.
	var cand *job
	for _, j := range s.queue {
		t := s.tenants[j.spec.Tenant]
		if j.spec.Ranks > t.quota-t.inUse {
			continue
		}
		if cand == nil || s.effPrio(j) > s.effPrio(cand) ||
			(s.effPrio(j) == s.effPrio(cand) && j.arrival < cand.arrival) {
			cand = j
		}
	}
	if cand == nil {
		return false
	}
	need := cand.spec.Ranks - s.freeRanks
	if need <= 0 {
		return false
	}
	// Victim set: strictly lower static priority, preemptable, and not
	// already failing (a failing attempt has no completed-stage marks
	// and is about to release its ranks and requeue anyway).
	var victims []*job
	for _, r := range s.running {
		if r.spec.Priority < cand.spec.Priority && r.preempts < s.cfg.MaxPreempts &&
			!r.outcome.Failed && !r.outcome.Fatal {
			victims = append(victims, r)
		}
	}
	sort.SliceStable(victims, func(i, k int) bool {
		if victims[i].spec.Priority != victims[k].spec.Priority {
			return victims[i].spec.Priority < victims[k].spec.Priority
		}
		if victims[i].lastStart != victims[k].lastStart {
			return victims[i].lastStart > victims[k].lastStart
		}
		return victims[i].id > victims[k].id
	})
	freed := 0
	var take []*job
	for _, v := range victims {
		if freed >= need {
			break
		}
		take = append(take, v)
		freed += v.alloc
	}
	if freed < need {
		return false
	}
	for _, v := range take {
		s.preempt(v)
	}
	return true
}

func (s *Scheduler) preempt(v *job) {
	v.completion.cancelled = true
	elapsed := s.now - v.lastStart
	// Stages completed by the preemption boundary: prefix of the
	// attempt's stage marks with end <= elapsed.
	var completed []string
	for _, m := range v.outcome.Stages {
		if m.End <= elapsed {
			completed = append(completed, m.Stage)
		}
	}
	if err := s.runner.Preempt(v.id, v.ckptDir, completed); err != nil {
		// A truncation failure degrades to a full rerun: drop the whole
		// checkpoint prefix rather than resume from a future state.
		os.RemoveAll(v.ckptDir)
		v.resume = false
		v.billedDone = nil
	} else {
		v.resume = true
		v.billedDone = completed
	}
	s.release(v, elapsed)
	v.preempts++
	s.preemptions++
	s.tenants[v.spec.Tenant].preempts++
	s.record("preempt", v, 0)
	s.queue = append(s.queue, v)
}

func (s *Scheduler) buildOutcome() *Outcome {
	out := &Outcome{Trace: s.trace}
	for _, j := range s.jobs {
		r := JobResult{
			ID:             j.id,
			Tenant:         j.spec.Tenant,
			Name:           j.spec.Name,
			State:          j.state,
			Arrival:        j.arrival,
			Start:          j.firstStart,
			Done:           j.done,
			Attempts:       j.attempts,
			Requeues:       j.requeues,
			Preemptions:    j.preempts,
			RanksRequested: j.spec.Ranks,
			RanksUsed:      j.ranksUsed,
			Rescaled:       j.rescaled,
			Seqs:           j.seqs,
			Metrics:        j.metrics,
		}
		if j.started {
			r.Wait = j.firstStart - j.arrival
		}
		switch j.state {
		case StateRejected:
			r.Reason = j.rejectReason
		case StateFailed:
			r.Reason = j.failReason
		}
		out.Jobs = append(out.Jobs, r)
	}
	out.Report = s.buildReport()
	return out
}

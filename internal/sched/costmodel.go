package sched

import (
	"math"
	"os"
	"strings"
	"time"

	"hipmer/internal/pipeline"
)

// The service accounting model.
//
// The daemon cannot bill attempts by the team's measured virtual clock:
// the speculative phases (contig traversal claim races, quiescence
// detection) make a run's virtual-time profile a property of the
// physical goroutine interleaving, not of the input (DESIGN.md §9,
// pipeline.ScheduleDependentCounters). A timeline built from measured
// durations would therefore differ between two runs of the same
// workload, and the hipmer-sched/v1 report could never be bit-identical
// across runs — the service's own reproducibility contract.
//
// Instead every attempt is charged by a deterministic billing model: a
// per-stage linear cost in the job's input scale, divided by the
// allocation, plus a fixed per-stage overhead that grows with the
// collective tree depth. The constants below are calibrated against the
// measured virtual profiles of the reference templates (all four land
// within ~10% of the measured totals), so queue waits, utilization, and
// fairness in the service report track the simulated machine while
// remaining exactly reproducible. Measured virtual time still flows
// into each job's hipmer-metrics/v1 report — the model steers only the
// service timeline.

// stageNsPerBase maps a stage's base name (suffixes like "-k31" or
// "-round2" stripped) to its billed cost in nanoseconds per input base
// per rank. Calibrated against the reference templates at 4–8 ranks.
var stageNsPerBase = map[string]float64{
	"io":                80,
	"kmer-analysis":     240,
	"contig-generation": 95,
	"scaffolding":       120,
	"gap-closing":       5,
	"tip-clip":          15,
	"bubble-pop":        15,
	"pseudo-merge":      25,
}

// defaultStageNsPerBase bills stages the table does not know.
const defaultStageNsPerBase = 40

// stageFloorNs is the fixed per-stage overhead: startup plus one
// collective tree sweep per log2(ranks) doubling.
const (
	stageFloorNs    = 30_000.0
	stageTreeStepNs = 8_000.0
)

// rehydrateNs is the billed cost of skipping a checkpointed stage on
// resume (manifest lookup + payload rehydration).
const rehydrateNs = 20_000.0

// stageBaseName strips the iterative-k / multi-round suffix ("-k31",
// "-round2") from a stage name so cost lookup works for every round.
func stageBaseName(name string) string {
	for _, sep := range []string{"-k", "-round"} {
		if i := strings.LastIndex(name, sep); i > 0 {
			digits := name[i+len(sep):]
			if digits != "" && strings.Trim(digits, "0123456789") == "" {
				return name[:i]
			}
		}
	}
	return name
}

// specBases estimates the job's input scale in sequence bases. In-memory
// libraries count their record bases exactly; file-backed FASTQ is
// estimated from the file size (headers, separators, and quality lines
// roughly match the sequence bases 4:3 in the fixtures the service
// generates). The estimate is deterministic — it depends only on the
// submitted payload, never on how a run was scheduled.
func specBases(libs []pipeline.Library) int64 {
	var n int64
	for _, l := range libs {
		if l.Path != "" {
			if fi, err := os.Stat(l.Path); err == nil {
				n += fi.Size() * 3 / 7
			}
			continue
		}
		for _, rec := range l.Records {
			n += int64(len(rec.Seq))
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// stageCostNs bills one executed stage.
func stageCostNs(stage string, bases int64, ranks int) float64 {
	w, ok := stageNsPerBase[stageBaseName(stage)]
	if !ok {
		w = defaultStageNsPerBase
	}
	tree := math.Ceil(math.Log2(float64(ranks)))
	if tree < 0 {
		tree = 0
	}
	return w*float64(bases)/float64(ranks) + stageFloorNs + stageTreeStepNs*tree
}

// modelMarks bills a full attempt: cumulative per-stage end offsets over
// the pipeline's stage list, with stages in completed (already
// checkpointed, rehydrated on resume) billed at the flat rehydration
// cost. The last mark's End is the attempt's total billed duration.
func modelMarks(spec JobSpec, ranks int, completed map[string]bool) []StageMark {
	bases := specBases(spec.Libs)
	names := pipeline.StageNames(spec.Pipeline)
	marks := make([]StageMark, 0, len(names))
	var cum float64
	for _, n := range names {
		if completed[n] {
			cum += rehydrateNs
		} else {
			cum += stageCostNs(n, bases, ranks)
		}
		marks = append(marks, StageMark{Stage: n, End: time.Duration(cum)})
	}
	return marks
}

// modelFailureVirtual bills a failed attempt: every stage before the
// failed one at its full (or rehydrated) cost, plus half the failed
// stage — the deterministic stand-in for "the crash landed mid-stage".
// A failed stage the model does not find bills the whole attempt.
func modelFailureVirtual(marks []StageMark, failedStage string) time.Duration {
	var prev time.Duration
	for _, m := range marks {
		if m.Stage == failedStage {
			return prev + (m.End-prev)/2
		}
		prev = m.End
	}
	if len(marks) == 0 {
		return 0
	}
	return marks[len(marks)-1].End
}

// modelFailStage decides, from the submitted spec alone, whether an
// armed attempt is billed as failing and in which stage. The physical
// injections cannot drive the schedule: a FaultPlan countdown fires
// after a seeded number of charges in the target stage and a chaos plan
// exhausts wherever a message sees RetryBudget+1 consecutive drops —
// both functions of per-rank charge counts, which the speculative
// phases make schedule-dependent. So the model declares every armed
// attempt to fail exactly once, at a stage picked deterministically:
// the fault's target stage, or for chaos a seeded draw over the stages
// past input. A chaos plan whose per-message exhaustion probability is
// negligible (soft plans meant to survive on retries) is billed as
// succeeding.
func modelFailStage(spec JobSpec, att Attempt, stages []string) (string, bool) {
	if len(stages) == 0 {
		return "", false
	}
	if att.Fault.Seed != 0 && att.Fault.Stage != "" {
		for _, s := range stages {
			if s == att.Fault.Stage {
				return s, true
			}
		}
		// Target stage unknown to this pipeline (e.g. a bare base name
		// against a multi-k run): bill the failure in the last stage.
		return stages[len(stages)-1], true
	}
	if att.ChaosSeed != 0 && chaosModelExhausts(att.DropRate, att.RetryBudget) {
		// Never the input stage: exhaustion needs remote traffic.
		i := 1 + int(uint64(att.ChaosSeed)%uint64(maxInt(len(stages)-1, 1)))
		if i >= len(stages) {
			i = len(stages) - 1
		}
		return stages[i], true
	}
	return "", false
}

// chaosModelExhausts reports whether a chaos plan is billed as
// exhausting its retry budget. A message dies after RetryBudget+1
// consecutive seeded drops, so the per-message probability is
// DropRate^(RetryBudget+1); plans below one-in-a-million per message
// (the soft plans the load generator arms to survive on retries) are
// billed as completing.
func chaosModelExhausts(drop float64, budget int) bool {
	if drop <= 0 {
		return false
	}
	if budget <= 0 {
		budget = 16 // MessageFaultPlan's default budget
	}
	return math.Pow(drop, float64(budget+1)) >= 1e-6
}

// billedPrefix lists the stages strictly before the billed failure —
// the completed set the requeued attempt's billing rehydrates.
func billedPrefix(marks []StageMark, failedStage string) []string {
	var prefix []string
	for _, m := range marks {
		if m.Stage == failedStage {
			return prefix
		}
		prefix = append(prefix, m.Stage)
	}
	return prefix
}

// trimBilledAt cuts a billed rehydration prefix at the stage whose
// checkpoint an armed disk fault damaged: the stages strictly before it
// stay rehydratable, the damaged stage and everything after are billed
// as recomputed — the billing mirror of the physical scrub-and-heal the
// resume performs. A disk stage absent from the prefix (the attempt
// failed before reaching it) leaves the prefix unchanged.
func trimBilledAt(prefix []string, diskStage string) []string {
	for i, s := range prefix {
		if s == diskStage {
			return prefix[:i:i]
		}
	}
	return prefix
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package scaffold

import (
	"math"
	"sort"

	"hipmer/internal/xrt"
)

// tieRef is one directed view of a link: leaving contig `from` via `exit`
// reaches contig `to`, entering via `entry`.
type tieRef struct {
	from, to    int64
	exit, entry byte
	link        Link
}

type endKey struct {
	id  int64
	end byte
}

// orderAndOrient implements §4.7: links are consolidated into ties and the
// tie graph is traversed serially, seeding with contigs in decreasing
// length order so long contigs are locked together first. The serial
// component is cheap because the tie graph has orders of magnitude fewer
// vertices than the de Bruijn graph (its cost still appears in the phase
// timing, which is why wheat's fragmented assemblies spend relatively more
// time here — §5.3).
func orderAndOrient(team *xrt.Team, merged map[int64]*SContig, links []Link,
	res *Result, opt Options) {
	// directed tie lists
	ties := make(map[endKey][]tieRef)
	for _, l := range links {
		ties[endKey{l.A, l.EndA}] = append(ties[endKey{l.A, l.EndA}],
			tieRef{from: l.A, to: l.B, exit: l.EndA, entry: l.EndB, link: l})
		ties[endKey{l.B, l.EndB}] = append(ties[endKey{l.B, l.EndB}],
			tieRef{from: l.B, to: l.A, exit: l.EndB, entry: l.EndA, link: l})
	}
	for k := range ties {
		ts := ties[k]
		sort.Slice(ts, func(i, j int) bool {
			si, sj := ts[i].link.Support(), ts[j].link.Support()
			if si != sj {
				return si > sj
			}
			if ts[i].to != ts[j].to {
				return ts[i].to < ts[j].to
			}
			return ts[i].entry < ts[j].entry
		})
	}
	// eligible guards the traversal against links that reference contigs
	// excluded from scaffolding (bubble losers, sub-minimum lengths) or
	// unknown IDs: following one would duplicate popped-out sequence.
	eligible := func(id int64) bool {
		sc := merged[id]
		return sc != nil && !sc.PoppedOut && len(sc.Seq) >= opt.MinContigLen
	}
	best := func(k endKey, used map[int64]bool) (tieRef, bool) {
		for _, t := range ties[k] {
			if used[t.to] || !eligible(t.to) {
				continue
			}
			// mutual-best requirement: the partner end's best available tie
			// must point back, otherwise the join is ambiguous
			back := ties[endKey{t.to, t.entry}]
			for _, bt := range back {
				if used[bt.to] && bt.to != t.from {
					continue
				}
				if bt.to == t.from && bt.entry == t.exit {
					return t, true
				}
				break
			}
		}
		return tieRef{}, false
	}

	// seeds in decreasing length order
	type seedRec struct {
		id  int64
		len int
	}
	var seeds []seedRec
	for id, sc := range merged {
		if sc.PoppedOut || len(sc.Seq) < opt.MinContigLen {
			continue
		}
		seeds = append(seeds, seedRec{id, len(sc.Seq)})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].len != seeds[j].len {
			return seeds[i].len > seeds[j].len
		}
		return seeds[i].id < seeds[j].id
	})

	used := make(map[int64]bool)
	var scaffolds []*Scaffold
	for _, sd := range seeds {
		if used[sd.id] {
			continue
		}
		used[sd.id] = true
		members := []Member{{ContigID: sd.id}}
		// grow rightward
		cur, curFlip := sd.id, false
		for {
			exit := EndR
			if curFlip {
				exit = EndL
			}
			t, ok := best(endKey{cur, exit}, used)
			if !ok {
				break
			}
			flip := t.entry == EndR
			used[t.to] = true
			members = append(members, Member{
				ContigID: t.to, Flipped: flip, GapBefore: roundGap(t.link.Gap),
			})
			cur, curFlip = t.to, flip
		}
		// grow leftward from the seed
		cur, curFlip = sd.id, false
		for {
			exit := EndL
			if curFlip {
				exit = EndR
			}
			t, ok := best(endKey{cur, exit}, used)
			if !ok {
				break
			}
			// traveling leftward: the partner sits before the current head;
			// it is flipped when we enter it through its LEFT end (so that
			// its right end faces the scaffold head... i.e. exit via R).
			flip := t.entry == EndL
			used[t.to] = true
			// the gap belongs between the new member and the previous head
			members[0].GapBefore = roundGap(t.link.Gap)
			members = append([]Member{{ContigID: t.to, Flipped: flip}}, members...)
			cur, curFlip = t.to, flip
		}
		scaffolds = append(scaffolds, &Scaffold{Members: members})
	}

	// order scaffolds by total contig length, longest first
	totalLen := func(s *Scaffold) int {
		n := 0
		for _, m := range s.Members {
			n += len(merged[m.ContigID].Seq)
			if m.GapBefore > 0 {
				n += m.GapBefore
			}
		}
		return n
	}
	sort.Slice(scaffolds, func(i, j int) bool {
		li, lj := totalLen(scaffolds[i]), totalLen(scaffolds[j])
		if li != lj {
			return li > lj
		}
		return scaffolds[i].Members[0].ContigID < scaffolds[j].Members[0].ContigID
	})
	for i, s := range scaffolds {
		s.ID = i + 1
	}
	res.Scaffolds = scaffolds

	// charge the serial traversal (performed identically everywhere; the
	// paper runs it on one processor and broadcasts)
	res.OrderPhase = team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			r.ChargeItems(len(links) + len(seeds))
		}
		r.Barrier()
	})
}

func roundGap(g float64) int { return int(math.Round(g)) }

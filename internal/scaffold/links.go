package scaffold

import (
	"math"
	"sort"

	"hipmer/internal/aligner"
	"hipmer/internal/dht"
	"hipmer/internal/xrt"
)

// estimateInserts implements §4.4: each rank histograms the insert sizes
// of sampled pairs whose both ends align full-length within a single
// contig; the local histograms are merged into a global one per library
// from which a trimmed mean and standard deviation are computed.
func estimateInserts(team *xrt.Team, libs []ReadLib, res *Result, opt Options) {
	res.InsertMean = make([]float64, len(libs))
	res.InsertSD = make([]float64, len(libs))
	for li, lib := range libs {
		hists := make([]map[int]int64, team.Config().Ranks)
		res.InsertPhase = team.Run(func(r *xrt.Rank) {
			local := make(map[int]int64)
			alns := res.Alignments[li][r.ID]
			for i := 0; i+1 < len(alns); i += 2 {
				a1s, a2s := alns[i], alns[i+1]
				if len(a1s) == 0 || len(a2s) == 0 {
					continue
				}
				a1, a2 := a1s[0], a2s[0]
				if a1.ContigID != a2.ContigID || a1.Flipped == a2.Flipped {
					continue
				}
				if !nearFull(a1) || !nearFull(a2) {
					continue
				}
				lo := minI(a1.CStart-a1.RStart, a2.CStart-a2.RStart)
				hi := maxI(a1.CEnd+(a1.ReadLen-a1.REnd), a2.CEnd+(a2.ReadLen-a2.REnd))
				if hi > lo {
					local[hi-lo]++
				}
				r.ChargeItems(1)
			}
			hists[r.ID] = local
			r.Barrier()
		})
		global := make(map[int]int64)
		for _, h := range hists {
			for v, c := range h {
				global[v] += c
			}
		}
		mean, sd, n := trimmedMeanSD(global, opt.InsertTrimFrac)
		if n < 20 && lib.InsertHint > 0 {
			mean, sd = float64(lib.InsertHint), float64(lib.InsertHint)/10
		}
		res.InsertMean[li], res.InsertSD[li] = mean, sd
	}
}

func nearFull(a aligner.Alignment) bool {
	return (a.REnd-a.RStart)*10 >= a.ReadLen*9
}

// linkKey identifies an oriented contig-pair connection, normalized so
// the smaller contig ID comes first.
type linkKey struct {
	A, B       int64
	EndA, EndB byte
}

func normalizeKey(k linkKey) linkKey {
	if k.B < k.A {
		k.A, k.B = k.B, k.A
		k.EndA, k.EndB = k.EndB, k.EndA
	}
	return k
}

// linkAgg accumulates link evidence. Gap values are quantized to integers
// before aggregation so that sums are independent of arrival order and
// results are bit-deterministic across runs.
type linkAgg struct {
	Splints  int32
	Spans    int32
	GapSum   int64
	GapSqSum int64
}

func mergeLinkAgg(old, in linkAgg, _ bool) linkAgg {
	old.Splints += in.Splints
	old.Spans += in.Spans
	old.GapSum += in.GapSum
	old.GapSqSum += in.GapSqSum
	return old
}

// anchorOut describes how a fragment leaves the contig holding its 5'
// read: the exit end and the distance from the fragment's start to that
// end.
func anchorOut(a aligner.Alignment) (end byte, d int) {
	if !a.Flipped {
		// fragment extends toward increasing coordinates
		p := a.CStart - a.RStart
		return EndR, a.ContigLen - p
	}
	p := a.CEnd + a.RStart
	return EndL, p
}

// anchorIn describes how a fragment enters the contig holding its 3'
// (reverse) read: the entry end and the distance from that end to the
// fragment's terminus.
func anchorIn(a aligner.Alignment) (end byte, d int) {
	if !a.Flipped {
		// the contig holds the reverse complement of the fragment: the
		// fragment travels toward decreasing coordinates, entering at R
		p := a.CStart - a.RStart
		return EndR, a.ContigLen - p
	}
	p := a.CEnd + a.RStart
	return EndL, p
}

// generateLinks implements §4.5–§4.6: splints (a read bridging the ends of
// two overlapping contigs) and spans (a pair whose mates land on two
// different contigs) are located by independent passes over the local
// alignments; the evidence is accumulated in a distributed hash table of
// contig pairs with aggregating stores, and each rank then assesses its
// local buckets to produce supported links.
func generateLinks(team *xrt.Team, libs []ReadLib, merged map[int64]*SContig,
	res *Result, opt Options) []Link {
	table := dht.New[linkKey, linkAgg](team, dht.Options[linkKey]{
		Hash: func(k linkKey) uint64 {
			h := xrt.Splitmix64(uint64(k.A)<<32 ^ uint64(k.B))
			return xrt.Splitmix64(h ^ uint64(k.EndA)<<8 ^ uint64(k.EndB))
		},
		ItemBytes: 40,
	}, mergeLinkAgg)

	const endSlack = 8
	res.SplintSpanPhase = team.Run(func(r *xrt.Rank) {
		for li := range libs {
			insert := res.InsertMean[li]
			insertSD := res.InsertSD[li]
			alns := res.Alignments[li][r.ID]
			// --- splints: single reads spanning two contig ends ----------
			for _, as := range alns {
				if len(as) < 2 {
					continue
				}
				r.ChargeItems(1)
				for x := 0; x < len(as); x++ {
					for y := 0; y < len(as); y++ {
						if x == y || as[x].ContigID == as[y].ContigID {
							continue
						}
						a, b := as[x], as[y]
						// a must come first in read order
						if a.RStart > b.RStart {
							continue
						}
						// a anchored to its trailing end, b to its leading end
						if !anchoredTail(a) || !anchoredHead(b) {
							continue
						}
						exitA, exitPos := readFrameExit(a)
						entryB, entryPos := readFrameEntry(b)
						gap := entryPos - exitPos
						if gap > endSlack || gap < -3*opt.K {
							continue // too far apart or absurd overlap
						}
						key := normalizeKey(linkKey{A: a.ContigID, B: b.ContigID,
							EndA: exitA, EndB: entryB})
						table.Put(r, key, linkAgg{Splints: 1,
							GapSum: int64(gap), GapSqSum: int64(gap) * int64(gap)})
					}
				}
			}
			// --- spans: mate pairs on different contigs -------------------
			if insert <= 0 {
				continue
			}
			for i := 0; i+1 < len(alns); i += 2 {
				a1s, a2s := alns[i], alns[i+1]
				if len(a1s) == 0 || len(a2s) == 0 {
					continue
				}
				a1, a2 := a1s[0], a2s[0]
				if a1.ContigID == a2.ContigID {
					continue
				}
				if !nearFull(a1) || !nearFull(a2) {
					continue
				}
				r.ChargeItems(1)
				endA, dA := anchorOut(a1)
				endB, dB := anchorIn(a2)
				gap := insert - float64(dA) - float64(dB)
				if gap < -insert/2 || gap > insert+4*insertSD {
					continue // inconsistent with the library
				}
				g := int64(math.Round(gap))
				key := normalizeKey(linkKey{A: a1.ContigID, B: a2.ContigID,
					EndA: endA, EndB: endB})
				table.Put(r, key, linkAgg{Spans: 1, GapSum: g, GapSqSum: g * g})
			}
		}
		table.Flush(r)
		r.Barrier()

		// evidence is complete; the assessment pass below only reads, so
		// publish the table frozen for lock-free bucket iteration
		table.Freeze(r)
	})

	// assess local buckets, then gather the (small) link set everywhere
	p := team.Config().Ranks
	perRank := make([][]Link, p)
	team.Run(func(r *xrt.Rank) {
		var mine []Link
		table.LocalRange(r, func(k linkKey, v linkAgg) bool {
			n := int(v.Splints + v.Spans)
			if n < opt.MinLinkSupport {
				return true
			}
			mean := float64(v.GapSum) / float64(n)
			variance := float64(v.GapSqSum)/float64(n) - mean*mean
			if variance < 0 {
				variance = 0
			}
			mine = append(mine, Link{
				A: k.A, B: k.B, EndA: k.EndA, EndB: k.EndB,
				Gap: mean, GapSD: math.Sqrt(variance),
				Splints: int(v.Splints), Spans: int(v.Spans),
			})
			return true
		})
		all := r.AllGather(mine)
		if r.ID == 0 {
			for i, a := range all {
				perRank[i] = a.([]Link)
			}
		}
		r.Barrier()
	})
	var links []Link
	for _, ls := range perRank {
		links = append(links, ls...)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		if links[i].B != links[j].B {
			return links[i].B < links[j].B
		}
		if links[i].EndA != links[j].EndA {
			return links[i].EndA < links[j].EndA
		}
		return links[i].EndB < links[j].EndB
	})
	return links
}

// readFrameExit projects the trailing end of the aligned contig into read
// coordinates and names which contig end that is.
func readFrameExit(a aligner.Alignment) (end byte, pos int) {
	if !a.Flipped {
		return EndR, a.REnd + (a.ContigLen - a.CEnd)
	}
	return EndL, a.REnd + a.CStart
}

// readFrameEntry projects the leading end of the aligned contig into read
// coordinates and names which contig end that is.
func readFrameEntry(a aligner.Alignment) (end byte, pos int) {
	if !a.Flipped {
		return EndL, a.RStart - a.CStart
	}
	return EndR, a.RStart - (a.ContigLen - a.CEnd)
}

// anchoredTail reports whether the alignment reaches (nearly) the contig
// end that trails in read direction.
func anchoredTail(a aligner.Alignment) bool {
	const slack = 5
	if !a.Flipped {
		return a.ContigLen-a.CEnd <= slack
	}
	return a.CStart <= slack
}

// anchoredHead reports whether the alignment starts (nearly) at the contig
// end that leads in read direction.
func anchoredHead(a aligner.Alignment) bool {
	const slack = 5
	if !a.Flipped {
		return a.CStart <= slack
	}
	return a.ContigLen-a.CEnd <= slack
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package scaffold implements stage 3 of the pipeline (paper §4): the
// seven parallel scaffolding modules between contig generation and gap
// closing — contig depths and termination states, bubble identification
// and merging, read-to-contig alignment (via the aligner package),
// insert-size estimation, splint and span location, contig-link
// generation, and ordering/orientation of contigs into scaffolds.
package scaffold

import (
	"fmt"
	"math"

	"hipmer/internal/aligner"
	"hipmer/internal/contig"
	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// Options configures scaffolding.
type Options struct {
	// K is the assembly k-mer length (for overlaps and depth windows).
	K int
	// MinLinkSupport is the number of concordant read observations needed
	// before a splint/span link is trusted (default 2).
	MinLinkSupport int
	// MinContigLen excludes shorter contigs from scaffolding (default k).
	MinContigLen int
	// PopBubbles enables diploid bubble merging (default true; set
	// DisableBubbles to turn off).
	DisableBubbles bool
	// Aligner passes through seed-and-extend options.
	Aligner aligner.Options
	// InsertTrimFrac trims this fraction from each histogram tail when
	// estimating insert sizes (default 0.01).
	InsertTrimFrac float64
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 31
	}
	if o.MinLinkSupport <= 0 {
		o.MinLinkSupport = 2
	}
	if o.MinContigLen <= 0 {
		o.MinContigLen = o.K
	}
	if o.InsertTrimFrac <= 0 {
		o.InsertTrimFrac = 0.01
	}
	return o
}

// SContig is a scaffolding contig: a (possibly bubble-merged) contig with
// its mean k-mer depth and termination metadata.
type SContig struct {
	ID           int64
	Seq          []byte
	Depth        float64
	TermL, TermR byte
	NbrL, NbrR   kmer.Kmer
	HasNbrL      bool
	HasNbrR      bool
	// Members lists the original contig IDs folded into this contig by
	// bubble merging (just the own ID when unmerged).
	Members []int64
	// PoppedOut marks bubble losers excluded from scaffolding.
	PoppedOut bool
}

// ReadLib is one read library: paired reads (records 2i and 2i+1 are
// mates) distributed across ranks.
type ReadLib struct {
	Name        string
	ReadsByRank [][]fastq.Record
	// InsertHint is used when too few pairs map within one contig to
	// estimate the insert size (tiny test datasets).
	InsertHint int
}

// EndL / EndR name the two ends of a contig in link records.
const (
	EndL byte = 'L'
	EndR byte = 'R'
)

// Link is a consolidated tie between two contig ends: leaving contig A
// via end EndA arrives at contig B via end EndB, with an estimated gap
// (negative = the contigs overlap, a splint).
type Link struct {
	A, B       int64
	EndA, EndB byte
	Gap        float64
	GapSD      float64
	Splints    int
	Spans      int
}

// Support returns the total read support of the link.
func (l Link) Support() int { return l.Splints + l.Spans }

// Member is one placed contig within a scaffold.
type Member struct {
	ContigID int64
	Flipped  bool
	// GapBefore is the estimated gap between this member and the previous
	// one (unused for the first member; negative means overlap).
	GapBefore int
}

// Scaffold is an ordered, oriented chain of contigs.
type Scaffold struct {
	ID      int
	Members []Member
}

// Result is the output of the scaffolding stage.
type Result struct {
	// Contigs maps contig ID → scaffolding contig (after bubble merging).
	Contigs map[int64]*SContig
	// ContigsByRank distributes the surviving contigs for downstream
	// parallel phases (aligner index ownership).
	ContigsByRank [][]*SContig
	// Scaffolds in decreasing total-length order.
	Scaffolds []*Scaffold
	// Alignments per library: alns[lib][rank][readIdx] = alignments.
	Alignments [][][][]aligner.Alignment
	// Index is the seed index over merged contigs (reused by gap closing).
	Index *aligner.Index
	// InsertSize per library (mean, sd).
	InsertMean, InsertSD []float64
	// Links that survived support filtering.
	Links []Link
	// Bubbles is the number of popped bubble contigs.
	Bubbles int
	// Phase timings.
	DepthPhase, BubblePhase, AlignPhase, InsertPhase,
	SplintSpanPhase, OrderPhase xrt.PhaseStats
}

// Run executes all scaffolding modules.
func Run(team *xrt.Team, ctgRes *contig.Result,
	kt *dht.Table[kmer.Kmer, kanalysis.KmerData],
	libs []ReadLib, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}

	// §4.1 contig depths and termination states
	team.BeginSpan("depths")
	scByRank := computeDepths(team, ctgRes, kt, opt, res)
	team.EndSpan()

	// §4.2 bubble identification and path compression
	team.BeginSpan("bubbles")
	merged, mergedByRank := mergeBubbles(team, scByRank, opt, res)
	team.AddCounter("bubbles_popped", int64(res.Bubbles))
	team.EndSpan()
	res.Contigs = merged
	res.ContigsByRank = mergedByRank

	// §4.3 read-to-contig alignment (merAligner)
	alnOpt := opt.Aligner
	if alnOpt.SeedLen == 0 {
		alnOpt.SeedLen = opt.K
	}
	ctgForIndex := make([][]*contig.Contig, len(mergedByRank))
	for r, cs := range mergedByRank {
		for _, sc := range cs {
			if sc.PoppedOut || len(sc.Seq) < opt.MinContigLen {
				continue
			}
			ctgForIndex[r] = append(ctgForIndex[r], &contig.Contig{ID: sc.ID, Seq: sc.Seq})
		}
	}
	vStart := team.VirtualNow()
	team.BeginSpan("merAligner")
	res.Index = aligner.BuildIndex(team, ctgForIndex, alnOpt)
	for _, lib := range libs {
		res.Alignments = append(res.Alignments, aligner.AlignAll(team, res.Index, lib.ReadsByRank))
	}
	team.EndSpan()
	res.AlignPhase = xrt.PhaseStats{Virtual: team.VirtualNow() - vStart}

	// §4.4 insert-size estimation per library
	team.BeginSpan("inserts")
	estimateInserts(team, libs, res, opt)
	team.EndSpan()

	// §4.5–4.6 splints, spans, and link generation
	team.BeginSpan("splint-span")
	links := generateLinks(team, libs, merged, res, opt)
	res.Links = links
	team.AddCounter("links", int64(len(links)))
	team.EndSpan()

	// §4.7 ordering and orientation
	team.BeginSpan("ordering")
	orderAndOrient(team, merged, links, res, opt)
	team.AddCounter("scaffolds", int64(len(res.Scaffolds)))
	team.EndSpan()
	return res
}

// ScaffoldSeq renders a scaffold's sequence: members oriented and joined;
// positive gaps become runs of N, negative gaps (splint overlaps) are
// merged when the overlapping bases agree, else a single N.
func (r *Result) ScaffoldSeq(s *Scaffold) []byte {
	var out []byte
	for i, m := range s.Members {
		sc := r.Contigs[m.ContigID]
		seq := sc.Seq
		if m.Flipped {
			seq = kmer.RevCompString(seq)
		}
		if i == 0 {
			out = append(out, seq...)
			continue
		}
		gap := m.GapBefore
		if gap > 0 {
			for j := 0; j < gap; j++ {
				out = append(out, 'N')
			}
			out = append(out, seq...)
			continue
		}
		// gap <= 0: an estimated overlap (or abutment). Search near the
		// estimate for an exact suffix/prefix match; when none verifies,
		// fall back to a single N so the join cannot shift the frame of
		// everything downstream.
		if n, ok := exactOverlap(out, seq, -gap); ok {
			out = append(out, seq[n:]...)
		} else {
			out = append(out, 'N')
			out = append(out, seq...)
		}
	}
	return out
}

// minVerifiedOverlap is the shortest overlap that exact matching can
// confirm trustworthily: shorter matches succeed by chance (a 1-base
// "overlap" matches 25% of the time) and would silently shift the frame
// of the joined sequence.
const minVerifiedOverlap = 16

// exactOverlap searches overlap lengths near the estimate for an exact,
// long-enough suffix/prefix match.
func exactOverlap(a, b []byte, est int) (int, bool) {
	for d := 0; d <= 8; d++ {
		for _, n := range []int{est - d, est + d} {
			if n < minVerifiedOverlap || n > len(a) || n > len(b) {
				continue
			}
			if string(a[len(a)-n:]) == string(b[:n]) {
				return n, true
			}
		}
	}
	return 0, false
}

// String renders a compact description of a scaffold.
func (s *Scaffold) String() string {
	out := fmt.Sprintf("scaffold%d[", s.ID)
	for i, m := range s.Members {
		if i > 0 {
			out += fmt.Sprintf(" -(%d)- ", m.GapBefore)
		}
		dir := "+"
		if m.Flipped {
			dir = "-"
		}
		out += fmt.Sprintf("c%d%s", m.ContigID, dir)
	}
	return out + "]"
}

// trimmedMeanSD computes mean and standard deviation of a histogram after
// trimming frac of the mass from each tail.
func trimmedMeanSD(hist map[int]int64, frac float64) (mean, sd float64, n int64) {
	var total int64
	lo, hi := math.MaxInt32, math.MinInt32
	for v, c := range hist {
		total += c
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	trim := int64(float64(total) * frac)
	// walk from both ends removing trim mass
	loCut, hiCut := lo, hi
	var acc int64
	for v := lo; v <= hi && acc < trim; v++ {
		if c := hist[v]; c > 0 {
			acc += c
			loCut = v
		}
	}
	acc = 0
	for v := hi; v >= lo && acc < trim; v-- {
		if c := hist[v]; c > 0 {
			acc += c
			hiCut = v
		}
	}
	var sum, sumSq int64 // integer accumulation: order-independent
	for v, c := range hist {
		if v < loCut || v > hiCut {
			continue
		}
		sum += int64(v) * c
		sumSq += int64(v) * int64(v) * c
		n += c
	}
	if n == 0 {
		return 0, 0, 0
	}
	mean = float64(sum) / float64(n)
	variance := float64(sumSq)/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), n
}

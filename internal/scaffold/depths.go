package scaffold

import (
	"hipmer/internal/contig"
	"hipmer/internal/dht"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// computeDepths implements §4.1: each rank takes its share of the contigs
// and, for every contig, looks up all member k-mers in the distributed
// k-mer count table and averages their depths. The table arrives frozen
// from k-mer analysis, so the lookups are lock-free and remote ones run
// through the per-rank software cache — k-mers shared between contigs
// (repeat copies, bubble arms) are fetched once and then served
// rank-locally. Termination states were recorded by the traversal itself.
func computeDepths(team *xrt.Team, ctgRes *contig.Result,
	kt *dht.Table[kmer.Kmer, kanalysis.KmerData],
	opt Options, res *Result) [][]*SContig {
	p := team.Config().Ranks
	out := make([][]*SContig, p)
	res.DepthPhase = team.Run(func(r *xrt.Rank) {
		for _, c := range ctgRes.Contigs[r.ID] {
			sc := &SContig{
				ID: c.ID, Seq: c.Seq,
				TermL: c.TermL, TermR: c.TermR,
				NbrL: c.NbrL, NbrR: c.NbrR,
				HasNbrL: c.HasNbrL, HasNbrR: c.HasNbrR,
				Members: []int64{c.ID},
			}
			var sum uint64
			var n int
			kmer.ForEach(c.Seq, opt.K, func(_ int, km kmer.Kmer) {
				canon, _ := km.Canonical(opt.K)
				if d, ok := kt.Get(r, canon); ok {
					sum += uint64(d.Count)
					n++
				}
			})
			if n > 0 {
				sc.Depth = float64(sum) / float64(n)
			}
			out[r.ID] = append(out[r.ID], sc)
		}
		r.Barrier()
	})
	return out
}

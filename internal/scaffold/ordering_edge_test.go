package scaffold

import (
	"testing"

	"hipmer/internal/xrt"
)

// Edge-case inputs for §4.7 ordering and orientation, driven directly
// through orderAndOrient: degenerate link graphs must never panic and must
// place every contig exactly once.

func mkContigs(lens ...int) map[int64]*SContig {
	m := make(map[int64]*SContig)
	for i, n := range lens {
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGT"[(i+j)&3]
		}
		m[int64(i+1)] = &SContig{ID: int64(i + 1), Seq: seq}
	}
	return m
}

// runOrder invokes the ordering stage on a 1-rank team and checks the
// universal invariants: no contig appears twice, every eligible contig
// appears once, scaffold IDs are 1..n.
func runOrder(t *testing.T, merged map[int64]*SContig, links []Link) *Result {
	t.Helper()
	team := xrt.NewTeam(xrt.Config{Ranks: 1})
	res := &Result{Contigs: merged}
	opt := Options{K: 21}.withDefaults()
	orderAndOrient(team, merged, links, res, opt)

	placed := make(map[int64]int)
	for _, s := range res.Scaffolds {
		if len(s.Members) == 0 {
			t.Fatalf("scaffold %d has no members", s.ID)
		}
		for _, m := range s.Members {
			placed[m.ContigID]++
			if placed[m.ContigID] > 1 {
				t.Fatalf("contig %d placed %d times", m.ContigID, placed[m.ContigID])
			}
		}
	}
	for id, sc := range merged {
		eligible := !sc.PoppedOut && len(sc.Seq) >= opt.MinContigLen
		if eligible && placed[id] == 0 {
			t.Fatalf("contig %d (len %d) never placed", id, len(sc.Seq))
		}
		if !eligible && placed[id] != 0 {
			t.Fatalf("ineligible contig %d was placed", id)
		}
	}
	for i, s := range res.Scaffolds {
		if s.ID != i+1 {
			t.Fatalf("scaffold IDs not sequential: %d at index %d", s.ID, i)
		}
	}
	return res
}

func TestOrderSingleContigNoLinks(t *testing.T) {
	res := runOrder(t, mkContigs(500), nil)
	if len(res.Scaffolds) != 1 || len(res.Scaffolds[0].Members) != 1 {
		t.Fatalf("single contig should become one singleton scaffold: %v", res.Scaffolds)
	}
	if res.Scaffolds[0].Members[0].Flipped {
		t.Fatal("seed member must keep its own orientation")
	}
}

func TestOrderEmptyInput(t *testing.T) {
	res := runOrder(t, map[int64]*SContig{}, nil)
	if len(res.Scaffolds) != 0 {
		t.Fatalf("no contigs should yield no scaffolds, got %d", len(res.Scaffolds))
	}
}

// TestOrderTieWeightLinks gives the seed two rival ties of identical
// support from the same end. The traversal must pick deterministically (the
// sort breaks ties by partner ID, then entry end) and must not place the
// loser twice or lose it.
func TestOrderTieWeightLinks(t *testing.T) {
	merged := mkContigs(1000, 400, 400)
	links := []Link{
		{A: 1, B: 2, EndA: EndR, EndB: EndL, Gap: 10, Splints: 2, Spans: 1},
		{A: 1, B: 3, EndA: EndR, EndB: EndL, Gap: 10, Splints: 2, Spans: 1},
	}
	res := runOrder(t, merged, links)
	// contig 2 wins the tie (lower ID); whether it joins depends on the
	// mutual-best rule, but the invariant checks in runOrder are the point:
	// all three contigs placed exactly once, no panic. Determinism:
	got1 := res.Scaffolds
	res2 := runOrder(t, mkContigs(1000, 400, 400), []Link{links[1], links[0]})
	if len(got1) != len(res2.Scaffolds) {
		t.Fatalf("link input order changed the result: %d vs %d scaffolds",
			len(got1), len(res2.Scaffolds))
	}
	for i := range got1 {
		if got1[i].String() != res2.Scaffolds[i].String() {
			t.Fatalf("link input order changed scaffold %d: %s vs %s",
				i, got1[i], res2.Scaffolds[i])
		}
	}
}

// TestOrderSelfLoopLink feeds a link from a contig back to itself (a
// tandem-repeat artifact). The traversal must not loop or duplicate the
// contig.
func TestOrderSelfLoopLink(t *testing.T) {
	merged := mkContigs(800, 600)
	links := []Link{
		{A: 1, B: 1, EndA: EndR, EndB: EndL, Gap: 5, Splints: 3},
		{A: 1, B: 1, EndA: EndR, EndB: EndR, Gap: 5, Splints: 3},
		{A: 1, B: 2, EndA: EndL, EndB: EndR, Gap: 20, Splints: 2},
	}
	res := runOrder(t, merged, links)
	// the self-loop must be ignored; the genuine 2-1 tie may still join
	total := 0
	for _, s := range res.Scaffolds {
		total += len(s.Members)
	}
	if total != 2 {
		t.Fatalf("placed %d members, want 2", total)
	}
}

// TestOrderPoppedAndShortExcluded asserts bubble losers and sub-minimum
// contigs stay out of scaffolds even when links reference them.
func TestOrderPoppedAndShortExcluded(t *testing.T) {
	merged := mkContigs(900, 700, 5) // contig 3 shorter than MinContigLen
	merged[2].PoppedOut = true
	links := []Link{
		{A: 1, B: 2, EndA: EndR, EndB: EndL, Gap: 10, Splints: 3},
		{A: 1, B: 3, EndA: EndL, EndB: EndR, Gap: 10, Splints: 3},
	}
	res := runOrder(t, merged, links)
	if len(res.Scaffolds) != 1 {
		t.Fatalf("want exactly the surviving contig placed, got %d scaffolds", len(res.Scaffolds))
	}
}

package scaffold

import (
	"bytes"
	"testing"

	"hipmer/internal/contig"
	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

const testK = 21

// fixture bundles a synthetic scaffolding scenario.
type fixture struct {
	team  *xrt.Team
	g     []byte
	reads [][]fastq.Record
	kt    *dht.Table[kmer.Kmer, kanalysis.KmerData]
	ctg   *contig.Result
	libs  []ReadLib
}

// mkFixture simulates reads from g, runs k-mer analysis, and installs the
// provided sequences as the contig set (IDs 1..n, round-robin by rank).
func mkFixture(t *testing.T, seed int64, g []byte, pieces [][]byte, ranks int) *fixture {
	t.Helper()
	rng := xrt.NewPrng(seed)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 25,
		Lib:      genome.Library{Name: "lib", ReadLen: 100, InsertMean: 400, InsertSD: 20},
		Err:      genome.ErrorModel{},
	})
	team := xrt.NewTeam(xrt.Config{Ranks: ranks})
	reads := make([][]fastq.Record, ranks)
	for i := 0; i+1 < len(recs); i += 2 {
		r := (i / 2) % ranks
		reads[r] = append(reads[r], recs[i], recs[i+1])
	}
	kres := kanalysis.Run(team, reads, kanalysis.Options{K: testK, MinCount: 2})
	ctgRes := &contig.Result{Contigs: make([][]*contig.Contig, ranks)}
	for i, p := range pieces {
		c := &contig.Contig{ID: int64(i + 1), Seq: p}
		ctgRes.Contigs[i%ranks] = append(ctgRes.Contigs[i%ranks], c)
		ctgRes.NumContigs++
	}
	return &fixture{
		team: team, g: g, reads: reads, kt: kres.Table, ctg: ctgRes,
		libs: []ReadLib{{Name: "lib", ReadsByRank: reads, InsertHint: 400}},
	}
}

func scaffoldOrder(s *Scaffold) []int64 {
	var ids []int64
	for _, m := range s.Members {
		ids = append(ids, m.ContigID)
	}
	return ids
}

func reversedOrder(ids []int64) []int64 {
	out := make([]int64, len(ids))
	for i, v := range ids {
		out[len(ids)-1-i] = v
	}
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSpansOrderFourContigs(t *testing.T) {
	rng := xrt.NewPrng(1)
	g := genome.Random(rng, 6000)
	pieces := [][]byte{g[0:1500], g[1600:3200], g[3300:4800], g[4900:6000]}
	fx := mkFixture(t, 2, g, pieces, 4)
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK})
	if len(res.Scaffolds) != 1 {
		for _, s := range res.Scaffolds {
			t.Logf("%s", s)
		}
		t.Fatalf("got %d scaffolds, want 1", len(res.Scaffolds))
	}
	s := res.Scaffolds[0]
	ids := scaffoldOrder(s)
	want := []int64{1, 2, 3, 4}
	if !equalIDs(ids, want) && !equalIDs(ids, reversedOrder(want)) {
		t.Fatalf("order %v, want 1,2,3,4 (either direction)", ids)
	}
	for i, m := range s.Members {
		if i == 0 {
			continue
		}
		if m.GapBefore < 60 || m.GapBefore > 140 {
			t.Fatalf("gap %d at member %d, want ~100", m.GapBefore, i)
		}
	}
	// orientations must be consistent (all same as the genome or all flipped)
	for _, m := range s.Members {
		if m.Flipped != s.Members[0].Flipped {
			t.Fatalf("inconsistent orientations: %s", s)
		}
	}
}

func TestFlippedContigGetsReorientated(t *testing.T) {
	rng := xrt.NewPrng(3)
	g := genome.Random(rng, 4500)
	b := kmer.RevCompString(g[1600:2900]) // stored reversed
	pieces := [][]byte{g[0:1500], b, g[3000:4500]}
	fx := mkFixture(t, 4, g, pieces, 3)
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK})
	if len(res.Scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want 1", len(res.Scaffolds))
	}
	s := res.Scaffolds[0]
	if len(s.Members) != 3 {
		t.Fatalf("scaffold has %d members: %s", len(s.Members), s)
	}
	// find member 2 (the reversed piece): its orientation must differ from
	// its neighbors
	for i, m := range s.Members {
		if m.ContigID == 2 {
			j := i - 1
			if j < 0 {
				j = i + 1
			}
			if m.Flipped == s.Members[j].Flipped {
				t.Fatalf("reversed contig not flipped relative to neighbors: %s", s)
			}
		}
	}
}

func TestSplintsMergeOverlappingContigs(t *testing.T) {
	rng := xrt.NewPrng(5)
	g := genome.Random(rng, 3000)
	pieces := [][]byte{g[0:1020], g[980:2020], g[1980:3000]} // 40bp overlaps
	fx := mkFixture(t, 6, g, pieces, 3)
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK})
	if len(res.Scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want 1", len(res.Scaffolds))
	}
	s := res.Scaffolds[0]
	splintLinks := 0
	for _, l := range res.Links {
		if l.Splints > 0 {
			splintLinks++
			if l.Gap > -20 || l.Gap < -60 {
				t.Fatalf("splint gap %f, want ~-40 (overlap)", l.Gap)
			}
		}
	}
	if splintLinks == 0 {
		t.Fatal("no splint links found for overlapping contigs")
	}
	seq := res.ScaffoldSeq(s)
	if !bytes.Equal(seq, g) && !bytes.Equal(seq, kmer.RevCompString(g)) {
		t.Fatalf("splint-merged scaffold sequence (len %d) != reference (len %d)",
			len(seq), len(g))
	}
}

func TestScaffoldSeqGapFilling(t *testing.T) {
	res := &Result{Contigs: map[int64]*SContig{
		1: {ID: 1, Seq: []byte("ACGTACGTAC")},
		2: {ID: 2, Seq: []byte("GGTTGGTTGG")},
	}}
	s := &Scaffold{Members: []Member{
		{ContigID: 1},
		{ContigID: 2, GapBefore: 5},
	}}
	seq := res.ScaffoldSeq(s)
	want := "ACGTACGTAC" + "NNNNN" + "GGTTGGTTGG"
	if string(seq) != want {
		t.Fatalf("got %s want %s", seq, want)
	}
	// flipped member
	s2 := &Scaffold{Members: []Member{
		{ContigID: 1},
		{ContigID: 2, Flipped: true, GapBefore: 2},
	}}
	seq2 := res.ScaffoldSeq(s2)
	want2 := "ACGTACGTAC" + "NN" + string(kmer.RevCompString([]byte("GGTTGGTTGG")))
	if string(seq2) != want2 {
		t.Fatalf("got %s want %s", seq2, want2)
	}
}

func TestInsertEstimation(t *testing.T) {
	rng := xrt.NewPrng(7)
	g := genome.Random(rng, 8000)
	pieces := [][]byte{g} // one contig: plenty of same-contig pairs
	fx := mkFixture(t, 8, g, pieces, 4)
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK})
	if res.InsertMean[0] < 380 || res.InsertMean[0] > 420 {
		t.Fatalf("insert mean %f, want ~400", res.InsertMean[0])
	}
	if res.InsertSD[0] < 5 || res.InsertSD[0] > 40 {
		t.Fatalf("insert sd %f, want ~20", res.InsertSD[0])
	}
}

func TestDepthsComputed(t *testing.T) {
	rng := xrt.NewPrng(9)
	g := genome.Random(rng, 4000)
	fx := mkFixture(t, 10, g, [][]byte{g[100:2000], g[2100:3900]}, 2)
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK})
	for _, sc := range res.Contigs {
		// coverage 25 with read length 100: k-mer depth ≈ 25*(100-21+1)/100 ≈ 20
		if sc.Depth < 12 || sc.Depth > 30 {
			t.Fatalf("contig %d depth %f outside plausible band", sc.ID, sc.Depth)
		}
	}
}

func TestDiploidBubblesPoppedEndToEnd(t *testing.T) {
	// full pipeline integration: diploid reads -> kanalysis -> contigs ->
	// scaffolding with bubble merging
	rng := xrt.NewPrng(11)
	hap1 := genome.Random(rng, 12000)
	hap2 := genome.Mutate(rng, hap1, 0.004)
	recs, _ := genome.SimulatePairs(rng, hap1, genome.SimOptions{
		Coverage:   40,
		Lib:        genome.Library{Name: "d", ReadLen: 100, InsertMean: 350, InsertSD: 20},
		Err:        genome.ErrorModel{},
		Haplotypes: [][]byte{hap2},
	})
	const ranks = 4
	team := xrt.NewTeam(xrt.Config{Ranks: ranks})
	reads := make([][]fastq.Record, ranks)
	for i := 0; i+1 < len(recs); i += 2 {
		r := (i / 2) % ranks
		reads[r] = append(reads[r], recs[i], recs[i+1])
	}
	kres := kanalysis.Run(team, reads, kanalysis.Options{K: testK, MinCount: 4})
	cres := contig.Run(team, kres.Table, contig.Options{K: testK})
	if cres.NumContigs < 3 {
		t.Fatalf("diploid data should fragment into bubbles, got %d contigs", cres.NumContigs)
	}
	res := Run(team, cres, kres.Table,
		[]ReadLib{{Name: "d", ReadsByRank: reads, InsertHint: 350}},
		Options{K: testK})
	if res.Bubbles == 0 {
		t.Fatal("no bubbles popped on diploid data")
	}
	// the dominant scaffold should recover most of the haplotype length
	if len(res.Scaffolds) == 0 {
		t.Fatal("no scaffolds")
	}
	seq := res.ScaffoldSeq(res.Scaffolds[0])
	if len(seq) < len(hap1)/2 {
		t.Fatalf("largest scaffold only %d of %d bases", len(seq), len(hap1))
	}
}

func TestTrimmedMeanSD(t *testing.T) {
	hist := map[int]int64{400: 100, 401: 100, 399: 100, 10000: 2, 1: 2}
	mean, sd, n := trimmedMeanSD(hist, 0.01)
	if mean < 399 || mean > 401 {
		t.Fatalf("outliers not trimmed: mean %f", mean)
	}
	if sd > 2 {
		t.Fatalf("sd %f too high after trimming", sd)
	}
	if n < 290 {
		t.Fatalf("kept only %d observations", n)
	}
	if m, s, n0 := trimmedMeanSD(map[int]int64{}, 0.01); m != 0 || s != 0 || n0 != 0 {
		t.Fatal("empty histogram should return zeros")
	}
}

func TestNoLinksYieldsSingletonScaffolds(t *testing.T) {
	// unrelated contigs with reads only from one of them: no links between
	rng := xrt.NewPrng(13)
	g := genome.Random(rng, 3000)
	other := genome.Random(rng, 2500)
	fx := mkFixture(t, 14, g, [][]byte{g, other}, 2)
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK})
	if len(res.Scaffolds) != 2 {
		t.Fatalf("got %d scaffolds, want 2 singletons", len(res.Scaffolds))
	}
	for _, s := range res.Scaffolds {
		if len(s.Members) != 1 {
			t.Fatalf("unexpected join: %s", s)
		}
	}
}

func TestLinkSupportThreshold(t *testing.T) {
	rng := xrt.NewPrng(15)
	g := genome.Random(rng, 4000)
	pieces := [][]byte{g[0:1900], g[2100:4000]}
	fx := mkFixture(t, 16, g, pieces, 2)
	// absurdly high support requirement: no links survive
	res := Run(fx.team, fx.ctg, fx.kt, fx.libs, Options{K: testK, MinLinkSupport: 100000})
	if len(res.Links) != 0 {
		t.Fatalf("links survived an impossible support threshold: %d", len(res.Links))
	}
	if len(res.Scaffolds) != 2 {
		t.Fatalf("got %d scaffolds, want 2", len(res.Scaffolds))
	}
}

package scaffold

import (
	"sort"

	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// mergeBubbles implements §4.2: contigs whose two ends terminate at the
// same pair of junction k-mers are bubbles — alternative haplotype paths
// in diploid genomes. The bubble-contig graph (contigs contracted to
// supervertices, connected through junction k-mers) is orders of magnitude
// smaller than the de Bruijn graph, so its edge list is gathered to every
// rank and each rank performs the identical contraction; merged contigs
// are then re-distributed. The depth-dominant path through each bubble is
// kept and linear chains through junctions are compressed into single
// sequences.
func mergeBubbles(team *xrt.Team, scByRank [][]*SContig, opt Options,
	res *Result) (map[int64]*SContig, [][]*SContig) {
	p := team.Config().Ranks
	k := opt.K

	// gather compact endpoint records from every rank
	type endpointRec struct {
		ID           int64
		Len          int
		Depth        float64
		NbrL, NbrR   kmer.Kmer
		HasL, HasR   bool
		TermL, TermR byte
	}
	gathered := make([][]endpointRec, p)
	team.Run(func(r *xrt.Rank) {
		var mine []endpointRec
		for _, sc := range scByRank[r.ID] {
			mine = append(mine, endpointRec{
				ID: sc.ID, Len: len(sc.Seq), Depth: sc.Depth,
				NbrL: sc.NbrL, NbrR: sc.NbrR,
				HasL: sc.HasNbrL, HasR: sc.HasNbrR,
				TermL: sc.TermL, TermR: sc.TermR,
			})
		}
		all := r.AllGather(mine)
		if r.ID == 0 {
			for i, a := range all {
				gathered[i] = a.([]endpointRec)
			}
		}
		r.Barrier()
	})

	// index every contig
	byID := make(map[int64]*SContig)
	for _, cs := range scByRank {
		for _, sc := range cs {
			byID[sc.ID] = sc
		}
	}
	var recs []endpointRec
	for _, g := range gathered {
		recs = append(recs, g...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })

	popped := make(map[int64]bool)
	if !opt.DisableBubbles {
		// bubble groups: same unordered junction pair on both ends
		type pairKey struct{ a, b kmer.Kmer }
		groups := make(map[pairKey][]endpointRec)
		maxBubbleLen := 4 * k
		for _, rec := range recs {
			if !rec.HasL || !rec.HasR || rec.Len > maxBubbleLen {
				continue
			}
			a, b := rec.NbrL, rec.NbrR
			if b.Less(a) {
				a, b = b, a
			}
			groups[pairKey{a, b}] = append(groups[pairKey{a, b}], rec)
		}
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			// similar lengths → allelic variants; keep the deepest path
			sort.Slice(g, func(i, j int) bool {
				if g[i].Depth != g[j].Depth {
					return g[i].Depth > g[j].Depth
				}
				return g[i].ID < g[j].ID
			})
			ref := g[0].Len
			for _, loser := range g[1:] {
				if loser.Len*3 >= ref*2 && loser.Len*3 <= ref*4 ||
					absInt(loser.Len-ref) <= k {
					popped[loser.ID] = true
				}
			}
		}
	}
	res.Bubbles = len(popped)

	// junction adjacency among surviving contigs
	junction := make(map[kmer.Kmer][]endpoint)
	for _, rec := range recs {
		if popped[rec.ID] {
			continue
		}
		if rec.HasL {
			junction[rec.NbrL] = append(junction[rec.NbrL], endpoint{rec.ID, EndL})
		}
		if rec.HasR {
			junction[rec.NbrR] = append(junction[rec.NbrR], endpoint{rec.ID, EndR})
		}
	}
	edges := make(map[endpoint]endpoint)
	for _, eps := range junction {
		if len(eps) != 2 || eps[0].id == eps[1].id {
			continue // still ambiguous (true fork) or self-loop
		}
		edges[eps[0]] = eps[1]
		edges[eps[1]] = eps[0]
	}

	// contract chains deterministically (identical on every rank)
	merged := make(map[int64]*SContig)
	used := make(map[int64]bool)
	other := func(s byte) byte {
		if s == EndL {
			return EndR
		}
		return EndL
	}
	for _, rec := range recs {
		if popped[rec.ID] || used[rec.ID] {
			continue
		}
		// find chain start: walk left-ish until an endpoint without edge
		cur := endpoint{rec.ID, EndL}
		seenStart := map[int64]bool{rec.ID: true}
		for {
			prev, ok := edges[cur]
			if !ok {
				break
			}
			nid := prev.id
			if seenStart[nid] {
				break // cycle; start anywhere
			}
			seenStart[nid] = true
			cur = endpoint{nid, other(prev.side)}
		}
		// cur is the chain's starting endpoint (entry side with no edge)
		chain := assembleChain(cur, edges, byID, k, other)
		for _, id := range chain.Members {
			used[id] = true
		}
		merged[chain.ID] = chain
	}

	// charge the gathered-graph computation modestly and redistribute
	out := make([][]*SContig, p)
	var ids []int64
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		out[i%p] = append(out[i%p], merged[id])
	}
	res.BubblePhase = team.Run(func(r *xrt.Rank) {
		r.ChargeItems(len(recs))
		r.Barrier()
	})
	return merged, out
}

// assembleChain walks a chain from its starting endpoint, merging member
// sequences through their junction k-mers. The walk enters each contig on
// the side named by the endpoint and exits on the other side.
func assembleChain(start endpoint, edges map[endpoint]endpoint,
	byID map[int64]*SContig, k int, other func(byte) byte) *SContig {
	first := byID[start.id]
	seq := append([]byte(nil), first.Seq...)
	flipFirst := start.side == EndR
	if flipFirst {
		seq = kmer.RevCompString(seq)
	}
	members := []int64{first.ID}
	minID := first.ID
	depthSum := first.Depth * float64(len(first.Seq))
	lenSum := len(first.Seq)

	// outer-end metadata comes from the chain's two extremities
	outL := first
	outLFlipped := flipFirst
	cur := endpoint{first.ID, other(start.side)} // exit endpoint
	var last *SContig = first
	lastFlipped := flipFirst
	seen := map[int64]bool{first.ID: true}
	for {
		nxt, ok := edges[cur]
		if !ok {
			break
		}
		if seen[nxt.id] {
			break // cycle guard
		}
		seen[nxt.id] = true
		sc := byID[nxt.id]
		nseq := sc.Seq
		flipped := nxt.side == EndR
		if flipped {
			nseq = kmer.RevCompString(nseq)
		}
		joined, ok2 := joinThroughJunction(seq, nseq, k)
		if !ok2 {
			break // defensive: junction inconsistent, stop the chain here
		}
		seq = joined
		members = append(members, sc.ID)
		if sc.ID < minID {
			minID = sc.ID
		}
		depthSum += sc.Depth * float64(len(sc.Seq))
		lenSum += len(sc.Seq)
		last, lastFlipped = sc, flipped
		cur = endpoint{nxt.id, other(nxt.side)}
	}

	out := &SContig{
		ID:      minID,
		Seq:     seq,
		Members: members,
	}
	if lenSum > 0 {
		out.Depth = depthSum / float64(lenSum)
	}
	// outer termination metadata, oriented to the merged sequence
	if !outLFlipped {
		out.TermL, out.NbrL, out.HasNbrL = outL.TermL, outL.NbrL, outL.HasNbrL
	} else {
		out.TermL, out.NbrL, out.HasNbrL = outL.TermR, outL.NbrR, outL.HasNbrR
	}
	if !lastFlipped {
		out.TermR, out.NbrR, out.HasNbrR = last.TermR, last.NbrR, last.HasNbrR
	} else {
		out.TermR, out.NbrR, out.HasNbrR = last.TermL, last.NbrL, last.HasNbrL
	}
	return out
}

// joinThroughJunction concatenates two oriented sequences that are
// separated by exactly one junction k-mer: the junction's first k-1 bases
// must equal a's suffix and its last k-1 bases must equal b's prefix, so
// the joined sequence is a + b[k-2:]. The junction k-mer overlaps a by
// k-1 bases, contributing exactly one new base, and b starts one base
// after the junction.
func joinThroughJunction(a, b []byte, k int) ([]byte, bool) {
	if len(a) < k-1 || len(b) < k-1 {
		return nil, false
	}
	// b's first k-1 bases should equal a's last k-2 bases + one new base:
	// verify the k-2 overlap between a and b directly.
	if string(a[len(a)-(k-2):]) != string(b[:k-2]) {
		return nil, false
	}
	return append(a, b[k-2:]...), true
}

// endpoint identifies one side of one contig in the bubble-contig graph.
type endpoint struct {
	id   int64
	side byte
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

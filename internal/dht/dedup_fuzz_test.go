package dht

import (
	"testing"

	"hipmer/internal/xrt"
)

// FuzzDedupWindow is the property test behind the chaos layer's
// effectively-once guarantee: a fuzzed delivery schedule of drops,
// duplicates, and bounded reorders over a sequence of non-idempotent
// MutateRetry increments, filtered through an xrt.DedupWindow exactly as
// the reliable channel filters retransmissions, must leave the table in
// the same final state as in-order exactly-once delivery. Dropped
// transmissions are retransmissions in disguise (at-least-once transport
// always redelivers, so a drop only reorders and duplicates deliveries),
// and reordering stays within the window — the documented bound for
// exactly-once application.
func FuzzDedupWindow(f *testing.F) {
	f.Add([]byte{0x01, 0x80, 0x40, 0x03, 0xff, 0x10})
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const windowSize = 16
		const maxInFlight = 8
		nOps := 8 + len(data)%64
		byteAt := func(i int) byte {
			if len(data) == 0 {
				return 0
			}
			return data[i%len(data)]
		}

		// The logical operation stream: op seq increments key (seq % 7)
		// by a seq-derived delta. Non-idempotent on purpose: applying any
		// op twice, or skipping one, changes a final sum.
		key := func(seq int) uint64 { return uint64(seq % 7) }
		delta := func(seq int) int64 { return int64(1 + byteAt(seq)%9) }

		// Build the first-delivery order: up to maxInFlight messages are
		// in the network at once and the fuzzer picks which lands next,
		// restricted to seqs that keep the oldest undelivered message
		// inside the dedup window (the transport's reorder bound: a
		// message can only be overtaken while both are in flight).
		var order, pending []int
		next, maxSeen, step := 0, -1, 0
		for len(order) < nOps {
			for next < nOps && len(pending) < maxInFlight {
				pending = append(pending, next)
				next++
			}
			oldest := pending[0]
			var eligible []int
			for idx, s := range pending {
				if s <= oldest+windowSize-1 {
					eligible = append(eligible, idx)
				}
			}
			pickIdx := eligible[int(byteAt(step))%len(eligible)]
			s := pending[pickIdx]
			pending = append(pending[:pickIdx], pending[pickIdx+1:]...)
			order = append(order, s)
			if s > maxSeen {
				maxSeen = s
			}
			step++
		}

		// Inject duplicates: immediate retransmissions and stragglers of
		// long-delivered messages (which may fall below the window — the
		// window treats them as already applied, which they are).
		var schedule []int
		for i, s := range order {
			b := byteAt(nOps + i)
			schedule = append(schedule, s)
			if b&0x3 == 0x3 {
				schedule = append(schedule, s)
			}
			if b&0xc == 0xc {
				schedule = append(schedule, order[i/2])
			}
		}

		// Apply the schedule through a dedup window on one rank.
		team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
		tab := New[uint64, int64](team, intOpts(), sumMerge)
		window := xrt.NewDedupWindow(windowSize)
		team.Run(func(r *xrt.Rank) {
			if r.ID != 0 {
				return
			}
			for _, seq := range schedule {
				if !window.Admit(uint64(seq)) {
					continue // duplicate delivery: discarded, never applied
				}
				k, d := key(seq), delta(seq)
				tab.MutateRetry(r, k, func(v int64, _ bool) (int64, bool) {
					return v + d, true
				})
			}
		})

		// Model: in-order exactly-once delivery.
		want := map[uint64]int64{}
		for seq := 0; seq < nOps; seq++ {
			want[key(seq)] += delta(seq)
		}
		for k, w := range want {
			if v, ok := tab.Lookup(k); !ok || v != w {
				t.Fatalf("key %d = (%d,%v) after fuzzed schedule %v, want exactly-once value %d",
					k, v, ok, schedule, w)
			}
		}
		if got := tab.Len(); got != int64(len(want)) {
			t.Fatalf("table has %d keys, want %d", got, len(want))
		}
	})
}

package dht

import (
	"testing"

	"hipmer/internal/xrt"
)

// Regression tests for stale read-cache hits across the freeze/thaw
// boundary: Thaw must invalidate every per-rank readCache — positive
// and negative entries alike — so a post-thaw Put/Mutate is never
// masked by a frozen-era cached value when the table refreezes.

// TestThawInvalidatesNegativeEntries: a frozen-phase Get of an absent
// key plants a negative cache entry on every non-owner rank; after Thaw,
// Put, and refreeze, the key must be visible everywhere — a stale
// negative entry would make the cached ranks report it absent forever.
func TestThawInvalidatesNegativeEntries(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 4})
	opt := intOpts()
	opt.CacheSlots = 64
	tab := New[uint64, int64](team, opt, sumMerge)
	const key = 12345
	owner := tab.Owner(key)
	team.Run(func(r *xrt.Rank) {
		tab.Freeze(r)
		// Two Gets: the first fills a negative slot, the second must hit it.
		if _, ok := tab.Get(r, key); ok {
			t.Errorf("rank %d: key present before any Put", r.ID)
		}
		if _, ok := tab.Get(r, key); ok {
			t.Errorf("rank %d: cached negative read reports key present", r.ID)
		}
		tab.Thaw(r)
		if r.ID == owner {
			tab.Put(r, key, 42)
		}
		tab.Flush(r)
		r.Barrier()
		tab.Freeze(r)
		if v, ok := tab.Get(r, key); !ok || v != 42 {
			t.Errorf("rank %d: post-thaw Put masked by stale negative cache entry: (%d,%v)", r.ID, v, ok)
		}
	})
	hits := team.AggStats().CacheHits
	if hits == 0 {
		t.Fatal("workload never hit the cache; the regression is not exercised")
	}
}

// TestThawedMutateVisibleAfterRefreeze: a frozen-phase Get caches the old
// value on every non-owner rank; a post-thaw Mutate (and a MutateRetry,
// the uncharged spin variant) must win over the stale positive entry once
// the table refreezes.
func TestThawedMutateVisibleAfterRefreeze(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 4})
	opt := intOpts()
	opt.CacheSlots = 64
	tab := New[uint64, int64](team, opt, nil) // last write wins
	const key = 777
	owner := tab.Owner(key)
	team.Run(func(r *xrt.Rank) {
		if r.ID == owner {
			tab.Put(r, key, 1)
		}
		tab.Flush(r)
		r.Barrier()
		tab.Freeze(r)
		for i := 0; i < 2; i++ { // fill, then hit
			if v, ok := tab.Get(r, key); !ok || v != 1 {
				t.Errorf("rank %d: frozen read = (%d,%v), want 1", r.ID, v, ok)
			}
		}
		tab.Thaw(r)
		if r.ID == owner {
			tab.Mutate(r, key, func(v int64, _ bool) (int64, bool) { return v + 1, true })
			tab.MutateRetry(r, key, func(v int64, _ bool) (int64, bool) { return v + 1, true })
		}
		r.Barrier()
		tab.Freeze(r)
		if v, ok := tab.Get(r, key); !ok || v != 3 {
			t.Errorf("rank %d: post-thaw Mutate masked by stale cache entry: (%d,%v), want 3", r.ID, v, ok)
		}
	})
}

// TestThawSerialInvalidatesAllCaches covers the orchestration-side path:
// caches created by FreezeSerial for every rank must all be discarded by
// ThawSerial, so a between-phases mutation is visible to every rank's
// reads after the next FreezeSerial.
func TestThawSerialInvalidatesAllCaches(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
	opt := intOpts()
	opt.CacheSlots = 64
	tab := New[uint64, int64](team, opt, nil)
	const key = 4242
	owner := tab.Owner(key)
	tab.FreezeSerial()
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 2; i++ {
			if _, ok := tab.Get(r, key); ok {
				t.Errorf("rank %d: key present before any write", r.ID)
			}
		}
	})
	tab.ThawSerial()
	team.Run(func(r *xrt.Rank) {
		if r.ID == owner {
			tab.Put(r, key, 9)
		}
		tab.Flush(r)
	})
	tab.FreezeSerial()
	team.Run(func(r *xrt.Rank) {
		if v, ok := tab.Get(r, key); !ok || v != 9 {
			t.Errorf("rank %d: serial thaw left a stale negative entry: (%d,%v)", r.ID, v, ok)
		}
	})
}

// TestThawIdempotentPathLeavesNoCaches: thawing a never-frozen or
// already-thawed table must leave no cache behind for any rank (the
// "not frozen => every cache nil" invariant the frozen Get fast path
// relies on).
func TestThawIdempotentPathLeavesNoCaches(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
	opt := intOpts()
	opt.CacheSlots = 16
	tab := New[uint64, int64](team, opt, sumMerge)
	team.Run(func(r *xrt.Rank) {
		tab.Thaw(r) // never frozen: documented no-op
		tab.Freeze(r)
		tab.Thaw(r)
		tab.Thaw(r) // already thawed: documented no-op
	})
	for i, c := range tab.caches {
		if c != nil {
			t.Fatalf("rank %d cache survived thaw", i)
		}
	}
	tab.ThawSerial() // idempotent from orchestration code too
	for i, c := range tab.caches {
		if c != nil {
			t.Fatalf("rank %d cache survived serial thaw", i)
		}
	}
}

package dht

import (
	"testing"

	"hipmer/internal/xrt"
)

// TestStressConcurrentOpsPerturbed re-runs the concurrent stress workload
// under a sweep of schedule-perturbation seeds. Each plan delays flushes,
// barrier arrivals, and rank starts differently, widening the races the
// stripe locks must win; the final table must nevertheless be identical
// across all plans (and identical to the unperturbed run), with no update
// lost or duplicated. Run with -race for full effect.
func TestStressConcurrentOpsPerturbed(t *testing.T) {
	const (
		ranks = 8
		puts  = 1500
		keys  = 97
	)
	workload := func(perturbSeed int64) map[uint64]int64 {
		team := xrt.NewTeam(xrt.Config{
			Ranks:        ranks,
			RanksPerNode: 2,
			Seed:         5,
			Perturb:      xrt.PerturbPlan{Seed: perturbSeed, StartJitterNs: 20_000, BarrierJitterNs: 5_000, FlushJitterNs: 3_000},
		})
		opt := intOpts()
		opt.AggBufSize = 16
		opt.Stripes = 4
		tab := New[uint64, int64](team, opt, sumMerge)
		team.Run(func(r *xrt.Rank) {
			rng := r.Rng()
			for i := 0; i < puts; i++ {
				tab.Put(r, rng.Uint64()%keys, 1)
				if i%7 == 0 {
					tab.Get(r, rng.Uint64()%keys)
				}
				if i%113 == 0 {
					tab.Flush(r)
				}
				if i%6 == 0 {
					tab.Mutate(r, rng.Uint64()%keys, func(v int64, _ bool) (int64, bool) {
						return v + 1, true
					})
				}
			}
			tab.Flush(r)
			r.Barrier()
			tab.Freeze(r)
			for k := uint64(0); k < keys; k++ {
				tab.Get(r, k)
			}
		})
		out := make(map[uint64]int64, keys)
		tab.RangeAll(func(k uint64, v int64) bool { out[k] = v; return true })
		return out
	}

	base := workload(0) // unperturbed
	var baseSum int64
	for _, v := range base {
		baseSum += v
	}
	want := int64(ranks * (puts + puts/6)) // puts + one mutate per 6 puts, per rank
	if baseSum != want {
		t.Fatalf("unperturbed run lost updates: sum %d, want %d", baseSum, want)
	}
	for _, seed := range []int64{1, 2, 3, 17, 0x5eed} {
		got := workload(seed)
		if len(got) != len(base) {
			t.Fatalf("perturb seed %d: %d keys, unperturbed %d", seed, len(got), len(base))
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("perturb seed %d: key %d = %d, unperturbed %d", seed, k, got[k], v)
			}
		}
	}
}

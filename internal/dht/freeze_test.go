package dht

import (
	"sync/atomic"
	"testing"

	"hipmer/internal/xrt"
)

// expectPanic runs fn and reports whether it panicked.
func expectPanic(fn func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	fn()
	return false
}

func TestFreezePanicsOnWritesAndThawRestores(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 100; i++ {
			tab.Put(r, uint64(r.ID*100+i), 1)
		}
		tab.Freeze(r) // flushes, barriers, publishes immutable

		// reads still work, lock-free
		if v, ok := tab.Get(r, uint64(r.ID*100)); !ok || v != 1 {
			t.Errorf("rank %d: frozen Get = (%d,%v)", r.ID, v, ok)
		}
		// every write class must panic
		if r.ID == 0 {
			for name, fn := range map[string]func(){
				"Put":    func() { tab.Put(r, 7, 1) },
				"Mutate": func() { tab.Mutate(r, 7, func(v int64, _ bool) (int64, bool) { return v, true }) },
				"Delete": func() { tab.Delete(r, 7) },
				"LocalUpdate": func() {
					tab.LocalUpdate(r, func(_ uint64, v int64) int64 { return v })
				},
				"LocalFilter": func() {
					tab.LocalFilter(r, func(_ uint64, v int64) (int64, bool) { return v, true })
				},
			} {
				if !expectPanic(fn) {
					t.Errorf("%s on frozen table did not panic", name)
				}
			}
		}
		r.Barrier()

		tab.Thaw(r)
		// writes work again and are visible after flush + barrier
		tab.Put(r, uint64(1000+r.ID), 5)
		tab.Flush(r)
		r.Barrier()
		if v, ok := tab.Get(r, uint64(1000+(r.ID+1)%4)); !ok || v != 5 {
			t.Errorf("rank %d: post-thaw Get = (%d,%v)", r.ID, v, ok)
		}
	})
}

func TestFrozenFlushOfEmptyBuffersIsNoop(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	team.Run(func(r *xrt.Rank) {
		tab.Put(r, uint64(r.ID), 1)
		tab.Freeze(r)
		tab.Flush(r) // buffers drained by Freeze: must not panic
	})
}

func TestFreezeSerialAndThawSerial(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 3})
	opt := intOpts()
	opt.CacheSlots = 64
	tab := New[uint64, int64](team, opt, sumMerge)
	team.Run(func(r *xrt.Rank) {
		tab.Put(r, uint64(r.ID), int64(r.ID))
		tab.Flush(r)
	})
	tab.FreezeSerial()
	if !tab.Frozen() {
		t.Fatal("FreezeSerial did not freeze")
	}
	if v, ok := tab.Lookup(2); !ok || v != 2 {
		t.Fatalf("frozen Lookup = (%d,%v)", v, ok)
	}
	tab.ThawSerial()
	if tab.Frozen() {
		t.Fatal("ThawSerial did not thaw")
	}
	team.Run(func(r *xrt.Rank) {
		tab.Put(r, 99, 1) // must not panic
		tab.Flush(r)
	})
}

func TestCacheServesRemoteReadsLocally(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
	opt := intOpts()
	opt.CacheSlots = 1 << 12
	tab := New[uint64, int64](team, opt, sumMerge)
	const n = 512
	team.Run(func(r *xrt.Rank) {
		for i := r.ID; i < n; i += r.N() {
			tab.Put(r, uint64(i), int64(i))
		}
		tab.Freeze(r)
		// two passes over all keys, plus absent keys: the second pass
		// must be answered from the cache with correct values
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < n; i++ {
				v, ok := tab.Get(r, uint64(i))
				if !ok || v != int64(i) {
					t.Errorf("rank %d pass %d: key %d = (%d,%v)", r.ID, pass, i, v, ok)
					return
				}
			}
			for i := n; i < n+64; i++ { // negative entries cache too
				if _, ok := tab.Get(r, uint64(i)); ok {
					t.Errorf("rank %d: phantom key %d", r.ID, i)
					return
				}
			}
		}
	})
	s := team.AggStats()
	if s.CacheHits == 0 {
		t.Fatalf("no cache hits recorded: %+v", s)
	}
	if s.CacheMisses == 0 {
		t.Fatalf("no cache misses recorded: %+v", s)
	}
	// with two identical passes and a cache larger than the key space,
	// roughly half the remote reads must hit
	if rate := s.CacheHitRate(); rate < 0.3 {
		t.Fatalf("cache hit rate %.2f too low", rate)
	}
}

func TestThawDiscardsCaches(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2, RanksPerNode: 1})
	opt := intOpts()
	opt.CacheSlots = 64
	tab := New[uint64, int64](team, opt, nil) // last write wins
	// find a key owned by rank 1 so rank 0 reads it remotely (cached)
	var key uint64
	for k := uint64(0); ; k++ {
		if int(xrt.Splitmix64(k)%2) == 1 {
			key = k
			break
		}
	}
	team.Run(func(r *xrt.Rank) {
		if r.ID == 1 {
			tab.Put(r, key, 1)
		}
		tab.Freeze(r)
		if v, _ := tab.Get(r, key); v != 1 { // fills rank 0's cache
			t.Errorf("rank %d: stale initial read %d", r.ID, v)
		}
		tab.Thaw(r)
		if r.ID == 1 {
			tab.Put(r, key, 2)
		}
		tab.Freeze(r)
		if v, _ := tab.Get(r, key); v != 2 {
			t.Errorf("rank %d: read %d after thaw+rewrite, want 2 (stale cache?)", r.ID, v)
		}
	})
}

func TestLocalPutFastPathAppliesImmediately(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	var localPuts atomic.Int64
	team.Run(func(r *xrt.Rank) {
		for k := uint64(0); k < 4000; k++ {
			if tab.Owner(k) != r.ID {
				continue
			}
			tab.Put(r, k, 1)
			localPuts.Add(1)
			// no Flush: local stores bypass the buffer and are visible
			// immediately
			if v, ok := tab.Get(r, k); !ok || v != 1 {
				t.Errorf("rank %d: local put of %d not visible pre-flush", r.ID, k)
				return
			}
		}
	})
	s := team.AggStats()
	if s.LocalStores != localPuts.Load() {
		t.Fatalf("local stores %d, want %d", s.LocalStores, localPuts.Load())
	}
	if s.OnNodeMsgs+s.OffNodeMsgs != 0 {
		t.Fatalf("local puts generated messages: %+v", s)
	}
}

// TestStressConcurrentOps hammers Get/Put/Mutate/Flush concurrently from
// every rank — the -race target exercising stripe locking under real
// contention. The sum invariant checks no update is lost or duplicated.
func TestStressConcurrentOps(t *testing.T) {
	const (
		ranks   = 8
		puts    = 3000
		mutates = 500
		keys    = 97 // small keyspace maximizes stripe contention
	)
	team := xrt.NewTeam(xrt.Config{Ranks: ranks, RanksPerNode: 2})
	opt := intOpts()
	opt.AggBufSize = 16
	opt.Stripes = 4
	tab := New[uint64, int64](team, opt, sumMerge)
	team.Run(func(r *xrt.Rank) {
		rng := r.Rng()
		for i := 0; i < puts; i++ {
			tab.Put(r, rng.Uint64()%keys, 1)
			if i%7 == 0 {
				tab.Get(r, rng.Uint64()%keys)
			}
			if i%251 == 0 {
				tab.Flush(r)
			}
			if i%6 == 0 && i/6 < mutates {
				tab.Mutate(r, rng.Uint64()%keys, func(v int64, _ bool) (int64, bool) {
					return v + 1, true
				})
			}
		}
		tab.Flush(r)
		r.Barrier()
		// concurrent frozen reads from all ranks (lock-free under -race)
		tab.Freeze(r)
		for k := uint64(0); k < keys; k++ {
			tab.Get(r, k)
		}
	})
	var sum int64
	tab.RangeAll(func(_ uint64, v int64) bool { sum += v; return true })
	want := int64(ranks * (puts + mutates))
	if sum != want {
		t.Fatalf("lost or duplicated updates: sum %d, want %d", sum, want)
	}
}

func TestExpectedItemsPreSizing(t *testing.T) {
	// pre-sizing must not change behaviour, only allocation
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	opt := intOpts()
	opt.ExpectedItems = 100000
	tab := New[uint64, int64](team, opt, sumMerge)
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 1000; i++ {
			tab.Put(r, uint64(i), 1)
		}
		tab.Flush(r)
		r.Barrier()
		if n := tab.GlobalLen(r); n != 1000 {
			t.Errorf("global len %d, want 1000", n)
		}
	})
}

// ---------------------------------------------------------------------
// Microbenchmarks: striped-mutex Get vs frozen lock-free Get vs frozen
// cached Get, all with 8 ranks issuing lookups concurrently.

const benchKeys = 1 << 15

func buildBenchTable(cacheSlots int) (*xrt.Team, *Table[uint64, int64]) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 4})
	opt := intOpts()
	opt.CacheSlots = cacheSlots
	opt.ExpectedItems = benchKeys
	tab := New[uint64, int64](team, opt, sumMerge)
	team.Run(func(r *xrt.Rank) {
		for i := r.ID; i < benchKeys; i += r.N() {
			tab.Put(r, uint64(i), int64(i))
		}
		tab.Flush(r)
	})
	return team, tab
}

func benchGets(b *testing.B, team *xrt.Team, tab *Table[uint64, int64], span uint64) {
	b.ReportAllocs()
	b.ResetTimer()
	team.Run(func(r *xrt.Rank) {
		x := uint64(r.ID)*0x9e3779b97f4a7c15 + 1
		for i := 0; i < b.N/8+1; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			tab.Get(r, (x>>17)%span)
		}
	})
}

// BenchmarkDHTGetStriped is the mutex baseline: every Get locks its
// stripe.
func BenchmarkDHTGetStriped(b *testing.B) {
	team, tab := buildBenchTable(0)
	benchGets(b, team, tab, benchKeys)
}

// BenchmarkDHTGetFrozen serves the same lookups lock-free from the
// frozen table.
func BenchmarkDHTGetFrozen(b *testing.B) {
	team, tab := buildBenchTable(0)
	tab.FreezeSerial()
	benchGets(b, team, tab, benchKeys)
}

// BenchmarkDHTGetFrozenCached adds the per-rank software cache with a
// working set that fits it (seed-lookup-like reuse).
func BenchmarkDHTGetFrozenCached(b *testing.B) {
	team, tab := buildBenchTable(1 << 14)
	tab.FreezeSerial()
	benchGets(b, team, tab, 1<<12)
	s := team.AggStats()
	b.ReportMetric(s.CacheHitRate(), "hitRate")
}

// TestFreezeThawIdempotent: Freeze on a frozen table and Thaw on a
// thawed table are documented no-ops — every rank must still converge
// (the collective variants keep their barrier), the table's contents
// must be untouched, and the serial variants must return immediately.
// Regression test: double-freeze used to flush into frozen shards.
func TestFreezeThawIdempotent(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	team.Run(func(r *xrt.Rank) {
		tab.Put(r, uint64(r.ID), int64(r.ID)+1)
		tab.Freeze(r)
		tab.Freeze(r) // idempotent: no flush, no re-publish, still collective
		if v, ok := tab.Get(r, uint64(r.ID)); !ok || v != int64(r.ID)+1 {
			t.Errorf("rank %d: Get after double Freeze = (%d,%v)", r.ID, v, ok)
		}
		tab.Thaw(r)
		tab.Thaw(r) // idempotent on a thawed table
		tab.Put(r, uint64(100+r.ID), 9)
		tab.Flush(r)
		r.Barrier()
		if v, ok := tab.Get(r, uint64(100+(r.ID+1)%4)); !ok || v != 9 {
			t.Errorf("rank %d: writes after double Thaw = (%d,%v)", r.ID, v, ok)
		}
	})

	// Serial variants: same contract from the orchestrator goroutine.
	tab.FreezeSerial()
	tab.FreezeSerial()
	tab.ThawSerial()
	tab.ThawSerial()
	team.Run(func(r *xrt.Rank) {
		if v, ok := tab.Get(r, uint64(r.ID)); !ok || v != int64(r.ID)+1 {
			t.Errorf("rank %d: Get after serial freeze/thaw pairs = (%d,%v)", r.ID, v, ok)
		}
	})
}

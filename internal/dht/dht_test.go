package dht

import (
	"fmt"
	"sync/atomic"
	"testing"

	"hipmer/internal/xrt"
)

func intOpts() Options[uint64] {
	return Options[uint64]{Hash: xrt.Splitmix64}
}

func sumMerge(old, in int64, _ bool) int64 { return old + in }

func TestPutGetVisibleAfterFlushBarrier(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 4})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	const perRank = 1000
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < perRank; i++ {
			tab.Put(r, uint64(r.ID*perRank+i), int64(r.ID*perRank+i))
		}
		tab.Flush(r)
		r.Barrier()
		// every rank reads every key
		for i := 0; i < 8*perRank; i += 97 {
			v, ok := tab.Get(r, uint64(i))
			if !ok || v != int64(i) {
				t.Errorf("rank %d: key %d -> (%d,%v)", r.ID, i, v, ok)
				return
			}
		}
	})
}

func TestMergeAccumulates(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 6})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 100; i++ {
			tab.Put(r, uint64(i%10), 1)
		}
		tab.Flush(r)
		r.Barrier()
		for i := 0; i < 10; i++ {
			v, ok := tab.Get(r, uint64(i))
			if !ok || v != 60 { // 6 ranks x 10 increments
				t.Errorf("key %d = %d, want 60", i, v)
				return
			}
		}
	})
}

func TestExactlyOnceDeliveryUnderAggregation(t *testing.T) {
	// Every put must be applied exactly once regardless of buffer size.
	for _, bufSize := range []int{1, 2, 7, 512, 100000} {
		team := xrt.NewTeam(xrt.Config{Ranks: 5})
		opt := intOpts()
		opt.AggBufSize = bufSize
		tab := New[uint64, int64](team, opt, sumMerge)
		team.Run(func(r *xrt.Rank) {
			for i := 0; i < 333; i++ {
				tab.Put(r, uint64(i), 1)
			}
			tab.Flush(r)
		})
		bad := 0
		tab.RangeAll(func(k uint64, v int64) bool {
			if v != 5 {
				bad++
			}
			return true
		})
		if bad != 0 {
			t.Fatalf("bufSize=%d: %d keys with wrong count", bufSize, bad)
		}
	}
}

func TestAggregationReducesMessages(t *testing.T) {
	run := func(bufSize int) int64 {
		team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 2})
		opt := intOpts()
		opt.AggBufSize = bufSize
		tab := New[uint64, int64](team, opt, sumMerge)
		team.Run(func(r *xrt.Rank) {
			for i := 0; i < 2000; i++ {
				tab.Put(r, uint64(r.Rng().Uint64()), 1)
			}
			tab.Flush(r)
		})
		s := team.AggStats()
		return s.OnNodeMsgs + s.OffNodeMsgs
	}
	fine, agg := run(1), run(512)
	if agg*50 > fine {
		t.Fatalf("aggregation did not reduce messages enough: fine=%d agg=%d", fine, agg)
	}
}

func TestMutateAtomicity(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8})
	tab := New[uint64, int64](team, intOpts(), nil)
	const inc = 5000
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < inc; i++ {
			tab.Mutate(r, 42, func(v int64, _ bool) (int64, bool) { return v + 1, true })
		}
	})
	var got int64
	tab.RangeAll(func(k uint64, v int64) bool { got = v; return true })
	if got != 8*inc {
		t.Fatalf("concurrent mutate lost updates: %d != %d", got, 8*inc)
	}
}

func TestMutateCASPattern(t *testing.T) {
	// claim semantics: exactly one rank may claim a key
	team := xrt.NewTeam(xrt.Config{Ranks: 16})
	tab := New[uint64, int64](team, intOpts(), nil)
	var winners int64
	team.Run(func(r *xrt.Rank) {
		claimed := false
		tab.Mutate(r, 7, func(v int64, exists bool) (int64, bool) {
			if !exists {
				claimed = true
				return int64(r.ID + 1), true
			}
			return v, false
		})
		if claimed {
			atomic.AddInt64(&winners, 1)
		}
	})
	if winners != 1 {
		t.Fatalf("%d ranks claimed the key", winners)
	}
}

func TestLookupLocalityClassification(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2})
	tab := New[uint64, int64](team, intOpts(), nil)
	// place keys deterministically: find keys owned by each rank
	keyFor := make([]uint64, 4)
	for k := uint64(0); ; k++ {
		o := int(xrt.Splitmix64(k) % 4)
		if keyFor[o] == 0 {
			keyFor[o] = k
		}
		done := true
		for _, v := range keyFor {
			if v == 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
	team.Run(func(r *xrt.Rank) {
		if r.ID != 0 {
			return
		}
		tab.Get(r, keyFor[0]) // local
		tab.Get(r, keyFor[1]) // on-node (ranks 0,1 on node 0)
		tab.Get(r, keyFor[2]) // off-node
		tab.Get(r, keyFor[3]) // off-node
	})
	s := team.AggStats()
	if s.LocalLookups != 1 || s.OnNodeLookups != 1 || s.OffNodeLookups != 2 {
		t.Fatalf("classification wrong: %+v", s)
	}
}

func TestLocalRangeCoversExactlyOwnShard(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 6})
	tab := New[uint64, int64](team, intOpts(), nil)
	const n = 5000
	var covered atomic.Int64
	team.Run(func(r *xrt.Rank) {
		for i := r.ID; i < n; i += r.N() {
			tab.Put(r, uint64(i), int64(i))
		}
		tab.Flush(r)
		r.Barrier()
		tab.LocalRange(r, func(k uint64, v int64) bool {
			if tab.Owner(k) != r.ID {
				t.Errorf("rank %d saw foreign key %d", r.ID, k)
			}
			covered.Add(1)
			return true
		})
	})
	if covered.Load() != n {
		t.Fatalf("local ranges covered %d keys, want %d", covered.Load(), n)
	}
}

func TestLocalUpdateAndDelete(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 3})
	tab := New[uint64, int64](team, intOpts(), nil)
	team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			for i := 0; i < 30; i++ {
				tab.Put(r, uint64(i), 1)
			}
			tab.Flush(r)
		}
		r.Barrier()
		tab.LocalUpdate(r, func(k uint64, v int64) int64 { return v * 10 })
		r.Barrier()
		if r.ID == 0 {
			v, _ := tab.Get(r, 5)
			if v != 10 {
				t.Errorf("update not applied: %d", v)
			}
			tab.Delete(r, 5)
			if _, ok := tab.Get(r, 5); ok {
				t.Error("delete did not remove key")
			}
		}
	})
}

func TestGlobalLen(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	tab := New[uint64, int64](team, intOpts(), nil)
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 100; i++ {
			tab.Put(r, uint64(r.ID*100+i), 1)
		}
		tab.Flush(r)
		r.Barrier()
		if n := tab.GlobalLen(r); n != 400 {
			t.Errorf("global len %d, want 400", n)
		}
	})
}

func TestOraclePlacementMakesLookupsLocal(t *testing.T) {
	const ranks = 8
	team := xrt.NewTeam(xrt.Config{Ranks: ranks, RanksPerNode: 2})
	oracle := NewOracle(1<<16, ranks)
	// assign 1000 keys per rank to that rank
	keys := make([][]uint64, ranks)
	for rank := 0; rank < ranks; rank++ {
		for i := 0; i < 1000; i++ {
			k := uint64(rank*1000 + i)
			oracle.Assign(xrt.Splitmix64(k), rank)
			keys[rank] = append(keys[rank], k)
		}
	}
	opt := intOpts()
	opt.Place = oracle.Place
	tab := New[uint64, int64](team, opt, nil)
	team.Run(func(r *xrt.Rank) {
		for _, k := range keys[r.ID] {
			tab.Put(r, k, 1)
		}
		tab.Flush(r)
		r.Barrier()
		for _, k := range keys[r.ID] {
			tab.Get(r, k)
		}
	})
	s := team.AggStats()
	frac := float64(s.LocalLookups) / float64(s.Lookups())
	if frac < 0.95 {
		t.Fatalf("oracle layout: only %.2f of lookups local", frac)
	}
}

func TestOracleCollisionsFallBackConsistently(t *testing.T) {
	o := NewOracle(16, 4) // tiny vector to force collisions
	for k := uint64(0); k < 100; k++ {
		o.Assign(xrt.Splitmix64(k), int(k%4))
	}
	if o.Collisions() == 0 {
		t.Fatal("expected collisions with a 16-slot vector")
	}
	// Placement must be deterministic and in range.
	for k := uint64(0); k < 1000; k++ {
		p1 := o.Place(xrt.Splitmix64(k))
		p2 := o.Place(xrt.Splitmix64(k))
		if p1 != p2 || p1 < 0 || p1 >= 4 {
			t.Fatalf("placement unstable or out of range: %d vs %d", p1, p2)
		}
	}
}

func TestOracleMemoryBytes(t *testing.T) {
	if got := NewOracle(1000, 4).MemoryBytes(); got != 4000 {
		t.Fatalf("memory = %d, want 4000", got)
	}
}

func TestStringKeys(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	opt := Options[string]{Hash: func(s string) uint64 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		return h
	}}
	tab := New[string, string](team, opt, nil)
	team.Run(func(r *xrt.Rank) {
		tab.Put(r, fmt.Sprintf("key-%d", r.ID), fmt.Sprintf("val-%d", r.ID))
		tab.Flush(r)
		r.Barrier()
		for i := 0; i < 4; i++ {
			v, ok := tab.Get(r, fmt.Sprintf("key-%d", i))
			if !ok || v != fmt.Sprintf("val-%d", i) {
				t.Errorf("rank %d: key-%d -> %q,%v", r.ID, i, v, ok)
			}
		}
	})
}

func BenchmarkPutAggregated(b *testing.B) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	b.ResetTimer()
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < b.N/8+1; i++ {
			tab.Put(r, r.Rng().Uint64(), 1)
		}
		tab.Flush(r)
	})
}

func BenchmarkGet(b *testing.B) {
	team := xrt.NewTeam(xrt.Config{Ranks: 8})
	tab := New[uint64, int64](team, intOpts(), nil)
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 10000; i++ {
			tab.Put(r, uint64(i), int64(i))
		}
		tab.Flush(r)
	})
	b.ResetTimer()
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < b.N/8+1; i++ {
			tab.Get(r, uint64(i%10000))
		}
	})
}

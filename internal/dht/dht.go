// Package dht implements the distributed hash tables at the heart of
// HipMer (paper §7: "distributed hash tables lie in the heart of HipMer
// and the main operations on them are irregular lookups"). A Table is
// partitioned into one shard per rank; the owner of a key is determined by
// a placement function over the key's hash — the uniform h mod p layout by
// default, or an oracle layout (see Oracle) for the communication-avoiding
// traversal of §3.2.
//
// Two communication patterns from the paper are modelled faithfully:
//
//   - Irregular lookups (Get/Mutate): one message per operation, classified
//     local / on-node / off-node by the xrt layer. These are the events
//     whose locality Table 2 of the paper reports.
//   - Aggregating stores (Put): updates are buffered per destination rank
//     and flushed as one message per full buffer, the optimization HipMer
//     uses for hash-table construction (§4.1, §4.6).
//
// Physically everything is an in-process sharded map guarded by mutexes;
// the xrt cost layer supplies the distributed-memory semantics of interest.
package dht

import (
	"sync"

	"hipmer/internal/xrt"
)

// PlaceFunc maps a key hash to an owning rank.
type PlaceFunc func(hash uint64) int

// Options configures a Table.
type Options[K comparable] struct {
	// Hash maps a key to a 64-bit hash. Required.
	Hash func(K) uint64
	// Place overrides the owner computation; nil means hash % ranks.
	Place PlaceFunc
	// ItemBytes approximates the wire size of one key+value, used for
	// bandwidth charging. Defaults to 24.
	ItemBytes int
	// AggBufSize is the aggregating-stores buffer length per destination
	// rank. 1 disables aggregation (one message per store, the behaviour
	// the baselines use). Defaults to 512.
	AggBufSize int
}

// ApplyFunc is an owner-side store handler: it runs under the owning
// shard's lock with direct access to the shard map, letting callers attach
// owner-local state (e.g. the per-owner Bloom filters of k-mer analysis)
// to the application of aggregated stores.
type ApplyFunc[K comparable, V any] func(owner int, k K, incoming V, shard map[K]V)

// Table is a distributed hash table of K→V with a user-supplied merge
// function applied when a Put lands on an existing key.
type Table[K comparable, V any] struct {
	team  *xrt.Team
	opt   Options[K]
	merge func(old V, incoming V, exists bool) V
	apply ApplyFunc[K, V] // overrides merge when non-nil

	shards []shard[K, V]
	locals []localState[K, V]
}

// SetApply installs an owner-side apply hook that replaces the merge
// function for subsequent Put flushes. Must not be called while an SPMD
// phase is mutating the table.
func (t *Table[K, V]) SetApply(fn ApplyFunc[K, V]) { t.apply = fn }

type shard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
	_  [32]byte // reduce false sharing between shard locks
}

type kv[K comparable, V any] struct {
	k K
	v V
}

type localState[K comparable, V any] struct {
	bufs [][]kv[K, V] // per destination rank
}

// New creates a table across the team. merge resolves Put collisions:
// it receives the existing value (zero if !exists) and the incoming one
// and returns the value to store. A nil merge means "last write wins".
func New[K comparable, V any](team *xrt.Team, opt Options[K],
	merge func(old V, incoming V, exists bool) V) *Table[K, V] {
	if opt.Hash == nil {
		panic("dht: Options.Hash is required")
	}
	if opt.ItemBytes <= 0 {
		opt.ItemBytes = 24
	}
	if opt.AggBufSize <= 0 {
		opt.AggBufSize = 512
	}
	if merge == nil {
		merge = func(_ V, in V, _ bool) V { return in }
	}
	p := team.Config().Ranks
	t := &Table[K, V]{team: team, opt: opt, merge: merge}
	t.shards = make([]shard[K, V], p)
	for i := range t.shards {
		t.shards[i].m = make(map[K]V)
	}
	t.locals = make([]localState[K, V], p)
	for i := range t.locals {
		t.locals[i].bufs = make([][]kv[K, V], p)
	}
	return t
}

// Owner returns the rank owning key k under the current placement.
func (t *Table[K, V]) Owner(k K) int {
	h := t.opt.Hash(k)
	if t.opt.Place != nil {
		return t.opt.Place(h)
	}
	return int(h % uint64(t.team.Config().Ranks))
}

// Put enqueues a store of (k, v); it is applied at the owner when the
// destination buffer fills or Flush is called. Visibility is guaranteed
// only after Flush + barrier, matching the one-sided aggregating-stores
// semantics of the paper.
func (t *Table[K, V]) Put(r *xrt.Rank, k K, v V) {
	dst := t.Owner(k)
	ls := &t.locals[r.ID]
	ls.bufs[dst] = append(ls.bufs[dst], kv[K, V]{k, v})
	if len(ls.bufs[dst]) >= t.opt.AggBufSize {
		t.flushTo(r, dst)
	}
}

func (t *Table[K, V]) flushTo(r *xrt.Rank, dst int) {
	ls := &t.locals[r.ID]
	buf := ls.bufs[dst]
	if len(buf) == 0 {
		return
	}
	r.ChargeStoreBatch(dst, len(buf), len(buf)*t.opt.ItemBytes)
	sh := &t.shards[dst]
	sh.mu.Lock()
	if t.apply != nil {
		for _, e := range buf {
			t.apply(dst, e.k, e.v, sh.m)
		}
	} else {
		for _, e := range buf {
			old, exists := sh.m[e.k]
			sh.m[e.k] = t.merge(old, e.v, exists)
		}
	}
	sh.mu.Unlock()
	ls.bufs[dst] = buf[:0]
}

// Flush drains all of the calling rank's store buffers. Callers normally
// follow a collective Flush with a barrier before reading.
func (t *Table[K, V]) Flush(r *xrt.Rank) {
	for dst := range t.locals[r.ID].bufs {
		t.flushTo(r, dst)
	}
}

// Get performs an irregular lookup: one message to the owner (unless
// local), classified and charged by the xrt layer.
func (t *Table[K, V]) Get(r *xrt.Rank, k K) (V, bool) {
	dst := t.Owner(k)
	r.ChargeLookup(dst, t.opt.ItemBytes)
	sh := &t.shards[dst]
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

// Mutate runs fn atomically on the value stored under k at its owner,
// modelling a remote atomic (the lightweight synchronization primitive the
// traversal uses). fn receives the current value and whether it exists and
// returns the new value and whether to store it. Results can be captured
// through the closure.
func (t *Table[K, V]) Mutate(r *xrt.Rank, k K, fn func(v V, exists bool) (V, bool)) {
	dst := t.Owner(k)
	r.ChargeLookup(dst, t.opt.ItemBytes)
	sh := &t.shards[dst]
	sh.mu.Lock()
	old, exists := sh.m[k]
	if nv, store := fn(old, exists); store {
		sh.m[k] = nv
	}
	sh.mu.Unlock()
}

// Delete removes k at its owner (charged as a lookup-class operation).
func (t *Table[K, V]) Delete(r *xrt.Rank, k K) {
	dst := t.Owner(k)
	r.ChargeLookup(dst, t.opt.ItemBytes)
	sh := &t.shards[dst]
	sh.mu.Lock()
	delete(sh.m, k)
	sh.mu.Unlock()
}

// LocalRange iterates the calling rank's shard. fn returning false stops
// the iteration. Values seen are snapshots; mutating the table during
// iteration is not allowed. Iteration itself is free of communication
// (the paper's "each processor iterates over its local buckets").
func (t *Table[K, V]) LocalRange(r *xrt.Rank, fn func(k K, v V) bool) {
	sh := &t.shards[r.ID]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k, v := range sh.m {
		r.Charge(t.team.Cost().LocalOpNs)
		if !fn(k, v) {
			return
		}
	}
}

// LocalUpdate rewrites every value of the calling rank's shard in place.
func (t *Table[K, V]) LocalUpdate(r *xrt.Rank, fn func(k K, v V) V) {
	sh := &t.shards[r.ID]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k, v := range sh.m {
		r.Charge(t.team.Cost().LocalOpNs)
		sh.m[k] = fn(k, v)
	}
}

// LocalFilter rewrites or deletes every entry of the calling rank's shard:
// fn returns the new value and whether to keep the entry.
func (t *Table[K, V]) LocalFilter(r *xrt.Rank, fn func(k K, v V) (V, bool)) {
	sh := &t.shards[r.ID]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k, v := range sh.m {
		r.Charge(t.team.Cost().LocalOpNs)
		if nv, keep := fn(k, v); keep {
			sh.m[k] = nv
		} else {
			delete(sh.m, k)
		}
	}
}

// LocalLen returns the number of entries owned by the calling rank.
func (t *Table[K, V]) LocalLen(r *xrt.Rank) int {
	sh := &t.shards[r.ID]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.m)
}

// GlobalLen returns the total entry count; collective (all ranks must call).
func (t *Table[K, V]) GlobalLen(r *xrt.Rank) int64 {
	return r.AllReduceInt64(int64(t.LocalLen(r)), func(a, b int64) int64 { return a + b })
}

// Lookup reads a key from outside any SPMD phase (validation, output,
// serial pipeline steps); no communication is charged.
func (t *Table[K, V]) Lookup(k K) (V, bool) {
	sh := &t.shards[t.Owner(k)]
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

// RangeAll iterates every shard from a single goroutine. For use outside
// Run phases (validation, output); no communication is charged.
func (t *Table[K, V]) RangeAll(fn func(k K, v V) bool) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			if !fn(k, v) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

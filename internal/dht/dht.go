// Package dht implements the distributed hash tables at the heart of
// HipMer (paper §7: "distributed hash tables lie in the heart of HipMer
// and the main operations on them are irregular lookups"). A Table is
// partitioned into one shard per rank; the owner of a key is determined by
// a placement function over the key's hash — the uniform h mod p layout by
// default, or an oracle layout (see Oracle) for the communication-avoiding
// traversal of §3.2.
//
// Two communication patterns from the paper are modelled faithfully:
//
//   - Irregular lookups (Get/Mutate): one message per operation, classified
//     local / on-node / off-node by the xrt layer. These are the events
//     whose locality Table 2 of the paper reports.
//   - Aggregating stores (Put): updates are buffered per destination rank
//     and flushed as one message per full buffer, the optimization HipMer
//     uses for hash-table construction (§4.1, §4.6). Stores whose owner is
//     the calling rank skip the buffer entirely and apply in place — the
//     local-vs-remote store distinction of the paper.
//
// Concurrency is phase-aware. During construction each shard is split into
// power-of-two lock stripes so ranks flushing into one owner do not
// funnel through a single mutex. The pipeline's lookup-heavy stages
// (contig traversal terminations, merAligner seeding, splint/span
// assessment, gap-closing verification) run against tables that are no
// longer mutated; Freeze publishes every stripe map as immutable and Get
// is then served lock-free, optionally through a per-rank direct-mapped
// software cache in front of remote lookups (the merAligner single-node
// optimization of the companion paper). Writes to a frozen table panic;
// Thaw restores writability and discards the caches, whose coherence is
// only guaranteed while the table is frozen.
//
// Physically everything is an in-process sharded map; the xrt cost layer
// supplies the distributed-memory semantics of interest.
package dht

import (
	"sync"
	"sync/atomic"

	"hipmer/internal/xrt"
)

// PlaceFunc maps a key hash to an owning rank.
type PlaceFunc func(hash uint64) int

// Options configures a Table.
type Options[K comparable] struct {
	// Hash maps a key to a 64-bit hash. Required.
	Hash func(K) uint64
	// Place overrides the owner computation; nil means hash % ranks.
	Place PlaceFunc
	// OwnerHash, when non-nil, supplies the hash fed to placement instead
	// of Hash: the owner of a key is Place(OwnerHash(k)) (or OwnerHash(k)
	// mod ranks). Hash keeps driving stripe selection and the read cache,
	// so co-locating related keys — all k-mers sharing a minimizer, say —
	// does not collapse them onto one stripe or cache slot. Every access
	// path (Put, Get, Mutate, Delete, Lookup, Owner, and blob decode)
	// places through it, so senders that route payloads by the same hash
	// stay consistent with point lookups.
	OwnerHash func(K) uint64
	// ItemBytes approximates the wire size of one key+value, used for
	// bandwidth charging. Defaults to 24.
	ItemBytes int
	// AggBufSize is the aggregating-stores buffer length per destination
	// rank. 1 disables aggregation (one message per store, the behaviour
	// the baselines use). Defaults to 512.
	AggBufSize int
	// Stripes is the number of lock stripes per shard (rounded up to a
	// power of two). Construction-time flushes and traversal claims from
	// different ranks contend only when they land on the same stripe of
	// the same owner. Defaults to 8.
	Stripes int
	// ExpectedItems pre-sizes the stripe maps from a global expected entry
	// count (e.g. the HyperLogLog cardinality estimate of k-mer analysis),
	// eliminating incremental rehashing during construction. 0 means no
	// pre-sizing.
	ExpectedItems int64
	// CacheSlots enables a per-rank direct-mapped software cache (rounded
	// up to a power of two slots) consulted by Get for remote keys while
	// the table is frozen. Hits cost local time and are counted in the
	// xrt cache statistics; misses fill the slot (including negative
	// entries for absent keys). 0 disables caching.
	CacheSlots int
	// BlobBytes is the flush threshold of the byte-payload store path
	// (PutBlob): encoded records are buffered per destination rank and
	// shipped as one message once the buffer reaches this many bytes.
	// Defaults to 16384.
	BlobBytes int
}

// ApplyFunc is an owner-side store handler: it runs under the owning
// stripe's lock with direct access to the stripe map holding (or due to
// hold) the key, letting callers attach owner-side state to the
// application of aggregated stores. Handlers must only touch the passed
// key's entry: other keys of the shard may live in other stripe maps.
// Only the (owner, stripe) lock is held, so handler state shared across
// a whole owner would race under concurrent flushes from different
// ranks; key any auxiliary state by owner*Stripes()+stripe instead (a
// key always maps to the same stripe, so per-stripe state partitions the
// keys exactly — e.g. the Bloom filters of k-mer analysis). h is the
// key's Options.Hash value, computed once on the store path and handed
// through so handlers needing hash bits (Bloom probes, sketches) never
// rehash the key.
type ApplyFunc[K comparable, V any] func(owner, stripe int, h uint64, k K, incoming V, shard map[K]V)

// BlobApplyFunc decodes one delivered byte payload at its owner: src and
// owner identify the sending and owning ranks, payload is the
// concatenation of records the sender framed with PutBlob, and put
// applies one decoded item through the table's regular owner-side path
// (stripe lock + apply hook / merge). The function runs on the sender's
// goroutine against the owner's shard, exactly like an aggregated-store
// flush, so it must not touch state outside the put callback unless that
// state is safe under concurrent flushes.
type BlobApplyFunc[K comparable, V any] func(src, owner int, payload []byte, put func(k K, v V))

// Table is a distributed hash table of K→V with a user-supplied merge
// function applied when a Put lands on an existing key.
type Table[K comparable, V any] struct {
	team      *xrt.Team
	opt       Options[K]
	merge     func(old V, incoming V, exists bool) V
	apply     ApplyFunc[K, V]     // overrides merge when non-nil
	blobApply BlobApplyFunc[K, V] // owner-side decoder for PutBlob payloads

	stripeMask uint64
	frozen     atomic.Bool
	shards     []shard[K, V]
	locals     []localState[K, V]
	caches     []*readCache[K, V] // per rank; non-nil only while frozen
}

// SetApply installs an owner-side apply hook that replaces the merge
// function for subsequent Put flushes. Must not be called while an SPMD
// phase is mutating the table.
func (t *Table[K, V]) SetApply(fn ApplyFunc[K, V]) { t.apply = fn }

// SetBlobApply installs the owner-side decoder for PutBlob payloads. Must
// not be called while an SPMD phase is mutating the table.
func (t *Table[K, V]) SetBlobApply(fn BlobApplyFunc[K, V]) { t.blobApply = fn }

// stripe is one lock-striped fragment of a shard. The padding keeps
// neighbouring stripe locks off one cache line.
type stripe[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
	_  [40]byte
}

type shard[K comparable, V any] struct {
	stripes []stripe[K, V]
}

type kv[K comparable, V any] struct {
	k K
	v V
	h uint64 // key hash, computed once at Put time
}

type localState[K comparable, V any] struct {
	bufs      [][]kv[K, V] // per destination rank
	blobBufs  [][]byte     // per destination rank: concatenated PutBlob records
	blobItems []int        // logical item count buffered per destination
}

// remix decorrelates the stripe/cache index from the placement function:
// placement consumes h (mod p or the oracle vector), so stripe selection
// must not reuse the same bits or every key of a shard would collapse
// onto one stripe.
func remix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a table across the team. merge resolves Put collisions:
// it receives the existing value (zero if !exists) and the incoming one
// and returns the value to store. A nil merge means "last write wins".
func New[K comparable, V any](team *xrt.Team, opt Options[K],
	merge func(old V, incoming V, exists bool) V) *Table[K, V] {
	if opt.Hash == nil {
		panic("dht: Options.Hash is required")
	}
	if opt.ItemBytes <= 0 {
		opt.ItemBytes = 24
	}
	if opt.AggBufSize <= 0 {
		opt.AggBufSize = 512
	}
	if opt.BlobBytes <= 0 {
		opt.BlobBytes = 16384
	}
	if opt.Stripes <= 0 {
		opt.Stripes = 8
	}
	opt.Stripes = ceilPow2(opt.Stripes)
	if opt.CacheSlots > 0 {
		opt.CacheSlots = ceilPow2(opt.CacheSlots)
	} else {
		opt.CacheSlots = 0
	}
	if merge == nil {
		merge = func(_ V, in V, _ bool) V { return in }
	}
	p := team.Config().Ranks
	t := &Table[K, V]{team: team, opt: opt, merge: merge,
		stripeMask: uint64(opt.Stripes - 1)}
	perStripe := 0
	if opt.ExpectedItems > 0 {
		perStripe = int(opt.ExpectedItems/int64(p*opt.Stripes)) + 1
	}
	t.shards = make([]shard[K, V], p)
	for i := range t.shards {
		t.shards[i].stripes = make([]stripe[K, V], opt.Stripes)
		for s := range t.shards[i].stripes {
			t.shards[i].stripes[s].m = make(map[K]V, perStripe)
		}
	}
	t.locals = make([]localState[K, V], p)
	for i := range t.locals {
		t.locals[i].bufs = make([][]kv[K, V], p)
		t.locals[i].blobBufs = make([][]byte, p)
		t.locals[i].blobItems = make([]int, p)
	}
	t.caches = make([]*readCache[K, V], p)
	return t
}

// ownerOf places a key hash under the current placement. A placement
// function built for a different rank geometry (an oracle vector from
// another grid reaching a rescaled team) must never index outside this
// team's shards, so out-of-range answers fall back to the uniform
// layout instead of corrupting memory.
func (t *Table[K, V]) ownerOf(h uint64) int {
	p := t.team.Config().Ranks
	if t.opt.Place != nil {
		if o := t.opt.Place(h); 0 <= o && o < p {
			return o
		}
	}
	return int(h % uint64(p))
}

// placeKey resolves the owner of key k whose Options.Hash value is h:
// through OwnerHash when configured, through h otherwise.
func (t *Table[K, V]) placeKey(k K, h uint64) int {
	if t.opt.OwnerHash != nil {
		return t.ownerOf(t.opt.OwnerHash(k))
	}
	return t.ownerOf(h)
}

// stripeIdx returns the stripe index of key hash h (identical for every
// shard: placement picks the shard, the remixed hash picks the stripe).
func (t *Table[K, V]) stripeIdx(h uint64) int {
	return int(remix(h) & t.stripeMask)
}

// stripeFor returns the owning stripe of (dst, h).
func (t *Table[K, V]) stripeFor(dst int, h uint64) *stripe[K, V] {
	return &t.shards[dst].stripes[t.stripeIdx(h)]
}

// Stripes returns the number of lock stripes per shard (after rounding),
// for sizing per-(owner, stripe) state used by an ApplyFunc.
func (t *Table[K, V]) Stripes() int { return int(t.stripeMask) + 1 }

// Owner returns the rank owning key k under the current placement.
func (t *Table[K, V]) Owner(k K) int {
	return t.placeKey(k, t.opt.Hash(k))
}

// assertMutable panics when a write lands on a frozen table — the
// phase-discipline assertion: mutation is only legal between Thaw and the
// next Freeze.
func (t *Table[K, V]) assertMutable(op string) {
	if t.frozen.Load() {
		panic("dht: " + op + " on frozen table (call Thaw before writing)")
	}
}

// Frozen reports whether the table is in the immutable read phase.
func (t *Table[K, V]) Frozen() bool { return t.frozen.Load() }

// Freeze is collective: every rank of a Run phase must call it. It drains
// the calling rank's store buffers, barriers, and publishes every stripe
// map as immutable; subsequent Gets are served lock-free and, when
// Options.CacheSlots is set, through a per-rank software cache for remote
// keys. Any Put/Mutate/Delete/local rewrite on the frozen table panics.
//
// Freeze is idempotent: freezing an already-frozen table is a documented
// no-op (one barrier, caches and contents untouched), so code handed a
// table of unknown phase — checkpoint rehydration in particular — can
// freeze unconditionally. The phase discipline (no concurrent
// Freeze/Thaw) means every rank branches the same way.
func (t *Table[K, V]) Freeze(r *xrt.Rank) {
	if t.frozen.Load() {
		r.Barrier()
		return
	}
	t.Flush(r)
	r.Barrier()
	if r.ID == 0 {
		t.frozen.Store(true)
	}
	r.Barrier()
	if t.opt.CacheSlots > 0 {
		t.caches[r.ID] = newReadCache[K, V](t.opt.CacheSlots)
	}
	r.Barrier()
}

// Thaw is collective: it invalidates every per-rank cache (their
// coherence is only guaranteed while frozen) and restores writability.
// Like Freeze it is idempotent: thawing a writable table is a no-op.
//
// The invalidation is total by construction: each rank drops its own
// goroutine-owned cache, and rank 0 sweeps all cache slots — while every
// other rank is parked between barriers — before clearing the frozen
// flag. No frozen-era entry, positive or negative, can survive into the
// write phase and mask a post-thaw Put/Mutate from a later reader.
func (t *Table[K, V]) Thaw(r *xrt.Rank) {
	if !t.frozen.Load() {
		r.Barrier()
		return
	}
	r.Barrier()
	t.invalidateCache(r.ID)
	r.Barrier()
	if r.ID == 0 {
		t.invalidateAllCaches()
		t.frozen.Store(false)
	}
	r.Barrier()
}

// invalidateCache discards rank id's read cache. Frozen-era entries —
// including negative ones recording "key absent" — must never survive
// into a write phase: a reader consulting a stale slot would miss a
// post-thaw Put or Mutate entirely.
func (t *Table[K, V]) invalidateCache(id int) { t.caches[id] = nil }

// invalidateAllCaches discards every rank's cache. Only safe where no
// rank goroutine can be reading its slot: between Thaw's barriers, or
// from orchestration code between Run phases (ThawSerial).
func (t *Table[K, V]) invalidateAllCaches() {
	for i := range t.caches {
		t.caches[i] = nil
	}
}

// FreezeSerial freezes the table from orchestration code between Run
// phases (a single goroutine): buffers of all ranks must already be
// drained (it panics otherwise, since flushing would need rank handles).
func (t *Table[K, V]) FreezeSerial() {
	if t.frozen.Load() {
		return // idempotent, like Freeze
	}
	for i := range t.locals {
		for _, buf := range t.locals[i].bufs {
			if len(buf) > 0 {
				panic("dht: FreezeSerial with undrained store buffers")
			}
		}
		for _, buf := range t.locals[i].blobBufs {
			if len(buf) > 0 {
				panic("dht: FreezeSerial with undrained blob buffers")
			}
		}
	}
	if t.opt.CacheSlots > 0 {
		for i := range t.caches {
			t.caches[i] = newReadCache[K, V](t.opt.CacheSlots)
		}
	}
	t.frozen.Store(true)
}

// ThawSerial restores writability from orchestration code between phases.
// Idempotent, like Thaw.
func (t *Table[K, V]) ThawSerial() {
	if !t.frozen.Load() {
		return
	}
	t.invalidateAllCaches()
	t.frozen.Store(false)
}

// Put enqueues a store of (k, v); it is applied at the owner when the
// destination buffer fills or Flush is called. Stores owned by the
// calling rank bypass the buffer and apply immediately under the stripe
// lock (visibility of local stores is therefore immediate; remote stores
// are guaranteed visible only after Flush + barrier, matching the
// one-sided aggregating-stores semantics of the paper).
func (t *Table[K, V]) Put(r *xrt.Rank, k K, v V) {
	t.PutHashed(r, t.opt.Hash(k), k, v)
}

// PutHashed is Put with the key's Options.Hash value precomputed by the
// caller (the hash-once path of scanning loops that already derived h for
// sketching or screening). h must equal Options.Hash(k).
func (t *Table[K, V]) PutHashed(r *xrt.Rank, h uint64, k K, v V) {
	t.assertMutable("Put")
	dst := t.placeKey(k, h)
	if dst == r.ID {
		// rank-local fast path: no buffering, no message — the paper's
		// local store, charged as such
		r.ChargeStoreBatch(dst, 1, t.opt.ItemBytes)
		si := t.stripeIdx(h)
		st := &t.shards[dst].stripes[si]
		st.mu.Lock()
		t.applyOne(dst, si, h, k, v, st.m)
		st.mu.Unlock()
		return
	}
	ls := &t.locals[r.ID]
	ls.bufs[dst] = append(ls.bufs[dst], kv[K, V]{k, v, h})
	if len(ls.bufs[dst]) >= t.opt.AggBufSize {
		t.flushTo(r, dst)
	}
}

// PutBlob enqueues one pre-framed record — decodable by the table's
// SetBlobApply hook — destined for rank dst, carrying items logical
// items. Records accumulate per destination and ship as ONE message of
// the buffered byte length once it reaches Options.BlobBytes (or at
// Flush/Freeze): the super-k-mer transport, where an L-base record
// carries L−k+1 k-mers for ~L/4 wire bytes instead of L−k+1 item
// records. The charge goes through the same ChargeStoreBatch as
// aggregated stores, so chaos/fault injection treats a dropped blob as
// one retried unit and the receiver is charged per decoded item.
//
// The destination must be consistent with the table's placement (for a
// minimizer-binned table, dst = the owner every record key places to via
// OwnerHash); PutBlob cannot check this — the table only sees bytes —
// and a mismatch would strand decoded items on a shard lookups never
// search.
func (t *Table[K, V]) PutBlob(r *xrt.Rank, dst int, record []byte, items int) {
	t.assertMutable("PutBlob")
	if t.blobApply == nil {
		panic("dht: PutBlob without SetBlobApply")
	}
	ls := &t.locals[r.ID]
	ls.blobBufs[dst] = append(ls.blobBufs[dst], record...)
	ls.blobItems[dst] += items
	if len(ls.blobBufs[dst]) >= t.opt.BlobBytes {
		t.flushBlobTo(r, dst)
	}
}

func (t *Table[K, V]) applyOne(dst, stripe int, h uint64, k K, v V, m map[K]V) {
	if t.apply != nil {
		t.apply(dst, stripe, h, k, v, m)
		return
	}
	old, exists := m[k]
	m[k] = t.merge(old, v, exists)
}

func (t *Table[K, V]) flushTo(r *xrt.Rank, dst int) {
	ls := &t.locals[r.ID]
	buf := ls.bufs[dst]
	if len(buf) == 0 {
		return
	}
	t.assertMutable("Flush")
	// schedule-perturbation point: delaying a flush widens the window in
	// which other ranks' lookups race the buffered stores
	r.PerturbPoint(xrt.PerturbFlush)
	r.ChargeStoreBatch(dst, len(buf), len(buf)*t.opt.ItemBytes)
	for _, e := range buf {
		si := t.stripeIdx(e.h)
		st := &t.shards[dst].stripes[si]
		st.mu.Lock()
		t.applyOne(dst, si, e.h, e.k, e.v, st.m)
		st.mu.Unlock()
	}
	ls.bufs[dst] = buf[:0]
}

// flushBlobTo ships one destination's buffered blob payload as a single
// message and decodes it into the owner's shard through the blob apply
// hook. The payload buffer is reused after the call: a hook that retains
// bytes past its return must copy them.
func (t *Table[K, V]) flushBlobTo(r *xrt.Rank, dst int) {
	ls := &t.locals[r.ID]
	buf := ls.blobBufs[dst]
	if len(buf) == 0 {
		return
	}
	t.assertMutable("Flush")
	items := ls.blobItems[dst]
	r.PerturbPoint(xrt.PerturbFlush)
	r.ChargeStoreBatch(dst, items, len(buf))
	t.blobApply(r.ID, dst, buf, func(k K, v V) {
		h := t.opt.Hash(k)
		si := t.stripeIdx(h)
		st := &t.shards[dst].stripes[si]
		st.mu.Lock()
		t.applyOne(dst, si, h, k, v, st.m)
		st.mu.Unlock()
	})
	ls.blobBufs[dst] = buf[:0]
	ls.blobItems[dst] = 0
}

// Flush drains all of the calling rank's store buffers — item and blob
// alike. Callers normally follow a collective Flush with a barrier before
// reading.
func (t *Table[K, V]) Flush(r *xrt.Rank) {
	for dst := range t.locals[r.ID].bufs {
		t.flushTo(r, dst)
	}
	for dst := range t.locals[r.ID].blobBufs {
		t.flushBlobTo(r, dst)
	}
}

// Get performs an irregular lookup: one message to the owner (unless
// local), classified and charged by the xrt layer. On a frozen table the
// read is lock-free; remote reads additionally consult the rank's
// software cache, whose hits cost local time only and are counted in the
// cache statistics instead of the lookup statistics (a hit never leaves
// the rank).
func (t *Table[K, V]) Get(r *xrt.Rank, k K) (V, bool) {
	h := t.opt.Hash(k)
	dst := t.placeKey(k, h)
	if t.frozen.Load() {
		c := t.caches[r.ID]
		if c != nil && dst != r.ID {
			if v, ok, hit := c.get(h, k); hit {
				r.ChargeCacheHit()
				return v, ok
			}
			r.ChargeLookup(dst, t.opt.ItemBytes)
			v, ok := t.stripeFor(dst, h).m[k]
			r.CountCacheMiss()
			c.put(h, k, v, ok)
			return v, ok
		}
		r.ChargeLookup(dst, t.opt.ItemBytes)
		v, ok := t.stripeFor(dst, h).m[k]
		return v, ok
	}
	r.ChargeLookup(dst, t.opt.ItemBytes)
	st := t.stripeFor(dst, h)
	st.mu.Lock()
	v, ok := st.m[k]
	st.mu.Unlock()
	return v, ok
}

// Mutate runs fn atomically on the value stored under k at its owner,
// modelling a remote atomic (the lightweight synchronization primitive the
// traversal uses). fn receives the current value and whether it exists and
// returns the new value and whether to store it. Results can be captured
// through the closure.
func (t *Table[K, V]) Mutate(r *xrt.Rank, k K, fn func(v V, exists bool) (V, bool)) {
	t.assertMutable("Mutate")
	h := t.opt.Hash(k)
	dst := t.placeKey(k, h)
	r.ChargeLookup(dst, t.opt.ItemBytes)
	st := t.stripeFor(dst, h)
	st.mu.Lock()
	defer st.mu.Unlock() // fn may panic (injected crash); never strand the stripe
	old, exists := st.m[k]
	if nv, store := fn(old, exists); store {
		st.m[k] = nv
	}
}

// MutateRetry is Mutate without the communication charge. It exists for
// bounded-spin retry loops on remote atomics (the traversal's wait-or-
// abort scheme): the first attempt goes through Mutate and is charged
// once; physical retries while waiting for another rank to release its
// claim must not charge again, or the virtual clock and lookup counters
// would scale with host-scheduler interleaving — wall-clock contention
// laundered into deterministic fields. The wait itself advances no
// virtual time (the simulator cannot know the release time); contention
// is observable in the traversal's abort/retry counters instead.
func (t *Table[K, V]) MutateRetry(r *xrt.Rank, k K, fn func(v V, exists bool) (V, bool)) {
	t.assertMutable("MutateRetry")
	// The retry loop is the one place a rank can wait on another rank
	// without charging or barriering, so it must observe injected crashes
	// explicitly or it would spin forever on a dead victim's claim.
	r.CheckFault()
	h := t.opt.Hash(k)
	st := t.stripeFor(t.placeKey(k, h), h)
	st.mu.Lock()
	defer st.mu.Unlock()
	old, exists := st.m[k]
	if nv, store := fn(old, exists); store {
		st.m[k] = nv
	}
}

// Delete removes k at its owner (charged as a lookup-class operation).
func (t *Table[K, V]) Delete(r *xrt.Rank, k K) {
	t.assertMutable("Delete")
	h := t.opt.Hash(k)
	dst := t.placeKey(k, h)
	r.ChargeLookup(dst, t.opt.ItemBytes)
	st := t.stripeFor(dst, h)
	st.mu.Lock()
	delete(st.m, k)
	st.mu.Unlock()
}

// LocalRange iterates the calling rank's shard. fn returning false stops
// the iteration. Values seen are snapshots; mutating the table during
// iteration is not allowed. Iteration itself is free of communication
// (the paper's "each processor iterates over its local buckets").
func (t *Table[K, V]) LocalRange(r *xrt.Rank, fn func(k K, v V) bool) {
	frozen := t.frozen.Load()
	opNs := t.team.Cost().LocalOpNs
	for i := range t.shards[r.ID].stripes {
		st := &t.shards[r.ID].stripes[i]
		// The per-item charges land after each stripe's critical section:
		// a charge can panic (injected crash), and panicking while holding
		// a stripe lock would strand every surviving rank behind it.
		visited, stopped := 0, false
		func() {
			if !frozen {
				st.mu.Lock()
				defer st.mu.Unlock()
			}
			for k, v := range st.m {
				visited++
				if !fn(k, v) {
					stopped = true
					return
				}
			}
		}()
		r.Charge(float64(visited) * opNs)
		if stopped {
			return
		}
	}
}

// LocalUpdate rewrites every value of the calling rank's shard in place.
func (t *Table[K, V]) LocalUpdate(r *xrt.Rank, fn func(k K, v V) V) {
	t.assertMutable("LocalUpdate")
	opNs := t.team.Cost().LocalOpNs
	for i := range t.shards[r.ID].stripes {
		st := &t.shards[r.ID].stripes[i]
		visited := 0
		func() {
			st.mu.Lock()
			defer st.mu.Unlock() // see LocalRange: never charge under the lock
			for k, v := range st.m {
				visited++
				st.m[k] = fn(k, v)
			}
		}()
		r.Charge(float64(visited) * opNs)
	}
}

// LocalFilter rewrites or deletes every entry of the calling rank's shard:
// fn returns the new value and whether to keep the entry.
func (t *Table[K, V]) LocalFilter(r *xrt.Rank, fn func(k K, v V) (V, bool)) {
	t.assertMutable("LocalFilter")
	opNs := t.team.Cost().LocalOpNs
	for i := range t.shards[r.ID].stripes {
		st := &t.shards[r.ID].stripes[i]
		visited := 0
		func() {
			st.mu.Lock()
			defer st.mu.Unlock() // see LocalRange: never charge under the lock
			for k, v := range st.m {
				visited++
				if nv, keep := fn(k, v); keep {
					st.m[k] = nv
				} else {
					delete(st.m, k)
				}
			}
		}()
		r.Charge(float64(visited) * opNs)
	}
}

// LocalLen returns the number of entries owned by the calling rank.
func (t *Table[K, V]) LocalLen(r *xrt.Rank) int {
	return t.shardLen(r.ID)
}

func (t *Table[K, V]) shardLen(id int) int {
	frozen := t.frozen.Load()
	n := 0
	for i := range t.shards[id].stripes {
		st := &t.shards[id].stripes[i]
		if frozen {
			n += len(st.m)
			continue
		}
		st.mu.Lock()
		n += len(st.m)
		st.mu.Unlock()
	}
	return n
}

// GlobalLen returns the total entry count; collective (all ranks must call).
func (t *Table[K, V]) GlobalLen(r *xrt.Rank) int64 {
	return r.AllReduceInt64(int64(t.LocalLen(r)), func(a, b int64) int64 { return a + b })
}

// Len returns the total entry count from outside any SPMD phase (no
// communication charged); safe only between phases.
func (t *Table[K, V]) Len() int64 {
	var n int64
	for i := range t.shards {
		n += int64(t.shardLen(i))
	}
	return n
}

// Lookup reads a key from outside any SPMD phase (validation, output,
// serial pipeline steps); no communication is charged.
func (t *Table[K, V]) Lookup(k K) (V, bool) {
	h := t.opt.Hash(k)
	st := t.stripeFor(t.placeKey(k, h), h)
	if t.frozen.Load() {
		v, ok := st.m[k]
		return v, ok
	}
	st.mu.Lock()
	v, ok := st.m[k]
	st.mu.Unlock()
	return v, ok
}

// RangeAll iterates every shard from a single goroutine. For use outside
// Run phases (validation, output); no communication is charged.
func (t *Table[K, V]) RangeAll(fn func(k K, v V) bool) {
	frozen := t.frozen.Load()
	for i := range t.shards {
		for s := range t.shards[i].stripes {
			st := &t.shards[i].stripes[s]
			if !frozen {
				st.mu.Lock()
			}
			for k, v := range st.m {
				if !fn(k, v) {
					if !frozen {
						st.mu.Unlock()
					}
					return
				}
			}
			if !frozen {
				st.mu.Unlock()
			}
		}
	}
}

// ---------------------------------------------------------------------
// Per-rank software cache (frozen read phase only).

const (
	slotEmpty uint8 = iota
	slotPresent
	slotAbsent // negative entry: the key is known not to exist
)

type cacheSlot[K comparable, V any] struct {
	key   K
	val   V
	state uint8
}

// readCache is a direct-mapped, power-of-two-slot software cache owned by
// one rank's goroutine; no synchronization is needed.
type readCache[K comparable, V any] struct {
	mask  uint64
	slots []cacheSlot[K, V]
}

func newReadCache[K comparable, V any](slots int) *readCache[K, V] {
	return &readCache[K, V]{
		mask:  uint64(slots - 1),
		slots: make([]cacheSlot[K, V], slots),
	}
}

func (c *readCache[K, V]) get(h uint64, k K) (v V, ok bool, hit bool) {
	s := &c.slots[remix(h)&c.mask]
	if s.state != slotEmpty && s.key == k {
		return s.val, s.state == slotPresent, true
	}
	return v, false, false
}

func (c *readCache[K, V]) put(h uint64, k K, v V, ok bool) {
	s := &c.slots[remix(h)&c.mask]
	s.key, s.val = k, v
	if ok {
		s.state = slotPresent
	} else {
		s.state = slotAbsent
	}
}

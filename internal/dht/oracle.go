package dht

import "sync/atomic"

// Oracle is the communication-avoiding placement function of paper §3.2.
// It is built offline from the contigs of a previous assembly of the same
// species: all k-mers of one contig are assigned the same rank (contigs
// round-robined over ranks for load balance), recorded in a compact vector
// indexed by the k-mer's uniform hash. Hash-slot collisions leave the
// earlier assignment in place, so the colliding k-mer will live on a
// "wrong" (remote) rank — the number of collisions approximates the number
// of communication events the traversal will still incur. A larger vector
// trades memory for fewer collisions (the paper's oracle-1 vs oracle-4).
type Oracle struct {
	slots      []int32
	ranks      int
	collisions atomic.Int64
	assigned   atomic.Int64
}

// NewOracle creates an oracle vector with the given number of slots for a
// team of the given rank count. Slots should be a small multiple of the
// expected k-mer cardinality.
func NewOracle(slots int, ranks int) *Oracle {
	o := &Oracle{slots: make([]int32, slots), ranks: ranks}
	for i := range o.slots {
		o.slots[i] = -1
	}
	return o
}

// Assign records that the key with uniform hash h should live on rank.
// The first assignment of a slot wins; a subsequent conflicting assignment
// is counted as a collision and ignored. Safe for concurrent use (the
// vector construction "can be trivially parallelized", §3.2).
func (o *Oracle) Assign(h uint64, rank int) (stored bool) {
	i := h % uint64(len(o.slots))
	if atomic.CompareAndSwapInt32(&o.slots[i], -1, int32(rank)) {
		o.assigned.Add(1)
		return true
	}
	if atomic.LoadInt32(&o.slots[i]) != int32(rank) {
		o.collisions.Add(1)
	}
	return false
}

// Place implements PlaceFunc: keys whose slot was assigned go to the
// recorded rank; unassigned keys fall back to the uniform layout.
func (o *Oracle) Place(h uint64) int {
	if v := atomic.LoadInt32(&o.slots[h%uint64(len(o.slots))]); v >= 0 {
		return int(v)
	}
	return int(h % uint64(o.ranks))
}

// Ranks returns the rank count the assignment vector was built for. A
// vector is only usable on a team of exactly this size — placement is
// rank-count-bound, which is why an oracle-placed run cannot resume a
// checkpoint on a different rank count (elastic rescale refuses it with
// a topology-mismatch error).
func (o *Oracle) Ranks() int { return o.ranks }

// Collisions returns the number of conflicting assignments observed while
// building the vector — an upper-bound estimate of residual communication.
func (o *Oracle) Collisions() int64 { return o.collisions.Load() }

// Assigned returns the number of slots that took an assignment.
func (o *Oracle) Assigned() int64 { return o.assigned.Load() }

// MemoryBytes returns the per-process memory footprint of the vector,
// the quantity the paper reports as 115 MB (oracle-1) vs 461 MB (oracle-4).
func (o *Oracle) MemoryBytes() int64 { return int64(len(o.slots)) * 4 }

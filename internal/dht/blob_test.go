package dht

import (
	"encoding/binary"
	"testing"

	"hipmer/internal/xrt"
)

// blobCodec is a trivial record format for the tests: 8-byte LE key +
// 8-byte LE value per item.
func blobAppend(dst []byte, k uint64, v int64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, k)
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func blobDecode(payload []byte, put func(k uint64, v int64)) {
	for len(payload) >= 16 {
		put(binary.LittleEndian.Uint64(payload), int64(binary.LittleEndian.Uint64(payload[8:])))
		payload = payload[16:]
	}
}

// TestPutBlobChargesOneMessageOfPayloadBytes: records buffered for one
// destination ship as a single message whose size is the byte payload,
// not one message (or item-record bytes) per item.
func TestPutBlobChargesOneMessageOfPayloadBytes(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2, RanksPerNode: 1})
	opt := intOpts()
	opt.ItemBytes = 64 // what the per-item path would have charged
	tab := New[uint64, int64](team, opt, sumMerge)
	tab.SetBlobApply(func(src, owner int, payload []byte, put func(k uint64, v int64)) {
		blobDecode(payload, put)
	})

	const items = 100
	team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			for i := 0; i < items; i++ {
				tab.PutBlob(r, 1, blobAppend(nil, uint64(i), 1), 1)
			}
			tab.Flush(r)
		}
		r.Barrier()
	})

	s := team.AggStats()
	if got := s.OffNodeMsgs + s.OnNodeMsgs; got != 1 {
		t.Fatalf("blob flush sent %d messages, want 1", got)
	}
	if got, want := s.OffNodeBytes+s.OnNodeBytes, int64(items*16); got != want {
		t.Fatalf("blob flush charged %d bytes, want payload size %d", got, want)
	}
	var n int
	tab.RangeAll(func(k uint64, v int64) bool {
		if v != 1 {
			t.Fatalf("key %d has count %d, want 1", k, v)
		}
		n++
		return true
	})
	if n != items {
		t.Fatalf("decoded %d items into the table, want %d", n, items)
	}
}

// TestPutBlobAutoFlushAtBlobBytes: the per-destination buffer ships as
// soon as it reaches Options.BlobBytes.
func TestPutBlobAutoFlushAtBlobBytes(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2, RanksPerNode: 1})
	opt := intOpts()
	opt.BlobBytes = 160 // 10 records
	tab := New[uint64, int64](team, opt, sumMerge)
	tab.SetBlobApply(func(src, owner int, payload []byte, put func(k uint64, v int64)) {
		blobDecode(payload, put)
	})
	team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			for i := 0; i < 100; i++ {
				tab.PutBlob(r, 1, blobAppend(nil, uint64(i), 1), 1)
			}
			tab.Flush(r)
		}
		r.Barrier()
	})
	if got := team.AggStats().Msgs(); got != 10 {
		t.Fatalf("sent %d messages, want 10 (100 records / 10 per buffer)", got)
	}
}

func TestPutBlobWithoutHookPanics(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	team.Run(func(r *xrt.Rank) {
		if r.ID != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("PutBlob without SetBlobApply did not panic")
			}
		}()
		tab.PutBlob(r, 1, blobAppend(nil, 1, 1), 1)
	})
}

func TestFreezeSerialPanicsOnUndrainedBlobBuffer(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	tab := New[uint64, int64](team, intOpts(), sumMerge)
	tab.SetBlobApply(func(src, owner int, payload []byte, put func(k uint64, v int64)) {
		blobDecode(payload, put)
	})
	team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			tab.PutBlob(r, 1, blobAppend(nil, 7, 1), 1) // never flushed
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("FreezeSerial with an undrained blob buffer did not panic")
		}
	}()
	tab.FreezeSerial()
}

// TestOwnerHashPlacement: an OwnerHash decouples placement from the
// stripe/cache hash — every operation must agree on the owner.
func TestOwnerHashPlacement(t *testing.T) {
	team := xrt.NewTeam(xrt.Config{Ranks: 6, RanksPerNode: 2})
	opt := intOpts()
	opt.OwnerHash = func(k uint64) uint64 { return k / 100 } // coarse bins
	tab := New[uint64, int64](team, opt, sumMerge)
	team.Run(func(r *xrt.Rank) {
		for i := 0; i < 300; i++ {
			tab.Put(r, uint64(i), 1)
		}
		tab.Flush(r)
		r.Barrier()
		for i := 0; i < 300; i++ {
			v, ok := tab.Get(r, uint64(i))
			if !ok || v != 6 {
				t.Errorf("rank %d: key %d = (%d, %v), want (6, true)", r.ID, i, v, ok)
			}
		}
		// keys in the same bin of 100 share an owner
		for i := 0; i < 300; i += 100 {
			base := tab.Owner(uint64(i))
			for j := 1; j < 100; j++ {
				if o := tab.Owner(uint64(i + j)); o != base {
					t.Errorf("key %d owned by %d, bin owner %d", i+j, o, base)
				}
			}
		}
	})
}

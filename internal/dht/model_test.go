package dht

import (
	"math/rand"
	"testing"

	"hipmer/internal/xrt"
)

// TestModelEquivalence drives the table with a random operation sequence
// and checks the final state against a plain map executed with the same
// merge semantics — a model-based property test of the DHT's visibility
// and merge behaviour across buffer sizes and placements.
func TestModelEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ranks := 1 + rng.Intn(8)
		bufSize := []int{1, 3, 64, 1024}[rng.Intn(4)]
		keyspace := 1 + rng.Intn(200)

		var oracle *Oracle
		opt := Options[uint64]{Hash: xrt.Splitmix64, AggBufSize: bufSize}
		if rng.Intn(2) == 0 {
			oracle = NewOracle(64+rng.Intn(512), ranks)
			for k := 0; k < keyspace; k++ {
				oracle.Assign(xrt.Splitmix64(uint64(k)), rng.Intn(ranks))
			}
			opt.Place = oracle.Place
		}

		team := xrt.NewTeam(xrt.Config{Ranks: ranks, RanksPerNode: 2})
		tab := New[uint64, int64](team, opt, func(old, in int64, _ bool) int64 {
			return old + in
		})

		// generate per-rank op scripts up front (the model is sequential)
		model := make(map[uint64]int64)
		scripts := make([][][2]uint64, ranks)
		for r := 0; r < ranks; r++ {
			n := rng.Intn(500)
			for i := 0; i < n; i++ {
				k := uint64(rng.Intn(keyspace))
				v := uint64(1 + rng.Intn(10))
				scripts[r] = append(scripts[r], [2]uint64{k, v})
				model[k] += int64(v)
			}
		}

		team.Run(func(r *xrt.Rank) {
			for _, op := range scripts[r.ID] {
				tab.Put(r, op[0], int64(op[1]))
			}
			tab.Flush(r)
			r.Barrier()
		})

		got := make(map[uint64]int64)
		tab.RangeAll(func(k uint64, v int64) bool {
			got[k] = v
			return true
		})
		if len(got) != len(model) {
			t.Fatalf("trial %d: %d keys, model has %d", trial, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("trial %d (ranks=%d buf=%d oracle=%v): key %d = %d, model %d",
					trial, ranks, bufSize, oracle != nil, k, got[k], v)
			}
		}
	}
}

// TestMutateModelEquivalence checks read-modify-write against the model
// under concurrency: per-key sums must match regardless of interleaving.
func TestMutateModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const ranks = 6
	const keyspace = 40
	team := xrt.NewTeam(xrt.Config{Ranks: ranks})
	tab := New[uint64, int64](team, Options[uint64]{Hash: xrt.Splitmix64}, nil)
	scripts := make([][][2]uint64, ranks)
	model := make(map[uint64]int64)
	for r := 0; r < ranks; r++ {
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(keyspace))
			v := uint64(1 + rng.Intn(5))
			scripts[r] = append(scripts[r], [2]uint64{k, v})
			model[k] += int64(v)
		}
	}
	team.Run(func(r *xrt.Rank) {
		for _, op := range scripts[r.ID] {
			tab.Mutate(r, op[0], func(v int64, _ bool) (int64, bool) {
				return v + int64(op[1]), true
			})
		}
	})
	for k, want := range model {
		if got, ok := tab.Lookup(k); !ok || got != want {
			t.Fatalf("key %d = %d, want %d", k, got, want)
		}
	}
}

package kanalysis

import (
	"bytes"
	"testing"

	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// tableCounts snapshots a result table's canonical k-mer counts.
func tableCounts(res *Result) map[kmer.Kmer]KmerData {
	got := make(map[kmer.Kmer]KmerData)
	res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool {
		got[km] = d
		return true
	})
	return got
}

// perfectReads wraps sequences as error-free, max-quality records.
func perfectReads(seqs [][]byte, copies int) []fastq.Record {
	var recs []fastq.Record
	for _, s := range seqs {
		q := bytes.Repeat([]byte{'I'}, len(s))
		for c := 0; c < copies; c++ {
			recs = append(recs, fastq.Record{ID: []byte("p"), Seq: s, Qual: q})
		}
	}
	return recs
}

// TestPseudoReadsMatchRepeatedPerfectReads: ingesting a sequence as a
// weight-w pseudo-read yields exactly the table that ingesting w
// perfect-quality copies of it as ordinary reads does — counts and
// extension tallies included. (This is the property the iterative-k
// loop leans on: a carried contig at weight w behaves like w ideal
// reads of itself.)
func TestPseudoReadsMatchRepeatedPerfectReads(t *testing.T) {
	const k, w = 21, 3
	rng := xrt.NewPrng(5)
	seqs := [][]byte{genome.Random(rng, 300), genome.Random(rng, 150)}
	const p = 4

	team := xrt.NewTeam(xrt.Config{Ranks: p})
	asReads := Run(team, splitReads(perfectReads(seqs, w*2), p), Options{K: k, MinCount: 2})

	pseudo := make([][]PseudoRead, p)
	for i, s := range seqs {
		pseudo[i%p] = append(pseudo[i%p], PseudoRead{Seq: s, Weight: w * 2})
	}
	team2 := xrt.NewTeam(xrt.Config{Ranks: p})
	asPseudo := Run(team2, make([][]fastq.Record, p), Options{
		K: k, MinCount: 2, PseudoByRank: pseudo,
	})

	want, got := tableCounts(asReads), tableCounts(asPseudo)
	if len(want) != len(got) {
		t.Fatalf("table sizes differ: reads %d, pseudo %d", len(want), len(got))
	}
	for km, wd := range want {
		gd, ok := got[km]
		if !ok {
			t.Fatalf("k-mer missing from pseudo table")
		}
		if gd.Count != wd.Count || gd.LeftCnt != wd.LeftCnt || gd.RightCnt != wd.RightCnt ||
			gd.ExtL != wd.ExtL || gd.ExtR != wd.ExtR {
			t.Fatalf("k-mer data differs: reads %+v, pseudo %+v", wd, gd)
		}
	}
	if asPseudo.PseudoReads != 2 || asPseudo.PseudoKmers <= 0 {
		t.Fatalf("pseudo accounting: %d reads / %d k-mers", asPseudo.PseudoReads, asPseudo.PseudoKmers)
	}
}

// TestPseudoReadsCombineWithReads: pseudo-read weight adds onto real
// read occurrences of the same k-mers (commutative sums), and a weight
// of 0 is treated as 1.
func TestPseudoReadsCombineWithReads(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(6)
	s := genome.Random(rng, 200)
	const p = 2

	run := func(pseudoWeight uint32, copies int) map[kmer.Kmer]KmerData {
		team := xrt.NewTeam(xrt.Config{Ranks: p})
		pseudo := make([][]PseudoRead, p)
		if pseudoWeight > 0 || copies == 0 {
			pseudo[0] = []PseudoRead{{Seq: s, Weight: pseudoWeight}}
		}
		var recs []fastq.Record
		if copies > 0 {
			recs = perfectReads([][]byte{s}, copies)
		}
		opt := Options{K: k, MinCount: 2}
		if pseudo[0] != nil {
			opt.PseudoByRank = pseudo
		}
		return tableCounts(Run(team, splitReads(recs, p), opt))
	}

	// 2 read copies + weight-4 pseudo == 6 read copies (even counts:
	// splitReads deals complete pairs only)
	withPseudo := run(4, 2)
	pure := run(0, 6)
	if len(withPseudo) != len(pure) {
		t.Fatalf("table sizes differ: %d vs %d", len(withPseudo), len(pure))
	}
	for km, wd := range pure {
		if withPseudo[km].Count != wd.Count {
			t.Fatalf("count %d != %d", withPseudo[km].Count, wd.Count)
		}
	}

	// weight 0 behaves as weight 1: alone it is below MinCount 2... so
	// compare against weight 1 directly on counts doubled by MinCount=1.
	team := xrt.NewTeam(xrt.Config{Ranks: p})
	w0 := tableCounts(Run(team, make([][]fastq.Record, p), Options{
		K: k, MinCount: 1,
		PseudoByRank: [][]PseudoRead{{{Seq: s, Weight: 0}}, nil},
	}))
	for _, d := range w0 {
		if d.Count != 1 {
			t.Fatalf("weight-0 pseudo counted %d, want 1", d.Count)
		}
	}
}

// TestPseudoByRankShapeEnforced: a PseudoByRank whose length disagrees
// with the team's rank count is a caller bug and must panic loudly.
func TestPseudoByRankShapeEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mis-shaped PseudoByRank accepted")
		}
	}()
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	Run(team, make([][]fastq.Record, 4), Options{
		K: 21, PseudoByRank: make([][]PseudoRead, 3),
	})
}

// TestPseudoDeterministicAcrossTransports: the final table with pseudo-
// reads is identical with and without the super-k-mer transport and
// heavy-hitter paths (pseudo occurrences bypass both by design).
func TestPseudoDeterministicAcrossTransports(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(8)
	_, recs := simReads(t, 9, 8000, 10, genome.DefaultErrorModel())
	pseudoSeqs := [][]byte{genome.Random(rng, 250), genome.Random(rng, 120)}
	const p = 4
	pseudo := make([][]PseudoRead, p)
	for i, s := range pseudoSeqs {
		pseudo[i%p] = append(pseudo[i%p], PseudoRead{Seq: s, Weight: 4})
	}

	var base map[kmer.Kmer]KmerData
	for _, variant := range []Options{
		{K: k, MinCount: 2, PseudoByRank: pseudo},
		{K: k, MinCount: 2, PseudoByRank: pseudo, DisableSuperKmers: true},
		{K: k, MinCount: 2, PseudoByRank: pseudo, HeavyHitters: true},
	} {
		team := xrt.NewTeam(xrt.Config{Ranks: p})
		got := tableCounts(Run(team, splitReads(recs, p), variant))
		if base == nil {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("table sizes differ across transports: %d vs %d", len(got), len(base))
		}
		for km, d := range base {
			if got[km] != d {
				t.Fatalf("k-mer data differs across transports: %+v vs %+v", got[km], d)
			}
		}
	}
}

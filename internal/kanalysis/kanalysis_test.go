package kanalysis

import (
	"testing"

	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// splitReads distributes records round-robin by pair, as the parallel
// FASTQ reader would.
func splitReads(recs []fastq.Record, p int) [][]fastq.Record {
	out := make([][]fastq.Record, p)
	for i := 0; i+1 < len(recs); i += 2 {
		r := (i / 2) % p
		out[r] = append(out[r], recs[i], recs[i+1])
	}
	return out
}

// naiveCounts is the ground truth: exact canonical k-mer occurrence counts
// over all reads.
func naiveCounts(recs []fastq.Record, k int) map[kmer.Kmer]uint32 {
	m := make(map[kmer.Kmer]uint32)
	for _, rec := range recs {
		kmer.ForEach(rec.Seq, k, func(pos int, km kmer.Kmer) {
			c, _ := km.Canonical(k)
			m[c]++
		})
	}
	return m
}

func simReads(t *testing.T, seed int64, gLen int, cov float64, em genome.ErrorModel) ([]byte, []fastq.Record) {
	t.Helper()
	rng := xrt.NewPrng(seed)
	g := genome.Random(rng, gLen)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: cov,
		Lib:      genome.Library{Name: "t", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      em,
	})
	return g, recs
}

func TestExactCountsErrorFree(t *testing.T) {
	const k = 21
	_, recs := simReads(t, 1, 20000, 15, genome.ErrorModel{})
	truth := naiveCounts(recs, k)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	res := Run(team, splitReads(recs, 4), Options{K: k, MinCount: 2})
	got := make(map[kmer.Kmer]uint32)
	res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool {
		got[km] = d.Count
		return true
	})
	// every truth k-mer with count >= 2 must be present with exact count
	for km, c := range truth {
		if c < 2 {
			if _, ok := got[km]; ok {
				t.Fatalf("count-1 k-mer leaked into table")
			}
			continue
		}
		if got[km] != c {
			t.Fatalf("k-mer count %d != truth %d", got[km], c)
		}
	}
	for km := range got {
		if truth[km] < 2 {
			t.Fatalf("spurious k-mer in table (truth count %d)", truth[km])
		}
	}
}

func TestErroneousKmersExcluded(t *testing.T) {
	const k = 21
	g, recs := simReads(t, 2, 20000, 30, genome.ErrorModel{StartRate: 0.005, EndRate: 0.02})
	genomic := make(map[kmer.Kmer]bool)
	kmer.ForEach(g, k, func(pos int, km kmer.Kmer) {
		c, _ := km.Canonical(k)
		genomic[c] = true
	})
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	res := Run(team, splitReads(recs, 4), Options{K: k, MinCount: 3})
	tableSize, nonGenomic := 0, 0
	res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool {
		tableSize++
		if !genomic[km] {
			nonGenomic++
		}
		return true
	})
	if tableSize == 0 {
		t.Fatal("empty table")
	}
	if frac := float64(nonGenomic) / float64(tableSize); frac > 0.02 {
		t.Fatalf("%.3f of table k-mers are erroneous", frac)
	}
	// coverage 30 should recover nearly all genomic k-mers
	recovered := 0
	for km := range genomic {
		if _, ok := res.Table.Lookup(km); ok {
			recovered++
		}
	}
	if frac := float64(recovered) / float64(len(genomic)); frac < 0.95 {
		t.Fatalf("only %.3f of genomic k-mers recovered", frac)
	}
}

func TestExtensionsMatchGenome(t *testing.T) {
	const k = 25
	g, recs := simReads(t, 3, 10000, 25, genome.ErrorModel{})
	team := xrt.NewTeam(xrt.Config{Ranks: 3})
	res := Run(team, splitReads(recs, 3), Options{K: k, MinCount: 2})
	// occurrence counts of canonical k-mers within the genome itself
	genomeCount := make(map[kmer.Kmer]int)
	kmer.ForEach(g, k, func(pos int, km kmer.Kmer) {
		c, _ := km.Canonical(k)
		genomeCount[c]++
	})
	checked := 0
	for pos := 1; pos+k < len(g)-1; pos++ {
		km, ok := kmer.Pack(g[pos:], k)
		if !ok {
			continue
		}
		canon, flipped := km.Canonical(k)
		if genomeCount[canon] != 1 {
			continue // repeats may legitimately fork
		}
		d, ok := res.Table.Lookup(canon)
		if !ok {
			continue // low-coverage tail
		}
		wantL, wantR := g[pos-1], g[pos+k]
		if flipped {
			wantL, wantR = kmer.Complement(wantR), kmer.Complement(wantL)
		}
		if kmer.IsBaseExt(d.ExtL) && d.ExtL != wantL {
			t.Fatalf("pos %d: ExtL %c, want %c", pos, d.ExtL, wantL)
		}
		if kmer.IsBaseExt(d.ExtR) && d.ExtR != wantR {
			t.Fatalf("pos %d: ExtR %c, want %c", pos, d.ExtR, wantR)
		}
		if d.IsUU() {
			checked++
		}
	}
	if checked < 5000 {
		t.Fatalf("only %d UU k-mers verified — suspicious", checked)
	}
}

func TestHeavyHitterEquivalence(t *testing.T) {
	// The optimization must not change results, only performance.
	const k = 21
	rng := xrt.NewPrng(4)
	g := genome.WheatLike(rng, 60000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 12,
		Lib:      genome.Library{Name: "w", ReadLen: 100, InsertMean: 280, InsertSD: 15},
	})
	collect := func(hh bool) (map[kmer.Kmer]KmerData, *Result) {
		team := xrt.NewTeam(xrt.Config{Ranks: 4})
		res := Run(team, splitReads(recs, 4), Options{
			K: k, MinCount: 2, HeavyHitters: hh, Theta: 2000, HHMinCount: 200,
		})
		m := make(map[kmer.Kmer]KmerData)
		res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool { m[km] = d; return true })
		return m, res
	}
	base, _ := collect(false)
	opt, optRes := collect(true)
	if optRes.HeavyHitters == 0 {
		t.Fatal("wheat-like data produced no heavy hitters")
	}
	if len(base) != len(opt) {
		t.Fatalf("table sizes differ: %d vs %d", len(base), len(opt))
	}
	for km, d := range base {
		if opt[km] != d {
			t.Fatalf("k-mer data differs with HH optimization: %+v vs %+v", d, opt[km])
		}
	}
}

func TestHeavyHittersImproveBalanceOnWheat(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(5)
	g := genome.WheatLike(rng, 80000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 10,
		Lib:      genome.Library{Name: "w", ReadLen: 100, InsertMean: 280, InsertSD: 15},
	})
	timeFor := func(hh bool) float64 {
		team := xrt.NewTeam(xrt.Config{Ranks: 16, RanksPerNode: 4})
		res := Run(team, splitReads(recs, 16), Options{
			K: k, MinCount: 2, HeavyHitters: hh, Theta: 2000, HHMinCount: 150,
		})
		return res.CountPhase.Virtual.Seconds() + res.BloomPhase.Virtual.Seconds()
	}
	def, hh := timeFor(false), timeFor(true)
	if hh >= def {
		t.Fatalf("heavy hitters did not help on wheat-like data: default %fs, hh %fs", def, hh)
	}
}

func TestDeterministicAcrossRankCounts(t *testing.T) {
	const k = 21
	_, recs := simReads(t, 6, 15000, 12, genome.DefaultErrorModel())
	collect := func(p int) map[kmer.Kmer]KmerData {
		team := xrt.NewTeam(xrt.Config{Ranks: p})
		res := Run(team, splitReads(recs, p), Options{K: k, MinCount: 2})
		m := make(map[kmer.Kmer]KmerData)
		res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool { m[km] = d; return true })
		return m
	}
	a, b := collect(2), collect(7)
	if len(a) != len(b) {
		t.Fatalf("rank count changed results: %d vs %d entries", len(a), len(b))
	}
	for km, d := range a {
		if b[km] != d {
			t.Fatal("rank count changed k-mer data")
		}
	}
}

func TestCardinalityEstimateReasonable(t *testing.T) {
	const k = 21
	_, recs := simReads(t, 7, 30000, 10, genome.ErrorModel{})
	truth := naiveCounts(recs, k)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	res := Run(team, splitReads(recs, 4), Options{K: k})
	est, want := float64(res.DistinctEstimate), float64(len(truth))
	if est < want*0.9 || est > want*1.1 {
		t.Fatalf("cardinality estimate %f vs truth %f", est, want)
	}
}

func TestLowQualityExtensionsIgnored(t *testing.T) {
	// A read whose neighbor bases are low-quality must contribute counts
	// but no extension evidence.
	const k = 5
	seq := []byte("AACGTACGGT")
	hiq := []byte("IIIIIIIIII") // phred 40
	loq := []byte("##########") // phred 2
	mk := func(q []byte) []fastq.Record {
		var recs []fastq.Record
		for i := 0; i < 4; i++ {
			recs = append(recs, fastq.Record{ID: []byte{'r', byte('0' + i)}, Seq: seq, Qual: q})
		}
		return recs
	}
	run := func(q []byte) *Result {
		team := xrt.NewTeam(xrt.Config{Ranks: 2})
		return Run(team, splitReads(mk(q), 2), Options{K: k, MinCount: 2, QualThreshold: 19})
	}
	hi := run(hiq)
	lo := run(loq)
	var hiExt, loExt int
	hi.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool {
		if kmer.IsBaseExt(d.ExtL) || kmer.IsBaseExt(d.ExtR) {
			hiExt++
		}
		return true
	})
	lo.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool {
		if kmer.IsBaseExt(d.ExtL) || kmer.IsBaseExt(d.ExtR) {
			loExt++
		}
		if d.Count == 0 {
			t.Fatal("zero count entry")
		}
		return true
	})
	if hiExt == 0 {
		t.Fatal("high-quality reads produced no extensions")
	}
	if loExt != 0 {
		t.Fatalf("low-quality reads produced %d extensions", loExt)
	}
}

func TestCallExt(t *testing.T) {
	cases := []struct {
		cnt  [4]uint32
		min  int
		want byte
	}{
		{[4]uint32{0, 0, 0, 0}, 2, kmer.ExtNone},
		{[4]uint32{5, 0, 0, 0}, 2, 'A'},
		{[4]uint32{0, 1, 0, 9}, 2, 'T'},
		{[4]uint32{3, 0, 4, 0}, 2, kmer.ExtFork},
		{[4]uint32{1, 1, 1, 1}, 2, kmer.ExtNone},
		{[4]uint32{0, 2, 2, 2}, 2, kmer.ExtFork},
	}
	for _, c := range cases {
		if got := callExt(c.cnt, c.min); got != c.want {
			t.Errorf("callExt(%v,%d) = %c, want %c", c.cnt, c.min, got, c.want)
		}
	}
}

func BenchmarkKmerAnalysisHuman(b *testing.B) {
	rng := xrt.NewPrng(8)
	g := genome.HumanLike(rng, 100000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 20,
		Lib:      genome.Library{Name: "b", ReadLen: 100, InsertMean: 350, InsertSD: 25},
		Err:      genome.DefaultErrorModel(),
	})
	parts := splitReads(recs, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team := xrt.NewTeam(xrt.Config{Ranks: 8})
		Run(team, parts, Options{K: 31, MinCount: 2, HeavyHitters: true})
	}
}

package kanalysis

import (
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// TestSuperKmerEquivalence: the minimizer super-k-mer transport is a
// communication optimization — the resulting k-mer table (counts and
// extension codes) must be identical to the per-k-mer path's, with and
// without heavy hitters in play.
func TestSuperKmerEquivalence(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(4)
	g := genome.WheatLike(rng, 60000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 12,
		Lib:      genome.Library{Name: "w", ReadLen: 100, InsertMean: 280, InsertSD: 15},
		Err:      genome.DefaultErrorModel(),
	})
	collect := func(disable, hh bool) (map[kmer.Kmer]KmerData, *Result) {
		team := xrt.NewTeam(xrt.Config{Ranks: 7, RanksPerNode: 3})
		res := Run(team, splitReads(recs, 7), Options{
			K: k, MinCount: 2, HeavyHitters: hh, Theta: 2000, HHMinCount: 200,
			DisableSuperKmers: disable,
		})
		m := make(map[kmer.Kmer]KmerData)
		res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool { m[km] = d; return true })
		return m, res
	}
	for _, hh := range []bool{false, true} {
		base, _ := collect(true, hh)
		sk, skRes := collect(false, hh)
		if skRes.SuperKmers == 0 {
			t.Fatal("super-k-mer path shipped no super-k-mers")
		}
		if hh && skRes.HeavyHitters == 0 {
			t.Fatal("wheat-like data produced no heavy hitters")
		}
		if len(base) != len(sk) {
			t.Fatalf("hh=%v: table sizes differ: %d (per-k-mer) vs %d (super-k-mer)",
				hh, len(base), len(sk))
		}
		for km, d := range base {
			if sk[km] != d {
				t.Fatalf("hh=%v: k-mer %s differs: %+v (per-k-mer) vs %+v (super-k-mer)",
					hh, km.String(k), d, sk[km])
			}
		}
	}
}

// TestSuperKmersReduceCommunication: on identical inputs the super-k-mer
// transport must ship both fewer stage-1 messages and fewer bytes than
// per-k-mer aggregated stores, and the saved-bytes counter must cover
// the measured gap.
func TestSuperKmersReduceCommunication(t *testing.T) {
	const k = 31
	rng := xrt.NewPrng(6)
	g := genome.HumanLike(rng, 120000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 12,
		Lib:      genome.Library{Name: "h", ReadLen: 101, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	const p = 8
	measure := func(disable bool) (xrt.CommStats, *Result) {
		team := xrt.NewTeam(xrt.Config{Ranks: p, RanksPerNode: 4})
		before := team.AggStats()
		res := Run(team, splitReads(recs, p), Options{
			K: k, MinCount: 2, HeavyHitters: true, DisableSuperKmers: disable,
		})
		return team.AggStats().Sub(before), res
	}
	base, _ := measure(true)
	sk, skRes := measure(false)
	if sk.Bytes() >= base.Bytes() {
		t.Fatalf("super-k-mers did not cut bytes: %d vs %d", sk.Bytes(), base.Bytes())
	}
	if sk.Msgs() >= base.Msgs() {
		t.Fatalf("super-k-mers did not cut messages: %d vs %d", sk.Msgs(), base.Msgs())
	}
	if skRes.CommBytesSaved <= 0 {
		t.Fatal("CommBytesSaved not accounted")
	}
	if skRes.SuperKmerBases <= skRes.SuperKmers {
		t.Fatalf("SuperKmerBases %d inconsistent with %d records",
			skRes.SuperKmerBases, skRes.SuperKmers)
	}
	avgRun := float64(skRes.SuperKmerBases) / float64(skRes.SuperKmers)
	if avgRun < float64(k)+1 {
		t.Errorf("average super-k-mer run %.1f bases barely exceeds k=%d — binning is not compressing", avgRun, k)
	}
}

// TestSuperKmerMinimizerLenOverride: a custom minimizer length flows
// through and still produces the same table.
func TestSuperKmerMinimizerLenOverride(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(7)
	g := genome.Random(rng, 20000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 8,
		Lib:      genome.Library{Name: "r", ReadLen: 80, InsertMean: 250, InsertSD: 15},
	})
	collect := func(mlen int) map[kmer.Kmer]KmerData {
		team := xrt.NewTeam(xrt.Config{Ranks: 5})
		res := Run(team, splitReads(recs, 5), Options{
			K: k, MinCount: 2, MinimizerLen: mlen,
		})
		m := make(map[kmer.Kmer]KmerData)
		res.Table.RangeAll(func(km kmer.Kmer, d KmerData) bool { m[km] = d; return true })
		return m
	}
	ref := collect(0)
	for _, mlen := range []int{5, 7, 11} {
		got := collect(mlen)
		if len(got) != len(ref) {
			t.Fatalf("m=%d: table size %d, want %d", mlen, len(got), len(ref))
		}
		for km, d := range ref {
			if got[km] != d {
				t.Fatalf("m=%d: k-mer data differs", mlen)
			}
		}
	}
}

func TestEffectiveMinimizerLen(t *testing.T) {
	cases := []struct {
		k, m    int
		disable bool
		want    int
	}{
		{31, 0, false, kmer.DefaultMinimizerLen},
		{31, 7, false, 7},
		{31, 0, true, 0},
		{31, 9, true, 0},
		{5, 0, false, 3},
	}
	for _, c := range cases {
		if got := EffectiveMinimizerLen(c.k, c.m, c.disable); got != c.want {
			t.Errorf("EffectiveMinimizerLen(%d, %d, %v) = %d, want %d",
				c.k, c.m, c.disable, got, c.want)
		}
	}
}

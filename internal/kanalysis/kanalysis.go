// Package kanalysis implements stage 1 of the Meraculous/HipMer pipeline:
// parallel k-mer analysis (paper §2.1, §3.1). Reads are chopped into
// canonical k-mers; a first pass estimates the distinct-k-mer cardinality
// (HyperLogLog) and identifies heavy hitters (Misra–Gries) — both sketches
// are mergeable, so the pass is embarrassingly parallel. A second pass
// inserts k-mers into owner-side Bloom filters (one per lock stripe of
// each owner's shard) so that only k-mers seen at least twice enter the
// distributed hash table (the 85% memory saving of the paper). A third
// pass counts every occurrence and accumulates quality-filtered extension
// evidence. Heavy hitters bypass the owner-computes path: they are
// accumulated locally and combined in a final global reduction,
// eliminating the receiver-side load imbalance repetitive genomes
// otherwise cause.
//
// By default the communication runs over minimizer-binned super-k-mers
// (minimum substring partitioning, after MSPKmerCounter): each read is
// segmented into maximal runs of k-mer windows sharing one canonical
// minimizer, each run travels to the minimizer's owner as one 2-bit
// packed record (~1.6 wire bytes per k-mer instead of a ~26-byte store
// item), and — because a k-mer's owner is a function of its minimizer —
// the Bloom pass's payload already contains every occurrence the owner
// will ever need, so the count pass replays the retained payloads locally
// instead of re-shipping the stream. Options.DisableSuperKmers restores
// the per-k-mer aggregated-store transport as an ablation baseline.
package kanalysis

import (
	"sync"

	"hipmer/internal/bloom"
	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/hll"
	"hipmer/internal/kmer"
	"hipmer/internal/mg"
	"hipmer/internal/xrt"
)

// kmerItemBytes is the wire size of one per-item store record (packed
// k-mer + count/extension payload), the unit the super-k-mer transport's
// savings are measured against.
const kmerItemBytes = 16 + 10

// Options configures k-mer analysis.
type Options struct {
	// K is the k-mer length (the paper uses 41–51 for human/wheat).
	K int
	// MinCount discards k-mers observed fewer times (default 2): those are
	// treated as erroneous, per Meraculous.
	MinCount int
	// QualThreshold is the minimum phred score for a base to contribute
	// extension evidence (Meraculous uses Q≥19). Phred, not ASCII.
	QualThreshold int
	// MinExtCount is the evidence needed to call an extension base
	// (default 2); two or more qualifying bases make a fork.
	MinExtCount int
	// Theta is the Misra–Gries counter budget (paper: 32,000).
	Theta int
	// HeavyHitters enables the §3.1 optimization. When false every k-mer
	// takes the owner-computes path (the "Default" series of Figure 6).
	HeavyHitters bool
	// HHMinCount is the estimated-count threshold above which a tracked
	// item is treated as a heavy hitter. Defaults to max(64, n/Theta).
	HHMinCount int64
	// BloomFP is the Bloom filter false-positive design point.
	BloomFP float64
	// DisableBloom admits every k-mer into the hash table on first
	// sighting, the behaviour the Bloom filters exist to avoid; used by
	// the memory ablation that reproduces the paper's "up to 85%" saving.
	DisableBloom bool
	// MinimizerLen is the canonical-minimizer length m of the super-k-mer
	// transport. 0 picks the default (kmer.DefaultMinimizerLen); any value
	// is clamped odd, below K, and to at most kmer.MaxMinimizerLen.
	// Ignored when DisableSuperKmers is set.
	MinimizerLen int
	// DisableSuperKmers reverts stage-1 communication to one aggregated
	// store item per k-mer occurrence with hash placement — the ablation
	// baseline the benchsuite reports as "SuperKmers off".
	DisableSuperKmers bool
	// AggBufSize overrides the aggregating-stores buffer size (0 = default).
	AggBufSize int
	// CacheSlots sizes the per-rank software cache in front of remote
	// k-mer lookups once the table is frozen after analysis (contig
	// traversal terminations, contig depths, gap-closing verification).
	// 0 uses the default of 4096 slots; negative disables caching.
	CacheSlots int
	// PseudoByRank, when non-nil, feeds the iterative-k outer loop's
	// carried contigs into the analysis as error-free pseudo-reads, one
	// list per rank (must match the team's rank count). Every k-mer
	// occurrence in a pseudo-read contributes its Weight to the count and
	// extension evidence, so a previous round's depth survives the
	// MinCount screen at the new k. Pseudo-reads always take the per-item
	// owner path (never super-k-mer blobs or the heavy-hitter bypass):
	// there are few of them, and the table total stays a plain sum —
	// partition- and schedule-invariant.
	PseudoByRank [][]PseudoRead
}

// PseudoRead is an error-free sequence fed back into k-mer analysis by
// the iterative-k outer loop: a contig surviving a previous round, with
// the depth-derived weight each of its k-mer occurrences counts for.
type PseudoRead struct {
	Seq    []byte
	Weight uint32 // 0 is treated as 1
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 31
	}
	if o.MinCount <= 0 {
		o.MinCount = 2
	}
	if o.QualThreshold <= 0 {
		o.QualThreshold = 19
	}
	if o.MinExtCount <= 0 {
		o.MinExtCount = 2
	}
	if o.Theta <= 0 {
		o.Theta = 32000
	}
	if o.BloomFP <= 0 {
		o.BloomFP = 0.05
	}
	if o.CacheSlots == 0 {
		o.CacheSlots = 4096
	} else if o.CacheSlots < 0 {
		o.CacheSlots = 0
	}
	return o
}

// EffectiveMinimizerLen resolves the minimizer length stage 1 uses for
// table placement: 0 when the super-k-mer transport is disabled (classic
// hash placement), the clamped scanner length otherwise. Exported so
// checkpoint codecs and the pipeline derive placement-identical tables.
func EffectiveMinimizerLen(k, minimizerLen int, disableSuperKmers bool) int {
	if disableSuperKmers {
		return 0
	}
	if k <= 0 {
		k = 31
	}
	return kmer.ClampMinimizerLen(k, minimizerLen)
}

// KmerData is the value stored per canonical k-mer: its exact count and
// the quality-filtered extension evidence for both directions, plus the
// finalized extension codes.
type KmerData struct {
	Count    uint32
	LeftCnt  [4]uint32
	RightCnt [4]uint32
	ExtL     byte
	ExtR     byte
}

func (d *KmerData) merge(o KmerData) {
	d.Count += o.Count
	for i := 0; i < 4; i++ {
		d.LeftCnt[i] += o.LeftCnt[i]
		d.RightCnt[i] += o.RightCnt[i]
	}
}

// IsUU reports whether both extensions are unique bases, making the k-mer
// eligible for the contig de Bruijn graph.
func (d KmerData) IsUU() bool {
	return kmer.IsBaseExt(d.ExtL) && kmer.IsBaseExt(d.ExtR)
}

// NewTable constructs the stage's k-mer count table: the canonical hash
// seed, wire size, and placement every consumer of the table assumes.
// Exported so checkpoint rehydration builds a table that places, charges,
// and caches identically to a freshly analyzed one. expectedItems
// pre-sizes the stripe maps (0 = no pre-sizing); cacheSlots follows
// Options.CacheSlots conventions (0 = default 4096, negative = off).
// minimizerLen > 0 selects minimizer placement — the owner of a k-mer is
// the owner of its length-minimizerLen canonical minimizer, so point
// lookups land on the shard the super-k-mer transport filled — and 0
// selects classic hash placement (the per-k-mer ablation and pre-existing
// checkpoints).
func NewTable(team *xrt.Team, expectedItems int64, aggBufSize, cacheSlots, k, minimizerLen int) *dht.Table[kmer.Kmer, KmerData] {
	if cacheSlots == 0 {
		cacheSlots = 4096
	} else if cacheSlots < 0 {
		cacheSlots = 0
	}
	opt := dht.Options[kmer.Kmer]{
		Hash:          func(km kmer.Kmer) uint64 { return km.Hash(0xc0ffee) },
		ItemBytes:     kmerItemBytes,
		AggBufSize:    aggBufSize,
		ExpectedItems: expectedItems,
		CacheSlots:    cacheSlots,
	}
	if minimizerLen > 0 {
		opt.OwnerHash = func(km kmer.Kmer) uint64 {
			return kmer.MinimizerHash(km.Minimizer(k, minimizerLen))
		}
	}
	return dht.New[kmer.Kmer, KmerData](team, opt, nil)
}

// Result carries the outputs of k-mer analysis.
type Result struct {
	// Table maps canonical k-mer → KmerData for every k-mer with
	// count ≥ MinCount, with finalized extension codes. It is returned
	// frozen (read-only, lock-free, software-cached); callers needing to
	// mutate it must Thaw first.
	Table *dht.Table[kmer.Kmer, KmerData]
	// DistinctEstimate is the HyperLogLog cardinality estimate.
	DistinctEstimate uint64
	// HeavyHitters is the number of k-mers special-cased by the §3.1 path.
	HeavyHitters int
	// Kept is the number of distinct k-mers surviving the count filter.
	Kept int64
	// PeakEntries is the hash-table size after the insertion pass and
	// before count filtering — the memory high-water mark the Bloom
	// screen reduces (§3.1: up to 85% on human and wheat).
	PeakEntries int64
	// TotalKmers is the number of k-mer occurrences processed.
	TotalKmers int64
	// SuperKmers is the number of super-k-mer records the minimizer
	// transport shipped (0 on the per-k-mer ablation path).
	SuperKmers int64
	// SuperKmerBases is the total run length in bases those records carry.
	SuperKmerBases int64
	// CommBytesSaved is the wire volume the super-k-mer transport avoided
	// versus shipping each of its windows as a per-item store record.
	CommBytesSaved int64
	// PseudoReads and PseudoKmers count the iterative-k pseudo-read input
	// (0 outside the multi-k outer loop).
	PseudoReads int64
	PseudoKmers int64
	// Phase virtual durations.
	SketchPhase, BloomPhase, CountPhase xrt.PhaseStats
}

// occurrence captures one sighting of a canonical k-mer with its oriented,
// quality-filtered extension evidence. ext codes 0..3 are bases; 4 = none.
type occurrence struct {
	km    kmer.Kmer
	left  uint8
	right uint8
}

const noExt = uint8(kmer.ExtAbsent)

// occurrenceAt builds the occurrence of the k-mer window at pos of seq,
// already canonicalized as (canon, flipped): flanking bases contribute
// extension evidence when present, ACGT, and above the quality threshold,
// and flipping swaps and complements the two ends.
func occurrenceAt(seq, qual []byte, pos, k, qualThresh int, canon kmer.Kmer, flipped bool) occurrence {
	left, right := noExt, noExt
	if pos > 0 && int(qual[pos-1])-33 >= qualThresh {
		if c, ok := kmer.BaseCode(seq[pos-1]); ok {
			left = uint8(c)
		}
	}
	if e := pos + k; e < len(seq) && int(qual[e])-33 >= qualThresh {
		if c, ok := kmer.BaseCode(seq[e]); ok {
			right = uint8(c)
		}
	}
	if flipped {
		// the canonical orientation sees complemented, swapped ends
		left, right = comp(right), comp(left)
	}
	return occurrence{km: canon, left: left, right: right}
}

// forEachOccurrence canonicalizes every k-mer of rec and reports oriented
// extensions plus the canonical table hash, computed once per window.
// Reads shorter than k or windows containing N are skipped.
func forEachOccurrence(rec fastq.Record, k, qualThresh int, fn func(o occurrence, h uint64)) {
	seq, qual := rec.Seq, rec.Qual
	kmer.ForEach(seq, k, func(pos int, km kmer.Kmer) {
		canon, flipped := km.Canonical(k)
		fn(occurrenceAt(seq, qual, pos, k, qualThresh, canon, flipped), canon.Hash(0xc0ffee))
	})
}

func comp(c uint8) uint8 {
	if c == noExt {
		return noExt
	}
	return 3 - c
}

func (o occurrence) delta() KmerData { return o.deltaWeighted(1) }

// deltaWeighted is the count/extension contribution of one occurrence
// observed w times (pseudo-read ingestion).
func (o occurrence) deltaWeighted(w uint32) KmerData {
	var d KmerData
	d.Count = w
	if o.left != noExt {
		d.LeftCnt[o.left] += w
	}
	if o.right != noExt {
		d.RightCnt[o.right] += w
	}
	return d
}

// pseudoOccurrenceAt builds the occurrence of a pseudo-read window:
// pseudo-reads carry no quality string — every flanking base qualifies
// as extension evidence.
func pseudoOccurrenceAt(seq []byte, pos, k int, canon kmer.Kmer, flipped bool) occurrence {
	left, right := noExt, noExt
	if pos > 0 {
		if c, ok := kmer.BaseCode(seq[pos-1]); ok {
			left = uint8(c)
		}
	}
	if e := pos + k; e < len(seq) {
		if c, ok := kmer.BaseCode(seq[e]); ok {
			right = uint8(c)
		}
	}
	if flipped {
		left, right = comp(right), comp(left)
	}
	return occurrence{km: canon, left: left, right: right}
}

// forEachPseudo canonicalizes every window of every pseudo-read and
// reports it with its weight; returns the window count.
func forEachPseudo(prs []PseudoRead, k int, fn func(o occurrence, w uint32)) int {
	n := 0
	for _, pr := range prs {
		w := pr.Weight
		if w == 0 {
			w = 1
		}
		seq := pr.Seq
		kmer.ForEach(seq, k, func(pos int, km kmer.Kmer) {
			canon, flipped := km.Canonical(k)
			fn(pseudoOccurrenceAt(seq, pos, k, canon, flipped), w)
			n++
		})
	}
	return n
}

// forEachSuperKmer segments one read into encoded super-k-mer records:
// every maximal minimizer run becomes one record (split around heavy-
// hitter windows, which are reported to onHH instead of shipped — their
// occurrences take the local-accumulation path, and splitting keeps them
// out of the retained payloads the count pass replays). emit receives the
// run's minimizer, its encoded record, and its window count; the record
// aliases *scratch and must be consumed (copied or buffered) before the
// next emission. Returns the total number of k-mer windows visited —
// identical to the forEachOccurrence count. When hh is empty the per-
// window canonicalization is skipped entirely and each run is encoded
// straight from the read.
func forEachSuperKmer(rec fastq.Record, k, m, qualThresh int, hh map[kmer.Kmer]bool,
	onHH func(o occurrence),
	emit func(minimizer uint64, record []byte, nwin int),
	scratch *[]byte) int {
	seq, qual := rec.Seq, rec.Qual
	windows := 0
	kmer.ScanSuperKmers(seq, k, m, func(start, nwin int, minv uint64) {
		windows += nwin
		emitSeg := func(ws, we int) {
			if we <= ws {
				return
			}
			if out, ok := kmer.AppendSuperKmer((*scratch)[:0], seq, qual, start+ws, (we-ws)+k-1, qualThresh); ok {
				*scratch = out
				emit(minv, out, we-ws)
			}
		}
		if len(hh) == 0 {
			emitSeg(0, nwin)
			return
		}
		fw, _ := kmer.Pack(seq[start:], k)
		seg := 0
		for i := 0; i < nwin; i++ {
			if i > 0 {
				c, _ := kmer.BaseCode(seq[start+i+k-1])
				fw = fw.NextRight(k, c)
			}
			canon, flipped := fw.Canonical(k)
			if hh[canon] {
				if onHH != nil {
					onHH(occurrenceAt(seq, qual, start+i, k, qualThresh, canon, flipped))
				}
				emitSeg(seg, i)
				seg = i + 1
			}
		}
		emitSeg(seg, nwin)
	})
	return windows
}

// putPseudoBloom drives every pseudo occurrence through the Bloom apply
// hook twice, guaranteeing promotion into the shard regardless of the
// order in which read sightings of the same k-mer arrive — shard
// membership, and therefore whether the count pass's merge applies, stays
// deterministic. Returns the window count.
func putPseudoBloom(table *dht.Table[kmer.Kmer, KmerData], r *xrt.Rank, prs []PseudoRead, k int) int {
	return forEachPseudo(prs, k, func(o occurrence, _ uint32) {
		table.Put(r, o.km, KmerData{})
		table.Put(r, o.km, KmerData{})
	})
}

// retainedBlob accumulates the super-k-mer payloads delivered to one
// owner during the Bloom pass, for local replay in the count pass.
// Senders append concurrently (a blob flush runs on the sender's
// goroutine), hence the mutex.
type retainedBlob struct {
	mu  sync.Mutex
	buf []byte
}

// mix64 derives the second Bloom probe from the canonical table hash, so
// screening costs zero extra key hashes (the double-hashing scheme only
// needs two decorrelated 64-bit values).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Run executes k-mer analysis. readsByRank[i] is the slice of reads rank i
// obtained from the parallel FASTQ reader. The returned table's entries
// are complete and extension-finalized after Run returns.
func Run(team *xrt.Team, readsByRank [][]fastq.Record, opt Options) *Result {
	opt = opt.withDefaults()
	p := team.Config().Ranks
	res := &Result{}
	superk := !opt.DisableSuperKmers
	minLen := EffectiveMinimizerLen(opt.K, opt.MinimizerLen, opt.DisableSuperKmers)
	if opt.PseudoByRank != nil && len(opt.PseudoByRank) != p {
		panic("kanalysis: PseudoByRank must have one list per rank")
	}
	pseudoOf := func(id int) []PseudoRead {
		if opt.PseudoByRank == nil {
			return nil
		}
		return opt.PseudoByRank[id]
	}
	for _, prs := range opt.PseudoByRank {
		res.PseudoReads += int64(len(prs))
		res.PseudoKmers += int64(forEachPseudo(prs, opt.K, func(occurrence, uint32) {}))
	}

	// --- pass 1: cardinality + heavy-hitter sketches (free I/O-wise) ----
	sketches := make([]*hll.Sketch, p)
	summaries := make([]*mg.Summary[kmer.Kmer], p)
	hhSets := make([]map[kmer.Kmer]*KmerData, p)
	var totalKmers int64
	team.BeginSpan("sketch")
	res.SketchPhase = team.Run(func(r *xrt.Rank) {
		sk := hll.New(14)
		sm := mg.New[kmer.Kmer](opt.Theta)
		n := 0
		for _, rec := range readsByRank[r.ID] {
			forEachOccurrence(rec, opt.K, opt.QualThreshold, func(o occurrence, h uint64) {
				sk.Add(h)
				if opt.HeavyHitters {
					sm.Offer(o.km)
				}
				n++
			})
		}
		// pseudo-reads feed the cardinality sketch but not Misra–Gries:
		// their weighted counts would distort the heavy-hitter estimate,
		// and they always bypass the heavy-hitter path anyway.
		n += forEachPseudo(pseudoOf(r.ID), opt.K, func(o occurrence, _ uint32) {
			sk.Add(o.km.Hash(0xc0ffee))
		})
		r.ChargeItems(n)
		sketches[r.ID] = sk
		summaries[r.ID] = sm
		total := r.AllReduceInt64(int64(n), func(a, b int64) int64 { return a + b })
		if r.ID == 0 {
			totalKmers = total
		}
	})
	team.EndSpan()
	res.TotalKmers = totalKmers

	// Merge sketches (deterministic rank order) — every rank derives the
	// same global cardinality and heavy-hitter set.
	global := hll.New(14)
	for _, sk := range sketches {
		global.Merge(sk)
	}
	res.DistinctEstimate = global.Estimate()

	hhSet := make(map[kmer.Kmer]bool)
	if opt.HeavyHitters {
		merged := mg.New[kmer.Kmer](opt.Theta)
		for _, sm := range summaries {
			merged.Merge(sm)
		}
		thresh := opt.HHMinCount
		if thresh <= 0 {
			thresh = totalKmers / int64(opt.Theta)
			if thresh < 64 {
				thresh = 64
			}
		}
		for _, hit := range merged.HeavyHitters(thresh) {
			hhSet[hit.Item] = true
		}
	}
	res.HeavyHitters = len(hhSet)
	// The hhSet probe costs a map lookup per occurrence; skip it wholesale
	// when heavy hitters are off or none were identified.
	probeHH := len(hhSet) > 0

	// The HyperLogLog estimate pre-sizes the stripe maps: construction
	// then never rehashes incrementally. The estimate counts every
	// distinct k-mer including single-occurrence errors the Bloom screen
	// rejects, so it is a safe upper bound on the final entry count.
	table := NewTable(team, int64(res.DistinctEstimate), opt.AggBufSize, opt.CacheSlots, opt.K, minLen)
	res.Table = table

	// --- per-(owner, stripe) Bloom filters -----------------------------
	// The apply hook runs under a stripe lock, not an owner-wide lock, so
	// the Bloom state must partition the same way the locks do: one filter
	// per stripe (a k-mer always maps to the same stripe of its owner).
	stripes := table.Stripes()
	perBloom := res.DistinctEstimate/uint64(p*stripes) + 64
	blooms := make([]*bloom.Filter, p*stripes)
	for i := range blooms {
		blooms[i] = bloom.New(perBloom*12/10, opt.BloomFP)
	}

	// pass 2: Bloom screening — the second sighting of a k-mer promotes it
	// into the table; single-occurrence (erroneous) k-mers never enter.
	// Both Bloom probes derive from the canonical table hash the store
	// path already computed (hash-once).
	table.SetApply(func(owner, stripe int, h uint64, k kmer.Kmer, _ KmerData, shard map[kmer.Kmer]KmerData) {
		if _, ok := shard[k]; ok {
			return
		}
		b := blooms[owner*stripes+stripe]
		if opt.DisableBloom || b.Add(h, mix64(h)) {
			shard[k] = KmerData{}
		}
	})

	// Per-rank super-k-mer transport statistics (summed deterministically
	// after the phase) and the payloads each owner retains for replay.
	skRecords := make([]int64, p)
	skBases := make([]int64, p)
	skSaved := make([]int64, p)
	retained := make([]retainedBlob, p)

	team.BeginSpan("bloom-screen")
	if superk {
		// Owner-side decode: canonicalize each window and drive it through
		// the stripe-locked apply hook; the raw payload is retained (copied
		// — the flush buffer is reused) for the count pass's local replay.
		table.SetBlobApply(func(src, owner int, payload []byte, put func(k kmer.Kmer, v KmerData)) {
			rb := &retained[owner]
			rb.mu.Lock()
			rb.buf = append(rb.buf, payload...)
			rb.mu.Unlock()
			if _, err := kmer.DecodeSuperKmers(payload, opt.K, func(km kmer.Kmer, _, _ uint8) {
				canon, _ := km.Canonical(opt.K)
				put(canon, KmerData{})
			}); err != nil {
				panic("kanalysis: corrupt super-k-mer payload: " + err.Error())
			}
		})
		res.BloomPhase = team.Run(func(r *xrt.Rank) {
			local := make(map[kmer.Kmer]*KmerData, len(hhSet))
			onHH := func(o occurrence) {
				d, ok := local[o.km]
				if !ok {
					d = &KmerData{}
					local[o.km] = d
				}
				delta := o.delta()
				d.merge(delta)
			}
			var scratch []byte
			n := 0
			for _, rec := range readsByRank[r.ID] {
				n += forEachSuperKmer(rec, opt.K, minLen, opt.QualThreshold, hhSet, onHH,
					func(minv uint64, record []byte, nwin int) {
						dst := int(kmer.MinimizerHash(minv) % uint64(p))
						skRecords[r.ID]++
						skBases[r.ID] += int64(nwin + opt.K - 1)
						skSaved[r.ID] += int64(nwin*kmerItemBytes - len(record))
						table.PutBlob(r, dst, record, nwin)
					}, &scratch)
			}
			n += putPseudoBloom(table, r, pseudoOf(r.ID), opt.K)
			r.ChargeItems(n)
			table.Flush(r)
			hhSets[r.ID] = local
			r.Barrier()
		})
	} else {
		res.BloomPhase = team.Run(func(r *xrt.Rank) {
			n := 0
			for _, rec := range readsByRank[r.ID] {
				forEachOccurrence(rec, opt.K, opt.QualThreshold, func(o occurrence, h uint64) {
					n++
					if probeHH && hhSet[o.km] {
						return
					}
					table.PutHashed(r, h, o.km, KmerData{})
				})
			}
			n += putPseudoBloom(table, r, pseudoOf(r.ID), opt.K)
			r.ChargeItems(n)
			table.Flush(r)
			r.Barrier()
		})
	}
	team.EndSpan()

	// pass 3: exact counting with extension evidence. Heavy hitters are
	// accumulated rank-locally; everything else goes to its owner — on the
	// super-k-mer path it already did, so the owner replays its retained
	// payloads without any further communication.
	table.SetApply(func(_, _ int, _ uint64, k kmer.Kmer, in KmerData, shard map[kmer.Kmer]KmerData) {
		if d, ok := shard[k]; ok {
			d.merge(in)
			shard[k] = d
		}
	})
	// The count pass, heavy-hitter reduction, and finalization share one
	// SPMD phase; the span covers them all, with the reduction exposed
	// through the hh_* counters below.
	team.BeginSpan("count")
	res.CountPhase = team.Run(func(r *xrt.Rank) {
		if superk {
			// Replay the payloads this rank received in the Bloom pass:
			// minimizer placement guarantees they are exactly the non-heavy
			// occurrences it owns, so counting is communication-free. Puts
			// take the rank-local fast path (charged as local stores); the
			// decode itself is charged per window like a scan.
			rb := &retained[r.ID]
			wins, err := kmer.DecodeSuperKmers(rb.buf, opt.K, func(km kmer.Kmer, left, right uint8) {
				canon, flipped := km.Canonical(opt.K)
				if flipped {
					left, right = comp(right), comp(left)
				}
				o := occurrence{km: canon, left: left, right: right}
				table.Put(r, canon, o.delta())
			})
			if err != nil {
				panic("kanalysis: corrupt retained super-k-mer payload: " + err.Error())
			}
			rb.buf = nil
			wins += forEachPseudo(pseudoOf(r.ID), opt.K, func(o occurrence, w uint32) {
				table.Put(r, o.km, o.deltaWeighted(w))
			})
			r.ChargeItems(wins)
		} else {
			local := make(map[kmer.Kmer]*KmerData, len(hhSet))
			n := 0
			for _, rec := range readsByRank[r.ID] {
				forEachOccurrence(rec, opt.K, opt.QualThreshold, func(o occurrence, h uint64) {
					n++
					if probeHH && hhSet[o.km] {
						d, ok := local[o.km]
						if !ok {
							d = &KmerData{}
							local[o.km] = d
						}
						delta := o.delta()
						d.merge(delta)
						return
					}
					table.PutHashed(r, h, o.km, o.delta())
				})
			}
			n += forEachPseudo(pseudoOf(r.ID), opt.K, func(o occurrence, w uint32) {
				table.Put(r, o.km, o.deltaWeighted(w))
			})
			r.ChargeItems(n)
			hhSets[r.ID] = local
		}
		table.Flush(r)
		r.Barrier()

		// global reduction of the heavy-hitter accumulators: every rank
		// folds the partial counts for the k-mers it owns. The data volume
		// is O(#HH × p) — tiny next to the stream — charged as a tree
		// reduction plus the per-item fold.
		if len(hhSet) > 0 {
			chargeHHReduction(r, len(hhSet))
			for km := range hhSet {
				if table.Owner(km) != r.ID {
					continue
				}
				var agg KmerData
				for _, part := range hhSets {
					if d, ok := part[km]; ok {
						agg.merge(*d)
					}
				}
				table.Mutate(r, km, func(v KmerData, _ bool) (KmerData, bool) {
					v.merge(agg)
					return v, true
				})
			}
		}
		r.Barrier()
		peak := table.GlobalLen(r)
		if r.ID == 0 {
			res.PeakEntries = peak
		}

		// finalize: drop low-count k-mers, call extension codes
		table.LocalFilter(r, func(k kmer.Kmer, v KmerData) (KmerData, bool) {
			if v.Count < uint32(opt.MinCount) {
				return v, false
			}
			v.ExtL = callExt(v.LeftCnt, opt.MinExtCount)
			v.ExtR = callExt(v.RightCnt, opt.MinExtCount)
			return v, true
		})
		kept := table.GlobalLen(r)
		if r.ID == 0 {
			res.Kept = kept
		}

		// analysis is complete: every downstream consumer (contig build
		// and traversal terminations, contig depths, gap-closing
		// verification) only reads, so publish the table frozen —
		// lock-free lookups behind the per-rank software cache.
		table.Freeze(r)
	})
	team.EndSpan()
	table.SetApply(nil)
	table.SetBlobApply(nil)

	for i := 0; i < p; i++ {
		res.SuperKmers += skRecords[i]
		res.SuperKmerBases += skBases[i]
		res.CommBytesSaved += skSaved[i]
	}

	// Stage counters land on the enclosing "kmer-analysis" span (no-ops
	// when the stage is driven directly without a span).
	team.AddCounter("total_kmers", res.TotalKmers)
	team.AddCounter("distinct_estimate", int64(res.DistinctEstimate))
	team.AddCounter("heavy_hitters", int64(res.HeavyHitters))
	team.AddCounter("peak_entries", res.PeakEntries)
	team.AddCounter("kept", res.Kept)
	team.AddCounter("superkmers", res.SuperKmers)
	team.AddCounter("superkmer_bases", res.SuperKmerBases)
	team.AddCounter("comm_bytes_saved", res.CommBytesSaved)
	if res.PseudoReads > 0 {
		team.AddCounter("pseudo_reads", res.PseudoReads)
		team.AddCounter("pseudo_kmers", res.PseudoKmers)
	}
	return res
}

// chargeHHReduction charges the cost of the heavy-hitter tree reduction:
// log2(p) exchange steps, each moving hh fixed-size records and folding
// them (a linear merge of flat arrays, much cheaper per item than a
// hash-table operation).
func chargeHHReduction(r *xrt.Rank, hh int) {
	cost := r.Team().Cost()
	p := r.N()
	steps := 0
	for n := 1; n < p; n *= 2 {
		steps++
	}
	per := cost.OffNodeMsgNs + float64(hh)*(cost.OffNodeByteNs*36+cost.ItemNs/4)
	r.Charge(float64(steps) * per)
}

// callExt decides the Meraculous extension code from evidence counts:
// exactly one base with enough support → that base; several → fork 'F';
// none → 'X'.
func callExt(cnt [4]uint32, minCount int) byte {
	qualified := -1
	nq := 0
	for b, c := range cnt {
		if int(c) >= minCount {
			nq++
			qualified = b
		}
	}
	switch nq {
	case 0:
		return kmer.ExtNone
	case 1:
		return kmer.CodeBase(uint64(qualified))
	default:
		return kmer.ExtFork
	}
}

package baseline

import (
	"testing"

	"hipmer/internal/pipeline"
	"hipmer/internal/stats"
	"hipmer/internal/xrt"
)

func smallDataset(t *testing.T) ([]byte, []pipeline.Library) {
	t.Helper()
	g, libs := pipeline.SimulatedHuman(1, 15000, 25)
	return g, libs
}

func TestHipMerBeatsSerial(t *testing.T) {
	g, libs := smallDataset(t)
	pcfg := pipeline.Config{K: 31, MinCount: 3}
	hip, err := RunHipMer(xrt.Config{Ranks: 16, RanksPerNode: 4}, libs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunSerial(xrt.DefaultCostModel(), libs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := ser.Virtual.Seconds() / hip.Virtual.Seconds()
	if speedup < 3 {
		t.Fatalf("HipMer speedup over serial only %.2fx at 16 ranks", speedup)
	}
	// both must assemble the genome
	for _, o := range []*Outcome{hip, ser} {
		v := stats.Validate(o.FinalSeqs, g)
		// Alu-like repeats collapse, so ~12% of the reference is covered
		// by a single repeat copy
		if v.CoveredFrac < 0.78 {
			t.Fatalf("%s covers only %.3f", o.Name, v.CoveredFrac)
		}
	}
}

func TestHipMerBeatsRayLike(t *testing.T) {
	g, libs := smallDataset(t)
	pcfg := pipeline.Config{K: 31, MinCount: 3}
	cfg := xrt.Config{Ranks: 16, RanksPerNode: 4}
	hip, err := RunHipMer(cfg, libs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ray, err := RunRayLike(cfg, libs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ray.Virtual <= hip.Virtual {
		t.Fatalf("Ray-like (%v) should be slower than HipMer (%v)", ray.Virtual, hip.Virtual)
	}
	v := stats.Validate(ray.FinalSeqs, g)
	if v.CoveredFrac < 0.78 {
		t.Fatalf("Ray-like produces a bad assembly: %.3f", v.CoveredFrac)
	}
}

func TestAbyssLikeScaffoldingDominates(t *testing.T) {
	_, libs := smallDataset(t)
	pcfg := pipeline.Config{K: 31, MinCount: 3}
	cfg := xrt.Config{Ranks: 16, RanksPerNode: 4}
	hip, err := RunHipMer(cfg, libs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := RunAbyssLike(cfg, libs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Virtual <= hip.Virtual {
		t.Fatalf("ABySS-like (%v) should be slower than HipMer (%v)", ab.Virtual, hip.Virtual)
	}
	// its single-node scaffolding must be much slower than HipMer's
	// distributed scaffolding
	if ab.Scaffolding.Seconds() < 2*hip.Scaffolding.Seconds() {
		t.Fatalf("serial scaffolding (%v) should be well behind HipMer's (%v)",
			ab.Scaffolding, hip.Scaffolding)
	}
}

// Package baseline implements the comparison systems of paper §5.6 and
// §6 as architectural analogues, so the "who wins and roughly why" shape
// of the paper's comparison can be regenerated:
//
//   - Serial — the original Meraculous: the identical pipeline confined to
//     a single rank (the paper's 23.8-hour reference point against
//     HipMer's 8.4 minutes).
//   - RayLike — an end-to-end distributed assembler without HipMer's
//     communication optimizations: fine-grained messages (no aggregating
//     stores; Ray exchanges individual k-mers/reads over MPI) and serial
//     file I/O ("one drawback of Ray is the lack of parallel I/O support").
//   - AbyssLike — distributed k-mer analysis and contig generation with
//     fine-grained messages, but scaffolding confined to a single shared-
//     memory node ("only the first assembly step of contig generation is
//     fully parallelized with MPI").
//
// These are not reimplementations of Ray or ABySS (their algorithms are
// different); they encode the architectural properties the paper's
// comparison attributes the performance gaps to.
package baseline

import (
	"time"

	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// Outcome reports a baseline run.
type Outcome struct {
	Name    string
	Virtual time.Duration
	// Stage virtual durations where meaningful.
	KmerAnalysis, ContigGen, Scaffolding time.Duration
	FinalSeqs                            [][]byte
}

// RunHipMer runs the full optimized pipeline, for side-by-side comparison.
func RunHipMer(cfg xrt.Config, libs []pipeline.Library, pcfg pipeline.Config) (*Outcome, error) {
	team := xrt.NewTeam(cfg)
	res, err := pipeline.Run(team, libs, pcfg)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name:         "HipMer",
		Virtual:      res.Timing("total").Virtual,
		KmerAnalysis: res.Timing("kmer-analysis").Virtual,
		ContigGen:    res.Timing("contig-generation").Virtual,
		Scaffolding:  res.Timing("scaffolding").Virtual + res.Timing("gap-closing").Virtual,
		FinalSeqs:    res.FinalSeqs,
	}, nil
}

// RunSerial runs the identical pipeline on one rank: the original
// Meraculous reference point.
func RunSerial(cost xrt.CostModel, libs []pipeline.Library, pcfg pipeline.Config) (*Outcome, error) {
	team := xrt.NewTeam(xrt.Config{Ranks: 1, Cost: cost})
	res, err := pipeline.Run(team, libs, pcfg)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name:         "Meraculous-serial",
		Virtual:      res.Timing("total").Virtual,
		KmerAnalysis: res.Timing("kmer-analysis").Virtual,
		ContigGen:    res.Timing("contig-generation").Virtual,
		Scaffolding:  res.Timing("scaffolding").Virtual + res.Timing("gap-closing").Virtual,
		FinalSeqs:    res.FinalSeqs,
	}, nil
}

// RunRayLike runs end-to-end distributed with fine-grained messages and
// serial I/O.
func RunRayLike(cfg xrt.Config, libs []pipeline.Library, pcfg pipeline.Config) (*Outcome, error) {
	team := xrt.NewTeam(cfg)
	// serial I/O: one rank pays for the whole input volume
	var bytes int64
	for _, lib := range libs {
		for _, rec := range lib.Records {
			bytes += int64(len(rec.ID) + len(rec.Seq) + len(rec.Qual) + 6)
		}
	}
	team.Run(func(r *xrt.Rank) {
		if r.ID == 0 {
			// a single reader is limited to single-stream bandwidth
			full := bytes
			c := team.Cost()
			r.Charge(c.IOLatencyNs + float64(full)/c.IORankBytesPerSec*1e9)
		}
		r.Barrier()
	})
	pcfg.AggBufSize = 1 // fine-grained communication throughout
	res, err := pipeline.Run(team, libs, pcfg)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name:         "Ray-like",
		Virtual:      team.VirtualNow(),
		KmerAnalysis: res.Timing("kmer-analysis").Virtual,
		ContigGen:    res.Timing("contig-generation").Virtual,
		Scaffolding:  res.Timing("scaffolding").Virtual + res.Timing("gap-closing").Virtual,
		FinalSeqs:    res.FinalSeqs,
	}, nil
}

// RunAbyssLike runs k-mer analysis and contig generation distributed
// (fine-grained), then performs all scaffolding on a single rank, as
// ABySS 1.x did on one shared-memory node.
func RunAbyssLike(cfg xrt.Config, libs []pipeline.Library, pcfg pipeline.Config) (*Outcome, error) {
	team := xrt.NewTeam(cfg)
	pcfgContigs := pcfg
	pcfgContigs.AggBufSize = 1
	pcfgContigs.ContigsOnly = true
	res, err := pipeline.Run(team, libs, pcfgContigs)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Name:         "ABySS-like",
		KmerAnalysis: res.Timing("kmer-analysis").Virtual,
		ContigGen:    res.Timing("contig-generation").Virtual,
	}

	// Scaffolding on one rank: re-run the pipeline serially and charge
	// only its scaffolding and gap-closing stages to this baseline (the
	// serial k-mer/contig recomputation is just a way to rebuild the
	// stage inputs; ABySS would hand its contigs over directly).
	serial := xrt.NewTeam(xrt.Config{Ranks: 1, Cost: cfg.Cost})
	sres, err := pipeline.Run(serial, libs, pcfg)
	if err != nil {
		return nil, err
	}
	out.Scaffolding = sres.Timing("scaffolding").Virtual + sres.Timing("gap-closing").Virtual
	out.Virtual = res.Timing("total").Virtual + out.Scaffolding
	out.FinalSeqs = sres.FinalSeqs
	return out, nil
}

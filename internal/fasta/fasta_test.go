package fasta

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestRoundtrip(t *testing.T) {
	recs := []Record{
		{Name: "seq1 description", Seq: bytes.Repeat([]byte("ACGT"), 50)},
		{Name: "seq2", Seq: []byte("GGGCCC")},
		{Name: "empty", Seq: nil},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Fatalf("record %d mismatch: %q vs %q", i, got[i].Name, recs[i].Name)
		}
	}
}

func TestWrapping(t *testing.T) {
	rec := Record{Name: "x", Seq: bytes.Repeat([]byte{'A'}, 200)}
	var buf bytes.Buffer
	if err := Write(&buf, []Record{rec}); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte{'\n'})
	if len(lines) != 4 { // header + 80 + 80 + 40
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[1]) != 80 || len(lines[3]) != 40 {
		t.Fatalf("wrapping wrong: %d, %d", len(lines[1]), len(lines[3]))
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("ACGT\n")); err == nil {
		t.Fatal("sequence before header accepted")
	}
}

func TestParseCRLF(t *testing.T) {
	recs, err := Parse([]byte(">a\r\nACGT\r\nGGTT\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGTGGTT" {
		t.Fatalf("got %q", recs[0].Seq)
	}
}

func TestFileRoundtrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x.fasta")
	recs := []Record{{Name: "chr1", Seq: []byte("ACGTACGT")}}
	if err := WriteFile(p, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Seq, recs[0].Seq) {
		t.Fatal("file roundtrip failed")
	}
}

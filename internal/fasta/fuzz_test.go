package fasta

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary bytes at the FASTA parser. Invariants: no
// panic; parse → Write → parse preserves every record whenever the fields
// survive line-based rendering (no '\r', and no '>' in the sequence, which
// 80-column wrapping could place at the start of a line).
func FuzzParse(f *testing.F) {
	f.Add([]byte(">chr1\nACGTACGT\nACGT\n>chr2 desc here\nTTTT\n"))
	f.Add([]byte(">only header no seq\n"))
	f.Add([]byte("ACGT\n>late header\nAC\n")) // data before first header: error
	f.Add([]byte(">\n\n>empty name\nNNNN\n"))
	f.Add([]byte(">crlf\r\nACGT\r\n"))
	f.Add([]byte(">x\n" + string(bytes.Repeat([]byte("ACGT"), 50)) + "\n")) // wraps
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Parse(data)
		if err != nil {
			return
		}
		for _, r := range recs {
			if !writable(r) {
				return
			}
		}
		var buf bytes.Buffer
		if werr := Write(&buf, recs); werr != nil {
			t.Fatalf("Write failed: %v", werr)
		}
		recs2, err2 := Parse(buf.Bytes())
		if err2 != nil {
			t.Fatalf("reparse of written output failed: %v", err2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].Name != recs2[i].Name || !bytes.Equal(recs[i].Seq, recs2[i].Seq) {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, recs[i], recs2[i])
			}
		}
	})
}

// writable reports whether r survives Write+Parse unchanged: '\r' is
// stripped by the CRLF-tolerant reader, and a '>' that wrapping places at
// column 0 would be read back as a header.
func writable(r Record) bool {
	if bytes.ContainsRune([]byte(r.Name), '\r') {
		return false
	}
	if bytes.ContainsRune(r.Seq, '\r') || bytes.ContainsRune(r.Seq, '>') {
		return false
	}
	// an all-blank sequence line would be skipped on reparse; only fully
	// dense sequences round-trip bytewise (wrapping never emits blank lines
	// for non-empty seqs, so this is automatic)
	return true
}

// Package fasta reads and writes FASTA files for the command-line tools.
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// Record is one FASTA sequence.
type Record struct {
	Name string
	Seq  []byte
}

// Write renders records with 80-column wrapping.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.Name); err != nil {
			return err
		}
		for i := 0; i < len(r.Seq); i += 80 {
			end := i + 80
			if end > len(r.Seq) {
				end = len(r.Seq)
			}
			if _, err := bw.Write(r.Seq[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes records to a file.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Parse reads all records from FASTA text.
func Parse(data []byte) ([]Record, error) {
	var recs []Record
	var cur *Record
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimRight(line, "\r")
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			recs = append(recs, Record{Name: string(bytes.TrimSpace(line[1:]))})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fasta: sequence data before first header")
		}
		cur.Seq = append(cur.Seq, line...)
	}
	return recs, nil
}

// ReadFile parses a FASTA file.
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

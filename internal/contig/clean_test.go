package contig

import (
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// Synthetic-graph scaffolding for the cleaning property tests: contigs
// are built directly (sequence, junction k-mers, depth) so each test
// controls the exact graph shape the pass sees.

func cleanTeam() *xrt.Team {
	return xrt.NewTeam(xrt.Config{Ranks: 4, RanksPerNode: 2, Seed: 3})
}

func randKmer(rng *xrt.Prng, k int) kmer.Kmer {
	km, ok := kmer.Pack(genome.Random(rng, k), k)
	if !ok {
		panic("unpackable random k-mer")
	}
	return km
}

// synthContig builds a contig of the given length and mean depth with
// the given junction attachments.
func synthContig(rng *xrt.Prng, id int64, length int, depth float64, k int,
	nbrL kmer.Kmer, hasL bool, nbrR kmer.Kmer, hasR bool) *Contig {
	return &Contig{
		ID: id, Seq: genome.Random(rng, length),
		NbrL: nbrL, HasNbrL: hasL, NbrR: nbrR, HasNbrR: hasR,
		SumCount: uint64(depth * float64(length-k+1)),
	}
}

func idsOf(res *Result) map[int64]bool {
	out := map[int64]bool{}
	for _, c := range res.All() {
		out[c.ID] = true
	}
	return out
}

// TestClipTipsPreservesTrueWalk: on seeded synthetic graphs — a deep
// chain of contigs (the true-genome walk) with shallow dead-end tips
// hanging off its junctions — tip clipping removes only tips, never a
// chain vertex, and a second pass is a no-op.
func TestClipTipsPreservesTrueWalk(t *testing.T) {
	const k = 21
	for trial := int64(0); trial < 10; trial++ {
		rng := xrt.NewPrng(100 + trial)
		team := cleanTeam()

		// Chain: c1 -j1- c2 -j2- ... -j(n-1)- cn, all deep.
		nChain := 3 + int(rng.Uint64()%4)
		junctions := make([]kmer.Kmer, nChain-1)
		for i := range junctions {
			junctions[i] = randKmer(rng, k)
		}
		var all []*Contig
		chainIDs := map[int64]bool{}
		id := int64(1)
		for i := 0; i < nChain; i++ {
			var nbrL, nbrR kmer.Kmer
			hasL, hasR := i > 0, i < nChain-1
			if hasL {
				nbrL = junctions[i-1]
			}
			if hasR {
				nbrR = junctions[i]
			}
			depth := 20 + float64(rng.Uint64()%20)
			c := synthContig(rng, id, 4*k+int(rng.Uint64()%100), depth, k,
				nbrL, hasL, nbrR, hasR)
			chainIDs[id] = true
			all = append(all, c)
			id++
		}
		// Tips: short, shallow (depth well under half the chain's), one
		// end on a chain junction, other end dead.
		nTips := 1 + int(rng.Uint64()%4)
		tipIDs := map[int64]bool{}
		for i := 0; i < nTips; i++ {
			j := junctions[rng.Uint64()%uint64(len(junctions))]
			c := synthContig(rng, id, k+1+int(rng.Uint64()%(2*k-1)), 2, k,
				j, true, kmer.Kmer{}, false)
			if rng.Uint64()%2 == 0 { // attachment side must not matter
				c.NbrL, c.NbrR = c.NbrR, c.NbrL
				c.HasNbrL, c.HasNbrR = false, true
			}
			tipIDs[id] = true
			all = append(all, c)
			id++
		}

		res := ResultFromContigs(team, all)
		st := ClipTips(team, res, CleanOptions{K: k})
		after := idsOf(res)
		for cid := range chainIDs {
			if !after[cid] {
				t.Fatalf("trial %d: chain contig %d removed by tip clipping", trial, cid)
			}
		}
		for tid := range tipIDs {
			if after[tid] {
				t.Fatalf("trial %d: shallow tip %d survived", trial, tid)
			}
		}
		if st.TipsClipped != int64(nTips) || st.Survivors != int64(nChain) {
			t.Fatalf("trial %d: stats %+v, want %d clipped / %d survivors",
				trial, st, nTips, nChain)
		}

		st2 := ClipTips(team, res, CleanOptions{K: k})
		if st2.TipsClipped != 0 || st2.BasesRemoved != 0 {
			t.Fatalf("trial %d: second pass not a no-op: %+v", trial, st2)
		}
	}
}

// TestClipTipsKeepsIsolatedAndDeepContigs: whole low-coverage fragments
// (both ends dead) and deep tips are never clipped — only dominance
// makes a tip clippable.
func TestClipTipsKeepsIsolatedAndDeepContigs(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(7)
	team := cleanTeam()
	j := randKmer(rng, k)
	all := []*Contig{
		// deep chain contig through j
		synthContig(rng, 1, 5*k, 30, k, kmer.Kmer{}, false, j, true),
		// isolated shallow fragment: never clipped
		synthContig(rng, 2, k+5, 2, k, kmer.Kmer{}, false, kmer.Kmer{}, false),
		// tip at j, but as deep as the chain: not dominated, survives
		synthContig(rng, 3, 2*k, 30, k, j, true, kmer.Kmer{}, false),
	}
	res := ResultFromContigs(team, all)
	st := ClipTips(team, res, CleanOptions{K: k})
	if st.TipsClipped != 0 || len(res.All()) != 3 {
		t.Fatalf("clipped a non-dominated contig: %+v", st)
	}
}

// TestPopBubblesKeepsExactlyOneBranch: for each synthetic allelic group
// (same junction pair, similar lengths), exactly one branch — the
// deepest — survives; the survivors' k-mer spectrum is contained in the
// input's; a second pass removes nothing.
func TestPopBubblesKeepsExactlyOneBranch(t *testing.T) {
	const k = 21
	for trial := int64(0); trial < 10; trial++ {
		rng := xrt.NewPrng(200 + trial)
		team := cleanTeam()

		nGroups := 1 + int(rng.Uint64()%3)
		var all []*Contig
		id := int64(1)
		type group struct {
			members map[int64]bool
			winner  int64
		}
		var groups []group
		for gi := 0; gi < nGroups; gi++ {
			a, b := randKmer(rng, k), randKmer(rng, k)
			nBranch := 2 + int(rng.Uint64()%3)
			length := 2*k + int(rng.Uint64()%k)
			g := group{members: map[int64]bool{}}
			bestDepth := -1.0
			for bi := 0; bi < nBranch; bi++ {
				depth := 5 + float64(rng.Uint64()%40)
				// lengths within ±k/2 of each other: all pass the
				// similar-length rule
				c := synthContig(rng, id, length+int(rng.Uint64()%(uint64(k)/2)),
					depth, k, a, true, b, true)
				g.members[id] = true
				if depth > bestDepth {
					bestDepth, g.winner = depth, id
				}
				all = append(all, c)
				id++
			}
			groups = append(groups, g)
		}
		// Plus a deep through-contig on a distinct junction pair — no
		// group, must survive.
		lone := synthContig(rng, id, 6*k, 50, k, randKmer(rng, k), true, randKmer(rng, k), true)
		loneID := id
		all = append(all, lone)

		inputSpectrum := map[kmer.Kmer]bool{}
		for _, c := range all {
			kmer.ForEach(c.Seq, k, func(_ int, km kmer.Kmer) {
				canon, _ := km.Canonical(k)
				inputSpectrum[canon] = true
			})
		}

		res := ResultFromContigs(team, all)
		st := PopBubbles(team, res, CleanOptions{K: k})
		after := idsOf(res)
		for gi, g := range groups {
			alive := 0
			for m := range g.members {
				if after[m] {
					alive++
				}
			}
			if alive != 1 {
				t.Fatalf("trial %d group %d: %d branches survive, want exactly 1", trial, gi, alive)
			}
			if !after[g.winner] {
				t.Fatalf("trial %d group %d: deepest branch %d popped", trial, gi, g.winner)
			}
		}
		if !after[loneID] {
			t.Fatalf("trial %d: non-bubble contig popped", trial)
		}
		for _, c := range res.All() {
			kmer.ForEach(c.Seq, k, func(_ int, km kmer.Kmer) {
				canon, _ := km.Canonical(k)
				if !inputSpectrum[canon] {
					t.Fatalf("trial %d: survivor k-mer absent from input spectrum", trial)
				}
			})
		}
		if st.BubblesPopped == 0 {
			t.Fatalf("trial %d: nothing popped", trial)
		}

		st2 := PopBubbles(team, res, CleanOptions{K: k})
		if st2.BubblesPopped != 0 || st2.BasesRemoved != 0 {
			t.Fatalf("trial %d: second pass not a no-op: %+v", trial, st2)
		}
	}
}

// TestCleaningRankInvariance: the surviving contig set of each pass is
// identical regardless of team size (the gathered-graph computation is
// global and deterministic).
func TestCleaningRankInvariance(t *testing.T) {
	const k = 21
	build := func() []*Contig {
		rng := xrt.NewPrng(42)
		j1, j2 := randKmer(rng, k), randKmer(rng, k)
		return []*Contig{
			synthContig(rng, 1, 5*k, 25, k, kmer.Kmer{}, false, j1, true),
			synthContig(rng, 2, 5*k, 25, k, j1, true, j2, true),
			synthContig(rng, 3, 5*k, 25, k, j2, true, kmer.Kmer{}, false),
			synthContig(rng, 4, 2*k, 2, k, j1, true, kmer.Kmer{}, false),
			synthContig(rng, 5, 3*k, 12, k, j1, true, j2, true),
			synthContig(rng, 6, 3*k+4, 8, k, j1, true, j2, true),
		}
	}
	var baseTips, baseBubs map[int64]bool
	for _, p := range []int{1, 3, 4} {
		team := xrt.NewTeam(xrt.Config{Ranks: p, RanksPerNode: 2, Seed: 3})
		res := ResultFromContigs(team, build())
		ClipTips(team, res, CleanOptions{K: k})
		tips := idsOf(res)
		PopBubbles(team, res, CleanOptions{K: k})
		bubs := idsOf(res)
		if baseTips == nil {
			baseTips, baseBubs = tips, bubs
			continue
		}
		for id := range baseTips {
			if !tips[id] {
				t.Fatalf("ranks=%d: tip survivors differ at %d", p, id)
			}
		}
		if len(tips) != len(baseTips) || len(bubs) != len(baseBubs) {
			t.Fatalf("ranks=%d: survivor counts differ", p)
		}
	}
}

// TestMergeRoundsClassification: a carried contig fully contained in the
// new round is dropped as represented; novel carried sequence is
// rescued into the merged set; IDs are renumbered deterministically by
// content.
func TestMergeRoundsClassification(t *testing.T) {
	const mergeK, curK = 21, 33
	rng := xrt.NewPrng(9)
	team := cleanTeam()

	novel := genome.Random(rng, 200)
	covered := genome.Random(rng, 150)
	newSeq := append(append(genome.Random(rng, 50), covered...), genome.Random(rng, 50)...)

	cur := ResultFromContigs(team, []*Contig{
		{ID: 1, Seq: newSeq, SumCount: uint64(10 * (len(newSeq) - curK + 1))},
	})
	prev := []*Contig{
		{ID: 1, Seq: covered, SumCount: uint64(8 * (len(covered) - mergeK + 1)), PseudoWeight: 8},
		{ID: 2, Seq: novel, SumCount: uint64(5 * (len(novel) - mergeK + 1)), PseudoWeight: 5},
	}
	merged, st := MergeRounds(team, prev, cur, mergeK, curK)
	if st.Represented != 1 || st.Rescued != 1 || st.PoppedOld != 0 {
		t.Fatalf("stats = %+v, want 1 represented / 1 rescued", st)
	}
	if len(merged) != 2 || st.Total != 2 {
		t.Fatalf("merged %d contigs, want 2", len(merged))
	}
	seen := map[int64]bool{}
	for _, c := range merged {
		if c.PseudoWeight == 0 {
			t.Fatalf("merged contig %d has no pseudo weight", c.ID)
		}
		seen[c.ID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("IDs not renumbered 1..n: %v", seen)
	}

	// Same input, fresh team: identical merged IDs and order.
	cur2 := ResultFromContigs(cleanTeam(), []*Contig{
		{ID: 1, Seq: newSeq, SumCount: uint64(10 * (len(newSeq) - curK + 1))},
	})
	prev2 := []*Contig{
		{ID: 1, Seq: covered, SumCount: uint64(8 * (len(covered) - mergeK + 1)), PseudoWeight: 8},
		{ID: 2, Seq: novel, SumCount: uint64(5 * (len(novel) - mergeK + 1)), PseudoWeight: 5},
	}
	merged2, _ := MergeRounds(cleanTeam(), prev2, cur2, mergeK, curK)
	for i := range merged {
		if string(merged[i].Seq) != string(merged2[i].Seq) || merged[i].ID != merged2[i].ID {
			t.Fatalf("merge not deterministic at %d", i)
		}
	}
}

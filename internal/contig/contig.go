// Package contig implements stage 2 of the pipeline: construction of the
// de Bruijn graph of UU k-mers in a distributed hash table and its
// parallel traversal into contigs (paper §2.2, §3.2, and the SC'14 prior
// work it builds on). Ranks pick seed k-mers from their local buckets and
// speculatively grow subcontigs in both directions, claiming each k-mer
// through a remote atomic. When two walks meet on the same chain the
// younger (higher-id) walk aborts and releases its claims while the older
// walk waits briefly and proceeds — the lightweight synchronization scheme
// that avoids races without global locking.
//
// The package also builds the §3.2 oracle partitioning function from a
// previous assembly's contigs, which makes traversal lookups
// overwhelmingly rank-local for same-species genomes.
package contig

import (
	"runtime"
	"sort"
	"sync/atomic"

	"hipmer/internal/dht"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// Options configures contig generation.
type Options struct {
	// K must be odd (odd k-mers cannot be reverse-complement palindromes,
	// which would create self-loops in the graph). Defaults to 31.
	K int
	// Oracle, when non-nil, places graph k-mers with the
	// communication-avoiding layout instead of uniform hashing.
	Oracle *dht.Oracle
	// AggBufSize overrides the aggregating-stores buffer size.
	AggBufSize int
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 31
	}
	if o.K%2 == 0 {
		panic("contig: K must be odd")
	}
	return o
}

// Termination reasons for a contig end.
const (
	TermNone     byte = 'X' // no supported k-mer beyond this end
	TermFork     byte = 'F' // branch: junction k-mer with forked extensions
	TermNonRecip byte = 'R' // neighbor does not uniquely point back
	TermCycle    byte = 'C' // walk closed a cycle
)

// Node is the graph value per canonical UU k-mer.
type Node struct {
	ExtL, ExtR byte
	Count      uint32
	Walk       int64 // 0 = unclaimed, otherwise owning walk id
	Contig     int64 // 1-based contig id after marking, 0 = unset
}

// Contig is one uncontested linear chain of the de Bruijn graph.
type Contig struct {
	ID           int64
	Seq          []byte
	TermL, TermR byte
	// NbrL/NbrR are the canonical k-mers just beyond each end when the
	// walk terminated at an existing but non-traversable k-mer (fork or
	// non-reciprocal neighbor). The bubble module joins contigs that share
	// these junction k-mers. Valid when HasNbrL/HasNbrR.
	NbrL, NbrR       kmer.Kmer
	HasNbrL, HasNbrR bool
	// SumCount is the sum of member k-mer counts; mean depth is
	// SumCount / (len(Seq)-k+1).
	SumCount uint64
	// PseudoWeight is the depth-derived weight this contig's k-mers carry
	// when it is fed into the next iterative-k round as a pseudo-read.
	// Zero until the contig first passes through MergeRounds.
	PseudoWeight uint32
}

// Depth returns the mean k-mer depth of the contig.
func (c *Contig) Depth(k int) float64 {
	n := len(c.Seq) - k + 1
	if n <= 0 {
		return 0
	}
	return float64(c.SumCount) / float64(n)
}

// Result carries the outputs of contig generation.
type Result struct {
	// Graph is the de Bruijn graph: canonical UU k-mer → Node, with each
	// node's Contig field set after traversal. It is returned frozen
	// (read-only); callers needing to mutate it must Thaw first.
	Graph *dht.Table[kmer.Kmer, Node]
	// Contigs holds the completed contigs per generating rank; global IDs
	// are contiguous from 1 and sorted within each rank.
	Contigs [][]*Contig
	// NumContigs is the global contig count.
	NumContigs int64
	// UUKmers is the number of vertices in the graph.
	UUKmers int64
	// Claimed counts walks that successfully claimed a seed; every such
	// walk either completes a contig or aborts, so
	// Claimed == Completed + Aborted always holds (pinned by test).
	Claimed int64
	// Completed counts walks that finished a contig.
	Completed int64
	// Aborted counts walks that lost a conflict and were retried.
	Aborted int64
	// Rounds is the maximum number of quiescence rounds any rank ran.
	Rounds int64
	// BuildPhase and TraversePhase report virtual time and communication.
	BuildPhase, TraversePhase xrt.PhaseStats
}

// All returns all contigs in global-ID order.
func (r *Result) All() []*Contig {
	var out []*Contig
	for _, cs := range r.Contigs {
		out = append(out, cs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func graphHash(km kmer.Kmer) uint64 { return km.Hash(0xdeb41) }

// Run builds the UU de Bruijn graph from the k-mer analysis table and
// traverses it into contigs.
func Run(team *xrt.Team, kt *dht.Table[kmer.Kmer, kanalysis.KmerData], opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}

	// UU k-mers are a subset of the k-mer table, so its entry count is a
	// safe pre-sizing upper bound for the graph's stripe maps.
	gOpt := dht.Options[kmer.Kmer]{
		Hash:          graphHash,
		ItemBytes:     16 + 8,
		AggBufSize:    opt.AggBufSize,
		ExpectedItems: kt.Len(),
	}
	if opt.Oracle != nil {
		gOpt.Place = opt.Oracle.Place
	}
	graph := dht.New[kmer.Kmer, Node](team, gOpt, nil)
	res.Graph = graph

	// --- graph construction: project UU k-mers out of the k-mer table ---
	team.BeginSpan("graph-build")
	res.BuildPhase = team.Run(func(r *xrt.Rank) {
		kt.LocalRange(r, func(km kmer.Kmer, d kanalysis.KmerData) bool {
			if d.IsUU() {
				graph.Put(r, km, Node{ExtL: d.ExtL, ExtR: d.ExtR, Count: d.Count})
			}
			return true
		})
		graph.Flush(r)
		r.Barrier()
		n := graph.GlobalLen(r)
		if r.ID == 0 {
			res.UUKmers = n
		}
	})
	team.EndSpan()

	// --- parallel traversal ---------------------------------------------
	team.BeginSpan("traverse")
	tr := &traverser{team: team, graph: graph, kt: kt, k: opt.K}
	contigsByRank := make([][]*Contig, team.Config().Ranks)
	res.TraversePhase = team.Run(func(r *xrt.Rank) {
		contigsByRank[r.ID] = tr.traverseRank(r)
	})
	res.Claimed = tr.claims.Load()
	res.Completed = tr.wins.Load()
	res.Aborted = tr.aborts.Load()
	res.Rounds = tr.rounds.Load()
	// Speculative-traversal outcome counters: claims = wins + aborts.
	team.AddCounter("walks_claimed", res.Claimed)
	team.AddCounter("walks_completed", res.Completed)
	team.AddCounter("walks_aborted", res.Aborted)
	team.AddCounter("quiescence_rounds", res.Rounds)
	team.EndSpan()

	// --- global contig IDs + k-mer marking -------------------------------
	// IDs are assigned by sorting content hashes of the canonical contig
	// sequences, so numbering is deterministic regardless of which rank's
	// walk produced a contig or in what order walks completed.
	// The apply hook updates only the Contig field so node data survives.
	graph.SetApply(func(_, _ int, _ uint64, k kmer.Kmer, in Node, shard map[kmer.Kmer]Node) {
		if n, ok := shard[k]; ok {
			n.Contig = in.Contig
			shard[k] = n
		}
	})
	team.BeginSpan("assign-ids")
	team.Run(func(r *xrt.Rank) {
		mine := contigsByRank[r.ID]
		keys := make([]contigKey, len(mine))
		for i, c := range mine {
			keys[i] = keyOf(c.Seq)
		}
		gathered := r.AllGather(keys)
		var all []contigKey
		for _, g := range gathered {
			all = append(all, g.([]contigKey)...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].h1 != all[j].h1 {
				return all[i].h1 < all[j].h1
			}
			return all[i].h2 < all[j].h2
		})
		idOf := make(map[contigKey]int64, len(all))
		for i, k := range all {
			idOf[k] = int64(i) + 1
		}
		for i, c := range mine {
			c.ID = idOf[keys[i]]
		}
		if r.ID == 0 {
			res.NumContigs = int64(len(all))
		}
		// mark each member k-mer with its contig id (aggregated stores)
		for _, c := range mine {
			id := c.ID
			kmer.ForEach(c.Seq, opt.K, func(pos int, km kmer.Kmer) {
				canon, _ := km.Canonical(opt.K)
				graph.Put(r, canon, Node{Contig: id})
			})
		}
		graph.Flush(r)
		r.Barrier()

		// contig generation is done mutating the graph; downstream
		// consumers (validation, output) only read — publish it frozen.
		graph.Freeze(r)
	})
	team.EndSpan()
	graph.SetApply(nil)
	res.Contigs = contigsByRank
	team.AddCounter("uu_kmers", res.UUKmers)
	team.AddCounter("contigs", res.NumContigs)
	return res
}

type traverser struct {
	team   *xrt.Team
	graph  *dht.Table[kmer.Kmer, Node]
	kt     *dht.Table[kmer.Kmer, kanalysis.KmerData]
	k      int
	claims atomic.Int64 // walks that claimed their seed
	wins   atomic.Int64 // walks that completed a contig
	aborts atomic.Int64 // walks that lost a conflict and released
	rounds atomic.Int64
}

// pos is an oriented position on the graph: the canonical vertex plus
// whether the walk currently reads it reverse-complemented.
type pos struct {
	canon   kmer.Kmer
	flipped bool
}

func (p pos) oriented(k int) kmer.Kmer {
	if p.flipped {
		return p.canon.RevComp(k)
	}
	return p.canon
}

// orientedExts returns the extension codes of p in walk orientation.
func orientedExts(n Node, flipped bool) (extL, extR byte) {
	if !flipped {
		return n.ExtL, n.ExtR
	}
	return compExt(n.ExtR), compExt(n.ExtL)
}

func compExt(e byte) byte {
	if kmer.IsBaseExt(e) {
		return kmer.Complement(e)
	}
	return e
}

const (
	claimOK        = iota
	claimBusyOlder // held by a lower walk id: we must abort
	claimBusyNewer // held by a higher walk id: retry, they will abort
	claimSelf      // held by this very walk: cycle closed
	claimGone      // vertex does not exist
	claimRejected  // precondition (reciprocity) failed: terminate, no claim
)

// tryClaim atomically claims vertex v for walkID if it is free and the
// optional precondition holds. Checking the precondition inside the remote
// atomic matters: a vertex that fails reciprocity is a boundary belonging
// to a different contig and must never be claimed, and the check must see
// consistent node data. Only a charged attempt pays the remote-atomic
// cost; spin retries while waiting out a newer walk go through
// MutateRetry so the charge is per vertex, not per poll (see there).
func (t *traverser) tryClaim(r *xrt.Rank, v kmer.Kmer, walkID int64,
	pre func(Node) bool, charged bool) (Node, int) {
	var node Node
	status := claimGone
	mutate := t.graph.Mutate
	if !charged {
		mutate = t.graph.MutateRetry
	}
	mutate(r, v, func(n Node, exists bool) (Node, bool) {
		if !exists {
			status = claimGone
			return n, false
		}
		node = n
		if pre != nil && !pre(n) {
			status = claimRejected
			return n, false
		}
		switch {
		case n.Walk == 0:
			n.Walk = walkID
			status = claimOK
			return n, true
		case n.Walk == walkID:
			status = claimSelf
			return n, false
		case n.Walk < walkID:
			status = claimBusyOlder
			return n, false
		default:
			status = claimBusyNewer
			return n, false
		}
	})
	return node, status
}

func (t *traverser) release(r *xrt.Rank, claimed []pos, walkID int64) {
	for _, p := range claimed {
		t.graph.Mutate(r, p.canon, func(n Node, exists bool) (Node, bool) {
			if exists && n.Walk == walkID {
				n.Walk = 0
				return n, true
			}
			return n, false
		})
	}
}

// traverseRank runs the per-rank seed loop until global quiescence. In
// the first round only "locally contiguous" seeds are used — vertices
// with at least one neighbor placed on this rank. Under an oracle layout
// a misplaced (hash-collision) vertex is surrounded by remote neighbors;
// seeding a walk from it would re-walk a remote contig and abort, turning
// one misplaced k-mer into O(contig) remote traffic. Deferring such seeds
// one round lets the owning rank's walks claim their chains first, so a
// misplaced vertex costs O(1) remote operations, matching the collision
// accounting of §3.2.
func (t *traverser) traverseRank(r *xrt.Rank) []*Contig {
	var out []*Contig
	for round := 0; ; round++ {
		progress := int64(0)
		// snapshot local seed candidates; claims mutate the shard, so
		// collect keys first
		var seeds []kmer.Kmer
		t.graph.LocalRange(r, func(km kmer.Kmer, n Node) bool {
			if n.Walk != 0 {
				return true
			}
			if round == 0 && !t.locallyContiguous(r, km, n) {
				return true
			}
			seeds = append(seeds, km)
			return true
		})
		for _, seed := range seeds {
			if c, ok := t.walkFrom(r, seed); ok {
				out = append(out, c)
				progress++
			} else {
				progress++ // claims changed state; another round may be needed
			}
		}
		// Quiescence: nobody made progress and no free vertices remain.
		free := int64(0)
		t.graph.LocalRange(r, func(km kmer.Kmer, n Node) bool {
			if n.Walk == 0 {
				free++
			}
			return true
		})
		total := r.AllReduceInt64(progress+free, func(a, b int64) int64 { return a + b })
		if total == 0 && round > 0 {
			if int64(round) > t.rounds.Load() {
				t.rounds.Store(int64(round))
			}
			return out
		}
	}
}

// locallyContiguous reports whether a vertex has a neighbor whose home is
// this rank. Owner computation is pure hashing — no communication.
func (t *traverser) locallyContiguous(r *xrt.Rank, km kmer.Kmer, n Node) bool {
	any := false
	for _, dir := range [2]bool{false, true} {
		extL, extR := n.ExtL, n.ExtR // canonical orientation
		ext := extR
		if dir {
			ext = extL
		}
		if !kmer.IsBaseExt(ext) {
			continue
		}
		any = true
		code, _ := kmer.BaseCode(ext)
		var nxt kmer.Kmer
		if dir {
			nxt = km.NextLeft(t.k, code)
		} else {
			nxt = km.NextRight(t.k, code)
		}
		canon, _ := nxt.Canonical(t.k)
		if t.graph.Owner(canon) == r.ID {
			return true
		}
	}
	// isolated vertices (no base extensions) are their own contigs; seed
	// them immediately
	return !any
}

// walkFrom attempts a complete walk seeded at the given vertex. It
// returns (contig, true) on completion, or (nil, false) if the seed was
// already taken or the walk aborted after a lost conflict.
func (t *traverser) walkFrom(r *xrt.Rank, seed kmer.Kmer) (*Contig, bool) {
	walkID := t.team.NextID()
	node, st := t.tryClaim(r, seed, walkID, nil, true)
	if st != claimOK {
		return nil, false
	}
	t.claims.Add(1)
	k := t.k
	start := pos{canon: seed, flipped: false}
	claimed := []pos{start}
	sumCount := uint64(node.Count)

	var rightBuf, leftBuf []byte
	// extend right, then left
	endR, ok := t.extend(r, walkID, start, node, false, &rightBuf, &claimed, &sumCount)
	if !ok {
		t.release(r, claimed, walkID)
		t.aborts.Add(1)
		return nil, false
	}
	var endL walkEnd
	if endR.term == TermCycle {
		endL = walkEnd{term: TermCycle}
	} else {
		endL, ok = t.extend(r, walkID, start, node, true, &leftBuf, &claimed, &sumCount)
		if !ok {
			t.release(r, claimed, walkID)
			t.aborts.Add(1)
			return nil, false
		}
	}

	// assemble sequence: reverse(leftBuf) + seed + rightBuf
	seq := make([]byte, 0, len(leftBuf)+k+len(rightBuf))
	for i := len(leftBuf) - 1; i >= 0; i-- {
		seq = append(seq, leftBuf[i])
	}
	seq = start.oriented(k).Append(seq, k)
	seq = append(seq, rightBuf...)
	c := &Contig{
		Seq: seq, SumCount: sumCount,
		TermL: endL.term, NbrL: endL.nbr, HasNbrL: endL.hasNbr,
		TermR: endR.term, NbrR: endR.nbr, HasNbrR: endR.hasNbr,
	}
	// Canonicalize the stored orientation so output is independent of
	// which seed and direction happened to win the walk.
	if rc := kmer.RevCompString(seq); string(rc) < string(seq) {
		c.Seq = rc
		c.TermL, c.TermR = c.TermR, c.TermL
		c.NbrL, c.NbrR = c.NbrR, c.NbrL
		c.HasNbrL, c.HasNbrR = c.HasNbrR, c.HasNbrL
	}
	t.wins.Add(1)
	return c, true
}

// walkEnd describes how and where one direction of a walk terminated.
type walkEnd struct {
	term   byte
	nbr    kmer.Kmer
	hasNbr bool
}

// extend grows the walk from start in one direction (left if goLeft),
// appending bases to buf and claimed vertices to claimed. It returns how
// the direction terminated, or ok=false if the walk must abort.
func (t *traverser) extend(r *xrt.Rank, walkID int64, start pos, startNode Node,
	goLeft bool, buf *[]byte, claimed *[]pos, sumCount *uint64) (walkEnd, bool) {
	k := t.k
	cur, curNode := start, startNode
	for {
		extL, extR := orientedExts(curNode, cur.flipped)
		ext := extR
		if goLeft {
			ext = extL
		}
		switch ext {
		case kmer.ExtFork:
			return walkEnd{term: TermFork}, true
		case kmer.ExtNone:
			return walkEnd{term: TermNone}, true
		}
		code, _ := kmer.BaseCode(ext)
		curOriented := cur.oriented(k)
		var nextOriented kmer.Kmer
		if goLeft {
			nextOriented = curOriented.NextLeft(k, code)
		} else {
			nextOriented = curOriented.NextRight(k, code)
		}
		canon, flipped := nextOriented.Canonical(k)
		next := pos{canon: canon, flipped: flipped}

		// reciprocity precondition: the neighbor must uniquely point back
		// at us; a vertex that does not is a boundary of another contig.
		wantBase := curOriented.Base(k - 1)
		if !goLeft {
			wantBase = curOriented.Base(0)
		}
		recip := func(n Node) bool {
			nExtL, nExtR := orientedExts(n, next.flipped)
			back := nExtR
			if !goLeft {
				back = nExtL
			}
			return kmer.IsBaseExt(back) && back == kmer.CodeBase(wantBase)
		}

		// claim, with wait-or-abort conflict resolution: the walk with the
		// lower id has priority; the newer walk aborts so the older can
		// pass through (the paper's lightweight synchronization scheme).
		var node Node
		for spins := 0; ; spins++ {
			n, st := t.tryClaim(r, canon, walkID, recip, spins == 0)
			switch st {
			case claimOK:
				node = n
			case claimGone:
				// Neighbor is not a UU graph vertex; classify the end by
				// consulting the full k-mer table: a surviving k-mer with a
				// forked side is a true branch point (the bubble module
				// uses these junctions), an absent one is a dead end.
				if d, ok := t.kt.Get(r, canon); ok {
					term := TermNone
					if d.ExtL == kmer.ExtFork || d.ExtR == kmer.ExtFork {
						term = TermFork
					}
					return walkEnd{term: term, nbr: canon, hasNbr: true}, true
				}
				return walkEnd{term: TermNone}, true
			case claimRejected:
				return walkEnd{term: TermNonRecip, nbr: canon, hasNbr: true}, true
			case claimSelf:
				return walkEnd{term: TermCycle}, true
			case claimBusyOlder:
				return walkEnd{}, false // abort: the older walk has priority
			case claimBusyNewer:
				// the newer walk will abort when it reaches our claims
				if spins > 8 {
					runtime.Gosched()
				}
				continue
			}
			break
		}

		*claimed = append(*claimed, next)
		*buf = append(*buf, ext)
		*sumCount += uint64(node.Count)
		cur, curNode = next, node
	}
}

// contigKey is a 128-bit content hash of a contig's canonical sequence,
// used for deterministic global numbering.
type contigKey struct {
	h1, h2 uint64
}

func keyOf(seq []byte) contigKey {
	rc := kmer.RevCompString(seq)
	s := seq
	if string(rc) < string(s) {
		s = rc
	}
	h1 := uint64(14695981039346656037)
	h2 := uint64(0x9e3779b97f4a7c15)
	for _, b := range s {
		h1 = (h1 ^ uint64(b)) * 1099511628211
		h2 = (h2 + uint64(b)) * 0xff51afd7ed558ccd
		h2 ^= h2 >> 33
	}
	return contigKey{h1, h2}
}

// BuildOracle constructs the §3.2 oracle partitioning vector from an
// existing assembly: contigs are dealt to ranks cyclically and every
// member k-mer's hash slot records the contig's rank. Collisions keep the
// first assignment.
func BuildOracle(contigs []*Contig, k, ranks, slots int) *dht.Oracle {
	o := dht.NewOracle(slots, ranks)
	for i, c := range contigs {
		rank := i % ranks
		kmer.ForEach(c.Seq, k, func(_ int, km kmer.Kmer) {
			canon, _ := km.Canonical(k)
			o.Assign(graphHash(canon), rank)
		})
	}
	return o
}

package contig

import (
	"bytes"
	"strings"
	"testing"

	"hipmer/internal/dht"
	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// tableFromSeqs builds a k-mer analysis table directly from reference
// sequences (each fed twice so the Bloom screen admits every k-mer),
// giving fully controlled graph structure for traversal tests.
func tableFromSeqs(team *xrt.Team, seqs [][]byte, k int) *dht.Table[kmer.Kmer, kanalysis.KmerData] {
	var recs []fastq.Record
	for i, s := range seqs {
		q := bytes.Repeat([]byte{'I'}, len(s))
		for rep := 0; rep < 2; rep++ {
			recs = append(recs, fastq.Record{
				ID: []byte{byte('a' + i), byte('0' + rep)}, Seq: s, Qual: q,
			})
		}
	}
	p := team.Config().Ranks
	parts := make([][]fastq.Record, p)
	for i, rec := range recs {
		parts[i%p] = append(parts[i%p], rec)
	}
	res := kanalysis.Run(team, parts, kanalysis.Options{K: k, MinCount: 2})
	return res.Table
}

func canonSeq(s []byte) string {
	rc := kmer.RevCompString(s)
	if bytes.Compare(rc, s) < 0 {
		return string(rc)
	}
	return string(s)
}

func isSubstringEitherStrand(g, s []byte) bool {
	return bytes.Contains(g, s) || bytes.Contains(g, kmer.RevCompString(s))
}

func TestSingleUniqueSequenceYieldsOneContig(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(1)
	g := genome.Random(rng, 5000)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	kt := tableFromSeqs(team, [][]byte{g}, k)
	res := Run(team, kt, Options{K: k})
	all := res.All()
	if len(all) != 1 {
		t.Fatalf("got %d contigs, want 1", len(all))
	}
	// the terminal k-mers of the genome have no extension evidence and are
	// not UU, so the contig loses exactly one base at each end
	if canonSeq(all[0].Seq) != canonSeq(g[1:len(g)-1]) {
		t.Fatalf("contig does not reconstruct the genome (len %d vs %d)",
			len(all[0].Seq), len(g))
	}
	if all[0].TermL != TermNone || all[0].TermR != TermNone {
		t.Fatalf("expected X/X termination, got %c/%c", all[0].TermL, all[0].TermR)
	}
	if all[0].ID != 1 || res.NumContigs != 1 {
		t.Fatalf("bad ids: %d, count %d", all[0].ID, res.NumContigs)
	}
}

func TestEveryUUKmerInExactlyOneContig(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(2)
	g := genome.HumanLike(rng, 30000)
	team := xrt.NewTeam(xrt.Config{Ranks: 6})
	kt := tableFromSeqs(team, [][]byte{g}, k)
	res := Run(team, kt, Options{K: k})
	seen := make(map[kmer.Kmer]int)
	for _, c := range res.All() {
		kmer.ForEach(c.Seq, k, func(pos int, km kmer.Kmer) {
			canon, _ := km.Canonical(k)
			seen[canon]++
		})
	}
	var uu, missing, dup int
	res.Graph.RangeAll(func(km kmer.Kmer, n Node) bool {
		uu++
		switch seen[km] {
		case 0:
			missing++
		case 1:
		default:
			dup++
		}
		if n.Contig == 0 {
			t.Errorf("k-mer not marked with a contig id")
			return false
		}
		return true
	})
	if missing != 0 || dup != 0 {
		t.Fatalf("UU kmers: %d total, %d missing from contigs, %d duplicated", uu, missing, dup)
	}
	// and no contig contains a k-mer outside the graph
	for km, n := range seen {
		if n > 1 {
			t.Fatalf("k-mer appears %d times across contigs", n)
		}
		if _, ok := res.Graph.Lookup(km); !ok {
			t.Fatal("contig contains k-mer not in UU graph")
		}
	}
}

func TestContigsAreSubstringsOfReference(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(3)
	g := genome.WheatLike(rng, 40000)
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	kt := tableFromSeqs(team, [][]byte{g}, k)
	res := Run(team, kt, Options{K: k})
	if res.NumContigs < 2 {
		t.Fatalf("repetitive genome yielded %d contigs; expected fragmentation", res.NumContigs)
	}
	covered := 0
	for _, c := range res.All() {
		if !isSubstringEitherStrand(g, c.Seq) {
			t.Fatalf("contig of length %d is not a substring of the reference", len(c.Seq))
		}
		covered += len(c.Seq)
	}
	if covered < len(g)/2 {
		t.Fatalf("contigs cover only %d of %d bases", covered, len(g))
	}
}

func TestDeterministicAcrossRankCounts(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(4)
	g := genome.HumanLike(rng, 20000)
	collect := func(p int) map[string]bool {
		team := xrt.NewTeam(xrt.Config{Ranks: p})
		kt := tableFromSeqs(team, [][]byte{g}, k)
		res := Run(team, kt, Options{K: k})
		m := make(map[string]bool)
		for _, c := range res.All() {
			m[canonSeq(c.Seq)] = true
		}
		return m
	}
	a, b := collect(2), collect(9)
	if len(a) != len(b) {
		t.Fatalf("contig sets differ in size: %d vs %d", len(a), len(b))
	}
	for s := range a {
		if !b[s] {
			t.Fatal("contig set depends on rank count")
		}
	}
}

func TestForkTermination(t *testing.T) {
	// Two sequences sharing a middle segment: the shared segment's
	// boundary k-mers fork, so the interior becomes its own contig with
	// fork/non-reciprocal terminations.
	const k = 21
	rng := xrt.NewPrng(5)
	shared := genome.Random(rng, 200)
	g1 := append(append(genome.Random(rng, 300), shared...), genome.Random(rng, 300)...)
	g2 := append(append(genome.Random(rng, 300), shared...), genome.Random(rng, 300)...)
	team := xrt.NewTeam(xrt.Config{Ranks: 3})
	kt := tableFromSeqs(team, [][]byte{g1, g2}, k)
	res := Run(team, kt, Options{K: k})
	if res.NumContigs < 3 {
		t.Fatalf("got %d contigs, want >= 3 (fork should split)", res.NumContigs)
	}
	forkish := 0
	for _, c := range res.All() {
		for _, term := range []byte{c.TermL, c.TermR} {
			if term == TermFork || term == TermNonRecip {
				forkish++
			}
		}
		if !isSubstringEitherStrand(g1, c.Seq) && !isSubstringEitherStrand(g2, c.Seq) {
			t.Fatal("contig not a substring of either source")
		}
	}
	if forkish == 0 {
		t.Fatal("no fork/non-reciprocal terminations at a known branch point")
	}
}

func TestCycleDetection(t *testing.T) {
	// A circular sequence: feed the rotation-closed string so every k-mer
	// has unique extensions around the circle.
	const k = 21
	rng := xrt.NewPrng(6)
	circ := genome.Random(rng, 1000)
	closed := append(append([]byte(nil), circ...), circ[:k]...)
	team := xrt.NewTeam(xrt.Config{Ranks: 2})
	kt := tableFromSeqs(team, [][]byte{closed}, k)
	res := Run(team, kt, Options{K: k})
	all := res.All()
	if len(all) != 1 {
		t.Fatalf("cycle yielded %d contigs", len(all))
	}
	if all[0].TermL != TermCycle || all[0].TermR != TermCycle {
		t.Fatalf("terminations %c/%c, want C/C", all[0].TermL, all[0].TermR)
	}
	if len(all[0].Seq) < 1000 {
		t.Fatalf("cycle contig too short: %d", len(all[0].Seq))
	}
}

func TestTraversalFromSimulatedReads(t *testing.T) {
	// end-to-end k-mer analysis -> contigs on error-containing reads
	const k = 21
	rng := xrt.NewPrng(7)
	g := genome.Random(rng, 30000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 30,
		Lib:      genome.Library{Name: "t", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	team := xrt.NewTeam(xrt.Config{Ranks: 4})
	parts := make([][]fastq.Record, 4)
	for i, rec := range recs {
		parts[i%4] = append(parts[i%4], rec)
	}
	kres := kanalysis.Run(team, parts, kanalysis.Options{K: k, MinCount: 3})
	res := Run(team, kres.Table, Options{K: k})
	var covered int
	for _, c := range res.All() {
		if !isSubstringEitherStrand(g, c.Seq) {
			t.Fatalf("contig (len %d) not in reference", len(c.Seq))
		}
		covered += len(c.Seq)
	}
	if float64(covered) < 0.9*float64(len(g)) {
		t.Fatalf("contigs cover only %d of %d reference bases", covered, len(g))
	}
}

func TestHighContentionManyRanksSmallGraph(t *testing.T) {
	// Many ranks fighting over one chain exercises the claim/abort path.
	const k = 21
	rng := xrt.NewPrng(8)
	g := genome.Random(rng, 3000)
	team := xrt.NewTeam(xrt.Config{Ranks: 24, RanksPerNode: 6})
	kt := tableFromSeqs(team, [][]byte{g}, k)
	res := Run(team, kt, Options{K: k})
	all := res.All()
	if len(all) != 1 {
		t.Fatalf("got %d contigs, want 1", len(all))
	}
	if canonSeq(all[0].Seq) != canonSeq(g[1:len(g)-1]) {
		t.Fatal("contested traversal corrupted the contig")
	}
}

func TestOracleReducesOffNodeLookups(t *testing.T) {
	// The oracle scenario of §3.2: assemble individual 1, build the oracle
	// from its contigs, then assemble individual 2 of the same species
	// (0.2% diverged). Real genomes yield many contigs spread over ranks;
	// model that with many chromosome-scale fragments.
	const k = 21
	rng := xrt.NewPrng(9)
	var g1, g2 [][]byte
	for i := 0; i < 160; i++ {
		c := genome.Random(rng, 300+rng.Intn(600))
		g1 = append(g1, c)
		g2 = append(g2, genome.Mutate(rng, c, 0.002))
	}

	const ranks = 8
	run := func(oracle *dht.Oracle) (*Result, xrt.CommStats, map[string]bool) {
		team := xrt.NewTeam(xrt.Config{Ranks: ranks, RanksPerNode: 2})
		kt := tableFromSeqs(team, g2, k)
		before := team.AggStats()
		res := Run(team, kt, Options{K: k, Oracle: oracle})
		seqs := make(map[string]bool)
		for _, c := range res.All() {
			seqs[canonSeq(c.Seq)] = true
		}
		return res, team.AggStats().Sub(before), seqs
	}

	// assembly of the first individual provides the oracle
	team1 := xrt.NewTeam(xrt.Config{Ranks: ranks})
	res1 := Run(team1, tableFromSeqs(team1, g1, k), Options{K: k})
	if res1.NumContigs < 100 {
		t.Fatalf("expected many contigs for the oracle, got %d", res1.NumContigs)
	}
	oracle := BuildOracle(res1.All(), k, ranks, 1<<20)

	_, statsNo, seqsNo := run(nil)
	_, statsOr, seqsOr := run(oracle)

	// Table 2 of the paper reports the *reduction in off-node lookups*
	// (41-76% depending on oracle vector size); the oracle does not
	// eliminate off-node traffic because hash-slot collisions and k-mers
	// novel to the second individual stay uniformly placed.
	offNo, offOr := statsNo.OffNodeLookups, statsOr.OffNodeLookups
	if offOr*10 > offNo*7 {
		t.Fatalf("oracle off-node lookups %d vs no-oracle %d: reduction below 30%%",
			offOr, offNo)
	}
	if fracNo, fracOr := statsNo.OffNodeLookupFrac(), statsOr.OffNodeLookupFrac(); fracNo-fracOr < 0.1 {
		t.Fatalf("off-node fraction barely moved: %.3f -> %.3f", fracNo, fracOr)
	}
	// identical assemblies either way
	if len(seqsNo) != len(seqsOr) {
		t.Fatalf("oracle changed the assembly: %d vs %d contigs", len(seqsNo), len(seqsOr))
	}
	for s := range seqsNo {
		if !seqsOr[s] {
			t.Fatal("oracle changed contig content")
		}
	}
}

func TestDepth(t *testing.T) {
	c := &Contig{Seq: bytes.Repeat([]byte{'A'}, 30), SumCount: 100}
	if d := c.Depth(21); d != 10 {
		t.Fatalf("depth = %f, want 10", d)
	}
	short := &Contig{Seq: []byte("ACGT"), SumCount: 5}
	if d := short.Depth(21); d != 0 {
		t.Fatalf("short contig depth = %f, want 0", d)
	}
}

func TestKMustBeOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even k")
		}
	}()
	team := xrt.NewTeam(xrt.Config{Ranks: 1})
	kt := tableFromSeqs(team, [][]byte{[]byte(strings.Repeat("ACGT", 20))}, 21)
	Run(team, kt, Options{K: 22})
}

// Graph-cleaning passes for the iterative-k metagenome pipeline
// (MetaHipMer's outer loop, after the tip-clipping and bubble-popping
// design of MEGAHIT). The vanilla pipeline keeps only UU chains, so a
// metagenome's error structures survive as separate short contigs: a
// sequencing-error branch becomes a shallow dead-end contig hanging off a
// junction (a tip), and a SNP or strain variant becomes a pair of
// similar-length contigs spanning the same two junction k-mers (a
// bubble). Both passes follow the deterministic gathered-graph idiom of
// scaffold §4.2 bubble merging: every rank contributes compact endpoint
// records via AllGather, performs the identical doomed-set computation,
// and prunes only its own contig partition — so the surviving set is
// bit-identical regardless of rank count or schedule.
//
// MergeRounds implements the cross-round pseudo-read merge: instead of a
// global dedup, carried contigs are kept only when the new round does not
// already represent them, judged by k-mer containment plus localized
// bubble detection (a carried contig whose flanks both anchor inside one
// new contig is an allelic branch the higher-k assembly already chose).
package contig

import (
	"math"
	"sort"

	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// CleanOptions configures the graph-cleaning passes.
type CleanOptions struct {
	// K is the k-mer length the contigs were assembled at.
	K int
	// TipMaxLen is the maximum length of a clippable tip (default 3k,
	// MEGAHIT's 2k..3k band): longer dead ends are genuine sequence.
	TipMaxLen int
	// TipDepthRatio is the dominance requirement: a tip is clipped only
	// when its depth is at most this fraction of a rival path through the
	// same junction (default 0.5). Ratios below 1 make mutual clipping
	// impossible, which is what keeps the pass idempotent.
	TipDepthRatio float64
	// BubbleMaxLen is the maximum length of a poppable bubble branch
	// (default 4k, matching scaffold bubble merging).
	BubbleMaxLen int
}

func (o CleanOptions) withDefaults() CleanOptions {
	if o.K <= 0 {
		o.K = 31
	}
	if o.TipMaxLen <= 0 {
		o.TipMaxLen = 3 * o.K
	}
	if o.TipDepthRatio <= 0 {
		o.TipDepthRatio = 0.5
	}
	if o.BubbleMaxLen <= 0 {
		o.BubbleMaxLen = 4 * o.K
	}
	return o
}

// CleanStats summarizes one cleaning pass.
type CleanStats struct {
	// TipsClipped and BubblesPopped count removed contigs (one of the two
	// is always zero: each pass fills only its own).
	TipsClipped   int64
	BubblesPopped int64
	// BasesRemoved is the total sequence length removed.
	BasesRemoved int64
	// Survivors is the global contig count after the pass.
	Survivors int64
}

// Add folds another pass's stats into s (per-round accumulation).
func (s *CleanStats) Add(o CleanStats) {
	s.TipsClipped += o.TipsClipped
	s.BubblesPopped += o.BubblesPopped
	s.BasesRemoved += o.BasesRemoved
	s.Survivors = o.Survivors
}

// cleanRec is the compact endpoint record the cleaning passes gather to
// every rank — the same projection scaffold bubble merging uses.
type cleanRec struct {
	ID         int64
	Len        int
	Depth      float64
	NbrL, NbrR kmer.Kmer
	HasL, HasR bool
}

// gatherCleanRecs AllGathers every contig's endpoint record and returns
// the global, ID-sorted list (identical on every rank by construction).
func gatherCleanRecs(team *xrt.Team, res *Result, k int) []cleanRec {
	p := team.Config().Ranks
	gathered := make([][]cleanRec, p)
	team.Run(func(r *xrt.Rank) {
		var mine []cleanRec
		for _, c := range res.Contigs[r.ID] {
			mine = append(mine, cleanRec{
				ID: c.ID, Len: len(c.Seq), Depth: c.Depth(k),
				NbrL: c.NbrL, NbrR: c.NbrR,
				HasL: c.HasNbrL, HasR: c.HasNbrR,
			})
		}
		all := r.AllGather(mine)
		if r.ID == 0 {
			for i, a := range all {
				gathered[i] = a.([]cleanRec)
			}
		}
		r.Barrier()
	})
	var recs []cleanRec
	for _, g := range gathered {
		recs = append(recs, g...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// pruneContigs removes the doomed set from every rank's partition and
// recomputes the global count; the per-rank work is charged like a scan
// of the gathered records.
func pruneContigs(team *xrt.Team, res *Result, doomed map[int64]bool, items int) {
	team.Run(func(r *xrt.Rank) {
		kept := res.Contigs[r.ID][:0]
		for _, c := range res.Contigs[r.ID] {
			if !doomed[c.ID] {
				kept = append(kept, c)
			}
		}
		res.Contigs[r.ID] = kept
		r.ChargeItems(items/r.N() + 1)
		n := r.AllReduceInt64(int64(len(kept)), func(a, b int64) int64 { return a + b })
		if r.ID == 0 {
			res.NumContigs = n
		}
		r.Barrier()
	})
}

// ClipTips removes tip contigs from res in place: a short contig with
// exactly one dead end whose attached end meets a junction some strictly
// depth-dominant rival also passes through. The rule never removes a
// vertex on the dominant (true-genome) walk — a contig qualifies only by
// being shallow relative to a rival — and is idempotent: removal can only
// shrink junction rival sets, so no contig becomes clippable by a second
// pass.
func ClipTips(team *xrt.Team, res *Result, opt CleanOptions) CleanStats {
	opt = opt.withDefaults()
	recs := gatherCleanRecs(team, res, opt.K)

	type end struct {
		id    int64
		depth float64
	}
	junction := make(map[kmer.Kmer][]end)
	for _, rec := range recs {
		if rec.HasL {
			junction[rec.NbrL] = append(junction[rec.NbrL], end{rec.ID, rec.Depth})
		}
		if rec.HasR {
			junction[rec.NbrR] = append(junction[rec.NbrR], end{rec.ID, rec.Depth})
		}
	}

	doomed := make(map[int64]bool)
	var bases int64
	for _, rec := range recs {
		if rec.Len >= opt.TipMaxLen {
			continue
		}
		// a tip dangles: one end attached to a junction, the other dead.
		// Isolated contigs (both ends dead) are whole low-coverage
		// fragments and are never clipped.
		var at kmer.Kmer
		switch {
		case rec.HasL && !rec.HasR:
			at = rec.NbrL
		case rec.HasR && !rec.HasL:
			at = rec.NbrR
		default:
			continue
		}
		for _, e := range junction[at] {
			if e.id != rec.ID && rec.Depth <= opt.TipDepthRatio*e.depth {
				doomed[rec.ID] = true
				bases += int64(rec.Len)
				break
			}
		}
	}
	pruneContigs(team, res, doomed, len(recs))
	return CleanStats{
		TipsClipped: int64(len(doomed)), BasesRemoved: bases,
		Survivors: res.NumContigs,
	}
}

// PopBubbles removes allelic bubble branches from res in place: contigs
// spanning the same unordered pair of junction k-mers with similar
// lengths are variants of one locus; the depth-dominant branch (ID
// tiebreak) is kept and the rest are popped. Exactly one branch of each
// allelic group survives; since only whole contigs are removed, the
// surviving set's k-mer spectrum stays contained in the input's. A second
// pass finds every group reduced to its winner plus dissimilar-length
// members and removes nothing.
func PopBubbles(team *xrt.Team, res *Result, opt CleanOptions) CleanStats {
	opt = opt.withDefaults()
	recs := gatherCleanRecs(team, res, opt.K)

	type pairKey struct{ a, b kmer.Kmer }
	groups := make(map[pairKey][]cleanRec)
	for _, rec := range recs {
		if !rec.HasL || !rec.HasR || rec.Len > opt.BubbleMaxLen {
			continue
		}
		a, b := rec.NbrL, rec.NbrR
		if b.Less(a) {
			a, b = b, a
		}
		groups[pairKey{a, b}] = append(groups[pairKey{a, b}], rec)
	}

	doomed := make(map[int64]bool)
	var bases int64
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if g[i].Depth != g[j].Depth {
				return g[i].Depth > g[j].Depth
			}
			return g[i].ID < g[j].ID
		})
		ref := g[0].Len
		for _, loser := range g[1:] {
			if loser.Len*3 >= ref*2 && loser.Len*3 <= ref*4 ||
				absInt(loser.Len-ref) <= opt.K {
				doomed[loser.ID] = true
				bases += int64(loser.Len)
			}
		}
	}
	pruneContigs(team, res, doomed, len(recs))
	return CleanStats{
		BubblesPopped: int64(len(doomed)), BasesRemoved: bases,
		Survivors: res.NumContigs,
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// MergeStats summarizes one cross-round pseudo-read merge.
type MergeStats struct {
	// Carried is the number of contigs carried in from earlier rounds.
	Carried int64
	// Represented were dropped because the new round contains them
	// (k-mer containment at the merge k).
	Represented int64
	// PoppedOld were dropped by localized bubble detection: partially
	// contained, with both flanks anchoring inside one new contig.
	PoppedOld int64
	// Rescued were carried forward into the merged set.
	Rescued int64
	// Total is the merged set size.
	Total int64
}

// mergeContainment is the k-mer containment fraction above which a
// carried contig counts as represented by the new round.
const mergeContainment = 0.95

// mergeBubbleBand is the containment fraction above which a partially
// represented carried contig is tested as a localized bubble.
const mergeBubbleBand = 0.5

// pseudoWeightOf derives the pseudo-read weight of a contig assembled at
// k: its mean depth, clamped to [2, 255]. The floor keeps a carried
// contig's k-mers above the MinCount screen of the next round (the whole
// point of carrying it); the cap keeps extreme-depth repeats from
// distorting the next round's counts.
func pseudoWeightOf(c *Contig, k int) uint32 {
	w := int64(math.Round(c.Depth(k)))
	if w < 2 {
		w = 2
	}
	if w > 255 {
		w = 255
	}
	return uint32(w)
}

// MergeRounds folds the carried contig set from earlier iterative-k
// rounds into the current round's cleaned contigs. prev is nil on the
// first round. mergeK is the containment resolution (the sweep's smallest
// k — every contig from any round is at least that long); curK is the
// current round's assembly k, used to stamp pseudo-read weights on the
// new contigs. The returned set is renumbered by content hash, so IDs are
// deterministic regardless of which round or rank produced each contig.
func MergeRounds(team *xrt.Team, prev []*Contig, cur *Result, mergeK, curK int) ([]*Contig, MergeStats) {
	curAll := cur.All()
	for _, c := range curAll {
		if c.PseudoWeight == 0 {
			c.PseudoWeight = pseudoWeightOf(c, curK)
		}
	}

	st := MergeStats{Carried: int64(len(prev))}
	work := 0
	var kept []*Contig
	if len(prev) > 0 {
		// spectrum of the new round at mergeK; each k-mer remembers the
		// smallest containing contig ID so flank anchoring is deterministic
		idx := make(map[kmer.Kmer]int64)
		for _, c := range curAll {
			kmer.ForEach(c.Seq, mergeK, func(_ int, km kmer.Kmer) {
				canon, _ := km.Canonical(mergeK)
				if old, ok := idx[canon]; !ok || c.ID < old {
					idx[canon] = c.ID
				}
				work++
			})
		}
		for _, c := range prev {
			n, hit := 0, 0
			first, last := int64(-1), int64(-1)
			kmer.ForEach(c.Seq, mergeK, func(_ int, km kmer.Kmer) {
				canon, _ := km.Canonical(mergeK)
				id, ok := idx[canon]
				if !ok {
					id = -1
				} else {
					hit++
				}
				if n == 0 {
					first = id
				}
				last = id
				n++
			})
			work += n
			frac := 0.0
			if n > 0 {
				frac = float64(hit) / float64(n)
			}
			switch {
			case frac >= mergeContainment:
				st.Represented++
			case frac >= mergeBubbleBand && first >= 0 && first == last:
				// localized bubble: both flanks anchor in the same new
				// contig, so the carried sequence is an allelic branch the
				// higher-k round (assembled with this contig's pseudo-read
				// support) already resolved
				st.PoppedOld++
			default:
				st.Rescued++
				kept = append(kept, c)
			}
		}
	}

	merged := make([]*Contig, 0, len(curAll)+len(kept))
	merged = append(merged, curAll...)
	merged = append(merged, kept...)
	type keyed struct {
		key contigKey
		c   *Contig
	}
	ks := make([]keyed, len(merged))
	for i, c := range merged {
		ks[i] = keyed{keyOf(c.Seq), c}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key.h1 != ks[j].key.h1 {
			return ks[i].key.h1 < ks[j].key.h1
		}
		if ks[i].key.h2 != ks[j].key.h2 {
			return ks[i].key.h2 < ks[j].key.h2
		}
		return ks[i].c.ID < ks[j].c.ID
	})
	for i, kc := range ks {
		kc.c.ID = int64(i) + 1
		merged[i] = kc.c
	}
	st.Total = int64(len(merged))

	// the merge is computed identically everywhere; charge each rank its
	// share of the spectrum build + carried scan
	team.Run(func(r *xrt.Rank) {
		r.ChargeItems(work/r.N() + 1)
		r.Barrier()
	})
	return merged, st
}

// ResultFromContigs redistributes a merged contig list into a Result,
// dealing contigs round-robin by ID order — the deterministic layout
// downstream stages (scaffolding, output) partition work by.
func ResultFromContigs(team *xrt.Team, cs []*Contig) *Result {
	p := team.Config().Ranks
	out := &Result{Contigs: make([][]*Contig, p)}
	for i, c := range cs {
		out.Contigs[i%p] = append(out.Contigs[i%p], c)
	}
	out.NumContigs = int64(len(cs))
	return out
}

package contig

import (
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

// TestTraversalPerturbedSchedules targets the claim/abort protocol: many
// ranks walk a graph with fork points (so walks collide and the
// wait-or-abort arbitration actually fires) under a sweep of
// schedule-perturbation seeds. Every schedule must produce the same
// canonical contig set as the unperturbed run, each contig must account
// for exactly len-k+1 UU k-mers, and every UU k-mer must land in exactly
// one contig. Run with -race to also catch unsynchronized access on the
// perturbed interleavings.
func TestTraversalPerturbedSchedules(t *testing.T) {
	const k = 21
	rng := xrt.NewPrng(31)
	// shared segments create forks, so several walks meet in the middle
	shared := genome.Random(rng, 300)
	g1 := append(append(genome.Random(rng, 2000), shared...), genome.Random(rng, 2000)...)
	g2 := append(append(genome.Random(rng, 2000), shared...), genome.Random(rng, 2000)...)

	run := func(perturbSeed int64) (map[string]bool, int, int) {
		team := xrt.NewTeam(xrt.Config{
			Ranks:        24,
			RanksPerNode: 6,
			Perturb:      xrt.PerturbPlan{Seed: perturbSeed, StartJitterNs: 30_000, BarrierJitterNs: 8_000, FlushJitterNs: 4_000},
		})
		kt := tableFromSeqs(team, [][]byte{g1, g2}, k)
		res := Run(team, kt, Options{K: k})
		set := make(map[string]bool)
		covered := 0
		seen := make(map[kmer.Kmer]int)
		for _, c := range res.All() {
			set[canonSeq(c.Seq)] = true
			covered += len(c.Seq) - k + 1
			kmer.ForEach(c.Seq, k, func(_ int, km kmer.Kmer) {
				canon, _ := km.Canonical(k)
				seen[canon]++
			})
		}
		uu := 0
		res.Graph.RangeAll(func(km kmer.Kmer, _ Node) bool {
			uu++
			if seen[km] != 1 {
				t.Errorf("perturb seed %d: UU k-mer in %d contigs, want 1", perturbSeed, seen[km])
				return false
			}
			return true
		})
		return set, covered, uu
	}

	baseSet, baseCov, baseUU := run(0) // unperturbed baseline
	if baseCov != baseUU {
		t.Fatalf("baseline: contigs account for %d k-mers, graph has %d", baseCov, baseUU)
	}
	if len(baseSet) < 3 {
		t.Fatalf("baseline: %d contigs, want >= 3 (fork should split)", len(baseSet))
	}
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		set, cov, uu := run(seed)
		if cov != uu {
			t.Fatalf("perturb seed %d: contigs account for %d k-mers, graph has %d", seed, cov, uu)
		}
		if len(set) != len(baseSet) {
			t.Fatalf("perturb seed %d: %d contigs, baseline %d", seed, len(set), len(baseSet))
		}
		for s := range baseSet {
			if !set[s] {
				t.Fatalf("perturb seed %d: contig set diverged from baseline", seed)
			}
		}
	}
}

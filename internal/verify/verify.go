// Package verify is the assembly oracle: it checks pipeline output
// against properties that must hold for any correct Meraculous-style
// assembly of a simulated dataset, without re-running the assembler.
//
// Three check families:
//
//   - Spectrum containment: every k-mer of every contig must occur in the
//     read set. Contigs are built exclusively from k-mers observed at
//     least MinCount times in reads, so a single flipped base anywhere in
//     a contig makes ~k of its k-mers vanish from the read spectrum.
//     (Final scaffolds are exempt: gap closure splices sequences, and the
//     junction k-mers legitimately need not appear in any single read.)
//
//   - Reference placement: against the genome the reads were simulated
//     from, every assembled piece must anchor to one diagonal. Split
//     anchor votes mean a chimeric join (misassembly); mismatched bases
//     at the voted placement bound the per-base error.
//
//   - Gap sizes: an assembled scaffold encodes estimated gap sizes as N
//     runs. Placing the flanking pieces on the reference recovers each
//     gap's true size; estimates must agree within a tolerance.
//
// The package also provides the canonical-set helpers used by the
// metamorphic tests (reverse-complement, read-shuffle, rank-count, and
// schedule-perturbation invariance): assemblies are compared as multisets
// of strand-canonical sequences, the representation in which a correct
// assembler's output is invariant under all of those input transforms.
//
// verify deliberately imports none of the assembler's stages — it sees
// only raw sequences — so it cannot inherit a stage's bugs.
package verify

import (
	"bytes"
	"fmt"
	"sort"

	"hipmer/internal/kmer"
)

// Options configures the oracle.
type Options struct {
	// K is the k-mer length for spectrum and anchoring checks (default 31;
	// the pipeline wires its assembly k here).
	K int
	// Ref is the reference the reads were simulated from. When set, the
	// placement and gap checks run in addition to spectrum containment.
	Ref []byte
	// GapTolerance is the permitted absolute error, in bases, of each
	// scaffold gap estimate versus the reference distance (default 64).
	GapTolerance int
	// MinIdentity is the minimum acceptable identity of placed bases
	// against the reference (default 0.97).
	MinIdentity float64
	// MaxIssues caps the recorded issue details (default 20); further
	// failures are still counted.
	MaxIssues int
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 31
	}
	if o.GapTolerance <= 0 {
		o.GapTolerance = 64
	}
	if o.MinIdentity <= 0 {
		o.MinIdentity = 0.97
	}
	if o.MaxIssues <= 0 {
		o.MaxIssues = 20
	}
	return o
}

// Issue is one concrete oracle failure.
type Issue struct {
	Check  string // "spectrum", "placement", "gap"
	Detail string
}

func (i Issue) String() string { return i.Check + ": " + i.Detail }

// Report is the oracle's verdict. The zero value reports success over
// nothing checked.
type Report struct {
	// Spectrum containment.
	ContigsChecked int
	KmersChecked   int64
	MissingKmers   int64
	// Reference placement.
	Placed        int
	Unplaced      int
	Misassemblies int
	IdentityFrac  float64
	// Gap estimates.
	GapsChecked   int
	GapViolations int

	// Issues lists failure details, capped at Options.MaxIssues; Dropped
	// counts issues beyond the cap.
	Issues  []Issue
	Dropped int

	maxIssues int
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return len(r.Issues) == 0 }

// Err returns nil when the report is clean, or an error summarizing it.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("verify: %d failed checks (first: %s)", len(r.Issues)+r.Dropped, r.Issues[0])
}

// String summarizes the report in one line.
func (r *Report) String() string {
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("FAILED (%d issues)", len(r.Issues)+r.Dropped)
	}
	return fmt.Sprintf(
		"verify %s: %d contigs / %d k-mers spectrum-checked (%d missing), "+
			"%d placed / %d unplaced / %d misassembled, identity %.4f, gaps %d/%d ok",
		status, r.ContigsChecked, r.KmersChecked, r.MissingKmers,
		r.Placed, r.Unplaced, r.Misassemblies, r.IdentityFrac,
		r.GapsChecked-r.GapViolations, r.GapsChecked)
}

func (r *Report) issuef(check, format string, args ...any) {
	max := r.maxIssues
	if max <= 0 {
		max = 20
	}
	if len(r.Issues) >= max {
		r.Dropped++
		return
	}
	r.Issues = append(r.Issues, Issue{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// Input is everything the oracle inspects. Any field may be empty; the
// corresponding checks are skipped.
type Input struct {
	// Contigs are the pre-scaffolding contig sequences.
	Contigs [][]byte
	// Finals are the final scaffold sequences (gap runs as Ns).
	Finals [][]byte
	// Reads are the raw read sequences fed to the assembler.
	Reads [][]byte
}

// Check runs every applicable check and returns the combined report.
func Check(in Input, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{maxIssues: opt.MaxIssues}
	if len(in.Contigs) > 0 && len(in.Reads) > 0 {
		CheckSpectrum(rep, in.Contigs, in.Reads, opt.K)
	}
	if len(opt.Ref) > 0 {
		seqs := in.Finals
		if len(seqs) == 0 {
			seqs = in.Contigs
		}
		CheckPlacement(rep, seqs, opt)
		CheckGaps(rep, in.Finals, opt)
	}
	return rep
}

// CheckSpectrum verifies k-mer spectrum containment: every (canonical)
// k-mer of every contig occurs somewhere in the read set.
func CheckSpectrum(rep *Report, contigs, reads [][]byte, k int) {
	spectrum := make(map[kmer.Kmer]struct{}, 1<<16)
	for _, r := range reads {
		kmer.ForEach(r, k, func(_ int, km kmer.Kmer) {
			canon, _ := km.Canonical(k)
			spectrum[canon] = struct{}{}
		})
	}
	for i, c := range contigs {
		missing, total := 0, 0
		kmer.ForEach(c, k, func(_ int, km kmer.Kmer) {
			total++
			canon, _ := km.Canonical(k)
			if _, ok := spectrum[canon]; !ok {
				missing++
			}
		})
		rep.KmersChecked += int64(total)
		if missing > 0 {
			rep.MissingKmers += int64(missing)
			rep.issuef("spectrum", "contig %d (len %d): %d/%d k-mers absent from the read set",
				i, len(c), missing, total)
		}
	}
	rep.ContigsChecked += len(contigs)
}

// refIndex maps canonical k-mers of the reference to their positions
// (capped per k-mer, as repeats carry no placement signal anyway).
type refIndex struct {
	k   int
	pos map[kmer.Kmer][]int32
	ref []byte
}

func indexRef(ref []byte, k int) *refIndex {
	ix := &refIndex{k: k, pos: make(map[kmer.Kmer][]int32, len(ref)), ref: ref}
	kmer.ForEach(ref, k, func(p int, km kmer.Kmer) {
		canon, _ := km.Canonical(k)
		if hits := ix.pos[canon]; len(hits) < 8 {
			ix.pos[canon] = append(hits, int32(p))
		}
	})
	return ix
}

// place anchors seq on the reference by k-mer diagonal voting on both
// strands. It reports whether any anchor matched, whether the piece is
// chimeric, and the winning offset/orientation.
//
// The chimera test compares support *spans*, not vote counts: a genuine
// repeat places the whole piece on several diagonals (overlapping
// spans — harmless), while a false join places the left part on one
// diagonal and the right part on another with disjoint spans, and no
// diagonal explains both.
func (ix *refIndex) place(seq []byte) (placed, mis bool, offset int, flipped bool) {
	p := ix.placeFull(seq)
	return p.placed, p.mis, p.off, p.flipped
}

// placement is the full anchoring verdict for one piece.
type placement struct {
	placed, mis, flipped bool
	off                  int
	// spanLo/spanHi bound the winning diagonal's anchor support in
	// original-orientation piece coordinates; votes counts its anchors.
	spanLo, spanHi, votes int
	// rivals counts other diagonals with non-trivial support — the piece
	// lies in a repeat and its true locus is ambiguous.
	rivals int
}

func (ix *refIndex) placeFull(seq []byte) placement {
	type diag struct {
		off  int
		flip bool
	}
	// support span in original-orientation piece coordinates
	type span struct {
		votes  int
		lo, hi int
	}
	votes := make(map[diag]*span)
	for strand := 0; strand < 2; strand++ {
		q := seq
		flip := strand == 1
		if flip {
			q = kmer.RevCompString(seq)
		}
		stride := len(q) / 32
		if stride < 1 {
			stride = 1
		}
		for p := 0; p+ix.k <= len(q); p += stride {
			km, ok := kmer.Pack(q[p:], ix.k)
			if !ok {
				continue
			}
			canon, _ := km.Canonical(ix.k)
			for _, rp := range ix.pos[canon] {
				if string(ix.ref[rp:int(rp)+ix.k]) != km.String(ix.k) {
					continue
				}
				orig := p
				if flip {
					orig = len(seq) - ix.k - p
				}
				d := diag{int(rp) - p, flip}
				s := votes[d]
				if s == nil {
					s = &span{lo: orig, hi: orig}
					votes[d] = s
				}
				s.votes++
				if orig < s.lo {
					s.lo = orig
				}
				if orig > s.hi {
					s.hi = orig
				}
			}
		}
	}
	if len(votes) == 0 {
		return placement{}
	}
	var bestD diag
	var best *span
	for d, s := range votes {
		if best == nil || s.votes > best.votes {
			bestD, best = d, s
		}
	}
	// chimeric if some other diagonal supports a region of the piece
	// disjoint from everything the winner explains
	mis := false
	rivals := 0
	for d, s := range votes {
		if d == bestD || s.votes < 2 {
			continue
		}
		rivals++
		if s.lo > best.hi+ix.k || s.hi < best.lo-ix.k {
			mis = true
		}
	}
	return placement{
		placed: true, mis: mis, flipped: bestD.flip, off: bestD.off,
		spanLo: best.lo, spanHi: best.hi, votes: best.votes, rivals: rivals,
	}
}

// CheckPlacement verifies no sequence is chimeric: each gap-free piece of
// each sequence must anchor to a single reference diagonal, and the bases
// at the voted placement must match within Options.MinIdentity.
func CheckPlacement(rep *Report, seqs [][]byte, opt Options) {
	opt = opt.withDefaults()
	ix := indexRef(opt.Ref, opt.K)
	var aligned, mismatched int64
	for si, seq := range seqs {
		for _, pc := range splitAtNs(seq, opt.K) {
			placed, mis, off, flip := ix.place(pc.seq)
			if !placed {
				rep.Unplaced++
				continue
			}
			if mis {
				rep.Misassemblies++
				rep.issuef("placement", "sequence %d piece at %d (len %d): anchor votes split across diagonals",
					si, pc.start, len(pc.seq))
				continue
			}
			rep.Placed++
			q := pc.seq
			if flip {
				q = kmer.RevCompString(q)
			}
			for i := 0; i < len(q); i++ {
				rp := off + i
				if rp < 0 || rp >= len(opt.Ref) || q[i] == 'N' {
					continue
				}
				aligned++
				if q[i] != opt.Ref[rp] {
					mismatched++
				}
			}
		}
	}
	if aligned > 0 {
		rep.IdentityFrac = 1 - float64(mismatched)/float64(aligned)
		if rep.IdentityFrac < opt.MinIdentity {
			rep.issuef("placement", "identity %.4f below %.4f (%d mismatches over %d bases)",
				rep.IdentityFrac, opt.MinIdentity, mismatched, aligned)
		}
	}
}

// piece is a gap-free run of a scaffold with its start coordinate.
type piece struct {
	start int
	seq   []byte
}

func splitAtNs(seq []byte, minLen int) []piece {
	var out []piece
	start := -1
	for i := 0; i <= len(seq); i++ {
		isN := i == len(seq) || seq[i] == 'N'
		if !isN && start < 0 {
			start = i
		}
		if isN && start >= 0 {
			if i-start >= minLen {
				out = append(out, piece{start: start, seq: seq[start:i]})
			}
			start = -1
		}
	}
	return out
}

// CheckGaps verifies scaffold gap estimates: for each scaffold with
// N-run gaps, the flanking pieces are placed on the reference in the
// orientation that places the most pieces; for consecutive placed
// pieces, the scaffold-coordinate distance (flank + estimated gap) must
// match the reference distance within Options.GapTolerance.
//
// Only pieces that anchor decisively take part: at least 2k long, on one
// diagonal (chimeras are CheckPlacement's job), with the winning
// diagonal's anchors spanning most of the piece. Short inter-gap
// fragments carry too few anchors to distinguish their true locus from
// a repeat copy, and a wrong locus would charge the gap estimate with a
// placement artifact.
func CheckGaps(rep *Report, finals [][]byte, opt Options) {
	opt = opt.withDefaults()
	ix := indexRef(opt.Ref, opt.K)
	for si, seq := range finals {
		if !bytes.ContainsRune(seq, 'N') {
			continue
		}
		type placedPiece struct {
			scafStart int
			refOff    int
		}
		best := []placedPiece(nil)
		for strand := 0; strand < 2; strand++ {
			q := seq
			if strand == 1 {
				q = kmer.RevCompString(seq)
			}
			var cur []placedPiece
			for _, pc := range splitAtNs(q, 2*opt.K) {
				p := ix.placeFull(pc.seq)
				anchored := p.placed && !p.mis && !p.flipped && p.rivals == 0 &&
					2*(p.spanHi-p.spanLo+opt.K) >= len(pc.seq)
				if anchored {
					cur = append(cur, placedPiece{scafStart: pc.start, refOff: p.off})
				}
			}
			if len(cur) > len(best) {
				best = cur
			}
		}
		for i := 1; i < len(best); i++ {
			rep.GapsChecked++
			scafDelta := best[i].scafStart - best[i-1].scafStart
			refDelta := best[i].refOff - best[i-1].refOff
			if d := refDelta - scafDelta; d > opt.GapTolerance || d < -opt.GapTolerance {
				rep.GapViolations++
				rep.issuef("gap", "scaffold %d: gap before piece at %d estimated %+d bases off (tolerance %d)",
					si, best[i].scafStart, scafDelta-refDelta, opt.GapTolerance)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Canonical-set helpers for metamorphic comparisons.

// CanonicalSeq returns the lexicographically smaller of a sequence and
// its reverse complement — the strand-independent identity of a contig.
func CanonicalSeq(s []byte) string {
	rc := kmer.RevCompString(s)
	if bytes.Compare(rc, s) < 0 {
		return string(rc)
	}
	return string(s)
}

// CanonicalSet maps sequences to the multiset of their canonical forms.
func CanonicalSet(seqs [][]byte) map[string]int {
	m := make(map[string]int, len(seqs))
	for _, s := range seqs {
		m[CanonicalSeq(s)]++
	}
	return m
}

// EqualSets reports whether two canonical multisets are identical.
func EqualSets(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for s, n := range a {
		if b[s] != n {
			return false
		}
	}
	return true
}

// DiffSets describes how two canonical multisets differ, for test
// failure messages (at most a few entries each way).
func DiffSets(a, b map[string]int) string {
	var onlyA, onlyB []string
	for s, n := range a {
		if b[s] != n {
			onlyA = append(onlyA, fmt.Sprintf("len %d ×%d (other ×%d)", len(s), n, b[s]))
		}
	}
	for s, n := range b {
		if a[s] != n {
			onlyB = append(onlyB, fmt.Sprintf("len %d ×%d (other ×%d)", len(s), n, a[s]))
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	const cap = 5
	if len(onlyA) > cap {
		onlyA = append(onlyA[:cap], "...")
	}
	if len(onlyB) > cap {
		onlyB = append(onlyB[:cap], "...")
	}
	return fmt.Sprintf("a: %d seqs, b: %d seqs; a-side diffs %v; b-side diffs %v",
		len(a), len(b), onlyA, onlyB)
}

// Metamorphic properties of the assembler: transformations of the input
// that must not change the assembled canonical contig set. These live in
// an external test package because they drive the full pipeline, which
// itself imports verify.
package verify_test

import (
	"fmt"
	"testing"

	"hipmer/internal/fastq"
	"hipmer/internal/kmer"
	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// contigSet assembles libs in contigs-only mode at the given rank count
// and returns the canonical contig multiset.
func contigSet(t *testing.T, libs []pipeline.Library, ranks int) map[string]int {
	t.Helper()
	team := xrt.NewTeam(xrt.Config{Ranks: ranks, RanksPerNode: 4})
	res, err := pipeline.Run(team, libs, pipeline.Config{K: 21, MinCount: 3, ContigsOnly: true})
	if err != nil {
		t.Fatalf("pipeline at %d ranks: %v", ranks, err)
	}
	return verify.CanonicalSet(res.FinalSeqs)
}

// TestRankCountInvariance asserts R = 1, 4, 16 produce identical
// canonical contig sets on both evaluation datasets: partitioning the
// work differently must not change what is assembled.
func TestRankCountInvariance(t *testing.T) {
	type dataset struct {
		name string
		libs []pipeline.Library
	}
	_, human := pipeline.SimulatedHuman(100, 20000, 25)
	_, wheat := pipeline.SimulatedWheat(101, 15000, 22)
	datasets := []dataset{{"human", human}, {"wheat", wheat}}
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			base := contigSet(t, ds.libs, 1)
			if len(base) == 0 {
				t.Fatal("no contigs assembled")
			}
			for _, ranks := range []int{4, 16} {
				got := contigSet(t, ds.libs, ranks)
				if !verify.EqualSets(base, got) {
					t.Fatalf("contig set at %d ranks differs from 1 rank: %s",
						ranks, verify.DiffSets(base, got))
				}
			}
		})
	}
}

// rcLibs reverse-complements every read (reversing qualities to keep
// them aligned with the bases).
func rcLibs(libs []pipeline.Library) []pipeline.Library {
	out := make([]pipeline.Library, len(libs))
	for i, lib := range libs {
		out[i] = lib
		out[i].Records = make([]fastq.Record, len(lib.Records))
		for j, rec := range lib.Records {
			q := make([]byte, len(rec.Qual))
			for n := range rec.Qual {
				q[len(q)-1-n] = rec.Qual[n]
			}
			out[i].Records[j] = fastq.Record{ID: rec.ID, Seq: kmer.RevCompString(rec.Seq), Qual: q}
		}
	}
	return out
}

// TestReverseComplementInvariance asserts reverse-complementing every
// read leaves the canonical contig set unchanged: DNA has no canonical
// strand, and neither may the assembler.
func TestReverseComplementInvariance(t *testing.T) {
	_, libs := pipeline.SimulatedHuman(102, 18000, 25)
	base := contigSet(t, libs, 6)
	if len(base) == 0 {
		t.Fatal("no contigs assembled")
	}
	got := contigSet(t, rcLibs(libs), 6)
	if !verify.EqualSets(base, got) {
		t.Fatalf("reverse-complemented reads changed the assembly: %s",
			verify.DiffSets(base, got))
	}
}

// shuffleLibs deterministically permutes read pairs (mates stay
// adjacent and ordered).
func shuffleLibs(libs []pipeline.Library, seed int64) []pipeline.Library {
	rng := xrt.NewPrng(seed)
	out := make([]pipeline.Library, len(libs))
	for i, lib := range libs {
		out[i] = lib
		pairs := len(lib.Records) / 2
		perm := rng.Perm(pairs)
		out[i].Records = make([]fastq.Record, 0, len(lib.Records))
		for _, p := range perm {
			out[i].Records = append(out[i].Records, lib.Records[2*p], lib.Records[2*p+1])
		}
	}
	return out
}

// TestReadShuffleInvariance asserts the order reads arrive in — and
// therefore which rank processes which read — does not change the
// canonical contig set.
func TestReadShuffleInvariance(t *testing.T) {
	_, libs := pipeline.SimulatedHuman(103, 18000, 25)
	base := contigSet(t, libs, 6)
	if len(base) == 0 {
		t.Fatal("no contigs assembled")
	}
	for _, seed := range []int64{1, 2} {
		got := contigSet(t, shuffleLibs(libs, seed), 6)
		if !verify.EqualSets(base, got) {
			t.Fatalf("shuffle seed %d changed the assembly: %s",
				seed, verify.DiffSets(base, got))
		}
	}
}

// TestOracleOnFullPipeline runs the end-to-end pipeline with the oracle
// attached: the report must be clean against the simulated reference.
func TestOracleOnFullPipeline(t *testing.T) {
	ref, libs := pipeline.SimulatedHuman(104, 20000, 30)
	team := xrt.NewTeam(xrt.Config{Ranks: 6, RanksPerNode: 3})
	res, err := pipeline.Run(team, libs, pipeline.Config{
		K: 21, MinCount: 3,
		Verify: &verify.Options{Ref: ref},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("no report attached")
	}
	if !res.Verify.OK() {
		t.Fatalf("oracle failed on a real assembly: %s", res.Verify)
	}
	if res.Verify.ContigsChecked == 0 || res.Verify.Placed == 0 {
		t.Fatalf("oracle checked nothing: %s", res.Verify)
	}
	fmt.Println(res.Verify) // visible with -v: what a clean report looks like
}

package verify

import (
	"bytes"
	"strings"
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/kmer"
	"hipmer/internal/xrt"
)

const tk = 21

// tile cuts overlapping windows from g on both strands, standing in for
// an error-free read set that covers every k-mer of g.
func tile(g []byte, readLen, step int) [][]byte {
	var reads [][]byte
	for i := 0; i+readLen <= len(g); i += step {
		reads = append(reads, g[i:i+readLen])
		reads = append(reads, kmer.RevCompString(g[i:i+readLen]))
	}
	return reads
}

func testOpts(ref []byte) Options {
	return Options{K: tk, Ref: ref}
}

func TestSpectrumCleanOnExactPieces(t *testing.T) {
	g := genome.Random(xrt.NewPrng(1), 20000)
	reads := tile(g, 100, 50)
	contigs := [][]byte{g[100:4000], kmer.RevCompString(g[5000:9000]), g[12000:19000]}
	rep := &Report{}
	CheckSpectrum(rep, contigs, reads, tk)
	if !rep.OK() {
		t.Fatalf("clean contigs flagged: %v", rep.Issues)
	}
	if rep.ContigsChecked != 3 || rep.KmersChecked == 0 || rep.MissingKmers != 0 {
		t.Fatalf("bad accounting: %+v", rep)
	}
}

func TestSpectrumCatchesFlippedBase(t *testing.T) {
	g := genome.Random(xrt.NewPrng(2), 20000)
	reads := tile(g, 100, 50)
	bad := append([]byte(nil), g[100:4000]...)
	mid := len(bad) / 2
	// flip one base to a different one
	for _, b := range []byte("ACGT") {
		if b != bad[mid] {
			bad[mid] = b
			break
		}
	}
	rep := &Report{}
	CheckSpectrum(rep, [][]byte{bad}, reads, tk)
	if rep.OK() {
		t.Fatal("flipped base not caught")
	}
	// a single substitution kills the k k-mers spanning it
	if rep.MissingKmers != tk {
		t.Fatalf("missing %d k-mers, want %d", rep.MissingKmers, tk)
	}
	if rep.Issues[0].Check != "spectrum" {
		t.Fatalf("wrong check flagged: %v", rep.Issues[0])
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "spectrum") {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

func TestPlacementCleanOnExactPieces(t *testing.T) {
	g := genome.Random(xrt.NewPrng(3), 30000)
	seqs := [][]byte{g[500:6000], kmer.RevCompString(g[8000:15000]), g[20000:29000]}
	rep := &Report{}
	CheckPlacement(rep, seqs, testOpts(g))
	if !rep.OK() {
		t.Fatalf("clean placement flagged: %v", rep.Issues)
	}
	if rep.Placed != 3 || rep.Misassemblies != 0 || rep.Unplaced != 0 {
		t.Fatalf("bad accounting: %+v", rep)
	}
	if rep.IdentityFrac != 1 {
		t.Fatalf("identity %.4f, want 1", rep.IdentityFrac)
	}
}

func TestPlacementCatchesFalseJoin(t *testing.T) {
	g := genome.Random(xrt.NewPrng(4), 30000)
	// a chimeric sequence joining two distant loci with no gap between
	join := append(append([]byte(nil), g[2000:4000]...), g[20000:22000]...)
	rep := &Report{}
	CheckPlacement(rep, [][]byte{join}, testOpts(g))
	if rep.Misassemblies != 1 {
		t.Fatalf("false join not flagged: %+v", rep)
	}
	if rep.OK() {
		t.Fatal("report claims OK despite misassembly")
	}
}

func TestPlacementCatchesLowIdentity(t *testing.T) {
	g := genome.Random(xrt.NewPrng(5), 20000)
	// 5% divergence: anchors still vote one diagonal, but base identity
	// drops far below MinIdentity
	mut := genome.Mutate(xrt.NewPrng(6), g[1000:9000], 0.05)
	rep := &Report{}
	CheckPlacement(rep, [][]byte{mut}, testOpts(g))
	if rep.OK() {
		t.Fatalf("5%% divergent sequence passed: identity %.4f", rep.IdentityFrac)
	}
}

func TestGapEstimatesWithinTolerance(t *testing.T) {
	g := genome.Random(xrt.NewPrng(7), 30000)
	mkScaffold := func(gapEstimate int) []byte {
		// two pieces whose true reference distance is 2000 (piece 1 ends
		// at 3000, piece 2 starts at 5000), joined by an estimated gap
		s := append([]byte(nil), g[1000:3000]...)
		s = append(s, bytes.Repeat([]byte{'N'}, gapEstimate)...)
		return append(s, g[5000:8000]...)
	}
	rep := &Report{}
	CheckGaps(rep, [][]byte{mkScaffold(2000)}, testOpts(g))
	if !rep.OK() || rep.GapsChecked != 1 || rep.GapViolations != 0 {
		t.Fatalf("exact gap flagged: %+v %v", rep, rep.Issues)
	}
	rep = &Report{}
	CheckGaps(rep, [][]byte{mkScaffold(2030)}, testOpts(g))
	if !rep.OK() {
		t.Fatalf("gap off by 30 (within default tolerance 64) flagged: %v", rep.Issues)
	}
	rep = &Report{}
	CheckGaps(rep, [][]byte{mkScaffold(2300)}, testOpts(g))
	if rep.GapViolations != 1 {
		t.Fatalf("gap off by 300 not flagged: %+v", rep)
	}
	// orientation selection: the reverse-complement scaffold checks the
	// same gaps
	rep = &Report{}
	CheckGaps(rep, [][]byte{kmer.RevCompString(mkScaffold(2300))}, testOpts(g))
	if rep.GapViolations != 1 {
		t.Fatalf("gap violation missed on reverse-strand scaffold: %+v", rep)
	}
}

func TestCheckCombinesEverything(t *testing.T) {
	g := genome.Random(xrt.NewPrng(8), 20000)
	reads := tile(g, 100, 50)
	contigs := [][]byte{g[100:5000], g[6000:12000]}
	scaffold := append(append(append([]byte(nil), g[100:5000]...),
		bytes.Repeat([]byte{'N'}, 1000)...), g[6000:12000]...)
	rep := Check(Input{Contigs: contigs, Finals: [][]byte{scaffold}, Reads: reads},
		testOpts(g))
	if !rep.OK() {
		t.Fatalf("clean assembly flagged: %v", rep.Issues)
	}
	if rep.ContigsChecked != 2 || rep.Placed == 0 || rep.GapsChecked != 1 {
		t.Fatalf("checks skipped: %+v", rep)
	}
	if !strings.Contains(rep.String(), "verify ok") {
		t.Fatalf("summary: %s", rep.String())
	}
	// empty input: trivially OK, nothing checked
	empty := Check(Input{}, Options{})
	if !empty.OK() || empty.ContigsChecked != 0 || empty.Err() != nil {
		t.Fatalf("empty input: %+v", empty)
	}
}

func TestIssueCapCountsDropped(t *testing.T) {
	g := genome.Random(xrt.NewPrng(9), 5000)
	reads := tile(g, 100, 50)
	junk := genome.Random(xrt.NewPrng(10), 100) // shares no k-mers with g
	var contigs [][]byte
	for i := 0; i < 30; i++ {
		contigs = append(contigs, junk)
	}
	rep := Check(Input{Contigs: contigs, Reads: reads}, Options{K: tk, MaxIssues: 4})
	if len(rep.Issues) != 4 || rep.Dropped != 26 {
		t.Fatalf("issue cap: %d kept, %d dropped", len(rep.Issues), rep.Dropped)
	}
}

func TestCanonicalSetHelpers(t *testing.T) {
	a := []byte("ACGGTACCAGT")
	rc := kmer.RevCompString(a)
	if CanonicalSeq(a) != CanonicalSeq(rc) {
		t.Fatal("canonical form is strand-dependent")
	}
	s1 := CanonicalSet([][]byte{a, []byte("TTTTAAAC"), a})
	s2 := CanonicalSet([][]byte{[]byte("TTTTAAAC"), rc, kmer.RevCompString(a)})
	if !EqualSets(s1, s2) {
		t.Fatalf("equal multisets reported different: %s", DiffSets(s1, s2))
	}
	s3 := CanonicalSet([][]byte{a, []byte("TTTTAAAC")})
	if EqualSets(s1, s3) {
		t.Fatal("different multiplicities reported equal")
	}
	if DiffSets(s1, s3) == "" {
		t.Fatal("empty diff for differing sets")
	}
}

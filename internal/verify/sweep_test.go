// Schedule-perturbation sweeps: the end-to-end assembly must be
// bit-identical under every deterministic schedule perturbation. A
// divergence here means some stage let goroutine interleaving leak into
// its output — exactly the class of bug the claim/abort traversal and
// the DHT phase discipline are designed to exclude.
package verify_test

import (
	"bytes"
	"testing"

	"hipmer/internal/pipeline"
	"hipmer/internal/verify"
	"hipmer/internal/xrt"
)

// runPerturbed assembles libs end-to-end under one perturbation plan.
func runPerturbed(t *testing.T, libs []pipeline.Library, plan xrt.PerturbPlan, vopt *verify.Options) *pipeline.Result {
	t.Helper()
	team := xrt.NewTeam(xrt.Config{Ranks: 8, RanksPerNode: 4, Seed: 3, Perturb: plan})
	res, err := pipeline.Run(team, libs, pipeline.Config{
		K: 21, MinCount: 3, Verify: vopt,
	})
	if err != nil {
		t.Fatalf("pipeline under plan %+v: %v", plan, err)
	}
	return res
}

// TestPerturbSeedSweepBitIdenticalAssembly sweeps 8 distinct
// perturbation seeds over the full pipeline (k-mer analysis, contigs,
// scaffolding, gap closing) and asserts every final sequence is
// byte-for-byte identical to the unperturbed run's. The unperturbed run
// also passes the assembly oracle against the simulated reference.
func TestPerturbSeedSweepBitIdenticalAssembly(t *testing.T) {
	ref, libs := pipeline.SimulatedHuman(7, 12000, 25)
	base := runPerturbed(t, libs, xrt.PerturbPlan{}, &verify.Options{Ref: ref})
	if len(base.FinalSeqs) == 0 {
		t.Fatal("baseline assembled nothing")
	}
	if !base.Verify.OK() {
		t.Fatalf("baseline fails the oracle: %s", base.Verify)
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 0x5eed}
	for _, seed := range seeds {
		plan := xrt.PerturbPlan{Seed: seed}
		if testing.Short() {
			// smaller jitters keep -short fast; the seeds still differ
			plan.StartJitterNs, plan.BarrierJitterNs, plan.FlushJitterNs = 10_000, 3_000, 1_500
		}
		res := runPerturbed(t, libs, plan, nil)
		if len(res.FinalSeqs) != len(base.FinalSeqs) {
			t.Fatalf("perturb seed %d: %d sequences, baseline %d",
				seed, len(res.FinalSeqs), len(base.FinalSeqs))
		}
		for i := range res.FinalSeqs {
			if !bytes.Equal(res.FinalSeqs[i], base.FinalSeqs[i]) {
				t.Fatalf("perturb seed %d: sequence %d differs from baseline (len %d vs %d)",
					seed, i, len(res.FinalSeqs[i]), len(base.FinalSeqs[i]))
			}
		}
	}
}

// TestPerturbContigSetAcrossRankCounts combines both metamorphic axes:
// for each rank count, a perturbed and an unperturbed run must agree,
// and all rank counts must produce one canonical contig set.
func TestPerturbContigSetAcrossRankCounts(t *testing.T) {
	_, libs := pipeline.SimulatedHuman(8, 12000, 25)
	var base map[string]int
	for _, ranks := range []int{1, 4, 16} {
		for _, seed := range []int64{0, 9} {
			team := xrt.NewTeam(xrt.Config{
				Ranks: ranks, RanksPerNode: 4,
				Perturb: xrt.PerturbPlan{Seed: seed},
			})
			res, err := pipeline.Run(team, libs, pipeline.Config{K: 21, MinCount: 3, ContigsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			set := verify.CanonicalSet(res.FinalSeqs)
			if base == nil {
				base = set
				continue
			}
			if !verify.EqualSets(base, set) {
				t.Fatalf("ranks %d perturb %d: contig set diverged: %s",
					ranks, seed, verify.DiffSets(base, set))
			}
		}
	}
}

// Abundance-aware oracle extensions for metagenome assemblies. A
// single-reference placement check cannot judge a metagenome: the
// "reference" is many genomes at wildly uneven abundances, contigs
// legitimately stop at inter-species repeat boundaries, and the
// interesting recovery question is per species, not global. CheckMeta
// judges an assembly against the species set the reads were simulated
// from:
//
//   - Per-species genome fraction: what share of each species' distinct
//     canonical k-mers the assembly contains. Low-abundance species are
//     exactly where iterative-k assembly must beat single-k, so the
//     report keeps the per-species breakdown (and LowestQuartile /
//     MeanFraction make the comparison one line in a test).
//
//   - Cross-species joins: a contig holding several k-mers unique to
//     species A and several unique to species B spliced two organisms —
//     unless the contig also holds k-mers shared between species, in
//     which case it walked an inter-species repeat and the join is
//     tolerated, not a misassembly.
//
// Like the rest of the package, this file sees only raw sequences and
// imports none of the assembler's stages.
package verify

import (
	"fmt"
	"sort"

	"hipmer/internal/kmer"
)

// Species is one reference organism of a simulated metagenome.
type Species struct {
	Name string
	Seq  []byte
	// Abundance is the species' relative abundance (coverage weight) in
	// the simulated community.
	Abundance float64
}

// SpeciesRecovery is one species' recovery verdict.
type SpeciesRecovery struct {
	Name      string
	Abundance float64
	// Kmers is the species' distinct canonical k-mer count; Covered of
	// them occur in the assembly; Fraction = Covered/Kmers.
	Kmers    int
	Covered  int
	Fraction float64
}

// MetaReport is the abundance-aware oracle's verdict.
type MetaReport struct {
	// PerSpecies holds one recovery record per input species, in input
	// order.
	PerSpecies []SpeciesRecovery
	// CrossJoins counts contigs that splice k-mers unique to two
	// different species with no inter-species-shared k-mer to explain
	// the junction — metagenome misassemblies.
	CrossJoins int
	// ToleratedJoins counts multi-species contigs explained by shared
	// k-mers (inter-species repeats), which are not misassemblies.
	ToleratedJoins int

	Issues  []Issue
	Dropped int

	maxIssues int
}

// OK reports whether no misassembly was found.
func (r *MetaReport) OK() bool { return len(r.Issues) == 0 }

// Err returns nil when the report is clean, or a summarizing error.
func (r *MetaReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("verify: %d metagenome issues (first: %s)",
		len(r.Issues)+r.Dropped, r.Issues[0])
}

// String summarizes the report in one line.
func (r *MetaReport) String() string {
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("FAILED (%d issues)", len(r.Issues)+r.Dropped)
	}
	var mean float64
	for _, s := range r.PerSpecies {
		mean += s.Fraction
	}
	if len(r.PerSpecies) > 0 {
		mean /= float64(len(r.PerSpecies))
	}
	return fmt.Sprintf("verify-meta %s: %d species, mean fraction %.4f, "+
		"%d cross-joins (%d tolerated)",
		status, len(r.PerSpecies), mean, r.CrossJoins, r.ToleratedJoins)
}

func (r *MetaReport) issuef(check, format string, args ...any) {
	max := r.maxIssues
	if max <= 0 {
		max = 20
	}
	if len(r.Issues) >= max {
		r.Dropped++
		return
	}
	r.Issues = append(r.Issues, Issue{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// ownerShared marks a k-mer occurring in more than one species.
const ownerShared = int32(-1)

// minAnchorKmers is how many distinct unique k-mers of a species a
// contig must hold before the species counts as "present" in it; fewer
// are noise (a stray shared-looking k-mer below the sharing detector's
// resolution must not flag a chimera).
const minAnchorKmers = 4

// CheckMeta runs the abundance-aware checks: per-species genome
// fraction and cross-species join detection. opt supplies K and
// MaxIssues; Ref is ignored (the species are the reference).
func CheckMeta(seqs [][]byte, species []Species, opt Options) *MetaReport {
	opt = opt.withDefaults()
	rep := &MetaReport{maxIssues: opt.MaxIssues}

	// owner: canonical k-mer -> unique species index, or ownerShared.
	owner := make(map[kmer.Kmer]int32, 1<<16)
	perSpecies := make([]map[kmer.Kmer]struct{}, len(species))
	for si, sp := range species {
		set := make(map[kmer.Kmer]struct{}, len(sp.Seq))
		kmer.ForEach(sp.Seq, opt.K, func(_ int, km kmer.Kmer) {
			canon, _ := km.Canonical(opt.K)
			set[canon] = struct{}{}
		})
		perSpecies[si] = set
		for km := range set {
			if prev, ok := owner[km]; ok && prev != int32(si) {
				owner[km] = ownerShared
			} else {
				owner[km] = int32(si)
			}
		}
	}

	// Assembly spectrum, and per-contig species attribution.
	assembled := make(map[kmer.Kmer]struct{}, 1<<16)
	for ci, seq := range seqs {
		counts := map[int32]int{}
		sharedHits := 0
		kmer.ForEach(seq, opt.K, func(_ int, km kmer.Kmer) {
			canon, _ := km.Canonical(opt.K)
			assembled[canon] = struct{}{}
			o, ok := owner[canon]
			if !ok {
				return
			}
			if o == ownerShared {
				sharedHits++
			} else {
				counts[o]++
			}
		})
		var present []int32
		for o, n := range counts {
			if n >= minAnchorKmers {
				present = append(present, o)
			}
		}
		if len(present) >= 2 {
			if sharedHits > 0 {
				rep.ToleratedJoins++
			} else {
				rep.CrossJoins++
				sort.Slice(present, func(a, b int) bool { return present[a] < present[b] })
				rep.issuef("meta-join",
					"contig %d (len %d) splices %d species (e.g. %s and %s) with no shared k-mer",
					ci, len(seq), len(present),
					species[present[0]].Name, species[present[1]].Name)
			}
		}
	}

	for si, sp := range species {
		rec := SpeciesRecovery{Name: sp.Name, Abundance: sp.Abundance,
			Kmers: len(perSpecies[si])}
		for km := range perSpecies[si] {
			if _, ok := assembled[km]; ok {
				rec.Covered++
			}
		}
		if rec.Kmers > 0 {
			rec.Fraction = float64(rec.Covered) / float64(rec.Kmers)
		}
		rep.PerSpecies = append(rep.PerSpecies, rec)
	}
	return rep
}

// LowestQuartile returns the indices of the species in the lowest
// abundance quartile (ceil(n/4), at least one), most rare first. Ties
// break by input order, so the selection is deterministic.
func LowestQuartile(species []Species) []int {
	idx := make([]int, len(species))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return species[idx[a]].Abundance < species[idx[b]].Abundance
	})
	nq := (len(species) + 3) / 4
	if nq < 1 {
		nq = 1
	}
	return idx[:nq]
}

// MeanFraction averages the recovered genome fraction over the given
// species indices (by input order, as in PerSpecies).
func (r *MetaReport) MeanFraction(idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		sum += r.PerSpecies[i].Fraction
	}
	return sum / float64(len(idx))
}

package verify

import (
	"bytes"
	"strings"
	"testing"

	"hipmer/internal/genome"
	"hipmer/internal/xrt"
)

// metaSpecies builds n random species with distinct abundances; with
// length 400 and k=21 their k-mer sets are disjoint with overwhelming
// probability, so each genome's k-mers are unique to it.
func metaSpecies(seed int64, n, length int) []Species {
	rng := xrt.NewPrng(seed)
	sp := make([]Species, n)
	for i := range sp {
		sp[i] = Species{
			Name:      string(rune('A' + i)),
			Seq:       genome.Random(rng, length),
			Abundance: float64(n - i), // A most abundant, last rarest
		}
	}
	return sp
}

// TestCheckMetaFullRecovery: assembling each species' exact genome
// recovers fraction 1.0 everywhere with no joins.
func TestCheckMetaFullRecovery(t *testing.T) {
	sp := metaSpecies(1, 4, 400)
	seqs := make([][]byte, len(sp))
	for i, s := range sp {
		seqs[i] = s.Seq
	}
	rep := CheckMeta(seqs, sp, Options{K: 21})
	if !rep.OK() || rep.CrossJoins != 0 {
		t.Fatalf("clean assembly flagged: %s", rep)
	}
	for _, r := range rep.PerSpecies {
		if r.Fraction != 1.0 {
			t.Fatalf("species %s fraction %.3f, want 1.0", r.Name, r.Fraction)
		}
		if r.Covered != r.Kmers || r.Kmers == 0 {
			t.Fatalf("species %s covered %d of %d", r.Name, r.Covered, r.Kmers)
		}
	}
}

// TestCheckMetaPartialRecovery: covering only half a genome reports a
// proportional fraction and never a join.
func TestCheckMetaPartialRecovery(t *testing.T) {
	sp := metaSpecies(2, 2, 400)
	seqs := [][]byte{sp[0].Seq, sp[1].Seq[:200]}
	rep := CheckMeta(seqs, sp, Options{K: 21})
	if rep.CrossJoins != 0 {
		t.Fatalf("partial recovery flagged as join: %s", rep)
	}
	f := rep.PerSpecies[1].Fraction
	if f <= 0.3 || f >= 0.7 {
		t.Fatalf("half-genome fraction %.3f, want ~0.47", f)
	}
	if rep.PerSpecies[0].Fraction != 1.0 {
		t.Fatalf("full species fraction %.3f", rep.PerSpecies[0].Fraction)
	}
}

// TestCheckMetaCrossJoin: a contig splicing two species with no shared
// k-mer bridging them is a misassembly.
func TestCheckMetaCrossJoin(t *testing.T) {
	sp := metaSpecies(3, 3, 400)
	chimera := append(append([]byte{}, sp[0].Seq[:100]...), sp[1].Seq[:100]...)
	rep := CheckMeta([][]byte{chimera}, sp, Options{K: 21})
	if rep.CrossJoins != 1 || rep.OK() {
		t.Fatalf("chimera not flagged: %s", rep)
	}
	if !strings.Contains(rep.Issues[0].Detail, "splices") {
		t.Fatalf("issue detail: %s", rep.Issues[0].Detail)
	}
	if err := rep.Err(); err == nil {
		t.Fatal("Err() nil on failing report")
	}
}

// TestCheckMetaToleratedJoin: when the junction region is genuinely
// shared between the two species (an inter-species repeat), the join is
// tolerated, not a misassembly.
func TestCheckMetaToleratedJoin(t *testing.T) {
	rng := xrt.NewPrng(4)
	repeat := genome.Random(rng, 60)
	a := append(append(append([]byte{}, genome.Random(rng, 200)...), repeat...), genome.Random(rng, 200)...)
	b := append(append(append([]byte{}, genome.Random(rng, 200)...), repeat...), genome.Random(rng, 200)...)
	sp := []Species{
		{Name: "A", Seq: a, Abundance: 2},
		{Name: "B", Seq: b, Abundance: 1},
	}
	// A contig walking from A's flank across the repeat into B's flank:
	// exactly how an assembler legitimately traverses a shared region.
	join := append(append(append([]byte{}, a[150:200]...), repeat...), b[260:310]...)
	rep := CheckMeta([][]byte{join}, sp, Options{K: 21})
	if rep.CrossJoins != 0 || rep.ToleratedJoins != 1 {
		t.Fatalf("repeat-bridged join misclassified: %s", rep)
	}
	if !rep.OK() {
		t.Fatalf("tolerated join produced issues: %s", rep)
	}
}

// TestCheckMetaAnchorThreshold: fewer than minAnchorKmers stray k-mers
// of a second species must not flag a chimera.
func TestCheckMetaAnchorThreshold(t *testing.T) {
	sp := metaSpecies(5, 2, 400)
	// 23 bases of species B contribute 3 k-mers at k=21 — below the
	// 4-k-mer anchor floor.
	graze := append(append([]byte{}, sp[0].Seq...), sp[1].Seq[:23]...)
	rep := CheckMeta([][]byte{graze}, sp, Options{K: 21})
	if rep.CrossJoins != 0 {
		t.Fatalf("sub-anchor contamination flagged: %s", rep)
	}
}

// TestLowestQuartile: selection size is ceil(n/4) with a floor of one,
// ordered rarest first, ties broken by input order.
func TestLowestQuartile(t *testing.T) {
	mk := func(ab ...float64) []Species {
		sp := make([]Species, len(ab))
		for i, a := range ab {
			sp[i] = Species{Abundance: a}
		}
		return sp
	}
	cases := []struct {
		ab   []float64
		want []int
	}{
		{[]float64{5, 1, 3}, []int{1}},
		{[]float64{4, 3, 2, 1}, []int{3}},
		{[]float64{9, 8, 7, 6, 5}, []int{4, 3}},
		{[]float64{1, 1, 2, 2, 3, 3, 4, 4}, []int{0, 1}},
		{[]float64{7}, []int{0}},
	}
	for _, c := range cases {
		got := LowestQuartile(mk(c.ab...))
		if len(got) != len(c.want) {
			t.Fatalf("quartile(%v) = %v, want %v", c.ab, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("quartile(%v) = %v, want %v", c.ab, got, c.want)
			}
		}
	}
}

// TestMeanFraction: averages over the given index subset only.
func TestMeanFraction(t *testing.T) {
	rep := &MetaReport{PerSpecies: []SpeciesRecovery{
		{Fraction: 1.0}, {Fraction: 0.5}, {Fraction: 0.0},
	}}
	if m := rep.MeanFraction([]int{0, 1}); m != 0.75 {
		t.Fatalf("mean = %v, want 0.75", m)
	}
	if m := rep.MeanFraction(nil); m != 0 {
		t.Fatalf("mean of empty = %v", m)
	}
}

// TestCheckMetaIssueCap: MaxIssues bounds the stored issue list; the
// rest are counted as Dropped and still reflected in Err.
func TestCheckMetaIssueCap(t *testing.T) {
	sp := metaSpecies(6, 4, 400)
	var chims [][]byte
	for i := 0; i < 5; i++ {
		c := append(append([]byte{}, sp[0].Seq[i*20:i*20+100]...), sp[1].Seq[i*20:i*20+100]...)
		chims = append(chims, c)
	}
	rep := CheckMeta(chims, sp, Options{K: 21, MaxIssues: 2})
	if rep.CrossJoins != 5 {
		t.Fatalf("cross-joins = %d, want 5", rep.CrossJoins)
	}
	if len(rep.Issues) != 2 || rep.Dropped != 3 {
		t.Fatalf("issues %d / dropped %d, want 2 / 3", len(rep.Issues), rep.Dropped)
	}
	if !strings.Contains(rep.String(), "FAILED") {
		t.Fatalf("String() = %s", rep.String())
	}
	if !bytes.Contains([]byte(rep.Err().Error()), []byte("5 metagenome issues")) {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

// FuzzReshardDecode lives in an external test package so its seed
// corpus can come from real checkpoints: it runs tiny single-k and
// multi-k pipelines (package pipeline imports ckpt, so an internal test
// would cycle) and feeds every stage payload they wrote to the
// re-sharding decoders under arbitrary target rank counts.
package ckpt_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hipmer/internal/ckpt"
	"hipmer/internal/genome"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// realStagePayloads checkpoints a tiny single-k pipeline and a tiny
// multi-k (round-tagged) pipeline at 3 ranks and returns every stage
// payload written, cached across fuzz workers. Failures just shrink the
// corpus — the fuzz target still runs on the synthetic seeds.
var realStagePayloads = sync.OnceValue(func() [][]byte {
	team := func() *xrt.Team {
		return xrt.NewTeam(xrt.Config{Ranks: 3, RanksPerNode: 3, Seed: 11})
	}
	rng := xrt.NewPrng(61)
	g := genome.Random(rng, 6000)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: 15,
		Lib:      genome.Library{Name: "fz", ReadLen: 100, InsertMean: 300, InsertSD: 20},
		Err:      genome.DefaultErrorModel(),
	})
	singleLibs := []pipeline.Library{{Name: "fz", Records: recs, InsertHint: 300}}
	_, multiLibs := pipeline.SimulatedMetagenomeRefs(62, 8000, 3, 1200)

	var payloads [][]byte
	for _, run := range []struct {
		libs []pipeline.Library
		cfg  pipeline.Config
	}{
		{singleLibs, pipeline.Config{K: 21, MinCount: 2}},
		{multiLibs, pipeline.Config{KmerLens: []int{21, 33}, MinCount: 2, ContigsOnly: true}},
	} {
		dir, err := os.MkdirTemp("", "reshard-fuzz-corpus")
		if err != nil {
			continue
		}
		run.cfg.CkptDir = dir
		if _, err := pipeline.Run(team(), run.libs, run.cfg); err == nil {
			// The run's fingerprint is whatever it recorded; reading it
			// back lets Resume open the store it just wrote.
			if mb, err := os.ReadFile(filepath.Join(dir, ckpt.ManifestName)); err == nil {
				if m, err := ckpt.ParseManifest(mb); err == nil {
					if store, err := ckpt.Resume(dir, m.Fingerprint); err == nil {
						for _, e := range store.Stages() {
							if b, err := store.ReadStage(e.Name); err == nil {
								payloads = append(payloads, b)
							}
						}
					}
				}
			}
		}
		os.RemoveAll(dir)
	}
	return payloads
})

// FuzzReshardDecode: no stage payload — real or corrupt — may panic a
// re-sharding decoder under any src→target rank mapping; corrupt frames
// and unusable target rank counts must surface as errors.
func FuzzReshardDecode(f *testing.F) {
	for _, b := range realStagePayloads() {
		for _, dst := range []int{-1, 0, 1, 2, 3, 7} {
			f.Add(b, dst)
		}
	}
	f.Add([]byte{}, 1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 4)
	// Quarantine-shaped corpus: the storage-damage forms Scrub moves
	// aside — torn prefixes and single-bit flips of real payloads — so
	// the decoders are fuzzed from exactly what a damaged directory holds.
	for _, b := range realStagePayloads() {
		if len(b) >= 2 {
			f.Add(b[:len(b)/2:len(b)/2], 4)
		}
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x04
		f.Add(flipped, 4)
	}

	f.Fuzz(func(t *testing.T, b []byte, dst int) {
		if res, err := ckpt.DecodeContigStageReshard(b, dst); err == nil {
			if res == nil {
				t.Fatal("contig reshard: nil result with nil error")
			}
			if dst < 1 {
				t.Fatalf("contig reshard accepted %d target ranks", dst)
			}
		}
		if res, _, err := ckpt.DecodeCleaningStageReshard(b, dst); err == nil {
			if res == nil {
				t.Fatal("cleaning reshard: nil result with nil error")
			}
			if dst < 1 {
				t.Fatalf("cleaning reshard accepted %d target ranks", dst)
			}
		}
		if res, src, err := ckpt.DecodeScaffoldStageAny(b); err == nil {
			if res == nil || src < 0 {
				t.Fatalf("scaffold decode: res=%v src=%d with nil error", res, src)
			}
			if err := ckpt.ReshardScaffoldContigs(res, dst); err == nil && dst < 1 {
				t.Fatalf("scaffold reshard accepted %d target ranks", dst)
			}
		}
		// The partition-free decoders must hold up on the same corpus.
		_, _, _ = ckpt.DecodeCarryStage(b)
		_, _ = ckpt.DecodeGapcloseStage(b)
	})
}

// Stage-output codecs: the serializable projection of each pipeline
// stage's result. Encoders are deterministic (see codec.go); decoders
// validate exhaustively and rebuild the in-memory form, including DHT
// rehydration for the k-mer table.
//
// What is and is not checkpointed, per stage:
//
//   - k-mer analysis: the full count/extension table plus the scalar
//     outcomes. Entries are sorted by k-mer words before encoding so the
//     payload is independent of shard iteration order.
//   - contig generation: the per-rank contig lists exactly as generated
//     (rank assignment and order preserved — downstream stages partition
//     work by these lists) plus the outcome counters. The de Bruijn
//     graph is NOT serialized: no downstream stage reads it, and it
//     dwarfs the contigs. A rehydrated Result has Graph == nil.
//   - scaffolding: surviving contigs (per-rank), scaffolds, links,
//     insert-size estimates, and the per-read alignments gap closing
//     consumes. The seed index is NOT serialized (gap closing reads the
//     alignments, never the index); a rehydrated Result has Index == nil.
//   - gap closing: the final scaffold sequences and closure counters.
//
// Phase timing fields (xrt.PhaseStats) are never checkpointed: a resumed
// run's report covers the work it actually performed.
package ckpt

import (
	"fmt"
	"sort"

	"hipmer/internal/aligner"
	"hipmer/internal/contig"
	"hipmer/internal/gapclose"
	"hipmer/internal/kanalysis"
	"hipmer/internal/kmer"
	"hipmer/internal/scaffold"
	"hipmer/internal/xrt"
)

// ---------------------------------------------------------------------
// k-mer analysis

// EncodeKmerStage serializes a k-mer analysis result. The table must be
// quiescent (frozen or between phases). k and minimizerLen record the
// table-placement parameters (kanalysis.EffectiveMinimizerLen: 0 =
// classic hash placement) so rehydration rebuilds a table whose owners
// match the one that was checkpointed.
func EncodeKmerStage(res *kanalysis.Result, k, minimizerLen int) []byte {
	type entry struct {
		km kmer.Kmer
		d  kanalysis.KmerData
	}
	var entries []entry
	res.Table.RangeAll(func(k kmer.Kmer, v kanalysis.KmerData) bool {
		entries = append(entries, entry{k, v})
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].km, entries[j].km
		if a.W[0] != b.W[0] {
			return a.W[0] < b.W[0]
		}
		return a.W[1] < b.W[1]
	})
	e := &enc{}
	e.u32(uint32(k))
	e.u32(uint32(minimizerLen))
	e.u64(res.DistinctEstimate)
	e.i64(int64(res.HeavyHitters))
	e.i64(res.Kept)
	e.i64(res.PeakEntries)
	e.i64(res.TotalKmers)
	e.i64(res.SuperKmers)
	e.i64(res.SuperKmerBases)
	e.i64(res.CommBytesSaved)
	e.u64(uint64(len(entries)))
	for _, en := range entries {
		e.u64(en.km.W[0])
		e.u64(en.km.W[1])
		e.u32(en.d.Count)
		for i := 0; i < 4; i++ {
			e.u32(en.d.LeftCnt[i])
		}
		for i := 0; i < 4; i++ {
			e.u32(en.d.RightCnt[i])
		}
		e.u8(en.d.ExtL)
		e.u8(en.d.ExtR)
	}
	return e.b
}

// kmerEntryBytes is the wire size of one table entry (two words, count,
// 8 extension counters, two extension codes).
const kmerEntryBytes = 8 + 8 + 4 + 4*4 + 4*4 + 1 + 1

// DecodeKmerStage rebuilds a k-mer analysis result, rehydrating the
// distributed table: entries are partitioned by owner, stored through
// each owner's rank-local fast path in one SPMD phase (pre-sized via
// ExpectedItems, so no incremental rehashing), and the table is returned
// frozen — exactly the state a fresh analysis hands downstream.
func DecodeKmerStage(team *xrt.Team, b []byte, aggBufSize int) (*kanalysis.Result, error) {
	d := &dec{b: b}
	res := &kanalysis.Result{}
	k := int(d.u32())
	minimizerLen := int(d.u32())
	if d.err == nil && (k <= 0 || k > kmer.MaxK || minimizerLen < 0 || minimizerLen >= k && minimizerLen != 0) {
		return nil, fmt.Errorf("kmer-analysis payload: bad placement params k=%d m=%d", k, minimizerLen)
	}
	res.DistinctEstimate = d.u64()
	res.HeavyHitters = int(d.i64())
	res.Kept = d.i64()
	res.PeakEntries = d.i64()
	res.TotalKmers = d.i64()
	res.SuperKmers = d.i64()
	res.SuperKmerBases = d.i64()
	res.CommBytesSaved = d.i64()
	n := d.count(kmerEntryBytes)
	table := kanalysis.NewTable(team, int64(n), aggBufSize, 0, k, minimizerLen)
	p := team.Config().Ranks
	type entry struct {
		km kmer.Kmer
		d  kanalysis.KmerData
	}
	perOwner := make([][]entry, p)
	for i := 0; i < n; i++ {
		var en entry
		en.km.W[0] = d.u64()
		en.km.W[1] = d.u64()
		en.d.Count = d.u32()
		for j := 0; j < 4; j++ {
			en.d.LeftCnt[j] = d.u32()
		}
		for j := 0; j < 4; j++ {
			en.d.RightCnt[j] = d.u32()
		}
		en.d.ExtL = d.u8()
		en.d.ExtR = d.u8()
		if d.err != nil {
			break
		}
		o := table.Owner(en.km)
		perOwner[o] = append(perOwner[o], en)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("kmer-analysis payload: %w", err)
	}
	team.Run(func(r *xrt.Rank) {
		for _, en := range perOwner[r.ID] {
			table.Put(r, en.km, en.d) // owner == r.ID: rank-local fast path
		}
		table.Flush(r)
		r.Barrier()
		table.Freeze(r)
	})
	res.Table = table
	return res, nil
}

// ---------------------------------------------------------------------
// contig generation

// contigRecBytes is the minimum wire size of one contig record (ID,
// length-prefixed seq, two terminations, four neighbor words, two
// neighbor flags, sum count, pseudo weight).
const contigRecBytes = 8 + 8 + 2 + 32 + 2 + 8 + 4

func encodeContig(e *enc, c *contig.Contig) {
	e.i64(c.ID)
	e.bytes(c.Seq)
	e.u8(c.TermL)
	e.u8(c.TermR)
	e.u64(c.NbrL.W[0])
	e.u64(c.NbrL.W[1])
	e.u64(c.NbrR.W[0])
	e.u64(c.NbrR.W[1])
	e.bool(c.HasNbrL)
	e.bool(c.HasNbrR)
	e.u64(c.SumCount)
	e.u32(c.PseudoWeight)
}

func decodeContig(d *dec) *contig.Contig {
	c := &contig.Contig{}
	c.ID = d.i64()
	c.Seq = d.bytes()
	c.TermL = d.u8()
	c.TermR = d.u8()
	c.NbrL.W[0] = d.u64()
	c.NbrL.W[1] = d.u64()
	c.NbrR.W[0] = d.u64()
	c.NbrR.W[1] = d.u64()
	c.HasNbrL = d.bool()
	c.HasNbrR = d.bool()
	c.SumCount = d.u64()
	c.PseudoWeight = d.u32()
	return c
}

func encodeContigResult(e *enc, res *contig.Result) {
	e.i64(res.NumContigs)
	e.i64(res.UUKmers)
	e.i64(res.Claimed)
	e.i64(res.Completed)
	e.i64(res.Aborted)
	e.i64(res.Rounds)
	e.u64(uint64(len(res.Contigs)))
	for _, cs := range res.Contigs {
		e.u64(uint64(len(cs)))
		for _, c := range cs {
			encodeContig(e, c)
		}
	}
}

// decodeContigResult is the team-free core of DecodeContigStage:
// wantRanks <= 0 skips the rank-partition check (fuzzing decodes with
// no team at hand).
func decodeContigResult(d *dec, wantRanks int) (*contig.Result, error) {
	res := &contig.Result{}
	res.NumContigs = d.i64()
	res.UUKmers = d.i64()
	res.Claimed = d.i64()
	res.Completed = d.i64()
	res.Aborted = d.i64()
	res.Rounds = d.i64()
	ranks := d.count(8)
	if d.err == nil && wantRanks > 0 && ranks != wantRanks {
		return nil, fmt.Errorf("contig payload: %d rank partitions, team has %d",
			ranks, wantRanks)
	}
	res.Contigs = make([][]*contig.Contig, ranks)
	for r := 0; r < ranks; r++ {
		n := d.count(contigRecBytes)
		for i := 0; i < n; i++ {
			c := decodeContig(d)
			if d.err != nil {
				break
			}
			res.Contigs[r] = append(res.Contigs[r], c)
		}
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("contig payload: %w", err)
	}
	return res, nil
}

// EncodeContigStage serializes a contig-generation result (minus the de
// Bruijn graph — see the package comment).
func EncodeContigStage(res *contig.Result) []byte {
	e := &enc{}
	encodeContigResult(e, res)
	return e.b
}

// DecodeContigStage rebuilds a contig-generation result for a team with
// the same rank count the checkpoint was written under, preserving the
// original per-rank lists exactly. Resuming on a different rank count
// goes through DecodeContigStageReshard instead.
func DecodeContigStage(team *xrt.Team, b []byte) (*contig.Result, error) {
	return decodeContigResult(&dec{b: b}, team.Config().Ranks)
}

// reshardContigResult redistributes a decoded contig result onto
// dstRanks: the global contig set is flattened, ordered by its globally
// deterministic content-hash-assigned IDs, and dealt round-robin — the
// same owner-computes layout contig.ResultFromContigs produces, so every
// downstream consumer sees a deterministic partition that depends only
// on the global contig set and the target rank count.
func reshardContigResult(res *contig.Result, dstRanks int) *contig.Result {
	flat := res.All() // sorted by ID
	out := &contig.Result{
		NumContigs: res.NumContigs, UUKmers: res.UUKmers,
		Claimed: res.Claimed, Completed: res.Completed,
		Aborted: res.Aborted, Rounds: res.Rounds,
		Contigs: make([][]*contig.Contig, dstRanks),
	}
	for i, c := range flat {
		out.Contigs[i%dstRanks] = append(out.Contigs[i%dstRanks], c)
	}
	return out
}

// DecodeContigStageReshard rebuilds a contig-generation result written
// under any rank count and redistributes it onto dstRanks (elastic
// rescale). Team-free; never panics on corrupt bytes (fuzzed).
func DecodeContigStageReshard(b []byte, dstRanks int) (*contig.Result, error) {
	if dstRanks < 1 {
		return nil, fmt.Errorf("contig payload: reshard to %d ranks", dstRanks)
	}
	res, err := decodeContigResult(&dec{b: b}, 0)
	if err != nil {
		return nil, err
	}
	return reshardContigResult(res, dstRanks), nil
}

// ---------------------------------------------------------------------
// graph cleaning (tip-clip / bubble-pop rounds of the iterative-k loop)

// EncodeCleaningStage serializes the output of a cleaning pass: the
// cumulative cleaning counters followed by the surviving contig result
// (same projection as the contig-generation codec).
func EncodeCleaningStage(res *contig.Result, stats contig.CleanStats) []byte {
	e := &enc{}
	e.i64(stats.TipsClipped)
	e.i64(stats.BubblesPopped)
	e.i64(stats.BasesRemoved)
	e.i64(stats.Survivors)
	encodeContigResult(e, res)
	return e.b
}

// DecodeCleaningStage rebuilds a cleaning pass's surviving contigs and
// counters. wantRanks <= 0 skips the rank-partition check; the sticky-
// error decoder rejects any malformed payload without panicking
// (fuzzed).
func DecodeCleaningStage(b []byte, wantRanks int) (*contig.Result, contig.CleanStats, error) {
	d := &dec{b: b}
	var stats contig.CleanStats
	stats.TipsClipped = d.i64()
	stats.BubblesPopped = d.i64()
	stats.BasesRemoved = d.i64()
	stats.Survivors = d.i64()
	res, err := decodeContigResult(d, wantRanks)
	if err != nil {
		return nil, contig.CleanStats{}, fmt.Errorf("cleaning payload: %w", err)
	}
	return res, stats, nil
}

// DecodeCleaningStageReshard rebuilds a cleaning pass written under any
// rank count and redistributes its surviving contigs onto dstRanks
// (elastic rescale). Team-free; never panics on corrupt bytes (fuzzed).
func DecodeCleaningStageReshard(b []byte, dstRanks int) (*contig.Result, contig.CleanStats, error) {
	if dstRanks < 1 {
		return nil, contig.CleanStats{}, fmt.Errorf("cleaning payload: reshard to %d ranks", dstRanks)
	}
	res, stats, err := DecodeCleaningStage(b, 0)
	if err != nil {
		return nil, contig.CleanStats{}, err
	}
	return reshardContigResult(res, dstRanks), stats, nil
}

// ---------------------------------------------------------------------
// pseudo-read carry (merge stage of the iterative-k loop)

// EncodeCarryStage serializes a pseudo-merge stage's output: the merge
// counters and the flat, globally renumbered carried-contig list that
// seeds the next k round.
func EncodeCarryStage(carried []*contig.Contig, st contig.MergeStats) []byte {
	e := &enc{}
	e.i64(st.Carried)
	e.i64(st.Represented)
	e.i64(st.PoppedOld)
	e.i64(st.Rescued)
	e.i64(st.Total)
	e.u64(uint64(len(carried)))
	for _, c := range carried {
		encodeContig(e, c)
	}
	return e.b
}

// DecodeCarryStage rebuilds a pseudo-merge stage's carried contigs and
// counters. Team-free; never panics on corrupt bytes (fuzzed).
func DecodeCarryStage(b []byte) ([]*contig.Contig, contig.MergeStats, error) {
	d := &dec{b: b}
	var st contig.MergeStats
	st.Carried = d.i64()
	st.Represented = d.i64()
	st.PoppedOld = d.i64()
	st.Rescued = d.i64()
	st.Total = d.i64()
	n := d.count(contigRecBytes)
	var carried []*contig.Contig
	for i := 0; i < n; i++ {
		c := decodeContig(d)
		if d.err != nil {
			break
		}
		carried = append(carried, c)
	}
	if err := d.done(); err != nil {
		return nil, contig.MergeStats{}, fmt.Errorf("carry payload: %w", err)
	}
	return carried, st, nil
}

// ---------------------------------------------------------------------
// scaffolding

// EncodeScaffoldStage serializes a scaffolding result (minus the seed
// index — see the package comment). Contigs are encoded from the
// per-rank distribution, which also carries the map's full content.
func EncodeScaffoldStage(res *scaffold.Result) []byte {
	e := &enc{}
	e.u64(uint64(len(res.ContigsByRank)))
	for _, cs := range res.ContigsByRank {
		e.u64(uint64(len(cs)))
		for _, sc := range cs {
			e.i64(sc.ID)
			e.bytes(sc.Seq)
			e.f64(sc.Depth)
			e.u8(sc.TermL)
			e.u8(sc.TermR)
			e.u64(sc.NbrL.W[0])
			e.u64(sc.NbrL.W[1])
			e.u64(sc.NbrR.W[0])
			e.u64(sc.NbrR.W[1])
			e.bool(sc.HasNbrL)
			e.bool(sc.HasNbrR)
			e.u64(uint64(len(sc.Members)))
			for _, m := range sc.Members {
				e.i64(m)
			}
			e.bool(sc.PoppedOut)
		}
	}
	e.u64(uint64(len(res.Scaffolds)))
	for _, s := range res.Scaffolds {
		e.i64(int64(s.ID))
		e.u64(uint64(len(s.Members)))
		for _, m := range s.Members {
			e.i64(m.ContigID)
			e.bool(m.Flipped)
			e.i64(int64(m.GapBefore))
		}
	}
	e.u64(uint64(len(res.Links)))
	for _, l := range res.Links {
		e.i64(l.A)
		e.i64(l.B)
		e.u8(l.EndA)
		e.u8(l.EndB)
		e.f64(l.Gap)
		e.f64(l.GapSD)
		e.i64(int64(l.Splints))
		e.i64(int64(l.Spans))
	}
	e.u64(uint64(len(res.InsertMean)))
	for i := range res.InsertMean {
		e.f64(res.InsertMean[i])
		e.f64(res.InsertSD[i])
	}
	e.i64(int64(res.Bubbles))
	e.u64(uint64(len(res.Alignments)))
	for _, lib := range res.Alignments {
		e.u64(uint64(len(lib)))
		for _, rank := range lib {
			e.u64(uint64(len(rank)))
			for _, alns := range rank {
				e.u64(uint64(len(alns)))
				for _, a := range alns {
					e.i64(a.ContigID)
					e.i64(int64(a.RStart))
					e.i64(int64(a.REnd))
					e.i64(int64(a.CStart))
					e.i64(int64(a.CEnd))
					e.bool(a.Flipped)
					e.i64(int64(a.Matches))
					e.i64(int64(a.Score))
					e.i64(int64(a.ReadLen))
					e.i64(int64(a.ContigLen))
				}
			}
		}
	}
	return e.b
}

// DecodeScaffoldStage rebuilds a scaffolding result for a team with the
// same rank count the checkpoint was written under: the contig map is
// the union of the per-rank lists, exactly as scaffolding itself leaves
// it. Resuming on a different rank count goes through
// DecodeScaffoldStageAny plus a re-shard transform.
func DecodeScaffoldStage(team *xrt.Team, b []byte) (*scaffold.Result, error) {
	res, ranks, err := DecodeScaffoldStageAny(b)
	if err != nil {
		return nil, err
	}
	if ranks != team.Config().Ranks {
		return nil, fmt.Errorf("scaffold payload: %d rank partitions, team has %d",
			ranks, team.Config().Ranks)
	}
	return res, nil
}

// DecodeScaffoldStageAny rebuilds a scaffolding result written under any
// rank count, returning the source rank count alongside it. The per-rank
// structures (ContigsByRank, Alignments) are left in the source
// partition; callers rescaling onto a different rank count apply
// ReshardScaffoldContigs and remap the alignments against their own read
// partition. Team-free; never panics on corrupt bytes (fuzzed).
func DecodeScaffoldStageAny(b []byte) (*scaffold.Result, int, error) {
	d := &dec{b: b}
	res := &scaffold.Result{Contigs: make(map[int64]*scaffold.SContig)}
	ranks := d.count(8)
	res.ContigsByRank = make([][]*scaffold.SContig, ranks)
	for r := 0; r < ranks; r++ {
		n := d.count(8 + 8 + 8 + 2 + 32 + 2 + 8 + 1)
		for i := 0; i < n; i++ {
			sc := &scaffold.SContig{}
			sc.ID = d.i64()
			sc.Seq = d.bytes()
			sc.Depth = d.f64()
			sc.TermL = d.u8()
			sc.TermR = d.u8()
			sc.NbrL.W[0] = d.u64()
			sc.NbrL.W[1] = d.u64()
			sc.NbrR.W[0] = d.u64()
			sc.NbrR.W[1] = d.u64()
			sc.HasNbrL = d.bool()
			sc.HasNbrR = d.bool()
			nm := d.count(8)
			for j := 0; j < nm; j++ {
				sc.Members = append(sc.Members, d.i64())
			}
			sc.PoppedOut = d.bool()
			if d.err != nil {
				break
			}
			res.ContigsByRank[r] = append(res.ContigsByRank[r], sc)
			res.Contigs[sc.ID] = sc
		}
	}
	ns := d.count(8 + 8)
	for i := 0; i < ns; i++ {
		s := &scaffold.Scaffold{ID: int(d.i64())}
		nm := d.count(8 + 1 + 8)
		for j := 0; j < nm; j++ {
			s.Members = append(s.Members, scaffold.Member{
				ContigID:  d.i64(),
				Flipped:   d.bool(),
				GapBefore: int(d.i64()),
			})
		}
		if d.err != nil {
			break
		}
		res.Scaffolds = append(res.Scaffolds, s)
	}
	nl := d.count(8 + 8 + 2 + 8 + 8 + 8 + 8)
	for i := 0; i < nl; i++ {
		res.Links = append(res.Links, scaffold.Link{
			A: d.i64(), B: d.i64(),
			EndA: d.u8(), EndB: d.u8(),
			Gap: d.f64(), GapSD: d.f64(),
			Splints: int(d.i64()), Spans: int(d.i64()),
		})
	}
	ni := d.count(8 + 8)
	for i := 0; i < ni; i++ {
		res.InsertMean = append(res.InsertMean, d.f64())
		res.InsertSD = append(res.InsertSD, d.f64())
	}
	res.Bubbles = int(d.i64())
	nlib := d.count(8)
	for li := 0; li < nlib; li++ {
		nr := d.count(8)
		lib := make([][][]aligner.Alignment, nr)
		for r := 0; r < nr; r++ {
			nread := d.count(8)
			lib[r] = make([][]aligner.Alignment, nread)
			for ri := 0; ri < nread; ri++ {
				na := d.count(8*9 + 1)
				for ai := 0; ai < na; ai++ {
					lib[r][ri] = append(lib[r][ri], aligner.Alignment{
						ContigID: d.i64(),
						RStart:   int(d.i64()), REnd: int(d.i64()),
						CStart: int(d.i64()), CEnd: int(d.i64()),
						Flipped: d.bool(),
						Matches: int(d.i64()), Score: int(d.i64()),
						ReadLen: int(d.i64()), ContigLen: int(d.i64()),
					})
				}
			}
		}
		res.Alignments = append(res.Alignments, lib)
	}
	if err := d.done(); err != nil {
		return nil, 0, fmt.Errorf("scaffold payload: %w", err)
	}
	return res, ranks, nil
}

// ReshardScaffoldContigs redistributes a decoded scaffold result's
// surviving contigs onto dstRanks: the global contig set (IDs are
// globally deterministic content-hash ranks) is ordered by ID and dealt
// round-robin, the same owner-computes layout the contig re-shard uses.
// Global structures (Contigs map, Scaffolds, Links, insert estimates)
// are untouched; Alignments remain in the source read partition and are
// remapped separately against the resuming run's own read layout.
func ReshardScaffoldContigs(res *scaffold.Result, dstRanks int) error {
	if dstRanks < 1 {
		return fmt.Errorf("scaffold payload: reshard to %d ranks", dstRanks)
	}
	var flat []*scaffold.SContig
	for _, cs := range res.ContigsByRank {
		flat = append(flat, cs...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].ID < flat[j].ID })
	byRank := make([][]*scaffold.SContig, dstRanks)
	for i, sc := range flat {
		byRank[i%dstRanks] = append(byRank[i%dstRanks], sc)
	}
	res.ContigsByRank = byRank
	return nil
}

// ---------------------------------------------------------------------
// gap closing

// EncodeGapcloseStage serializes a gap-closing result.
func EncodeGapcloseStage(res *gapclose.Result) []byte {
	e := &enc{}
	e.i64(int64(res.Gaps))
	e.i64(int64(res.Closed))
	e.i64(int64(res.BySpanning))
	e.i64(int64(res.ByWalking))
	e.i64(int64(res.ByPatching))
	e.i64(int64(res.Verified))
	e.i64(int64(res.Checked))
	e.u64(uint64(len(res.ScaffoldSeqs)))
	for _, s := range res.ScaffoldSeqs {
		e.bytes(s)
	}
	return e.b
}

// DecodeGapcloseStage rebuilds a gap-closing result.
func DecodeGapcloseStage(b []byte) (*gapclose.Result, error) {
	d := &dec{b: b}
	res := &gapclose.Result{}
	res.Gaps = int(d.i64())
	res.Closed = int(d.i64())
	res.BySpanning = int(d.i64())
	res.ByWalking = int(d.i64())
	res.ByPatching = int(d.i64())
	res.Verified = int(d.i64())
	res.Checked = int(d.i64())
	n := d.count(8)
	for i := 0; i < n; i++ {
		res.ScaffoldSeqs = append(res.ScaffoldSeqs, d.bytes())
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("gap-closing payload: %w", err)
	}
	return res, nil
}

package ckpt

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"text/tabwriter"
)

// Scrub: offline checkpoint repair. A run directory that took storage
// damage (torn write, bit-rot, lost segment) is healed back to a
// resumable state by re-validating every manifest entry exactly as
// ReadStage would, renaming damaged segment files to *.quarantine for
// post-mortem, and truncating the manifest to the longest intact
// prefix in pipeline order. The prefix rule is what makes the result
// dependency-closed: every stage's payload is derived from the stages
// before it, so an intact segment AFTER a damaged one may embed state
// the recomputation will legitimately change — it is dropped (its file
// stays, unreferenced, and is replaced by name when the stage reruns).
//
// A parseable manifest always heals: the worst case is an empty intact
// prefix, i.e. a full recompute. Only a missing or unparsable manifest
// is ErrUnrecoverableCkpt — there is no trustworthy record of what the
// directory held.

// QuarantineSuffix is appended to a damaged segment's filename when
// Scrub moves it aside.
const QuarantineSuffix = ".quarantine"

// SegmentVerdict is one manifest entry's scrub outcome.
type SegmentVerdict struct {
	// Stage, File, Bytes mirror the manifest entry.
	Stage string
	File  string
	Bytes int64
	// OK: the segment passed the full ReadStage validation.
	OK bool
	// Kept: the entry survived in the intact prefix. An OK entry after
	// the first damaged one is not kept (see the package comment).
	Kept bool
	// Quarantined: the damaged file was renamed to *.quarantine.
	Quarantined bool
	// Err describes why validation failed ("" when OK).
	Err string
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Entries holds per-entry verdicts in manifest (pipeline) order.
	Entries []SegmentVerdict
	// Intact and Dropped count entries kept in / cut from the manifest.
	Intact  int
	Dropped int
	// Quarantined counts damaged segment files moved aside, and
	// QuarantinedBytes their on-disk size.
	Quarantined      int
	QuarantinedBytes int64
	// RepairedBytes sums the manifest Bytes of every dropped entry —
	// the checkpoint state the heal demoted back to recomputation. A
	// deleted segment still counts its manifest size here, so a heal
	// always repairs a nonzero amount.
	RepairedBytes int64
	// ScannedBytes is how much segment data the pass actually read.
	ScannedBytes int64
	// TempsRemoved counts orphaned *.tmp files swept from the directory.
	TempsRemoved int
}

// Healed reports whether the pass changed the directory (dropped
// entries or swept temps).
func (r *ScrubReport) Healed() bool { return r.Dropped > 0 || r.TempsRemoved > 0 }

// FormatTable renders the per-entry verdicts for the CLI.
func (r *ScrubReport) FormatTable() string {
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "STAGE\tFILE\tBYTES\tVERDICT\tDETAIL")
	for _, v := range r.Entries {
		verdict := "intact"
		detail := ""
		switch {
		case !v.OK && v.Quarantined:
			verdict = "quarantined"
			detail = v.Err
		case !v.OK:
			verdict = "damaged"
			detail = v.Err
		case !v.Kept:
			verdict = "dropped"
			detail = "follows damage; recomputed on resume"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n", v.Stage, v.File, v.Bytes, verdict, detail)
	}
	w.Flush()
	fmt.Fprintf(&buf, "\n%d intact, %d dropped, %d quarantined (%d bytes), %d bytes repaired, %d temp files swept\n",
		r.Intact, r.Dropped, r.Quarantined, r.QuarantinedBytes, r.RepairedBytes, r.TempsRemoved)
	return buf.String()
}

// ValidateSegmentBytes runs the full ReadStage validation — size,
// framing, stored CRC, manifest CRC, content hash — against in-memory
// segment bytes, so property tests can sweep corruptions without
// rewriting files.
func ValidateSegmentBytes(b []byte, e StageEntry) error {
	if int64(len(b)) != e.Bytes {
		return fmt.Errorf("%w: %s: %d bytes on disk, manifest says %d",
			ErrCorruptSegment, e.Name, len(b), e.Bytes)
	}
	payload, err := ParseSegment(b, e.Name)
	if err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != e.CRC32 {
		return fmt.Errorf("%w: %s: CRC %08x, manifest says %08x",
			ErrCorruptSegment, e.Name, got, e.CRC32)
	}
	if got := hashHex(payload); got != e.ContentHash {
		return fmt.Errorf("%w: %s: content hash %s, manifest says %s",
			ErrCorruptSegment, e.Name, got, e.ContentHash)
	}
	return nil
}

// Scrub heals a run directory in place (see the package comment above)
// and reports what it found. It returns ErrUnrecoverableCkpt only when
// the manifest itself is missing or unparsable.
func Scrub(dir string) (*ScrubReport, error) {
	rep := &ScrubReport{}
	rep.TempsRemoved = sweepTemps(dir)

	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: reading manifest: %w", ErrUnrecoverableCkpt, err)
	}
	m, err := ParseManifest(mb)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnrecoverableCkpt, err)
	}

	damaged := false
	keep := make(map[string]bool, len(m.Stages))
	for _, e := range m.Stages {
		v := SegmentVerdict{Stage: e.Name, File: e.File, Bytes: e.Bytes}
		path := filepath.Join(dir, e.File)
		b, rerr := os.ReadFile(path)
		rep.ScannedBytes += int64(len(b))
		if rerr != nil {
			v.Err = fmt.Sprintf("reading segment: %v", rerr)
		} else if verr := ValidateSegmentBytes(b, e); verr != nil {
			v.Err = verr.Error()
		} else {
			v.OK = true
		}
		if !v.OK && rerr == nil {
			// The file exists but is damaged: move it aside for
			// post-mortem so the recomputing run starts clean.
			if err := os.Rename(path, path+QuarantineSuffix); err != nil {
				return nil, fmt.Errorf("ckpt: quarantining %s: %w", e.File, err)
			}
			v.Quarantined = true
			rep.Quarantined++
			rep.QuarantinedBytes += int64(len(b))
		}
		if !v.OK {
			damaged = true
		}
		if !damaged {
			v.Kept = true
			keep[e.Name] = true
			rep.Intact++
		} else {
			rep.Dropped++
			rep.RepairedBytes += e.Bytes
		}
		rep.Entries = append(rep.Entries, v)
	}

	if rep.Dropped > 0 {
		if _, err := Truncate(dir, func(stage string) bool { return keep[stage] }); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// sweepTemps removes orphaned *.tmp files left by a crash between
// atomicWrite's temp write and rename; the rename never happened, so
// the temps are dead weight that would otherwise accumulate forever.
// Returns how many were removed. Best-effort: an undeletable temp is
// left behind rather than failing the open.
func sweepTemps(dir string) int {
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return 0
	}
	n := 0
	for _, m := range matches {
		if os.Remove(m) == nil {
			n++
		}
	}
	return n
}

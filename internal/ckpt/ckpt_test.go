package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hipmer/internal/contig"
	"hipmer/internal/gapclose"
)

// testTopo is the recorded topology used by store tests that don't care
// about rescale semantics.
var testTopo = Topology{Ranks: 4, RanksPerNode: 2}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "fp-abc", testTopo)
	if err != nil {
		t.Fatal(err)
	}
	pay1 := []byte("kmer payload bytes")
	pay2 := []byte{0, 1, 2, 0xff, 0xfe}
	if _, err := s.WriteStage("kmer-analysis", pay1); err != nil {
		t.Fatal(err)
	}
	e2, err := s.WriteStage("contig-generation", pay2)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Seq != 1 || e2.File != "contig-generation.seg" {
		t.Fatalf("entry = %+v, want seq 1 file contig-generation.seg", e2)
	}

	// Re-open as a resume and read everything back.
	r, err := Resume(dir, "fp-abc")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed("kmer-analysis") || r.Completed("scaffolding") {
		t.Fatal("Completed() wrong after resume")
	}
	got, err := r.ReadStage("kmer-analysis")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pay1) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if _, err := r.ReadStage("scaffolding"); !errors.Is(err, ErrNoStage) {
		t.Fatalf("missing stage: err = %v, want ErrNoStage", err)
	}

	// Replacing a stage keeps its sequence position and updates the hash.
	old := *s.Entry("kmer-analysis")
	e, err := s.WriteStage("kmer-analysis", []byte("new content"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != old.Seq || e.ContentHash == old.ContentHash {
		t.Fatalf("replace: entry = %+v, old = %+v", e, old)
	}
}

func TestResumeRefusesFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "fp-1", testTopo); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir, "fp-2"); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
}

func TestResumeRefusesSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	man := []byte(`{"schema":"hipmer-ckpt/v999","fingerprint":"fp","stages":[]}`)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), man, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir, "fp"); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("err = %v, want ErrSchemaMismatch", err)
	}
}

func TestResumeRefusesTruncatedManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "fp", testTopo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteStage("kmer-analysis", []byte("x")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir, "fp"); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("err = %v, want ErrBadManifest", err)
	}
}

// TestReadStageDetectsCorruption flips a payload bit and truncates the
// segment file: both must surface ErrCorruptSegment, never a silently
// wrong payload.
func TestReadStageDetectsCorruption(t *testing.T) {
	newStore := func(t *testing.T) (*Store, string) {
		dir := t.TempDir()
		s, err := Create(dir, "fp", testTopo)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteStage("scaffolding", []byte("scaffold payload")); err != nil {
			t.Fatal(err)
		}
		return s, filepath.Join(dir, "scaffolding.seg")
	}

	t.Run("bit-flip", func(t *testing.T) {
		s, seg := newStore(t)
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x01
		if err := os.WriteFile(seg, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadStage("scaffolding"); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("err = %v, want ErrCorruptSegment", err)
		}
	})

	t.Run("truncation", func(t *testing.T) {
		s, seg := newStore(t)
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, b[:len(b)-6], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadStage("scaffolding"); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("err = %v, want ErrCorruptSegment", err)
		}
	})

	t.Run("wrong-stage-name", func(t *testing.T) {
		s, seg := newStore(t)
		// Overwrite with a valid segment framed for a different stage.
		forged := encodeSegment("gap-closing", []byte("scaffold payload"))
		if err := os.WriteFile(seg, forged, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadStage("scaffolding"); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("err = %v, want ErrCorruptSegment", err)
		}
	})
}

func TestParseManifestRejectsTraversalAndDuplicates(t *testing.T) {
	// All cases carry a valid schema and topology (except the topology
	// cases themselves) so ErrBadManifest comes from the asserted defect,
	// not from a check that happens to fire first.
	const topo = `"topology":{"ranks":4,"ranks_per_node":2},`
	cases := []string{
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":"../evil.seg","ranks":4}]}`,
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":"/abs.seg","ranks":4}]}`,
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":".hidden","ranks":4}]}`,
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"","file":"x.seg","ranks":4}]}`,
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":"x.seg","ranks":4},{"name":"a","file":"y.seg","ranks":4}]}`,
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":"x.seg","round":-1,"ranks":4}]}`,
		// Every entry must record the partition it was written at; a
		// missing or non-positive source rank count cannot drive a
		// re-shard on load.
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":"x.seg"}]}`,
		`{"schema":"hipmer-ckpt/v4",` + topo + `"stages":[{"name":"a","file":"x.seg","ranks":-2}]}`,
		// v4 requires a usable recorded topology: missing, zero, or
		// negative rank geometry cannot drive a re-shard on resume.
		`{"schema":"hipmer-ckpt/v4","stages":[]}`,
		`{"schema":"hipmer-ckpt/v4","topology":{"ranks":0,"ranks_per_node":2},"stages":[]}`,
		`{"schema":"hipmer-ckpt/v4","topology":{"ranks":4,"ranks_per_node":-1},"stages":[]}`,
	}
	for _, c := range cases {
		if _, err := ParseManifest([]byte(c)); !errors.Is(err, ErrBadManifest) {
			t.Errorf("ParseManifest(%s): err = %v, want ErrBadManifest", c, err)
		}
	}
}

// TestTopologyRoundTrip: the writer's rank geometry survives the
// manifest round trip, through both a full Resume and the peek-only
// ReadTopology used by the CLI to adopt a checkpoint's rank count.
func TestTopologyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	topo := Topology{Ranks: 16, RanksPerNode: 4}
	s, err := Create(dir, "fp", topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Topology(); got != topo {
		t.Fatalf("Create topology = %+v, want %+v", got, topo)
	}
	r, err := Resume(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Topology(); got != topo {
		t.Fatalf("Resume topology = %+v, want %+v", got, topo)
	}
	got, err := ReadTopology(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != topo {
		t.Fatalf("ReadTopology = %+v, want %+v", got, topo)
	}
	if _, err := ReadTopology(t.TempDir()); err == nil {
		t.Fatal("ReadTopology on an empty dir succeeded")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Fingerprint {
		f := NewFingerprint()
		f.Str("lib1")
		f.Int(31)
		f.Bool(true)
		f.Bytes([]byte("ACGT"))
		return f
	}
	a, b := base().Hex(), base().Hex()
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	variants := []func(f *Fingerprint){
		func(f *Fingerprint) { f.Int(0) },
		func(f *Fingerprint) { f.Bool(false) },
		func(f *Fingerprint) { f.Bytes(nil) },
		func(f *Fingerprint) { f.Str("") },
	}
	for i, v := range variants {
		f := base()
		v(f)
		if f.Hex() == a {
			t.Errorf("variant %d did not change the fingerprint", i)
		}
	}
	// Length prefixes keep adjacent fields from aliasing.
	x, y := NewFingerprint(), NewFingerprint()
	x.Str("ab")
	x.Str("c")
	y.Str("a")
	y.Str("bc")
	if x.Hex() == y.Hex() {
		t.Fatal("field boundaries alias")
	}
}

// FuzzManifest: no manifest or segment bytes may panic the parsers, and
// a successful manifest parse must satisfy the documented invariants.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"schema":"hipmer-ckpt/v4","fingerprint":"00","topology":{"ranks":4,"ranks_per_node":2},"stages":[]}`))
	f.Add([]byte(`{"schema":"hipmer-ckpt/v4","topology":{"ranks":1,"ranks_per_node":1},"stages":[{"name":"a","file":"a.seg","ranks":8}]}`))
	f.Add([]byte(`{"schema":"hipmer-ckpt/v3","fingerprint":"00","stages":[]}`))
	f.Add([]byte(`{`))
	f.Add(encodeSegment("kmer-analysis", []byte("payload")))
	f.Add([]byte(segMagic))
	// Quarantine artifacts: a scrubbed manifest (truncated to the intact
	// prefix after storage damage) and the damaged segment shapes Scrub
	// moves aside — a torn prefix and a bit-flipped copy.
	f.Add([]byte(`{"schema":"hipmer-ckpt/v4","fingerprint":"00","topology":{"ranks":4,"ranks_per_node":2},"stages":[{"name":"kmer-analysis","file":"kmer-analysis.seg","seq":0,"ranks":4,"bytes":42,"crc32":7,"content_hash":"00"}]}`))
	quarantined := encodeSegment("contig-generation", []byte("quarantined payload"))
	f.Add(quarantined[: len(quarantined)/2 : len(quarantined)/2])
	flipped := append([]byte(nil), quarantined...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, b []byte) {
		if m, err := ParseManifest(b); err == nil {
			if m.Topology.Ranks < 1 || m.Topology.RanksPerNode < 1 {
				t.Fatalf("accepted unusable topology %+v", m.Topology)
			}
			seen := map[string]bool{}
			for _, e := range m.Stages {
				if e.Name == "" || seen[e.Name] || e.File != filepath.Base(e.File) || e.Ranks < 1 {
					t.Fatalf("accepted invalid manifest entry %+v", e)
				}
				seen[e.Name] = true
			}
		}
		if pay, err := ParseSegment(b, ""); err == nil {
			// A valid segment must round-trip through its own framing.
			if _, err := ParseSegment(encodeSegment("s", pay), "s"); err != nil {
				t.Fatalf("re-encoded valid payload failed to parse: %v", err)
			}
		}
	})
}

func TestWriteStageRoundTagsManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "fp", testTopo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteStageRound("tip-clip-k21", 1, []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteStage("io", []byte("reads")); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if e := r.Entry("tip-clip-k21"); e == nil || e.Round != 1 {
		t.Fatalf("round tag lost across resume: %+v", e)
	}
	if e := r.Entry("io"); e == nil || e.Round != 0 {
		t.Fatalf("untagged stage gained a round: %+v", e)
	}
	// Both entries record the writing run's partition.
	for _, name := range []string{"tip-clip-k21", "io"} {
		if e := r.Entry(name); e.Ranks != testTopo.Ranks {
			t.Fatalf("entry %s ranks = %d, want %d", name, e.Ranks, testTopo.Ranks)
		}
	}
}

// TestAdoptTopology: a rescaled resume takes over the directory — stages
// it writes are stamped with its own rank count, earlier entries keep
// their source partition, and the recorded topology (what a later
// -resume without -ranks adopts) names the latest run's geometry.
func TestAdoptTopology(t *testing.T) {
	dir := t.TempDir()
	orig := Topology{Ranks: 8, RanksPerNode: 4}
	s, err := Create(dir, "fp", orig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteStage("kmer-analysis", []byte("at 8")); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	rescaled := Topology{Ranks: 2, RanksPerNode: 2}
	if err := r.AdoptTopology(rescaled); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteStage("contig-generation", []byte("at 2")); err != nil {
		t.Fatal(err)
	}

	r2, err := Resume(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if e := r2.Entry("kmer-analysis"); e == nil || e.Ranks != orig.Ranks {
		t.Fatalf("pre-rescale entry = %+v, want source ranks %d", e, orig.Ranks)
	}
	if e := r2.Entry("contig-generation"); e == nil || e.Ranks != rescaled.Ranks {
		t.Fatalf("post-rescale entry = %+v, want source ranks %d", e, rescaled.Ranks)
	}
	if got := r2.Topology(); got != rescaled {
		t.Fatalf("recorded topology = %+v, want adopted %+v", got, rescaled)
	}
	got, err := ReadTopology(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != rescaled {
		t.Fatalf("ReadTopology = %+v, want adopted %+v", got, rescaled)
	}
	if err := r2.AdoptTopology(Topology{Ranks: 0, RanksPerNode: 1}); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("adopting an unusable topology: err = %v, want ErrBadManifest", err)
	}
}

func testContigResult() *contig.Result {
	return &contig.Result{
		NumContigs: 2, UUKmers: 7, Claimed: 3, Completed: 2, Aborted: 1, Rounds: 4,
		Contigs: [][]*contig.Contig{
			{{ID: 1, Seq: []byte("ACGTACGTACGT"), TermL: 'F', TermR: 'X',
				HasNbrL: true, SumCount: 99, PseudoWeight: 7}},
			{{ID: 2, Seq: []byte("TTTTGGGG"), TermL: 'X', TermR: 'R',
				HasNbrR: true, SumCount: 12}},
		},
	}
}

func TestCleaningStageRoundTrip(t *testing.T) {
	res := testContigResult()
	stats := contig.CleanStats{TipsClipped: 5, BubblesPopped: 2, BasesRemoved: 640, Survivors: 2}
	got, gotStats, err := DecodeCleaningStage(EncodeCleaningStage(res, stats), 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != stats {
		t.Fatalf("stats = %+v, want %+v", gotStats, stats)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result mismatch:\n got %+v\nwant %+v", got, res)
	}
	if _, _, err := DecodeCleaningStage(EncodeCleaningStage(res, stats), 5); err == nil {
		t.Fatal("wrong rank count accepted")
	}
}

func TestCarryStageRoundTrip(t *testing.T) {
	carried := []*contig.Contig{
		{ID: 1, Seq: []byte("ACGTACGT"), TermL: 'X', TermR: 'X', SumCount: 40, PseudoWeight: 5},
		{ID: 2, Seq: []byte("GGGGCCCCAAAA"), TermL: 'F', TermR: 'C', SumCount: 8, PseudoWeight: 2},
	}
	st := contig.MergeStats{Carried: 2, Represented: 3, PoppedOld: 1, Rescued: 1, Total: 7}
	got, gotSt, err := DecodeCarryStage(EncodeCarryStage(carried, st))
	if err != nil {
		t.Fatal(err)
	}
	if gotSt != st {
		t.Fatalf("stats = %+v, want %+v", gotSt, st)
	}
	if !reflect.DeepEqual(got, carried) {
		t.Fatalf("carried mismatch:\n got %+v\nwant %+v", got, carried)
	}
}

// FuzzCleaningDecode: the cleaning and carry codecs are pure sticky-
// error decoders — any corrupt payload must yield an error, never a
// panic or runaway allocation.
func FuzzCleaningDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeCleaningStage(testContigResult(),
		contig.CleanStats{TipsClipped: 1, Survivors: 2}))
	f.Add(EncodeCarryStage([]*contig.Contig{
		{ID: 1, Seq: []byte("ACGT"), PseudoWeight: 3},
	}, contig.MergeStats{Carried: 1, Total: 1}))
	f.Fuzz(func(t *testing.T, b []byte) {
		if res, _, err := DecodeCleaningStage(b, 0); err == nil && res == nil {
			t.Fatal("cleaning: nil result with nil error")
		}
		// Carry decode shares the contig record format; only safety is
		// asserted here — counters are advisory.
		_, _, _ = DecodeCarryStage(b)
	})
}

// FuzzGapcloseDecode: the pure (team-free) stage codec must reject any
// malformed payload with an error, never a panic or runaway allocation.
func FuzzGapcloseDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeGapcloseStage(&gapclose.Result{
		Gaps: 3, Closed: 2, ScaffoldSeqs: [][]byte{[]byte("ACGTACGT")},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		res, err := DecodeGapcloseStage(b)
		if err == nil && res == nil {
			t.Fatal("nil result with nil error")
		}
	})
}

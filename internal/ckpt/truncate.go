package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Truncate rewrites a run directory's manifest keeping only the stage
// entries the keep predicate admits, preserving order. The scheduler
// uses it to preempt a running job at a stage boundary: the entries of
// stages past the preemption point are dropped, so a later -resume
// recomputes them while the kept prefix rehydrates as usual. Dropped
// segment files stay on disk unreferenced — WriteStage replaces them by
// name when the resumed run re-reaches those stages.
//
// The fingerprint and topology are untouched: the truncated directory
// is exactly what a crash inside the first dropped stage would have
// left behind. Returns the number of entries removed.
func Truncate(dir string, keep func(stage string) bool) (int, error) {
	path := filepath.Join(dir, ManifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("ckpt: truncating: %w", err)
	}
	m, err := ParseManifest(b)
	if err != nil {
		return 0, err
	}
	kept := m.Stages[:0]
	for _, e := range m.Stages {
		if keep(e.Name) {
			kept = append(kept, e)
		}
	}
	removed := len(m.Stages) - len(kept)
	if removed == 0 {
		return 0, nil
	}
	m.Stages = kept
	nb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("ckpt: encoding truncated manifest: %w", err)
	}
	if err := atomicWrite(path, append(nb, '\n')); err != nil {
		return 0, fmt.Errorf("ckpt: writing truncated manifest: %w", err)
	}
	return removed, nil
}

// Package ckpt implements the stage-boundary checkpoint store: each
// pipeline stage's output is serialized into a versioned, checksummed
// segment file under a run directory, and a JSON manifest records the
// schema version, a config/input fingerprint, and a per-stage content
// hash. Resuming validates the fingerprint before trusting anything —
// a checkpoint taken under different inputs or knobs refuses to load —
// and every segment read re-verifies its CRC and content hash, so a
// truncated or bit-flipped file fails loudly instead of resuming into a
// silently wrong assembly.
//
// On-disk layout of a run directory:
//
//	MANIFEST.json      schema, fingerprint, per-stage entries
//	<stage>.seg        one segment per completed stage
//
// Segment format (little-endian):
//
//	magic   [8]byte  "HMCKSEG1" (format version in the last byte)
//	nameLen u32      stage-name length
//	name    []byte   stage name (ties the file to its manifest entry)
//	payLen  u64      payload length
//	payload []byte   stage codec output (see stage_codecs.go)
//	crc     u32      IEEE CRC-32 of everything above
//
// Both the manifest and segments are written to a temp file and renamed
// into place, so a crash mid-checkpoint leaves the previous consistent
// state: the manifest only ever references fully written segments.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

// Schema is the manifest schema version; a manifest carrying any other
// value refuses to load. v2: the k-mer stage payload gained table
// placement parameters (k, minimizer length) and super-k-mer transport
// counters. v3: stage entries carry an iterative-k round tag, contig
// payloads carry per-contig pseudo-read weights, and the cleaning and
// carry codecs (tip-clip / bubble-pop / pseudo-merge stages) joined the
// format. v4: the manifest records the writing run's topology (rank
// geometry) separately from the config/input fingerprint — which became
// rank-independent — so a resume may rehydrate the checkpoint onto a
// different rank count (elastic rescale) instead of refusing it.
const Schema = "hipmer-ckpt/v4"

// ManifestName is the manifest's filename inside a run directory.
const ManifestName = "MANIFEST.json"

const segMagic = "HMCKSEG1"

// Typed sentinel errors; all loading failures wrap one of these.
var (
	// ErrSchemaMismatch: the manifest was written by an incompatible
	// checkpoint format version.
	ErrSchemaMismatch = errors.New("ckpt: manifest schema mismatch")
	// ErrFingerprintMismatch: the checkpoint belongs to a different
	// config/input combination and must not seed a resume. The
	// fingerprint is rank-independent: a topology difference alone never
	// raises this error (see ErrTopologyMismatch).
	ErrFingerprintMismatch = errors.New("ckpt: config/input fingerprint mismatch")
	// ErrTopologyMismatch: the checkpoint's recorded rank geometry is
	// genuinely incompatible with the resuming run — not merely
	// different (a different rank count re-shards on load), but
	// unusable, e.g. a rank-count-bound oracle placement resumed on a
	// team the placement was not built for.
	ErrTopologyMismatch = errors.New("ckpt: incompatible checkpoint topology")
	// ErrCorruptSegment: a segment file failed its structural, CRC, or
	// content-hash validation.
	ErrCorruptSegment = errors.New("ckpt: corrupt segment")
	// ErrBadManifest: the manifest is unparsable or internally invalid.
	ErrBadManifest = errors.New("ckpt: bad manifest")
	// ErrNoStage: the requested stage has no manifest entry.
	ErrNoStage = errors.New("ckpt: stage not checkpointed")
	// ErrWriteRefused: an injected ENOSPC-style storage fault refused the
	// segment write; neither the segment nor a manifest entry exists. The
	// caller treats the stage as simply not checkpointed.
	ErrWriteRefused = errors.New("ckpt: segment write refused")
	// ErrUnrecoverableCkpt: the run directory cannot seed a resume even
	// after scrubbing — the manifest itself is missing or unparsable, so
	// there is no intact prefix to heal back to. Segment damage alone is
	// never unrecoverable (Scrub quarantines it and truncates to the
	// longest intact prefix, worst case a full recompute).
	ErrUnrecoverableCkpt = errors.New("ckpt: unrecoverable checkpoint")
)

// StageEntry is one completed stage's manifest record.
type StageEntry struct {
	Name string `json:"name"`
	// File is the segment's basename inside the run directory.
	File string `json:"file"`
	// Seq is the stage's position in pipeline order, informational.
	Seq int `json:"seq"`
	// Round is the iterative-k round the stage belongs to (1-based);
	// zero for stages outside the multi-k loop.
	Round int `json:"round,omitempty"`
	// Ranks is the rank count of the run that wrote this entry — the
	// payload's source partition. Recorded per entry, not per manifest,
	// because a rescaled resume appends stages written at its own rank
	// count to a directory whose earlier entries used another; each
	// load re-shards from this entry's partition onto the running team.
	Ranks int `json:"ranks"`
	// Bytes is the full segment file size (header + payload + CRC).
	Bytes int64 `json:"bytes"`
	// CRC32 is the IEEE checksum stored at the segment tail, duplicated
	// here so manifest and segment must agree.
	CRC32 uint32 `json:"crc32"`
	// ContentHash is the FNV-64a of the payload alone: the deterministic
	// identity of the stage output, independent of framing.
	ContentHash string `json:"content_hash"`
}

// Topology records the rank geometry of the run that wrote a
// checkpoint. It is deliberately kept out of the config/input
// fingerprint: stage payloads are globally canonical (or carry their own
// source partition), so a resume on a different rank count re-shards
// them instead of refusing. The record exists so the loader knows the
// source partition and so a CLI resume without an explicit -ranks can
// adopt the original geometry.
type Topology struct {
	// Ranks is the simulated processor count of the writing run.
	Ranks int `json:"ranks"`
	// RanksPerNode is the writing run's node grouping (affects only
	// locality accounting, never payload content).
	RanksPerNode int `json:"ranks_per_node"`
}

// Manifest is the run directory's index.
type Manifest struct {
	Schema      string       `json:"schema"`
	Fingerprint string       `json:"fingerprint"`
	Topology    Topology     `json:"topology"`
	Stages      []StageEntry `json:"stages"`
}

// ParseManifest decodes and validates manifest bytes: schema match,
// unique stage names, and segment filenames that cannot escape the run
// directory. It never panics on any input (fuzzed).
func ParseManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrSchemaMismatch, m.Schema, Schema)
	}
	if m.Topology.Ranks < 1 || m.Topology.RanksPerNode < 1 {
		return nil, fmt.Errorf("%w: invalid topology %+v", ErrBadManifest, m.Topology)
	}
	seen := make(map[string]bool, len(m.Stages))
	for _, e := range m.Stages {
		if e.Name == "" {
			return nil, fmt.Errorf("%w: entry with empty stage name", ErrBadManifest)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("%w: duplicate stage %q", ErrBadManifest, e.Name)
		}
		seen[e.Name] = true
		if e.File == "" || e.File != filepath.Base(e.File) ||
			strings.HasPrefix(e.File, ".") {
			return nil, fmt.Errorf("%w: stage %q has invalid segment file %q",
				ErrBadManifest, e.Name, e.File)
		}
		if e.Round < 0 {
			return nil, fmt.Errorf("%w: stage %q has negative round %d",
				ErrBadManifest, e.Name, e.Round)
		}
		if e.Ranks < 1 {
			return nil, fmt.Errorf("%w: stage %q has invalid source rank count %d",
				ErrBadManifest, e.Name, e.Ranks)
		}
	}
	return &m, nil
}

// Store is an open checkpoint run directory.
type Store struct {
	dir string
	man Manifest
	// runTopo is the topology of the run currently writing to the store:
	// the manifest's recorded topology after Create or Resume, replaced
	// by AdoptTopology when a rescaled resume takes over the directory.
	// New entries are stamped with its rank count.
	runTopo Topology
	// inj, when non-nil, intercepts segment writes (storage fault
	// injection; see SetInjector).
	inj Injector
}

// Injector intercepts segment writes for storage fault injection. The
// manifest entry is always computed from the clean segment bytes, so an
// injected corruption is indistinguishable from storage damage after a
// successful write — exactly the failure a later resume must detect.
type Injector interface {
	// CorruptWrite inspects the framed segment bytes about to be
	// persisted for a stage and returns the bytes to write instead (nil
	// = write no file, simulating segment loss) plus whether the write
	// is refused outright (ENOSPC: no file AND no manifest entry). A
	// disinterested injector returns (seg, false).
	CorruptWrite(stage string, seg []byte) (out []byte, refused bool)
}

// SetInjector installs (or with nil removes) a write-path storage fault
// injector on the store.
func (s *Store) SetInjector(inj Injector) { s.inj = inj }

// Create starts a fresh run directory for the given fingerprint and
// topology, creating it if needed and truncating any previous manifest
// (stale segments are simply unreferenced; WriteStage replaces them by
// name).
func Create(dir, fingerprint string, topo Topology) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating run directory: %w", err)
	}
	sweepTemps(dir)
	s := &Store{dir: dir, man: Manifest{
		Schema: Schema, Fingerprint: fingerprint, Topology: topo,
	}, runTopo: topo}
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Resume opens an existing run directory, refusing schema or fingerprint
// mismatches: a checkpoint from different inputs or a different config
// must never seed a resume. A topology difference is NOT refused here —
// the fingerprint is rank-independent and stage loaders re-shard; the
// caller reads Topology() to learn the source partition and decides
// whether its own placement constraints allow the rescale.
func Resume(dir, fingerprint string) (*Store, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	m, err := ParseManifest(b)
	if err != nil {
		return nil, err
	}
	if m.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: checkpoint %q, run %q",
			ErrFingerprintMismatch, m.Fingerprint, fingerprint)
	}
	sweepTemps(dir)
	return &Store{dir: dir, man: *m, runTopo: m.Topology}, nil
}

// AdoptTopology hands the run directory to a resumed run with a
// different rank geometry (elastic rescale): stages the resumed run
// writes are stamped with the new rank count, and the manifest's
// top-level topology — what ReadTopology reports and a later -resume
// without -ranks adopts — now names the latest run's geometry. Existing
// entries keep the source partition they were written under.
func (s *Store) AdoptTopology(topo Topology) error {
	if topo.Ranks < 1 || topo.RanksPerNode < 1 {
		return fmt.Errorf("%w: invalid topology %+v", ErrBadManifest, topo)
	}
	s.runTopo = topo
	s.man.Topology = topo
	return s.writeManifest()
}

// ReadTopology reads just the recorded topology from a run directory's
// manifest, without opening the store — the CLI uses it to adopt the
// checkpoint's rank geometry before building a team.
func ReadTopology(dir string) (Topology, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Topology{}, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	m, err := ParseManifest(b)
	if err != nil {
		return Topology{}, err
	}
	return m.Topology, nil
}

// Dir returns the run directory path.
func (s *Store) Dir() string { return s.dir }

// Topology returns the rank geometry recorded when the run directory was
// created — the partition the stage payloads were written under.
func (s *Store) Topology() Topology { return s.man.Topology }

// Stages returns the manifest's stage entries in checkpoint order.
func (s *Store) Stages() []StageEntry { return s.man.Stages }

// Entry returns the named stage's manifest entry, nil when absent.
func (s *Store) Entry(stage string) *StageEntry {
	for i := range s.man.Stages {
		if s.man.Stages[i].Name == stage {
			return &s.man.Stages[i]
		}
	}
	return nil
}

// Completed reports whether the named stage has a checkpoint.
func (s *Store) Completed(stage string) bool { return s.Entry(stage) != nil }

// WriteStage persists one stage's payload: segment written atomically,
// then the manifest updated (replace-by-name or append) and rewritten
// atomically. Returns the resulting entry.
func (s *Store) WriteStage(stage string, payload []byte) (StageEntry, error) {
	return s.WriteStageRound(stage, 0, payload)
}

// WriteStageRound is WriteStage with an iterative-k round tag recorded
// in the manifest entry (0 for stages outside the multi-k loop).
func (s *Store) WriteStageRound(stage string, round int, payload []byte) (StageEntry, error) {
	seg := encodeSegment(stage, payload)
	file := segFileName(stage)
	path := filepath.Join(s.dir, file)
	toDisk := seg
	if s.inj != nil {
		out, refused := s.inj.CorruptWrite(stage, seg)
		if refused {
			return StageEntry{}, fmt.Errorf("%w: %s", ErrWriteRefused, stage)
		}
		toDisk = out
	}
	if toDisk == nil {
		// Injected segment loss: the manifest entry below still lands, so
		// the directory looks exactly like a file vanished after a clean
		// write. Any stale segment from a replaced stage must go too.
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return StageEntry{}, fmt.Errorf("ckpt: removing segment for %s: %w", stage, err)
		}
	} else if err := atomicWrite(path, toDisk); err != nil {
		return StageEntry{}, fmt.Errorf("ckpt: writing segment for %s: %w", stage, err)
	}
	entry := StageEntry{
		Name:        stage,
		File:        file,
		Seq:         len(s.man.Stages),
		Round:       round,
		Ranks:       s.runTopo.Ranks,
		Bytes:       int64(len(seg)),
		CRC32:       crc32.ChecksumIEEE(seg[:len(seg)-4]),
		ContentHash: hashHex(payload),
	}
	replaced := false
	for i := range s.man.Stages {
		if s.man.Stages[i].Name == stage {
			entry.Seq = s.man.Stages[i].Seq
			s.man.Stages[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		s.man.Stages = append(s.man.Stages, entry)
	}
	if err := s.writeManifest(); err != nil {
		return StageEntry{}, err
	}
	return entry, nil
}

// ReadStage loads and fully validates one stage's payload: file size,
// framing, stored CRC, and the manifest's content hash must all agree.
func (s *Store) ReadStage(stage string) ([]byte, error) {
	e := s.Entry(stage)
	if e == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoStage, stage)
	}
	b, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading segment for %s: %w", stage, err)
	}
	if int64(len(b)) != e.Bytes {
		return nil, fmt.Errorf("%w: %s: %d bytes on disk, manifest says %d",
			ErrCorruptSegment, stage, len(b), e.Bytes)
	}
	payload, err := ParseSegment(b, stage)
	if err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != e.CRC32 {
		return nil, fmt.Errorf("%w: %s: CRC %08x, manifest says %08x",
			ErrCorruptSegment, stage, got, e.CRC32)
	}
	if got := hashHex(payload); got != e.ContentHash {
		return nil, fmt.Errorf("%w: %s: content hash %s, manifest says %s",
			ErrCorruptSegment, stage, got, e.ContentHash)
	}
	return payload, nil
}

// encodeSegment frames a payload (see the package comment for layout).
func encodeSegment(stage string, payload []byte) []byte {
	n := len(segMagic) + 4 + len(stage) + 8 + len(payload) + 4
	b := make([]byte, 0, n)
	b = append(b, segMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(stage)))
	b = append(b, stage...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// ParseSegment validates a segment's framing and embedded CRC and
// returns the payload. wantStage "" skips the name check. Never panics
// on any input (fuzzed).
func ParseSegment(b []byte, wantStage string) ([]byte, error) {
	if len(b) < len(segMagic)+4+8+4 {
		return nil, fmt.Errorf("%w: short segment (%d bytes)", ErrCorruptSegment, len(b))
	}
	if string(b[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptSegment)
	}
	off := len(segMagic)
	nameLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if nameLen < 0 || nameLen > len(b)-off-8-4 {
		return nil, fmt.Errorf("%w: bad name length", ErrCorruptSegment)
	}
	name := string(b[off : off+nameLen])
	off += nameLen
	if wantStage != "" && name != wantStage {
		return nil, fmt.Errorf("%w: segment names stage %q, want %q",
			ErrCorruptSegment, name, wantStage)
	}
	payLen := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if payLen != uint64(len(b)-off-4) {
		return nil, fmt.Errorf("%w: bad payload length", ErrCorruptSegment)
	}
	return b[off : len(b)-4], nil
}

// segFileName maps a stage name to its segment basename; stage names are
// pipeline identifiers ([a-z0-9-]), already filesystem-safe.
func segFileName(stage string) string { return stage + ".seg" }

// atomicWrite writes bytes via temp file + rename, so readers never see
// a partially written file.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (s *Store) writeManifest() error {
	b, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	if err := atomicWrite(filepath.Join(s.dir, ManifestName), append(b, '\n')); err != nil {
		return fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	return nil
}

func hashHex(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint accumulates the config knobs and input bytes that shape
// stage outputs into a 64-bit FNV-1a digest. Length-prefixing every
// field keeps adjacent fields from aliasing.
type Fingerprint struct {
	h uint64
}

// NewFingerprint starts an empty digest.
func NewFingerprint() *Fingerprint {
	return &Fingerprint{h: 0xcbf29ce484222325} // FNV-64a offset basis
}

func (f *Fingerprint) add(b byte) {
	f.h ^= uint64(b)
	f.h *= 0x100000001b3 // FNV-64a prime
}

// Int folds a signed integer.
func (f *Fingerprint) Int(v int64) {
	for i := 0; i < 8; i++ {
		f.add(byte(uint64(v) >> (8 * i)))
	}
}

// Bool folds a flag.
func (f *Fingerprint) Bool(v bool) {
	if v {
		f.add(1)
	} else {
		f.add(0)
	}
}

// Bytes folds a length-prefixed byte string.
func (f *Fingerprint) Bytes(b []byte) {
	f.Int(int64(len(b)))
	for _, c := range b {
		f.add(c)
	}
}

// Str folds a length-prefixed string.
func (f *Fingerprint) Str(s string) {
	f.Int(int64(len(s)))
	for i := 0; i < len(s); i++ {
		f.add(s[i])
	}
}

// Hex returns the digest as a fixed-width hex string.
func (f *Fingerprint) Hex() string { return fmt.Sprintf("%016x", f.h) }

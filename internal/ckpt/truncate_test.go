package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "fp-abc", testTopo)
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"io", "kmer-analysis", "contig-generation", "scaffolding"}
	for _, st := range stages {
		if _, err := s.WriteStage(st, []byte("payload of "+st)); err != nil {
			t.Fatal(err)
		}
	}

	// Preempt after contig generation: drop scaffolding.
	keep := map[string]bool{"io": true, "kmer-analysis": true, "contig-generation": true}
	removed, err := Truncate(dir, func(st string) bool { return keep[st] })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}

	// The truncated directory resumes like a crash in scaffolding would:
	// kept prefix rehydrates, dropped stage reads as absent.
	r, err := Resume(dir, "fp-abc")
	if err != nil {
		t.Fatalf("resume after truncate: %v", err)
	}
	if !r.Completed("contig-generation") || r.Completed("scaffolding") {
		t.Fatal("completion set wrong after truncate")
	}
	got, err := r.ReadStage("kmer-analysis")
	if err != nil || !bytes.Equal(got, []byte("payload of kmer-analysis")) {
		t.Fatalf("kept stage unreadable after truncate: %q, %v", got, err)
	}

	// Truncating to the same set is a no-op (manifest not rewritten).
	before, err := readFile(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	removed, err = Truncate(dir, func(st string) bool { return keep[st] })
	if err != nil || removed != 0 {
		t.Fatalf("idempotent truncate: removed %d, err %v", removed, err)
	}
	after, err := readFile(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("no-op truncate rewrote the manifest")
	}

	// Truncating everything leaves a valid empty-progress manifest.
	if _, err := Truncate(dir, func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	r, err = Resume(dir, "fp-abc")
	if err != nil {
		t.Fatalf("resume after full truncate: %v", err)
	}
	for _, st := range stages {
		if r.Completed(st) {
			t.Fatalf("stage %s still recorded complete after full truncate", st)
		}
	}

	// Missing directory errors.
	if _, err := Truncate(filepath.Join(dir, "nope"), func(string) bool { return true }); err == nil {
		t.Fatal("truncate of missing dir accepted")
	}
}

func readFile(t *testing.T, dir string) ([]byte, error) {
	t.Helper()
	return os.ReadFile(filepath.Join(dir, ManifestName))
}

// Deterministic binary codec for checkpoint segment payloads. The
// encoding is hand-rolled rather than gob/JSON so that a payload's bytes
// are a pure function of the logical stage output: fixed-width
// little-endian integers, length-prefixed byte strings, no maps, no
// reflection. Determinism matters because the manifest records a content
// hash per stage — re-checkpointing an identical result must produce an
// identical hash.
package ckpt

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is wrapped by decode errors caused by short or malformed
// payloads.
var ErrTruncated = errors.New("ckpt: truncated or malformed payload")

// enc is an append-only little-endian writer.
type enc struct {
	b []byte
}

func (e *enc) u8(v byte)  { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) bytes(v []byte) {
	e.u64(uint64(len(v)))
	e.b = append(e.b, v...)
}

// dec is the matching bounds-checked reader. Errors are sticky: after the
// first failure every read returns zero values, and callers check err
// once at the end. No input can make it panic or allocate more than the
// input's own length (list headers are validated against the remaining
// bytes before allocation).
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) bool() bool   { return d.u8() != 0 }

func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:])
	d.off += int(n)
	return v
}

// count reads a list length and validates it against the smallest
// possible per-element size, so a corrupt header cannot trigger a huge
// allocation.
func (d *dec) count(minElemBytes int) int {
	n := d.u64()
	if d.err != nil || minElemBytes < 1 ||
		n > uint64(len(d.b)-d.off)/uint64(minElemBytes) {
		d.fail()
		return 0
	}
	return int(n)
}

// done reports the terminal decode status: every byte consumed, no
// sticky error.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return ErrTruncated
	}
	return nil
}

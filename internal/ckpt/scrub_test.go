package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scrubFixture creates a three-stage checkpoint directory.
func scrubFixture(t *testing.T) (string, []StageEntry) {
	t.Helper()
	dir := t.TempDir()
	s, err := Create(dir, "fp-scrub", testTopo)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []string{"kmer-analysis", "contig-generation", "scaffolding"} {
		if _, err := s.WriteStage(st, []byte("payload for "+st)); err != nil {
			t.Fatal(err)
		}
	}
	return dir, s.Stages()
}

func TestScrubIntactDirIsNoOp(t *testing.T) {
	dir, entries := scrubFixture(t)
	rep, err := Scrub(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healed() {
		t.Fatalf("intact dir reported healed: %+v", rep)
	}
	if rep.Intact != len(entries) || rep.Dropped != 0 || rep.Quarantined != 0 || rep.RepairedBytes != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ScannedBytes == 0 {
		t.Fatal("scrub read no segment bytes")
	}
	// The directory must still resume.
	if _, err := Resume(dir, "fp-scrub"); err != nil {
		t.Fatalf("resume after no-op scrub: %v", err)
	}
	if !strings.Contains(rep.FormatTable(), "intact") {
		t.Fatalf("table missing verdict:\n%s", rep.FormatTable())
	}
}

// TestScrubQuarantinesBitFlip: damage the MIDDLE stage and check the
// prefix rule — the first stage survives, the damaged one is
// quarantined, and the intact-but-later stage is dropped.
func TestScrubQuarantinesBitFlip(t *testing.T) {
	dir, entries := scrubFixture(t)
	segPath := filepath.Join(dir, "contig-generation.seg")
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(segPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healed() || rep.Intact != 1 || rep.Dropped != 2 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.RepairedBytes != entries[1].Bytes+entries[2].Bytes {
		t.Fatalf("RepairedBytes = %d, want %d", rep.RepairedBytes, entries[1].Bytes+entries[2].Bytes)
	}
	if _, err := os.Stat(segPath + QuarantineSuffix); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	if _, err := os.Stat(segPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("damaged segment still present: %v", err)
	}
	// scaffolding's file stays on disk (unreferenced), only its manifest
	// entry is cut.
	if _, err := os.Stat(filepath.Join(dir, "scaffolding.seg")); err != nil {
		t.Fatalf("dropped-but-intact segment removed: %v", err)
	}

	s, err := Resume(dir, "fp-scrub")
	if err != nil {
		t.Fatalf("resume after scrub: %v", err)
	}
	if !s.Completed("kmer-analysis") || s.Completed("contig-generation") || s.Completed("scaffolding") {
		t.Fatalf("healed manifest stages = %+v", s.Stages())
	}

	tab := rep.FormatTable()
	for _, want := range []string{"intact", "quarantined", "dropped"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestScrubHandlesDeletedSegment(t *testing.T) {
	dir, entries := scrubFixture(t)
	if err := os.Remove(filepath.Join(dir, "kmer-analysis.seg")); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(dir)
	if err != nil {
		t.Fatal(err)
	}
	// First stage gone: everything recomputes, nothing to quarantine.
	if rep.Intact != 0 || rep.Dropped != 3 || rep.Quarantined != 0 {
		t.Fatalf("report = %+v", rep)
	}
	var want int64
	for _, e := range entries {
		want += e.Bytes
	}
	if rep.RepairedBytes != want {
		t.Fatalf("RepairedBytes = %d, want %d", rep.RepairedBytes, want)
	}
	s, err := Resume(dir, "fp-scrub")
	if err != nil {
		t.Fatalf("resume after scrub: %v", err)
	}
	if len(s.Stages()) != 0 {
		t.Fatalf("healed manifest not empty: %+v", s.Stages())
	}
}

func TestScrubTornWrite(t *testing.T) {
	dir, _ := scrubFixture(t)
	segPath := filepath.Join(dir, "scaffolding.seg")
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intact != 2 || rep.Dropped != 1 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := Resume(dir, "fp-scrub"); err != nil {
		t.Fatalf("resume after scrub: %v", err)
	}
}

func TestScrubUnrecoverable(t *testing.T) {
	t.Run("missing-manifest", func(t *testing.T) {
		if _, err := Scrub(t.TempDir()); !errors.Is(err, ErrUnrecoverableCkpt) {
			t.Fatalf("err = %v, want ErrUnrecoverableCkpt", err)
		}
	})
	t.Run("unparsable-manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{nope"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Scrub(dir)
		if !errors.Is(err, ErrUnrecoverableCkpt) || !errors.Is(err, ErrBadManifest) {
			t.Fatalf("err = %v, want ErrUnrecoverableCkpt wrapping ErrBadManifest", err)
		}
	})
	t.Run("segment-damage-is-recoverable", func(t *testing.T) {
		dir, _ := scrubFixture(t)
		if err := os.Remove(filepath.Join(dir, "contig-generation.seg")); err != nil {
			t.Fatal(err)
		}
		if _, err := Scrub(dir); err != nil {
			t.Fatalf("segment damage must heal, got %v", err)
		}
	})
}

// TestStaleTempSweep: orphaned *.tmp files (a crash between temp write
// and rename) are swept by Create, Resume, and Scrub.
func TestStaleTempSweep(t *testing.T) {
	plant := func(t *testing.T, dir string) string {
		t.Helper()
		p := filepath.Join(dir, "contig-generation.seg.123.tmp")
		if err := os.WriteFile(p, []byte("half a segment"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	t.Run("create", func(t *testing.T) {
		dir := t.TempDir()
		p := plant(t, dir)
		if _, err := Create(dir, "fp", testTopo); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("temp survived Create: %v", err)
		}
	})
	t.Run("resume", func(t *testing.T) {
		dir, _ := scrubFixture(t)
		p := plant(t, dir)
		if _, err := Resume(dir, "fp-scrub"); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("temp survived Resume: %v", err)
		}
	})
	t.Run("scrub", func(t *testing.T) {
		dir, _ := scrubFixture(t)
		p := plant(t, dir)
		rep, err := Scrub(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TempsRemoved != 1 || !rep.Healed() {
			t.Fatalf("report = %+v", rep)
		}
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("temp survived Scrub: %v", err)
		}
	})
}

func TestValidateSegmentBytes(t *testing.T) {
	dir, entries := scrubFixture(t)
	e := entries[0]
	b, err := os.ReadFile(filepath.Join(dir, e.File))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSegmentBytes(b, e); err != nil {
		t.Fatalf("clean segment rejected: %v", err)
	}
	short := b[:len(b)-1]
	if err := ValidateSegmentBytes(short, e); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("size mismatch: err = %v", err)
	}
	flip := append([]byte(nil), b...)
	flip[len(flip)/2] ^= 1
	if err := ValidateSegmentBytes(flip, e); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("bit flip: err = %v", err)
	}
}

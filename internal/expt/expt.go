// Package expt regenerates every table and figure of the paper's
// evaluation (§5) on scaled-down synthetic datasets: Figure 6 (heavy-
// hitter k-mer analysis scaling on wheat), Tables 1–2 (communication-
// avoiding traversal), Figure 7 (scaffolding strong scaling), Table 3
// (metagenome k-mer analysis + contig generation), Figure 8 (end-to-end
// strong scaling), and the §5.6 assembler comparison. Absolute times are
// not comparable to the paper's Cray XC30 — the reproduced quantities are
// the shapes: who wins, by what factor, and where scaling saturates.
package expt

import (
	"bytes"
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"hipmer/internal/fastq"
	"hipmer/internal/genome"
	"hipmer/internal/kanalysis"
	"hipmer/internal/pipeline"
	"hipmer/internal/xrt"
)

// Scale parameterizes the experiment suite.
type Scale struct {
	// Cores is the simulated-core sweep (strong scaling).
	Cores []int
	// RanksPerNode mirrors Edison's 24 cores/node.
	RanksPerNode int
	// Seed makes every dataset reproducible.
	Seed int64
	// K is the assembly k-mer length.
	K int

	HumanLen int
	HumanCov float64
	WheatLen int
	WheatCov float64

	MetaLen     int
	MetaSpecies int
	MetaPairs   int

	// Fig6WheatLen sizes the wheat dataset for the k-mer-analysis-only
	// Figure 6 run (larger than the end-to-end wheat genome, so the
	// heavy-hitter k-mers reach the extreme counts of real wheat).
	Fig6WheatLen int

	// BenchHumanLen sizes the human dataset for the k-mer-analysis
	// communication benchmark (BenchKanalysis). Larger than the
	// end-to-end genome so per-destination traffic at the top of the
	// core sweep is dominated by data, not by per-pass tail flushes.
	BenchHumanLen int

	// OracleFragments is the number of chromosome-scale pieces in the
	// Table 1/2 same-species dataset.
	OracleFragments int
	// IOSatCores positions the file-system saturation point: the
	// aggregate bandwidth equals IOSatCores x the single-rank bandwidth,
	// so I/O time stops improving beyond that concurrency (Edison's
	// Lustre saturated near 960 cores; scale it with the sweep).
	IOSatCores int
}

// SmallScale is the default configuration: minutes of wall time on a
// laptop, with every phenomenon of the paper still visible.
func SmallScale() Scale {
	return Scale{
		Cores:           []int{24, 48, 96, 192},
		RanksPerNode:    24,
		Seed:            20151115, // SC'15 conference date
		K:               31,
		HumanLen:        250000,
		HumanCov:        30,
		WheatLen:        150000,
		WheatCov:        25,
		MetaLen:         150000,
		MetaSpecies:     40,
		MetaPairs:       25000,
		Fig6WheatLen:    400000,
		BenchHumanLen:   2000000,
		OracleFragments: 768,
		IOSatCores:      48,
	}
}

func (sc Scale) teamCfg(p int) xrt.Config {
	cost := xrt.DefaultCostModel()
	if sc.IOSatCores > 0 {
		cost.IOAggBytesPerSec = cost.IORankBytesPerSec * float64(sc.IOSatCores)
	}
	return xrt.Config{Ranks: p, RanksPerNode: sc.RanksPerNode, Seed: sc.Seed, Cost: cost}
}

// splitPairs distributes interleaved pair records round-robin by pair.
func splitPairs(recs []fastq.Record, p int) [][]fastq.Record {
	parts := make([][]fastq.Record, p)
	for i := 0; i+1 < len(recs); i += 2 {
		r := (i / 2) % p
		parts[r] = append(parts[r], recs[i], recs[i+1])
	}
	return parts
}

// commPct estimates the paper's "percentage of communication": the share
// of the critical-path time not explained by perfectly balanced local
// compute — i.e. message costs plus the wait caused by receiver-side load
// imbalance, which is exactly what the heavy-hitter optimization removes.
func commPct(elapsedNs float64, items int64, cost xrt.CostModel, p int) float64 {
	perItem := 3*cost.ItemNs + 1.7*cost.LocalOpNs // 3 passes + owner applies
	ideal := float64(items) * perItem / float64(p)
	if elapsedNs <= 0 {
		return 0
	}
	pct := 100 * (1 - ideal/elapsedNs)
	if pct < 0 {
		return 0
	}
	return pct
}

func fmtTable(header []string, rows [][]string) string {
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, h)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return buf.String()
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ---------------------------------------------------------------------
// Figure 6: strong scaling of k-mer analysis on wheat, Default vs Heavy
// Hitters.

// Fig6Row is one concurrency point of Figure 6.
type Fig6Row struct {
	Cores          int
	IOSec          float64
	DefaultSec     float64 // k-mer analysis time without the HH optimization
	HeavyHitSec    float64 // with it
	DefaultCommPct float64
	HeavyHitPct    float64
	HeavyHitters   int
}

// Fig6 regenerates Figure 6.
func Fig6(sc Scale) ([]Fig6Row, string) {
	rng := xrt.NewPrng(sc.Seed)
	wlen := sc.Fig6WheatLen
	if wlen == 0 {
		wlen = 3 * sc.WheatLen
	}
	g := genome.WheatLike(rng, wlen)
	recs, _ := genome.SimulatePairs(rng, g, genome.SimOptions{
		Coverage: sc.WheatCov,
		Lib:      genome.Library{Name: "wheat", ReadLen: 150, InsertMean: 500, InsertSD: 40},
		Err:      genome.DefaultErrorModel(),
	})
	var inputBytes int64
	for _, r := range recs {
		inputBytes += int64(len(r.ID) + len(r.Seq) + len(r.Qual) + 6)
	}

	var rows []Fig6Row
	for _, p := range sc.Cores {
		row := Fig6Row{Cores: p}
		parts := splitPairs(recs, p)
		for _, hh := range []bool{false, true} {
			team := xrt.NewTeam(sc.teamCfg(p))
			io := team.Run(func(r *xrt.Rank) { r.ChargeIORead(inputBytes / int64(p)) })
			res := kanalysis.Run(team, parts, kanalysis.Options{
				K: sc.K, MinCount: 2, HeavyHitters: hh,
			})
			elapsed := res.SketchPhase.Virtual + res.BloomPhase.Virtual + res.CountPhase.Virtual
			pct := commPct(float64(elapsed.Nanoseconds()), res.TotalKmers, team.Cost(), p)
			if !hh {
				row.DefaultSec = (elapsed + io.Virtual).Seconds()
				row.DefaultCommPct = pct
			} else {
				row.HeavyHitSec = (elapsed + io.Virtual).Seconds()
				row.HeavyHitPct = pct
				row.HeavyHitters = res.HeavyHitters
			}
			if row.IOSec == 0 {
				row.IOSec = io.Virtual.Seconds()
			}
		}
		rows = append(rows, row)
	}

	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.DefaultSec),
			fmt.Sprintf("%.3f", r.HeavyHitSec),
			fmt.Sprintf("%.2fx", r.DefaultSec/r.HeavyHitSec),
			fmt.Sprintf("%.0f%%", r.DefaultCommPct),
			fmt.Sprintf("%.0f%%", r.HeavyHitPct),
			fmt.Sprintf("%.3f", r.IOSec),
			fmt.Sprintf("%d", r.HeavyHitters),
		})
	}
	out := "Figure 6 — k-mer analysis strong scaling on wheat-like data\n" +
		"(Default = owner-computes only; HH = Misra-Gries heavy hitters, θ=32000)\n" +
		fmtTable([]string{"cores", "default(s)", "HH(s)", "speedup",
			"comm%(def)", "comm%(HH)", "I/O(s)", "#HH"}, tab)
	return rows, out
}

// ---------------------------------------------------------------------
// Tables 1 and 2: communication-avoiding de Bruijn graph traversal.

// OracleRow is one concurrency point of Tables 1/2.
type OracleRow struct {
	Cores                        int
	NoOracleSec, O1Sec, O4Sec    float64
	SpeedupO1, SpeedupO4         float64
	OffPctNo, OffPctO1, OffPctO4 float64
	ReductionO1, ReductionO4     float64
	O1MemBytes, O4MemBytes       int64
}

// Tables12 regenerates Table 1 (traversal times and speedups) and
// Table 2 (off-node communication and its reduction) in one sweep: the
// first assembly of individual 1 provides the oracle used to traverse
// individual 2 of the same species (0.2% diverged).
func Tables12(sc Scale) ([]OracleRow, string, string) {
	rng := xrt.NewPrng(sc.Seed + 1)
	var g1, g2 [][]byte
	for i := 0; i < sc.OracleFragments; i++ {
		c := genome.Random(rng, 300+rng.Intn(500))
		g1 = append(g1, c)
		g2 = append(g2, genome.Mutate(rng, c, 0.002))
	}
	// use multi-node concurrencies: a single-node team has no off-node
	// traffic to avoid (the paper's 480 and 1920 cores are 20 and 80 nodes)
	concurrencies := []int{sc.Cores[len(sc.Cores)/2], sc.Cores[len(sc.Cores)-1]}

	var rows []OracleRow
	for _, p := range concurrencies {
		row := OracleRow{Cores: p}
		// individual 1 assembly provides contigs for the oracle
		team1 := xrt.NewTeam(sc.teamCfg(p))
		res1 := contigRun(team1, g1, sc.K, nil)
		uu := int(res1.UUKmers)
		o1 := buildOracle(res1, sc.K, p, 2*uu)
		o4 := buildOracle(res1, sc.K, p, 8*uu)
		row.O1MemBytes, row.O4MemBytes = o1.MemoryBytes(), o4.MemoryBytes()

		type outcome struct {
			sec    float64
			offPct float64
		}
		// median of three runs: traversal conflict patterns vary with
		// goroutine scheduling, and an occasional abort storm would
		// otherwise distort a single measurement
		measure := func(oracle oracleT) outcome {
			var outs []outcome
			for rep := 0; rep < 3; rep++ {
				team := xrt.NewTeam(sc.teamCfg(p))
				res := contigRun(team, g2, sc.K, oracle)
				d := res.TraversePhase.Comm
				outs = append(outs, outcome{
					sec:    res.TraversePhase.Virtual.Seconds(),
					offPct: 100 * d.OffNodeLookupFrac(),
				})
			}
			sort.Slice(outs, func(i, j int) bool { return outs[i].sec < outs[j].sec })
			return outs[1]
		}
		no := measure(nil)
		w1 := measure(o1)
		w4 := measure(o4)
		row.NoOracleSec, row.O1Sec, row.O4Sec = no.sec, w1.sec, w4.sec
		row.SpeedupO1 = no.sec / w1.sec
		row.SpeedupO4 = no.sec / w4.sec
		row.OffPctNo, row.OffPctO1, row.OffPctO4 = no.offPct, w1.offPct, w4.offPct
		row.ReductionO1 = 100 * (1 - w1.offPct/no.offPct)
		row.ReductionO4 = 100 * (1 - w4.offPct/no.offPct)
		rows = append(rows, row)
	}

	var t1, t2 [][]string
	for _, r := range rows {
		t1 = append(t1, []string{
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.NoOracleSec),
			fmt.Sprintf("%.3f", r.O1Sec),
			fmt.Sprintf("%.3f", r.O4Sec),
			fmt.Sprintf("%.1fx", r.SpeedupO1),
			fmt.Sprintf("%.1fx", r.SpeedupO4),
		})
		t2 = append(t2, []string{
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.1f%%", r.OffPctNo),
			fmt.Sprintf("%.1f%%", r.OffPctO1),
			fmt.Sprintf("%.1f%%", r.OffPctO4),
			fmt.Sprintf("%.1f%%", r.ReductionO1),
			fmt.Sprintf("%.1f%%", r.ReductionO4),
		})
	}
	out1 := "Table 1 — communication-avoiding traversal speedup (same-species oracle)\n" +
		fmtTable([]string{"cores", "no-oracle(s)", "oracle-1(s)", "oracle-4(s)",
			"speedup-1", "speedup-4"}, t1)
	out2 := "Table 2 — off-node lookups and reduction via oracle hash functions\n" +
		fmtTable([]string{"cores", "off-node(no)", "off-node(o1)", "off-node(o4)",
			"reduction-1", "reduction-4"}, t2)
	return rows, out1, out2
}

// ---------------------------------------------------------------------
// Figures 7 and 8 share one strong-scaling sweep of the full pipeline.

// SweepRow is one (dataset, concurrency) pipeline execution.
type SweepRow struct {
	Dataset   string
	Cores     int
	IOSec     float64
	KmerSec   float64
	ContigSec float64
	// Scaffolding decomposition (Figure 7).
	AlignerSec  float64
	GapCloseSec float64
	RestScafSec float64
	ScafSec     float64 // aligner + rest + gap closing
	TotalSec    float64
}

// RunSweep executes the end-to-end pipeline over the core sweep for one
// dataset.
func RunSweep(sc Scale, dataset string) ([]SweepRow, error) {
	var libs []pipeline.Library
	switch dataset {
	case "human":
		_, libs = pipeline.SimulatedHuman(sc.Seed+2, sc.HumanLen, sc.HumanCov)
	case "wheat":
		_, libs = pipeline.SimulatedWheat(sc.Seed+3, sc.WheatLen, sc.WheatCov)
	default:
		return nil, fmt.Errorf("expt: unknown dataset %q", dataset)
	}
	var rows []SweepRow
	for _, p := range sc.Cores {
		team := xrt.NewTeam(sc.teamCfg(p))
		res, err := pipeline.Run(team, libs, pipeline.Config{K: sc.K, MinCount: 3})
		if err != nil {
			return nil, err
		}
		scafSec := res.Timing("scaffolding").Virtual.Seconds() +
			res.Timing("gap-closing").Virtual.Seconds()
		alignSec := res.Timing("merAligner").Virtual.Seconds()
		rows = append(rows, SweepRow{
			Dataset:     dataset,
			Cores:       p,
			IOSec:       res.Timing("io").Virtual.Seconds(),
			KmerSec:     res.Timing("kmer-analysis").Virtual.Seconds(),
			ContigSec:   res.Timing("contig-generation").Virtual.Seconds(),
			AlignerSec:  alignSec,
			GapCloseSec: res.Timing("gap-closing").Virtual.Seconds(),
			RestScafSec: res.Timing("scaffolding").Virtual.Seconds() - alignSec,
			ScafSec:     scafSec,
			TotalSec:    res.Timing("total").Virtual.Seconds(),
		})
	}
	return rows, nil
}

// Fig7Format renders the Figure 7 view (scaffolding breakdown) of a sweep.
func Fig7Format(rows []SweepRow) string {
	var tab [][]string
	base := rows[0]
	for _, r := range rows {
		eff := base.ScafSec / r.ScafSec * float64(base.Cores) / float64(r.Cores)
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.AlignerSec),
			fmt.Sprintf("%.3f", r.GapCloseSec),
			fmt.Sprintf("%.3f", r.RestScafSec),
			fmt.Sprintf("%.3f", r.ScafSec),
			fmt.Sprintf("%.2f", eff),
		})
	}
	return fmt.Sprintf("Figure 7 — scaffolding strong scaling (%s)\n", rows[0].Dataset) +
		fmtTable([]string{"cores", "merAligner(s)", "gap-closing(s)",
			"rest-scaffolding(s)", "overall(s)", "efficiency"}, tab)
}

// Fig8Format renders the Figure 8 view (end-to-end breakdown) of a sweep.
func Fig8Format(rows []SweepRow) string {
	var tab [][]string
	base := rows[0]
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.KmerSec),
			fmt.Sprintf("%.3f", r.ContigSec),
			fmt.Sprintf("%.3f", r.ScafSec),
			fmt.Sprintf("%.3f", r.IOSec),
			fmt.Sprintf("%.3f", r.TotalSec),
			fmt.Sprintf("%.1fx", base.TotalSec/r.TotalSec),
		})
	}
	return fmt.Sprintf("Figure 8 — end-to-end strong scaling (%s)\n", rows[0].Dataset) +
		fmtTable([]string{"cores", "kmer(s)", "contig(s)", "scaffold(s)",
			"io(s)", "total(s)", "speedup"}, tab)
}

// ---------------------------------------------------------------------
// Table 3: metagenome k-mer analysis + contig generation.

// Table3Row is one concurrency point of Table 3.
type Table3Row struct {
	Cores         int
	KmerSec       float64
	ContigSec     float64
	IOSec         float64
	SingletonFrac float64
}

// Table3 regenerates Table 3 on the synthetic wetlands metagenome,
// running only through contig generation as the paper does.
func Table3(sc Scale) ([]Table3Row, string) {
	libs := pipeline.SimulatedMetagenome(sc.Seed+4, sc.MetaLen, sc.MetaSpecies, sc.MetaPairs)
	concurrencies := []int{sc.Cores[len(sc.Cores)-2], sc.Cores[len(sc.Cores)-1]}
	var rows []Table3Row
	for _, p := range concurrencies {
		team := xrt.NewTeam(sc.teamCfg(p))
		res, err := pipeline.Run(team, libs, pipeline.Config{
			K: sc.K, MinCount: 2, ContigsOnly: true,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table3Row{
			Cores:     p,
			KmerSec:   res.Timing("kmer-analysis").Virtual.Seconds(),
			ContigSec: res.Timing("contig-generation").Virtual.Seconds(),
			IOSec:     res.Timing("io").Virtual.Seconds(),
		})
	}
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.KmerSec),
			fmt.Sprintf("%.3f", r.ContigSec),
			fmt.Sprintf("%.3f", r.IOSec),
		})
	}
	out := "Table 3 — metagenome k-mer analysis and contig generation\n" +
		"(I/O reported separately; it is saturated at both concurrencies)\n" +
		fmtTable([]string{"cores", "k-mer analysis(s)", "contig generation(s)", "file I/O(s)"}, tab)
	return rows, out
}

// ---------------------------------------------------------------------
// §5.6: competing assemblers.

// CompareRow is one assembler outcome in the §5.6 comparison.
type CompareRow struct {
	Name     string
	TotalSec float64
	VsHipMer float64
}

// Compare regenerates the §5.6 comparison at one concurrency.
func Compare(sc Scale) ([]CompareRow, string) {
	_, libs := pipeline.SimulatedHuman(sc.Seed+5, sc.HumanLen, sc.HumanCov)
	p := sc.Cores[len(sc.Cores)/2]
	cfg := sc.teamCfg(p)
	pcfg := pipeline.Config{K: sc.K, MinCount: 3}

	outcomes := runComparison(cfg, libs, pcfg)
	var rows []CompareRow
	hip := outcomes[0].Virtual.Seconds()
	for _, o := range outcomes {
		rows = append(rows, CompareRow{
			Name:     o.Name,
			TotalSec: o.Virtual.Seconds(),
			VsHipMer: o.Virtual.Seconds() / hip,
		})
	}
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.TotalSec),
			fmt.Sprintf("%.1fx", r.VsHipMer),
		})
	}
	out := fmt.Sprintf("§5.6 — competing assemblers at %d cores (human-like dataset)\n", p) +
		fmtTable([]string{"assembler", "end-to-end(s)", "vs HipMer"}, tab)
	return rows, out
}

package expt

import (
	"strings"
	"testing"
)

// tinyScale keeps the experiment suite fast enough for unit testing while
// preserving every qualitative effect.
func tinyScale() Scale {
	return Scale{
		Cores:           []int{8, 16, 32},
		RanksPerNode:    4,
		Seed:            7,
		K:               21,
		HumanLen:        30000,
		HumanCov:        25,
		WheatLen:        40000,
		WheatCov:        20,
		MetaLen:         40000,
		MetaSpecies:     12,
		MetaPairs:       6000,
		OracleFragments: 96,
		IOSatCores:      12,
		Fig6WheatLen:    90000,
	}
}

func TestFig6ShapeHeavyHittersWin(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, text := Fig6(sc)
	if len(rows) != len(sc.Cores) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.HeavyHitters == 0 {
			t.Fatalf("no heavy hitters identified at %d cores", r.Cores)
		}
		if r.HeavyHitSec >= r.DefaultSec {
			t.Fatalf("HH slower at %d cores: %.3f vs %.3f",
				r.Cores, r.HeavyHitSec, r.DefaultSec)
		}
	}
	// the default version's advantage gap should widen with concurrency
	// (comm fraction grows), as in the paper (2.4x at the top end)
	first := rows[0].DefaultSec / rows[0].HeavyHitSec
	last := rows[len(rows)-1].DefaultSec / rows[len(rows)-1].HeavyHitSec
	if last < first {
		t.Logf("note: HH advantage did not widen (%.2fx -> %.2fx)", first, last)
	}
	if !strings.Contains(text, "Figure 6") {
		t.Fatal("missing caption")
	}
}

func TestTables12Shape(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, t1, t2 := Tables12(sc)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// abort-pattern-dependent quantities (traversal times, lookup
		// mixes) hold their envelopes only under undistorted scheduling;
		// the race detector reshapes the claim races, so these shape
		// assertions are gated (the structural ones below are not)
		if !raceDetectorEnabled {
			// (virtual traversal time varies with abort patterns at tiny
			// scale; the communication counters below are the stable signal)
			if r.SpeedupO1 < 0.7 {
				t.Fatalf("oracle-1 badly slowed traversal at %d cores: %.2fx", r.Cores, r.SpeedupO1)
			}
			// traversal timing is scheduling-sensitive at tiny scale; the
			// stable oracle-4 vs oracle-1 signal is the off-node lookup share
			if r.SpeedupO4 < r.SpeedupO1*0.6 {
				t.Fatalf("oracle-4 (%.2fx) far behind oracle-1 (%.2fx)",
					r.SpeedupO4, r.SpeedupO1)
			}
			if r.OffPctO4 > r.OffPctO1*1.05 {
				t.Fatalf("oracle-4 off-node %.1f%% above oracle-1 %.1f%%",
					r.OffPctO4, r.OffPctO1)
			}
			if r.OffPctO4 >= r.OffPctNo {
				t.Fatalf("oracle-4 did not reduce off-node lookups: %.1f%% vs %.1f%%",
					r.OffPctO4, r.OffPctNo)
			}
			if r.ReductionO4 < 30 {
				t.Fatalf("oracle-4 off-node reduction only %.1f%%", r.ReductionO4)
			}
		}
		if r.O4MemBytes != 4*r.O1MemBytes {
			t.Fatalf("oracle-4 memory should be 4x oracle-1: %d vs %d",
				r.O4MemBytes, r.O1MemBytes)
		}
	}
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t2, "Table 2") {
		t.Fatal("missing captions")
	}
}

func TestSweepScalesAndBreaksDown(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, err := RunSweep(sc, "human")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.Cores) {
		t.Fatalf("got %d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.TotalSec >= first.TotalSec {
		t.Fatalf("no end-to-end strong scaling: %.3f -> %.3f", first.TotalSec, last.TotalSec)
	}
	for _, r := range rows {
		if r.ScafSec <= 0 || r.KmerSec <= 0 || r.ContigSec <= 0 {
			t.Fatalf("missing stage time: %+v", r)
		}
	}
	// §5.3: merAligner is a dominant scaffolding component. At tiny scale
	// the depth-lookup module is of comparable size, so require merAligner
	// to be within 2x of the rest rather than strictly larger.
	if first.AlignerSec*2 < first.RestScafSec {
		t.Fatalf("merAligner unexpectedly cheap at %d cores: %+v",
			first.Cores, first)
	}
	f7, f8 := Fig7Format(rows), Fig8Format(rows)
	if !strings.Contains(f7, "Figure 7") || !strings.Contains(f8, "Figure 8") {
		t.Fatal("missing captions")
	}
}

func TestTable3MetagenomeScales(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, text := Table3(sc)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// doubling cores should reduce the non-I/O stages but not I/O
	if rows[1].KmerSec >= rows[0].KmerSec {
		t.Fatalf("k-mer analysis did not scale: %.3f -> %.3f",
			rows[0].KmerSec, rows[1].KmerSec)
	}
	if rows[1].IOSec < rows[0].IOSec*0.9 {
		t.Fatalf("saturated I/O should stay flat: %.3f -> %.3f",
			rows[0].IOSec, rows[1].IOSec)
	}
	if !strings.Contains(text, "Table 3") {
		t.Fatal("missing caption")
	}
}

func TestCompareShape(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, text := Compare(sc)
	if len(rows) != 4 {
		t.Fatalf("got %d assemblers", len(rows))
	}
	if rows[0].Name != "HipMer" {
		t.Fatalf("first row should be HipMer: %s", rows[0].Name)
	}
	for _, r := range rows[1:] {
		if r.VsHipMer <= 1.0 {
			t.Fatalf("%s should be slower than HipMer (%.2fx)", r.Name, r.VsHipMer)
		}
	}
	if !strings.Contains(text, "5.6") {
		t.Fatal("missing caption")
	}
}

func TestAblationBloomReproducesMemorySaving(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, text := AblationBloom(sc)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PeakWith >= r.PeakWithout {
			t.Fatalf("%s: Bloom did not reduce peak entries: %d vs %d",
				r.Dataset, r.PeakWith, r.PeakWithout)
		}
		// §3.1 claims up to 85%; error k-mers dominate the unscreened
		// table, so savings must be substantial
		if r.SavedPct < 40 {
			t.Fatalf("%s: Bloom saved only %.1f%%", r.Dataset, r.SavedPct)
		}
		if r.Kept > r.PeakWith {
			t.Fatalf("%s: kept %d exceeds peak %d", r.Dataset, r.Kept, r.PeakWith)
		}
	}
	if !strings.Contains(text, "85%") {
		t.Fatal("missing caption")
	}
}

func TestAblationAggStoresMonotone(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, _ := AblationAggStores(sc)
	if len(rows) < 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Msgs > rows[i-1].Msgs {
			t.Fatalf("messages grew with buffer size: %+v", rows)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Msgs < 20*last.Msgs {
		t.Fatalf("aggregation reduced messages only %dx", first.Msgs/maxI64(last.Msgs, 1))
	}
	if last.TimeSec >= first.TimeSec {
		t.Fatalf("aggregation did not reduce time: %.4f vs %.4f", last.TimeSec, first.TimeSec)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestAblationOracleMemoryTradeoff(t *testing.T) {
	skipIfShort(t)
	sc := tinyScale()
	rows, _ := AblationOracleMemory(sc)
	if rows[0].SlotsPerKmer != 0 {
		t.Fatal("first row should be the no-oracle baseline")
	}
	noOracle := rows[0].OffPct
	biggest := rows[len(rows)-1]
	if biggest.OffPct > noOracle/2 {
		t.Fatalf("largest oracle only reduced off-node from %.1f%% to %.1f%%",
			noOracle, biggest.OffPct)
	}
	// memory grows linearly with the multiplier
	if biggest.MemMB <= rows[1].MemMB {
		t.Fatal("memory did not grow with slots")
	}
}
